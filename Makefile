# Tier-1 verification and day-to-day developer targets.

.PHONY: all build check test bench fmt clean

all: build

build:
	dune build @all

# Tier-1: the gate every change must pass.
check:
	dune build
	dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Formats dune files in place. ocamlformat is not in the build image, so
# dune-project enables @fmt for dune files only.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
