# Tier-1 verification and day-to-day developer targets.

.PHONY: all build check test bench bench-check scale-check fault-check eval serve-demo fmt clean

all: build

DEMO_DIR := _demo

# Tier-1: the gate every change must pass, plus an end-to-end
# ingest -> index -> fsck smoke check over a small demo corpus.
check:
	dune build
	dune runtest
	rm -rf $(DEMO_DIR)
	dune exec bin/cbi.exe -- ingest mossim -o $(DEMO_DIR)/log --quick --domains 2
	dune exec bin/cbi.exe -- index $(DEMO_DIR)/log -o $(DEMO_DIR)/idx
	dune exec bin/cbi.exe -- fsck $(DEMO_DIR)/idx
	$(MAKE) fault-check
	$(MAKE) eval

# Ground-truth SBFL evaluation harness: rank every registered formula
# against the five corpus programs' per-run bug occurrence (rank of
# first true bug, top-1/5/10 hit rates, mean EXAM; see docs/sbfl.md).
eval:
	dune exec bin/cbi.exe -- eval --quick

# Crash-recovery gate: kill-and-reopen the log -> index pipeline at every
# seeded fault point (torn writes, failed fsyncs, disk-full, bit flips,
# short reads) and verify no acked report is lost and no partial record
# is surfaced (see docs/robustness.md).
fault-check:
	dune exec bin/cbi.exe -- fault-check

build:
	dune build @all

test:
	dune runtest

# Prints every regenerated table and writes BENCH_core.json
# (see docs/ingest.md and docs/perf.md for the schema; SBI_BENCH_RUNS
# scales the per-study workload, SBI_BENCH_INDEX_RUNS the synthetic corpus).
bench:
	dune exec bench/main.exe

# Fails (exit 1) if any par:* parallel analysis result diverges from the
# sequential engine on a synthetic corpus (see docs/perf.md), if parallel
# analysis does not pay off (--speedup-check: on a >= 4-core host
# par:eliminate:d4 must be >= 2x seq and par:serve:topk:d4 no worse than
# d1; on a core-starved host parallel must at least never lose to
# sequential; SBI_SPEEDUP_RUNS sizes the reference corpus), or if the
# observability layer adds more than 2% overhead on instrumented hot
# paths (see docs/observability.md), or if ranking through the SBFL
# formula registry costs more than 2% over the hard-coded importance
# path (see docs/sbfl.md), or if batched group-commit ingest does not
# beat the single-report RPC path by >= 10x at fsync=true
# (--ingest-check; see docs/serve.md), or if the event-loop front end
# fails the connection-scale gate (--conn-check: 1000 concurrent
# connections, zero dropped accepts or overload rejections, batched
# throughput within 15% of a single connection; see docs/serve.md).
bench-check:
	dune exec bench/main.exe -- --par-check
	dune exec bench/main.exe -- --speedup-check
	dune exec bench/main.exe -- --obs-check
	dune exec bench/main.exe -- --sbfl-check
	dune exec bench/main.exe -- --ingest-check
	dune exec bench/main.exe -- --conn-check
	$(MAKE) scale-check

# Million-run gate over the tiered store (see docs/storage.md): streams
# SBI_SCALE_RUNS synthetic runs (default 1M) through gen -> build ->
# compact and fails (exit 1) unless the warm top-k stays under
# SBI_SCALE_BUDGET_MS (default 10 ms) before and after compaction,
# compaction shrinks the segment count and live bytes, rankings are
# bit-identical across it, and fsck comes back clean.
scale-check:
	dune exec bench/main.exe -- --scale-check

# Build a small demo log + index and start a triage server on it.
# Query it from another terminal, e.g.:
#   dune exec bin/cbi.exe -- query 127.0.0.1:7077 topk 5
serve-demo:
	rm -rf $(DEMO_DIR)
	dune exec bin/cbi.exe -- ingest mossim -o $(DEMO_DIR)/log --quick --domains 2
	dune exec bin/cbi.exe -- index $(DEMO_DIR)/log -o $(DEMO_DIR)/idx
	dune exec bin/cbi.exe -- serve $(DEMO_DIR)/idx -a 127.0.0.1:7077

# Formats dune files in place. ocamlformat is not in the build image, so
# dune-project enables @fmt for dune files only.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
	rm -rf $(DEMO_DIR) BENCH_core.json
