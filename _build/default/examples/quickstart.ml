(* Quickstart: statistical debugging end to end on a 30-line program.

   We take a MiniC program with one seeded bug, instrument it with the
   paper's three predicate schemes, run it on a few hundred random inputs
   with sparse sampling, and let the cause-isolation algorithm point at the
   bug.

   Run with:  dune exec examples/quickstart.exe *)

open Sbi_lang
open Sbi_instrument
open Sbi_runtime
open Sbi_core

(* A tiny "server request handler".  The bug: requests with a quota above
   90 skip the clamping branch, and the buffer write below overruns. *)
let source =
  {|
  int handled;

  int clamp_quota(int q) {
    int limit = 90;
    if (q > limit) {
      // BUG: should clamp to the limit, returns the raw quota instead
      return q;
    }
    return q;
  }

  void handle(int quota) {
    int[] slots = new int[100];
    int q = clamp_quota(quota);
    for (int i = 0; i < q; i = i + 1) {
      slots[i] = i; // crashes when q > 100
    }
    handled = handled + 1;
  }

  int main() {
    for (int r = 0; r < argc(); r = r + 1) {
      handle(arg_int(r));
    }
    println("handled " + to_str(handled));
    return 0;
  }
  |}

let () =
  (* 1. Parse and check the subject program. *)
  let prog = Check.check_string ~file:"server.mc" source in

  (* 2. Instrument: branches, returns, and scalar-pairs sites. *)
  let transform = Transform.instrument prog in
  Printf.printf "instrumented: %d sites, %d predicates\n" (Transform.num_sites transform)
    (Transform.num_preds transform);

  (* 3. Collect feedback reports from 600 runs with 1/10 sampling.  Each
     run gets 1-4 requests with quotas in [0, 120): about a quarter of the
     runs include an overrunning request. *)
  let gen_input run =
    let rng = Sbi_util.Prng.create (run + 1) in
    Array.init
      (1 + Sbi_util.Prng.int rng 4)
      (fun _ -> string_of_int (Sbi_util.Prng.int rng 120))
  in
  let spec = Collect.make_spec ~transform ~plan:(Sampler.Uniform 0.1) ~gen_input () in
  let dataset = Collect.collect spec ~nruns:600 in
  Printf.printf "collected: %d runs, %d failing\n" (Dataset.nruns dataset)
    (Dataset.num_failures dataset);

  (* 4. Analyze: prune by Increase, then iteratively select predictors. *)
  let analysis = Analysis.analyze dataset in
  let summary = Analysis.summary analysis in
  Printf.printf "predicates: %d initial -> %d after pruning -> %d selected\n\n"
    summary.Analysis.initial_preds summary.Analysis.retained_preds
    summary.Analysis.selected_preds;

  print_endline "selected failure predictors (most important first):";
  List.iter
    (fun (sel : Eliminate.selection) ->
      Printf.printf "  %d. [imp %.3f, F=%d, S=%d]  %s\n" sel.Eliminate.rank
        sel.Eliminate.effective.Scores.importance sel.Eliminate.effective.Scores.f
        sel.Eliminate.effective.Scores.s
        (Transform.describe_pred transform sel.Eliminate.pred))
    analysis.Analysis.elimination.Eliminate.selections;
  print_newline ();
  print_endline
    "The top predictors implicate the q/quota comparison in clamp_quota — the\n\
     condition under which the overrun occurs — rather than the crash site in\n\
     handle(), exactly as §3.1 of the paper describes."
