(* Predicting arbitrary program events (§5).

   "While we have focused on bug finding, the same ideas can be used to
   isolate predictors of any program event... all that is required is a way
   to label each run as either successful or unsuccessful."

   Here the monitored program never crashes.  Instead it emits a "spill"
   event when its working set falls back from the fast path to a slow
   spill path.  We label runs by whether the event fired (via the
   collection driver's oracle hook over the run's event trace) and let the
   unchanged cause-isolation algorithm find early predictors of the event
   — the paper's suggested use for preemptive action.

   Run with:  dune exec examples/event_prediction.exe *)

open Sbi_lang
open Sbi_instrument
open Sbi_runtime
open Sbi_core

let source =
  {|
  // a cache with a fast path; over-large or adversarial workloads spill
  int FAST_CAP;
  int fast_used;
  int spills;

  void insert(int key, int weight) {
    int cost = weight;
    if (key % 3 == 0) {
      cost = cost + 2; // misaligned keys cost more
    }
    if (fast_used + cost <= FAST_CAP) {
      fast_used = fast_used + cost;
    } else {
      __event("spill");
      spills = spills + 1;
    }
  }

  int main() {
    FAST_CAP = 48;
    fast_used = 0;
    spills = 0;
    for (int i = 0; i < argc(); i = i + 1) {
      int w = arg_int(i);
      insert(i, w);
    }
    println("spills " + to_str(spills));
    return 0;
  }
  |}

let () =
  let prog = Check.check_string ~file:"cache.mc" source in
  let transform = Transform.instrument prog in

  (* workloads: 4-14 inserts with weights 1-9 *)
  let gen_input run =
    let rng = Sbi_util.Prng.create (run * 31 + 5) in
    Array.init
      (4 + Sbi_util.Prng.int rng 11)
      (fun _ -> string_of_int (1 + Sbi_util.Prng.int rng 9))
  in

  (* The event labeller: a run "fails" when the spill event fired. *)
  let oracle ~run_index:_ ~args:_ (result : Interp.result) =
    List.mem "spill" result.Interp.events
  in
  let spec = Collect.make_spec ~oracle ~transform ~plan:Sampler.Always ~gen_input () in
  let dataset = Collect.collect spec ~nruns:2000 in
  Printf.printf "runs with the 'spill' event: %d of %d\n\n"
    (Dataset.num_failures dataset) (Dataset.nruns dataset);

  let analysis = Analysis.analyze dataset in
  print_endline "predictors of the spill event (not of any crash):";
  List.iter
    (fun (sel : Eliminate.selection) ->
      Printf.printf "  %d. [imp %.3f, F=%d]  %s\n" sel.Eliminate.rank
        sel.Eliminate.effective.Scores.importance sel.Eliminate.effective.Scores.f
        (Transform.describe_pred transform sel.Eliminate.pred))
    analysis.Analysis.elimination.Eliminate.selections;
  print_newline ();
  print_endline
    "Expected shape: predicates about the workload size and accumulated\n\
     fast_used dominate — early-warning signals available *before* the event,\n\
     which is what an online preemptive-action deployment would hook."
