examples/quickstart.mli:
