examples/event_prediction.mli:
