examples/deployment_sim.mli:
