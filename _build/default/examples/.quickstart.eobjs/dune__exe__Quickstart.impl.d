examples/quickstart.ml: Analysis Array Check Collect Dataset Eliminate List Printf Sampler Sbi_core Sbi_instrument Sbi_lang Sbi_runtime Sbi_util Scores Transform
