examples/multibug_triage.ml: Affinity Analysis Eliminate Harness List Printf Sbi_core Sbi_corpus Sbi_experiments Sbi_runtime Scores Table3
