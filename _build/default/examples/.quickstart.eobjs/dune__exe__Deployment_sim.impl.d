examples/deployment_sim.ml: Analysis Eliminate Harness List Option Printf Sbi_core Sbi_corpus Sbi_experiments Sbi_instrument Sbi_runtime Sbi_util String Texttab Unix
