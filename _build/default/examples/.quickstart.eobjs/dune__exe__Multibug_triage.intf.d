examples/multibug_triage.mli:
