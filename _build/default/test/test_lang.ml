(* Tests for the MiniC front end: lexer, parser, pretty-printer round-trip,
   and the static checker's error classes. *)
open Sbi_lang

(* --- lexer --- *)

let toks src = Array.to_list (Array.map (fun s -> s.Token.tok) (Lexer.tokenize src))

let test_lex_basic () =
  Alcotest.(check (list string))
    "operators and idents"
    [ "int"; "x"; "="; "1"; "+"; "2"; ";"; "<eof>" ]
    (List.map Token.to_string (toks "int x = 1 + 2;"))

let test_lex_two_char_ops () =
  Alcotest.(check (list string))
    "comparison operators"
    [ "=="; "!="; "<="; ">="; "<"; ">"; "="; "!"; "&&"; "||"; "<eof>" ]
    (List.map Token.to_string (toks "== != <= >= < > = ! && ||"))

let test_lex_comments () =
  Alcotest.(check (list string)) "line comment" [ "x"; "<eof>" ]
    (List.map Token.to_string (toks "x // comment to end\n"));
  Alcotest.(check (list string)) "block comment" [ "x"; "y"; "<eof>" ]
    (List.map Token.to_string (toks "x /* a * b / c */ y"))

let test_lex_strings () =
  (match toks {|"hello world"|} with
  | [ Token.STRING s; Token.EOF ] -> Alcotest.(check string) "plain" "hello world" s
  | _ -> Alcotest.fail "expected one string token");
  match toks {|"a\nb\t\"q\""|} with
  | [ Token.STRING s; Token.EOF ] -> Alcotest.(check string) "escapes" "a\nb\t\"q\"" s
  | _ -> Alcotest.fail "expected one string token"

let test_lex_keywords_vs_idents () =
  (match toks "iffy if" with
  | [ Token.IDENT "iffy"; Token.KW_IF; Token.EOF ] -> ()
  | _ -> Alcotest.fail "keyword prefix must lex as identifier")

let test_lex_positions () =
  let spanned = Lexer.tokenize "x\n  y" in
  Alcotest.(check int) "x line" 1 spanned.(0).Token.loc.Loc.line;
  Alcotest.(check int) "y line" 2 spanned.(1).Token.loc.Loc.line;
  Alcotest.(check int) "y col" 3 spanned.(1).Token.loc.Loc.col

let expect_lex_error src =
  match Lexer.tokenize src with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail ("lexer accepted malformed input: " ^ src)

let test_lex_errors () =
  expect_lex_error "\"unterminated";
  expect_lex_error "/* unterminated";
  expect_lex_error "a & b";
  expect_lex_error "a | b";
  expect_lex_error "\"bad \\x escape\"";
  expect_lex_error "@"

(* --- parser --- *)

let test_parse_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3 == 7 && true || false" in
  (* ((1 + (2*3)) == 7 && true) || false *)
  Alcotest.(check string) "pretty reflects precedence" "1 + 2 * 3 == 7 && true || false"
    (Pretty.expr_to_string e);
  match e.Ast.e with
  | Ast.EBinop (Ast.Or, _, { e = Ast.EBool false; _ }) -> ()
  | _ -> Alcotest.fail "|| must be outermost"

let test_parse_unary_and_postfix () =
  let e = Parser.parse_expr_string "-a[1].f + !g(2, 3)" in
  Alcotest.(check string) "round trip" "-a[1].f + !g(2, 3)" (Pretty.expr_to_string e)

let test_parse_new () =
  (match (Parser.parse_expr_string "new int[10]").Ast.e with
  | Ast.ENewArray (Ast.TInt, { e = Ast.EInt 10; _ }) -> ()
  | _ -> Alcotest.fail "new int[10]");
  (match (Parser.parse_expr_string "new Node").Ast.e with
  | Ast.ENewStruct "Node" -> ()
  | _ -> Alcotest.fail "new Node");
  match (Parser.parse_expr_string "new int[][3]").Ast.e with
  | Ast.ENewArray (Ast.TArray Ast.TInt, _) -> ()
  | _ -> Alcotest.fail "nested array allocation"

let test_parse_program_shapes () =
  let prog =
    Parser.parse
      {|
      struct P { int x; P next; }
      int g = 3;
      void f(int a, bool b) {
        if (a > 0) { f(a - 1, b); } else { return; }
        while (b) { break; }
        for (int i = 0; i < 10; i = i + 1) { continue; }
      }
      int main() { f(g, true); return 0; }
      |}
  in
  Alcotest.(check int) "4 decls" 4 (List.length prog.Ast.decls);
  Alcotest.(check bool) "has statements" true (Ast.count_stmts prog > 5)

let test_parse_else_if_chain () =
  let prog = Parser.parse "int main() { if (true) { } else if (false) { } else { } return 0; }" in
  Alcotest.(check bool) "parses" true (Ast.count_stmts prog > 0)

let test_sids_unique () =
  let prog =
    Parser.parse
      "int main() { int x = 1; for (int i = 0; i < 3; i = i + 1) { x = x + i; } return x; }"
  in
  let seen = Hashtbl.create 16 in
  Ast.iter_stmts prog (fun st ->
      if Hashtbl.mem seen st.Ast.sid then Alcotest.fail "duplicate statement id";
      Hashtbl.replace seen st.Ast.sid ());
  Alcotest.(check bool) "max_sid bounds ids" true
    (Hashtbl.fold (fun k () acc -> max k acc) seen 0 < prog.Ast.max_sid)

let expect_parse_error src =
  match Parser.parse src with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail ("parser accepted: " ^ src)

let test_parse_errors () =
  expect_parse_error "int main() { return 0 }";
  expect_parse_error "int main() { 1 + ; }";
  expect_parse_error "int main( { }";
  expect_parse_error "int main() { x.[1]; }";
  expect_parse_error "int main() { (1 + 2)(3); }";
  expect_parse_error "int main() { 5 = x; }"

let test_int_literals_of_func () =
  let prog = Parser.parse "int f() { int a = 5; a = a + 12; if (a > 5) { return 99; } return -3; }" in
  match prog.Ast.decls with
  | [ Ast.DFunc fn ] ->
      Alcotest.(check (list int)) "first-occurrence dedup" [ 5; 12; 99; -3 ]
        (Ast.int_literals_of_func fn)
  | _ -> Alcotest.fail "expected one function"

(* round-trip: pretty output reparses to a program with identical pretty *)
let test_pretty_round_trip () =
  let src =
    {|
    struct Node { int val; Node next; }
    int counter = 0;
    int fact(int n) {
      if (n <= 1) { return 1; }
      return n * fact(n - 1);
    }
    int main() {
      Node h = new Node;
      h.val = fact(5);
      int[] a = new int[3];
      for (int i = 0; i < len(a); i = i + 1) { a[i] = i * i; }
      while (counter < 3) { counter = counter + 1; }
      println(to_str(h.val + a[2]));
      return 0;
    }
    |}
  in
  let p1 = Parser.parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 = Parser.parse printed in
  Alcotest.(check string) "pretty is a fixed point" printed (Pretty.program_to_string p2)

(* --- checker --- *)

let check_ok src = ignore (Check.check_string src)

let expect_check_error src =
  match Check.check_string src with
  | exception Check.Error _ -> ()
  | _ -> Alcotest.fail ("checker accepted: " ^ src)

let test_check_accepts_valid () =
  check_ok "int main() { return 0; }";
  check_ok "void main() { }";
  check_ok "struct S { int x; } int main() { S s = new S; s.x = 1; return s.x; }";
  check_ok "int main() { int[] a = new int[2]; a[0] = 1; return a[0]; }";
  check_ok "int main() { string s = \"a\" + \"b\"; return strlen(s); }";
  check_ok "int f(int x) { return x; } int main() { return f(3); }";
  check_ok "struct S { int x; } int main() { S s = null; if (s == null) { return 1; } return 0; }"

let test_check_scope_errors () =
  expect_check_error "int main() { return x; }";
  expect_check_error "int main() { int x = 1; int x = 2; return x; }";
  expect_check_error "int main() { { int y = 1; } return y; }";
  check_ok "int main() { int x = 1; { int x = 2; x = 3; } return x; }" (* shadowing ok *)

let test_check_type_errors () =
  expect_check_error "int main() { return true; }";
  expect_check_error "int main() { int x = \"s\"; return x; }";
  expect_check_error "int main() { if (1) { } return 0; }";
  expect_check_error "int main() { bool b = 1 && true; return 0; }";
  expect_check_error "int main() { return 1 + \"s\"; }";
  expect_check_error "int main() { return \"a\" < \"b\"; }";
  expect_check_error "int main() { int x = null; return x; }";
  expect_check_error "struct S { int x; } int main() { S s = new S; return s.y; }";
  expect_check_error "int main() { int x = 1; return x[0]; }";
  expect_check_error "int main() { int x = 1; return x.f; }";
  expect_check_error "int main() { new void[3]; return 0; }"

let test_check_call_errors () =
  expect_check_error "int main() { return f(); }";
  expect_check_error "int f(int x) { return x; } int main() { return f(); }";
  expect_check_error "int f(int x) { return x; } int main() { return f(true); }";
  expect_check_error "int len(int x) { return x; } int main() { return 0; }";
  expect_check_error "int main() { strlen(1); return 0; }";
  expect_check_error "int main() { 1 + 2; return 0; }" (* expr statement must be a call *)

let test_check_control_errors () =
  expect_check_error "int main() { break; }";
  expect_check_error "int main() { continue; }";
  expect_check_error "void f() { return 1; } int main() { return 0; }";
  expect_check_error "int f() { return; } int main() { return 0; }";
  check_ok "int main() { while (true) { break; } return 0; }"

let test_check_main_requirements () =
  expect_check_error "int f() { return 0; }" (* no main *);
  expect_check_error "int main(int x) { return x; }";
  expect_check_error "string main() { return \"s\"; }"

let test_check_struct_errors () =
  expect_check_error "struct S { int x; int x; } int main() { return 0; }";
  expect_check_error "struct S { int x; } struct S { int y; } int main() { return 0; }";
  expect_check_error "int main() { Unknown u = null; return 0; }";
  expect_check_error "struct S { void v; } int main() { return 0; }";
  check_ok "struct S { S self; } int main() { S s = new S; s.self = s; return 0; }"

let test_check_slots () =
  let prog =
    Check.check_string
      "int f(int a, int b) { int c = a; { int d = b; c = d; } int e = c; return e; } int main() { return f(1, 2); }"
  in
  let f = Option.get (Rast.find_func prog "f") in
  Alcotest.(check int) "5 slots (2 params + 3 locals)" 5 f.Rast.rf_nslots

let test_check_globals () =
  expect_check_error "int g = 1; int g = 2; int main() { return g; }";
  expect_check_error "int g = true; int main() { return g; }";
  check_ok "int g = 40 + 2; int main() { return g; }"

let suite =
  [
    Alcotest.test_case "lex basics" `Quick test_lex_basic;
    Alcotest.test_case "lex two-char operators" `Quick test_lex_two_char_ops;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex strings and escapes" `Quick test_lex_strings;
    Alcotest.test_case "lex keywords vs identifiers" `Quick test_lex_keywords_vs_idents;
    Alcotest.test_case "lex positions" `Quick test_lex_positions;
    Alcotest.test_case "lex errors" `Quick test_lex_errors;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse unary and postfix" `Quick test_parse_unary_and_postfix;
    Alcotest.test_case "parse allocation forms" `Quick test_parse_new;
    Alcotest.test_case "parse program shapes" `Quick test_parse_program_shapes;
    Alcotest.test_case "parse else-if chain" `Quick test_parse_else_if_chain;
    Alcotest.test_case "statement ids unique" `Quick test_sids_unique;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "int literal collection" `Quick test_int_literals_of_func;
    Alcotest.test_case "pretty round trip" `Quick test_pretty_round_trip;
    Alcotest.test_case "check accepts valid programs" `Quick test_check_accepts_valid;
    Alcotest.test_case "check scope errors" `Quick test_check_scope_errors;
    Alcotest.test_case "check type errors" `Quick test_check_type_errors;
    Alcotest.test_case "check call errors" `Quick test_check_call_errors;
    Alcotest.test_case "check control-flow errors" `Quick test_check_control_errors;
    Alcotest.test_case "check main requirements" `Quick test_check_main_requirements;
    Alcotest.test_case "check struct errors" `Quick test_check_struct_errors;
    Alcotest.test_case "check slot allocation" `Quick test_check_slots;
    Alcotest.test_case "check globals" `Quick test_check_globals;
  ]
