(* Unit and property tests for Sbi_util.Stats, including the paper's §3.2
   equivalence between Increase(P) > 0 and p_f(P) > p_s(P). *)
open Sbi_util

let feq ?(eps = 1e-6) a b = abs_float (a -. b) < eps

let test_mean_variance () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean [||]);
  Alcotest.(check (float 1e-9)) "variance" (5. /. 3.) (Stats.variance [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "variance singleton" 0. (Stats.variance [| 42. |]);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (5. /. 3.)) (Stats.stddev [| 1.; 2.; 3.; 4. |])

let test_median_percentile () =
  Alcotest.(check (float 1e-9)) "median odd" 3. (Stats.median [| 5.; 1.; 3. |]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile [| 1.; 2.; 3. |] 0.);
  Alcotest.(check (float 1e-9)) "p100" 3. (Stats.percentile [| 1.; 2.; 3. |] 100.);
  Alcotest.(check (float 1e-9)) "p50 interpolated" 2. (Stats.percentile [| 1.; 2.; 3. |] 50.)

let test_erf_known_values () =
  (* Abramowitz-Stegun approximation has |error| <= 1.5e-7 *)
  Alcotest.(check bool) "erf(0) = 0" true (feq (Stats.erf 0.) 0.);
  Alcotest.(check bool) "erf(1) ~ 0.8427" true (feq ~eps:1e-5 (Stats.erf 1.) 0.842700793);
  Alcotest.(check bool) "erf(-1) ~ -0.8427" true (feq ~eps:1e-5 (Stats.erf (-1.)) (-0.842700793));
  Alcotest.(check bool) "erf(2) ~ 0.9953" true (feq ~eps:1e-5 (Stats.erf 2.) 0.995322265)

let test_normal_cdf () =
  Alcotest.(check bool) "Phi(0) = 0.5" true (feq (Stats.normal_cdf 0.) 0.5);
  Alcotest.(check bool) "Phi(1.96) ~ 0.975" true
    (feq ~eps:1e-4 (Stats.normal_cdf 1.959964) 0.975);
  Alcotest.(check bool) "Phi(-1.96) ~ 0.025" true
    (feq ~eps:1e-4 (Stats.normal_cdf (-1.959964)) 0.025)

let test_normal_quantile () =
  Alcotest.(check bool) "q(0.5) = 0" true (feq ~eps:1e-8 (Stats.normal_quantile 0.5) 0.);
  Alcotest.(check bool) "q(0.975) ~ 1.96" true
    (feq ~eps:1e-6 (Stats.normal_quantile 0.975) 1.959963985);
  Alcotest.(check bool) "q(0.025) ~ -1.96" true
    (feq ~eps:1e-6 (Stats.normal_quantile 0.025) (-1.959963985));
  Alcotest.check_raises "q(0) rejected"
    (Invalid_argument "Stats.normal_quantile: p must be in (0,1)") (fun () ->
      ignore (Stats.normal_quantile 0.))

let qcheck_quantile_inverts_cdf =
  QCheck2.Test.make ~name:"normal_quantile inverts normal_cdf" ~count:200
    QCheck2.Gen.(float_range 0.01 0.99)
    (fun p -> feq ~eps:1e-4 (Stats.normal_cdf (Stats.normal_quantile p)) p)

let test_wilson_interval () =
  let ci = Stats.proportion_ci ~successes:50 ~trials:100 () in
  Alcotest.(check bool) "contains point" true (Stats.interval_contains ci 0.5);
  Alcotest.(check bool) "roughly symmetric" true
    (feq ~eps:1e-3 (0.5 -. ci.Stats.lo) (ci.Stats.hi -. 0.5));
  let empty = Stats.proportion_ci ~successes:0 ~trials:0 () in
  Alcotest.(check (float 1e-9)) "no data lo" 0. empty.Stats.lo;
  Alcotest.(check (float 1e-9)) "no data hi" 1. empty.Stats.hi;
  (* extreme proportion: Wilson never leaves [0,1] and never collapses *)
  let extreme = Stats.proportion_ci ~successes:1 ~trials:1000 () in
  Alcotest.(check bool) "lo >= 0" true (extreme.Stats.lo >= 0.);
  Alcotest.(check bool) "hi > lo" true (extreme.Stats.hi > extreme.Stats.lo)

let test_wald_interval () =
  let ci = Stats.wald_proportion_ci ~successes:500 ~trials:1000 () in
  (* half-width = 1.96 * sqrt(0.25/1000) ~ 0.031 *)
  Alcotest.(check bool) "half-width" true (feq ~eps:1e-3 (Stats.interval_width ci /. 2.) 0.031)

let test_interval_narrows_with_n () =
  let w n = Stats.interval_width (Stats.proportion_ci ~successes:(n / 2) ~trials:n ()) in
  Alcotest.(check bool) "more data, narrower CI" true (w 10_000 < w 100 && w 100 < w 10)

(* §3.2: Increase(P) > 0 iff p_f(P) > p_s(P).  The paper proves the algebraic
   identity ad > bc; we check it on random counts. *)
let qcheck_increase_iff_heads =
  let gen =
    QCheck2.Gen.(
      bind (pair (int_range 0 50) (int_range 0 50)) (fun (f, s) ->
          map2
            (fun fo so -> (f, s, f + fo, s + so))
            (int_range 0 100) (int_range 0 100)))
  in
  QCheck2.Test.make ~name:"Increase(P) > 0 iff p_f > p_s (paper §3.2)" ~count:1000 gen
    (fun (f, s, f_obs, s_obs) ->
      QCheck2.assume (f + s > 0 && f_obs > 0 && s_obs > 0);
      let failure = float_of_int f /. float_of_int (f + s) in
      let context = float_of_int f_obs /. float_of_int (f_obs + s_obs) in
      let increase = failure -. context in
      let pf = float_of_int f /. float_of_int f_obs in
      let ps = float_of_int s /. float_of_int s_obs in
      increase > 0. = (pf > ps))

let test_two_proportion_z_sign () =
  (* strong positive association *)
  let z = Stats.two_proportion_z ~f:40 ~s:2 ~f_obs:50 ~s_obs:50 in
  Alcotest.(check bool) "positive z" true (z > 3.);
  (* no association *)
  let z0 = Stats.two_proportion_z ~f:25 ~s:25 ~f_obs:50 ~s_obs:50 in
  Alcotest.(check bool) "zero z" true (feq z0 0.);
  (* degenerate *)
  Alcotest.(check (float 1e-9)) "empty denominator" 0.
    (Stats.two_proportion_z ~f:1 ~s:1 ~f_obs:0 ~s_obs:10)

let test_increase_ci () =
  let ci = Stats.increase_ci ~f:90 ~s:10 ~f_obs:100 ~s_obs:900 () in
  (* increase = 0.9 - 0.1 = 0.8, should comfortably exclude 0 *)
  Alcotest.(check bool) "lower bound above 0" true (ci.Stats.lo > 0.5);
  let vague = Stats.increase_ci ~f:1 ~s:0 ~f_obs:1 ~s_obs:1 () in
  Alcotest.(check bool) "tiny data -> wide CI" true (Stats.interval_width vague > 0.3)

let test_harmonic_mean () =
  Alcotest.(check (float 1e-9)) "H(x,x) = x" 0.6 (Stats.harmonic_mean2 0.6 0.6);
  Alcotest.(check (float 1e-9)) "H(1,1) = 1" 1. (Stats.harmonic_mean2 1. 1.);
  Alcotest.(check (float 1e-9)) "H with 0 is 0" 0. (Stats.harmonic_mean2 0. 0.9);
  Alcotest.(check (float 1e-9)) "H with negative is 0" 0. (Stats.harmonic_mean2 (-0.1) 0.9);
  Alcotest.(check bool) "H <= min is false; H <= both components" true
    (Stats.harmonic_mean2 0.2 0.8 <= 0.8 && Stats.harmonic_mean2 0.2 0.8 >= 0.2 *. 0.8)

let qcheck_harmonic_bounds =
  QCheck2.Test.make ~name:"harmonic mean bounded by min and max" ~count:500
    QCheck2.Gen.(pair (float_range 0.001 1.) (float_range 0.001 1.))
    (fun (x, y) ->
      let h = Stats.harmonic_mean2 x y in
      h >= min x y -. 1e-9 && h <= max x y +. 1e-9)

let test_importance_ci () =
  let ci =
    Stats.importance_ci ~increase:0.8 ~increase_stderr:0.02 ~sensitivity:0.6
      ~sensitivity_stderr:0.05 ()
  in
  let h = Stats.harmonic_mean2 0.8 0.6 in
  Alcotest.(check bool) "contains harmonic mean" true (Stats.interval_contains ci h);
  Alcotest.(check bool) "nontrivial width" true (Stats.interval_width ci > 0.);
  let zero = Stats.importance_ci ~increase:0. ~increase_stderr:0.1 ~sensitivity:0.5 ~sensitivity_stderr:0.1 () in
  Alcotest.(check (float 1e-9)) "zero importance -> zero interval" 0. zero.Stats.hi

let test_log_ratio () =
  Alcotest.(check (float 1e-9)) "f=0" 0. (Stats.log_ratio 0 100);
  Alcotest.(check (float 1e-9)) "numf<=1" 0. (Stats.log_ratio 5 1);
  Alcotest.(check (float 1e-9)) "f=numf" 1. (Stats.log_ratio 100 100);
  Alcotest.(check (float 1e-9)) "f beyond numf clamps" 1. (Stats.log_ratio 200 100);
  Alcotest.(check (float 1e-9)) "log10(10)/log10(100)" 0.5 (Stats.log_ratio 10 100)

(* Monte-Carlo calibration: a 95% interval must cover the true parameter in
   roughly 95% of repeated experiments. *)
let test_wilson_coverage () =
  let rng = Prng.create 2027 in
  let trials = 2000 in
  let n = 60 in
  let p_true = 0.23 in
  let covered = ref 0 in
  for _ = 1 to trials do
    let successes = ref 0 in
    for _ = 1 to n do
      if Prng.bernoulli rng p_true then incr successes
    done;
    let ci = Stats.proportion_ci ~successes:!successes ~trials:n () in
    if Stats.interval_contains ci p_true then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "Wilson coverage %.3f within [0.92, 0.99]" coverage)
    true
    (coverage >= 0.92 && coverage <= 0.99)

let test_increase_ci_coverage () =
  (* two independent binomials standing in for Failure and Context *)
  let rng = Prng.create 4099 in
  let trials = 2000 in
  let n1 = 80 and p1 = 0.6 in
  let n2 = 200 and p2 = 0.35 in
  let true_increase = p1 -. p2 in
  let covered = ref 0 in
  for _ = 1 to trials do
    let draw n p =
      let c = ref 0 in
      for _ = 1 to n do
        if Prng.bernoulli rng p then incr c
      done;
      !c
    in
    let f = draw n1 p1 in
    let s = n1 - f in
    let f_obs = draw n2 p2 in
    let s_obs = n2 - f_obs in
    let ci = Stats.increase_ci ~f ~s ~f_obs ~s_obs () in
    if Stats.interval_contains ci true_increase then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "Increase CI coverage %.3f within [0.92, 0.99]" coverage)
    true
    (coverage >= 0.92 && coverage <= 0.99)

let test_clamp () =
  Alcotest.(check (float 1e-9)) "below" 0. (Stats.clamp 0. 1. (-5.));
  Alcotest.(check (float 1e-9)) "above" 1. (Stats.clamp 0. 1. 7.);
  Alcotest.(check (float 1e-9)) "inside" 0.3 (Stats.clamp 0. 1. 0.3)

let suite =
  [
    Alcotest.test_case "mean and variance" `Quick test_mean_variance;
    Alcotest.test_case "median and percentile" `Quick test_median_percentile;
    Alcotest.test_case "erf known values" `Quick test_erf_known_values;
    Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
    Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
    QCheck_alcotest.to_alcotest qcheck_quantile_inverts_cdf;
    Alcotest.test_case "Wilson interval" `Quick test_wilson_interval;
    Alcotest.test_case "Wald interval" `Quick test_wald_interval;
    Alcotest.test_case "CI narrows with n" `Quick test_interval_narrows_with_n;
    QCheck_alcotest.to_alcotest qcheck_increase_iff_heads;
    Alcotest.test_case "two-proportion z sign" `Quick test_two_proportion_z_sign;
    Alcotest.test_case "increase CI" `Quick test_increase_ci;
    Alcotest.test_case "harmonic mean" `Quick test_harmonic_mean;
    QCheck_alcotest.to_alcotest qcheck_harmonic_bounds;
    Alcotest.test_case "importance delta-method CI" `Quick test_importance_ci;
    Alcotest.test_case "log ratio sensitivity" `Quick test_log_ratio;
    Alcotest.test_case "Wilson CI calibration (Monte Carlo)" `Slow test_wilson_coverage;
    Alcotest.test_case "Increase CI calibration (Monte Carlo)" `Slow test_increase_ci_coverage;
    Alcotest.test_case "clamp" `Quick test_clamp;
  ]
