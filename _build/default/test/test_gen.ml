(* Property tests over randomly generated MiniC programs.

   The generator produces crash-free programs (no arrays/null/division,
   bounded loops) with nested control flow over int and bool locals.
   Properties:
   - the pretty-printer is a fixed point under re-parsing,
   - execution is deterministic,
   - instrumentation + full observation does not perturb program semantics
     (same outcome, same output) — the transparency property a deployed
     monitoring system must have,
   - sparse sampling observes a subset of the fully-observed true
     predicates. *)
open Sbi_lang
open Sbi_instrument

(* --- generator: program text --- *)

type genv = { mutable nvars : int; mutable depth : int }

let gen_program : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* seed = int_range 0 1_000_000 in
  let rng = Sbi_util.Prng.create seed in
  let env = { nvars = 0; depth = 0 } in
  ignore env.depth;
  let buf = Buffer.create 256 in
  (* variables currently in scope (innermost last); restored at block exit *)
  let scope = ref [] in
  let fresh () =
    let v = Printf.sprintf "v%d" env.nvars in
    env.nvars <- env.nvars + 1;
    scope := v :: !scope;
    v
  in
  (* loop counters get names the generator never reassigns or reads, so the
     decrement is the only write and every loop terminates *)
  let fresh_counter () =
    let v = Printf.sprintf "c%d" env.nvars in
    env.nvars <- env.nvars + 1;
    v
  in
  let var () = Sbi_util.Prng.choice_list rng !scope in
  let have_vars () = !scope <> [] in
  let rec expr depth =
    if depth = 0 || not (have_vars ()) then
      if have_vars () && Sbi_util.Prng.bool rng then var ()
      else string_of_int (Sbi_util.Prng.int_in rng (-20) 20)
    else begin
      let op = Sbi_util.Prng.choice rng [| "+"; "-"; "*" |] in
      Printf.sprintf "(%s %s %s)" (expr (depth - 1)) op (expr (depth - 1))
    end
  in
  let bexpr () =
    let op = Sbi_util.Prng.choice rng [| "<"; "<="; ">"; ">="; "=="; "!=" |] in
    Printf.sprintf "%s %s %s" (expr 1) op (expr 1)
  in
  let indent n = String.make (2 * n) ' ' in
  let rec stmt level budget =
    if budget <= 0 then 0
    else begin
      let choice = Sbi_util.Prng.int rng 10 in
      if choice < 4 || not (have_vars ()) then begin
        (* build the initializer before declaring: a variable is not in
           scope inside its own initializer *)
        let init = expr 2 in
        let v = fresh () in
        Buffer.add_string buf (Printf.sprintf "%sint %s = %s;\n" (indent level) v init);
        1
      end
      else if choice < 7 then begin
        Buffer.add_string buf
          (Printf.sprintf "%s%s = %s;\n" (indent level) (var ()) (expr 2));
        1
      end
      else if choice < 9 && level < 3 then begin
        Buffer.add_string buf (Printf.sprintf "%sif (%s) {\n" (indent level) (bexpr ()));
        let used = block (level + 1) (budget - 1) in
        if Sbi_util.Prng.bool rng then begin
          Buffer.add_string buf (Printf.sprintf "%s} else {\n" (indent level));
          let used2 = block (level + 1) (budget - 1 - used) in
          Buffer.add_string buf (Printf.sprintf "%s}\n" (indent level));
          1 + used + used2
        end
        else begin
          Buffer.add_string buf (Printf.sprintf "%s}\n" (indent level));
          1 + used
        end
      end
      else if level < 3 then begin
        (* bounded loop via a fresh decreasing counter *)
        let c = fresh_counter () in
        Buffer.add_string buf
          (Printf.sprintf "%sint %s = %d;\n" (indent level) c (Sbi_util.Prng.int rng 6));
        Buffer.add_string buf (Printf.sprintf "%swhile (%s > 0) {\n" (indent level) c);
        Buffer.add_string buf (Printf.sprintf "%s%s = %s - 1;\n" (indent (level + 1)) c c);
        let used = block (level + 1) (budget - 2) in
        Buffer.add_string buf (Printf.sprintf "%s}\n" (indent level));
        2 + used
      end
      else begin
        Buffer.add_string buf
          (Printf.sprintf "%sprintln(to_str(%s));\n" (indent level) (expr 1));
        1
      end
    end
  and block level budget =
    (* variables declared inside the block go out of scope at its end *)
    let saved = !scope in
    let n = 1 + Sbi_util.Prng.int rng 3 in
    let rec go i used =
      if i = 0 || used >= budget then used else go (i - 1) (used + stmt level (budget - used))
    in
    let used = go n 0 in
    scope := saved;
    used
  in
  Buffer.add_string buf "int main() {\n";
  Buffer.add_string buf "  int v_root = 1;\n";
  env.nvars <- env.nvars + 1;
  scope := [ "v_root" ];
  ignore (block 1 (8 + Sbi_util.Prng.int rng 12));
  Buffer.add_string buf "  println(to_str(";
  Buffer.add_string buf (if have_vars () then var () else "0");
  Buffer.add_string buf "));\n  return 0;\n}\n";
  return (Buffer.contents buf)

let run_src ?(hooks = Interp.no_hooks) src =
  let prog = Check.check_string src in
  Interp.run prog { Interp.default_config with Interp.hooks; fuel = 1_000_000 }

let qcheck_pretty_fixed_point =
  QCheck2.Test.make ~name:"generated programs: pretty is a re-parse fixed point" ~count:60
    gen_program (fun src ->
      let p1 = Parser.parse src in
      let printed = Pretty.program_to_string p1 in
      let p2 = Parser.parse printed in
      String.equal printed (Pretty.program_to_string p2))

let qcheck_checks_and_finishes =
  QCheck2.Test.make ~name:"generated programs: check and finish cleanly" ~count:60 gen_program
    (fun src ->
      match (run_src src).Interp.outcome with Interp.Finished _ -> true | _ -> false)

let qcheck_deterministic =
  QCheck2.Test.make ~name:"generated programs: deterministic output" ~count:40 gen_program
    (fun src -> String.equal (run_src src).Interp.output (run_src src).Interp.output)

let qcheck_instrumentation_transparent =
  QCheck2.Test.make
    ~name:"generated programs: full observation does not perturb semantics" ~count:40
    gen_program (fun src ->
      let plain = run_src src in
      let prog = Check.check_string src in
      let t = Transform.instrument prog in
      let observed = ref 0 in
      let hooks =
        Observe.hooks t
          ~visit:(fun _ -> true)
          ~record:(fun ~site:_ ~truths:_ -> incr observed)
      in
      let monitored = Interp.run prog { Interp.default_config with Interp.hooks } in
      String.equal plain.Interp.output monitored.Interp.output
      && plain.Interp.steps = monitored.Interp.steps
      &&
      match (plain.Interp.outcome, monitored.Interp.outcome) with
      | Interp.Finished a, Interp.Finished b -> Value.equal a b
      | _ -> false)

let qcheck_sampling_subset =
  QCheck2.Test.make ~name:"generated programs: sampled truths are a subset of full" ~count:30
    gen_program (fun src ->
      let prog = Check.check_string src in
      let t = Transform.instrument prog in
      let collect plan seed =
        let spec =
          Sbi_runtime.Collect.make_spec ~transform:t ~plan ~gen_input:(fun _ -> [||]) ()
        in
        let sampler = Sampler.create ~seed ~nsites:(Transform.num_sites t) plan in
        let report, _ = Sbi_runtime.Collect.run_one spec ~sampler ~run_index:0 in
        report
      in
      let full = collect Sampler.Always 1 in
      let sampled = collect (Sampler.Uniform 0.3) 2 in
      Array.for_all
        (fun p -> Sbi_runtime.Report.is_true full p)
        sampled.Sbi_runtime.Report.true_preds)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_pretty_fixed_point;
    QCheck_alcotest.to_alcotest qcheck_checks_and_finishes;
    QCheck_alcotest.to_alcotest qcheck_deterministic;
    QCheck_alcotest.to_alcotest qcheck_instrumentation_transparent;
    QCheck_alcotest.to_alcotest qcheck_sampling_subset;
  ]
