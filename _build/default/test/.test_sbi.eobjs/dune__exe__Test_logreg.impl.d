test/test_logreg.ml: Alcotest Array Dataset Fun List Logreg Report Sbi_logreg Sbi_runtime
