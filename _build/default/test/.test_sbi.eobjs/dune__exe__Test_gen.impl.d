test/test_gen.ml: Array Buffer Check Interp Observe Parser Pretty Printf QCheck2 QCheck_alcotest Sampler Sbi_instrument Sbi_lang Sbi_runtime Sbi_util String Transform Value
