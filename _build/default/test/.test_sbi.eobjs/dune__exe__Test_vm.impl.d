test/test_vm.ml: Alcotest Array Check Interp List Printf QCheck2 QCheck_alcotest Sbi_corpus Sbi_instrument Sbi_lang String Test_gen Value Vm
