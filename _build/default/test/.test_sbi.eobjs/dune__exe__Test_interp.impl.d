test/test_interp.ml: Alcotest Check Fun Interp List Sbi_lang Value
