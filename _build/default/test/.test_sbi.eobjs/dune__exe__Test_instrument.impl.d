test/test_instrument.ml: Adaptive Alcotest Array Check Hashtbl Interp List Observe Printf Sampler Sbi_instrument Sbi_lang Site Transform
