test/test_runtime.ml: Alcotest Array Check Collect Dataset Filename Interp List QCheck2 QCheck_alcotest Report Sampler Sbi_instrument Sbi_lang Sbi_runtime Site String Sys Transform
