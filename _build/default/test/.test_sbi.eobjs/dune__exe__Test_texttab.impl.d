test/test_texttab.ml: Alcotest Char List Sbi_util String Texttab
