test/test_query.ml: Alcotest Check List Query Sbi_corpus Sbi_lang
