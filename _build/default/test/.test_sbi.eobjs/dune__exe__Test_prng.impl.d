test/test_prng.ml: Alcotest Array Fun Printf Prng QCheck2 QCheck_alcotest Sbi_util
