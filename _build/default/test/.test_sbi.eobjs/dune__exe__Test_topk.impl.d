test/test_topk.ml: Alcotest Array List QCheck2 QCheck_alcotest Sbi_util Topk
