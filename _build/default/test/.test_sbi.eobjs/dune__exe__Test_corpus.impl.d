test/test_corpus.ml: Alcotest Array Corpus Interp List Printf Sbi_corpus Sbi_lang String Study
