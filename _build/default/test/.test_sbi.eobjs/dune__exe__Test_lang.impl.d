test/test_lang.ml: Alcotest Array Ast Check Hashtbl Lexer List Loc Option Parser Pretty Rast Sbi_lang Token
