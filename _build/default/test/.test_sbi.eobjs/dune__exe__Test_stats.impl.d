test/test_stats.ml: Alcotest Printf Prng QCheck2 QCheck_alcotest Sbi_util Stats
