(* Interpreter tests: semantics, every crash kind, stacks, fuel, hooks,
   nondeterminism, and ground-truth channels. *)
open Sbi_lang

let run ?(args = [||]) ?(nondet_seed = 0) ?(fuel = 1_000_000) src =
  Interp.run_string
    ~config:{ Interp.default_config with Interp.args; nondet_seed; fuel }
    src

let int_of_result r =
  match r.Interp.outcome with
  | Interp.Finished (Value.VInt n) -> n
  | Interp.Finished v -> Alcotest.failf "finished with non-int %s" (Value.type_name v)
  | Interp.Crashed c -> Alcotest.failf "crashed: %s" (Interp.crash_kind_to_string c.Interp.kind)

let finished_int src = int_of_result (run src)

let crash_kind r =
  match r.Interp.outcome with
  | Interp.Crashed c -> c.Interp.kind
  | Interp.Finished _ -> Alcotest.fail "expected a crash"

let test_arithmetic () =
  Alcotest.(check int) "arith" 17 (finished_int "int main() { return 2 + 3 * 5; }");
  Alcotest.(check int) "division" 3 (finished_int "int main() { return 10 / 3; }");
  Alcotest.(check int) "modulo" 1 (finished_int "int main() { return 10 % 3; }");
  Alcotest.(check int) "negation" (-4) (finished_int "int main() { return -(2 + 2); }");
  Alcotest.(check int) "comparison chain" 1
    (finished_int "int main() { if (1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3 && 1 == 1 && 1 != 2) { return 1; } return 0; }")

let test_string_ops () =
  let r = run {|int main() { println("a" + "b" + to_str(12)); return strlen("hello"); }|} in
  Alcotest.(check string) "output" "ab12\n" r.Interp.output;
  Alcotest.(check int) "strlen" 5 (finished_int {|int main() { return strlen("hello"); }|});
  Alcotest.(check int) "strcmp" (-1) (finished_int {|int main() { return strcmp("a", "b"); }|});
  Alcotest.(check int) "ord" 97 (finished_int {|int main() { return ord("abc", 0); }|});
  Alcotest.(check int) "substr+parse" 42
    (finished_int {|int main() { return parse_int(substr("xx42yy", 2, 2)); }|})

let test_recursion () =
  Alcotest.(check int) "fib" 55
    (finished_int
       "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } int main() { return fib(10); }")

let test_loops () =
  Alcotest.(check int) "while sum" 45
    (finished_int
       "int main() { int s = 0; int i = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }");
  Alcotest.(check int) "for with break/continue" 9
    (finished_int
       "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } if (i > 6) { break; } s = s + i; } return s; }")

let test_structs_and_arrays () =
  Alcotest.(check int) "linked list sum" 6
    (finished_int
       {|struct N { int v; N next; }
         int main() {
           N a = new N; a.v = 1;
           N b = new N; b.v = 2; a.next = b;
           N c = new N; c.v = 3; b.next = c;
           int s = 0;
           N cur = a;
           while (cur != null) { s = s + cur.v; cur = cur.next; }
           return s;
         }|});
  Alcotest.(check int) "2d arrays" 9
    (finished_int
       {|int main() {
           int[][] grid = new int[][3];
           for (int i = 0; i < 3; i = i + 1) { grid[i] = new int[3]; }
           grid[1][2] = 9;
           return grid[1][2];
         }|})

let test_reference_semantics () =
  Alcotest.(check int) "array aliasing" 5
    (finished_int "int main() { int[] a = new int[1]; int[] b = a; b[0] = 5; return a[0]; }");
  Alcotest.(check int) "reference equality" 1
    (finished_int
       "int main() { int[] a = new int[1]; int[] b = a; int[] c = new int[1]; if (a == b && a != c) { return 1; } return 0; }")

let test_short_circuit () =
  (* the right operand would crash; short-circuiting must skip it *)
  Alcotest.(check int) "&& short-circuits" 1
    (finished_int
       "int main() { int[] a = null; if (false && a[0] == 1) { return 0; } return 1; }");
  Alcotest.(check int) "|| short-circuits" 1
    (finished_int
       "int main() { int[] a = null; if (true || a[0] == 1) { return 1; } return 0; }")

let test_crash_kinds () =
  (match crash_kind (run "int main() { int[] a = null; return a[0]; }") with
  | Interp.Null_deref -> ()
  | k -> Alcotest.failf "expected null deref, got %s" (Interp.crash_kind_to_string k));
  (match crash_kind (run "int main() { int[] a = new int[2]; return a[5]; }") with
  | Interp.Out_of_bounds { index = 5; length = 2 } -> ()
  | k -> Alcotest.failf "expected bounds, got %s" (Interp.crash_kind_to_string k));
  (match crash_kind (run "int main() { int z = 0; return 1 / z; }") with
  | Interp.Div_by_zero -> ()
  | _ -> Alcotest.fail "expected div by zero");
  (match crash_kind (run "int main() { int z = 0; return 1 % z; }") with
  | Interp.Div_by_zero -> ()
  | _ -> Alcotest.fail "expected mod by zero");
  (match crash_kind (run "int main() { assert(1 == 2); return 0; }") with
  | Interp.Assert_failed -> ()
  | _ -> Alcotest.fail "expected assert failure");
  (match crash_kind (run {|int main() { abort("boom"); return 0; }|}) with
  | Interp.Aborted "boom" -> ()
  | _ -> Alcotest.fail "expected abort");
  (match crash_kind (run "int main() { int[] a = new int[-1]; return 0; }") with
  | Interp.Negative_array_size (-1) -> ()
  | _ -> Alcotest.fail "expected negative array size");
  (match crash_kind (run "int f(int n) { return f(n + 1); } int main() { return f(0); }") with
  | Interp.Stack_overflow -> ()
  | _ -> Alcotest.fail "expected stack overflow");
  (match crash_kind (run ~fuel:1000 "int main() { while (true) { } return 0; }") with
  | Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion");
  (match crash_kind (run {|int main() { string s = substr("abc", 1, 9); return 0; }|}) with
  | Interp.Substr_range -> ()
  | _ -> Alcotest.fail "expected substr range");
  match crash_kind (run "int main() { string s = chr(300); return 0; }") with
  | Interp.Chr_range 300 -> ()
  | _ -> Alcotest.fail "expected chr range"

let test_crash_stack () =
  let r = run "void c() { int[] a = null; a[0] = 1; } void b() { c(); } void a() { b(); } int main() { a(); return 0; }" in
  match r.Interp.outcome with
  | Interp.Crashed crash ->
      Alcotest.(check (list string)) "innermost-first stack" [ "c"; "b"; "a"; "main" ]
        crash.Interp.stack;
      Alcotest.(check string) "crash function" "c" crash.Interp.crash_fn
  | _ -> Alcotest.fail "expected crash"

let test_args_builtins () =
  let r = run ~args:[| "alpha"; "7" |] "int main() { println(arg(0)); return argc() + arg_int(1); }" in
  Alcotest.(check string) "arg echo" "alpha\n" r.Interp.output;
  (match r.Interp.outcome with
  | Interp.Finished (Value.VInt 9) -> ()
  | _ -> Alcotest.fail "argc + arg_int");
  match crash_kind (run ~args:[||] "int main() { println(arg(0)); return 0; }") with
  | Interp.Out_of_bounds _ -> ()
  | _ -> Alcotest.fail "arg out of range crashes"

let test_parse_int_builtins () =
  Alcotest.(check int) "parse_int garbage is 0" 0 (finished_int {|int main() { return parse_int("zzz"); }|});
  Alcotest.(check int) "is_int" 1
    (finished_int {|int main() { if (is_int("42") && !is_int("4x")) { return 1; } return 0; }|});
  Alcotest.(check int) "min max abs" 7
    (finished_int "int main() { return min(9, 3) + max(1, 2) + abs(-2); }")

let test_hash_deterministic () =
  let a = finished_int {|int main() { return hash_str("winnow"); }|} in
  let b = finished_int {|int main() { return hash_str("winnow"); }|} in
  Alcotest.(check int) "same hash" a b;
  Alcotest.(check bool) "non-negative" true (a >= 0)

let test_ground_truth_channels () =
  let r =
    run
      {|int main() { __bug(3); __bug(1); __bug(3); __event("open"); __event("close"); return 0; }|}
  in
  Alcotest.(check (list int)) "distinct sorted bugs" [ 1; 3 ] r.Interp.bugs_triggered;
  Alcotest.(check (list string)) "events in order" [ "open"; "close" ] r.Interp.events

let test_nondet_determinism () =
  let src = "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + nondet(100); } return s; }" in
  let a = int_of_result (run ~nondet_seed:5 src) in
  let b = int_of_result (run ~nondet_seed:5 src) in
  let c = int_of_result (run ~nondet_seed:6 src) in
  Alcotest.(check int) "same seed same value" a b;
  Alcotest.(check bool) "different seed differs (overwhelmingly)" true (a <> c)

let test_globals_init_order () =
  Alcotest.(check int) "later global sees earlier" 5
    (finished_int "int a = 2; int b = a + 3; int main() { return b; }")

let test_fall_off_end () =
  Alcotest.(check int) "non-void falling off returns default" 0
    (finished_int "int f() { int x = 1; x = x + 1; } int main() { return f(); }")

let test_void_return () =
  Alcotest.(check int) "void early return" 3
    (finished_int "int g = 0; void f() { g = 3; return; } int main() { f(); return g; }")

let test_steps_counted () =
  let r = run "int main() { int s = 0; for (int i = 0; i < 100; i = i + 1) { s = s + 1; } return s; }" in
  Alcotest.(check bool) "steps counted" true (r.Interp.steps > 200)

let test_branch_hook () =
  let branches = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_branch = (fun ~sid:_ b -> branches := b :: !branches);
    }
  in
  let prog = Check.check_string "int main() { for (int i = 0; i < 3; i = i + 1) { if (i == 1) { } } return 0; }" in
  ignore (Interp.run prog { Interp.default_config with Interp.hooks });
  (* for-loop test: T T T F; if: F T F -> 7 branch evaluations *)
  Alcotest.(check int) "7 branch observations" 7 (List.length !branches);
  Alcotest.(check int) "4 true" 4 (List.length (List.filter Fun.id !branches))

let test_scalar_assign_hook () =
  let events = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_scalar_assign =
        (fun ~sid:_ ~lhs:_ ~old_value ~read:_ -> events := old_value :: !events);
    }
  in
  let prog = Check.check_string "int main() { int x = 1; x = 2; bool b = true; return x; }" in
  ignore (Interp.run prog { Interp.default_config with Interp.hooks });
  (* decl with init (old=None) + reassign (old=Some 1); bool decl not hooked *)
  match List.rev !events with
  | [ None; Some (Value.VInt 1) ] -> ()
  | l -> Alcotest.failf "unexpected hook sequence (%d events)" (List.length l)

let test_call_result_hook () =
  let results = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_call_result = (fun ~sid:_ v -> results := v :: !results);
    }
  in
  let prog =
    Check.check_string
      "int f() { return -7; } void g() { } int main() { f(); g(); return 0; }"
  in
  ignore (Interp.run prog { Interp.default_config with Interp.hooks });
  match !results with
  | [ Value.VInt -7 ] -> ()
  | _ -> Alcotest.fail "only the int-returning statement call is hooked"

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "string builtins" `Quick test_string_ops;
    Alcotest.test_case "recursion (fib)" `Quick test_recursion;
    Alcotest.test_case "loops with break/continue" `Quick test_loops;
    Alcotest.test_case "structs and arrays" `Quick test_structs_and_arrays;
    Alcotest.test_case "reference semantics" `Quick test_reference_semantics;
    Alcotest.test_case "short-circuit evaluation" `Quick test_short_circuit;
    Alcotest.test_case "all crash kinds" `Quick test_crash_kinds;
    Alcotest.test_case "crash stack capture" `Quick test_crash_stack;
    Alcotest.test_case "args builtins" `Quick test_args_builtins;
    Alcotest.test_case "parse_int / is_int / min max abs" `Quick test_parse_int_builtins;
    Alcotest.test_case "hash_str deterministic" `Quick test_hash_deterministic;
    Alcotest.test_case "ground-truth channels" `Quick test_ground_truth_channels;
    Alcotest.test_case "nondet determinism by seed" `Quick test_nondet_determinism;
    Alcotest.test_case "global initialization order" `Quick test_globals_init_order;
    Alcotest.test_case "fall off end returns default" `Quick test_fall_off_end;
    Alcotest.test_case "void return" `Quick test_void_return;
    Alcotest.test_case "step counting" `Quick test_steps_counted;
    Alcotest.test_case "branch hook" `Quick test_branch_hook;
    Alcotest.test_case "scalar-assign hook" `Quick test_scalar_assign_hook;
    Alcotest.test_case "call-result hook" `Quick test_call_result_hook;
  ]
