(* Tests for feedback reports, datasets (incl. serialization round-trip),
   and the collection driver. *)
open Sbi_lang
open Sbi_instrument
open Sbi_runtime

let mk_report ?(outcome = Report.Success) ?(sites = [||]) ?(preds = [||]) ?(bugs = [||])
    ?crash_sig id =
  {
    Report.run_id = id;
    outcome;
    observed_sites = sites;
    true_preds = preds;
    true_counts = Array.map (fun _ -> 1) preds;
    bugs;
    crash_sig;
  }

let test_report_membership () =
  let r = mk_report ~sites:[| 1; 4; 9 |] ~preds:[| 2; 3; 17 |] ~bugs:[| 5 |] 0 in
  Alcotest.(check bool) "site present" true (Report.observed_site r 4);
  Alcotest.(check bool) "site absent" false (Report.observed_site r 5);
  Alcotest.(check bool) "pred present" true (Report.is_true r 17);
  Alcotest.(check bool) "pred absent" false (Report.is_true r 16);
  Alcotest.(check bool) "bug present" true (Report.has_bug r 5);
  Alcotest.(check bool) "bug absent" false (Report.has_bug r 4);
  Alcotest.(check bool) "empty arrays" false (Report.is_true (mk_report 1) 0)

let test_stack_signature () =
  Alcotest.(check string) "signature" "memcpy<save<main"
    (Report.stack_signature [ "memcpy"; "save"; "main" ]);
  Alcotest.(check string) "empty" "" (Report.stack_signature [])

let mk_dataset runs =
  Dataset.of_tables ~nsites:4 ~npreds:8
    ~pred_site:[| 0; 0; 1; 1; 2; 2; 3; 3 |]
    (Array.of_list runs)

let test_dataset_counting () =
  let ds =
    mk_dataset
      [
        mk_report ~outcome:Report.Failure ~bugs:[| 1 |] 0;
        mk_report 1;
        mk_report ~outcome:Report.Failure ~bugs:[| 1; 2 |] 2;
        mk_report 3;
      ]
  in
  Alcotest.(check int) "nruns" 4 (Dataset.nruns ds);
  Alcotest.(check int) "failures" 2 (Dataset.num_failures ds);
  Alcotest.(check int) "successes" 2 (Dataset.num_successes ds);
  Alcotest.(check int) "failures array" 2 (Array.length (Dataset.failures ds));
  Alcotest.(check int) "successes array" 2 (Array.length (Dataset.successes ds));
  Alcotest.(check (list int)) "bug ids" [ 1; 2 ] (Dataset.bug_ids ds);
  Alcotest.(check int) "runs with bug 1" 2 (Dataset.runs_with_bug ds 1);
  Alcotest.(check int) "runs with bug 2" 1 (Dataset.runs_with_bug ds 2)

let test_dataset_filter_sub () =
  let ds =
    mk_dataset [ mk_report 0; mk_report ~outcome:Report.Failure 1; mk_report 2 ]
  in
  let only_failing = Dataset.filter_runs ds (fun r -> Report.outcome_is_failure r.Report.outcome) in
  Alcotest.(check int) "filtered" 1 (Dataset.nruns only_failing);
  let first_two = Dataset.sub ds 2 in
  Alcotest.(check int) "sub" 2 (Dataset.nruns first_two);
  Alcotest.check_raises "sub too large" (Invalid_argument "Dataset.sub: not enough runs")
    (fun () -> ignore (Dataset.sub ds 9))

let test_serialization_round_trip () =
  let ds =
    mk_dataset
      [
        mk_report ~outcome:Report.Failure ~sites:[| 0; 2 |] ~preds:[| 0; 4; 5 |] ~bugs:[| 3 |]
          ~crash_sig:"f<g<main" 0;
        mk_report ~sites:[| 1 |] ~preds:[| 2 |] 1;
        mk_report 2;
      ]
  in
  let path = Filename.temp_file "sbi_test" ".dataset" in
  Dataset.save path ds;
  let ds' = Dataset.load path in
  Sys.remove path;
  Alcotest.(check int) "nsites" ds.Dataset.nsites ds'.Dataset.nsites;
  Alcotest.(check int) "npreds" ds.Dataset.npreds ds'.Dataset.npreds;
  Alcotest.(check (array int)) "pred_site" ds.Dataset.pred_site ds'.Dataset.pred_site;
  Alcotest.(check int) "nruns" (Dataset.nruns ds) (Dataset.nruns ds');
  Array.iteri
    (fun i (r : Report.t) ->
      let r' = ds'.Dataset.runs.(i) in
      Alcotest.(check int) "run id" r.Report.run_id r'.Report.run_id;
      Alcotest.(check bool) "outcome" (Report.outcome_is_failure r.Report.outcome)
        (Report.outcome_is_failure r'.Report.outcome);
      Alcotest.(check (array int)) "sites" r.Report.observed_sites r'.Report.observed_sites;
      Alcotest.(check (array int)) "preds" r.Report.true_preds r'.Report.true_preds;
      Alcotest.(check (array int)) "bugs" r.Report.bugs r'.Report.bugs;
      Alcotest.(check (option string)) "sig" r.Report.crash_sig r'.Report.crash_sig)
    ds.Dataset.runs

let qcheck_serialization =
  let gen_run =
    QCheck2.Gen.(
      map
        (fun (id, fail, sites, preds) ->
          mk_report
            ~outcome:(if fail then Report.Failure else Report.Success)
            ~sites:(Array.of_list (List.sort_uniq compare sites))
            ~preds:(Array.of_list (List.sort_uniq compare preds))
            (abs id))
        (quad small_int bool (list (int_range 0 3)) (list (int_range 0 7))))
  in
  QCheck2.Test.make ~name:"dataset serialization round-trips" ~count:50
    QCheck2.Gen.(list_size (int_range 0 20) gen_run)
    (fun runs ->
      let ds = mk_dataset runs in
      let path = Filename.temp_file "sbi_qc" ".dataset" in
      Dataset.save path ds;
      let ds' = Dataset.load path in
      Sys.remove path;
      Dataset.nruns ds = Dataset.nruns ds'
      && Array.for_all2
           (fun (a : Report.t) (b : Report.t) ->
             a.Report.run_id = b.Report.run_id
             && a.Report.observed_sites = b.Report.observed_sites
             && a.Report.true_preds = b.Report.true_preds)
           ds.Dataset.runs ds'.Dataset.runs)

let test_parse_error () =
  let path = Filename.temp_file "sbi_bad" ".dataset" in
  let oc = open_out path in
  output_string oc "not a dataset\n";
  close_out oc;
  (match Dataset.load path with
  | exception Dataset.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error");
  Sys.remove path

(* --- collection on a tiny program --- *)

let crashy_src =
  {|
  int main() {
    int x = arg_int(0);
    if (x > 5) {
      __bug(1);
      int[] a = null;
      return a[0];
    }
    println("ok " + to_str(x));
    return 0;
  }
  |}

let crashy_spec ?(plan = Sampler.Always) () =
  let t = Transform.instrument (Check.check_string crashy_src) in
  Collect.make_spec ~transform:t ~plan
    ~gen_input:(fun run -> [| string_of_int (run mod 10) |])
    ()

let test_collect_labels () =
  let spec = crashy_spec () in
  let ds = Collect.collect spec ~nruns:20 in
  (* inputs 0..9 twice: x>5 for 6,7,8,9 -> 8 failures *)
  Alcotest.(check int) "20 runs" 20 (Dataset.nruns ds);
  Alcotest.(check int) "8 failures" 8 (Dataset.num_failures ds);
  Alcotest.(check int) "bug 1 everywhere failing" 8 (Dataset.runs_with_bug ds 1);
  Array.iter
    (fun (r : Report.t) ->
      if Report.outcome_is_failure r.Report.outcome then
        Alcotest.(check bool) "crash signature recorded" true (r.Report.crash_sig <> None))
    ds.Dataset.runs

let test_collect_observed_predicate () =
  let spec = crashy_spec () in
  let ds = Collect.collect spec ~nruns:20 in
  let t = spec.Collect.transform in
  (* find the branch predicate "x > 5 is TRUE" *)
  let pred = ref (-1) in
  Array.iter
    (fun (p : Site.predicate) -> if p.Site.pred_text = "x > 5 is TRUE" then pred := p.Site.pred_id)
    t.Transform.preds;
  Alcotest.(check bool) "predicate exists" true (!pred >= 0);
  Array.iter
    (fun (r : Report.t) ->
      let is_true = Report.is_true r !pred in
      let failing = Report.outcome_is_failure r.Report.outcome in
      Alcotest.(check bool) "true iff failing (deterministic bug, full sampling)" failing is_true)
    ds.Dataset.runs

let test_collect_deterministic () =
  let spec = crashy_spec () in
  let a = Collect.collect ~seed:5 spec ~nruns:30 in
  let b = Collect.collect ~seed:5 spec ~nruns:30 in
  Array.iteri
    (fun i (r : Report.t) ->
      let r' = b.Dataset.runs.(i) in
      Alcotest.(check (array int)) "same true preds" r.Report.true_preds r'.Report.true_preds)
    a.Dataset.runs

let test_collect_oracle () =
  (* program with wrong output on x=3; oracle flags it *)
  let src = {|
    int main() {
      int x = arg_int(0);
      if (x == 3) { __bug(9); println("wrong"); } else { println("right " + to_str(x)); }
      return 0;
    }
    |} in
  let t = Transform.instrument (Check.check_string src) in
  let oracle ~run_index:_ ~args (result : Interp.result) =
    let expected = "right " ^ args.(0) ^ "\n" in
    not (String.equal expected result.Interp.output)
  in
  let spec =
    Collect.make_spec ~oracle ~transform:t ~plan:Sampler.Always
      ~gen_input:(fun run -> [| string_of_int (run mod 5) |])
      ()
  in
  let ds = Collect.collect spec ~nruns:10 in
  Alcotest.(check int) "2 oracle failures (x=3 twice)" 2 (Dataset.num_failures ds);
  Array.iter
    (fun (r : Report.t) ->
      if Report.outcome_is_failure r.Report.outcome then
        Alcotest.(check (option string)) "oracle failure has no crash sig" None r.Report.crash_sig)
    ds.Dataset.runs

let test_run_uninstrumented () =
  let spec = crashy_spec () in
  let r = Collect.run_uninstrumented spec ~run_index:0 in
  match r.Interp.outcome with
  | Interp.Finished _ -> ()
  | Interp.Crashed _ -> Alcotest.fail "input 0 should succeed"

let test_sampled_collection_subsets () =
  (* with sampling, observed predicates are a subset of the full-observation
     run's; outcomes are identical *)
  let full = Collect.collect (crashy_spec ()) ~nruns:40 in
  let sampled = Collect.collect (crashy_spec ~plan:(Sampler.Uniform 0.3) ()) ~nruns:40 in
  Array.iteri
    (fun i (r : Report.t) ->
      let f = full.Dataset.runs.(i) in
      Alcotest.(check bool) "same outcome" (Report.outcome_is_failure f.Report.outcome)
        (Report.outcome_is_failure r.Report.outcome);
      Array.iter
        (fun p -> Alcotest.(check bool) "sampled true implies fully-observed true" true (Report.is_true f p))
        r.Report.true_preds)
    sampled.Dataset.runs

let test_true_counts () =
  (* the crashy program's loop predicates are observed true multiple times
     under full sampling; counts must exceed 1 while is_true stays boolean *)
  let src = {|
    int main() {
      int s = 0;
      for (int i = 0; i < 5; i = i + 1) { s = s + i; }
      return s;
    }
  |} in
  let t = Transform.instrument (Check.check_string src) in
  let spec = Collect.make_spec ~transform:t ~plan:Sampler.Always ~gen_input:(fun _ -> [||]) () in
  let ds = Collect.collect spec ~nruns:1 in
  let r = ds.Dataset.runs.(0) in
  Alcotest.(check bool) "counts parallel to preds" true
    (Array.length r.Report.true_counts = Array.length r.Report.true_preds);
  Alcotest.(check bool) "some predicate observed true more than once" true
    (Array.exists (fun c -> c > 1) r.Report.true_counts);
  Alcotest.(check bool) "all counts positive" true
    (Array.for_all (fun c -> c >= 1) r.Report.true_counts);
  (* true_count lookup *)
  Array.iteri
    (fun i p -> Alcotest.(check int) "true_count lookup" r.Report.true_counts.(i) (Report.true_count r p))
    r.Report.true_preds;
  Alcotest.(check int) "absent pred count 0" 0 (Report.true_count r 999_999)

let test_site_coverage () =
  let src = {|
    int main() {
      int s = 0;
      for (int i = 0; i < 50; i = i + 1) { s = s + 1; }
      if (s > 100) { s = 0; }
      return s;
    }
  |} in
  let t = Transform.instrument (Check.check_string src) in
  let spec = Collect.make_spec ~transform:t ~plan:Sampler.Always ~gen_input:(fun _ -> [||]) () in
  let ds = Collect.collect spec ~nruns:3 in
  let cov = Dataset.site_coverage ds in
  Alcotest.(check int) "per site" ds.Dataset.nsites (Array.length cov);
  Alcotest.(check bool) "max is 1" true (Array.exists (fun c -> c = 1.) cov);
  Alcotest.(check bool) "hot loop sites dominate cold if" true
    (Array.exists (fun c -> c < 0.5) cov)

let test_pred_texts_round_trip () =
  let t = Transform.instrument (Check.check_string "int main() { int x = 1; if (x > 0) { } return x; }") in
  let spec = Collect.make_spec ~transform:t ~plan:Sampler.Always ~gen_input:(fun _ -> [||]) () in
  let ds = Collect.collect spec ~nruns:2 in
  Alcotest.(check bool) "texts embedded" true (ds.Dataset.pred_texts <> None);
  Alcotest.(check bool) "readable name" true
    (String.length (Dataset.pred_text ds 0) > 3);
  let path = Filename.temp_file "sbi_v2" ".dataset" in
  Dataset.save path ds;
  let ds' = Dataset.load path in
  Sys.remove path;
  Alcotest.(check string) "texts survive round trip" (Dataset.pred_text ds 0)
    (Dataset.pred_text ds' 0);
  Array.iteri
    (fun i (r : Report.t) ->
      Alcotest.(check (array int)) "counts survive" r.Report.true_counts
        ds'.Dataset.runs.(i).Report.true_counts)
    ds.Dataset.runs

let test_engine_equivalence () =
  (* the Bytecode engine must produce an identical dataset *)
  let t = Transform.instrument (Check.check_string crashy_src) in
  let mk engine =
    Collect.make_spec ~engine ~transform:t ~plan:Sampler.Always
      ~gen_input:(fun run -> [| string_of_int (run mod 10) |])
      ()
  in
  let a = Collect.collect ~seed:9 (mk Collect.Tree_walk) ~nruns:30 in
  let b = Collect.collect ~seed:9 (mk Collect.Bytecode) ~nruns:30 in
  Array.iteri
    (fun i (r : Report.t) ->
      let r' = b.Dataset.runs.(i) in
      Alcotest.(check bool) "same outcome" (Report.outcome_is_failure r.Report.outcome)
        (Report.outcome_is_failure r'.Report.outcome);
      Alcotest.(check (array int)) "same true preds" r.Report.true_preds r'.Report.true_preds;
      Alcotest.(check (array int)) "same observed sites" r.Report.observed_sites
        r'.Report.observed_sites;
      Alcotest.(check (option string)) "same crash signature" r.Report.crash_sig
        r'.Report.crash_sig)
    a.Dataset.runs

let suite =
  [
    Alcotest.test_case "report membership" `Quick test_report_membership;
    Alcotest.test_case "bytecode engine equivalence" `Quick test_engine_equivalence;
    Alcotest.test_case "observed-true counts (footnote 2)" `Quick test_true_counts;
    Alcotest.test_case "site coverage (§6)" `Quick test_site_coverage;
    Alcotest.test_case "dataset v2 texts round trip" `Quick test_pred_texts_round_trip;
    Alcotest.test_case "stack signature" `Quick test_stack_signature;
    Alcotest.test_case "dataset counting" `Quick test_dataset_counting;
    Alcotest.test_case "dataset filter and sub" `Quick test_dataset_filter_sub;
    Alcotest.test_case "serialization round trip" `Quick test_serialization_round_trip;
    QCheck_alcotest.to_alcotest qcheck_serialization;
    Alcotest.test_case "parse error on junk" `Quick test_parse_error;
    Alcotest.test_case "collection labels crashes" `Quick test_collect_labels;
    Alcotest.test_case "collection observes predicates" `Quick test_collect_observed_predicate;
    Alcotest.test_case "collection deterministic" `Quick test_collect_deterministic;
    Alcotest.test_case "oracle labelling" `Quick test_collect_oracle;
    Alcotest.test_case "uninstrumented run" `Quick test_run_uninstrumented;
    Alcotest.test_case "sampled observation subsets" `Quick test_sampled_collection_subsets;
  ]
