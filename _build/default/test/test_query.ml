(* Tests for the syntactic dispose-then-use static analysis. *)
open Sbi_lang

let prog src = Check.check_string src

let test_nulled_vars () =
  let p =
    prog
      {|
      struct S { int x; }
      S g;
      int main() {
        S local = new S;
        g = null;
        local = null;
        S never_nulled = new S;
        never_nulled.x = 1;
        return 0;
      }
      |}
  in
  let names = List.map fst (Query.nulled_vars p) in
  Alcotest.(check (list string)) "both nulled vars, in order" [ "g"; "local" ] names

let test_unguarded_use_found () =
  let p =
    prog
      {|
      struct S { int x; }
      S g;
      void dispose() { g = null; }
      int use() { return g.x; }
      int main() { dispose(); return use(); }
      |}
  in
  let uses = Query.unsafe_uses p in
  Alcotest.(check int) "one unguarded use" 1 (List.length uses);
  let u = List.hd uses in
  Alcotest.(check string) "variable" "g" u.Query.u_var;
  Alcotest.(check string) "function" "use" u.Query.u_fn

let test_guarded_use_ok () =
  let p =
    prog
      {|
      struct S { int x; }
      S g;
      void dispose() { g = null; }
      int use() {
        if (g != null) { return g.x; }
        return 0;
      }
      int main() { dispose(); return use(); }
      |}
  in
  Alcotest.(check int) "guard suppresses the report" 0 (List.length (Query.unsafe_uses p))

let test_inverted_guard () =
  let p =
    prog
      {|
      struct S { int x; }
      S g;
      void dispose() { g = null; }
      int use() {
        if (g == null) { return 0; } else { return g.x; }
      }
      int main() { dispose(); return use(); }
      |}
  in
  Alcotest.(check int) "else-branch of == null is guarded" 0
    (List.length (Query.unsafe_uses p))

let test_use_in_wrong_branch () =
  let p =
    prog
      {|
      struct S { int x; }
      S g;
      void dispose() { g = null; }
      int use() {
        if (g == null) { return g.x; }
        return 0;
      }
      int main() { dispose(); return use(); }
      |}
  in
  Alcotest.(check int) "use in the null branch is reported" 1
    (List.length (Query.unsafe_uses p))

let test_reassignment_guards () =
  let p =
    prog
      {|
      struct S { int x; }
      S g;
      int main() {
        g = null;
        g = new S;
        return g.x;
      }
      |}
  in
  Alcotest.(check int) "straight-line reallocation guards the use" 0
    (List.length (Query.unsafe_uses p))

let test_join_loses_one_sided_guarantee () =
  let p =
    prog
      {|
      struct S { int x; }
      S g;
      int main() {
        g = null;
        if (argc() > 0) { g = new S; }
        return g.x;
      }
      |}
  in
  Alcotest.(check int) "one-sided reallocation does not guard" 1
    (List.length (Query.unsafe_uses p))

let test_arrays_and_indexing () =
  let p =
    prog
      {|
      int[] buf;
      void dispose() { buf = null; }
      int main() {
        dispose();
        return buf[0];
      }
      |}
  in
  let uses = Query.unsafe_uses p in
  Alcotest.(check int) "index use reported" 1 (List.length uses);
  match (List.hd uses).Query.u_kind with
  | `Index -> ()
  | `Field _ -> Alcotest.fail "expected an index use"

let test_only_filter () =
  let p =
    prog
      {|
      struct S { int x; }
      S a;
      S b;
      int main() {
        a = null;
        b = null;
        return a.x + b.x;
      }
      |}
  in
  Alcotest.(check int) "both without filter" 2 (List.length (Query.unsafe_uses p));
  let only_a = Query.unsafe_uses ~only:[ "a" ] p in
  Alcotest.(check int) "filtered to a" 1 (List.length only_a);
  Alcotest.(check string) "it is a" "a" (List.hd only_a).Query.u_var

let test_rhythmim_scan () =
  (* the RHYTHMBOX analogue: both disposed privs have unguarded handler
     uses — the paper's "more than one hundred instances" shape, scaled *)
  let p = Sbi_corpus.Study.checked Sbi_corpus.Corpus.rhythmim in
  let nulled = List.map fst (Query.nulled_vars p) in
  Alcotest.(check bool) "timer_priv disposed" true (List.mem "timer_priv" nulled);
  Alcotest.(check bool) "view_priv disposed" true (List.mem "view_priv" nulled);
  let uses = Query.unsafe_uses p in
  Alcotest.(check bool) "finds the dispatch dereferences" true (List.length uses >= 2);
  let fns = List.map fst (Query.count_by_function uses) in
  Alcotest.(check bool) "dispatch is implicated" true (List.mem "dispatch" fns)

let suite =
  [
    Alcotest.test_case "nulled variable collection" `Quick test_nulled_vars;
    Alcotest.test_case "unguarded use found" `Quick test_unguarded_use_found;
    Alcotest.test_case "guarded use suppressed" `Quick test_guarded_use_ok;
    Alcotest.test_case "inverted guard" `Quick test_inverted_guard;
    Alcotest.test_case "use in the null branch" `Quick test_use_in_wrong_branch;
    Alcotest.test_case "reassignment guards" `Quick test_reassignment_guards;
    Alcotest.test_case "join drops one-sided guarantees" `Quick test_join_loses_one_sided_guarantee;
    Alcotest.test_case "array indexing uses" `Quick test_arrays_and_indexing;
    Alcotest.test_case "only filter" `Quick test_only_filter;
    Alcotest.test_case "rhythmim scan (paper §1)" `Quick test_rhythmim_scan;
  ]
