(* Bytecode VM tests: unit semantics plus differential testing against the
   tree-walking interpreter — outcomes, output, step counts, ground-truth
   bugs, crash stacks, and the full observation-hook event stream must all
   be identical. *)
open Sbi_lang

let compile_src src = Vm.compile (Check.check_string src)

let run_vm ?(config = Interp.default_config) src = Vm.run (Check.check_string src) config

let finished_int r =
  match r.Interp.outcome with
  | Interp.Finished (Value.VInt n) -> n
  | _ -> Alcotest.fail "expected int result"

let test_vm_basics () =
  Alcotest.(check int) "arith" 17 (finished_int (run_vm "int main() { return 2 + 3 * 5; }"));
  Alcotest.(check int) "locals" 7
    (finished_int (run_vm "int main() { int a = 3; int b = 4; return a + b; }"));
  Alcotest.(check int) "globals" 5
    (finished_int (run_vm "int g = 2; int main() { g = g + 3; return g; }"));
  Alcotest.(check int) "call" 120
    (finished_int
       (run_vm
          "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } int main() { return fact(5); }"));
  let r = run_vm {|int main() { println("hi " + to_str(2)); return 0; }|} in
  Alcotest.(check string) "output" "hi 2\n" r.Interp.output

let test_vm_control_flow () =
  Alcotest.(check int) "while" 45
    (finished_int
       (run_vm "int main() { int s = 0; int i = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }"));
  Alcotest.(check int) "for with break/continue" 9
    (finished_int
       (run_vm
          "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } if (i > 6) { break; } s = s + i; } return s; }"));
  Alcotest.(check int) "nested loops with break" 6
    (finished_int
       (run_vm
          "int main() { int s = 0; for (int i = 0; i < 3; i = i + 1) { for (int j = 0; j < 5; j = j + 1) { if (j > 1) { break; } s = s + 1; } } return s; }"));
  Alcotest.(check int) "short-circuit" 1
    (finished_int
       (run_vm "int main() { int[] a = null; if (false && a[0] == 1) { return 0; } return 1; }"))

let test_vm_heap () =
  Alcotest.(check int) "arrays and structs" 6
    (finished_int
       (run_vm
          {|struct N { int v; N next; }
            int main() {
              N a = new N; a.v = 1;
              N b = new N; b.v = 2; a.next = b;
              int[] xs = new int[2]; xs[0] = 3;
              return a.v + a.next.v + xs[0];
            }|}))

let test_vm_crashes () =
  let kind src =
    match (run_vm src).Interp.outcome with
    | Interp.Crashed c -> c.Interp.kind
    | _ -> Alcotest.fail "expected crash"
  in
  (match kind "int main() { int[] a = null; return a[0]; }" with
  | Interp.Null_deref -> ()
  | _ -> Alcotest.fail "null deref");
  (match kind "int main() { int z = 0; return 1 / z; }" with
  | Interp.Div_by_zero -> ()
  | _ -> Alcotest.fail "div by zero");
  match kind "int f(int n) { return f(n + 1); } int main() { return f(0); }" with
  | Interp.Stack_overflow -> ()
  | _ -> Alcotest.fail "stack overflow"

let test_vm_crash_stack () =
  let r = run_vm "void c() { int[] a = null; a[0] = 1; } void b() { c(); } int main() { b(); return 0; }" in
  match r.Interp.outcome with
  | Interp.Crashed crash ->
      Alcotest.(check (list string)) "stack" [ "c"; "b"; "main" ] crash.Interp.stack
  | _ -> Alcotest.fail "expected crash"

let test_disassemble () =
  let p = compile_src "int main() { int x = 1; if (x > 0) { x = 2; } return x; }" in
  let main = p.Vm.funcs.(0) in
  let dis = Vm.disassemble main in
  let has needle =
    let hl = String.length dis and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub dis i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has tick" true (has "tick.stmt");
  Alcotest.(check bool) "has branch obs" true (has "obs.branch");
  Alcotest.(check bool) "has conditional jump" true (has "jmp.ifnot");
  Alcotest.(check bool) "has ret" true (has "ret")

(* --- differential testing --- *)

type hook_event =
  | HBranch of int * bool
  | HAssign of int * Value.t option
  | HCallRet of int * Value.t
  | HCond of int * bool

let recording_hooks events =
  {
    Interp.on_branch = (fun ~sid b -> events := HBranch (sid, b) :: !events);
    on_scalar_assign =
      (fun ~sid ~lhs:_ ~old_value ~read:_ -> events := HAssign (sid, old_value) :: !events);
    on_call_result = (fun ~sid v -> events := HCallRet (sid, v) :: !events);
    on_cond_operand = (fun ~eid b -> events := HCond (eid, b) :: !events);
  }

let outcomes_agree a b =
  match (a.Interp.outcome, b.Interp.outcome) with
  | Interp.Finished x, Interp.Finished y -> Value.equal x y
  | Interp.Crashed x, Interp.Crashed y ->
      x.Interp.kind = y.Interp.kind
      && x.Interp.crash_fn = y.Interp.crash_fn
      && x.Interp.stack = y.Interp.stack
  | _ -> false

let differential ?(config = Interp.default_config) prog =
  let ev_a = ref [] and ev_b = ref [] in
  let ra = Interp.run prog { config with Interp.hooks = recording_hooks ev_a } in
  let rb = Vm.run prog { config with Interp.hooks = recording_hooks ev_b } in
  outcomes_agree ra rb
  && String.equal ra.Interp.output rb.Interp.output
  && ra.Interp.steps = rb.Interp.steps
  && ra.Interp.bugs_triggered = rb.Interp.bugs_triggered
  && ra.Interp.events = rb.Interp.events
  && !ev_a = !ev_b

let qcheck_differential_generated =
  QCheck2.Test.make ~name:"VM and interpreter agree on generated programs" ~count:80
    Test_gen.gen_program (fun src -> differential (Check.check_string src))

let test_differential_corpus () =
  List.iter
    (fun (study : Sbi_corpus.Study.t) ->
      let prog = Sbi_corpus.Study.checked study in
      let compiled = Vm.compile prog in
      for run = 0 to 14 do
        let args = study.Sbi_corpus.Study.gen_input ~seed:21 ~run in
        let config =
          { Interp.default_config with Interp.args; nondet_seed = run + 99 }
        in
        let ra = Interp.run prog config in
        let rb = Vm.run_compiled compiled config in
        if not (outcomes_agree ra rb) then
          Alcotest.failf "%s run %d: outcome mismatch" study.Sbi_corpus.Study.name run;
        Alcotest.(check string)
          (Printf.sprintf "%s run %d output" study.Sbi_corpus.Study.name run)
          ra.Interp.output rb.Interp.output;
        Alcotest.(check int)
          (Printf.sprintf "%s run %d steps" study.Sbi_corpus.Study.name run)
          ra.Interp.steps rb.Interp.steps;
        Alcotest.(check (list int))
          (Printf.sprintf "%s run %d bugs" study.Sbi_corpus.Study.name run)
          ra.Interp.bugs_triggered rb.Interp.bugs_triggered
      done)
    Sbi_corpus.Corpus.all

let test_differential_hooks_on_corpus () =
  let study = Sbi_corpus.Corpus.exifim in
  let prog = Sbi_corpus.Study.checked study in
  for run = 0 to 9 do
    let args = study.Sbi_corpus.Study.gen_input ~seed:33 ~run in
    let ok =
      differential ~config:{ Interp.default_config with Interp.args; nondet_seed = run } prog
    in
    Alcotest.(check bool) (Printf.sprintf "hook streams agree (run %d)" run) true ok
  done

let test_vm_instrumented_collection () =
  (* end-to-end: a dataset collected by observing VM runs equals one
     collected from interpreter runs *)
  let study = Sbi_corpus.Corpus.bcim in
  let prog = Sbi_corpus.Study.checked study in
  let t = Sbi_instrument.Transform.instrument prog in
  let compiled = Vm.compile prog in
  let collect_with runner =
    let acc = ref [] in
    for run = 0 to 19 do
      let truths = ref [] in
      let hooks =
        Sbi_instrument.Observe.hooks t
          ~visit:(fun _ -> true)
          ~record:(fun ~site ~truths:tr ->
            truths := (site, Array.to_list tr) :: !truths)
      in
      let args = study.Sbi_corpus.Study.gen_input ~seed:5 ~run in
      let _ = runner { Interp.default_config with Interp.args; hooks } in
      acc := List.rev !truths :: !acc
    done;
    List.rev !acc
  in
  let from_interp = collect_with (fun cfg -> Interp.run prog cfg) in
  let from_vm = collect_with (fun cfg -> Vm.run_compiled compiled cfg) in
  Alcotest.(check bool) "identical observation streams" true (from_interp = from_vm)

let test_corpus_compiles () =
  List.iter
    (fun (study : Sbi_corpus.Study.t) ->
      let p = Vm.compile (Sbi_corpus.Study.checked study) in
      Array.iter
        (fun (fn : Vm.func) ->
          Alcotest.(check bool)
            (study.Sbi_corpus.Study.name ^ "/" ^ fn.Vm.name ^ " nonempty")
            true
            (Array.length fn.Vm.code >= 2);
          (* every function ends in ret and every jump target is in range *)
          Alcotest.(check bool) "ends with ret" true
            (fn.Vm.code.(Array.length fn.Vm.code - 1) = Vm.IRet);
          Array.iter
            (fun instr ->
              match instr with
              | Vm.IJmp t | Vm.IJmpIf t | Vm.IJmpIfNot t ->
                  Alcotest.(check bool) "jump in range" true
                    (t >= 0 && t <= Array.length fn.Vm.code)
              | _ -> ())
            fn.Vm.code)
        p.Vm.funcs)
    Sbi_corpus.Corpus.all

let suite =
  [
    Alcotest.test_case "vm basics" `Quick test_vm_basics;
    Alcotest.test_case "vm control flow" `Quick test_vm_control_flow;
    Alcotest.test_case "vm heap" `Quick test_vm_heap;
    Alcotest.test_case "vm crash kinds" `Quick test_vm_crashes;
    Alcotest.test_case "vm crash stack" `Quick test_vm_crash_stack;
    Alcotest.test_case "disassembler" `Quick test_disassemble;
    Alcotest.test_case "corpus compiles to valid bytecode" `Quick test_corpus_compiles;
    QCheck_alcotest.to_alcotest qcheck_differential_generated;
    Alcotest.test_case "differential: corpus programs" `Quick test_differential_corpus;
    Alcotest.test_case "differential: hook streams" `Quick test_differential_hooks_on_corpus;
    Alcotest.test_case "differential: instrumented collection" `Quick test_vm_instrumented_collection;
  ]
