(* Tests for the plain-text table renderer. *)
open Sbi_util

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_basic_render () =
  let t = Texttab.create [ ("a", Texttab.Left); ("b", Texttab.Right) ] in
  Texttab.add_row t [ "x"; "1" ];
  Texttab.add_row t [ "longer"; "22" ];
  let out = Texttab.render t in
  let lines = String.split_on_char '\n' (String.trim out) in
  match List.map String.length lines with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "uniform line width" w w') rest
  | [] -> Alcotest.fail "empty render"

let test_alignment () =
  let t = Texttab.create [ ("n", Texttab.Right) ] in
  Texttab.add_row t [ "7" ];
  Texttab.add_row t [ "1234" ];
  let out = Texttab.render t in
  Alcotest.(check bool) "right alignment pads left" true (contains out "|    7 |")

let test_title_centred () =
  let t = Texttab.create ~title:"T" [ ("col", Texttab.Left) ] in
  Texttab.add_row t [ "v" ];
  let out = Texttab.render t in
  Alcotest.(check bool) "title on first line" true
    (match String.split_on_char '\n' out with first :: _ -> contains first "T" | [] -> false)

let test_short_row_padded () =
  let t = Texttab.create [ ("a", Texttab.Left); ("b", Texttab.Left) ] in
  Texttab.add_row t [ "only" ];
  let out = Texttab.render t in
  Alcotest.(check bool) "renders" true (contains out "only")

let test_long_row_rejected () =
  let t = Texttab.create [ ("a", Texttab.Left) ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Texttab.add_row: too many cells")
    (fun () -> Texttab.add_row t [ "x"; "y" ])

let test_rule () =
  let t = Texttab.create [ ("a", Texttab.Left) ] in
  Texttab.add_row t [ "1" ];
  Texttab.add_rule t;
  Texttab.add_row t [ "2" ];
  let out = Texttab.render t in
  let rules =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = '+')
      (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "4 rules" 4 (List.length rules)

let test_unicode_width () =
  (* thermometer characters are multi-byte but single-column *)
  let t = Texttab.create [ ("therm", Texttab.Left); ("x", Texttab.Left) ] in
  Texttab.add_row t [ "[\xe2\x96\x88\xe2\x96\x93]"; "a" ];
  Texttab.add_row t [ "[..]"; "b" ];
  let out = Texttab.render t in
  let lines = String.split_on_char '\n' (String.trim out) in
  let ascii_lines =
    List.filter (fun l -> String.for_all (fun c -> Char.code c < 128) l) lines
  in
  match ascii_lines with
  | a :: b :: _ ->
      Alcotest.(check int) "ascii line widths align" (String.length a) (String.length b)
  | _ -> Alcotest.fail "expected ascii lines"

let test_render_kv () =
  let out = Texttab.render_kv ~title:"facts" [ ("k", "v"); ("key2", "value2") ] in
  Alcotest.(check bool) "kv renders" true (contains out "key2" && contains out "value2")

let suite =
  [
    Alcotest.test_case "basic render with uniform widths" `Quick test_basic_render;
    Alcotest.test_case "right alignment" `Quick test_alignment;
    Alcotest.test_case "title centred" `Quick test_title_centred;
    Alcotest.test_case "short rows padded" `Quick test_short_row_padded;
    Alcotest.test_case "long rows rejected" `Quick test_long_row_rejected;
    Alcotest.test_case "horizontal rules" `Quick test_rule;
    Alcotest.test_case "unicode display width" `Quick test_unicode_width;
    Alcotest.test_case "render_kv" `Quick test_render_kv;
  ]
