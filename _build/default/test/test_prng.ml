(* Unit and property tests for Sbi_util.Prng. *)
open Sbi_util

let test_determinism () =
  let a = Prng.create 7 in
  let b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 in
  let b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 5)

let test_copy_independent () =
  let a = Prng.create 9 in
  ignore (Prng.int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.int64 a) (Prng.int64 b)

let test_split_diverges () =
  let a = Prng.create 3 in
  let child = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int64 a = Prng.int64 child then incr same
  done;
  Alcotest.(check bool) "parent and child diverge" true (!same < 5)

let test_int_bounds () =
  let rng = Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 13 in
    Alcotest.(check bool) "0 <= v < 13" true (v >= 0 && v < 13)
  done

let test_int_invalid () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_int_in_range () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-3) 4 in
    Alcotest.(check bool) "-3 <= v <= 4" true (v >= -3 && v <= 4)
  done

let test_unit_float_range () =
  let rng = Prng.create 17 in
  for _ = 1 to 10_000 do
    let v = Prng.unit_float rng in
    Alcotest.(check bool) "[0,1)" true (v >= 0. && v < 1.)
  done

let test_uniformity () =
  (* chi-square-ish check on 8 buckets *)
  let rng = Prng.create 23 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let b = Prng.int rng 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = float_of_int n /. 8. in
  Array.iter
    (fun c ->
      let dev = abs_float (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) "bucket within 5% of uniform" true (dev < 0.05))
    buckets

let test_bernoulli_rate () =
  let rng = Prng.create 29 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "empirical rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_bernoulli_edges () =
  let rng = Prng.create 31 in
  Alcotest.(check bool) "p=0 never" false (Prng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 always" true (Prng.bernoulli rng 1.)

let test_geometric_mean () =
  (* E[Geometric(p)] = 1/p *)
  let rng = Prng.create 37 in
  let p = 0.02 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Prng.geometric rng p
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f near 1/p = 50" mean)
    true
    (abs_float (mean -. 50.) < 2.5)

let test_geometric_support () =
  let rng = Prng.create 41 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) ">= 1" true (Prng.geometric rng 0.5 >= 1)
  done;
  Alcotest.(check int) "p=1 gives 1" 1 (Prng.geometric rng 1.)

let test_geometric_invalid () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Prng.geometric: p must be in (0,1]") (fun () ->
      ignore (Prng.geometric rng 0.))

let test_gaussian_moments () =
  let rng = Prng.create 43 in
  let n = 50_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let x = Prng.gaussian rng in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (abs_float mean < 0.02);
  Alcotest.(check bool) "variance near 1" true (abs_float (var -. 1.) < 0.05)

let test_permutation_valid () =
  let rng = Prng.create 47 in
  let p = Prng.permutation rng 100 in
  let seen = Array.make 100 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen)

let test_shuffle_preserves () =
  let rng = Prng.create 53 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Prng.create 59 in
  let s = Prng.sample_without_replacement rng 10 30 in
  Alcotest.(check int) "10 draws" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Prng.sample_without_replacement: k > n") (fun () ->
      ignore (Prng.sample_without_replacement rng 5 3))

let test_choice () =
  let rng = Prng.create 61 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "choice in array" true (Array.mem (Prng.choice rng arr) arr)
  done;
  Alcotest.(check string) "singleton list" "x" (Prng.choice_list rng [ "x" ])

let qcheck_int_bound =
  QCheck2.Test.make ~name:"prng int always within bound" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds diverge" `Quick test_different_seeds;
    Alcotest.test_case "copy is independent continuation" `Quick test_copy_independent;
    Alcotest.test_case "split diverges from parent" `Quick test_split_diverges;
    Alcotest.test_case "int respects bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick test_int_invalid;
    Alcotest.test_case "int_in inclusive range" `Quick test_int_in_range;
    Alcotest.test_case "unit_float in [0,1)" `Quick test_unit_float_range;
    Alcotest.test_case "uniformity over 8 buckets" `Slow test_uniformity;
    Alcotest.test_case "bernoulli empirical rate" `Slow test_bernoulli_rate;
    Alcotest.test_case "bernoulli p=0 and p=1" `Quick test_bernoulli_edges;
    Alcotest.test_case "geometric mean is 1/p" `Slow test_geometric_mean;
    Alcotest.test_case "geometric support starts at 1" `Quick test_geometric_support;
    Alcotest.test_case "geometric rejects p=0" `Quick test_geometric_invalid;
    Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
    Alcotest.test_case "permutation is valid" `Quick test_permutation_valid;
    Alcotest.test_case "shuffle preserves multiset" `Quick test_shuffle_preserves;
    Alcotest.test_case "sampling without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "choice stays in range" `Quick test_choice;
    QCheck_alcotest.to_alcotest qcheck_int_bound;
  ]
