(* Tests for the statistical core: counts, scores, pruning (including the
   paper's §3.1 control-dependence example), ranking, iterative elimination
   (including a qcheck property for Lemma 3.1), affinity, thermometers, and
   the runs-needed analysis. *)
open Sbi_util
open Sbi_runtime
open Sbi_core

let mk_report ?(outcome = Report.Success) ?(sites = [||]) ?(preds = [||]) ?(bugs = [||]) id =
  {
    Report.run_id = id;
    outcome;
    observed_sites = sites;
    true_preds = preds;
    true_counts = Array.map (fun _ -> 1) preds;
    bugs;
    crash_sig = None;
  }

(* two sites, two preds each: pred i lives on site i/2 *)
let mk_ds runs =
  Dataset.of_tables ~nsites:2 ~npreds:4 ~pred_site:[| 0; 0; 1; 1 |] (Array.of_list runs)

let test_counts () =
  let ds =
    mk_ds
      [
        mk_report ~outcome:Report.Failure ~sites:[| 0 |] ~preds:[| 0 |] 0;
        mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 1; 2 |] 1;
        mk_report ~sites:[| 0 |] ~preds:[| 0 |] 2;
        mk_report ~sites:[| 1 |] ~preds:[||] 3;
      ]
  in
  let c = Counts.compute ds in
  Alcotest.(check int) "num_f" 2 c.Counts.num_f;
  Alcotest.(check int) "num_s" 2 c.Counts.num_s;
  Alcotest.(check int) "F(p0)" 1 c.Counts.f.(0);
  Alcotest.(check int) "S(p0)" 1 c.Counts.s.(0);
  Alcotest.(check int) "F(p0 obs) = site0 failing obs" 2 c.Counts.f_obs.(0);
  Alcotest.(check int) "S(p0 obs)" 1 c.Counts.s_obs.(0);
  Alcotest.(check int) "F(p2)" 1 c.Counts.f.(2);
  Alcotest.(check int) "F(p2 obs) = site1 failing obs" 1 c.Counts.f_obs.(2);
  Alcotest.(check int) "S(p2 obs)" 1 c.Counts.s_obs.(2);
  Alcotest.(check bool) "p3 observed somewhere" true (Counts.observed_anywhere c 3);
  Alcotest.(check bool) "p3 never true" false (Counts.true_somewhere c 3)

let test_scores_formulas () =
  (* F(P)=8, S(P)=2, F(Pobs)=10, S(Pobs)=30, NumF=10 *)
  let runs =
    List.init 8 (fun i -> mk_report ~outcome:Report.Failure ~sites:[| 0 |] ~preds:[| 0 |] i)
    @ List.init 2 (fun i -> mk_report ~outcome:Report.Failure ~sites:[| 0 |] (8 + i))
    @ List.init 2 (fun i -> mk_report ~sites:[| 0 |] ~preds:[| 0 |] (10 + i))
    @ List.init 28 (fun i -> mk_report ~sites:[| 0 |] (12 + i))
  in
  let c = Counts.compute (mk_ds runs) in
  let sc = Scores.score c ~pred:0 in
  Alcotest.(check (float 1e-9)) "Failure = 8/10" 0.8 sc.Scores.failure;
  Alcotest.(check (float 1e-9)) "Context = 10/40" 0.25 sc.Scores.context;
  Alcotest.(check (float 1e-9)) "Increase = 0.55" 0.55 sc.Scores.increase;
  Alcotest.(check (float 1e-9)) "sensitivity = log 8 / log 10"
    (log 8. /. log 10.) sc.Scores.sensitivity;
  Alcotest.(check (float 1e-9)) "importance = harmonic mean"
    (Stats.harmonic_mean2 0.55 (log 8. /. log 10.))
    sc.Scores.importance;
  Alcotest.(check bool) "z positive" true (sc.Scores.z > 0.)

let test_scores_degenerate () =
  let c = Counts.compute (mk_ds [ mk_report 0 ]) in
  let sc = Scores.score c ~pred:0 in
  Alcotest.(check (float 1e-9)) "unobserved -> 0 failure" 0. sc.Scores.failure;
  Alcotest.(check (float 1e-9)) "unobserved -> 0 importance" 0. sc.Scores.importance

(* §3.1: the f == NULL / x == 0 example.  Site 0 carries "f == NULL"
   (branch), site 1 carries "x == 0" checked on the doomed path only.
   f==NULL true => crash; x==0 is always true at its site, and its site is
   only reached when already doomed.  Increase must keep f==NULL and prune
   x==0. *)
let test_prune_control_dependence () =
  let runs =
    (* 10 failing runs: f==NULL observed true, and the doomed-path site
       observed with x==0 true *)
    List.init 10 (fun i ->
        mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0; 2 |] i)
    (* 30 successful runs: site 0 observed, f==NULL false (pred 1 true);
       site 1 never reached *)
    @ List.init 30 (fun i -> mk_report ~sites:[| 0 |] ~preds:[| 1 |] (10 + i))
  in
  let c = Counts.compute (mk_ds runs) in
  Alcotest.(check bool) "f==NULL retained" true (Prune.keep c ~pred:0);
  Alcotest.(check bool) "x==0 pruned (Increase = 0)" false (Prune.keep c ~pred:2);
  Alcotest.(check bool) "f!=NULL pruned" false (Prune.keep c ~pred:1);
  let sc = Scores.score c ~pred:2 in
  Alcotest.(check (float 1e-9)) "x==0 Failure = 1" 1. sc.Scores.failure;
  Alcotest.(check (float 1e-9)) "x==0 Context = 1" 1. sc.Scores.context;
  Alcotest.(check (float 1e-9)) "x==0 Increase = 0" 0. sc.Scores.increase

let test_prune_invariant () =
  (* a predicate true in every run (program invariant): Increase <= 0 *)
  let runs =
    List.init 5 (fun i -> mk_report ~outcome:Report.Failure ~sites:[| 0 |] ~preds:[| 0 |] i)
    @ List.init 20 (fun i -> mk_report ~sites:[| 0 |] ~preds:[| 0 |] (5 + i))
  in
  let c = Counts.compute (mk_ds runs) in
  Alcotest.(check bool) "invariant pruned" false (Prune.keep c ~pred:0)

let test_prune_low_confidence () =
  (* one failing observation only: positive increase but wide CI *)
  let runs =
    [ mk_report ~outcome:Report.Failure ~sites:[| 0 |] ~preds:[| 0 |] 0;
      mk_report ~sites:[| 0 |] 1 ]
  in
  let c = Counts.compute (mk_ds runs) in
  Alcotest.(check bool) "single observation pruned by CI" false (Prune.keep c ~pred:0)

let test_prune_unreached () =
  let runs = [ mk_report ~outcome:Report.Failure 0; mk_report 1 ] in
  let c = Counts.compute (mk_ds runs) in
  Alcotest.(check (list int)) "nothing retained" [] (Prune.retained c)

let test_rank_strategies () =
  (* p0: huge F, tiny increase; p2: tiny F, increase 1 *)
  let runs =
    List.init 50 (fun i ->
        mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |] i)
    @ [ mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0; 2 |] 50 ]
    @ List.init 49 (fun i -> mk_report ~sites:[| 0; 1 |] ~preds:[| 0 |] (51 + i))
  in
  let c = Counts.compute (mk_ds runs) in
  let scores = [| Scores.score c ~pred:0; Scores.score c ~pred:2 |] in
  let by_f = Rank.sort Rank.By_failure_count scores in
  Alcotest.(check int) "by F: p0 first" 0 by_f.(0).Scores.pred;
  let by_inc = Rank.sort Rank.By_increase scores in
  Alcotest.(check int) "by Increase: p2 first" 2 by_inc.(0).Scores.pred;
  let top1 = Rank.top ~n:1 Rank.By_importance scores in
  Alcotest.(check int) "top n" 1 (List.length top1)

(* --- elimination --- *)

(* Synthetic multi-bug world: bug b (0..k-1) has predicate 2b true exactly
   in its failing runs (deterministic predictor); all sites always
   observed. *)
let synthetic_world ~nbugs ~runs_per_bug ~nsuccess =
  let nsites = nbugs in
  let npreds = 2 * nbugs in
  let pred_site = Array.init npreds (fun p -> p / 2) in
  let all_sites = Array.init nsites Fun.id in
  let runs = ref [] in
  let id = ref 0 in
  for b = 0 to nbugs - 1 do
    for _ = 1 to runs_per_bug do
      runs :=
        mk_report ~outcome:Report.Failure ~sites:all_sites ~preds:[| 2 * b |] ~bugs:[| b |] !id
        :: !runs;
      incr id
    done
  done;
  for _ = 1 to nsuccess do
    runs := mk_report ~sites:all_sites !id :: !runs;
    incr id
  done;
  Dataset.of_tables ~nsites ~npreds ~pred_site (Array.of_list (List.rev !runs))

let test_eliminate_covers_all_bugs () =
  let ds = synthetic_world ~nbugs:4 ~runs_per_bug:25 ~nsuccess:100 in
  let result = Eliminate.run ds in
  let selected = Eliminate.selected_preds result in
  Alcotest.(check int) "one predictor per bug" 4 (List.length selected);
  List.iter
    (fun b -> Alcotest.(check bool) "bug covered" true (List.mem (2 * b) selected))
    [ 0; 1; 2; 3 ];
  Alcotest.(check int) "no failures left" 0 result.Eliminate.failures_remaining

let test_eliminate_order_by_importance () =
  (* bug 0 has 50 failing runs, bug 1 has 5: bug 0's predictor first *)
  let mk b n id0 =
    List.init n (fun i ->
        mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 2 * b |] ~bugs:[| b |]
          (id0 + i))
  in
  let runs = mk 0 50 0 @ mk 1 5 50 @ List.init 100 (fun i -> mk_report ~sites:[| 0; 1 |] (55 + i)) in
  let ds = Dataset.of_tables ~nsites:2 ~npreds:4 ~pred_site:[| 0; 0; 1; 1 |] (Array.of_list runs) in
  let result = Eliminate.run ds in
  match Eliminate.selected_preds result with
  | [ first; second ] ->
      Alcotest.(check int) "common bug first" 0 first;
      Alcotest.(check int) "rare bug second" 2 second
  | l -> Alcotest.failf "expected 2 selections, got %d" (List.length l)

let test_eliminate_redundant_collapse () =
  (* two logically identical predicates for one bug: only one selected *)
  let runs =
    List.init 30 (fun i ->
        mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0; 2 |] i)
    @ List.init 60 (fun i -> mk_report ~sites:[| 0; 1 |] (30 + i))
  in
  let ds = mk_ds runs in
  let result = Eliminate.run ds in
  Alcotest.(check int) "one predicate selected" 1
    (List.length (Eliminate.selected_preds result))

let qcheck_lemma_3_1 =
  (* Lemma 3.1: elimination selects at least one predicate predicting at
     least one failure of every bug whose profile is covered by the
     candidate predicates. *)
  let gen = QCheck2.Gen.(pair (int_range 1 6) (int_range 5 40)) in
  QCheck2.Test.make ~name:"Lemma 3.1: every covered bug gets a predictor" ~count:30 gen
    (fun (nbugs, runs_per_bug) ->
      let ds = synthetic_world ~nbugs ~runs_per_bug ~nsuccess:60 in
      let result = Eliminate.run ds in
      let selected = Eliminate.selected_preds result in
      List.for_all
        (fun b ->
          List.exists
            (fun p ->
              Array.exists
                (fun (r : Report.t) ->
                  Report.outcome_is_failure r.Report.outcome
                  && Report.has_bug r b && Report.is_true r p)
                ds.Dataset.runs)
            selected)
        (List.init nbugs Fun.id))

let test_discard_proposals () =
  let ds = synthetic_world ~nbugs:2 ~runs_per_bug:20 ~nsuccess:50 in
  (* after selecting pred 0 under each proposal, check remaining runs *)
  let with_discard d =
    Eliminate.run ~discard:d ~max_selections:1 ~candidates:[ 0 ] ds
  in
  let r1 = with_discard Eliminate.Discard_all_true in
  (* pred 0 true only in bug-0 failing runs (20 of them) *)
  Alcotest.(check int) "proposal 1 removes 20 runs" (90 - 20) r1.Eliminate.runs_remaining;
  let r2 = with_discard Eliminate.Discard_failing_true in
  Alcotest.(check int) "proposal 2 removes failing only" (90 - 20) r2.Eliminate.runs_remaining;
  let r3 = with_discard Eliminate.Relabel_failing in
  Alcotest.(check int) "proposal 3 keeps all runs" 90 r3.Eliminate.runs_remaining;
  Alcotest.(check int) "proposal 3 relabels: 20 fewer failures" 20
    r3.Eliminate.failures_remaining

let test_discard_proposal_1_vs_2_successes () =
  (* make pred 0 true in successes too: proposal 1 removes them, 2 keeps *)
  let runs =
    List.init 20 (fun i ->
        mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |] ~bugs:[| 0 |] i)
    @ List.init 10 (fun i -> mk_report ~sites:[| 0; 1 |] ~preds:[| 0 |] (20 + i))
    @ List.init 40 (fun i -> mk_report ~sites:[| 0; 1 |] (30 + i))
  in
  let ds = mk_ds runs in
  let r1 = Eliminate.run ~discard:Eliminate.Discard_all_true ~max_selections:1 ~candidates:[ 0 ] ds in
  Alcotest.(check int) "proposal 1: 30 runs removed" 40 r1.Eliminate.runs_remaining;
  let r2 =
    Eliminate.run ~discard:Eliminate.Discard_failing_true ~max_selections:1 ~candidates:[ 0 ] ds
  in
  Alcotest.(check int) "proposal 2: 20 runs removed" 50 r2.Eliminate.runs_remaining

let test_complementary_predicates_proposal_3 () =
  (* §5: P and ¬P are the best predictors of *different* bugs.  Initially
     Increase(¬P) < 0 — it is overshadowed by P's dominant bug — so under
     proposal (1) it is pruned for good.  Under proposal (3), once P is
     selected and its failing runs relabelled, ¬P's Increase turns
     confidently positive and it is selected too. *)
  let runs =
    (* bug A: 300 failing runs with P (pred 0) true *)
    List.init 300 (fun i ->
        mk_report ~outcome:Report.Failure ~sites:[| 0 |] ~preds:[| 0 |] ~bugs:[| 0 |] i)
    (* bug B: 40 failing runs with ¬P (pred 1) true *)
    @ List.init 40 (fun i ->
          mk_report ~outcome:Report.Failure ~sites:[| 0 |] ~preds:[| 1 |] ~bugs:[| 1 |]
            (300 + i))
    (* successes: 30 with P, 70 with ¬P *)
    @ List.init 30 (fun i -> mk_report ~sites:[| 0 |] ~preds:[| 0 |] (340 + i))
    @ List.init 70 (fun i -> mk_report ~sites:[| 0 |] ~preds:[| 1 |] (370 + i))
  in
  let ds = mk_ds runs in
  (* sanity: ¬P is pruned on the initial dataset *)
  let c0 = Counts.compute ds in
  Alcotest.(check bool) "not-P initially pruned" false (Prune.keep c0 ~pred:1);
  let r1 = Eliminate.run ~discard:Eliminate.Discard_all_true ds in
  Alcotest.(check (list int)) "proposal 1 finds only P" [ 0 ] (Eliminate.selected_preds r1);
  let r3 = Eliminate.run ~discard:Eliminate.Relabel_failing ds in
  Alcotest.(check (list int)) "proposal 3 finds P then not-P" [ 0; 1 ]
    (Eliminate.selected_preds r3);
  Alcotest.(check int) "proposal 3 covers all failures" 0 r3.Eliminate.failures_remaining

let test_max_selections () =
  let ds = synthetic_world ~nbugs:5 ~runs_per_bug:20 ~nsuccess:50 in
  let r = Eliminate.run ~max_selections:2 ds in
  Alcotest.(check int) "stops at max" 2 (List.length r.Eliminate.selections)

(* --- affinity --- *)

let test_affinity () =
  (* pred 0 and pred 2 predict the same bug; pred 4/6 a different one *)
  let pred_site = [| 0; 0; 1; 1; 2; 2; 3; 3 |] in
  let all_sites = [| 0; 1; 2; 3 |] in
  let runs =
    List.init 30 (fun i ->
        mk_report ~outcome:Report.Failure ~sites:all_sites ~preds:[| 0; 2 |] i)
    @ List.init 30 (fun i ->
          mk_report ~outcome:Report.Failure ~sites:all_sites ~preds:[| 4; 6 |] (30 + i))
    @ List.init 60 (fun i -> mk_report ~sites:all_sites (60 + i))
  in
  let ds = Dataset.of_tables ~nsites:4 ~npreds:8 ~pred_site (Array.of_list runs) in
  let entries = Affinity.list ds ~selected:0 ~others:[ 2; 4; 6 ] in
  (match entries with
  | first :: _ ->
      Alcotest.(check int) "pred 2 most affected by selecting pred 0" 2
        first.Affinity.pred;
      Alcotest.(check bool) "its importance drops to 0" true
        (first.Affinity.importance_after < 1e-9)
  | [] -> Alcotest.fail "no affinity entries");
  match Affinity.top_affine entries with
  | Some 2 -> ()
  | _ -> Alcotest.fail "top affine should be pred 2"

(* --- thermometer --- *)

let score_of ~f ~s ~f_obs ~s_obs ~num_f =
  let runs =
    List.init f (fun i -> mk_report ~outcome:Report.Failure ~sites:[| 0 |] ~preds:[| 0 |] i)
    @ List.init (f_obs - f) (fun i -> mk_report ~outcome:Report.Failure ~sites:[| 0 |] (f + i))
    @ List.init (num_f - f_obs) (fun i -> mk_report ~outcome:Report.Failure (f_obs + i))
    @ List.init s (fun i -> mk_report ~sites:[| 0 |] ~preds:[| 0 |] (num_f + i))
    @ List.init (s_obs - s) (fun i -> mk_report ~sites:[| 0 |] (num_f + s + i))
  in
  Scores.score (Counts.compute (mk_ds runs)) ~pred:0

let test_thermometer_bands () =
  let sc = score_of ~f:50 ~s:5 ~f_obs:60 ~s_obs:100 ~num_f:80 in
  let th = Thermometer.render_ascii ~max_width:20 ~max_fs:55 sc in
  Alcotest.(check bool) "starts with [" true (th.[0] = '[');
  Alcotest.(check bool) "ends with ]" true (th.[String.length th - 1] = ']');
  Alcotest.(check int) "width + brackets" 22 (String.length th);
  Alcotest.(check bool) "has context band" true (String.contains th '#');
  Alcotest.(check bool) "has increase band" true (String.contains th '=');
  (* unicode render has same display width *)
  let uth = Thermometer.render ~max_width:20 ~max_fs:55 sc in
  Alcotest.(check bool) "unicode render non-empty" true (String.length uth > 20)

let test_thermometer_log_scale () =
  let big = score_of ~f:100 ~s:0 ~f_obs:100 ~s_obs:10 ~num_f:100 in
  let small = score_of ~f:3 ~s:0 ~f_obs:3 ~s_obs:10 ~num_f:100 in
  let ink th = String.fold_left (fun acc c -> if c = ' ' then acc else acc + 1) 0 th in
  Alcotest.(check bool) "bigger F+S, longer thermometer" true
    (ink (Thermometer.render_ascii ~max_fs:100 big)
    > ink (Thermometer.render_ascii ~max_fs:100 small))

let test_thermometer_zero () =
  let sc = score_of ~f:0 ~s:0 ~f_obs:1 ~s_obs:1 ~num_f:2 in
  let th = Thermometer.render_ascii ~max_width:10 ~max_fs:100 sc in
  Alcotest.(check string) "all padding" "[          ]" th

(* --- runs needed --- *)

let test_runs_needed () =
  (* deterministic predictor for a bug occurring steadily: importance
     stabilizes early *)
  let runs =
    List.concat
      (List.init 100 (fun i ->
           [
             mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |] (3 * i);
             mk_report ~sites:[| 0; 1 |] ((3 * i) + 1);
             mk_report ~sites:[| 0; 1 |] ((3 * i) + 2);
           ]))
  in
  let ds = mk_ds runs in
  match Runs_needed.min_runs ds ~pred:0 ~grid:[ 30; 60; 150 ] with
  | Some ans ->
      Alcotest.(check int) "stabilizes at the first grid point" 30 ans.Runs_needed.min_runs;
      Alcotest.(check int) "F at min" 10 ans.Runs_needed.f_at_min;
      Alcotest.(check bool) "full importance positive" true (ans.Runs_needed.full_importance > 0.)
  | None -> Alcotest.fail "expected an answer"

let test_runs_needed_rare_bug () =
  (* the predictor's failures only appear in the last third of the runs:
     early prefixes can't satisfy the threshold *)
  let quiet =
    List.init 200 (fun i -> mk_report ~sites:[| 0; 1 |] i)
  in
  let active =
    List.concat
      (List.init 40 (fun i ->
           [
             mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |] (200 + (2 * i));
             mk_report ~sites:[| 0; 1 |] (201 + (2 * i));
           ]))
  in
  let ds = mk_ds (quiet @ active) in
  match Runs_needed.min_runs ds ~pred:0 ~grid:[ 100; 200; 250 ] with
  | Some ans ->
      Alcotest.(check bool) "needs to see the active region" true
        (ans.Runs_needed.min_runs >= 250)
  | None -> Alcotest.fail "expected an answer at the full dataset"

let test_curve () =
  let ds = synthetic_world ~nbugs:1 ~runs_per_bug:30 ~nsuccess:30 in
  let curve = Runs_needed.curve ds ~pred:0 ~grid:[ 20; 40; 1000 ] in
  (* grid points beyond the dataset are dropped; the full size is appended *)
  Alcotest.(check (list int)) "grid clipped and completed" [ 20; 40; 60 ]
    (List.map fst curve);
  List.iter
    (fun (_, imp) -> Alcotest.(check bool) "importance in [0,1]" true (imp >= 0. && imp <= 1.))
    curve;
  match List.rev curve with
  | (n, imp) :: _ ->
      Alcotest.(check int) "last point is the full dataset" 60 n;
      Alcotest.(check (float 1e-9)) "matches importance_at" imp
        (Runs_needed.importance_at ds ~pred:0 ~n:60)
  | [] -> Alcotest.fail "empty curve"

let test_importance_at_prefix () =
  let ds = synthetic_world ~nbugs:1 ~runs_per_bug:20 ~nsuccess:20 in
  let full = Runs_needed.importance_at ds ~pred:0 ~n:(Dataset.nruns ds) in
  Alcotest.(check bool) "positive" true (full > 0.)

(* --- analysis pipeline --- *)

let test_analysis_summary () =
  let ds = synthetic_world ~nbugs:3 ~runs_per_bug:20 ~nsuccess:60 in
  let a = Analysis.analyze ds in
  let s = Analysis.summary a in
  Alcotest.(check int) "runs" 120 s.Analysis.runs;
  Alcotest.(check int) "failing" 60 s.Analysis.failing;
  Alcotest.(check int) "successful" 60 s.Analysis.successful;
  Alcotest.(check int) "sites" 3 s.Analysis.sites;
  Alcotest.(check int) "initial preds" 6 s.Analysis.initial_preds;
  Alcotest.(check int) "retained = 3 (one per bug)" 3 s.Analysis.retained_preds;
  Alcotest.(check int) "selected = 3" 3 s.Analysis.selected_preds

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "score formulas" `Quick test_scores_formulas;
    Alcotest.test_case "degenerate scores" `Quick test_scores_degenerate;
    Alcotest.test_case "prune: control dependence (paper §3.1)" `Quick test_prune_control_dependence;
    Alcotest.test_case "prune: invariants" `Quick test_prune_invariant;
    Alcotest.test_case "prune: low confidence" `Quick test_prune_low_confidence;
    Alcotest.test_case "prune: unreached" `Quick test_prune_unreached;
    Alcotest.test_case "ranking strategies" `Quick test_rank_strategies;
    Alcotest.test_case "elimination covers all bugs" `Quick test_eliminate_covers_all_bugs;
    Alcotest.test_case "elimination orders by importance" `Quick test_eliminate_order_by_importance;
    Alcotest.test_case "elimination collapses redundancy" `Quick test_eliminate_redundant_collapse;
    QCheck_alcotest.to_alcotest qcheck_lemma_3_1;
    Alcotest.test_case "discard proposals semantics" `Quick test_discard_proposals;
    Alcotest.test_case "proposal 1 vs 2 on successes" `Quick test_discard_proposal_1_vs_2_successes;
    Alcotest.test_case "complementary predicates under proposal 3 (§5)" `Quick test_complementary_predicates_proposal_3;
    Alcotest.test_case "max selections cap" `Quick test_max_selections;
    Alcotest.test_case "affinity lists" `Quick test_affinity;
    Alcotest.test_case "thermometer bands" `Quick test_thermometer_bands;
    Alcotest.test_case "thermometer log scale" `Quick test_thermometer_log_scale;
    Alcotest.test_case "thermometer zero data" `Quick test_thermometer_zero;
    Alcotest.test_case "runs needed: stable predictor" `Quick test_runs_needed;
    Alcotest.test_case "runs needed: late bug" `Quick test_runs_needed_rare_bug;
    Alcotest.test_case "importance curve" `Quick test_curve;
    Alcotest.test_case "importance at prefix" `Quick test_importance_at_prefix;
    Alcotest.test_case "analysis summary" `Quick test_analysis_summary;
  ]
