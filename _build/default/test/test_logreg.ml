(* Tests for the ℓ₁ logistic-regression baseline. *)
open Sbi_runtime
open Sbi_logreg

let mk_report ?(outcome = Report.Success) ?(preds = [||]) id =
  {
    Report.run_id = id;
    outcome;
    observed_sites = [||];
    true_preds = preds;
    true_counts = Array.map (fun _ -> 1) preds;
    bugs = [||];
    crash_sig = None;
  }

let mk_ds ~npreds runs =
  Dataset.of_tables ~nsites:npreds ~npreds ~pred_site:(Array.init npreds Fun.id)
    (Array.of_list runs)

(* pred 0 perfectly predicts failure; pred 1 is noise *)
let separable ~n =
  List.concat
    (List.init n (fun i ->
         [
           mk_report ~outcome:Report.Failure ~preds:(if i mod 2 = 0 then [| 0 |] else [| 0; 1 |]) (2 * i);
           mk_report ~preds:(if i mod 3 = 0 then [| 1 |] else [||]) ((2 * i) + 1);
         ]))

let test_learns_separable () =
  let ds = mk_ds ~npreds:2 (separable ~n:100) in
  let model = Logreg.train ds in
  Alcotest.(check bool) "pred 0 weight positive" true (model.Logreg.weights.(0) > 0.5);
  Alcotest.(check bool) "pred 0 dominates noise" true
    (model.Logreg.weights.(0) > abs_float model.Logreg.weights.(1) *. 2.);
  Alcotest.(check bool) "high accuracy" true (Logreg.accuracy model ds > 0.95)

let test_prediction_monotone () =
  let ds = mk_ds ~npreds:2 (separable ~n:100) in
  let model = Logreg.train ds in
  let p_with = Logreg.predict model (mk_report ~preds:[| 0 |] 0) in
  let p_without = Logreg.predict model (mk_report 0) in
  Alcotest.(check bool) "predictor raises failure probability" true (p_with > p_without);
  Alcotest.(check bool) "probabilities in range" true
    (p_with > 0. && p_with < 1. && p_without > 0. && p_without < 1.)

let test_l1_sparsity () =
  (* many irrelevant predicates; strong penalty zeroes them *)
  let npreds = 40 in
  let runs =
    List.concat
      (List.init 150 (fun i ->
           let noise = [| 1 + ((i * 7) mod (npreds - 1)) |] in
           [
             mk_report ~outcome:Report.Failure ~preds:(Array.append [| 0 |] noise) (2 * i);
             mk_report ~preds:noise ((2 * i) + 1);
           ]))
  in
  let ds = mk_ds ~npreds runs in
  let strong =
    Logreg.train ~config:{ Logreg.default_config with Logreg.lambda = 0.02 } ds
  in
  let weak = Logreg.train ~config:{ Logreg.default_config with Logreg.lambda = 0.0 } ds in
  Alcotest.(check bool) "L1 produces sparser model" true
    (Logreg.nonzero strong < Logreg.nonzero weak);
  Alcotest.(check bool) "signal survives the penalty" true (strong.Logreg.weights.(0) > 0.)

let test_min_support_filter () =
  let runs =
    [ mk_report ~outcome:Report.Failure ~preds:[| 0 |] 0 ]
    @ List.init 50 (fun i ->
          if i mod 2 = 0 then mk_report ~outcome:Report.Failure ~preds:[| 1 |] (1 + i)
          else mk_report (1 + i))
  in
  let ds = mk_ds ~npreds:2 runs in
  let model =
    Logreg.train ~config:{ Logreg.default_config with Logreg.min_support = 5 } ds
  in
  Alcotest.(check (float 1e-12)) "rare predicate filtered out" 0. model.Logreg.weights.(0)

let test_top_weights () =
  let ds = mk_ds ~npreds:2 (separable ~n:60) in
  let model = Logreg.train ds in
  (match Logreg.top_weights model ~n:1 with
  | [ (0, w) ] -> Alcotest.(check bool) "top weight positive" true (w > 0.)
  | _ -> Alcotest.fail "expected pred 0 on top");
  Alcotest.(check bool) "n larger than nonzero is fine" true
    (List.length (Logreg.top_weights model ~n:100) <= 2)

let test_empty_dataset_rejected () =
  let ds = mk_ds ~npreds:2 [] in
  Alcotest.check_raises "empty rejected" (Invalid_argument "Logreg.train: empty dataset")
    (fun () -> ignore (Logreg.train ds))

let test_bias_learns_base_rate () =
  (* no predictive features: bias should push probability toward the
     majority class (mostly successes) *)
  let runs =
    List.init 100 (fun i ->
        if i mod 10 = 0 then mk_report ~outcome:Report.Failure i else mk_report i)
  in
  let ds = mk_ds ~npreds:2 runs in
  let model = Logreg.train ds in
  let p = Logreg.predict model (mk_report 0) in
  Alcotest.(check bool) "predicts below 0.5 for featureless run" true (p < 0.5)

let suite =
  [
    Alcotest.test_case "learns separable data" `Quick test_learns_separable;
    Alcotest.test_case "prediction monotone in features" `Quick test_prediction_monotone;
    Alcotest.test_case "L1 induces sparsity" `Quick test_l1_sparsity;
    Alcotest.test_case "min-support filter" `Quick test_min_support_filter;
    Alcotest.test_case "top weights" `Quick test_top_weights;
    Alcotest.test_case "empty dataset rejected" `Quick test_empty_dataset_rejected;
    Alcotest.test_case "bias captures base rate" `Quick test_bias_learns_base_rate;
  ]
