(* Tests for the bounded top-k selector. *)
open Sbi_util

let test_basic () =
  let xs = [| 5; 1; 9; 3; 7; 2; 8 |] in
  Alcotest.(check (list int)) "top 3 descending" [ 9; 8; 7 ]
    (Topk.top ~k:3 ~compare xs);
  Alcotest.(check (list int)) "k larger than input" [ 9; 8; 7; 5; 3; 2; 1 ]
    (Topk.top ~k:100 ~compare xs);
  Alcotest.(check (list int)) "k = 0" [] (Topk.top ~k:0 ~compare xs);
  Alcotest.(check (list int)) "empty input" [] (Topk.top ~k:3 ~compare [||])

let test_incremental () =
  let t = Topk.create ~k:2 ~compare in
  List.iter (Topk.add t) [ 4; 1; 6; 3; 9 ];
  Alcotest.(check int) "count capped" 2 (Topk.count t);
  Alcotest.(check (list int)) "best two" [ 9; 6 ] (Topk.to_sorted_list t)

let test_custom_compare () =
  (* keep the k smallest by inverting the comparison *)
  let smallest = Topk.top ~k:2 ~compare:(fun a b -> compare b a) [| 5; 1; 9; 3 |] in
  Alcotest.(check (list int)) "two smallest" [ 1; 3 ] smallest

let test_invalid () =
  Alcotest.check_raises "negative k" (Invalid_argument "Topk.create: k must be non-negative")
    (fun () -> ignore (Topk.create ~k:(-1) ~compare))

let qcheck_matches_sort =
  QCheck2.Test.make ~name:"topk agrees with sort-then-take" ~count:300
    QCheck2.Gen.(pair (int_range 0 12) (list small_int))
    (fun (k, xs) ->
      let arr = Array.of_list xs in
      let expected =
        let sorted = List.sort (fun a b -> compare b a) xs in
        List.filteri (fun i _ -> i < k) sorted
      in
      Topk.top ~k ~compare arr = expected)

let suite =
  [
    Alcotest.test_case "basic selection" `Quick test_basic;
    Alcotest.test_case "incremental interface" `Quick test_incremental;
    Alcotest.test_case "custom comparison" `Quick test_custom_compare;
    Alcotest.test_case "invalid k" `Quick test_invalid;
    QCheck_alcotest.to_alcotest qcheck_matches_sort;
  ]
