(* Corpus tests: every subject program parses/checks, every seeded bug is
   reachable by a crafted input, fixed versions survive the same inputs,
   and the output oracle catches the non-crashing bug. *)
open Sbi_lang
open Sbi_corpus

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let run_study ?(nondet_seed = 1) (study : Study.t) args =
  Interp.run (Study.checked study)
    { Interp.default_config with Interp.args; nondet_seed }

let run_fixed ?(nondet_seed = 1) (study : Study.t) args =
  match Study.checked_fixed study with
  | Some prog -> Interp.run prog { Interp.default_config with Interp.args; nondet_seed }
  | None -> Alcotest.fail "study has no fixed version"

let crashed r = match r.Interp.outcome with Interp.Crashed _ -> true | _ -> false
let has_bug r b = List.mem b r.Interp.bugs_triggered

let test_all_programs_check () =
  List.iter
    (fun (st : Study.t) ->
      ignore (Study.checked st);
      ignore (Study.checked_fixed st);
      Alcotest.(check bool)
        (st.Study.name ^ " has nonzero LoC")
        true
        (Study.loc_count st > 40))
    Corpus.all

let test_generators_deterministic () =
  List.iter
    (fun (st : Study.t) ->
      let a = st.Study.gen_input ~seed:7 ~run:3 in
      let b = st.Study.gen_input ~seed:7 ~run:3 in
      let c = st.Study.gen_input ~seed:8 ~run:3 in
      Alcotest.(check (array string)) (st.Study.name ^ " deterministic") a b;
      Alcotest.(check bool) (st.Study.name ^ " seed-sensitive") true (a <> c || st.Study.name = "");
      Alcotest.(check bool) (st.Study.name ^ " nonempty") true (Array.length a > 0))
    Corpus.all

let test_generated_runs_terminate () =
  List.iter
    (fun (st : Study.t) ->
      for run = 0 to 30 do
        let args = st.Study.gen_input ~seed:11 ~run in
        let r = run_study ~nondet_seed:run st args in
        match r.Interp.outcome with
        | Interp.Crashed { Interp.kind = Interp.Out_of_fuel; _ } ->
            Alcotest.failf "%s run %d exhausted fuel" st.Study.name run
        | _ -> ()
      done)
    Corpus.all

(* --- mossim bugs --- *)

let file_of n = String.concat " " (List.init n (fun i -> [| "alpha"; "beta"; "gamma"; "delta"; "epsilon" |].(i mod 5)))

let test_mossim_bug2_empty_file () =
  let r = run_study Corpus.mossim [| "-v"; "" |] in
  Alcotest.(check bool) "bug 2 recorded" true (has_bug r 2);
  Alcotest.(check bool) "crashed" true (crashed r);
  (* fixed version survives *)
  Alcotest.(check bool) "fixed survives" false (crashed (run_fixed Corpus.mossim [| "-v"; "" |]))

let test_mossim_bug3_bucket_walk () =
  let args = [| "-b"; file_of 20 |] in
  let r = run_study Corpus.mossim args in
  Alcotest.(check bool) "bug 3 recorded" true (has_bug r 3);
  Alcotest.(check bool) "crashed in bucket_lookup" true
    (match r.Interp.outcome with
    | Interp.Crashed c -> c.Interp.crash_fn = "bucket_lookup"
    | _ -> false);
  let f = run_fixed Corpus.mossim args in
  Alcotest.(check bool) "fixed survives" false (crashed f)

let test_mossim_bug5_language () =
  let args = Array.init 11 (fun i -> file_of (10 + i)) in
  let r = run_study Corpus.mossim args in
  Alcotest.(check bool) "bug 5 recorded" true (has_bug r 5);
  Alcotest.(check bool) "crashed in report" true
    (match r.Interp.outcome with
    | Interp.Crashed c -> c.Interp.crash_fn = "report"
    | _ -> false);
  Alcotest.(check bool) "fixed survives" false (crashed (run_fixed Corpus.mossim args))

let test_mossim_bug6_base_lookup () =
  let args = [| "-Bnosuch"; file_of 12 |] in
  let r = run_study Corpus.mossim args in
  Alcotest.(check bool) "bug 6 recorded" true (has_bug r 6);
  Alcotest.(check bool) "crashed" true (crashed r);
  Alcotest.(check bool) "fixed survives" false (crashed (run_fixed Corpus.mossim args))

let test_mossim_bug4_oom () =
  (* 9 identical long files: enough fingerprints to exhaust any budget in
     [120,200) without reaching the >= 10 file threshold of bug 5 *)
  let args = Array.make 9 (file_of 100) in
  let r = run_study Corpus.mossim args in
  Alcotest.(check bool) "bug 4 recorded" true (has_bug r 4);
  Alcotest.(check bool) "no bug 5" false (has_bug r 5);
  Alcotest.(check bool) "crashed in insert_fp" true
    (match r.Interp.outcome with
    | Interp.Crashed c -> c.Interp.crash_fn = "insert_fp"
    | _ -> false);
  Alcotest.(check bool) "fixed survives" false (crashed (run_fixed Corpus.mossim args))

let test_mossim_bug7_harmless () =
  let args = [| file_of 45 |] in
  let r = run_study Corpus.mossim args in
  Alcotest.(check bool) "bug 7 recorded" true (has_bug r 7);
  Alcotest.(check bool) "no crash" false (crashed r)

let test_mossim_bug1_overrun () =
  (* 8 near-identical files: 28 pairs all sharing fingerprints -> more than
     12 passages, overrun marked; crash is nondeterministic (1 in 4), so
     scan seeds for both outcomes *)
  let args = Array.make 8 (file_of 30) in
  let outcomes = List.init 24 (fun s -> run_study ~nondet_seed:s Corpus.mossim args) in
  let with_bug = List.filter (fun r -> has_bug r 1) outcomes in
  Alcotest.(check bool) "bug 1 marked under every schedule" true
    (List.length with_bug = 24);
  let crashes = List.filter crashed with_bug in
  Alcotest.(check bool) "crashes under some schedule" true (crashes <> []);
  Alcotest.(check bool) "survives under some schedule (nondeterministic)" true
    (List.length crashes < List.length with_bug);
  Alcotest.(check bool) "fixed never crashes" false
    (crashed (run_fixed ~nondet_seed:(List.length crashes) Corpus.mossim args))

let test_mossim_bug8_unreachable () =
  (* the generator never emits -z; even 200 generated inputs show no bug 8 *)
  for run = 0 to 199 do
    let args = Corpus.mossim.Study.gen_input ~seed:3 ~run in
    Alcotest.(check bool) "no -z flag generated" false (Array.mem "-z" args)
  done;
  (* but the path exists and is reachable by a crafted input *)
  let r = run_study Corpus.mossim [| "-z"; file_of 5 |] in
  Alcotest.(check bool) "bug 8 reachable by hand" true (has_bug r 8)

let test_mossim_bug9_oracle () =
  let args = [| "-c"; file_of 20 ^ " //c //c"; file_of 20 ^ " //c" |] in
  let r = run_study Corpus.mossim args in
  Alcotest.(check bool) "bug 9 recorded" true (has_bug r 9);
  Alcotest.(check bool) "no crash" false (crashed r);
  let f = run_fixed Corpus.mossim args in
  Alcotest.(check bool) "outputs differ (oracle fires)" false
    (String.equal r.Interp.output f.Interp.output);
  match Corpus.make_oracle Corpus.mossim ~nondet_salt:0 with
  | Some oracle -> Alcotest.(check bool) "oracle flags failure" true (oracle ~run_index:1 ~args r)
  | None -> Alcotest.fail "mossim must have an oracle"

let test_mossim_identical_output_when_bug_free () =
  let args = [| file_of 10; file_of 15 |] in
  let r = run_study Corpus.mossim args in
  let f = run_fixed Corpus.mossim args in
  Alcotest.(check bool) "both finish" true ((not (crashed r)) && not (crashed f));
  Alcotest.(check string) "identical output" f.Interp.output r.Interp.output

(* --- ccryptim --- *)

let test_ccrypt_bug () =
  let lines =
    [| "report.txt"; "notes.txt"; "secret.bin"; "todo.md"; "draft.tex"; "a.out"; "main.c";
       "log.1"; "log.2"; "core"; "data.csv"; "plan.org"; "readme"; "inbox.eml" |]
  in
  let args = Array.append [| "-e"; "key"; "" |] lines in
  let r = run_study Corpus.ccryptim args in
  Alcotest.(check bool) "bug recorded" true (has_bug r 1);
  Alcotest.(check bool) "crashed in get_response" true
    (match r.Interp.outcome with
    | Interp.Crashed c -> c.Interp.crash_fn = "get_response"
    | _ -> false)

let test_ccrypt_enough_responses () =
  let args = [| "-e"; "key"; "y y y y y y y y y y y y y y"; "report.txt"; "notes.txt" |] in
  let r = run_study Corpus.ccryptim args in
  Alcotest.(check bool) "no bug" false (has_bug r 1);
  Alcotest.(check bool) "no crash" false (crashed r)

let test_ccrypt_decrypt_inverts () =
  (* decrypting an encrypted line with the same key restores it *)
  let enc = run_study Corpus.ccryptim [| "-e"; "kq"; "y y y y"; "draft.tex" |] in
  Alcotest.(check bool) "encryption succeeded" false (crashed enc);
  match String.split_on_char '\n' enc.Interp.output with
  | first :: _ when String.length first > 0 && not (String.equal first "draft.tex") -> ()
  | _ -> Alcotest.fail "expected transformed output line"

(* --- bcim --- *)

let test_bc_bug () =
  let args = Array.init 14 (fun i -> Printf.sprintf "vx%d=%d" i i) in
  let r = run_study Corpus.bcim args in
  Alcotest.(check bool) "bug recorded" true (has_bug r 1);
  Alcotest.(check bool) "crash long after, in sweep" true
    (match r.Interp.outcome with
    | Interp.Crashed c -> c.Interp.crash_fn = "sweep"
    | _ -> false)

let test_bc_under_limit () =
  let args = Array.init 12 (fun i -> Printf.sprintf "vx%d=%d" i i) in
  let r = run_study Corpus.bcim args in
  Alcotest.(check bool) "no bug at the table limit" false (has_bug r 1);
  Alcotest.(check bool) "no crash" false (crashed r)

let test_bc_semantics () =
  let r = run_study Corpus.bcim [| "vxa=41"; "pxa"; "a3+7"; "a3+5" |] in
  Alcotest.(check bool) "no crash" false (crashed r);
  Alcotest.(check bool) "prints assignment" true
    (contains r.Interp.output "xa = 41");
  Alcotest.(check bool) "array accumulates" true
    (contains r.Interp.output "expr 12")

(* --- exifim --- *)

let test_exif_bug1 () =
  let r = run_study Corpus.exifim [| "idx:7" |] in
  Alcotest.(check bool) "bug 1 recorded" true (has_bug r 1);
  Alcotest.(check bool) "crashed in scan_back" true
    (match r.Interp.outcome with
    | Interp.Crashed c -> c.Interp.crash_fn = "scan_back"
    | _ -> false)

let test_exif_bug1_needs_missing_tag () =
  let r = run_study Corpus.exifim [| "std:10"; "idx:1" |] in
  Alcotest.(check bool) "present tag: no bug" false (has_bug r 1);
  Alcotest.(check bool) "no crash" false (crashed r)

let test_exif_bug2 () =
  let r = run_study Corpus.exifim [| "com:2000" |] in
  Alcotest.(check bool) "bug 2 recorded" true (has_bug r 2);
  Alcotest.(check bool) "crashed in load_comment" true
    (match r.Interp.outcome with
    | Interp.Crashed c -> c.Interp.crash_fn = "load_comment"
    | _ -> false)

let test_exif_bug3_delayed_null () =
  let r = run_study Corpus.exifim [| "canon:1800:200" |] in
  Alcotest.(check bool) "bug 3 recorded" true (has_bug r 3);
  (match r.Interp.outcome with
  | Interp.Crashed c ->
      Alcotest.(check string) "crash far from cause, in canon_save" "canon_save"
        c.Interp.crash_fn;
      Alcotest.(check bool) "null dereference" true (c.Interp.kind = Interp.Null_deref)
  | _ -> Alcotest.fail "expected crash");
  (* in-range maker note is fine *)
  let ok = run_study Corpus.exifim [| "canon:100:200" |] in
  Alcotest.(check bool) "valid canon tag survives" false (crashed ok)

(* --- rhythmim --- *)

let test_rhythm_race_nondeterminism () =
  let args = [| "timer"; "stop"; "play" |] in
  let outcomes = List.init 30 (fun s -> run_study ~nondet_seed:s Corpus.rhythmim args) in
  let crashes = List.filter crashed outcomes in
  let survivals = List.filter (fun r -> not (crashed r)) outcomes in
  Alcotest.(check bool) "crashes under some schedule" true (crashes <> []);
  Alcotest.(check bool) "survives under some schedule" true (survivals <> []);
  List.iter
    (fun r ->
      if crashed r then
        Alcotest.(check bool) "crashing schedules marked bug 1" true (has_bug r 1))
    outcomes

let test_rhythm_bug2 () =
  (* refresh queues an event; delpl disposes the view; under schedules where
     the event is still pending, the later dispatch crashes *)
  let args = [| "newpl"; "refresh"; "delpl"; "play" |] in
  let outcomes = List.init 30 (fun s -> run_study ~nondet_seed:s Corpus.rhythmim args) in
  let crashes = List.filter crashed outcomes in
  Alcotest.(check bool) "some schedule crashes via bug 2" true
    (List.exists (fun r -> has_bug r 2) crashes)

let test_rhythm_stacks_uninformative () =
  (* both bugs crash inside dispatch: same crash function *)
  let crash_fn args =
    let outcomes = List.init 40 (fun s -> run_study ~nondet_seed:s Corpus.rhythmim args) in
    List.filter_map
      (fun r ->
        match r.Interp.outcome with Interp.Crashed c -> Some c.Interp.crash_fn | _ -> None)
      outcomes
  in
  let fns1 = crash_fn [| "timer"; "stop" |] in
  let fns2 = crash_fn [| "newpl"; "refresh"; "delpl" |] in
  Alcotest.(check bool) "both observed" true (fns1 <> [] && fns2 <> []);
  List.iter (fun fn -> Alcotest.(check string) "bug1 crash fn" "dispatch" fn) fns1;
  List.iter (fun fn -> Alcotest.(check string) "bug2 crash fn" "dispatch" fn) fns2

let test_rhythm_clean_sequence () =
  let r = run_study Corpus.rhythmim [| "play"; "vol+"; "vol+"; "seek"; "vol-" |] in
  Alcotest.(check bool) "no crash" false (crashed r);
  Alcotest.(check (list int)) "no bugs" [] r.Interp.bugs_triggered

let suite =
  [
    Alcotest.test_case "all programs check" `Quick test_all_programs_check;
    Alcotest.test_case "generators deterministic" `Quick test_generators_deterministic;
    Alcotest.test_case "generated runs terminate" `Slow test_generated_runs_terminate;
    Alcotest.test_case "mossim bug 2 (empty file)" `Quick test_mossim_bug2_empty_file;
    Alcotest.test_case "mossim bug 3 (bucket walk)" `Quick test_mossim_bug3_bucket_walk;
    Alcotest.test_case "mossim bug 5 (language invariant)" `Quick test_mossim_bug5_language;
    Alcotest.test_case "mossim bug 6 (unchecked lookup)" `Quick test_mossim_bug6_base_lookup;
    Alcotest.test_case "mossim bug 4 (OOM)" `Quick test_mossim_bug4_oom;
    Alcotest.test_case "mossim bug 7 (harmless overrun)" `Quick test_mossim_bug7_harmless;
    Alcotest.test_case "mossim bug 1 (nondeterministic overrun)" `Quick test_mossim_bug1_overrun;
    Alcotest.test_case "mossim bug 8 (never generated)" `Quick test_mossim_bug8_unreachable;
    Alcotest.test_case "mossim bug 9 (output oracle)" `Quick test_mossim_bug9_oracle;
    Alcotest.test_case "mossim bug-free runs match fixed" `Quick test_mossim_identical_output_when_bug_free;
    Alcotest.test_case "ccrypt EOF-at-prompt bug" `Quick test_ccrypt_bug;
    Alcotest.test_case "ccrypt with enough responses" `Quick test_ccrypt_enough_responses;
    Alcotest.test_case "ccrypt transforms output" `Quick test_ccrypt_decrypt_inverts;
    Alcotest.test_case "bc overrun crashes in sweep" `Quick test_bc_bug;
    Alcotest.test_case "bc at the limit is safe" `Quick test_bc_under_limit;
    Alcotest.test_case "bc calculator semantics" `Quick test_bc_semantics;
    Alcotest.test_case "exif bug 1 (scan underflow)" `Quick test_exif_bug1;
    Alcotest.test_case "exif bug 1 needs missing tag" `Quick test_exif_bug1_needs_missing_tag;
    Alcotest.test_case "exif bug 2 (oversized comment)" `Quick test_exif_bug2;
    Alcotest.test_case "exif bug 3 (delayed null)" `Quick test_exif_bug3_delayed_null;
    Alcotest.test_case "rhythm race nondeterminism" `Quick test_rhythm_race_nondeterminism;
    Alcotest.test_case "rhythm bug 2 (dispose vs pending)" `Quick test_rhythm_bug2;
    Alcotest.test_case "rhythm stacks uninformative" `Quick test_rhythm_stacks_uninformative;
    Alcotest.test_case "rhythm clean sequence" `Quick test_rhythm_clean_sequence;
  ]
