(* Tests for the instrumentation layer: site/predicate construction, the
   source-to-source planner, the Bernoulli sampler, and adaptive rates. *)
open Sbi_lang
open Sbi_instrument

let instr ?config src = Transform.instrument ?config (Check.check_string src)

let sites_by_scheme t scheme =
  Array.to_list t.Transform.sites
  |> List.filter (fun (s : Site.t) -> s.Site.scheme = scheme)

(* --- schemes on a known snippet --- *)

let test_branch_sites () =
  let t =
    instr
      "int main() { int x = 1; if (x > 0) { } while (x < 5) { x = x + 1; } for (int i = 0; i < 2; i = i + 1) { } return x; }"
  in
  Alcotest.(check int) "3 branch sites (if, while, for)" 3
    (List.length (sites_by_scheme t Site.Branches));
  List.iter
    (fun (s : Site.t) -> Alcotest.(check int) "2 preds per branch" 2 s.Site.num_preds)
    (sites_by_scheme t Site.Branches)

let test_returns_sites () =
  let t =
    instr
      "int f() { return 1; } void g() { } int main() { int x = f(); f(); g(); return x; }"
  in
  (* x = f() -> one returns site; statement f() -> one returns site; g() is
     void -> none; 'return 1'/'return x' are not call sites *)
  Alcotest.(check int) "2 returns sites" 2 (List.length (sites_by_scheme t Site.Returns));
  List.iter
    (fun (s : Site.t) -> Alcotest.(check int) "6 preds per returns site" 6 s.Site.num_preds)
    (sites_by_scheme t Site.Returns)

let test_pairs_partners () =
  let config = { Transform.default_config with Transform.max_consts_per_func = 0 } in
  let t =
    instr ~config
      "int g1 = 0; int main() { int a = 1; int b = a; string s = \"x\"; b = a; return b; }"
  in
  (* decl a: partners = {g1}; decl b: partners = {a, g1};
     decl s: not int, none; assign b: partners = {a, g1} + old = 3 *)
  let pair_sites = sites_by_scheme t Site.Scalar_pairs in
  Alcotest.(check int) "1 + 2 + 3 pair sites" 6 (List.length pair_sites);
  let old_sites =
    List.filter (fun (s : Site.t) -> s.Site.partner = Some Site.P_old) pair_sites
  in
  Alcotest.(check int) "one old-value site (reassignment only)" 1 (List.length old_sites)

let test_pairs_exclude_self_and_shadowing () =
  let config =
    { Transform.default_config with Transform.max_consts_per_func = 0; pairs_include_old = false }
  in
  let t = instr ~config "int x = 0; int main() { int x = 1; x = 2; return x; }" in
  (* local x shadows global x; assignment to local x has NO partners *)
  Alcotest.(check int) "no partners under shadowing" 0
    (List.length (sites_by_scheme t Site.Scalar_pairs))

let test_pairs_scope_exit () =
  let config =
    { Transform.default_config with Transform.max_consts_per_func = 0; pairs_include_old = false; pairs_include_globals = false }
  in
  let t =
    instr ~config "int main() { { int y = 1; y = y; } int z = 0; z = 1; return z; }"
  in
  (* y's partner set empty; z = 1: y out of scope -> no partners *)
  Alcotest.(check int) "out-of-scope variables are not partners" 0
    (List.length (sites_by_scheme t Site.Scalar_pairs))

let test_const_pool () =
  let config =
    { Transform.default_config with Transform.max_consts_per_func = 2; pairs_include_old = false; pairs_include_globals = false }
  in
  let t = instr ~config "int main() { int a = 10; a = 20; a = 30; return a; }" in
  let consts =
    List.filter_map
      (fun (s : Site.t) -> match s.Site.partner with Some (Site.P_const c) -> Some c | _ -> None)
      (sites_by_scheme t Site.Scalar_pairs)
  in
  (* pool capped at first 2 literals {10, 20}; three int assignments *)
  Alcotest.(check int) "2 consts x 3 assignments" 6 (List.length consts);
  Alcotest.(check bool) "pool is {10,20}" true
    (List.for_all (fun c -> c = 10 || c = 20) consts)

let test_pred_ids_dense () =
  let t = instr "int main() { int x = 1; if (x > 0) { x = 2; } return x; }" in
  Alcotest.(check int) "pred table matches sites" (Transform.num_preds t)
    (Array.fold_left (fun acc (s : Site.t) -> acc + s.Site.num_preds) 0 t.Transform.sites);
  Array.iteri
    (fun i (p : Site.predicate) -> Alcotest.(check int) "dense ids" i p.Site.pred_id)
    t.Transform.preds

let test_predicate_texts () =
  let t = instr "int main() { int x = 1; if (x > 0) { } return x; }" in
  let texts = Array.to_list (Array.map (fun (p : Site.predicate) -> p.Site.pred_text) t.Transform.preds) in
  Alcotest.(check bool) "branch TRUE text" true (List.mem "x > 0 is TRUE" texts);
  Alcotest.(check bool) "branch FALSE text" true (List.mem "x > 0 is FALSE" texts)

let test_eval_vectors () =
  Alcotest.(check (array bool)) "branch true" [| true; false |] (Site.eval_branch true);
  Alcotest.(check (array bool)) "branch false" [| false; true |] (Site.eval_branch false);
  Alcotest.(check (array bool)) "sextet x<y" [| true; true; false; false; false; true |]
    (Site.eval_sextet 1 2);
  Alcotest.(check (array bool)) "sextet x=y" [| false; true; false; true; true; false |]
    (Site.eval_sextet 2 2);
  Alcotest.(check (array bool)) "sextet x>y" [| false; false; true; true; false; true |]
    (Site.eval_sextet 3 2)

let test_disabled_schemes () =
  let config =
    {
      Transform.default_config with
      Transform.enable_branches = false;
      enable_returns = false;
      enable_pairs = false;
    }
  in
  let t = instr ~config "int f() { return 1; } int main() { int x = f(); if (x > 0) { } return x; }" in
  Alcotest.(check int) "no sites at all" 0 (Transform.num_sites t)

(* --- observation semantics with full sampling --- *)

let observe_run ?config src =
  let t = instr ?config src in
  let truths = Hashtbl.create 64 in
  let hooks =
    Observe.hooks t
      ~visit:(fun _ -> true)
      ~record:(fun ~site ~truths:tr ->
        let first = t.Transform.sites.(site).Site.first_pred in
        Array.iteri (fun i b -> if b then Hashtbl.replace truths (first + i) ()) tr)
  in
  ignore (Interp.run t.Transform.prog { Interp.default_config with Interp.hooks });
  ( t,
    fun text ->
      let found = ref false in
      Array.iter
        (fun (p : Site.predicate) ->
          if p.Site.pred_text = text && Hashtbl.mem truths p.Site.pred_id then found := true)
        t.Transform.preds;
      !found )

let test_observe_branches () =
  let _, true_pred = observe_run "int main() { int x = 5; if (x > 3) { } if (x > 9) { } return x; }" in
  Alcotest.(check bool) "x > 3 TRUE observed" true (true_pred "x > 3 is TRUE");
  Alcotest.(check bool) "x > 3 FALSE not observed" false (true_pred "x > 3 is FALSE");
  Alcotest.(check bool) "x > 9 FALSE observed" true (true_pred "x > 9 is FALSE");
  Alcotest.(check bool) "x > 9 TRUE not observed" false (true_pred "x > 9 is TRUE")

let test_observe_returns () =
  let _, true_pred =
    observe_run "int f() { return -4; } int main() { int x = f(); return 0; }"
  in
  Alcotest.(check bool) "f() < 0" true (true_pred "f() < 0");
  Alcotest.(check bool) "f() <= 0" true (true_pred "f() <= 0");
  Alcotest.(check bool) "f() != 0" true (true_pred "f() != 0");
  Alcotest.(check bool) "not f() > 0" false (true_pred "f() > 0");
  Alcotest.(check bool) "not f() == 0" false (true_pred "f() == 0")

let test_observe_pairs () =
  let config =
    { Transform.default_config with Transform.max_consts_per_func = 0; pairs_include_globals = false }
  in
  let _, true_pred =
    observe_run ~config "int main() { int a = 3; int b = 7; b = 2; return a + b; }"
  in
  (* decl b = 7: b > a; reassign b = 2: b < a and new < old *)
  Alcotest.(check bool) "b > a at decl" true (true_pred "b > a");
  Alcotest.(check bool) "b < a after reassign" true (true_pred "b < a");
  Alcotest.(check bool) "new < old" true (true_pred "new value of b < old value of b");
  Alcotest.(check bool) "never b == a" false (true_pred "b == a")

let test_observe_old_value_skipped_on_decl () =
  let config =
    { Transform.default_config with Transform.max_consts_per_func = 0; pairs_include_globals = false }
  in
  let t, _ = observe_run ~config "int main() { int a = 1; return a; }" in
  let olds =
    List.filter (fun (s : Site.t) -> s.Site.partner = Some Site.P_old)
      (Array.to_list t.Transform.sites)
  in
  Alcotest.(check int) "no old-value site for declarations" 0 (List.length olds)

let test_shortcircuit_sites () =
  let t = instr "int main() { int a = 1; int b = 2; if (a > 0 && b > 0 || a > 9) { } return a; }" in
  (* 1 statement site for the if, plus operand sites: (a>0), (b>0),
     (a>0 && b>0), (a>9) *)
  Alcotest.(check int) "5 branch sites" 5 (List.length (sites_by_scheme t Site.Branches));
  let disabled =
    instr
      ~config:{ Transform.default_config with Transform.shortcircuit_operands = false }
      "int main() { int a = 1; if (a > 0 && a < 9) { } return a; }"
  in
  Alcotest.(check int) "flag disables operand sites" 1
    (List.length (sites_by_scheme disabled Site.Branches))

let test_shortcircuit_observation () =
  (* a > 0 is false: the && must observe only the left operand *)
  let _, true_pred =
    observe_run "int main() { int a = -1; int b = 2; if (a > 0 && b > 0) { } return a; }"
  in
  Alcotest.(check bool) "left operand FALSE observed" true (true_pred "a > 0 is FALSE");
  Alcotest.(check bool) "right operand never observed true" false (true_pred "b > 0 is TRUE");
  Alcotest.(check bool) "right operand never observed false" false (true_pred "b > 0 is FALSE");
  (* both evaluated when left is true *)
  let _, true_pred2 =
    observe_run "int main() { int a = 1; int b = -2; if (a > 0 && b > 0) { } return a; }"
  in
  Alcotest.(check bool) "left TRUE" true (true_pred2 "a > 0 is TRUE");
  Alcotest.(check bool) "right FALSE" true (true_pred2 "b > 0 is FALSE")

(* --- sampler --- *)

let test_sampler_always () =
  let s = Sampler.create ~nsites:3 Sampler.Always in
  for site = 0 to 2 do
    for _ = 1 to 50 do
      Alcotest.(check bool) "always samples" true (Sampler.should_sample s site)
    done
  done

let test_sampler_never () =
  let s = Sampler.create ~nsites:2 (Sampler.Per_site [| 0.; 1. |]) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "rate 0 never samples" false (Sampler.should_sample s 0)
  done;
  Alcotest.(check bool) "rate 1 samples" true (Sampler.should_sample s 1)

let test_sampler_rate () =
  let s = Sampler.create ~seed:7 ~nsites:1 (Sampler.Uniform 0.05) in
  let hits = ref 0 in
  let n = 200_000 in
  for _ = 1 to n do
    if Sampler.should_sample s 0 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "empirical rate %.4f near 0.05" rate)
    true
    (abs_float (rate -. 0.05) < 0.005)

let test_sampler_begin_run_reseeds () =
  let s = Sampler.create ~seed:3 ~nsites:1 (Sampler.Uniform 0.5) in
  let seq1 = List.init 20 (fun _ -> Sampler.should_sample s 0) in
  Sampler.begin_run s;
  let seq2 = List.init 20 (fun _ -> Sampler.should_sample s 0) in
  (* begin_run re-draws countdowns; sequences are (almost surely) different,
     but both contain samples *)
  Alcotest.(check bool) "some samples in both" true
    (List.mem true seq1 && List.mem true seq2)

let test_plan_rate () =
  Alcotest.(check (float 1e-9)) "always" 1. (Sampler.plan_rate Sampler.Always 5);
  Alcotest.(check (float 1e-9)) "uniform" 0.25 (Sampler.plan_rate (Sampler.Uniform 0.25) 0);
  Alcotest.(check (float 1e-9)) "per-site present" 0.5
    (Sampler.plan_rate (Sampler.Per_site [| 0.5 |]) 0);
  Alcotest.(check (float 1e-9)) "per-site out of range" 0.
    (Sampler.plan_rate (Sampler.Per_site [| 0.5 |]) 3)

(* --- adaptive rates --- *)

let test_adaptive_formula () =
  let rates =
    Adaptive.rates_of_counts ~target:100 ~min_rate:0.01 ~runs:10
      ~visits:[| 0; 500; 10_000; 1_000_000; 1_000 |] ()
  in
  Alcotest.(check (float 1e-9)) "unvisited -> 1.0" 1.0 rates.(0);
  Alcotest.(check (float 1e-9)) "50 per run -> 1.0 (fewer than target)" 1.0 rates.(1);
  Alcotest.(check (float 1e-9)) "1000 per run -> 0.1" 0.1 rates.(2);
  Alcotest.(check (float 1e-9)) "100k per run -> clamped to 0.01" 0.01 rates.(3);
  Alcotest.(check (float 1e-9)) "exactly target -> 1.0" 1.0 rates.(4)

let test_adaptive_count_visits () =
  let t = instr "int main() { for (int i = 0; i < 10; i = i + 1) { } return 0; }" in
  let visits =
    Adaptive.count_visits t ~ntrain:3 ~run:(fun hooks ->
        Interp.run t.Transform.prog { Interp.default_config with Interp.hooks })
  in
  (* the for-loop branch site is visited 11 times per run, 3 runs *)
  let branch_site =
    (List.hd (sites_by_scheme t Site.Branches)).Site.site_id
  in
  Alcotest.(check int) "33 visits of the loop test" 33 visits.(branch_site)

let suite =
  [
    Alcotest.test_case "branch sites" `Quick test_branch_sites;
    Alcotest.test_case "returns sites" `Quick test_returns_sites;
    Alcotest.test_case "scalar-pairs partners" `Quick test_pairs_partners;
    Alcotest.test_case "pairs exclude self and shadowed" `Quick test_pairs_exclude_self_and_shadowing;
    Alcotest.test_case "pairs respect scope exit" `Quick test_pairs_scope_exit;
    Alcotest.test_case "constant pool capping" `Quick test_const_pool;
    Alcotest.test_case "predicate ids dense" `Quick test_pred_ids_dense;
    Alcotest.test_case "predicate texts" `Quick test_predicate_texts;
    Alcotest.test_case "truth vectors" `Quick test_eval_vectors;
    Alcotest.test_case "disabled schemes yield no sites" `Quick test_disabled_schemes;
    Alcotest.test_case "observe branches" `Quick test_observe_branches;
    Alcotest.test_case "observe returns" `Quick test_observe_returns;
    Alcotest.test_case "observe scalar pairs" `Quick test_observe_pairs;
    Alcotest.test_case "no old-value partner on declarations" `Quick test_observe_old_value_skipped_on_decl;
    Alcotest.test_case "short-circuit operand sites" `Quick test_shortcircuit_sites;
    Alcotest.test_case "short-circuit observation" `Quick test_shortcircuit_observation;
    Alcotest.test_case "sampler Always" `Quick test_sampler_always;
    Alcotest.test_case "sampler rate 0 and 1" `Quick test_sampler_never;
    Alcotest.test_case "sampler empirical rate" `Slow test_sampler_rate;
    Alcotest.test_case "sampler begin_run" `Quick test_sampler_begin_run_reseeds;
    Alcotest.test_case "plan rates" `Quick test_plan_rate;
    Alcotest.test_case "adaptive rate formula" `Quick test_adaptive_formula;
    Alcotest.test_case "adaptive visit counting" `Quick test_adaptive_count_visits;
  ]
