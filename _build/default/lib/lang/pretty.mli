(** Pretty-printer for raw MiniC.

    Output re-parses to an alpha-identical program (statement ids may
    differ), which the property tests check.  Also provides compact
    single-line expression rendering used in predicate descriptions. *)

val expr_to_string : Ast.expr -> string
val lvalue_to_string : Ast.lvalue -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val program_to_string : Ast.program -> string
val pp_program : Format.formatter -> Ast.program -> unit
