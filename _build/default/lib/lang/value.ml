type t =
  | VInt of int
  | VBool of bool
  | VStr of string
  | VArr of t array
  | VStruct of int * t array
  | VNull
  | VUnit

let default_of_ty (ty : Ast.ty) =
  match ty with
  | Ast.TInt -> VInt 0
  | Ast.TBool -> VBool false
  | Ast.TString -> VStr ""
  | Ast.TVoid -> VUnit
  | Ast.TStruct _ | Ast.TArray _ -> VNull

let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | VStr x, VStr y -> String.equal x y
  | VArr x, VArr y -> x == y
  | VStruct (_, x), VStruct (_, y) -> x == y
  | VNull, VNull -> true
  | VUnit, VUnit -> true
  | _ -> false

let rec to_string ?structs v =
  match v with
  | VInt n -> string_of_int n
  | VBool b -> if b then "true" else "false"
  | VStr s -> s
  | VNull -> "null"
  | VUnit -> "()"
  | VArr elems ->
      let parts = Array.to_list (Array.map (to_string ?structs) elems) in
      "[" ^ String.concat ", " parts ^ "]"
  | VStruct (sid, _) -> (
      match structs with
      | Some layouts when sid < Array.length layouts ->
          "<" ^ layouts.(sid).Rast.sl_name ^ ">"
      | _ -> Printf.sprintf "<struct#%d>" sid)

let type_name = function
  | VInt _ -> "int"
  | VBool _ -> "bool"
  | VStr _ -> "string"
  | VArr _ -> "array"
  | VStruct _ -> "struct"
  | VNull -> "null"
  | VUnit -> "void"
