(** Raw (unresolved) MiniC abstract syntax.

    MiniC is the C-like subject language used in place of the paper's C
    programs.  It has [int], [bool], and [string] scalars, fixed-size heap
    arrays, nominally-typed heap structs (which may be recursive, enabling
    linked lists and the paper's "missing end-of-list check" bug class), and
    [null] references.

    Every statement carries a unique node id assigned by the parser; the
    instrumentation planner (see {!Sbi_instrument}) keys observation plans
    by these ids, so ids are preserved through name resolution. *)

type ty =
  | TInt
  | TBool
  | TString
  | TVoid
  | TStruct of string
  | TArray of ty

val ty_equal : ty -> ty -> bool
val ty_to_string : ty -> string
val pp_ty : Format.formatter -> ty -> unit

val is_reference : ty -> bool
(** Arrays and structs are reference types (nullable). *)

type unop = Neg | Not
type binop = Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Le | Gt | Ge | And | Or

val unop_to_string : unop -> string
val binop_to_string : binop -> string

type expr = { e : expr_kind; eloc : Loc.t }

and expr_kind =
  | EInt of int
  | EBool of bool
  | EStr of string
  | ENull
  | EVar of string
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | ECall of string * expr list
  | EIndex of expr * expr
  | EField of expr * string
  | ENewArray of ty * expr
  | ENewStruct of string

type lvalue = LVar of string | LIndex of expr * expr | LField of expr * string

type stmt = { s : stmt_kind; sid : int; sloc : Loc.t }

and stmt_kind =
  | SDecl of ty * string * expr option
  | SAssign of lvalue * expr
  | SExpr of expr
  | SIf of expr * block * block
  | SWhile of expr * block
  | SFor of stmt * expr * stmt * block
  | SReturn of expr option
  | SBreak
  | SContinue
  | SBlock of block

and block = stmt list

type param = ty * string

type func = { fname : string; fparams : param list; fret : ty; fbody : block; floc : Loc.t }

type struct_def = { stname : string; stfields : (ty * string) list; stloc : Loc.t }

type global = { gty : ty; gname : string; ginit : expr option; gloc : Loc.t }

type decl = DFunc of func | DStruct of struct_def | DGlobal of global

type program = { decls : decl list; max_sid : int; src_file : string }
(** [max_sid] is one more than the largest statement id in the program. *)

val iter_stmts : program -> (stmt -> unit) -> unit
(** Applies the function to every statement, recursing into nested blocks. *)

val count_stmts : program -> int

val int_literals_of_func : func -> int list
(** Distinct integer literals appearing anywhere in the function body, in
    first-occurrence order.  Used by the scalar-pairs scheme's
    constant-partner pool. *)
