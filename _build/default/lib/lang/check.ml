open Ast
open Rast

exception Error of Loc.t * string

let err loc fmt = Printf.ksprintf (fun msg -> raise (Error (loc, msg))) fmt

(* Checked types: [CNull] is the type of the literal [null], compatible
   with every reference type. *)
type cty = Known of ty | CNull

let cty_to_string = function Known t -> ty_to_string t | CNull -> "null"

type func_sig = { fs_id : int; fs_params : ty list; fs_ret : ty }

type env = {
  structs : (string, struct_layout) Hashtbl.t;
  globals : (string, int * ty) Hashtbl.t;
  funcs : (string, func_sig) Hashtbl.t;
  (* scope stack: innermost first; each scope maps name -> (slot, ty) *)
  mutable scopes : (string, int * ty) Hashtbl.t list;
  mutable next_slot : int;
  mutable loop_depth : int;
  mutable ret_ty : ty;
  eids : int ref;  (* program-wide expression-id counter *)
}

let fresh_eid env =
  let id = !(env.eids) in
  env.eids := id + 1;
  id

let builtin_arity = function
  | BPrint | BPrintln -> 1
  | BLen | BStrlen -> 1
  | BSubstr -> 3
  | BStrcmp -> 2
  | BOrd -> 2
  | BChr | BToStr | BParseInt | BIsInt | BHashStr -> 1
  | BAbort | BAssert | BBugMark | BEvent -> 1
  | BArgc -> 0
  | BArg | BArgInt -> 1
  | BNondet -> 1
  | BMin | BMax -> 2
  | BAbs -> 1

(* --- type validity --- *)

let rec check_ty env loc ty =
  match ty with
  | TInt | TBool | TString | TVoid -> ()
  | TStruct name ->
      if not (Hashtbl.mem env.structs name) then err loc "unknown struct type '%s'" name
  | TArray elem ->
      if ty_equal elem TVoid then err loc "array of void is not a valid type";
      check_ty env loc elem

let compatible target actual =
  match actual with
  | Known t -> ty_equal target t
  | CNull -> is_reference target

(* --- variable lookup --- *)

let lookup_var env name =
  let rec go = function
    | [] -> (
        match Hashtbl.find_opt env.globals name with
        | Some (idx, ty) -> Some (RGlobal idx, ty)
        | None -> None)
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some (slot, ty) -> Some (RLocal slot, ty)
        | None -> go rest)
  in
  go env.scopes

let declare_local env loc name ty =
  (match env.scopes with
  | scope :: _ ->
      if Hashtbl.mem scope name then err loc "variable '%s' is already declared in this block" name
  | [] -> assert false);
  let slot = env.next_slot in
  env.next_slot <- slot + 1;
  (match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name (slot, ty)
  | [] -> assert false);
  slot

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = match env.scopes with _ :: rest -> env.scopes <- rest | [] -> assert false

(* --- expressions --- *)

let rec check_expr env (e : expr) : rexpr =
  let loc = e.eloc in
  match e.e with
  | EInt n -> { re = RInt n; rty = TInt; rloc = loc; reid = fresh_eid env }
  | EBool b -> { re = RBool b; rty = TBool; rloc = loc; reid = fresh_eid env }
  | EStr s -> { re = RStr s; rty = TString; rloc = loc; reid = fresh_eid env }
  | ENull -> { re = RNull; rty = TVoid; rloc = loc; reid = fresh_eid env }
  | EVar name -> (
      match lookup_var env name with
      | Some (ref_, ty) -> { re = RVar (ref_, name); rty = ty; rloc = loc; reid = fresh_eid env }
      | None -> err loc "unknown variable '%s'" name)
  | EUnop (Neg, inner) ->
      let r = check_expr env inner in
      if not (ty_equal r.rty TInt) then
        err loc "unary '-' expects int, found %s" (ty_to_string r.rty);
      { re = RUnop (Neg, r); rty = TInt; rloc = loc; reid = fresh_eid env }
  | EUnop (Not, inner) ->
      let r = check_expr env inner in
      if not (ty_equal r.rty TBool) then
        err loc "'!' expects bool, found %s" (ty_to_string r.rty);
      { re = RUnop (Not, r); rty = TBool; rloc = loc; reid = fresh_eid env }
  | EBinop (op, l, r) -> check_binop env loc op l r
  | ECall (fname, args) -> check_call env loc fname args
  | EIndex (arr, idx) -> (
      let rarr = check_expr env arr in
      let ridx = check_expr env idx in
      if not (ty_equal ridx.rty TInt) then
        err loc "array index must be int, found %s" (ty_to_string ridx.rty);
      match rarr.rty with
      | TArray elem -> { re = RIndex (rarr, ridx); rty = elem; rloc = loc; reid = fresh_eid env }
      | t -> err loc "indexing a non-array value of type %s" (ty_to_string t))
  | EField (obj, fld) -> (
      let robj = check_expr env obj in
      match robj.rty with
      | TStruct sname -> (
          let layout = Hashtbl.find env.structs sname in
          let offset = ref (-1) in
          Array.iteri (fun i (fname, _) -> if fname = fld then offset := i) layout.sl_fields;
          match !offset with
          | -1 -> err loc "struct '%s' has no field '%s'" sname fld
          | off ->
              let _, fty = layout.sl_fields.(off) in
              { re = RField (robj, off, fld); rty = fty; rloc = loc; reid = fresh_eid env })
      | t -> err loc "field access on non-struct value of type %s" (ty_to_string t))
  | ENewArray (elem, len) ->
      check_ty env loc elem;
      if ty_equal elem TVoid then err loc "cannot allocate an array of void";
      let rlen = check_expr env len in
      if not (ty_equal rlen.rty TInt) then
        err loc "array length must be int, found %s" (ty_to_string rlen.rty);
      { re = RNewArray (elem, rlen); rty = TArray elem; rloc = loc; reid = fresh_eid env }
  | ENewStruct name -> (
      match Hashtbl.find_opt env.structs name with
      | Some layout -> { re = RNewStruct layout.sl_id; rty = TStruct name; rloc = loc; reid = fresh_eid env }
      | None -> err loc "unknown struct type '%s'" name)

and check_binop env loc op l r =
  let rl = check_expr env l in
  let rr = check_expr env r in
  let cl = if rl.re = RNull then CNull else Known rl.rty in
  let cr = if rr.re = RNull then CNull else Known rr.rty in
  let mk rty = { re = RBinop (op, rl, rr); rty; rloc = loc; reid = fresh_eid env } in
  match op with
  | Add -> (
      match (cl, cr) with
      | Known TInt, Known TInt -> mk TInt
      | Known TString, Known TString -> mk TString
      | _ ->
          err loc "'+' expects two ints or two strings, found %s and %s" (cty_to_string cl)
            (cty_to_string cr))
  | Sub | Mul | Div | Mod ->
      if cl = Known TInt && cr = Known TInt then mk TInt
      else
        err loc "'%s' expects ints, found %s and %s" (binop_to_string op) (cty_to_string cl)
          (cty_to_string cr)
  | Lt | Le | Gt | Ge ->
      if cl = Known TInt && cr = Known TInt then mk TBool
      else
        err loc "'%s' expects ints, found %s and %s" (binop_to_string op) (cty_to_string cl)
          (cty_to_string cr)
  | And | Or ->
      if cl = Known TBool && cr = Known TBool then mk TBool
      else
        err loc "'%s' expects bools, found %s and %s" (binop_to_string op) (cty_to_string cl)
          (cty_to_string cr)
  | Eq | Neq -> (
      match (cl, cr) with
      | Known a, Known b when ty_equal a b -> mk TBool
      | CNull, Known t when is_reference t -> mk TBool
      | Known t, CNull when is_reference t -> mk TBool
      | CNull, CNull -> mk TBool
      | _ ->
          err loc "'%s' on incompatible types %s and %s" (binop_to_string op) (cty_to_string cl)
            (cty_to_string cr))

and check_call env loc fname args =
  match builtin_of_name fname with
  | Some b -> check_builtin_call env loc b args
  | None -> (
      match Hashtbl.find_opt env.funcs fname with
      | None -> err loc "unknown function '%s'" fname
      | Some { fs_id; fs_params; fs_ret } ->
          let expected = List.length fs_params in
          let got = List.length args in
          if expected <> got then
            err loc "function '%s' expects %d argument(s), got %d" fname expected got;
          let rargs =
            List.map2
              (fun pty arg ->
                let rarg = check_expr env arg in
                let carg = if rarg.re = RNull then CNull else Known rarg.rty in
                if not (compatible pty carg) then
                  err arg.eloc "argument of type %s where %s was expected" (cty_to_string carg)
                    (ty_to_string pty);
                rarg)
              fs_params args
          in
          { re = RCall (CUser (fs_id, fname), rargs); rty = fs_ret; rloc = loc; reid = fresh_eid env })

and check_builtin_call env loc b args =
  let arity = builtin_arity b in
  if List.length args <> arity then
    err loc "builtin '%s' expects %d argument(s), got %d" (builtin_name b) arity
      (List.length args);
  let rargs = List.map (check_expr env) args in
  let nth i = List.nth rargs i in
  let want i ty =
    let r = nth i in
    if not (ty_equal r.rty ty) then
      err r.rloc "builtin '%s': argument %d must be %s, found %s" (builtin_name b) (i + 1)
        (ty_to_string ty) (ty_to_string r.rty)
  in
  let want_array i =
    let r = nth i in
    match r.rty with
    | TArray _ -> ()
    | t ->
        err r.rloc "builtin '%s': argument %d must be an array, found %s" (builtin_name b)
          (i + 1) (ty_to_string t)
  in
  let ret rty = { re = RCall (CBuiltin b, rargs); rty; rloc = loc; reid = fresh_eid env } in
  match b with
  | BPrint | BPrintln ->
      (* any printable value, including null *)
      ret TVoid
  | BLen ->
      want_array 0;
      ret TInt
  | BStrlen ->
      want 0 TString;
      ret TInt
  | BSubstr ->
      want 0 TString;
      want 1 TInt;
      want 2 TInt;
      ret TString
  | BStrcmp ->
      want 0 TString;
      want 1 TString;
      ret TInt
  | BOrd ->
      want 0 TString;
      want 1 TInt;
      ret TInt
  | BChr ->
      want 0 TInt;
      ret TString
  | BToStr ->
      want 0 TInt;
      ret TString
  | BParseInt ->
      want 0 TString;
      ret TInt
  | BIsInt ->
      want 0 TString;
      ret TBool
  | BHashStr ->
      want 0 TString;
      ret TInt
  | BAbort ->
      want 0 TString;
      ret TVoid
  | BAssert ->
      want 0 TBool;
      ret TVoid
  | BBugMark ->
      want 0 TInt;
      ret TVoid
  | BEvent ->
      want 0 TString;
      ret TVoid
  | BArgc -> ret TInt
  | BArg ->
      want 0 TInt;
      ret TString
  | BArgInt ->
      want 0 TInt;
      ret TInt
  | BNondet ->
      want 0 TInt;
      ret TInt
  | BMin | BMax ->
      want 0 TInt;
      want 1 TInt;
      ret TInt
  | BAbs ->
      want 0 TInt;
      ret TInt

(* --- statements --- *)

let rec check_stmt env (st : stmt) : rstmt =
  let loc = st.sloc in
  let mk rs = { rs; rsid = st.sid; rsloc = loc } in
  match st.s with
  | SDecl (ty, name, init) ->
      check_ty env loc ty;
      if ty_equal ty TVoid then err loc "cannot declare variable '%s' of type void" name;
      let rinit =
        Option.map
          (fun e ->
            let r = check_expr env e in
            let c = if r.re = RNull then CNull else Known r.rty in
            if not (compatible ty c) then
              err e.eloc "initializer of type %s for variable '%s' of type %s" (cty_to_string c)
                name (ty_to_string ty);
            r)
          init
      in
      let slot = declare_local env loc name ty in
      mk (RDecl (ty, slot, name, rinit))
  | SAssign (lv, rhs) ->
      let rlv, lty = check_lvalue env loc lv in
      let rrhs = check_expr env rhs in
      let c = if rrhs.re = RNull then CNull else Known rrhs.rty in
      if not (compatible lty c) then
        err rhs.eloc "assigning %s to a location of type %s" (cty_to_string c)
          (ty_to_string lty);
      mk (RAssign (lty, rlv, rrhs))
  | SExpr e ->
      let r = check_expr env e in
      (match r.re with
      | RCall _ -> ()
      | _ -> err loc "expression statement must be a call");
      mk (RExpr r)
  | SIf (cond, then_b, else_b) ->
      let rcond = check_cond env cond in
      let rthen = check_block env then_b in
      let relse = check_block env else_b in
      mk (RIf (rcond, rthen, relse))
  | SWhile (cond, body) ->
      let rcond = check_cond env cond in
      env.loop_depth <- env.loop_depth + 1;
      let rbody = check_block env body in
      env.loop_depth <- env.loop_depth - 1;
      mk (RWhile (rcond, rbody))
  | SFor (init, cond, step, body) ->
      (* The for header's declarations scope over cond, step, and body. *)
      push_scope env;
      let rinit = check_stmt env init in
      let rcond = check_cond env cond in
      let rstep = check_stmt env step in
      (match rstep.rs with
      | RDecl _ -> err rstep.rsloc "for-loop step cannot be a declaration"
      | _ -> ());
      env.loop_depth <- env.loop_depth + 1;
      let rbody = check_block env body in
      env.loop_depth <- env.loop_depth - 1;
      pop_scope env;
      mk (RFor (rinit, rcond, rstep, rbody))
  | SReturn None ->
      if not (ty_equal env.ret_ty TVoid) then
        err loc "return without a value in a function returning %s" (ty_to_string env.ret_ty);
      mk (RReturn None)
  | SReturn (Some e) ->
      if ty_equal env.ret_ty TVoid then err loc "returning a value from a void function";
      let r = check_expr env e in
      let c = if r.re = RNull then CNull else Known r.rty in
      if not (compatible env.ret_ty c) then
        err e.eloc "returning %s from a function returning %s" (cty_to_string c)
          (ty_to_string env.ret_ty);
      mk (RReturn (Some r))
  | SBreak ->
      if env.loop_depth = 0 then err loc "'break' outside of a loop";
      mk RBreak
  | SContinue ->
      if env.loop_depth = 0 then err loc "'continue' outside of a loop";
      mk RContinue
  | SBlock body -> mk (RBlockS (check_block env body))

and check_cond env cond =
  let r = check_expr env cond in
  if not (ty_equal r.rty TBool) then
    err cond.eloc "condition must be bool, found %s" (ty_to_string r.rty);
  r

and check_lvalue env loc lv =
  match lv with
  | LVar name -> (
      match lookup_var env name with
      | Some (ref_, ty) -> (RLVar (ref_, name), ty)
      | None -> err loc "unknown variable '%s'" name)
  | LIndex (arr, idx) -> (
      let rarr = check_expr env arr in
      let ridx = check_expr env idx in
      if not (ty_equal ridx.rty TInt) then
        err loc "array index must be int, found %s" (ty_to_string ridx.rty);
      match rarr.rty with
      | TArray elem -> (RLIndex (rarr, ridx), elem)
      | t -> err loc "indexing a non-array value of type %s" (ty_to_string t))
  | LField (obj, fld) -> (
      let robj = check_expr env obj in
      match robj.rty with
      | TStruct sname -> (
          let layout = Hashtbl.find env.structs sname in
          let offset = ref (-1) in
          Array.iteri (fun i (fname, _) -> if fname = fld then offset := i) layout.sl_fields;
          match !offset with
          | -1 -> err loc "struct '%s' has no field '%s'" sname fld
          | off ->
              let _, fty = layout.sl_fields.(off) in
              (RLField (robj, off, fld), fty))
      | t -> err loc "field access on non-struct value of type %s" (ty_to_string t))

and check_block env body =
  push_scope env;
  let rbody = List.map (check_stmt env) body in
  pop_scope env;
  rbody

(* --- program --- *)

let check_program (prog : program) : rprog =
  let eids = ref 0 in
  let structs : (string, struct_layout) Hashtbl.t = Hashtbl.create 16 in
  let globals : (string, int * ty) Hashtbl.t = Hashtbl.create 16 in
  let funcs : (string, func_sig) Hashtbl.t = Hashtbl.create 16 in
  (* Pass 1: struct names (so recursive/forward references resolve). *)
  let struct_defs =
    List.filter_map (function DStruct sd -> Some sd | _ -> None) prog.decls
  in
  List.iteri
    (fun i sd ->
      if Hashtbl.mem structs sd.stname then
        err sd.stloc "duplicate struct definition '%s'" sd.stname;
      Hashtbl.replace structs sd.stname { sl_id = i; sl_name = sd.stname; sl_fields = [||] })
    struct_defs;
  (* Pass 2: struct layouts with validated field types. *)
  let env0 =
    {
      structs;
      globals;
      funcs;
      scopes = [];
      next_slot = 0;
      loop_depth = 0;
      ret_ty = TVoid;
      eids;
    }
  in
  let layouts =
    List.mapi
      (fun i sd ->
        let seen = Hashtbl.create 8 in
        let fields =
          List.map
            (fun (ty, name) ->
              if Hashtbl.mem seen name then
                err sd.stloc "duplicate field '%s' in struct '%s'" name sd.stname;
              Hashtbl.replace seen name ();
              if ty_equal ty TVoid then
                err sd.stloc "field '%s' of struct '%s' cannot be void" name sd.stname;
              check_ty env0 sd.stloc ty;
              (name, ty))
            sd.stfields
        in
        let layout = { sl_id = i; sl_name = sd.stname; sl_fields = Array.of_list fields } in
        Hashtbl.replace structs sd.stname layout;
        layout)
      struct_defs
  in
  (* Pass 3: global slots. *)
  let global_defs =
    List.filter_map (function DGlobal g -> Some g | _ -> None) prog.decls
  in
  List.iteri
    (fun i g ->
      if Hashtbl.mem globals g.gname then err g.gloc "duplicate global '%s'" g.gname;
      if ty_equal g.gty TVoid then err g.gloc "global '%s' cannot be void" g.gname;
      check_ty env0 g.gloc g.gty;
      Hashtbl.replace globals g.gname (i, g.gty))
    global_defs;
  (* Pass 4: function signatures. *)
  let func_defs = List.filter_map (function DFunc f -> Some f | _ -> None) prog.decls in
  List.iteri
    (fun i f ->
      if builtin_of_name f.fname <> None then
        err f.floc "'%s' is a builtin and cannot be redefined" f.fname;
      if Hashtbl.mem funcs f.fname then err f.floc "duplicate function '%s'" f.fname;
      if Hashtbl.mem globals f.fname then
        err f.floc "'%s' is already the name of a global" f.fname;
      List.iter (fun (ty, _) -> check_ty env0 f.floc ty) f.fparams;
      check_ty env0 f.floc f.fret;
      Hashtbl.replace funcs f.fname
        { fs_id = i; fs_params = List.map fst f.fparams; fs_ret = f.fret })
    func_defs;
  (* Pass 5: global initializers (checked in a global-only environment). *)
  let rglobals =
    List.map
      (fun g ->
        let rinit =
          Option.map
            (fun e ->
              env0.scopes <- [];
              let r = check_expr env0 e in
              let c = if r.re = RNull then CNull else Known r.rty in
              if not (compatible g.gty c) then
                err e.eloc "initializer of type %s for global '%s' of type %s" (cty_to_string c)
                  g.gname (ty_to_string g.gty);
              r)
            g.ginit
        in
        (g.gname, g.gty, rinit))
      global_defs
  in
  (* Pass 6: function bodies. *)
  let rfuncs =
    List.mapi
      (fun i f ->
        let env =
          {
            structs;
            globals;
            funcs;
            scopes = [];
            next_slot = 0;
            loop_depth = 0;
            ret_ty = f.fret;
            eids;
          }
        in
        push_scope env;
        List.iter
          (fun (ty, name) ->
            if ty_equal ty TVoid then err f.floc "parameter '%s' cannot be void" name;
            ignore (declare_local env f.floc name ty))
          f.fparams;
        let rbody = List.map (check_stmt env) f.fbody in
        pop_scope env;
        {
          rf_id = i;
          rf_name = f.fname;
          rf_params = List.map (fun (ty, name) -> (name, ty)) f.fparams;
          rf_ret = f.fret;
          rf_nslots = env.next_slot;
          rf_body = rbody;
          rf_loc = f.floc;
        })
      func_defs
  in
  (* main *)
  let main_id =
    match Hashtbl.find_opt funcs "main" with
    | None -> err Loc.dummy "program has no 'main' function"
    | Some { fs_id; fs_params; fs_ret } ->
        if fs_params <> [] then
          err (List.nth func_defs fs_id).floc "'main' must take no parameters";
        (match fs_ret with
        | TInt | TVoid -> ()
        | t ->
            err (List.nth func_defs fs_id).floc "'main' must return int or void, not %s"
              (ty_to_string t));
        fs_id
  in
  ignore layouts;
  let sl_array = Array.make (List.length struct_defs) { sl_id = 0; sl_name = ""; sl_fields = [||] } in
  Hashtbl.iter (fun _ layout -> sl_array.(layout.sl_id) <- layout) structs;
  {
    rp_structs = sl_array;
    rp_globals = Array.of_list rglobals;
    rp_funcs = Array.of_list rfuncs;
    rp_main = main_id;
    rp_max_sid = prog.max_sid;
    rp_max_eid = !eids;
    rp_file = prog.src_file;
  }

let check_string ?(file = "<string>") src = check_program (Parser.parse ~file src)
