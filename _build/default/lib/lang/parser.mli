(** Recursive-descent parser for MiniC.

    Grammar sketch (C-like):
    {v
    program  := decl* EOF
    decl     := "struct" IDENT "{" (type IDENT ";")* "}" ";"?
              | type IDENT "(" params ")" block            -- function
              | type IDENT ("=" expr)? ";"                 -- global
    type     := ("int"|"bool"|"string"|"void"|IDENT) ("[" "]")*
    stmt     := type IDENT ("=" expr)? ";"
              | expr ("=" expr)? ";"
              | "if" "(" expr ")" stmt ("else" stmt)?
              | "while" "(" expr ")" stmt
              | "for" "(" simple? ";" expr? ";" simple? ")" stmt
              | "return" expr? ";" | "break" ";" | "continue" ";"
              | "{" stmt* "}"
    v}
    Expressions use C precedence: [||] < [&&] < [==,!=] < [<,<=,>,>=]
    < [+,-] < [*,/,%] < unary [-,!] < postfix [\[\]], [.], call.
    Allocation: [new T], [new T\[n\]].

    Statement node ids are assigned in pre-order starting at 0. *)

exception Error of Loc.t * string

val parse : ?file:string -> string -> Ast.program
(** Lex and parse a full program.  @raise Error (or {!Lexer.Error}) on
    malformed input. *)

val parse_expr_string : string -> Ast.expr
(** Parse a standalone expression (used by tests). *)
