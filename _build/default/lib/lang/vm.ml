open Rast
open Value
open Interp_error

type instr =
  | IPushInt of int
  | IPushBool of bool
  | IPushStr of string
  | IPushNull
  | IPushUnit
  | ILoadLocal of int
  | IStoreLocal of int
  | ILoadGlobal of int
  | IStoreGlobal of int
  | IPop
  | IAddInt
  | IAddStr
  | ISub
  | IMul
  | IDiv
  | IMod
  | INeg
  | INot
  | IEqVal
  | INeqVal
  | ILt
  | ILe
  | IGt
  | IGe
  | IJmp of int
  | IJmpIfNot of int
  | IJmpIf of int
  | ICall of int * int
  | ICallBuiltin of Rast.builtin * int
  | IRet
  | INewArray of Ast.ty
  | INewStruct of int
  | ILoadIndex
  | IStoreIndex
  | ILoadField of int
  | IStoreField of int
  | ITickStmt
  | ITickLoop
  | IObsBranch of int
  | IObsCond of int
  | IObsAssign of { sid : int; lhs : Rast.var_ref; has_old : bool }
  | IObsCallRet of int

type func = {
  code : instr array;
  locs : Loc.t array;
  nslots : int;
  name : string;
}

type program = {
  funcs : func array;
  globals_init : func;
  rprog : Rast.rprog;
}

(* --- compiler --- *)

type emitter = {
  mutable instrs : (instr * Loc.t) list;  (* reversed *)
  mutable len : int;
}

let emit em loc i =
  em.instrs <- (i, loc) :: em.instrs;
  em.len <- em.len + 1

(* emit a placeholder jump; returns its index for backpatching *)
let emit_jump em loc mk =
  let at = em.len in
  emit em loc (mk (-1));
  at

let here em = em.len

let finish em ~nslots ~name =
  let code = Array.make em.len IPop in
  let locs = Array.make (max em.len 1) Loc.dummy in
  List.iteri
    (fun i (instr, loc) ->
      let idx = em.len - 1 - i in
      code.(idx) <- instr;
      locs.(idx) <- loc)
    em.instrs;
  { code; locs; nslots; name }

let default_push ty =
  match ty with
  | Ast.TInt -> IPushInt 0
  | Ast.TBool -> IPushBool false
  | Ast.TString -> IPushStr ""
  | Ast.TVoid -> IPushUnit
  | Ast.TStruct _ | Ast.TArray _ -> IPushNull

type loop_ctx = { mutable breaks : int list; continue_target : int option ref }

(* for-loop continues recorded before the step position is known *)
let pending_continues : (loop_ctx * int) list ref = ref []

let rec compile_expr em (e : rexpr) =
  let loc = e.rloc in
  match e.re with
  | RInt n -> emit em loc (IPushInt n)
  | RBool b -> emit em loc (IPushBool b)
  | RStr s -> emit em loc (IPushStr s)
  | RNull -> emit em loc IPushNull
  | RVar (RLocal i, _) -> emit em loc (ILoadLocal i)
  | RVar (RGlobal i, _) -> emit em loc (ILoadGlobal i)
  | RUnop (Ast.Neg, inner) ->
      compile_expr em inner;
      emit em loc INeg
  | RUnop (Ast.Not, inner) ->
      compile_expr em inner;
      emit em loc INot
  | RBinop (Ast.And, l, r) ->
      compile_expr em l;
      emit em l.rloc (IObsCond l.reid);
      let jfalse = emit_jump em loc (fun t -> IJmpIfNot t) in
      compile_expr em r;
      emit em r.rloc (IObsCond r.reid);
      let jend = emit_jump em loc (fun t -> IJmp t) in
      let lfalse = here em in
      emit em loc (IPushBool false);
      let lend = here em in
      backpatch em jfalse lfalse;
      backpatch em jend lend
  | RBinop (Ast.Or, l, r) ->
      compile_expr em l;
      emit em l.rloc (IObsCond l.reid);
      let jtrue = emit_jump em loc (fun t -> IJmpIf t) in
      compile_expr em r;
      emit em r.rloc (IObsCond r.reid);
      let jend = emit_jump em loc (fun t -> IJmp t) in
      let ltrue = here em in
      emit em loc (IPushBool true);
      let lend = here em in
      backpatch em jtrue ltrue;
      backpatch em jend lend
  | RBinop (op, l, r) ->
      compile_expr em l;
      compile_expr em r;
      let i =
        match op with
        | Ast.Add -> if Ast.ty_equal l.rty Ast.TString then IAddStr else IAddInt
        | Ast.Sub -> ISub
        | Ast.Mul -> IMul
        | Ast.Div -> IDiv
        | Ast.Mod -> IMod
        | Ast.Eq -> IEqVal
        | Ast.Neq -> INeqVal
        | Ast.Lt -> ILt
        | Ast.Le -> ILe
        | Ast.Gt -> IGt
        | Ast.Ge -> IGe
        | Ast.And | Ast.Or -> assert false
      in
      emit em loc i
  | RCall (CUser (fid, _), args) ->
      List.iter (compile_expr em) args;
      emit em loc (ICall (fid, List.length args))
  | RCall (CBuiltin b, args) ->
      List.iter (compile_expr em) args;
      emit em loc (ICallBuiltin (b, List.length args))
  | RIndex (arr, idx) ->
      compile_expr em arr;
      compile_expr em idx;
      emit em loc ILoadIndex
  | RField (obj, off, _) ->
      compile_expr em obj;
      emit em loc (ILoadField off)
  | RNewArray (elem, len) ->
      compile_expr em len;
      emit em loc (INewArray elem)
  | RNewStruct sid -> emit em loc (INewStruct sid)

(* Backpatching works on the reversed list: rewrite the instruction emitted
   at absolute index [at]. *)
and backpatch em at target =
  let from_end = em.len - 1 - at in
  em.instrs <-
    List.mapi
      (fun i (instr, loc) ->
        if i <> from_end then (instr, loc)
        else
          match instr with
          | IJmp _ -> (IJmp target, loc)
          | IJmpIfNot _ -> (IJmpIfNot target, loc)
          | IJmpIf _ -> (IJmpIf target, loc)
          | _ -> assert false)
      em.instrs

let is_int_ty ty = Ast.ty_equal ty Ast.TInt

let rec compile_stmt em loops (st : rstmt) =
  let loc = st.rsloc in
  emit em loc ITickStmt;
  match st.rs with
  | RDecl (ty, slot, _, init) ->
      (match init with
      | Some e -> compile_expr em e
      | None -> emit em loc (default_push ty));
      emit em loc (IStoreLocal slot);
      if is_int_ty ty && init <> None then
        emit em loc (IObsAssign { sid = st.rsid; lhs = RLocal slot; has_old = false })
  | RAssign (lty, RLVar (ref_, _), rhs) ->
      let hook = is_int_ty lty in
      if hook then
        emit em loc (match ref_ with RLocal i -> ILoadLocal i | RGlobal i -> ILoadGlobal i);
      compile_expr em rhs;
      emit em loc (match ref_ with RLocal i -> IStoreLocal i | RGlobal i -> IStoreGlobal i);
      if hook then emit em loc (IObsAssign { sid = st.rsid; lhs = ref_; has_old = true })
  | RAssign (_, RLIndex (arr, idx), rhs) ->
      compile_expr em arr;
      compile_expr em idx;
      compile_expr em rhs;
      emit em loc IStoreIndex
  | RAssign (_, RLField (obj, off, _), rhs) ->
      compile_expr em obj;
      compile_expr em rhs;
      emit em loc (IStoreField off)
  | RExpr e -> (
      compile_expr em e;
      match (e.re, e.rty) with
      | RCall _, Ast.TInt ->
          emit em loc (IObsCallRet st.rsid);
          emit em loc IPop
      | _ -> emit em loc IPop)
  | RIf (cond, then_b, else_b) ->
      compile_expr em cond;
      emit em loc (IObsBranch st.rsid);
      let jelse = emit_jump em loc (fun t -> IJmpIfNot t) in
      compile_block em loops then_b;
      let jend = emit_jump em loc (fun t -> IJmp t) in
      backpatch em jelse (here em);
      compile_block em loops else_b;
      backpatch em jend (here em)
  | RWhile (cond, body) ->
      let ltop = here em in
      emit em loc ITickLoop;
      compile_expr em cond;
      emit em loc (IObsBranch st.rsid);
      let jend = emit_jump em loc (fun t -> IJmpIfNot t) in
      let ctx = { breaks = []; continue_target = ref (Some ltop) } in
      compile_block em (ctx :: loops) body;
      emit em loc (IJmp ltop);
      let lend = here em in
      backpatch em jend lend;
      List.iter (fun at -> backpatch em at lend) ctx.breaks
  | RFor (init, cond, step, body) ->
      compile_stmt em loops init;
      let ltop = here em in
      emit em loc ITickLoop;
      compile_expr em cond;
      emit em loc (IObsBranch st.rsid);
      let jend = emit_jump em loc (fun t -> IJmpIfNot t) in
      (* continue jumps to the step statement, whose position is only known
         after the body is compiled *)
      let cont = ref None in
      let ctx = { breaks = []; continue_target = cont } in
      compile_block em (ctx :: loops) body;
      let lstep = here em in
      cont := Some lstep;
      compile_stmt em loops step;
      emit em loc (IJmp ltop);
      let lend = here em in
      backpatch em jend lend;
      List.iter (fun at -> backpatch em at lend) ctx.breaks;
      patch_continues em ctx lstep
  | RReturn None ->
      emit em loc IPushUnit;
      emit em loc IRet
  | RReturn (Some e) ->
      compile_expr em e;
      emit em loc IRet
  | RBreak -> (
      match loops with
      | ctx :: _ ->
          let at = emit_jump em loc (fun t -> IJmp t) in
          ctx.breaks <- at :: ctx.breaks
      | [] -> assert false)
  | RContinue -> (
      match loops with
      | ctx :: _ -> (
          match !(ctx.continue_target) with
          | Some target -> emit em loc (IJmp target)
          | None ->
              (* for-loop: the step position is unknown until the body is
                 compiled; record for patching *)
              let at = emit_jump em loc (fun t -> IJmp t) in
              pending_continues := (ctx, at) :: !pending_continues)
      | [] -> assert false)
  | RBlockS body -> compile_block em loops body

and compile_block em loops body = List.iter (compile_stmt em loops) body

and patch_continues em ctx lstep =
  let mine, rest = List.partition (fun (c, _) -> c == ctx) !pending_continues in
  pending_continues := rest;
  List.iter (fun (_, at) -> backpatch em at lstep) mine

let compile_func (fn : rfunc) =
  let em = { instrs = []; len = 0 } in
  compile_block em [] fn.rf_body;
  (* fall off the end: return the default of the return type *)
  emit em fn.rf_loc (default_push fn.rf_ret);
  emit em fn.rf_loc IRet;
  finish em ~nslots:fn.rf_nslots ~name:fn.rf_name

let compile_globals (prog : rprog) =
  let em = { instrs = []; len = 0 } in
  Array.iteri
    (fun i (_, _, init) ->
      match init with
      | Some e ->
          compile_expr em e;
          emit em e.rloc (IStoreGlobal i)
      | None -> ())
    prog.rp_globals;
  emit em Loc.dummy IPushUnit;
  emit em Loc.dummy IRet;
  finish em ~nslots:0 ~name:"<globals>"

let compile prog =
  {
    funcs = Array.map compile_func prog.rp_funcs;
    globals_init = compile_globals prog;
    rprog = prog;
  }

(* --- disassembler --- *)

let instr_to_string = function
  | IPushInt n -> Printf.sprintf "push.int %d" n
  | IPushBool b -> Printf.sprintf "push.bool %b" b
  | IPushStr s -> Printf.sprintf "push.str %S" s
  | IPushNull -> "push.null"
  | IPushUnit -> "push.unit"
  | ILoadLocal i -> Printf.sprintf "load.local %d" i
  | IStoreLocal i -> Printf.sprintf "store.local %d" i
  | ILoadGlobal i -> Printf.sprintf "load.global %d" i
  | IStoreGlobal i -> Printf.sprintf "store.global %d" i
  | IPop -> "pop"
  | IAddInt -> "add.int"
  | IAddStr -> "add.str"
  | ISub -> "sub"
  | IMul -> "mul"
  | IDiv -> "div"
  | IMod -> "mod"
  | INeg -> "neg"
  | INot -> "not"
  | IEqVal -> "eq"
  | INeqVal -> "neq"
  | ILt -> "lt"
  | ILe -> "le"
  | IGt -> "gt"
  | IGe -> "ge"
  | IJmp t -> Printf.sprintf "jmp %d" t
  | IJmpIfNot t -> Printf.sprintf "jmp.ifnot %d" t
  | IJmpIf t -> Printf.sprintf "jmp.if %d" t
  | ICall (f, n) -> Printf.sprintf "call %d/%d" f n
  | ICallBuiltin (b, n) -> Printf.sprintf "call.builtin %s/%d" (Rast.builtin_name b) n
  | IRet -> "ret"
  | INewArray ty -> Printf.sprintf "new.array %s" (Ast.ty_to_string ty)
  | INewStruct s -> Printf.sprintf "new.struct %d" s
  | ILoadIndex -> "load.index"
  | IStoreIndex -> "store.index"
  | ILoadField f -> Printf.sprintf "load.field %d" f
  | IStoreField f -> Printf.sprintf "store.field %d" f
  | ITickStmt -> "tick.stmt"
  | ITickLoop -> "tick.loop"
  | IObsBranch sid -> Printf.sprintf "obs.branch sid=%d" sid
  | IObsCond eid -> Printf.sprintf "obs.cond eid=%d" eid
  | IObsAssign { sid; has_old; _ } -> Printf.sprintf "obs.assign sid=%d old=%b" sid has_old
  | IObsCallRet sid -> Printf.sprintf "obs.callret sid=%d" sid

let disassemble fn =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s (%d slots):\n" fn.name fn.nslots);
  Array.iteri
    (fun i instr ->
      Buffer.add_string buf (Printf.sprintf "  %4d  %s\n" i (instr_to_string instr)))
    fn.code;
  Buffer.contents buf

(* --- virtual machine --- *)

type vm = {
  prog : program;
  cfg : Interp.config;
  globals : Value.t array;
  ctx : Builtins.ctx;
  mutable fuel_left : int;
  mutable steps : int;
  mutable depth : int;
  mutable names : string list;
  (* shared operand stack across all frames; each call owns the region
     above its base *)
  mutable stack : Value.t array;
  mutable sp : int;
}

let vm_as_int loc = function
  | VInt n -> n
  | v -> crash (Aborted ("internal: expected int, got " ^ type_name v)) loc

let vm_as_bool loc = function
  | VBool b -> b
  | v -> crash (Aborted ("internal: expected bool, got " ^ type_name v)) loc

let vm_as_str loc = function
  | VStr s -> s
  | v -> crash (Aborted ("internal: expected string, got " ^ type_name v)) loc

let rec exec_func vm (fn : func) (frame : Value.t array) : Value.t =
  let code = fn.code in
  let locs = fn.locs in
  let push v =
    if vm.sp >= Array.length vm.stack then begin
      let bigger = Array.make (2 * Array.length vm.stack) VUnit in
      Array.blit vm.stack 0 bigger 0 vm.sp;
      vm.stack <- bigger
    end;
    Array.unsafe_set vm.stack vm.sp v;
    vm.sp <- vm.sp + 1
  in
  let pop () =
    vm.sp <- vm.sp - 1;
    Array.unsafe_get vm.stack vm.sp
  in
  let peek () = Array.unsafe_get vm.stack (vm.sp - 1) in
  let read_var = function
    | RGlobal i -> vm.globals.(i)
    | RLocal i -> frame.(i)
  in
  let pc = ref 0 in
  let result = ref None in
  while !result == None do
    let loc = Array.unsafe_get locs !pc in
    let next = !pc + 1 in
    (match Array.unsafe_get code !pc with
    | IPushInt n ->
        push (VInt n);
        pc := next
    | IPushBool b ->
        push (VBool b);
        pc := next
    | IPushStr s ->
        push (VStr s);
        pc := next
    | IPushNull ->
        push VNull;
        pc := next
    | IPushUnit ->
        push VUnit;
        pc := next
    | ILoadLocal i ->
        push frame.(i);
        pc := next
    | IStoreLocal i ->
        frame.(i) <- pop ();
        pc := next
    | ILoadGlobal i ->
        push vm.globals.(i);
        pc := next
    | IStoreGlobal i ->
        vm.globals.(i) <- pop ();
        pc := next
    | IPop ->
        ignore (pop ());
        pc := next
    | IAddInt ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        push (VInt (l + r));
        pc := next
    | IAddStr ->
        let r = vm_as_str loc (pop ()) in
        let l = vm_as_str loc (pop ()) in
        push (VStr (l ^ r));
        pc := next
    | ISub ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        push (VInt (l - r));
        pc := next
    | IMul ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        push (VInt (l * r));
        pc := next
    | IDiv ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        if r = 0 then crash Div_by_zero loc;
        push (VInt (l / r));
        pc := next
    | IMod ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        if r = 0 then crash Div_by_zero loc;
        push (VInt (l mod r));
        pc := next
    | INeg ->
        push (VInt (-vm_as_int loc (pop ())));
        pc := next
    | INot ->
        push (VBool (not (vm_as_bool loc (pop ()))));
        pc := next
    | IEqVal ->
        let r = pop () in
        let l = pop () in
        push (VBool (Value.equal l r));
        pc := next
    | INeqVal ->
        let r = pop () in
        let l = pop () in
        push (VBool (not (Value.equal l r)));
        pc := next
    | ILt ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        push (VBool (l < r));
        pc := next
    | ILe ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        push (VBool (l <= r));
        pc := next
    | IGt ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        push (VBool (l > r));
        pc := next
    | IGe ->
        let r = vm_as_int loc (pop ()) in
        let l = vm_as_int loc (pop ()) in
        push (VBool (l >= r));
        pc := next
    | IJmp t -> pc := t
    | IJmpIfNot t -> if vm_as_bool loc (pop ()) then pc := next else pc := t
    | IJmpIf t -> if vm_as_bool loc (pop ()) then pc := t else pc := next
    | ICall (fid, arity) ->
        if vm.depth >= vm.cfg.Interp.max_depth then crash Stack_overflow loc;
        let callee = vm.prog.funcs.(fid) in
        let callee_frame = Array.make (max callee.nslots 1) VUnit in
        for i = arity - 1 downto 0 do
          callee_frame.(i) <- pop ()
        done;
        vm.depth <- vm.depth + 1;
        vm.names <- callee.name :: vm.names;
        let v = exec_func vm callee callee_frame in
        vm.depth <- vm.depth - 1;
        vm.names <- List.tl vm.names;
        push v;
        pc := next
    | ICallBuiltin (b, arity) ->
        let args = ref [] in
        for _ = 1 to arity do
          args := pop () :: !args
        done;
        push (Builtins.eval vm.ctx loc b !args);
        pc := next
    | IRet -> result := Some (pop ())
    | INewArray elem ->
        let n = vm_as_int loc (pop ()) in
        if n < 0 then crash (Negative_array_size n) loc;
        push (VArr (Array.make n (default_of_ty elem)));
        pc := next
    | INewStruct sid ->
        let layout = vm.prog.rprog.rp_structs.(sid) in
        push (VStruct (sid, Array.map (fun (_, ty) -> default_of_ty ty) layout.sl_fields));
        pc := next
    | ILoadIndex -> (
        let idx = vm_as_int loc (pop ()) in
        let arr = pop () in
        match arr with
        | VNull -> crash Null_deref loc
        | VArr elems ->
            let n = Array.length elems in
            if idx < 0 || idx >= n then crash (Out_of_bounds { index = idx; length = n }) loc;
            push elems.(idx);
            pc := next
        | v -> crash (Aborted ("internal: indexing " ^ type_name v)) loc)
    | IStoreIndex -> (
        let v = pop () in
        let idx = vm_as_int loc (pop ()) in
        let arr = pop () in
        match arr with
        | VNull -> crash Null_deref loc
        | VArr elems ->
            let n = Array.length elems in
            if idx < 0 || idx >= n then crash (Out_of_bounds { index = idx; length = n }) loc;
            elems.(idx) <- v;
            pc := next
        | v2 -> crash (Aborted ("internal: index-assign to " ^ type_name v2)) loc)
    | ILoadField off -> (
        match pop () with
        | VNull -> crash Null_deref loc
        | VStruct (_, fields) ->
            push fields.(off);
            pc := next
        | v -> crash (Aborted ("internal: field access on " ^ type_name v)) loc)
    | IStoreField off -> (
        let v = pop () in
        match pop () with
        | VNull -> crash Null_deref loc
        | VStruct (_, fields) ->
            fields.(off) <- v;
            pc := next
        | v2 -> crash (Aborted ("internal: field-assign to " ^ type_name v2)) loc)
    | ITickStmt ->
        vm.fuel_left <- vm.fuel_left - 1;
        if vm.fuel_left <= 0 then crash Out_of_fuel loc;
        vm.steps <- vm.steps + 1;
        pc := next
    | ITickLoop ->
        vm.fuel_left <- vm.fuel_left - 1;
        if vm.fuel_left <= 0 then crash Out_of_fuel loc;
        pc := next
    | IObsBranch sid ->
        vm.cfg.Interp.hooks.Interp.on_branch ~sid (vm_as_bool loc (peek ()));
        pc := next
    | IObsCond eid ->
        vm.cfg.Interp.hooks.Interp.on_cond_operand ~eid (vm_as_bool loc (peek ()));
        pc := next
    | IObsAssign { sid; lhs; has_old } ->
        let old_value = if has_old then Some (pop ()) else None in
        vm.cfg.Interp.hooks.Interp.on_scalar_assign ~sid ~lhs ~old_value ~read:read_var;
        pc := next
    | IObsCallRet sid ->
        vm.cfg.Interp.hooks.Interp.on_call_result ~sid (peek ());
        pc := next);
    ()
  done;
  Option.get !result

let run_compiled (program : program) (cfg : Interp.config) : Interp.result =
  let rprog = program.rprog in
  let globals = Array.map (fun (_, ty, _) -> default_of_ty ty) rprog.rp_globals in
  let ctx =
    {
      Builtins.out = Buffer.create 256;
      events_rev = [];
      bugs = Hashtbl.create 8;
      rng = Sbi_util.Prng.create cfg.Interp.nondet_seed;
      args = cfg.Interp.args;
      structs = rprog.rp_structs;
      crash = Interp_error.crash;
    }
  in
  let vm =
    {
      prog = program;
      cfg;
      globals;
      ctx;
      fuel_left = cfg.Interp.fuel;
      steps = 0;
      depth = 0;
      names = [];
      stack = Array.make 256 VUnit;
      sp = 0;
    }
  in
  let outcome =
    try
      ignore (exec_func vm program.globals_init [||]);
      let main_fn = program.funcs.(rprog.rp_main) in
      vm.depth <- vm.depth + 1;
      vm.names <- main_fn.name :: vm.names;
      let v = exec_func vm main_fn (Array.make (max main_fn.nslots 1) VUnit) in
      Interp.Finished v
    with Interp_error.Crash_exc (kind, loc) ->
      let crash_fn = match vm.names with fn :: _ -> fn | [] -> "<toplevel>" in
      Interp.Crashed { Interp.kind; crash_loc = loc; crash_fn; stack = vm.names }
  in
  let bugs =
    Hashtbl.fold (fun k () acc -> k :: acc) ctx.Builtins.bugs [] |> List.sort compare
  in
  {
    Interp.outcome;
    output = Buffer.contents ctx.Builtins.out;
    events = List.rev ctx.Builtins.events_rev;
    bugs_triggered = bugs;
    steps = vm.steps;
  }

let run prog cfg = run_compiled (compile prog) cfg
