(** MiniC lexical tokens. *)

type t =
  (* literals and identifiers *)
  | INT of int
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_INT
  | KW_BOOL
  | KW_STRING
  | KW_VOID
  | KW_STRUCT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_NEW
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  (* operators *)
  | ASSIGN (* = *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ (* == *)
  | NEQ (* != *)
  | LT
  | LE
  | GT
  | GE
  | AND (* && *)
  | OR (* || *)
  | NOT (* ! *)
  | EOF

type spanned = { tok : t; loc : Loc.t }

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val keyword_of_string : string -> t option
