(** Bytecode compiler and virtual machine for MiniC.

    A drop-in alternative execution engine to the tree-walking {!Interp}:
    same configuration, same result type, same observation hooks, same
    crash taxonomy, and — by construction and by differential test — the
    same output, outcome, step count, and hook event stream for every
    program.  Compiling once and reusing the bytecode across thousands of
    monitored runs makes large collections (the paper's 32,000-run
    populations) substantially cheaper.

    The machine is a conventional stack VM: one flat instruction array per
    function, explicit operand stack, locals in a frame array, calls by
    OCaml recursion (mirroring the interpreter's depth accounting). *)

type instr =
  (* constants & variables *)
  | IPushInt of int
  | IPushBool of bool
  | IPushStr of string
  | IPushNull
  | IPushUnit
  | ILoadLocal of int
  | IStoreLocal of int
  | ILoadGlobal of int
  | IStoreGlobal of int
  | IPop
  (* arithmetic / logic (int-typed unless noted) *)
  | IAddInt
  | IAddStr
  | ISub
  | IMul
  | IDiv
  | IMod
  | INeg
  | INot
  | IEqVal  (** generic equality, reference semantics for heap values *)
  | INeqVal
  | ILt
  | ILe
  | IGt
  | IGe
  (* control *)
  | IJmp of int
  | IJmpIfNot of int  (** pops; jumps when false *)
  | IJmpIf of int  (** pops; jumps when true *)
  | ICall of int * int  (** function id, arity *)
  | ICallBuiltin of Rast.builtin * int
  | IRet
  (* heap *)
  | INewArray of Ast.ty
  | INewStruct of int
  | ILoadIndex
  | IStoreIndex  (** stack: arr, idx, value *)
  | ILoadField of int
  | IStoreField of int  (** stack: obj, value *)
  (* accounting, mirroring the interpreter's fuel/step discipline *)
  | ITickStmt  (** statement boundary: burns fuel, counts a step *)
  | ITickLoop  (** loop iteration test: burns fuel only *)
  (* observation hooks *)
  | IObsBranch of int  (** sid; peeks the condition *)
  | IObsCond of int  (** eid; peeks a short-circuit operand *)
  | IObsAssign of { sid : int; lhs : Rast.var_ref; has_old : bool }
      (** after a scalar store; pops the saved old value when [has_old] *)
  | IObsCallRet of int  (** sid; peeks an int call result *)

type func = {
  code : instr array;
  locs : Loc.t array;  (** source location per instruction (for crashes) *)
  nslots : int;
  name : string;
}

type program = {
  funcs : func array;
  globals_init : func;  (** synthetic body executing global initializers *)
  rprog : Rast.rprog;
}

val compile : Rast.rprog -> program
(** Compile every function (and the global initializers). *)

val disassemble : func -> string
(** Human-readable listing, one instruction per line (for tests and
    debugging). *)

val run_compiled : program -> Interp.config -> Interp.result
(** Execute with the same semantics as {!Interp.run}. *)

val run : Rast.rprog -> Interp.config -> Interp.result
(** [compile] + [run_compiled]. *)
