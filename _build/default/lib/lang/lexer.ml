exception Error of Loc.t * string

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)
let fail st msg = raise (Error (loc st, msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' -> (
      match peek2 st with
      | Some '/' ->
          while peek st <> None && peek st <> Some '\n' do
            advance st
          done;
          skip_trivia st
      | Some '*' ->
          let start = loc st in
          advance st;
          advance st;
          let rec go () =
            match (peek st, peek2 st) with
            | Some '*', Some '/' ->
                advance st;
                advance st
            | None, _ -> raise (Error (start, "unterminated block comment"))
            | _ ->
                advance st;
                go ()
          in
          go ();
          skip_trivia st
      | _ -> ())
  | _ -> ()

let lex_int st =
  let start_loc = loc st in
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> Token.INT n
  | None -> raise (Error (start_loc, "integer literal out of range: " ^ text))

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match Token.keyword_of_string text with Some kw -> kw | None -> Token.IDENT text

let lex_string st =
  let start_loc = loc st in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Error (start_loc, "unterminated string literal"))
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            advance st;
            go ()
        | Some '0' ->
            Buffer.add_char buf '\000';
            advance st;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance st;
            go ()
        | Some '"' ->
            Buffer.add_char buf '"';
            advance st;
            go ()
        | Some c -> fail st (Printf.sprintf "unknown escape sequence \\%c" c)
        | None -> raise (Error (start_loc, "unterminated string literal")))
    | Some '\n' -> raise (Error (start_loc, "newline in string literal"))
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let next_token st =
  skip_trivia st;
  let l = loc st in
  let open Token in
  let simple tok = advance st; tok in
  let two_char second one two =
    advance st;
    if peek st = Some second then begin advance st; two end else one
  in
  let tok =
    match peek st with
    | None -> EOF
    | Some c when is_digit c -> lex_int st
    | Some c when is_ident_start c -> lex_ident st
    | Some '"' -> lex_string st
    | Some '(' -> simple LPAREN
    | Some ')' -> simple RPAREN
    | Some '{' -> simple LBRACE
    | Some '}' -> simple RBRACE
    | Some '[' -> simple LBRACKET
    | Some ']' -> simple RBRACKET
    | Some ';' -> simple SEMI
    | Some ',' -> simple COMMA
    | Some '.' -> simple DOT
    | Some '+' -> simple PLUS
    | Some '-' -> simple MINUS
    | Some '*' -> simple STAR
    | Some '/' -> simple SLASH
    | Some '%' -> simple PERCENT
    | Some '=' -> two_char '=' ASSIGN EQ
    | Some '!' -> two_char '=' NOT NEQ
    | Some '<' -> two_char '=' LT LE
    | Some '>' -> two_char '=' GT GE
    | Some '&' ->
        advance st;
        if peek st = Some '&' then begin advance st; AND end
        else fail st "expected '&&'"
    | Some '|' ->
        advance st;
        if peek st = Some '|' then begin advance st; OR end
        else fail st "expected '||'"
    | Some c -> fail st (Printf.sprintf "unexpected character %C" c)
  in
  { Token.tok; loc = l }

let tokenize ?(file = "<string>") src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let acc = ref [] in
  let rec go () =
    let sp = next_token st in
    acc := sp :: !acc;
    if sp.Token.tok <> Token.EOF then go ()
  in
  go ();
  Array.of_list (List.rev !acc)
