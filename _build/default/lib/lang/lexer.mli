(** Hand-written MiniC lexer.

    Supports line comments [// ...], block comments [/* ... */] (non-nested),
    decimal integer literals, double-quoted string literals with the usual
    backslash escapes (n, t, r, 0, backslash, double quote), identifiers,
    keywords, and the operator set of {!Token.t}. *)

exception Error of Loc.t * string
(** Raised on an unexpected character, unterminated string/comment, or
    integer literal overflow. *)

val tokenize : ?file:string -> string -> Token.spanned array
(** [tokenize ~file source] lexes the whole input eagerly.  The final
    element is always [EOF].  @raise Error on malformed input. *)
