(** Shared implementation of MiniC builtins, used by both the tree-walking
    interpreter ({!Interp}) and the bytecode VM ({!Vm}) so the two engines
    cannot drift apart. *)

type ctx = {
  out : Buffer.t;  (** program output *)
  mutable events_rev : string list;  (** [__event] names, newest first *)
  bugs : (int, unit) Hashtbl.t;  (** [__bug] ground-truth ids *)
  rng : Sbi_util.Prng.t;  (** [nondet] stream *)
  args : string array;  (** program input *)
  structs : Rast.struct_layout array;  (** for [print] rendering *)
  crash : Interp_error.crash_kind -> Loc.t -> Value.t;
      (** raise the engine's crash exception; never returns *)
}

val fnv1a_hash : string -> int
(** The deterministic non-negative hash behind [hash_str]. *)

val eval : ctx -> Loc.t -> Rast.builtin -> Value.t list -> Value.t
(** Evaluate a builtin on already-evaluated arguments (arity and types
    guaranteed by the checker; internal mismatches crash with an
    [Aborted "internal: ..."]). *)
