type ty =
  | TInt
  | TBool
  | TString
  | TVoid
  | TStruct of string
  | TArray of ty

let rec ty_equal a b =
  match (a, b) with
  | TInt, TInt | TBool, TBool | TString, TString | TVoid, TVoid -> true
  | TStruct x, TStruct y -> String.equal x y
  | TArray x, TArray y -> ty_equal x y
  | _ -> false

let rec ty_to_string = function
  | TInt -> "int"
  | TBool -> "bool"
  | TString -> "string"
  | TVoid -> "void"
  | TStruct s -> s
  | TArray t -> ty_to_string t ^ "[]"

let pp_ty fmt t = Format.pp_print_string fmt (ty_to_string t)

let is_reference = function TStruct _ | TArray _ -> true | _ -> false

type unop = Neg | Not
type binop = Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Le | Gt | Ge | And | Or

let unop_to_string = function Neg -> "-" | Not -> "!"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

type expr = { e : expr_kind; eloc : Loc.t }

and expr_kind =
  | EInt of int
  | EBool of bool
  | EStr of string
  | ENull
  | EVar of string
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | ECall of string * expr list
  | EIndex of expr * expr
  | EField of expr * string
  | ENewArray of ty * expr
  | ENewStruct of string

type lvalue = LVar of string | LIndex of expr * expr | LField of expr * string

type stmt = { s : stmt_kind; sid : int; sloc : Loc.t }

and stmt_kind =
  | SDecl of ty * string * expr option
  | SAssign of lvalue * expr
  | SExpr of expr
  | SIf of expr * block * block
  | SWhile of expr * block
  | SFor of stmt * expr * stmt * block
  | SReturn of expr option
  | SBreak
  | SContinue
  | SBlock of block

and block = stmt list

type param = ty * string

type func = { fname : string; fparams : param list; fret : ty; fbody : block; floc : Loc.t }

type struct_def = { stname : string; stfields : (ty * string) list; stloc : Loc.t }

type global = { gty : ty; gname : string; ginit : expr option; gloc : Loc.t }

type decl = DFunc of func | DStruct of struct_def | DGlobal of global

type program = { decls : decl list; max_sid : int; src_file : string }

let rec iter_block f block = List.iter (iter_stmt f) block

and iter_stmt f st =
  f st;
  match st.s with
  | SDecl _ | SAssign _ | SExpr _ | SReturn _ | SBreak | SContinue -> ()
  | SIf (_, b1, b2) ->
      iter_block f b1;
      iter_block f b2
  | SWhile (_, b) -> iter_block f b
  | SFor (init, _, step, b) ->
      iter_stmt f init;
      iter_stmt f step;
      iter_block f b
  | SBlock b -> iter_block f b

let iter_stmts prog f =
  List.iter
    (function DFunc fn -> iter_block f fn.fbody | DStruct _ | DGlobal _ -> ())
    prog.decls

let count_stmts prog =
  let n = ref 0 in
  iter_stmts prog (fun _ -> incr n);
  !n

let rec expr_int_literals acc e =
  match e.e with
  | EInt n -> n :: acc
  | EBool _ | EStr _ | ENull | EVar _ -> acc
  | EUnop (Neg, { e = EInt n; _ }) -> -n :: acc
  | EUnop (_, e1) -> expr_int_literals acc e1
  | EBinop (_, e1, e2) -> expr_int_literals (expr_int_literals acc e1) e2
  | ECall (_, args) -> List.fold_left expr_int_literals acc args
  | EIndex (e1, e2) -> expr_int_literals (expr_int_literals acc e1) e2
  | EField (e1, _) -> expr_int_literals acc e1
  | ENewArray (_, e1) -> expr_int_literals acc e1
  | ENewStruct _ -> acc

let int_literals_of_func fn =
  let acc = ref [] in
  let add_expr e = acc := expr_int_literals !acc e in
  let add_stmt st =
    match st.s with
    | SDecl (_, _, Some e) -> add_expr e
    | SDecl (_, _, None) -> ()
    | SAssign (lv, e) -> (
        add_expr e;
        match lv with
        | LVar _ -> ()
        | LIndex (a, i) ->
            add_expr a;
            add_expr i
        | LField (a, _) -> add_expr a)
    | SExpr e -> add_expr e
    | SIf (c, _, _) -> add_expr c
    | SWhile (c, _) -> add_expr c
    | SFor (_, c, _, _) -> add_expr c
    | SReturn (Some e) -> add_expr e
    | SReturn None | SBreak | SContinue | SBlock _ -> ()
  in
  iter_block add_stmt fn.fbody;
  (* first-occurrence order, deduplicated *)
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun out n ->
      if Hashtbl.mem seen n then out
      else begin
        Hashtbl.add seen n ();
        n :: out
      end)
    []
    (List.rev !acc)
  |> List.rev
