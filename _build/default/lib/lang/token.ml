type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_INT
  | KW_BOOL
  | KW_STRING
  | KW_VOID
  | KW_STRUCT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_NEW
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | EOF

type spanned = { tok : t; loc : Loc.t }

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_BOOL -> "bool"
  | KW_STRING -> "string"
  | KW_VOID -> "void"
  | KW_STRUCT -> "struct"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NULL -> "null"
  | KW_NEW -> "new"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | AND -> "&&"
  | OR -> "||"
  | NOT -> "!"
  | EOF -> "<eof>"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "bool" -> Some KW_BOOL
  | "string" -> Some KW_STRING
  | "void" -> Some KW_VOID
  | "struct" -> Some KW_STRUCT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "null" -> Some KW_NULL
  | "new" -> Some KW_NEW
  | _ -> None
