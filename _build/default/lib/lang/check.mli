(** Static checking and name resolution for MiniC.

    Performs, in one pass over each function body (after collecting struct
    layouts, global slots, and function signatures):
    - scope resolution (locals shadow globals; inner blocks shadow outer;
      re-declaration within one block is an error),
    - slot allocation (each local, including parameters, gets a distinct
      frame slot; slots are never reused),
    - type checking with nominal struct types and structural array types
      ([null] is compatible with any reference type),
    - struct field offset resolution,
    - call resolution to user functions or builtins (builtin names are
      reserved and cannot be redefined),
    - control checks ([break]/[continue] only inside loops; conditions are
      [bool]; [main] must exist, take no parameters, and return [int] or
      [void]).

    Falling off the end of a non-void function yields the return type's
    default value ([0], [false], [""], or [null]); this is deliberate
    C-permissiveness, as the corpus programs port C idioms. *)

exception Error of Loc.t * string

val check_program : Ast.program -> Rast.rprog
(** @raise Error on the first static error found. *)

val check_string : ?file:string -> string -> Rast.rprog
(** Parse then check.  @raise Parser.Error / Lexer.Error / Error. *)

val builtin_arity : Rast.builtin -> int
(** Number of arguments each builtin expects. *)
