type crash_kind =
  | Null_deref
  | Out_of_bounds of { index : int; length : int }
  | Div_by_zero
  | Assert_failed
  | Aborted of string
  | Negative_array_size of int
  | Stack_overflow
  | Out_of_fuel
  | Substr_range
  | Chr_range of int

let crash_kind_to_string = function
  | Null_deref -> "null dereference"
  | Out_of_bounds { index; length } ->
      Printf.sprintf "index %d out of bounds for length %d" index length
  | Div_by_zero -> "division by zero"
  | Assert_failed -> "assertion failed"
  | Aborted msg -> "aborted: " ^ msg
  | Negative_array_size n -> Printf.sprintf "negative array size %d" n
  | Stack_overflow -> "stack overflow"
  | Out_of_fuel -> "out of fuel (possible non-termination)"
  | Substr_range -> "substring out of range"
  | Chr_range n -> Printf.sprintf "chr argument %d outside 0..255" n

exception Crash_exc of crash_kind * Loc.t

let crash kind loc = raise (Crash_exc (kind, loc))
