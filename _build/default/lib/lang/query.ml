open Rast

type use = {
  u_var : string;
  u_fn : string;
  u_loc : Loc.t;
  u_kind : [ `Field of string | `Index ];
}

let pp_use fmt u =
  Format.fprintf fmt "%s of %s at %s (in %s)"
    (match u.u_kind with `Field f -> "." ^ f | `Index -> "[...]")
    u.u_var (Loc.to_string u.u_loc) u.u_fn

(* --- variables ever assigned null --- *)

let rec null_assigns_stmt acc (st : rstmt) =
  match st.rs with
  | RAssign (_, RLVar (_, name), { re = RNull; _ }) -> (name, st.rsloc) :: acc
  | RDecl (_, _, name, Some { re = RNull; _ }) -> (name, st.rsloc) :: acc
  | RDecl _ | RAssign _ | RExpr _ | RReturn _ | RBreak | RContinue -> acc
  | RIf (_, b1, b2) ->
      let acc = List.fold_left null_assigns_stmt acc b1 in
      List.fold_left null_assigns_stmt acc b2
  | RWhile (_, b) -> List.fold_left null_assigns_stmt acc b
  | RFor (init, _, step, b) ->
      let acc = null_assigns_stmt acc init in
      let acc = null_assigns_stmt acc step in
      List.fold_left null_assigns_stmt acc b
  | RBlockS b -> List.fold_left null_assigns_stmt acc b

let nulled_vars (prog : rprog) =
  let all =
    Array.fold_left
      (fun acc fn -> List.fold_left null_assigns_stmt acc fn.rf_body)
      [] prog.rp_funcs
  in
  (* one entry per name, first occurrence in source order *)
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (name, loc) ->
      if Hashtbl.mem seen name then acc
      else begin
        Hashtbl.replace seen name ();
        (name, loc) :: acc
      end)
    [] (List.rev all)
  |> List.rev

(* --- unguarded uses --- *)

module SSet = Set.Make (String)

type walk_state = {
  targets : SSet.t;
  fn : string;
  mutable uses_rev : use list;
}

let guard_of_cond cond =
  (* (guarded-in-then, guarded-in-else) *)
  match cond.re with
  | RBinop (Ast.Neq, { re = RVar (_, v); _ }, { re = RNull; _ })
  | RBinop (Ast.Neq, { re = RNull; _ }, { re = RVar (_, v); _ }) ->
      (Some v, None)
  | RBinop (Ast.Eq, { re = RVar (_, v); _ }, { re = RNull; _ })
  | RBinop (Ast.Eq, { re = RNull; _ }, { re = RVar (_, v); _ }) ->
      (None, Some v)
  | _ -> (None, None)

let rec uses_expr st guarded (e : rexpr) =
  match e.re with
  | RInt _ | RBool _ | RStr _ | RNull | RVar _ -> ()
  | RUnop (_, inner) -> uses_expr st guarded inner
  | RBinop (_, l, r) ->
      uses_expr st guarded l;
      uses_expr st guarded r
  | RCall (_, args) -> List.iter (uses_expr st guarded) args
  | RIndex (({ re = RVar (_, v); _ } as base), idx) ->
      if SSet.mem v st.targets && not (SSet.mem v guarded) then
        st.uses_rev <- { u_var = v; u_fn = st.fn; u_loc = e.rloc; u_kind = `Index } :: st.uses_rev;
      uses_expr st guarded base;
      uses_expr st guarded idx
  | RIndex (arr, idx) ->
      uses_expr st guarded arr;
      uses_expr st guarded idx
  | RField ({ re = RVar (_, v); _ }, _, fname) ->
      if SSet.mem v st.targets && not (SSet.mem v guarded) then
        st.uses_rev <-
          { u_var = v; u_fn = st.fn; u_loc = e.rloc; u_kind = `Field fname } :: st.uses_rev
  | RField (obj, _, _) -> uses_expr st guarded obj
  | RNewArray (_, len) -> uses_expr st guarded len
  | RNewStruct _ -> ()

let uses_lvalue st guarded = function
  | RLVar _ -> ()
  | RLIndex (({ re = RVar (_, v); _ } as base), idx) ->
      if SSet.mem v st.targets && not (SSet.mem v guarded) then
        st.uses_rev <-
          { u_var = v; u_fn = st.fn; u_loc = base.rloc; u_kind = `Index } :: st.uses_rev;
      uses_expr st guarded idx
  | RLIndex (arr, idx) ->
      uses_expr st guarded arr;
      uses_expr st guarded idx
  | RLField (({ re = RVar (_, v); _ } as base), _, fname) ->
      if SSet.mem v st.targets && not (SSet.mem v guarded) then
        st.uses_rev <-
          { u_var = v; u_fn = st.fn; u_loc = base.rloc; u_kind = `Field fname } :: st.uses_rev
  | RLField (obj, _, _) -> uses_expr st guarded obj

(* Walking a block returns the set of variables known non-null on exit
   (straight-line re-assignments add to the guard set; null assignments
   remove). *)
let rec walk_block st guarded block = List.fold_left (walk_stmt st) guarded block

and walk_stmt st guarded (stmt : rstmt) =
  match stmt.rs with
  | RDecl (_, _, name, init) -> (
      match init with
      | Some ({ re = RNull; _ } as e) ->
          uses_expr st guarded e;
          SSet.remove name guarded
      | Some e ->
          uses_expr st guarded e;
          if Ast.is_reference (match e.rty with t -> t) then SSet.add name guarded
          else guarded
      | None -> SSet.remove name guarded)
  | RAssign (_, lv, rhs) -> (
      uses_lvalue st guarded lv;
      uses_expr st guarded rhs;
      match (lv, rhs.re) with
      | RLVar (_, name), RNull -> SSet.remove name guarded
      | RLVar (_, name), (RNewStruct _ | RNewArray _) -> SSet.add name guarded
      | _ -> guarded)
  | RExpr e ->
      uses_expr st guarded e;
      guarded
  | RIf (cond, then_b, else_b) ->
      uses_expr st guarded cond;
      let then_guard, else_guard = guard_of_cond cond in
      let g_then =
        match then_guard with Some v -> SSet.add v guarded | None -> guarded
      in
      let g_else =
        match else_guard with Some v -> SSet.add v guarded | None -> guarded
      in
      let out_then = walk_block st g_then then_b in
      let out_else = walk_block st g_else else_b in
      (* join: guaranteed non-null only if non-null on both paths *)
      SSet.inter out_then out_else
  | RWhile (cond, body) ->
      uses_expr st guarded cond;
      (* the loop body may run zero times; drop its guarantees *)
      ignore (walk_block st guarded body);
      guarded
  | RFor (init, cond, step, body) ->
      let g = walk_stmt st guarded init in
      uses_expr st g cond;
      ignore (walk_stmt st (walk_block st g body) step);
      g
  | RReturn (Some e) ->
      uses_expr st guarded e;
      guarded
  | RReturn None | RBreak | RContinue -> guarded
  | RBlockS body -> walk_block st guarded body

let unsafe_uses ?only (prog : rprog) =
  let targets =
    match only with
    | Some names -> SSet.of_list names
    | None -> SSet.of_list (List.map fst (nulled_vars prog))
  in
  let all = ref [] in
  Array.iter
    (fun fn ->
      let st = { targets; fn = fn.rf_name; uses_rev = [] } in
      ignore (walk_block st SSet.empty fn.rf_body);
      all := List.rev_append st.uses_rev !all)
    prog.rp_funcs;
  List.rev !all

let count_by_function uses =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun u -> Hashtbl.replace tbl u.u_fn (1 + Option.value ~default:0 (Hashtbl.find_opt tbl u.u_fn)))
    uses;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
