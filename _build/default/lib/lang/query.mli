(** Simple syntactic static analysis over checked MiniC programs.

    The paper (§1) recounts how a statistical failure predictor in
    RHYTHMBOX exposed an unsafe library-usage pattern, after which "a
    simple syntactic static analysis subsequently showed more than one
    hundred instances of the same unsafe pattern".  This module is that
    follow-up tool for MiniC: once statistical debugging names a disposed
    reference, [unsafe_uses] enumerates every syntactically unguarded use
    of any reference that the program ever nulls out.

    The guard analysis is deliberately syntactic (like the paper's): a use
    of [v] counts as guarded only inside the then-branch of
    [if (v != null)] (or the else-branch of [if (v == null)]), or when the
    enclosing function re-assigns [v] a non-null value on every path before
    the use is reached in straight-line order.  No data-flow beyond that. *)

type use = {
  u_var : string;  (** the referenced variable *)
  u_fn : string;  (** enclosing function *)
  u_loc : Loc.t;
  u_kind : [ `Field of string | `Index ];
}

val pp_use : Format.formatter -> use -> unit

val nulled_vars : Rast.rprog -> (string * Loc.t) list
(** Variables (globals or locals, by name) assigned the literal [null]
    anywhere in the program, with the location of one such assignment —
    candidates for dispose-then-use bugs. *)

val unsafe_uses : ?only:string list -> Rast.rprog -> use list
(** Unguarded dereferences (field access or indexing) of variables in
    [only] (default: all of [nulled_vars]).  Source order. *)

val count_by_function : use list -> (string * int) list
(** Instances per function, descending. *)
