lib/lang/builtins.ml: Array Buffer Char Hashtbl Int64 Interp_error List Loc Printf Rast Sbi_util String Value
