lib/lang/vm.mli: Ast Interp Loc Rast
