lib/lang/interp.ml: Array Ast Buffer Builtins Check Hashtbl Interp_error List Loc Printf Rast Sbi_util Value
