lib/lang/check.ml: Array Ast Hashtbl List Loc Option Parser Printf Rast
