lib/lang/rast.mli: Ast Format Loc
