lib/lang/query.ml: Array Ast Format Hashtbl List Loc Option Rast Set String
