lib/lang/rast.ml: Array Ast Format Hashtbl List Loc
