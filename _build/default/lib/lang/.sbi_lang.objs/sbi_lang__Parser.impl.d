lib/lang/parser.ml: Array Ast Lexer List Loc Printf Token
