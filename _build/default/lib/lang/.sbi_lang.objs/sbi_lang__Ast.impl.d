lib/lang/ast.ml: Format Hashtbl List Loc String
