lib/lang/check.mli: Ast Loc Rast
