lib/lang/builtins.mli: Buffer Hashtbl Interp_error Loc Rast Sbi_util Value
