lib/lang/token.ml: Format Loc Printf
