lib/lang/query.mli: Format Loc Rast
