lib/lang/interp_error.mli: Loc
