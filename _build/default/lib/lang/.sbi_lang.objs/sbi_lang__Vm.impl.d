lib/lang/vm.ml: Array Ast Buffer Builtins Hashtbl Interp Interp_error List Loc Option Printf Rast Sbi_util Value
