lib/lang/value.ml: Array Ast Printf Rast String
