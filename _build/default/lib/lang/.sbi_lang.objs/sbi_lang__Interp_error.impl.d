lib/lang/interp_error.ml: Loc Printf
