lib/lang/interp.mli: Interp_error Loc Rast Value
