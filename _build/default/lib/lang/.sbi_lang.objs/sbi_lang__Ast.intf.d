lib/lang/ast.mli: Format Loc
