lib/lang/value.mli: Ast Rast
