open Value
open Interp_error

type ctx = {
  out : Buffer.t;
  mutable events_rev : string list;
  bugs : (int, unit) Hashtbl.t;
  rng : Sbi_util.Prng.t;
  args : string array;
  structs : Rast.struct_layout array;
  crash : Interp_error.crash_kind -> Loc.t -> Value.t;
}

let fnv1a_hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let as_int ctx loc = function
  | VInt n -> n
  | v -> (
      match
        ctx.crash (Aborted (Printf.sprintf "internal: expected int, got %s" (type_name v))) loc
      with
      | VInt n -> n
      | _ -> assert false)

let as_bool ctx loc = function
  | VBool b -> b
  | v -> (
      match
        ctx.crash (Aborted (Printf.sprintf "internal: expected bool, got %s" (type_name v))) loc
      with
      | VBool b -> b
      | _ -> assert false)

let as_str ctx loc = function
  | VStr s -> s
  | v -> (
      match
        ctx.crash (Aborted (Printf.sprintf "internal: expected string, got %s" (type_name v))) loc
      with
      | VStr s -> s
      | _ -> assert false)

let eval ctx loc (b : Rast.builtin) (vals : Value.t list) =
  let nth i = List.nth vals i in
  match b with
  | Rast.BPrint ->
      Buffer.add_string ctx.out (Value.to_string ~structs:ctx.structs (nth 0));
      VUnit
  | Rast.BPrintln ->
      Buffer.add_string ctx.out (Value.to_string ~structs:ctx.structs (nth 0));
      Buffer.add_char ctx.out '\n';
      VUnit
  | Rast.BLen -> (
      match nth 0 with
      | VNull -> ctx.crash Null_deref loc
      | VArr elems -> VInt (Array.length elems)
      | v -> ctx.crash (Aborted ("internal: len of " ^ type_name v)) loc)
  | Rast.BStrlen -> VInt (String.length (as_str ctx loc (nth 0)))
  | Rast.BSubstr ->
      let s = as_str ctx loc (nth 0) in
      let start = as_int ctx loc (nth 1) in
      let len = as_int ctx loc (nth 2) in
      if start < 0 || len < 0 || start + len > String.length s then ctx.crash Substr_range loc
      else VStr (String.sub s start len)
  | Rast.BStrcmp ->
      let c = String.compare (as_str ctx loc (nth 0)) (as_str ctx loc (nth 1)) in
      VInt (if c < 0 then -1 else if c > 0 then 1 else 0)
  | Rast.BOrd ->
      let s = as_str ctx loc (nth 0) in
      let i = as_int ctx loc (nth 1) in
      if i < 0 || i >= String.length s then
        ctx.crash (Out_of_bounds { index = i; length = String.length s }) loc
      else VInt (Char.code s.[i])
  | Rast.BChr ->
      let n = as_int ctx loc (nth 0) in
      if n < 0 || n > 255 then ctx.crash (Chr_range n) loc
      else VStr (String.make 1 (Char.chr n))
  | Rast.BToStr -> VStr (string_of_int (as_int ctx loc (nth 0)))
  | Rast.BParseInt -> (
      match int_of_string_opt (String.trim (as_str ctx loc (nth 0))) with
      | Some n -> VInt n
      | None -> VInt 0)
  | Rast.BIsInt -> (
      match int_of_string_opt (String.trim (as_str ctx loc (nth 0))) with
      | Some _ -> VBool true
      | None -> VBool false)
  | Rast.BHashStr -> VInt (fnv1a_hash (as_str ctx loc (nth 0)))
  | Rast.BAbort -> ctx.crash (Aborted (as_str ctx loc (nth 0))) loc
  | Rast.BAssert -> if as_bool ctx loc (nth 0) then VUnit else ctx.crash Assert_failed loc
  | Rast.BBugMark ->
      Hashtbl.replace ctx.bugs (as_int ctx loc (nth 0)) ();
      VUnit
  | Rast.BEvent ->
      ctx.events_rev <- as_str ctx loc (nth 0) :: ctx.events_rev;
      VUnit
  | Rast.BArgc -> VInt (Array.length ctx.args)
  | Rast.BArg ->
      let i = as_int ctx loc (nth 0) in
      let n = Array.length ctx.args in
      if i < 0 || i >= n then ctx.crash (Out_of_bounds { index = i; length = n }) loc
      else VStr ctx.args.(i)
  | Rast.BArgInt ->
      let i = as_int ctx loc (nth 0) in
      let n = Array.length ctx.args in
      if i < 0 || i >= n then ctx.crash (Out_of_bounds { index = i; length = n }) loc
      else (
        match int_of_string_opt (String.trim ctx.args.(i)) with
        | Some v -> VInt v
        | None -> VInt 0)
  | Rast.BNondet ->
      let n = as_int ctx loc (nth 0) in
      if n <= 0 then VInt 0 else VInt (Sbi_util.Prng.int ctx.rng n)
  | Rast.BMin -> VInt (min (as_int ctx loc (nth 0)) (as_int ctx loc (nth 1)))
  | Rast.BMax -> VInt (max (as_int ctx loc (nth 0)) (as_int ctx loc (nth 1)))
  | Rast.BAbs -> VInt (abs (as_int ctx loc (nth 0)))
