(** MiniC runtime values.

    Arrays and structs have reference semantics (aliasing is visible through
    assignment, and [==] compares identity), matching C pointers closely
    enough for the corpus programs. *)

type t =
  | VInt of int
  | VBool of bool
  | VStr of string
  | VArr of t array
  | VStruct of int * t array  (** struct id, field values *)
  | VNull
  | VUnit

val default_of_ty : Ast.ty -> t
(** [0], [false], [""], or [null]; [VUnit] for void. *)

val equal : t -> t -> bool
(** Structural for scalars, physical (reference) for arrays and structs.
    [VNull] equals only [VNull]. *)

val to_string : ?structs:Rast.struct_layout array -> t -> string
(** Rendering used by [print]: ints in decimal, bools as [true]/[false],
    strings verbatim, [null], arrays as [\[v1, v2, ...\]], structs as
    [<name>] (or [<struct#i>] when no layout table is supplied). *)

val type_name : t -> string
