(** Tree-walking interpreter for resolved MiniC with observation hooks.

    The interpreter is the "hardware" of the reproduction: it executes
    subject programs, detects crashes (the paper's failure labels), captures
    the call stack at the point of failure (for the stack-trace study),
    records ground-truth bug occurrences ([__bug(n)] intrinsic — the
    controlled-experiment columns of the paper's Table 3), and drives the
    instrumentation hooks that the sampling runtime plugs into. *)

type crash_kind = Interp_error.crash_kind =
  | Null_deref
  | Out_of_bounds of { index : int; length : int }
  | Div_by_zero
  | Assert_failed
  | Aborted of string
  | Negative_array_size of int
  | Stack_overflow
  | Out_of_fuel
  | Substr_range
  | Chr_range of int

val crash_kind_to_string : crash_kind -> string

type crash = {
  kind : crash_kind;
  crash_loc : Loc.t;
  crash_fn : string;  (** function containing the faulting statement *)
  stack : string list;  (** call stack, innermost first, includes [crash_fn] *)
}

type outcome = Finished of Value.t | Crashed of crash

(** Observation hooks, called during execution.  [sid] is the statement id
    from the (r)AST; the instrumentation runtime maps ids to sites.  All
    hooks default to no-ops. *)
type hooks = {
  on_branch : sid:int -> bool -> unit;
      (** each evaluation of an [if]/[while]/[for] condition *)
  on_scalar_assign :
    sid:int -> lhs:Rast.var_ref -> old_value:Value.t option -> read:(Rast.var_ref -> Value.t) -> unit;
      (** after an [int]-typed assignment or initialized declaration whose
          target is a plain variable; [old_value] is [None] for
          declarations; [read] looks up current variable values *)
  on_call_result : sid:int -> Value.t -> unit;
      (** after an expression-statement call returning [int] *)
  on_cond_operand : eid:int -> bool -> unit;
      (** each evaluated operand of a short-circuiting [&&]/[||] — the
          paper's "implicit conditionals"; keyed by expression id *)
}

val no_hooks : hooks

type config = {
  args : string array;  (** program input, exposed via [argc]/[arg] *)
  fuel : int;  (** max statements executed before [Out_of_fuel] *)
  max_depth : int;  (** max call depth before [Stack_overflow] *)
  nondet_seed : int;  (** seed for the [nondet] builtin *)
  hooks : hooks;
}

val default_config : config
(** No args, 10 million statements of fuel, depth 2000, seed 0, no hooks. *)

type result = {
  outcome : outcome;
  output : string;  (** everything printed *)
  events : string list;  (** [__event] names, in order *)
  bugs_triggered : int list;  (** distinct [__bug] ids, sorted *)
  steps : int;  (** statements executed *)
}

val run : Rast.rprog -> config -> result
(** Initializes globals (defaults, then declared initializers in order),
    then calls [main].  Never raises for in-language failures — they are
    reported as [Crashed].  @raise Invalid_argument on malformed programs
    that the checker would have rejected. *)

val run_string : ?config:config -> string -> result
(** Parse, check, and run; convenience for tests and examples. *)
