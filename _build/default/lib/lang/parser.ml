open Ast

exception Error of Loc.t * string

type state = { toks : Token.spanned array; mutable pos : int; mutable next_sid : int }

let cur st = st.toks.(st.pos)
let cur_tok st = (cur st).Token.tok
let cur_loc st = (cur st).Token.loc
let fail st msg = raise (Error (cur_loc st, msg))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok =
  if cur_tok st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string (cur_tok st)))

let expect_ident st =
  match cur_tok st with
  | Token.IDENT name ->
      advance st;
      name
  | t -> fail st (Printf.sprintf "expected identifier but found '%s'" (Token.to_string t))

let fresh_sid st =
  let id = st.next_sid in
  st.next_sid <- id + 1;
  id

let peek_tok st k =
  let i = st.pos + k in
  if i < Array.length st.toks then st.toks.(i).Token.tok else Token.EOF

(* --- types --- *)

let base_type_of_token = function
  | Token.KW_INT -> Some TInt
  | Token.KW_BOOL -> Some TBool
  | Token.KW_STRING -> Some TString
  | Token.KW_VOID -> Some TVoid
  | _ -> None

let rec parse_array_suffix st ty =
  if cur_tok st = Token.LBRACKET && peek_tok st 1 = Token.RBRACKET then begin
    advance st;
    advance st;
    parse_array_suffix st (TArray ty)
  end
  else ty

let parse_type st =
  match base_type_of_token (cur_tok st) with
  | Some base ->
      advance st;
      parse_array_suffix st base
  | None -> (
      match cur_tok st with
      | Token.IDENT name ->
          advance st;
          parse_array_suffix st (TStruct name)
      | t -> fail st (Printf.sprintf "expected type but found '%s'" (Token.to_string t)))

(* Is a type starting at the current position followed by an identifier?
   Used to disambiguate declarations from expression statements. *)
let looks_like_decl st =
  match cur_tok st with
  | Token.KW_INT | Token.KW_BOOL | Token.KW_STRING | Token.KW_VOID -> true
  | Token.IDENT _ ->
      (* IDENT ("[" "]")* IDENT  is a declaration with a struct type *)
      let rec scan k =
        match (peek_tok st k, peek_tok st (k + 1)) with
        | Token.LBRACKET, Token.RBRACKET -> scan (k + 2)
        | Token.IDENT _, _ -> true
        | _ -> false
      in
      scan 1
  | _ -> false

(* --- expressions --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if cur_tok st = Token.OR then begin
    let loc = cur_loc st in
    advance st;
    let rhs = parse_or st in
    { e = EBinop (Or, lhs, rhs); eloc = loc }
  end
  else lhs

and parse_and st =
  let lhs = parse_equality st in
  if cur_tok st = Token.AND then begin
    let loc = cur_loc st in
    advance st;
    let rhs = parse_and st in
    { e = EBinop (And, lhs, rhs); eloc = loc }
  end
  else lhs

and parse_equality st =
  let rec go lhs =
    match cur_tok st with
    | Token.EQ ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_relational st in
        go { e = EBinop (Eq, lhs, rhs); eloc = loc }
    | Token.NEQ ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_relational st in
        go { e = EBinop (Neq, lhs, rhs); eloc = loc }
    | _ -> lhs
  in
  go (parse_relational st)

and parse_relational st =
  let rec go lhs =
    let op =
      match cur_tok st with
      | Token.LT -> Some Lt
      | Token.LE -> Some Le
      | Token.GT -> Some Gt
      | Token.GE -> Some Ge
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_additive st in
        go { e = EBinop (op, lhs, rhs); eloc = loc }
  in
  go (parse_additive st)

and parse_additive st =
  let rec go lhs =
    let op =
      match cur_tok st with
      | Token.PLUS -> Some Add
      | Token.MINUS -> Some Sub
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_term st in
        go { e = EBinop (op, lhs, rhs); eloc = loc }
  in
  go (parse_term st)

and parse_term st =
  let rec go lhs =
    let op =
      match cur_tok st with
      | Token.STAR -> Some Mul
      | Token.SLASH -> Some Div
      | Token.PERCENT -> Some Mod
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_unary st in
        go { e = EBinop (op, lhs, rhs); eloc = loc }
  in
  go (parse_unary st)

and parse_unary st =
  match cur_tok st with
  | Token.MINUS ->
      let loc = cur_loc st in
      advance st;
      let inner = parse_unary st in
      { e = EUnop (Neg, inner); eloc = loc }
  | Token.NOT ->
      let loc = cur_loc st in
      advance st;
      let inner = parse_unary st in
      { e = EUnop (Not, inner); eloc = loc }
  | _ -> parse_postfix st

and parse_postfix st =
  let primary = parse_primary st in
  let rec go acc =
    match cur_tok st with
    | Token.LBRACKET ->
        let loc = cur_loc st in
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        go { e = EIndex (acc, idx); eloc = loc }
    | Token.DOT ->
        let loc = cur_loc st in
        advance st;
        let field = expect_ident st in
        go { e = EField (acc, field); eloc = loc }
    | Token.LPAREN -> (
        match acc.e with
        | EVar fname ->
            let loc = acc.eloc in
            advance st;
            let args = parse_args st in
            go { e = ECall (fname, args); eloc = loc }
        | _ -> fail st "only named functions can be called")
    | _ -> acc
  in
  go primary

and parse_args st =
  if cur_tok st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr st in
      match cur_tok st with
      | Token.COMMA ->
          advance st;
          go (e :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev (e :: acc)
      | _ -> fail st "expected ',' or ')' in argument list"
    in
    go []
  end

and parse_primary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.INT n ->
      advance st;
      { e = EInt n; eloc = loc }
  | Token.STRING s ->
      advance st;
      { e = EStr s; eloc = loc }
  | Token.KW_TRUE ->
      advance st;
      { e = EBool true; eloc = loc }
  | Token.KW_FALSE ->
      advance st;
      { e = EBool false; eloc = loc }
  | Token.KW_NULL ->
      advance st;
      { e = ENull; eloc = loc }
  | Token.IDENT name ->
      advance st;
      { e = EVar name; eloc = loc }
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.KW_NEW -> (
      advance st;
      (* new BASE ("[" "]")* ( "[" expr "]" )?   -- trailing [expr] = array *)
      let base =
        match base_type_of_token (cur_tok st) with
        | Some b ->
            advance st;
            b
        | None -> (
            match cur_tok st with
            | Token.IDENT n ->
                advance st;
                TStruct n
            | t ->
                fail st
                  (Printf.sprintf "expected type after 'new' but found '%s'"
                     (Token.to_string t)))
      in
      (* consume "[]" pairs that build nested element types *)
      let rec nest ty =
        if cur_tok st = Token.LBRACKET && peek_tok st 1 = Token.RBRACKET then begin
          advance st;
          advance st;
          nest (TArray ty)
        end
        else ty
      in
      let elem = nest base in
      match cur_tok st with
      | Token.LBRACKET ->
          advance st;
          let len = parse_expr st in
          expect st Token.RBRACKET;
          { e = ENewArray (elem, len); eloc = loc }
      | _ -> (
          match elem with
          | TStruct name -> { e = ENewStruct name; eloc = loc }
          | _ -> fail st "'new' of a non-struct type requires an array length"))
  | t -> fail st (Printf.sprintf "unexpected token '%s' in expression" (Token.to_string t))

(* --- statements --- *)

let lvalue_of_expr st e =
  match e.e with
  | EVar name -> LVar name
  | EIndex (arr, idx) -> LIndex (arr, idx)
  | EField (obj, fld) -> LField (obj, fld)
  | _ -> fail st "invalid assignment target"

let rec parse_stmt st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.LBRACE ->
      let sid = fresh_sid st in
      advance st;
      let body = parse_block_items st in
      { s = SBlock body; sid; sloc = loc }
  | Token.KW_IF ->
      let sid = fresh_sid st in
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_b = parse_stmt_as_block st in
      let else_b =
        if cur_tok st = Token.KW_ELSE then begin
          advance st;
          parse_stmt_as_block st
        end
        else []
      in
      { s = SIf (cond, then_b, else_b); sid; sloc = loc }
  | Token.KW_WHILE ->
      let sid = fresh_sid st in
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_stmt_as_block st in
      { s = SWhile (cond, body); sid; sloc = loc }
  | Token.KW_FOR ->
      let sid = fresh_sid st in
      advance st;
      expect st Token.LPAREN;
      let init =
        if cur_tok st = Token.SEMI then { s = SBlock []; sid = fresh_sid st; sloc = loc }
        else parse_simple st
      in
      expect st Token.SEMI;
      let cond =
        if cur_tok st = Token.SEMI then { e = EBool true; eloc = cur_loc st }
        else parse_expr st
      in
      expect st Token.SEMI;
      let step =
        if cur_tok st = Token.RPAREN then { s = SBlock []; sid = fresh_sid st; sloc = loc }
        else parse_simple st
      in
      expect st Token.RPAREN;
      let body = parse_stmt_as_block st in
      { s = SFor (init, cond, step, body); sid; sloc = loc }
  | Token.KW_RETURN ->
      let sid = fresh_sid st in
      advance st;
      let e = if cur_tok st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      { s = SReturn e; sid; sloc = loc }
  | Token.KW_BREAK ->
      let sid = fresh_sid st in
      advance st;
      expect st Token.SEMI;
      { s = SBreak; sid; sloc = loc }
  | Token.KW_CONTINUE ->
      let sid = fresh_sid st in
      advance st;
      expect st Token.SEMI;
      { s = SContinue; sid; sloc = loc }
  | _ ->
      let stmt = parse_simple st in
      expect st Token.SEMI;
      stmt

(* A "simple" statement: declaration, assignment, or expression — no
   trailing semicolon (shared between statement and for-header contexts). *)
and parse_simple st =
  let loc = cur_loc st in
  if looks_like_decl st then begin
    let sid = fresh_sid st in
    let ty = parse_type st in
    let name = expect_ident st in
    let init =
      if cur_tok st = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    { s = SDecl (ty, name, init); sid; sloc = loc }
  end
  else begin
    let sid = fresh_sid st in
    let e = parse_expr st in
    if cur_tok st = Token.ASSIGN then begin
      advance st;
      let rhs = parse_expr st in
      { s = SAssign (lvalue_of_expr st e, rhs); sid; sloc = loc }
    end
    else { s = SExpr e; sid; sloc = loc }
  end

and parse_stmt_as_block st =
  if cur_tok st = Token.LBRACE then begin
    advance st;
    parse_block_items st
  end
  else [ parse_stmt st ]

and parse_block_items st =
  let rec go acc =
    if cur_tok st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else if cur_tok st = Token.EOF then fail st "unexpected end of file in block"
    else go (parse_stmt st :: acc)
  in
  go []

(* --- declarations --- *)

let parse_struct_def st =
  let loc = cur_loc st in
  expect st Token.KW_STRUCT;
  let name = expect_ident st in
  expect st Token.LBRACE;
  let rec fields acc =
    if cur_tok st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      let ty = parse_type st in
      let fname = expect_ident st in
      expect st Token.SEMI;
      fields ((ty, fname) :: acc)
    end
  in
  let fs = fields [] in
  if cur_tok st = Token.SEMI then advance st;
  DStruct { stname = name; stfields = fs; stloc = loc }

let parse_params st =
  expect st Token.LPAREN;
  if cur_tok st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let ty = parse_type st in
      let name = expect_ident st in
      match cur_tok st with
      | Token.COMMA ->
          advance st;
          go ((ty, name) :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev ((ty, name) :: acc)
      | _ -> fail st "expected ',' or ')' in parameter list"
    in
    go []
  end

let parse_toplevel st =
  let loc = cur_loc st in
  if cur_tok st = Token.KW_STRUCT then parse_struct_def st
  else begin
    let ty = parse_type st in
    let name = expect_ident st in
    if cur_tok st = Token.LPAREN then begin
      let params = parse_params st in
      expect st Token.LBRACE;
      let body = parse_block_items st in
      DFunc { fname = name; fparams = params; fret = ty; fbody = body; floc = loc }
    end
    else begin
      let init =
        if cur_tok st = Token.ASSIGN then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st Token.SEMI;
      DGlobal { gty = ty; gname = name; ginit = init; gloc = loc }
    end
  end

let parse ?(file = "<string>") src =
  let toks = Lexer.tokenize ~file src in
  let st = { toks; pos = 0; next_sid = 0 } in
  let rec go acc =
    if cur_tok st = Token.EOF then List.rev acc else go (parse_toplevel st :: acc)
  in
  let decls = go [] in
  { decls; max_sid = st.next_sid; src_file = file }

let parse_expr_string src =
  let toks = Lexer.tokenize src in
  let st = { toks; pos = 0; next_sid = 0 } in
  let e = parse_expr st in
  if cur_tok st <> Token.EOF then fail st "trailing tokens after expression";
  e
