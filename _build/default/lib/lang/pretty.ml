open Ast

(* Precedence levels for minimal parenthesisation. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let rec expr_prec e =
  match e.e with
  | EBinop (op, _, _) -> binop_prec op
  | EUnop _ -> 7
  | EInt _ | EBool _ | EStr _ | ENull | EVar _ | ECall _ | EIndex _ | EField _
  | ENewArray _ | ENewStruct _ ->
      8

and expr_to_buf buf prec e =
  let mine = expr_prec e in
  let parens = mine < prec in
  if parens then Buffer.add_char buf '(';
  (match e.e with
  | EInt n ->
      if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
      else Buffer.add_string buf (string_of_int n)
  | EBool b -> Buffer.add_string buf (if b then "true" else "false")
  | EStr s -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | ENull -> Buffer.add_string buf "null"
  | EVar v -> Buffer.add_string buf v
  | EUnop (op, inner) ->
      Buffer.add_string buf (unop_to_string op);
      expr_to_buf buf 7 inner
  | EBinop (op, l, r) ->
      (* left-associative: left child same level, right child one higher *)
      expr_to_buf buf mine l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_to_string op);
      Buffer.add_char buf ' ';
      expr_to_buf buf (mine + 1) r
  | ECall (f, args) ->
      Buffer.add_string buf f;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr_to_buf buf 0 a)
        args;
      Buffer.add_char buf ')'
  | EIndex (arr, idx) ->
      expr_to_buf buf 8 arr;
      Buffer.add_char buf '[';
      expr_to_buf buf 0 idx;
      Buffer.add_char buf ']'
  | EField (obj, fld) ->
      expr_to_buf buf 8 obj;
      Buffer.add_char buf '.';
      Buffer.add_string buf fld
  | ENewArray (ty, len) ->
      Buffer.add_string buf "new ";
      Buffer.add_string buf (ty_to_string ty);
      Buffer.add_char buf '[';
      expr_to_buf buf 0 len;
      Buffer.add_char buf ']'
  | ENewStruct name ->
      Buffer.add_string buf "new ";
      Buffer.add_string buf name);
  if parens then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 32 in
  expr_to_buf buf 0 e;
  Buffer.contents buf

let lvalue_to_string = function
  | LVar v -> v
  | LIndex (arr, idx) -> Printf.sprintf "%s[%s]" (expr_to_string arr) (expr_to_string idx)
  | LField (obj, fld) -> Printf.sprintf "%s.%s" (expr_to_string obj) fld

let rec stmt_to_buf buf indent st =
  let pad = String.make (indent * 2) ' ' in
  let line s =
    Buffer.add_string buf pad;
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  match st.s with
  | SDecl (ty, name, None) -> line (Printf.sprintf "%s %s;" (ty_to_string ty) name)
  | SDecl (ty, name, Some e) ->
      line (Printf.sprintf "%s %s = %s;" (ty_to_string ty) name (expr_to_string e))
  | SAssign (lv, e) -> line (Printf.sprintf "%s = %s;" (lvalue_to_string lv) (expr_to_string e))
  | SExpr e -> line (expr_to_string e ^ ";")
  | SIf (cond, then_b, else_b) ->
      line (Printf.sprintf "if (%s) {" (expr_to_string cond));
      block_to_buf buf (indent + 1) then_b;
      if else_b = [] then line "}"
      else begin
        line "} else {";
        block_to_buf buf (indent + 1) else_b;
        line "}"
      end
  | SWhile (cond, body) ->
      line (Printf.sprintf "while (%s) {" (expr_to_string cond));
      block_to_buf buf (indent + 1) body;
      line "}"
  | SFor (init, cond, step, body) ->
      let simple s =
        match s.s with
        | SBlock [] -> ""
        | SDecl (ty, name, None) -> Printf.sprintf "%s %s" (ty_to_string ty) name
        | SDecl (ty, name, Some e) ->
            Printf.sprintf "%s %s = %s" (ty_to_string ty) name (expr_to_string e)
        | SAssign (lv, e) -> Printf.sprintf "%s = %s" (lvalue_to_string lv) (expr_to_string e)
        | SExpr e -> expr_to_string e
        | _ -> "/*complex*/"
      in
      line
        (Printf.sprintf "for (%s; %s; %s) {" (simple init) (expr_to_string cond)
           (simple step));
      block_to_buf buf (indent + 1) body;
      line "}"
  | SReturn None -> line "return;"
  | SReturn (Some e) -> line (Printf.sprintf "return %s;" (expr_to_string e))
  | SBreak -> line "break;"
  | SContinue -> line "continue;"
  | SBlock body ->
      line "{";
      block_to_buf buf (indent + 1) body;
      line "}"

and block_to_buf buf indent body = List.iter (stmt_to_buf buf indent) body

let stmt_to_string ?(indent = 0) st =
  let buf = Buffer.create 64 in
  stmt_to_buf buf indent st;
  Buffer.contents buf

let decl_to_buf buf = function
  | DStruct { stname; stfields; _ } ->
      Buffer.add_string buf (Printf.sprintf "struct %s {\n" stname);
      List.iter
        (fun (ty, name) ->
          Buffer.add_string buf (Printf.sprintf "  %s %s;\n" (ty_to_string ty) name))
        stfields;
      Buffer.add_string buf "}\n\n"
  | DGlobal { gty; gname; ginit; _ } ->
      (match ginit with
      | None -> Buffer.add_string buf (Printf.sprintf "%s %s;\n\n" (ty_to_string gty) gname)
      | Some e ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s = %s;\n\n" (ty_to_string gty) gname (expr_to_string e)))
  | DFunc { fname; fparams; fret; fbody; _ } ->
      let params =
        String.concat ", "
          (List.map (fun (ty, name) -> Printf.sprintf "%s %s" (ty_to_string ty) name) fparams)
      in
      Buffer.add_string buf (Printf.sprintf "%s %s(%s) {\n" (ty_to_string fret) fname params);
      block_to_buf buf 1 fbody;
      Buffer.add_string buf "}\n\n"

let program_to_string prog =
  let buf = Buffer.create 1024 in
  List.iter (decl_to_buf buf) prog.decls;
  Buffer.contents buf

let pp_program fmt prog = Format.pp_print_string fmt (program_to_string prog)
