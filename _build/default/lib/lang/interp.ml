open Rast
open Value

type crash_kind = Interp_error.crash_kind =
  | Null_deref
  | Out_of_bounds of { index : int; length : int }
  | Div_by_zero
  | Assert_failed
  | Aborted of string
  | Negative_array_size of int
  | Stack_overflow
  | Out_of_fuel
  | Substr_range
  | Chr_range of int

let crash_kind_to_string = Interp_error.crash_kind_to_string

type crash = { kind : crash_kind; crash_loc : Loc.t; crash_fn : string; stack : string list }

type outcome = Finished of Value.t | Crashed of crash

type hooks = {
  on_branch : sid:int -> bool -> unit;
  on_scalar_assign :
    sid:int -> lhs:Rast.var_ref -> old_value:Value.t option -> read:(Rast.var_ref -> Value.t) -> unit;
  on_call_result : sid:int -> Value.t -> unit;
  on_cond_operand : eid:int -> bool -> unit;
}

let no_hooks =
  {
    on_branch = (fun ~sid:_ _ -> ());
    on_scalar_assign = (fun ~sid:_ ~lhs:_ ~old_value:_ ~read:_ -> ());
    on_call_result = (fun ~sid:_ _ -> ());
    on_cond_operand = (fun ~eid:_ _ -> ());
  }

type config = {
  args : string array;
  fuel : int;
  max_depth : int;
  nondet_seed : int;
  hooks : hooks;
}

let default_config =
  { args = [||]; fuel = 10_000_000; max_depth = 2000; nondet_seed = 0; hooks = no_hooks }

type result = {
  outcome : outcome;
  output : string;
  events : string list;
  bugs_triggered : int list;
  steps : int;
}

(* Internal control-flow exceptions. *)
exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

type state = {
  prog : rprog;
  cfg : config;
  globals : Value.t array;
  mutable frame : Value.t array;
  mutable depth : int;
  mutable stack : string list;  (* function names, innermost first *)
  mutable fuel_left : int;
  mutable steps : int;
  ctx : Builtins.ctx;  (* output, events, bugs, nondet, args *)
}

let crash = Interp_error.crash

let read_var st = function
  | RGlobal i -> st.globals.(i)
  | RLocal i -> st.frame.(i)

let write_var st ref_ v =
  match ref_ with
  | RGlobal i -> st.globals.(i) <- v
  | RLocal i -> st.frame.(i) <- v

let as_int loc = function
  | VInt n -> n
  | v -> crash (Aborted (Printf.sprintf "internal: expected int, got %s" (type_name v))) loc

let as_bool loc = function
  | VBool b -> b
  | v -> crash (Aborted (Printf.sprintf "internal: expected bool, got %s" (type_name v))) loc

let rec eval st (e : rexpr) : Value.t =
  let loc = e.rloc in
  match e.re with
  | RInt n -> VInt n
  | RBool b -> VBool b
  | RStr s -> VStr s
  | RNull -> VNull
  | RVar (ref_, _) -> read_var st ref_
  | RUnop (Ast.Neg, inner) -> VInt (-as_int loc (eval st inner))
  | RUnop (Ast.Not, inner) -> VBool (not (as_bool loc (eval st inner)))
  | RBinop (op, l, r) -> eval_binop st loc op l r
  | RCall (target, args) -> eval_call st loc target args
  | RIndex (arr, idx) -> (
      let varr = eval st arr in
      let vidx = as_int loc (eval st idx) in
      match varr with
      | VNull -> crash Null_deref loc
      | VArr elems ->
          let n = Array.length elems in
          if vidx < 0 || vidx >= n then crash (Out_of_bounds { index = vidx; length = n }) loc
          else elems.(vidx)
      | v -> crash (Aborted ("internal: indexing " ^ type_name v)) loc)
  | RField (obj, offset, _) -> (
      match eval st obj with
      | VNull -> crash Null_deref loc
      | VStruct (_, fields) -> fields.(offset)
      | v -> crash (Aborted ("internal: field access on " ^ type_name v)) loc)
  | RNewArray (elem_ty, len_e) ->
      let n = as_int loc (eval st len_e) in
      if n < 0 then crash (Negative_array_size n) loc
      else VArr (Array.make n (default_of_ty elem_ty))
  | RNewStruct sid ->
      let layout = st.prog.rp_structs.(sid) in
      let fields = Array.map (fun (_, ty) -> default_of_ty ty) layout.sl_fields in
      VStruct (sid, fields)

and eval_binop st loc op l r =
  match op with
  | Ast.And ->
      let vl = as_bool loc (eval st l) in
      st.cfg.hooks.on_cond_operand ~eid:l.reid vl;
      if vl then begin
        let vr = as_bool loc (eval st r) in
        st.cfg.hooks.on_cond_operand ~eid:r.reid vr;
        VBool vr
      end
      else VBool false
  | Ast.Or ->
      let vl = as_bool loc (eval st l) in
      st.cfg.hooks.on_cond_operand ~eid:l.reid vl;
      if vl then VBool true
      else begin
        let vr = as_bool loc (eval st r) in
        st.cfg.hooks.on_cond_operand ~eid:r.reid vr;
        VBool vr
      end
  | _ -> (
      let vl = eval st l in
      let vr = eval st r in
      match op with
      | Ast.Add -> (
          match (vl, vr) with
          | VInt a, VInt b -> VInt (a + b)
          | VStr a, VStr b -> VStr (a ^ b)
          | _ -> crash (Aborted "internal: bad '+' operands") loc)
      | Ast.Sub -> VInt (as_int loc vl - as_int loc vr)
      | Ast.Mul -> VInt (as_int loc vl * as_int loc vr)
      | Ast.Div ->
          let d = as_int loc vr in
          if d = 0 then crash Div_by_zero loc else VInt (as_int loc vl / d)
      | Ast.Mod ->
          let d = as_int loc vr in
          if d = 0 then crash Div_by_zero loc else VInt (as_int loc vl mod d)
      | Ast.Eq -> VBool (Value.equal vl vr)
      | Ast.Neq -> VBool (not (Value.equal vl vr))
      | Ast.Lt -> VBool (as_int loc vl < as_int loc vr)
      | Ast.Le -> VBool (as_int loc vl <= as_int loc vr)
      | Ast.Gt -> VBool (as_int loc vl > as_int loc vr)
      | Ast.Ge -> VBool (as_int loc vl >= as_int loc vr)
      | Ast.And | Ast.Or -> assert false)

and eval_call st loc target args =
  match target with
  | CBuiltin b -> eval_builtin st loc b args
  | CUser (fid, fname) ->
      let vargs = List.map (eval st) args in
      call_function st loc fid fname vargs

and call_function st loc fid fname vargs =
  ignore loc;
  if st.depth >= st.cfg.max_depth then crash Stack_overflow loc;
  let fn = st.prog.rp_funcs.(fid) in
  let saved_frame = st.frame in
  let frame = Array.make (max fn.rf_nslots 1) VUnit in
  List.iteri (fun i v -> frame.(i) <- v) vargs;
  st.frame <- frame;
  st.depth <- st.depth + 1;
  st.stack <- fname :: st.stack;
  (* On a crash we deliberately do NOT restore: the crash handler reads the
     call stack as it stood at the faulting statement. *)
  let result =
    try
      exec_block st fn.rf_body;
      default_of_ty fn.rf_ret
    with Return_exc v -> v
  in
  st.frame <- saved_frame;
  st.depth <- st.depth - 1;
  st.stack <- List.tl st.stack;
  result

and eval_builtin st loc b args =
  let vals = List.map (eval st) args in
  Builtins.eval st.ctx loc b vals

and exec_block st block = List.iter (exec_stmt st) block

and exec_stmt st (stmt : rstmt) =
  st.fuel_left <- st.fuel_left - 1;
  if st.fuel_left <= 0 then crash Out_of_fuel stmt.rsloc;
  st.steps <- st.steps + 1;
  let loc = stmt.rsloc in
  match stmt.rs with
  | RDecl (ty, slot, _, init) ->
      let v = match init with Some e -> eval st e | None -> default_of_ty ty in
      st.frame.(slot) <- v;
      if Ast.ty_equal ty Ast.TInt && init <> None then
        st.cfg.hooks.on_scalar_assign ~sid:stmt.rsid ~lhs:(RLocal slot) ~old_value:None
          ~read:(read_var st)
  | RAssign (lty, lv, rhs) -> (
      match lv with
      | RLVar (ref_, _) ->
          let old = if Ast.ty_equal lty Ast.TInt then Some (read_var st ref_) else None in
          let v = eval st rhs in
          write_var st ref_ v;
          if Ast.ty_equal lty Ast.TInt then
            st.cfg.hooks.on_scalar_assign ~sid:stmt.rsid ~lhs:ref_ ~old_value:old
              ~read:(read_var st)
      | RLIndex (arr, idx) -> (
          let varr = eval st arr in
          let vidx = as_int loc (eval st idx) in
          let v = eval st rhs in
          match varr with
          | VNull -> crash Null_deref loc
          | VArr elems ->
              let n = Array.length elems in
              if vidx < 0 || vidx >= n then
                crash (Out_of_bounds { index = vidx; length = n }) loc
              else elems.(vidx) <- v
          | v2 -> crash (Aborted ("internal: index-assign to " ^ type_name v2)) loc)
      | RLField (obj, offset, _) -> (
          let vobj = eval st obj in
          let v = eval st rhs in
          match vobj with
          | VNull -> crash Null_deref loc
          | VStruct (_, fields) -> fields.(offset) <- v
          | v2 -> crash (Aborted ("internal: field-assign to " ^ type_name v2)) loc))
  | RExpr e ->
      let v = eval st e in
      (match (e.re, e.rty) with
      | RCall _, Ast.TInt -> st.cfg.hooks.on_call_result ~sid:stmt.rsid v
      | _ -> ())
  | RIf (cond, then_b, else_b) ->
      let c = as_bool cond.rloc (eval st cond) in
      st.cfg.hooks.on_branch ~sid:stmt.rsid c;
      if c then exec_block st then_b else exec_block st else_b
  | RWhile (cond, body) ->
      let rec loop () =
        st.fuel_left <- st.fuel_left - 1;
        if st.fuel_left <= 0 then crash Out_of_fuel loc;
        let c = as_bool cond.rloc (eval st cond) in
        st.cfg.hooks.on_branch ~sid:stmt.rsid c;
        if c then begin
          (try exec_block st body with Continue_exc -> ());
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | RFor (init, cond, step, body) ->
      exec_stmt st init;
      let rec loop () =
        st.fuel_left <- st.fuel_left - 1;
        if st.fuel_left <= 0 then crash Out_of_fuel loc;
        let c = as_bool cond.rloc (eval st cond) in
        st.cfg.hooks.on_branch ~sid:stmt.rsid c;
        if c then begin
          (try exec_block st body with Continue_exc -> ());
          exec_stmt st step;
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | RReturn None -> raise (Return_exc VUnit)
  | RReturn (Some e) -> raise (Return_exc (eval st e))
  | RBreak -> raise Break_exc
  | RContinue -> raise Continue_exc
  | RBlockS body -> exec_block st body

let run prog cfg =
  let globals = Array.map (fun (_, ty, _) -> default_of_ty ty) prog.rp_globals in
  let ctx =
    {
      Builtins.out = Buffer.create 256;
      events_rev = [];
      bugs = Hashtbl.create 8;
      rng = Sbi_util.Prng.create cfg.nondet_seed;
      args = cfg.args;
      structs = prog.rp_structs;
      crash = Interp_error.crash;
    }
  in
  let st =
    { prog; cfg; globals; frame = [||]; depth = 0; stack = []; fuel_left = cfg.fuel;
      steps = 0; ctx }
  in
  let outcome =
    try
      (* Global initializers, in declaration order. *)
      Array.iteri
        (fun i (_, _, init) ->
          match init with Some e -> st.globals.(i) <- eval st e | None -> ())
        prog.rp_globals;
      let main = prog.rp_funcs.(prog.rp_main) in
      let v =
        try call_function st main.rf_loc prog.rp_main main.rf_name []
        with Return_exc v -> v
      in
      Finished v
    with Interp_error.Crash_exc (kind, loc) ->
      let crash_fn = match st.stack with fn :: _ -> fn | [] -> "<toplevel>" in
      Crashed { kind; crash_loc = loc; crash_fn; stack = st.stack }
  in
  let bugs =
    Hashtbl.fold (fun k () acc -> k :: acc) st.ctx.Builtins.bugs [] |> List.sort compare
  in
  {
    outcome;
    output = Buffer.contents st.ctx.Builtins.out;
    events = List.rev st.ctx.Builtins.events_rev;
    bugs_triggered = bugs;
    steps = st.steps;
  }

let run_string ?(config = default_config) src = run (Check.check_string src) config
