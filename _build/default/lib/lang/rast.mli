(** Resolved (checked) MiniC abstract syntax.

    Produced by {!Check.check_program} from the raw {!Ast.program}: variable
    references are resolved to global indices or function-frame slots,
    struct field accesses to field offsets, calls to function ids or
    builtins, and every expression is annotated with its static type.
    Statement ids from the raw AST are preserved so instrumentation plans
    (keyed by statement id) can be built against either representation. *)

type var_ref = RGlobal of int | RLocal of int

val var_ref_equal : var_ref -> var_ref -> bool
val pp_var_ref : Format.formatter -> var_ref -> unit

(** Built-in procedures.  See {!Check.builtin_signature} for typing. *)
type builtin =
  | BPrint      (** [print(x)]: write any value to the run's output *)
  | BPrintln    (** [println(x)]: same, plus newline *)
  | BLen        (** [len(a)]: array length *)
  | BStrlen     (** [strlen(s)] *)
  | BSubstr     (** [substr(s, start, len)]; out of range crashes *)
  | BStrcmp     (** [strcmp(a, b)]: -1, 0, or 1 *)
  | BOrd        (** [ord(s, i)]: byte value at index; bounds-checked *)
  | BChr        (** [chr(n)]: one-byte string; n outside 0..255 crashes *)
  | BToStr      (** [to_str(n)]: decimal rendering *)
  | BParseInt   (** [parse_int(s)]: 0 when malformed *)
  | BIsInt      (** [is_int(s)]: does [s] parse as an integer? *)
  | BHashStr    (** [hash_str(s)]: deterministic non-negative FNV-1a hash *)
  | BAbort      (** [abort(msg)]: crash the run *)
  | BAssert     (** [assert(cond)]: crash when false *)
  | BBugMark    (** [__bug(n)]: record ground-truth occurrence of bug n *)
  | BEvent      (** [__event(name)]: record a named program event *)
  | BArgc       (** [argc()]: number of input arguments *)
  | BArg        (** [arg(i)]: i-th input argument; bounds-checked *)
  | BArgInt     (** [arg_int(i)] = parse_int(arg(i)) *)
  | BNondet     (** [nondet(n)]: uniform in [0,n) from the run's PRNG *)
  | BMin
  | BMax
  | BAbs

val builtin_name : builtin -> string
val builtin_of_name : string -> builtin option
val all_builtins : builtin list

type rexpr = {
  re : rexpr_kind;
  rty : Ast.ty;
  rloc : Loc.t;
  reid : int;  (** unique expression id, used by expression-level instrumentation *)
}

and rexpr_kind =
  | RInt of int
  | RBool of bool
  | RStr of string
  | RNull
  | RVar of var_ref * string  (** resolved ref, original name (for messages) *)
  | RUnop of Ast.unop * rexpr
  | RBinop of Ast.binop * rexpr * rexpr
  | RCall of call_target * rexpr list
  | RIndex of rexpr * rexpr
  | RField of rexpr * int * string  (** object, field offset, field name *)
  | RNewArray of Ast.ty * rexpr
  | RNewStruct of int  (** struct id *)

and call_target = CUser of int * string | CBuiltin of builtin

type rlvalue =
  | RLVar of var_ref * string
  | RLIndex of rexpr * rexpr
  | RLField of rexpr * int * string

type rstmt = { rs : rstmt_kind; rsid : int; rsloc : Loc.t }

and rstmt_kind =
  | RDecl of Ast.ty * int * string * rexpr option  (** type, slot, name, init *)
  | RAssign of Ast.ty * rlvalue * rexpr  (** static type of the location *)
  | RExpr of rexpr
  | RIf of rexpr * rblock * rblock
  | RWhile of rexpr * rblock
  | RFor of rstmt * rexpr * rstmt * rblock
  | RReturn of rexpr option
  | RBreak
  | RContinue
  | RBlockS of rblock

and rblock = rstmt list

type struct_layout = { sl_id : int; sl_name : string; sl_fields : (string * Ast.ty) array }

type rfunc = {
  rf_id : int;
  rf_name : string;
  rf_params : (string * Ast.ty) list;  (** occupy slots [0 .. arity-1] *)
  rf_ret : Ast.ty;
  rf_nslots : int;
  rf_body : rblock;
  rf_loc : Loc.t;
}

type rprog = {
  rp_structs : struct_layout array;
  rp_globals : (string * Ast.ty * rexpr option) array;
  rp_funcs : rfunc array;
  rp_main : int;  (** index into [rp_funcs] *)
  rp_max_sid : int;
  rp_max_eid : int;  (** one more than the largest expression id *)
  rp_file : string;
}

val find_func : rprog -> string -> rfunc option
val iter_rstmts : rprog -> (rfunc -> rstmt -> unit) -> unit
(** Visit every statement of every function (pre-order), with the enclosing
    function. *)
