type var_ref = RGlobal of int | RLocal of int

let var_ref_equal a b =
  match (a, b) with
  | RGlobal x, RGlobal y | RLocal x, RLocal y -> x = y
  | _ -> false

let pp_var_ref fmt = function
  | RGlobal i -> Format.fprintf fmt "global:%d" i
  | RLocal i -> Format.fprintf fmt "local:%d" i

type builtin =
  | BPrint
  | BPrintln
  | BLen
  | BStrlen
  | BSubstr
  | BStrcmp
  | BOrd
  | BChr
  | BToStr
  | BParseInt
  | BIsInt
  | BHashStr
  | BAbort
  | BAssert
  | BBugMark
  | BEvent
  | BArgc
  | BArg
  | BArgInt
  | BNondet
  | BMin
  | BMax
  | BAbs

let builtin_name = function
  | BPrint -> "print"
  | BPrintln -> "println"
  | BLen -> "len"
  | BStrlen -> "strlen"
  | BSubstr -> "substr"
  | BStrcmp -> "strcmp"
  | BOrd -> "ord"
  | BChr -> "chr"
  | BToStr -> "to_str"
  | BParseInt -> "parse_int"
  | BIsInt -> "is_int"
  | BHashStr -> "hash_str"
  | BAbort -> "abort"
  | BAssert -> "assert"
  | BBugMark -> "__bug"
  | BEvent -> "__event"
  | BArgc -> "argc"
  | BArg -> "arg"
  | BArgInt -> "arg_int"
  | BNondet -> "nondet"
  | BMin -> "min"
  | BMax -> "max"
  | BAbs -> "abs"

let all_builtins =
  [
    BPrint; BPrintln; BLen; BStrlen; BSubstr; BStrcmp; BOrd; BChr; BToStr;
    BParseInt; BIsInt; BHashStr; BAbort; BAssert; BBugMark; BEvent; BArgc;
    BArg; BArgInt; BNondet; BMin; BMax; BAbs;
  ]

let builtin_of_name =
  let table = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace table (builtin_name b) b) all_builtins;
  fun name -> Hashtbl.find_opt table name

type rexpr = {
  re : rexpr_kind;
  rty : Ast.ty;
  rloc : Loc.t;
  reid : int;  (** unique expression id, used by expression-level instrumentation *)
}

and rexpr_kind =
  | RInt of int
  | RBool of bool
  | RStr of string
  | RNull
  | RVar of var_ref * string
  | RUnop of Ast.unop * rexpr
  | RBinop of Ast.binop * rexpr * rexpr
  | RCall of call_target * rexpr list
  | RIndex of rexpr * rexpr
  | RField of rexpr * int * string
  | RNewArray of Ast.ty * rexpr
  | RNewStruct of int

and call_target = CUser of int * string | CBuiltin of builtin

type rlvalue =
  | RLVar of var_ref * string
  | RLIndex of rexpr * rexpr
  | RLField of rexpr * int * string

type rstmt = { rs : rstmt_kind; rsid : int; rsloc : Loc.t }

and rstmt_kind =
  | RDecl of Ast.ty * int * string * rexpr option
  | RAssign of Ast.ty * rlvalue * rexpr
  | RExpr of rexpr
  | RIf of rexpr * rblock * rblock
  | RWhile of rexpr * rblock
  | RFor of rstmt * rexpr * rstmt * rblock
  | RReturn of rexpr option
  | RBreak
  | RContinue
  | RBlockS of rblock

and rblock = rstmt list

type struct_layout = { sl_id : int; sl_name : string; sl_fields : (string * Ast.ty) array }

type rfunc = {
  rf_id : int;
  rf_name : string;
  rf_params : (string * Ast.ty) list;
  rf_ret : Ast.ty;
  rf_nslots : int;
  rf_body : rblock;
  rf_loc : Loc.t;
}

type rprog = {
  rp_structs : struct_layout array;
  rp_globals : (string * Ast.ty * rexpr option) array;
  rp_funcs : rfunc array;
  rp_main : int;
  rp_max_sid : int;
  rp_max_eid : int;
  rp_file : string;
}

let find_func prog name =
  Array.fold_left
    (fun acc f -> match acc with Some _ -> acc | None -> if f.rf_name = name then Some f else None)
    None prog.rp_funcs

let rec iter_rblock f fn block = List.iter (iter_rstmt f fn) block

and iter_rstmt f fn st =
  f fn st;
  match st.rs with
  | RDecl _ | RAssign _ | RExpr _ | RReturn _ | RBreak | RContinue -> ()
  | RIf (_, b1, b2) ->
      iter_rblock f fn b1;
      iter_rblock f fn b2
  | RWhile (_, b) -> iter_rblock f fn b
  | RFor (init, _, step, b) ->
      iter_rstmt f fn init;
      iter_rstmt f fn step;
      iter_rblock f fn b
  | RBlockS b -> iter_rblock f fn b

let iter_rstmts prog f = Array.iter (fun fn -> iter_rblock f fn fn.rf_body) prog.rp_funcs
