(** Source locations for MiniC diagnostics and predicate naming. *)

type t = { file : string; line : int; col : int }

val dummy : t
val make : file:string -> line:int -> col:int -> t
val to_string : t -> string
(** ["file:line:col"]. *)

val pp : Format.formatter -> t -> unit
