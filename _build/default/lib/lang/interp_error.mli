(** Runtime failure taxonomy shared by the MiniC execution engines (the
    tree-walking {!Interp} and the bytecode {!Vm}). *)

type crash_kind =
  | Null_deref
  | Out_of_bounds of { index : int; length : int }
  | Div_by_zero
  | Assert_failed
  | Aborted of string
  | Negative_array_size of int
  | Stack_overflow
  | Out_of_fuel
  | Substr_range
  | Chr_range of int

val crash_kind_to_string : crash_kind -> string

exception Crash_exc of crash_kind * Loc.t
(** Internal control-flow exception raised by both engines at a runtime
    failure; callers of [Interp.run]/[Vm.run] never see it. *)

val crash : crash_kind -> Loc.t -> 'a
