lib/logreg/logreg.mli: Sbi_runtime
