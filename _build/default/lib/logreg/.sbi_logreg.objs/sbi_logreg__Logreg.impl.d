lib/logreg/logreg.ml: Array Dataset List Report Sbi_runtime
