(** ℓ₁-regularized (lasso) logistic regression over feedback reports — the
    baseline the paper compares against (§4.4, Table 9; [10, 16]).

    Each run is a sparse binary feature vector (R(P) bits); the label is
    the outcome.  Training is proximal gradient descent (ISTA): a
    full-batch logistic gradient step followed by soft-thresholding, which
    drives most weights to exactly zero.  The bias is unpenalized.

    The paper's point, which the reproduction recreates: the top-weighted
    predicates are sub-bug and super-bug predictors, because the penalty
    rewards covering many failing runs regardless of predictor
    orthogonality. *)

type config = {
  lambda : float;  (** ℓ₁ penalty strength *)
  learning_rate : float;
  epochs : int;
  min_support : int;
      (** ignore predicates true in fewer than this many runs (never-true
          predicates are always excluded) *)
}

val default_config : config
(** lambda 8e-3, learning rate 0.5, 200 epochs, min support 2. *)

type model = {
  weights : float array;  (** indexed by predicate id; zeros are pruned-out *)
  bias : float;
  trained_on : int;  (** number of runs *)
  config : config;
}

val train : ?config:config -> Sbi_runtime.Dataset.t -> model

val predict : model -> Sbi_runtime.Report.t -> float
(** Probability that the run fails. *)

val accuracy : model -> Sbi_runtime.Dataset.t -> float
(** Fraction of runs classified correctly at threshold 0.5. *)

val nonzero : model -> int
(** Number of non-zero weights. *)

val top_weights : model -> n:int -> (int * float) list
(** The [n] predicates with the largest positive weights (failure
    predictors), descending. *)
