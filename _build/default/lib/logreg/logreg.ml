open Sbi_runtime

type config = {
  lambda : float;
  learning_rate : float;
  epochs : int;
  min_support : int;
}

let default_config = { lambda = 8e-3; learning_rate = 0.5; epochs = 200; min_support = 2 }

type model = {
  weights : float array;
  bias : float;
  trained_on : int;
  config : config;
}

let sigmoid z = if z >= 0. then 1. /. (1. +. exp (-.z)) else let e = exp z in e /. (1. +. e)

let soft_threshold x t = if x > t then x -. t else if x < -.t then x +. t else 0.

let train ?(config = default_config) (ds : Dataset.t) =
  let npreds = ds.Dataset.npreds in
  let runs = ds.Dataset.runs in
  let n = Array.length runs in
  if n = 0 then invalid_arg "Logreg.train: empty dataset";
  (* Support filter: predicates true in >= min_support runs. *)
  let support = Array.make npreds 0 in
  Array.iter
    (fun (r : Report.t) ->
      Array.iter (fun p -> support.(p) <- support.(p) + 1) r.Report.true_preds)
    runs;
  let keep = Array.map (fun c -> c >= config.min_support) support in
  let labels =
    Array.map (fun (r : Report.t) -> if Report.outcome_is_failure r.Report.outcome then 1. else 0.) runs
  in
  let w = Array.make npreds 0. in
  let bias = ref 0. in
  let grad = Array.make npreds 0. in
  let fn = float_of_int n in
  let lr = config.learning_rate in
  let thresh = lr *. config.lambda in
  for _epoch = 1 to config.epochs do
    Array.fill grad 0 npreds 0.;
    let grad_b = ref 0. in
    for i = 0 to n - 1 do
      let r = runs.(i) in
      let z = ref !bias in
      Array.iter (fun p -> if keep.(p) then z := !z +. w.(p)) r.Report.true_preds;
      let resid = sigmoid !z -. labels.(i) in
      grad_b := !grad_b +. resid;
      Array.iter (fun p -> if keep.(p) then grad.(p) <- grad.(p) +. resid) r.Report.true_preds
    done;
    bias := !bias -. (lr *. !grad_b /. fn);
    for p = 0 to npreds - 1 do
      if keep.(p) then w.(p) <- soft_threshold (w.(p) -. (lr *. grad.(p) /. fn)) thresh
    done
  done;
  { weights = w; bias = !bias; trained_on = n; config }

let predict model (r : Report.t) =
  let z = ref model.bias in
  Array.iter
    (fun p -> if p < Array.length model.weights then z := !z +. model.weights.(p))
    r.Report.true_preds;
  sigmoid !z

let accuracy model (ds : Dataset.t) =
  let n = Dataset.nruns ds in
  if n = 0 then 0.
  else begin
    let correct = ref 0 in
    Array.iter
      (fun (r : Report.t) ->
        let p = predict model r in
        let predicted_fail = p >= 0.5 in
        if predicted_fail = Report.outcome_is_failure r.Report.outcome then incr correct)
      ds.Dataset.runs;
    float_of_int !correct /. float_of_int n
  end

let nonzero model = Array.fold_left (fun acc x -> if x <> 0. then acc + 1 else acc) 0 model.weights

let top_weights model ~n =
  let indexed = ref [] in
  Array.iteri (fun p x -> if x > 0. then indexed := (p, x) :: !indexed) model.weights;
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare (b : float) a) !indexed
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take n sorted
