(** Text rendering of the paper's "bug thermometer" (§3.3).

    Each predicate's thermometer is log-scaled in the number of runs where
    the predicate was observed true (F + S) and divided into bands:

    - black  [█]: Context(P),
    - dark   [▓]: lower bound of Increase(P) at 95% confidence
      (red in the paper),
    - light  [░]: the confidence-interval width (pink in the paper),
    - white  [·]: the remainder — the share of successful runs.

    A long, mostly-dark thermometer is a sensitive and specific predictor;
    a long white band signals non-determinism / super-bug behaviour; a
    short all-dark one is a sub-bug predictor. *)

val render : ?max_width:int -> max_fs:int -> Scores.t -> string
(** [render ~max_fs sc] draws [sc]'s thermometer scaled so that a predicate
    observed true in [max_fs] runs fills [max_width] (default 24) cells.
    [max_fs] is typically the largest F+S in the table being printed. *)

val render_ascii : ?max_width:int -> max_fs:int -> Scores.t -> string
(** Pure-ASCII variant ([#], [=], [-], [.]) for environments without
    Unicode. *)

val legend : string
