(** End-to-end cause-isolation pipeline: counts → pruning → iterative
    elimination, with the summary numbers reported in the paper's
    Table 2. *)

type t = {
  dataset : Sbi_runtime.Dataset.t;
  counts : Counts.t;
  retained : int list;  (** predicates surviving Increase pruning *)
  elimination : Eliminate.result;
}

val analyze :
  ?discard:Eliminate.discard ->
  ?confidence:float ->
  ?max_selections:int ->
  Sbi_runtime.Dataset.t ->
  t

type summary = {
  runs : int;
  successful : int;
  failing : int;
  sites : int;
  initial_preds : int;
  retained_preds : int;  (** Increase > 0 at 95% confidence *)
  selected_preds : int;  (** after elimination *)
}

val summary : t -> summary

val selected_scores : t -> Eliminate.selection list
(** Elimination output in rank order (same as
    [t.elimination.selections]). *)

val affinity_for :
  t -> pred:int -> Affinity.entry list
(** Affinity list of a selected predicate against the other retained
    predicates, on the full dataset. *)
