(** Per-predicate scores (§3.1–§3.3).

    - [Failure(P)  = F(P) / (F(P) + S(P))] — probability of failure given P
      observed true.
    - [Context(P)  = F(P obs) / (F(P obs) + S(P obs))] — probability of
      failure given P's site merely sampled.
    - [Increase(P) = Failure(P) - Context(P)] — the specificity signal, with
      a 95% normal-approximation confidence interval.
    - [sensitivity = log F(P) / log NumF] — the paper's logarithmic
      transformation of raw failure counts.
    - [Importance(P)] — harmonic mean of Increase and sensitivity, with a
      delta-method confidence interval.

    The §3.2 statistical view is available as [z]: the two-proportion
    likelihood-ratio test statistic for H1 : p_f(P) > p_s(P). *)

type t = {
  pred : int;
  f : int;
  s : int;
  f_obs : int;
  s_obs : int;
  failure : float;
  context : float;
  increase : float;
  increase_ci : Sbi_util.Stats.interval;
  z : float;
  sensitivity : float;
  importance : float;
  importance_ci : Sbi_util.Stats.interval;
}

val score : ?confidence:float -> Counts.t -> pred:int -> t
(** Scores for one predicate.  Quantities with empty denominators are 0
    (and the importance of such predicates is 0, per the paper's
    convention for undefined harmonic means). *)

val score_all : ?confidence:float -> Counts.t -> t array
(** Scores for every predicate, indexed by predicate id. *)

val compare_importance_desc : t -> t -> int
(** Descending importance; ties broken by descending F(P), then id. *)
