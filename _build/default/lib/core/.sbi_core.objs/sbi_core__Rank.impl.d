lib/core/rank.ml: Array Sbi_util Scores
