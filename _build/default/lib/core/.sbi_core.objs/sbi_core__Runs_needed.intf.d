lib/core/runs_needed.mli: Sbi_runtime
