lib/core/eliminate.mli: Sbi_runtime Scores
