lib/core/thermometer.ml: Buffer Float Sbi_util Scores
