lib/core/analysis.mli: Affinity Counts Eliminate Sbi_runtime
