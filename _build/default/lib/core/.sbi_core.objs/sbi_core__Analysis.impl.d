lib/core/analysis.ml: Affinity Counts Dataset Eliminate List Prune Sbi_runtime
