lib/core/scores.ml: Array Counts Sbi_util Stats
