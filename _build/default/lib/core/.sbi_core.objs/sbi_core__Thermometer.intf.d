lib/core/thermometer.mli: Scores
