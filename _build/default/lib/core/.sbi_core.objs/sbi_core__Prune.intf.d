lib/core/prune.mli: Counts Scores
