lib/core/counts.ml: Array Dataset Report Sbi_runtime
