lib/core/rank.mli: Scores
