lib/core/counts.mli: Sbi_runtime
