lib/core/affinity.ml: Counts Dataset List Report Sbi_runtime Scores
