lib/core/eliminate.ml: Array Counts Dataset Hashtbl List Prune Report Sbi_runtime Scores
