lib/core/prune.ml: Array Counts List Sbi_util Scores Stats
