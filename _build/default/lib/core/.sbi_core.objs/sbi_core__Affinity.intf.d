lib/core/affinity.mli: Sbi_runtime
