lib/core/scores.mli: Counts Sbi_util
