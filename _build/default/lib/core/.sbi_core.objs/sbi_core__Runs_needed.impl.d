lib/core/runs_needed.ml: Array Counts Dataset List Sbi_runtime Scores
