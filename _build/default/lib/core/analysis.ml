open Sbi_runtime

type t = {
  dataset : Dataset.t;
  counts : Counts.t;
  retained : int list;
  elimination : Eliminate.result;
}

let analyze ?discard ?(confidence = 0.95) ?max_selections ds =
  let counts = Counts.compute ds in
  let retained = Prune.retained ~confidence counts in
  let elimination =
    Eliminate.run ?discard ~confidence ?max_selections ~candidates:retained ds
  in
  { dataset = ds; counts; retained; elimination }

type summary = {
  runs : int;
  successful : int;
  failing : int;
  sites : int;
  initial_preds : int;
  retained_preds : int;
  selected_preds : int;
}

let summary t =
  {
    runs = Dataset.nruns t.dataset;
    successful = Dataset.num_successes t.dataset;
    failing = Dataset.num_failures t.dataset;
    sites = t.dataset.Dataset.nsites;
    initial_preds = t.dataset.Dataset.npreds;
    retained_preds = List.length t.retained;
    selected_preds = List.length t.elimination.Eliminate.selections;
  }

let selected_scores t = t.elimination.Eliminate.selections

let affinity_for t ~pred = Affinity.list t.dataset ~selected:pred ~others:t.retained
