(** The Increase(P) > 0 pruning step (§3.1).

    A predicate survives when the lower bound of the 95% confidence
    interval of its Increase score lies strictly above zero (which both
    requires positive Increase and suppresses high-increase/low-confidence
    predicates with few observations), and it was true in at least one
    failing run.  This typically removes ~99% of the instrumented
    predicates: program invariants, unreached predicates, and predicates
    merely control-dependent on true causes all score zero. *)

val keep : ?confidence:float -> Counts.t -> pred:int -> bool

val retained : ?confidence:float -> Counts.t -> int list
(** Predicate ids surviving the test, ascending. *)

val retained_scores : ?confidence:float -> Counts.t -> Scores.t array
(** Scores of the surviving predicates, in ascending predicate order. *)
