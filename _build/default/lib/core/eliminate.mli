(** Iterative redundancy elimination (§3.4) — the paper's simulation of the
    "find the most important bug, fix it, repeat" debugging loop:

    + rank candidate predicates by Importance on the current run set,
    + select the top-ranked predicate P and discard the runs it covers,
    + repeat until no runs, no candidates, or nothing predictive remains.

    Discarding follows one of the three §5 proposals:
    - {!Discard_all_true} (1, the paper's default): drop every run with
      R(P) = 1;
    - {!Discard_failing_true} (2): drop only failing runs with R(P) = 1;
    - {!Relabel_failing} (3): relabel failing runs with R(P) = 1 as
      successes ("the best approximation to a program without the bug").

    By Lemma 3.1 the selected list covers every bug whose failures are
    covered by the candidate predicates. *)

type discard =
  | Discard_all_true
  | Discard_failing_true
  | Relabel_failing

val discard_to_string : discard -> string

type selection = {
  rank : int;  (** 1-based position in the output list *)
  pred : int;
  initial : Scores.t;  (** scores over the full input dataset *)
  effective : Scores.t;  (** scores at the moment of selection *)
  runs_before : int;  (** dataset size when this predicate was selected *)
  failures_before : int;
  runs_discarded : int;  (** runs removed (or relabelled) by this step *)
}

type result = {
  selections : selection list;  (** in selection order *)
  runs_remaining : int;
  failures_remaining : int;
  candidates_remaining : int;
}

val run :
  ?discard:discard ->
  ?confidence:float ->
  ?max_selections:int ->
  ?candidates:int list ->
  Sbi_runtime.Dataset.t ->
  result
(** [run ds] iterates selection over a candidate set and discards covered
    runs after each pick.  Unless [candidates] is given, the default
    candidate set follows §5: under {!Discard_all_true} it is the
    Increase-CI pruning of the full dataset (safe, since at most one of P
    and ¬P can ever become predictive); under the other proposals it is
    every predicate true in at least one failing run, because predicates
    temporarily overshadowed by anti-correlated predictors may become
    positive after a selection.  At each step, only predicates whose
    Increase is confidently positive {e on the current run set} are ranked.
    Iteration stops when the failing-run set is empty, no candidate passes
    the test, or [max_selections] (default 40) is reached. *)

val selected_preds : result -> int list
