open Sbi_runtime

type discard =
  | Discard_all_true
  | Discard_failing_true
  | Relabel_failing

let discard_to_string = function
  | Discard_all_true -> "discard all runs where R(P)=1"
  | Discard_failing_true -> "discard failing runs where R(P)=1"
  | Relabel_failing -> "relabel failing runs where R(P)=1 as successful"

type selection = {
  rank : int;
  pred : int;
  initial : Scores.t;
  effective : Scores.t;
  runs_before : int;
  failures_before : int;
  runs_discarded : int;
}

type result = {
  selections : selection list;
  runs_remaining : int;
  failures_remaining : int;
  candidates_remaining : int;
}

let apply_discard discard ds pred =
  let covered (r : Report.t) = Report.is_true r pred in
  match discard with
  | Discard_all_true -> Dataset.filter_runs ds (fun r -> not (covered r))
  | Discard_failing_true ->
      Dataset.filter_runs ds (fun r ->
          not (covered r && Report.outcome_is_failure r.Report.outcome))
  | Relabel_failing ->
      {
        ds with
        Dataset.runs =
          Array.map
            (fun (r : Report.t) ->
              if covered r && Report.outcome_is_failure r.Report.outcome then
                { r with Report.outcome = Report.Success }
              else r)
            ds.Dataset.runs;
      }

let run ?(discard = Discard_all_true) ?(confidence = 0.95) ?(max_selections = 40)
    ?candidates (ds : Dataset.t) =
  let initial_counts = Counts.compute ds in
  let candidates =
    match candidates with
    | Some c -> c
    | None -> (
        match discard with
        | Discard_all_true ->
            (* §5: under proposal (1), at most one of P and ¬P can ever have
               positive predictive power, so early pruning is safe. *)
            Prune.retained ~confidence initial_counts
        | Discard_failing_true | Relabel_failing ->
            (* §5: under proposals (2) and (3), a predicate with a negative
               Increase may be a strong predictor temporarily overshadowed by
               an anti-correlated predictor of a different bug, so keep every
               predicate that was ever true in a failing run. *)
            let acc = ref [] in
            for pred = initial_counts.Counts.npreds - 1 downto 0 do
              if initial_counts.Counts.f.(pred) > 0 then acc := pred :: !acc
            done;
            !acc)
  in
  let initial_scores = Hashtbl.create 64 in
  List.iter
    (fun pred ->
      Hashtbl.replace initial_scores pred (Scores.score ~confidence initial_counts ~pred))
    candidates;
  let rec loop acc current candidates rank =
    let nfail = Dataset.num_failures current in
    if nfail = 0 || candidates = [] || rank > max_selections then
      (List.rev acc, current, candidates)
    else begin
      let counts = Counts.compute current in
      (* Rank by Importance among predicates whose Increase is confidently
         positive on the *current* run set — under proposals (2)/(3) this is
         where a previously-overshadowed predicate can (re)enter. *)
      let best =
        List.fold_left
          (fun best pred ->
            if not (Prune.keep ~confidence counts ~pred) then best
            else begin
              let sc = Scores.score ~confidence counts ~pred in
              match best with
              | None -> Some sc
              | Some b -> if Scores.compare_importance_desc sc b < 0 then Some sc else Some b
            end)
          None candidates
      in
      match best with
      | None -> (List.rev acc, current, candidates)
      | Some sc when sc.Scores.importance <= 0. -> (List.rev acc, current, candidates)
      | Some sc ->
          let pred = sc.Scores.pred in
          let next = apply_discard discard current pred in
          let selection =
            {
              rank;
              pred;
              initial = Hashtbl.find initial_scores pred;
              effective = sc;
              runs_before = Dataset.nruns current;
              failures_before = nfail;
              runs_discarded = Dataset.nruns current - Dataset.nruns next;
            }
          in
          let candidates = List.filter (fun p -> p <> pred) candidates in
          loop (selection :: acc) next candidates (rank + 1)
    end
  in
  let selections, final, candidates_left = loop [] ds candidates 1 in
  {
    selections;
    runs_remaining = Dataset.nruns final;
    failures_remaining = Dataset.num_failures final;
    candidates_remaining = List.length candidates_left;
  }

let selected_preds result = List.map (fun s -> s.pred) result.selections
