(** Affinity lists (§3.4, end).

    "How strongly does P imply Pi?" is measured by how much Pi's Importance
    drops when the runs covered by P (R(P) = 1) are removed.  Each selected
    predicate links to a list of the other predicates ranked by that drop;
    a high-affinity pair usually predicts the same bug (the paper uses this
    to recognize CCRYPT's and BC's first predictors as sub-bug predictors
    of their second). *)

type entry = {
  pred : int;
  importance_before : float;
  importance_after : float;  (** after removing P's covered runs *)
  drop : float;
}

val list :
  ?confidence:float ->
  Sbi_runtime.Dataset.t ->
  selected:int ->
  others:int list ->
  entry list
(** Ranked by descending drop.  [others] typically comes from the
    elimination result or the pruned candidate set. *)

val top_affine : entry list -> int option
(** The predicate most affected, if any had a positive drop. *)
