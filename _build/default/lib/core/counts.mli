(** Aggregate predicate counts over a dataset (§3.1 notation).

    For each predicate P:
    - [f]:     F(P)          — failing runs where P was observed to be true
    - [s]:     S(P)          — successful runs where P was observed to be true
    - [f_obs]: F(P observed) — failing runs where P's site was sampled
    - [s_obs]: S(P observed) — successful runs where P's site was sampled

    Since all predicates of a site are observed together, observation
    counts are computed per site and shared by the site's predicates. *)

type t = {
  npreds : int;
  f : int array;
  s : int array;
  f_obs : int array;
  s_obs : int array;
  num_f : int;  (** total failing runs in the dataset *)
  num_s : int;  (** total successful runs *)
}

val compute : Sbi_runtime.Dataset.t -> t

val observed_anywhere : t -> int -> bool
(** Was the predicate's site sampled in at least one run? *)

val true_somewhere : t -> int -> bool
