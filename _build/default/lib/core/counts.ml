open Sbi_runtime

type t = {
  npreds : int;
  f : int array;
  s : int array;
  f_obs : int array;
  s_obs : int array;
  num_f : int;
  num_s : int;
}

let compute (ds : Dataset.t) =
  let npreds = ds.Dataset.npreds in
  let nsites = ds.Dataset.nsites in
  let f = Array.make npreds 0 in
  let s = Array.make npreds 0 in
  let f_obs_site = Array.make (max nsites 1) 0 in
  let s_obs_site = Array.make (max nsites 1) 0 in
  let num_f = ref 0 in
  let num_s = ref 0 in
  Array.iter
    (fun (r : Report.t) ->
      let failing = Report.outcome_is_failure r.Report.outcome in
      if failing then incr num_f else incr num_s;
      let site_counter = if failing then f_obs_site else s_obs_site in
      Array.iter
        (fun site -> site_counter.(site) <- site_counter.(site) + 1)
        r.Report.observed_sites;
      let pred_counter = if failing then f else s in
      Array.iter
        (fun pred -> pred_counter.(pred) <- pred_counter.(pred) + 1)
        r.Report.true_preds)
    ds.Dataset.runs;
  let f_obs = Array.init npreds (fun p -> f_obs_site.(ds.Dataset.pred_site.(p))) in
  let s_obs = Array.init npreds (fun p -> s_obs_site.(ds.Dataset.pred_site.(p))) in
  { npreds; f; s; f_obs; s_obs; num_f = !num_f; num_s = !num_s }

let observed_anywhere t p = t.f_obs.(p) + t.s_obs.(p) > 0
let true_somewhere t p = t.f.(p) + t.s.(p) > 0
