(** Ranking strategies compared in Table 1.

    - {!By_failure_count}: descending F(P) — favours super-bug predictors
      (many failures, weak specificity).
    - {!By_increase}: descending Increase(P) — favours sub-bug predictors
      (near-deterministic but rare).
    - {!By_importance}: descending harmonic-mean Importance — the paper's
      balanced metric. *)

type strategy = By_failure_count | By_increase | By_importance

val strategy_to_string : strategy -> string

val sort : strategy -> Scores.t array -> Scores.t array
(** Stable sort into a fresh array (ties by descending F, then id). *)

val top : ?n:int -> strategy -> Scores.t array -> Scores.t list
(** The first [n] (default 10) under the strategy. *)
