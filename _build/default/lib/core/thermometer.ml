let bands ~max_width ~max_fs (sc : Scores.t) =
  let fs = sc.Scores.f + sc.Scores.s in
  if fs <= 0 || max_fs <= 0 then (0, 0, 0, 0, 0)
  else begin
    let len =
      if max_fs <= 1 then max_width
      else begin
        let frac = log (float_of_int (fs + 1)) /. log (float_of_int (max_fs + 1)) in
        max 1 (int_of_float (ceil (frac *. float_of_int max_width)))
      end
    in
    let len = min len max_width in
    let inc_lb = max 0. sc.Scores.increase_ci.Sbi_util.Stats.lo in
    let ci_w =
      max 0. (min 1. sc.Scores.increase_ci.Sbi_util.Stats.hi -. inc_lb)
    in
    let ctx = max 0. (min 1. sc.Scores.context) in
    let black = int_of_float (Float.round (ctx *. float_of_int len)) in
    let dark = int_of_float (Float.round (inc_lb *. float_of_int len)) in
    let light = int_of_float (Float.round (ci_w *. float_of_int len)) in
    let black = min black len in
    let dark = min dark (len - black) in
    let light = min light (len - black - dark) in
    let white = len - black - dark - light in
    (len, black, dark, light, white)
  end

let render_with ~black_c ~dark_c ~light_c ~white_c ~pad_c ?(max_width = 24) ~max_fs sc =
  let _, black, dark, light, white = bands ~max_width ~max_fs sc in
  let buf = Buffer.create (max_width + 2) in
  Buffer.add_char buf '[';
  let rep s n = for _ = 1 to n do Buffer.add_string buf s done in
  rep black_c black;
  rep dark_c dark;
  rep light_c light;
  rep white_c white;
  rep pad_c (max_width - black - dark - light - white);
  Buffer.add_char buf ']';
  Buffer.contents buf

let render ?max_width ~max_fs sc =
  render_with ~black_c:"\xe2\x96\x88" (* █ *) ~dark_c:"\xe2\x96\x93" (* ▓ *)
    ~light_c:"\xe2\x96\x91" (* ░ *) ~white_c:"\xc2\xb7" (* · *) ~pad_c:" " ?max_width ~max_fs sc

let render_ascii ?max_width ~max_fs sc =
  render_with ~black_c:"#" ~dark_c:"=" ~light_c:"-" ~white_c:"." ~pad_c:" " ?max_width
    ~max_fs sc

let legend =
  "thermometer: [█ context |▓ increase (95% lower bound) |░ CI width |· successes]; \
   length is log-scaled in the number of runs where the predicate was true"
