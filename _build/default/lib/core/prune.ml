open Sbi_util

let keep ?(confidence = 0.95) (c : Counts.t) ~pred =
  let f = c.Counts.f.(pred) in
  if f = 0 then false
  else begin
    let ci =
      Stats.increase_ci ~confidence ~f ~s:c.Counts.s.(pred) ~f_obs:c.Counts.f_obs.(pred)
        ~s_obs:c.Counts.s_obs.(pred) ()
    in
    ci.Stats.lo > 0.
  end

let retained ?confidence c =
  let acc = ref [] in
  for pred = c.Counts.npreds - 1 downto 0 do
    if keep ?confidence c ~pred then acc := pred :: !acc
  done;
  !acc

let retained_scores ?confidence c =
  Array.of_list (List.map (fun pred -> Scores.score ?confidence c ~pred) (retained ?confidence c))
