(** "How many runs are needed?" analysis (§4.3, Table 8).

    For a chosen predictor P, compute Importance over prefixes of the run
    sequence and find the minimum N such that
    [Importance_full(P) - Importance_N(P) < threshold] (the paper uses
    threshold 0.2 against the full 32,000-run importance), along with
    F(P) — how many failing runs among those N had P true.  The paper's
    observation: every bug's predictor stabilizes with roughly 10–40
    observed failures. *)

val default_grid : int list
(** The paper's grid: 100, 200, ..., 1000, 2000, ..., 25000. *)

val importance_at : ?confidence:float -> Sbi_runtime.Dataset.t -> pred:int -> n:int -> float
(** Importance of [pred] computed over the first [n] runs. *)

type answer = {
  pred : int;
  min_runs : int;  (** smallest grid N meeting the threshold *)
  f_at_min : int;  (** F(P) within those N runs *)
  full_importance : float;
}

val curve :
  ?confidence:float ->
  ?grid:int list ->
  Sbi_runtime.Dataset.t ->
  pred:int ->
  (int * float) list
(** Importance of [pred] at each grid point up to the dataset size (the
    full size is always included) — the trajectory behind {!min_runs},
    used by the convergence-curve chart. *)

val min_runs :
  ?confidence:float ->
  ?threshold:float ->
  ?grid:int list ->
  Sbi_runtime.Dataset.t ->
  pred:int ->
  answer option
(** [None] when no grid point (≤ the dataset size) meets the threshold.
    Grid points beyond the dataset size are ignored; the full dataset size
    itself is always tried last, so a result exists whenever the full
    importance is positive.  Default [threshold] 0.2. *)
