lib/runtime/dataset.mli: Report Sbi_instrument
