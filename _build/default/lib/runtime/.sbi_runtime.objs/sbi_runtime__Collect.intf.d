lib/runtime/collect.mli: Dataset Lazy Report Sbi_instrument Sbi_lang
