lib/runtime/dataset.ml: Array Buffer Fun Hashtbl List Printf Report Sbi_instrument Site String Transform
