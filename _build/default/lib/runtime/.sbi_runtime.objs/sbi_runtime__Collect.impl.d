lib/runtime/collect.ml: Array Dataset Interp Lazy Observe Report Sampler Sbi_instrument Sbi_lang Site Transform
