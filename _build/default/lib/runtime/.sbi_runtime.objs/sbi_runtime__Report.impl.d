lib/runtime/report.ml: Array String
