lib/runtime/report.mli:
