(** Feedback reports (§1).

    A feedback report is the record of one monitored run: one bit for the
    outcome, plus which predicates were {e observed} (their site was reached
    and sampled) and which were {e observed to be true} at least once.
    Because all predicates of a site are sampled jointly, observation is
    recorded per site; truth is recorded per predicate.

    Reports also carry the reproduction's ground-truth channels: the
    [__bug(n)] occurrences (known only in controlled experiments, used for
    Table 3's per-bug columns) and the crash stack signature (used for the
    stack-trace study). *)

type outcome = Success | Failure

val outcome_to_string : outcome -> string
val outcome_is_failure : outcome -> bool

type t = {
  run_id : int;
  outcome : outcome;
  observed_sites : int array;  (** sorted, distinct site ids *)
  true_preds : int array;  (** sorted, distinct predicate ids *)
  true_counts : int array;
      (** parallel to [true_preds]: how many sampled observations found the
          predicate true (the paper's footnote 2 — the analysis itself only
          uses "at least once", but the counts carry the §6 coverage
          information) *)
  bugs : int array;  (** ground-truth bug ids triggered in this run *)
  crash_sig : string option;  (** call-stack signature at failure, if any *)
}

val observed_site : t -> int -> bool
(** Binary search in [observed_sites]. *)

val is_true : t -> int -> bool
(** [is_true r p]: was predicate [p] observed to be true in run [r]
    (the paper's R(P) = 1)?  Binary search in [true_preds]. *)

val has_bug : t -> int -> bool

val true_count : t -> int -> int
(** Times the predicate was observed true in this run (0 when never). *)

val stack_signature : string list -> string
(** Canonical signature of a crash stack (innermost first), e.g.
    ["memcpy<save<main"]. *)
