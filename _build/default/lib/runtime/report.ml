type outcome = Success | Failure

let outcome_to_string = function Success -> "success" | Failure -> "failure"
let outcome_is_failure = function Failure -> true | Success -> false

type t = {
  run_id : int;
  outcome : outcome;
  observed_sites : int array;
  true_preds : int array;
  true_counts : int array;
  bugs : int array;
  crash_sig : string option;
}

let mem_sorted arr x =
  let lo = ref 0 and hi = ref (Array.length arr - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = arr.(mid) in
    if v = x then found := true else if v < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

let index_sorted arr x =
  let lo = ref 0 and hi = ref (Array.length arr - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = arr.(mid) in
    if v = x then found := mid else if v < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

let observed_site t site = mem_sorted t.observed_sites site
let is_true t pred = mem_sorted t.true_preds pred
let has_bug t bug = mem_sorted t.bugs bug

let true_count t pred =
  let i = index_sorted t.true_preds pred in
  if i < 0 then 0 else t.true_counts.(i)
let stack_signature stack = String.concat "<" stack
