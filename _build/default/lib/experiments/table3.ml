open Sbi_runtime

let render (bundle : Harness.bundle) =
  let analysis = Harness.analyze bundle in
  let selections = analysis.Sbi_core.Analysis.elimination.Sbi_core.Eliminate.selections in
  let bug_ids = Dataset.bug_ids bundle.Harness.dataset in
  let headers = List.map (fun b -> Printf.sprintf "#%d" b) bug_ids in
  let per_bug (sel : Sbi_core.Eliminate.selection) =
    let co = Harness.cooccurrence bundle ~pred:sel.Sbi_core.Eliminate.pred in
    List.map
      (fun b ->
        match List.assoc_opt b co with Some n -> string_of_int n | None -> "0")
      bug_ids
  in
  Render.selection_table
    ~title:"Table 3: MOSS failure predictors using nonuniform sampling"
    ~transform:bundle.Harness.transform
    ~extra_cols:(headers, per_bug)
    selections
  ^ Printf.sprintf
      "\nGround truth: failing runs per bug:%s  (bug #7 never fails alone; bug #8 never occurs)\n"
      (String.concat ""
         (List.map
            (fun b ->
              Printf.sprintf " #%d=%d" b (Dataset.runs_with_bug bundle.Harness.dataset b))
            bug_ids))

let run ?(config = Harness.default_config) () =
  render (Harness.collect_study ~config Sbi_corpus.Corpus.mossim)
