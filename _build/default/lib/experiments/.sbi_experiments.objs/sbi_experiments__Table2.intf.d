lib/experiments/table2.mli: Harness Sbi_core
