lib/experiments/table9.ml: Harness List Printf Sbi_corpus Sbi_logreg Sbi_runtime Sbi_util Texttab
