lib/experiments/html_report.ml: Affinity Analysis Buffer Dataset Eliminate Float Fun Harness List Option Printf Sbi_core Sbi_corpus Sbi_runtime Sbi_util Scores String
