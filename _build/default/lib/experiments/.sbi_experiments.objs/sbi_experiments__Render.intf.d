lib/experiments/render.mli: Sbi_core Sbi_instrument Sbi_util
