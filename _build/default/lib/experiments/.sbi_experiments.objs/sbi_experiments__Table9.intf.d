lib/experiments/table9.mli: Harness
