lib/experiments/table1.ml: Array Counts Harness Printf Prune Rank Render Sbi_core Sbi_corpus String
