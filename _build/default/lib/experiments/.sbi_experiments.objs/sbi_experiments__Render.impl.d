lib/experiments/render.ml: Eliminate List Printf Sbi_core Sbi_instrument Sbi_util Scores Stats Texttab Thermometer
