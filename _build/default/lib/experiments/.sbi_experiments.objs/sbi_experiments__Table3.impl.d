lib/experiments/table3.ml: Dataset Harness List Printf Render Sbi_core Sbi_corpus Sbi_runtime String
