lib/experiments/predictor_table.ml: Affinity Analysis Eliminate Harness List Printf Render Sbi_core Sbi_corpus String
