lib/experiments/static_followup.ml: Buffer Format Harness List Printf Query Sbi_core Sbi_corpus Sbi_instrument Sbi_lang String
