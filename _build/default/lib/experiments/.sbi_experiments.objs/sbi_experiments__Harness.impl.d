lib/experiments/harness.ml: Adaptive Array Collect Dataset Hashtbl List Option Report Sampler Sbi_core Sbi_corpus Sbi_instrument Sbi_lang Sbi_runtime Transform
