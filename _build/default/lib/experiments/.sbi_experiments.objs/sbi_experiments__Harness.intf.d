lib/experiments/harness.mli: Sbi_core Sbi_corpus Sbi_instrument Sbi_runtime
