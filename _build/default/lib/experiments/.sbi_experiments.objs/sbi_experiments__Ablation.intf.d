lib/experiments/ablation.mli: Harness Sbi_core
