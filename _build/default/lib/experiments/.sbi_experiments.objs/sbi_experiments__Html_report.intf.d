lib/experiments/html_report.mli: Harness
