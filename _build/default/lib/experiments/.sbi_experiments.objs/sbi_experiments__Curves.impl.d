lib/experiments/curves.ml: Analysis Array Buffer Eliminate Float Harness List Printf Runs_needed Sbi_core Sbi_corpus Sbi_runtime String
