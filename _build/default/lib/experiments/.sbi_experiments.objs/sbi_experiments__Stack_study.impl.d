lib/experiments/stack_study.ml: Array Dataset Harness List Printf Report Sbi_corpus Sbi_runtime Sbi_util Texttab
