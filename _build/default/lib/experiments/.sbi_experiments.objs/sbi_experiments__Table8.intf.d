lib/experiments/table8.mli: Harness Sbi_core
