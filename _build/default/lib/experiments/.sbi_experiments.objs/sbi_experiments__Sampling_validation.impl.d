lib/experiments/sampling_validation.ml: Analysis Array Eliminate Harness List Option Sbi_core Sbi_corpus Sbi_runtime Sbi_util String Texttab
