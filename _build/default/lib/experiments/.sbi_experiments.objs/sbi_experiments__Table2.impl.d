lib/experiments/table2.ml: Harness List Sbi_core Sbi_corpus Sbi_util Texttab
