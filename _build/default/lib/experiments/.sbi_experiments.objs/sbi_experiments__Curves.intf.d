lib/experiments/curves.mli: Harness Sbi_corpus
