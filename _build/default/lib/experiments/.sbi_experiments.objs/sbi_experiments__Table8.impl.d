lib/experiments/table8.ml: Analysis Eliminate Harness List Printf Runs_needed Sbi_core Sbi_corpus Sbi_util Texttab
