lib/experiments/stack_study.mli: Harness Sbi_core
