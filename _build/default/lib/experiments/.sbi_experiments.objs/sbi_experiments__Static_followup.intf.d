lib/experiments/static_followup.mli: Harness Sbi_lang
