lib/experiments/ablation.ml: Eliminate Harness List Sbi_core Sbi_corpus Sbi_util String Texttab
