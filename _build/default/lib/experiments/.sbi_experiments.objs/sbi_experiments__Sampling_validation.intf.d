lib/experiments/sampling_validation.mli: Harness Sbi_corpus
