lib/experiments/predictor_table.mli: Harness
