(** Sampling validation (§4): the paper validates non-uniform sampling by
    re-running every experiment with the sampling rate of all predicates
    set to 100% and comparing results; differences were judged minor
    (logically-equivalent predicate swaps, slight re-ranking, a few extra
    weak tail predictors).

    We reproduce the comparison: collect the same run population sampled
    and unsampled, run elimination on both, and report the overlap of the
    selected predicate sets (by site, so logically-equivalent predicates at
    the same site count as agreement) and the per-bug coverage of each. *)

type comparison = {
  study : string;
  sampled_selected : int;
  unsampled_selected : int;
  common_sites : int;  (** selected sites appearing in both lists *)
  sampled_bug_coverage : int list;  (** bugs covered by the sampled list *)
  unsampled_bug_coverage : int list;
}

val compare_study : ?config:Harness.config -> Sbi_corpus.Study.t -> comparison
val render : comparison list -> string
val run : ?config:Harness.config -> ?studies:Sbi_corpus.Study.t list -> unit -> string
