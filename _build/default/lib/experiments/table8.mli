(** Table 8: minimum number of runs needed (§4.3).

    For each study and each occurring bug's chosen predictor P, the
    smallest run-count N (over the paper's grid) such that
    Importance_full(P) − Importance_N(P) < 0.2, and F(P) at that N.
    The paper's observation to reproduce: 10–40 observed failures suffice
    for every bug, with rare bugs needing the most total runs. *)

val render : (Harness.bundle * Sbi_core.Analysis.t) list -> string
val run : ?config:Harness.config -> unit -> string
