open Sbi_lang

type finding = {
  implicated : string list;
  uses : Query.use list;
}

(* Variables named in a predicate's text: we match the nulled-variable
   names against the predicate descriptions of the selected predictors. *)
let mentions text name =
  let tl = String.length text and nl = String.length name in
  let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' in
  let rec go i =
    if i + nl > tl then false
    else if
      String.sub text i nl = name
      && (i = 0 || not (is_ident text.[i - 1]))
      && (i + nl = tl || not (is_ident text.[i + nl]))
    then true
    else go (i + 1)
  in
  nl > 0 && go 0

let investigate (bundle : Harness.bundle) =
  let prog = bundle.Harness.transform.Sbi_instrument.Transform.prog in
  let analysis = Harness.analyze bundle in
  let nulled = List.map fst (Query.nulled_vars prog) in
  let selected_texts =
    List.map
      (fun (sel : Sbi_core.Eliminate.selection) ->
        Harness.describe bundle ~pred:sel.Sbi_core.Eliminate.pred)
      analysis.Sbi_core.Analysis.elimination.Sbi_core.Eliminate.selections
  in
  (* A nulled variable is implicated when a selected predictor mentions it
     or mentions the bookkeeping counters guarding it (same site line). *)
  let implicated =
    List.filter (fun v -> List.exists (fun t -> mentions t v) selected_texts) nulled
  in
  (* When no predictor names a disposed variable directly (predictors often
     fire on the guard counters instead), fall back to all disposed
     variables — the engineer reading the affinity list would do the same. *)
  let roots = if implicated = [] then nulled else implicated in
  { implicated = roots; uses = Query.unsafe_uses ~only:roots prog }

let render bundle =
  let f = investigate bundle in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Static follow-up (paper §1): unsafe dispose-then-use pattern scan\n";
  Buffer.add_string buf
    (Printf.sprintf "disposed references implicated: %s\n"
       (if f.implicated = [] then "(none)" else String.concat ", " f.implicated));
  Buffer.add_string buf
    (Printf.sprintf "unguarded uses found by the syntactic scan: %d\n" (List.length f.uses));
  List.iter
    (fun u -> Buffer.add_string buf (Format.asprintf "  %a\n" Query.pp_use u))
    f.uses;
  (match Query.count_by_function f.uses with
  | [] -> ()
  | per_fn ->
      Buffer.add_string buf "instances per function:\n";
      List.iter
        (fun (fn, n) -> Buffer.add_string buf (Printf.sprintf "  %-20s %d\n" fn n))
        per_fn);
  Buffer.contents buf

let run ?(config = Harness.default_config) () =
  render (Harness.collect_study ~config Sbi_corpus.Corpus.rhythmim)
