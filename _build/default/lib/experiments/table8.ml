open Sbi_util
open Sbi_core

let render rows =
  let tab =
    Texttab.create ~title:"Table 8: minimum number of runs needed"
      [
        ("Study", Texttab.Left);
        ("Bug", Texttab.Right);
        ("F(P)", Texttab.Right);
        ("N", Texttab.Right);
        ("Predicate", Texttab.Left);
      ]
  in
  List.iter
    (fun ((bundle : Harness.bundle), analysis) ->
      let selections = analysis.Analysis.elimination.Eliminate.selections in
      let per_bug = Harness.assign_selections_to_bugs bundle selections in
      List.iter
        (fun (bug, (sel : Eliminate.selection)) ->
          let pred = sel.Eliminate.pred in
          match
            Runs_needed.min_runs ~confidence:bundle.Harness.config.Harness.confidence
              bundle.Harness.dataset ~pred
          with
          | Some ans ->
              Texttab.add_row tab
                [
                  bundle.Harness.study.Sbi_corpus.Study.name;
                  Printf.sprintf "#%d" bug;
                  string_of_int ans.Runs_needed.f_at_min;
                  string_of_int ans.Runs_needed.min_runs;
                  Harness.describe bundle ~pred;
                ]
          | None ->
              Texttab.add_row tab
                [
                  bundle.Harness.study.Sbi_corpus.Study.name;
                  Printf.sprintf "#%d" bug;
                  "-";
                  "> dataset";
                  Harness.describe bundle ~pred;
                ])
        per_bug;
      Texttab.add_rule tab)
    rows;
  Texttab.render tab

let run ?(config = Harness.default_config) () =
  let rows =
    List.map
      (fun study ->
        let bundle = Harness.collect_study ~config study in
        (bundle, Harness.analyze bundle))
      Sbi_corpus.Corpus.all
  in
  render rows
