(** Table 1: comparison of ranking strategies for MOSS, without redundancy
    elimination.  (a) descending F(P) surfaces super-bug-style predictors
    with large F but weak Increase; (b) descending Increase(P) surfaces
    near-deterministic sub-bug predictors with tiny F; (c) the harmonic
    mean balances both. *)

val render : ?top:int -> Harness.bundle -> string
(** Renders the three sub-tables (default 8 rows each) from the bundle's
    retained predicates. *)

val run : ?config:Harness.config -> ?top:int -> unit -> string
(** Collects a MOSS-analogue bundle and renders. *)
