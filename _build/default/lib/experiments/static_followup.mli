(** The §1 RHYTHMBOX story: a statistical failure predictor exposes an
    unsafe usage pattern (dispose, then use without a null check), and a
    simple syntactic static analysis then finds every other instance of
    the same pattern.

    This driver runs the statistical analysis on a study, takes the
    disposed references implicated by the selected predictors, and hands
    them to {!Sbi_lang.Query.unsafe_uses}. *)

type finding = {
  implicated : string list;  (** nulled variables named by selected predictors *)
  uses : Sbi_lang.Query.use list;  (** all unguarded uses found statically *)
}

val investigate : Harness.bundle -> finding
val render : Harness.bundle -> string
val run : ?config:Harness.config -> unit -> string
(** Defaults to the RHYTHMBOX analogue. *)
