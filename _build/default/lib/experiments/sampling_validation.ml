open Sbi_util
open Sbi_core

type comparison = {
  study : string;
  sampled_selected : int;
  unsampled_selected : int;
  common_sites : int;
  sampled_bug_coverage : int list;
  unsampled_bug_coverage : int list;
}

let sites_of (bundle : Harness.bundle) preds =
  List.sort_uniq compare
    (List.map (fun p -> bundle.Harness.dataset.Sbi_runtime.Dataset.pred_site.(p)) preds)

let coverage bundle selections =
  List.sort_uniq compare
    (List.filter_map
       (fun (sel : Eliminate.selection) ->
         Harness.dominant_bug bundle ~pred:sel.Eliminate.pred)
       selections)

let compare_study ?(config = Harness.default_config) study =
  let sampled = Harness.collect_study ~config study in
  let unsampled =
    Harness.collect_study ~config:{ config with Harness.sampling = Harness.No_sampling } study
  in
  let a_s = Harness.analyze sampled in
  let a_u = Harness.analyze unsampled in
  let sel_s = a_s.Analysis.elimination.Eliminate.selections in
  let sel_u = a_u.Analysis.elimination.Eliminate.selections in
  let sites_s = sites_of sampled (List.map (fun s -> s.Eliminate.pred) sel_s) in
  let sites_u = sites_of unsampled (List.map (fun s -> s.Eliminate.pred) sel_u) in
  let common = List.filter (fun s -> List.mem s sites_u) sites_s in
  {
    study = study.Sbi_corpus.Study.name;
    sampled_selected = List.length sel_s;
    unsampled_selected = List.length sel_u;
    common_sites = List.length common;
    sampled_bug_coverage = coverage sampled sel_s;
    unsampled_bug_coverage = coverage unsampled sel_u;
  }

let render comparisons =
  let tab =
    Texttab.create ~title:"Sampling validation: sampled vs. unsampled analyses"
      [
        ("Study", Texttab.Left);
        ("Sel (sampled)", Texttab.Right);
        ("Sel (full)", Texttab.Right);
        ("Common sites", Texttab.Right);
        ("Bugs covered (sampled)", Texttab.Left);
        ("Bugs covered (full)", Texttab.Left);
      ]
  in
  let fmt_bugs bs = String.concat "," (List.map (fun b -> "#" ^ string_of_int b) bs) in
  List.iter
    (fun c ->
      Texttab.add_row tab
        [
          c.study;
          string_of_int c.sampled_selected;
          string_of_int c.unsampled_selected;
          string_of_int c.common_sites;
          fmt_bugs c.sampled_bug_coverage;
          fmt_bugs c.unsampled_bug_coverage;
        ])
    comparisons;
  Texttab.render tab

let run ?(config = Harness.default_config) ?studies () =
  let studies =
    Option.value studies ~default:[ Sbi_corpus.Corpus.mossim; Sbi_corpus.Corpus.rhythmim ]
  in
  render (List.map (compare_study ~config) studies)
