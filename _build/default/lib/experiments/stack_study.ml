open Sbi_util
open Sbi_runtime

type verdict = {
  bug : int;
  crashing_runs : int;
  distinct_sigs : int;
  best_precision : float;
  best_recall : float;
  unique : bool;
}

let study_verdicts (bundle : Harness.bundle) =
  let ds = bundle.Harness.dataset in
  let crashed =
    Array.to_list ds.Dataset.runs
    |> List.filter_map (fun (r : Report.t) ->
           match r.Report.crash_sig with Some s -> Some (r, s) | None -> None)
  in
  let sig_count_with_bug bug sg =
    List.length (List.filter (fun ((r : Report.t), s) -> s = sg && Report.has_bug r bug) crashed)
  in
  let sig_count sg = List.length (List.filter (fun (_, s) -> s = sg) crashed) in
  List.filter_map
    (fun (b : Sbi_corpus.Study.bug) ->
      let bug = b.Sbi_corpus.Study.bug_id in
      let bug_crashes = List.filter (fun ((r : Report.t), _) -> Report.has_bug r bug) crashed in
      let n = List.length bug_crashes in
      if n = 0 then None
      else begin
        let sigs = List.sort_uniq compare (List.map snd bug_crashes) in
        (* most common signature among this bug's crashes *)
        let best =
          List.fold_left
            (fun best sg ->
              let recall = float_of_int (sig_count_with_bug bug sg) /. float_of_int n in
              let seen = sig_count sg in
              let precision =
                if seen = 0 then 0.
                else float_of_int (sig_count_with_bug bug sg) /. float_of_int seen
              in
              match best with
              | Some (_, br, bp) when (br *. bp) >= (recall *. precision) -> best
              | _ -> Some (sg, recall, precision))
            None sigs
        in
        let _, best_recall, best_precision =
          match best with Some (s, r, p) -> (s, r, p) | None -> ("", 0., 0.)
        in
        Some
          {
            bug;
            crashing_runs = n;
            distinct_sigs = List.length sigs;
            best_precision;
            best_recall;
            unique = best_precision >= 0.95 && best_recall >= 0.95;
          }
      end)
    bundle.Harness.study.Sbi_corpus.Study.bugs

let render rows =
  let tab =
    Texttab.create ~title:"Stack-trace study: per-bug crash-stack signature uniqueness"
      [
        ("Study", Texttab.Left);
        ("Bug", Texttab.Right);
        ("Crashes", Texttab.Right);
        ("Sigs", Texttab.Right);
        ("Precision", Texttab.Right);
        ("Recall", Texttab.Right);
        ("Unique?", Texttab.Left);
      ]
  in
  let useful = ref 0 in
  let total = ref 0 in
  List.iter
    (fun ((bundle : Harness.bundle), _analysis) ->
      List.iter
        (fun v ->
          incr total;
          if v.unique then incr useful;
          Texttab.add_row tab
            [
              bundle.Harness.study.Sbi_corpus.Study.name;
              Printf.sprintf "#%d" v.bug;
              string_of_int v.crashing_runs;
              string_of_int v.distinct_sigs;
              Printf.sprintf "%.2f" v.best_precision;
              Printf.sprintf "%.2f" v.best_recall;
              (if v.unique then "yes" else "no");
            ])
        (study_verdicts bundle);
      Texttab.add_rule tab)
    rows;
  Texttab.render tab
  ^ Printf.sprintf
      "stack useful (unique signature) for %d of %d manifested bugs — the paper reports \
       roughly half\n"
      !useful !total

let run ?(config = Harness.default_config) () =
  let rows =
    List.map
      (fun study ->
        let bundle = Harness.collect_study ~config study in
        (bundle, Harness.analyze bundle))
      Sbi_corpus.Corpus.all
  in
  render rows
