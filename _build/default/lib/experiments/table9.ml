open Sbi_util

(* Classify a predicate against ground truth: a sub-bug predictor covers a
   strict minority of its dominant bug's failures with high precision; a
   super-bug predictor spreads over several bugs. *)
let classify (bundle : Harness.bundle) ~pred =
  let co = Harness.cooccurrence bundle ~pred in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 co in
  match co with
  | [] -> "no failing coverage"
  | (top_bug, top_n) :: _ ->
      let spread = List.length (List.filter (fun (_, n) -> n * 5 >= total) co) in
      let bug_total = Sbi_runtime.Dataset.runs_with_bug bundle.Harness.dataset top_bug in
      if spread >= 3 then Printf.sprintf "super-bug (%d bugs)" spread
      else if bug_total > 0 && top_n * 2 < bug_total then
        Printf.sprintf "sub-bug of #%d (%d/%d)" top_bug top_n bug_total
      else Printf.sprintf "mostly #%d (%d/%d)" top_bug top_n bug_total

let render ?(top = 10) (bundle : Harness.bundle) =
  let model = Sbi_logreg.Logreg.train bundle.Harness.dataset in
  let weights = Sbi_logreg.Logreg.top_weights model ~n:top in
  let tab =
    Texttab.create ~title:"Table 9: results of logistic regression for MOSS"
      [
        ("Coefficient", Texttab.Right);
        ("Predicate", Texttab.Left);
        ("Ground truth", Texttab.Left);
      ]
  in
  List.iter
    (fun (pred, w) ->
      Texttab.add_row tab
        [ Printf.sprintf "%.6f" w; Harness.describe bundle ~pred; classify bundle ~pred ])
    weights;
  Texttab.render tab
  ^ Printf.sprintf "nonzero weights: %d of %d predicates; training accuracy %.3f\n"
      (Sbi_logreg.Logreg.nonzero model)
      bundle.Harness.dataset.Sbi_runtime.Dataset.npreds
      (Sbi_logreg.Logreg.accuracy model bundle.Harness.dataset)

let run ?(config = Harness.default_config) ?top () =
  render ?top (Harness.collect_study ~config Sbi_corpus.Corpus.mossim)
