open Sbi_util
open Sbi_core

let max_fs_of rows =
  List.fold_left (fun acc (sc : Scores.t) -> max acc (sc.Scores.f + sc.Scores.s)) 1 rows

let fmt_ci (ci : Stats.interval) point =
  let half = Stats.interval_width ci /. 2. in
  Printf.sprintf "%.3f ± %.3f" point half

let score_table ~title ~transform rows =
  let max_fs = max_fs_of rows in
  let tab =
    Texttab.create ~title
      [
        ("Thermometer", Texttab.Left);
        ("Context", Texttab.Right);
        ("Increase", Texttab.Right);
        ("S", Texttab.Right);
        ("F", Texttab.Right);
        ("F+S", Texttab.Right);
        ("Predicate", Texttab.Left);
      ]
  in
  List.iter
    (fun (sc : Scores.t) ->
      Texttab.add_row tab
        [
          Thermometer.render ~max_fs sc;
          Printf.sprintf "%.3f" sc.Scores.context;
          fmt_ci sc.Scores.increase_ci sc.Scores.increase;
          string_of_int sc.Scores.s;
          string_of_int sc.Scores.f;
          string_of_int (sc.Scores.f + sc.Scores.s);
          Sbi_instrument.Transform.describe_pred transform sc.Scores.pred;
        ])
    rows;
  Texttab.render tab ^ Thermometer.legend ^ "\n"

let selection_table ~title ~transform ?extra_cols selections =
  let all_scores =
    List.concat_map
      (fun (s : Eliminate.selection) -> [ s.Eliminate.initial; s.Eliminate.effective ])
      selections
  in
  let max_fs = max_fs_of all_scores in
  let extra_headers, extra_fn =
    match extra_cols with
    | None -> ([], fun _ -> [])
    | Some (headers, fn) -> (headers, fn)
  in
  let tab =
    Texttab.create ~title
      ([
         ("#", Texttab.Right);
         ("Initial", Texttab.Left);
         ("Effective", Texttab.Left);
         ("Imp", Texttab.Right);
         ("F", Texttab.Right);
         ("S", Texttab.Right);
         ("Predicate", Texttab.Left);
       ]
      @ List.map (fun h -> (h, Texttab.Right)) extra_headers)
  in
  List.iter
    (fun (sel : Eliminate.selection) ->
      Texttab.add_row tab
        ([
           string_of_int sel.Eliminate.rank;
           Thermometer.render ~max_fs sel.Eliminate.initial;
           Thermometer.render ~max_fs sel.Eliminate.effective;
           Printf.sprintf "%.3f" sel.Eliminate.effective.Scores.importance;
           string_of_int sel.Eliminate.initial.Scores.f;
           string_of_int sel.Eliminate.initial.Scores.s;
           Sbi_instrument.Transform.describe_pred transform sel.Eliminate.pred;
         ]
        @ extra_fn sel))
    selections;
  Texttab.render tab ^ Thermometer.legend ^ "\n"
