(** The stack-trace study (§1, §6): how useful is the current industrial
    practice of clustering failures by crash stack?

    For each ground-truth bug, we look for a {e unique signature stack}: a
    crash-stack signature present (among failing runs) if and only if that
    bug was triggered.  The paper's finding to reproduce: only the most
    deterministic bugs have one (MOSS bugs #2 and #5); event-driven
    programs (RHYTHMBOX analogue) have near-useless stacks because every
    crash goes through the same dispatch loop. *)

type verdict = {
  bug : int;
  crashing_runs : int;
  distinct_sigs : int;  (** distinct stack signatures among this bug's crashes *)
  best_precision : float;
      (** for the bug's most common signature: fraction of runs showing it
          that triggered the bug *)
  best_recall : float;
      (** fraction of the bug's crashing runs showing that signature *)
  unique : bool;  (** precision and recall both >= 0.95 *)
}

val study_verdicts : Harness.bundle -> verdict list
val render : (Harness.bundle * Sbi_core.Analysis.t) list -> string
val run : ?config:Harness.config -> unit -> string
