open Sbi_core

let letters = "abcdefghijklmnopqrstuvwxyz"

let render ?(height = 12) (bundle : Harness.bundle) =
  let ds = bundle.Harness.dataset in
  let analysis = Harness.analyze bundle in
  let per_bug =
    Harness.assign_selections_to_bugs bundle
      analysis.Analysis.elimination.Eliminate.selections
  in
  if per_bug = [] then "no predictors selected; nothing to plot\n"
  else begin
    let curves =
      List.mapi
        (fun i (bug, (sel : Eliminate.selection)) ->
          let letter = letters.[i mod String.length letters] in
          (letter, bug, sel.Eliminate.pred, Runs_needed.curve ds ~pred:sel.Eliminate.pred))
        per_bug
    in
    let grid = match curves with (_, _, _, c) :: _ -> List.map fst c | [] -> [] in
    let ncols = List.length grid in
    (* chart body: rows from importance 1.0 at the top to 0.0 at the bottom *)
    let cell = Array.make_matrix height ncols ' ' in
    List.iter
      (fun (letter, _, _, curve) ->
        List.iteri
          (fun col (_, imp) ->
            let row =
              let r = int_of_float (Float.round ((1. -. imp) *. float_of_int (height - 1))) in
              if r < 0 then 0 else if r >= height then height - 1 else r
            in
            cell.(row).(col) <- letter)
          curve)
      curves;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "Importance_N convergence — %s (%d runs)\n"
         bundle.Harness.study.Sbi_corpus.Study.name
         (Sbi_runtime.Dataset.nruns ds));
    for row = 0 to height - 1 do
      let y = 1. -. (float_of_int row /. float_of_int (height - 1)) in
      Buffer.add_string buf (Printf.sprintf "%4.2f |" y);
      for col = 0 to ncols - 1 do
        Buffer.add_string buf (Printf.sprintf " %c " cell.(row).(col))
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf "     +";
    for _ = 1 to ncols do
      Buffer.add_string buf "---"
    done;
    Buffer.add_char buf '\n';
    Buffer.add_string buf "      ";
    List.iter
      (fun n ->
        let label =
          if n >= 1000 then Printf.sprintf "%dk" (n / 1000) else string_of_int n
        in
        Buffer.add_string buf (Printf.sprintf "%-3s" (if String.length label > 3 then "" else label)))
      grid;
    Buffer.add_string buf "  (N runs)\n\n";
    List.iter
      (fun (letter, bug, pred, curve) ->
        let final = match List.rev curve with (_, imp) :: _ -> imp | [] -> 0. in
        Buffer.add_string buf
          (Printf.sprintf "  %c = bug #%d (final imp %.2f): %s\n" letter bug final
             (Harness.describe bundle ~pred)))
      curves;
    Buffer.contents buf
  end

let run ?(config = Harness.default_config) study =
  render (Harness.collect_study ~config study)
