open Sbi_core

let render ~title (bundle : Harness.bundle) =
  let analysis = Harness.analyze bundle in
  let selections = analysis.Analysis.elimination.Eliminate.selections in
  let table =
    Render.selection_table ~title ~transform:bundle.Harness.transform selections
  in
  let selected = Eliminate.selected_preds analysis.Analysis.elimination in
  let affinity_notes =
    List.filter_map
      (fun (sel : Eliminate.selection) ->
        let others = List.filter (fun p -> p <> sel.Eliminate.pred) selected in
        if others = [] then None
        else begin
          let entries =
            Affinity.list bundle.Harness.dataset ~selected:sel.Eliminate.pred ~others
          in
          match Affinity.top_affine entries with
          | Some top ->
              Some
                (Printf.sprintf "  affinity: selecting #%d most deflates [%s]"
                   sel.Eliminate.rank
                   (Harness.describe bundle ~pred:top))
          | None -> None
        end)
      selections
  in
  table
  ^ (if affinity_notes = [] then ""
     else "\n" ^ String.concat "\n" affinity_notes ^ "\n")

let run_for study title config =
  let bundle = Harness.collect_study ~config study in
  render ~title bundle

let run_ccrypt ?(config = Harness.default_config) () =
  run_for Sbi_corpus.Corpus.ccryptim "Table 4: Predictors for CCRYPT (analogue)" config

let run_bc ?(config = Harness.default_config) () =
  run_for Sbi_corpus.Corpus.bcim "Table 5: Predictors for BC (analogue)" config

let run_exif ?(config = Harness.default_config) () =
  run_for Sbi_corpus.Corpus.exifim "Table 6: Predictors for EXIF (analogue)" config

let run_rhythmbox ?(config = Harness.default_config) () =
  run_for Sbi_corpus.Corpus.rhythmim "Table 7: Predictors for RHYTHMBOX (analogue)" config
