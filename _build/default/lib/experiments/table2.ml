open Sbi_util

let render rows =
  let tab =
    Texttab.create ~title:"Table 2: summary statistics for bug isolation experiments"
      [
        ("Study", Texttab.Left);
        ("LoC", Texttab.Right);
        ("Successful", Texttab.Right);
        ("Failing", Texttab.Right);
        ("Sites", Texttab.Right);
        ("Initial preds", Texttab.Right);
        ("Increase > 0", Texttab.Right);
        ("Elimination", Texttab.Right);
      ]
  in
  List.iter
    (fun ((bundle : Harness.bundle), analysis) ->
      let s = Sbi_core.Analysis.summary analysis in
      Texttab.add_row tab
        [
          bundle.Harness.study.Sbi_corpus.Study.name;
          string_of_int (Sbi_corpus.Study.loc_count bundle.Harness.study);
          string_of_int s.Sbi_core.Analysis.successful;
          string_of_int s.Sbi_core.Analysis.failing;
          string_of_int s.Sbi_core.Analysis.sites;
          string_of_int s.Sbi_core.Analysis.initial_preds;
          string_of_int s.Sbi_core.Analysis.retained_preds;
          string_of_int s.Sbi_core.Analysis.selected_preds;
        ])
    rows;
  Texttab.render tab

let run ?(config = Harness.default_config) () =
  let rows =
    List.map
      (fun study ->
        let bundle = Harness.collect_study ~config study in
        (bundle, Harness.analyze bundle))
      Sbi_corpus.Corpus.all
  in
  render rows
