(** Table 3: MOSS failure predictors under non-uniform sampling — the
    controlled validation experiment (§4.1).  Each selected predicate shows
    its initial and effective (at-selection-time) thermometers plus the
    ground-truth columns: for every seeded bug, the number of failing runs
    where both the predicate was observed true and the bug occurred.

    Expected shape: each top predictor spikes at one bug; every occurring
    bug is covered; bug #7 (never causes failure by itself) has no
    dedicated predictor but appears across columns; bug #8 (never
    triggered) is absent. *)

val render : Harness.bundle -> string
val run : ?config:Harness.config -> unit -> string
