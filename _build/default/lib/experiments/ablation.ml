open Sbi_util
open Sbi_core

type row = {
  discard : Eliminate.discard;
  selections : int;
  bugs_covered : int list;
  first_preds : string list;
}

let compare_discards (bundle : Harness.bundle) =
  List.map
    (fun discard ->
      let result =
        Eliminate.run ~discard ~confidence:bundle.Harness.config.Harness.confidence
          bundle.Harness.dataset
      in
      let selections = result.Eliminate.selections in
      let bugs =
        List.sort_uniq compare
          (List.filter_map
             (fun (s : Eliminate.selection) -> Harness.dominant_bug bundle ~pred:s.Eliminate.pred)
             selections)
      in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      {
        discard;
        selections = List.length selections;
        bugs_covered = bugs;
        first_preds =
          take 3
            (List.map
               (fun (s : Eliminate.selection) -> Harness.describe bundle ~pred:s.Eliminate.pred)
               selections);
      })
    [ Eliminate.Discard_all_true; Eliminate.Discard_failing_true; Eliminate.Relabel_failing ]

let render bundle =
  let rows = compare_discards bundle in
  let tab =
    Texttab.create ~title:"Ablation: §5 run-discard proposals on the same dataset"
      [
        ("Proposal", Texttab.Left);
        ("Selections", Texttab.Right);
        ("Bugs covered", Texttab.Left);
        ("Top predicates", Texttab.Left);
      ]
  in
  List.iter
    (fun r ->
      Texttab.add_row tab
        [
          Eliminate.discard_to_string r.discard;
          string_of_int r.selections;
          String.concat "," (List.map (fun b -> "#" ^ string_of_int b) r.bugs_covered);
          String.concat " | " r.first_preds;
        ])
    rows;
  Texttab.render tab

let run ?(config = Harness.default_config) () =
  render (Harness.collect_study ~config Sbi_corpus.Corpus.mossim)
