(** Convergence-curve chart for the runs-needed analysis (§4.3).

    Plots Importance_N for each bug's chosen predictor against the number
    of runs N, as an ASCII chart — the visual counterpart of Table 8: every
    curve climbs to its plateau once the predictor has seen a few dozen
    failing runs, with rare bugs' curves starting later. *)

val render : ?height:int -> Harness.bundle -> string
(** One letter per occurring bug's chosen predictor; legend below the
    chart.  [height] is the number of chart rows (default 12). *)

val run : ?config:Harness.config -> Sbi_corpus.Study.t -> string
