(** Self-contained HTML report for a study analysis — a static rendition of
    the paper's interactive tool: summary statistics, the ranked predictor
    list with colour bug thermometers (red increase band, pink confidence
    band, black context band, white successes — §3.3's figure conventions),
    a collapsible affinity list per predictor, and, for controlled
    experiments, the ground-truth per-bug columns of Table 3. *)

val render : Harness.bundle -> string
(** The full HTML document. *)

val write : path:string -> Harness.bundle -> unit
(** Render and save. *)
