open Sbi_core
open Sbi_runtime

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|
  body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 1100px;
         color: #1a1a1a; }
  h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; }
  table { border-collapse: collapse; width: 100%; font-size: 0.9em; }
  th, td { border: 1px solid #ccc; padding: 4px 8px; text-align: left; }
  th { background: #f0f0f0; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .therm { display: inline-flex; height: 14px; border: 1px solid #888;
           background: #fff; vertical-align: middle; }
  .therm div { height: 100%; }
  .ctx { background: #222; } .inc { background: #d62728; }
  .ci { background: #f7b6b2; } .succ { background: #fff; }
  details { margin: 0.2em 0 0.8em 1em; }
  summary { cursor: pointer; color: #444; }
  .pred { font-family: ui-monospace, monospace; font-size: 0.95em; }
  .muted { color: #777; } .legend span { margin-right: 1.2em; }
  .chip { display: inline-block; width: 0.8em; height: 0.8em; border: 1px solid #888;
          margin-right: 0.3em; vertical-align: middle; }
|}

(* Thermometer as nested divs; width log-scaled like the text version. *)
let thermometer ~max_fs (sc : Scores.t) =
  let fs = sc.Scores.f + sc.Scores.s in
  if fs <= 0 then {|<span class="therm" style="width:2px"></span>|}
  else begin
    let full = 180. in
    let width =
      if max_fs <= 1 then full
      else full *. log (float_of_int (fs + 1)) /. log (float_of_int (max_fs + 1))
    in
    let width = Float.max 6. width in
    let inc_lb = Float.max 0. sc.Scores.increase_ci.Sbi_util.Stats.lo in
    let ci_w = Float.max 0. (Float.min 1. sc.Scores.increase_ci.Sbi_util.Stats.hi -. inc_lb) in
    let ctx = Float.max 0. (Float.min 1. sc.Scores.context) in
    let succ = Float.max 0. (1. -. ctx -. inc_lb -. ci_w) in
    let seg cls frac =
      Printf.sprintf {|<div class="%s" style="width:%.1fpx"></div>|} cls (frac *. width)
    in
    Printf.sprintf {|<span class="therm" title="F=%d S=%d ctx=%.3f inc=%.3f">%s%s%s%s</span>|}
      sc.Scores.f sc.Scores.s ctx sc.Scores.increase (seg "ctx" ctx) (seg "inc" inc_lb)
      (seg "ci" ci_w) (seg "succ" succ)
  end

let render (bundle : Harness.bundle) =
  let analysis = Harness.analyze bundle in
  let ds = bundle.Harness.dataset in
  let study = bundle.Harness.study in
  let summary = Analysis.summary analysis in
  let selections = analysis.Analysis.elimination.Eliminate.selections in
  let bug_ids = Dataset.bug_ids ds in
  let max_fs =
    List.fold_left
      (fun acc (s : Eliminate.selection) ->
        max acc (s.Eliminate.initial.Scores.f + s.Eliminate.initial.Scores.s))
      1 selections
  in
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    {|<!DOCTYPE html><html><head><meta charset="utf-8"><title>sbi report: %s</title><style>%s</style></head><body>|}
    (escape study.Sbi_corpus.Study.name) style;
  out "<h1>Statistical bug isolation report — %s</h1>" (escape study.Sbi_corpus.Study.name);
  out {|<p class="muted">%s</p>|} (escape study.Sbi_corpus.Study.descr);

  out "<h2>Summary</h2><table><tr>%s</tr><tr>%s</tr></table>"
    (String.concat ""
       (List.map
          (fun h -> "<th>" ^ h ^ "</th>")
          [ "Runs"; "Successful"; "Failing"; "Sites"; "Predicates";
            "Increase &gt; 0"; "Selected" ]))
    (String.concat ""
       (List.map
          (fun n -> Printf.sprintf {|<td class="num">%d</td>|} n)
          [ summary.Analysis.runs; summary.Analysis.successful; summary.Analysis.failing;
            summary.Analysis.sites; summary.Analysis.initial_preds;
            summary.Analysis.retained_preds; summary.Analysis.selected_preds ]));

  out
    {|<h2>Selected failure predictors</h2>
      <p class="legend"><span><span class="chip ctx"></span>Context</span>
      <span><span class="chip inc"></span>Increase (95%% lower bound)</span>
      <span><span class="chip ci"></span>confidence interval</span>
      <span><span class="chip succ"></span>successful runs</span></p>|};
  out "<table><tr><th>#</th><th>Initial</th><th>Effective</th><th>Importance</th><th>F</th><th>S</th><th>Predicate</th>%s</tr>"
    (String.concat ""
       (List.map (fun b -> Printf.sprintf "<th>bug #%d</th>" b) bug_ids));
  List.iter
    (fun (sel : Eliminate.selection) ->
      let co = Harness.cooccurrence bundle ~pred:sel.Eliminate.pred in
      out
        {|<tr><td class="num">%d</td><td>%s</td><td>%s</td><td class="num">%.3f</td><td class="num">%d</td><td class="num">%d</td><td class="pred">%s</td>%s</tr>|}
        sel.Eliminate.rank
        (thermometer ~max_fs sel.Eliminate.initial)
        (thermometer ~max_fs sel.Eliminate.effective)
        sel.Eliminate.effective.Scores.importance sel.Eliminate.initial.Scores.f
        sel.Eliminate.initial.Scores.s
        (escape (Harness.describe bundle ~pred:sel.Eliminate.pred))
        (String.concat ""
           (List.map
              (fun b ->
                Printf.sprintf {|<td class="num">%d</td>|}
                  (Option.value ~default:0 (List.assoc_opt b co)))
              bug_ids)))
    selections;
  out "</table>";

  out "<h2>Affinity lists</h2>";
  List.iter
    (fun (sel : Eliminate.selection) ->
      out
        {|<details><summary>predictor %d: <span class="pred">%s</span></summary><table><tr><th>drop</th><th>before</th><th>after</th><th>predicate</th></tr>|}
        sel.Eliminate.rank
        (escape (Harness.describe bundle ~pred:sel.Eliminate.pred));
      let entries = Analysis.affinity_for analysis ~pred:sel.Eliminate.pred in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: r -> x :: take (k - 1) r
      in
      List.iter
        (fun (e : Affinity.entry) ->
          out
            {|<tr><td class="num">%.3f</td><td class="num">%.3f</td><td class="num">%.3f</td><td class="pred">%s</td></tr>|}
            e.Affinity.drop e.Affinity.importance_before e.Affinity.importance_after
            (escape (Harness.describe bundle ~pred:e.Affinity.pred)))
        (take 8 entries);
      out "</table></details>")
    selections;

  if bug_ids <> [] then begin
    out "<h2>Ground truth (controlled experiment)</h2><table><tr><th>bug</th><th>description</th><th>failing runs</th></tr>";
    List.iter
      (fun b ->
        out {|<tr><td class="num">#%d</td><td>%s</td><td class="num">%d</td></tr>|} b
          (escape (Sbi_corpus.Study.bug_name study b))
          (Dataset.runs_with_bug ds b))
      bug_ids;
    out "</table>"
  end;
  out
    {|<p class="muted">Generated by the sbi reproduction of Liblit et al., "Scalable Statistical Bug Isolation" (PLDI 2005).</p></body></html>|};
  Buffer.contents buf

let write ~path bundle =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render bundle))
