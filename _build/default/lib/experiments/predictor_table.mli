(** Tables 4–7: the per-study predictor lists (CCRYPT, BC, EXIF,
    RHYTHMBOX analogues).  Each renders the elimination output with
    initial/effective thermometers, and annotates every selected predicate
    with the top entry of its affinity list — the paper's way of
    recognizing that e.g. CCRYPT's first predictor is a sub-bug predictor
    of its second. *)

val render : title:string -> Harness.bundle -> string

val run_ccrypt : ?config:Harness.config -> unit -> string
(** Table 4. *)

val run_bc : ?config:Harness.config -> unit -> string
(** Table 5. *)

val run_exif : ?config:Harness.config -> unit -> string
(** Table 6. *)

val run_rhythmbox : ?config:Harness.config -> unit -> string
(** Table 7. *)
