open Sbi_core

let render ?(top = 8) (bundle : Harness.bundle) =
  let counts = Counts.compute bundle.Harness.dataset in
  let retained = Prune.retained_scores ~confidence:bundle.Harness.config.Harness.confidence counts in
  let remaining = Array.length retained - top in
  let sub strategy label =
    let rows = Rank.top ~n:top strategy retained in
    Render.score_table
      ~title:(Printf.sprintf "Table 1(%s): sort %s" label (Rank.strategy_to_string strategy))
      ~transform:bundle.Harness.transform rows
    ^ (if remaining > 0 then Printf.sprintf "... %d additional predicates follow ...\n" remaining
       else "")
  in
  String.concat "\n"
    [
      sub Rank.By_failure_count "a";
      sub Rank.By_increase "b";
      sub Rank.By_importance "c";
    ]

let run ?(config = Harness.default_config) ?top () =
  let bundle = Harness.collect_study ~config Sbi_corpus.Corpus.mossim in
  render ?top bundle
