(** Table 2: summary statistics for the bug-isolation experiments — lines
    of code, successful/failing runs, instrumentation sites, initial
    predicate count, predicates with Increase > 0 (95% confidence), and
    predicates remaining after elimination, for each case study. *)

val render : (Harness.bundle * Sbi_core.Analysis.t) list -> string

val run : ?config:Harness.config -> unit -> string
(** Collects and analyzes all five studies. *)
