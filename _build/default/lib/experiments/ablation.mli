(** Ablation over the §5 run-discard proposals: (1) discard all runs with
    R(P)=1, (2) discard only failing such runs, (3) relabel failing such
    runs as successes.  Reports, for each proposal on the same dataset, the
    number of selections, ground-truth bug coverage, and list length — the
    design discussion predicts (1) is the most conservative and (3) retains
    the most predictive power for complementary predicates. *)

type row = {
  discard : Sbi_core.Eliminate.discard;
  selections : int;
  bugs_covered : int list;
  first_preds : string list;  (** top 3 predicate descriptions *)
}

val compare_discards : Harness.bundle -> row list
val render : Harness.bundle -> string
val run : ?config:Harness.config -> unit -> string
