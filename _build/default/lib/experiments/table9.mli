(** Table 9: the ℓ₁-regularized logistic regression baseline on MOSS
    (§4.4).  Lists the top-weighted predicates with their coefficients and
    a ground-truth annotation.  The shape to reproduce: the list is
    dominated by sub-bug predictors (excellent predictors of small failure
    subsets) and super-bug predictors (long-command-line-style predicates
    covering failures of several bugs), not one-per-bug predictors. *)

val render : ?top:int -> Harness.bundle -> string
val run : ?config:Harness.config -> ?top:int -> unit -> string
