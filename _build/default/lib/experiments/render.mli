(** Shared rendering for the paper-style predictor tables: thermometer,
    Context, Increase ± CI half-width, S, F, F+S, predicate text. *)

val max_fs_of : Sbi_core.Scores.t list -> int
(** Largest F+S among the rows — the thermometer log scale's full length. *)

val score_table :
  title:string ->
  transform:Sbi_instrument.Transform.t ->
  Sbi_core.Scores.t list ->
  string
(** One thermometer per row (Table 1 format). *)

val selection_table :
  title:string ->
  transform:Sbi_instrument.Transform.t ->
  ?extra_cols:string list * (Sbi_core.Eliminate.selection -> string list) ->
  Sbi_core.Eliminate.selection list ->
  string
(** Initial and effective thermometers per selection (Tables 3–7 format);
    [extra_cols] appends e.g. the ground-truth per-bug counts of Table 3. *)

val fmt_ci : Sbi_util.Stats.interval -> float -> string
(** ["0.824 ± 0.009"]: the point value with the CI half-width. *)
