(** Plain-text table rendering for experiment reports.

    The paper's tables mix thermometers, numeric columns, and predicate
    descriptions; every experiment driver renders through this module so the
    CLI, tests, and benchmark harness all print consistently. *)

type align = Left | Right | Centre

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Appends a data row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Appends a horizontal separator at this position. *)

val render : t -> string
(** Renders with box-drawing rules, column padding, and the title (if any)
    centred above. *)

val pp : Format.formatter -> t -> unit

val render_kv : ?title:string -> (string * string) list -> string
(** Convenience: a two-column key/value table. *)
