(** Statistical primitives used by the cause-isolation algorithm.

    Everything here is implemented from first principles (no external
    statistics library): the normal distribution, proportion confidence
    intervals, the two-proportion Z test underlying the paper's
    [Increase(P) > 0] pruning rule (§3.2), and the delta-method confidence
    interval for the harmonic-mean [Importance] score (§3.3). *)

(** {1 Descriptive statistics} *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 when fewer than two points. *)

val stddev : float array -> float

val median : float array -> float
(** Median (average of middle two for even length); 0 on empty. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation. *)

(** {1 Normal distribution} *)

val erf : float -> float
(** Error function, Abramowitz–Stegun 7.1.26 (|error| <= 1.5e-7). *)

val normal_cdf : float -> float
(** Standard normal CDF. *)

val normal_quantile : float -> float
(** Inverse standard normal CDF (Acklam's algorithm, relative error
    < 1.15e-9).  @raise Invalid_argument outside (0, 1). *)

val z_95 : float
(** Two-sided 95% critical value, 1.959964. *)

(** {1 Intervals} *)

type interval = { lo : float; hi : float }

val interval_width : interval -> float
val interval_contains : interval -> float -> bool

val proportion_ci : ?confidence:float -> successes:int -> trials:int -> unit -> interval
(** Wilson score interval for a binomial proportion.  Well-behaved for small
    counts and extreme proportions.  [trials = 0] yields [{lo=0.; hi=1.}]. *)

val wald_proportion_ci : ?confidence:float -> successes:int -> trials:int -> unit -> interval
(** Classical Wald interval, clamped to [\[0,1\]]; used where the paper's
    normal-approximation formulas apply. *)

(** {1 The paper's score statistics} *)

val increase_stderr : f:int -> s:int -> f_obs:int -> s_obs:int -> float
(** Standard error of [Increase(P) = Failure(P) - Context(P)] treating
    Failure and Context as independent binomial proportions:
    Failure = f/(f+s) over runs where P was true, Context = F(obs)/(F+S obs)
    over runs where P's site was sampled. *)

val increase_ci : ?confidence:float -> f:int -> s:int -> f_obs:int -> s_obs:int -> unit -> interval
(** Normal-approximation CI for Increase(P). *)

val two_proportion_z : f:int -> s:int -> f_obs:int -> s_obs:int -> float
(** The §3.2 likelihood-ratio test statistic
    Z = (p_f - p_s) / sqrt(Var), with p_f = f / f_obs, p_s = s / s_obs and
    pooled variance.  Positive Z favours H1 : p_f > p_s.  Returns 0 when a
    denominator vanishes. *)

(** {1 Harmonic mean and its delta-method interval} *)

val harmonic_mean2 : float -> float -> float
(** Harmonic mean of two non-negative numbers; 0 if either is <= 0. *)

val importance_ci :
  ?confidence:float ->
  increase:float ->
  increase_stderr:float ->
  sensitivity:float ->
  sensitivity_stderr:float ->
  unit ->
  interval
(** Delta-method CI for the harmonic mean H(x, y) = 2/(1/x + 1/y) of
    Increase and normalized-log-failure sensitivity, propagating the two
    standard errors through the partial derivatives of H. *)

(** {1 Misc} *)

val log_ratio : int -> int -> float
(** [log_ratio f num_f] = log(f) / log(num_f), the paper's sensitivity term;
    conventions: 0 when [f <= 0] or [num_f <= 1]; 1 when [f >= num_f]. *)

val clamp : float -> float -> float -> float
(** [clamp lo hi x]. *)
