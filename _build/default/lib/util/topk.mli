(** Bounded top-k selection without sorting the whole input.

    Keeps the k best elements seen so far in a small binary min-heap keyed
    by the caller's comparison; [O(n log k)] overall, versus [O(n log n)]
    for sort-then-take.  Used by the ranking layer, where n is the full
    predicate population and k is a table's row count. *)

type 'a t

val create : k:int -> compare:('a -> 'a -> int) -> 'a t
(** [create ~k ~compare] keeps the [k] largest elements under [compare]
    (i.e. the elements that sort *last* ascending).  @raise
    Invalid_argument if [k < 0]. *)

val add : 'a t -> 'a -> unit

val to_sorted_list : 'a t -> 'a list
(** The retained elements, best first.  Does not clear the selector. *)

val count : 'a t -> int
(** Number of retained elements (at most k). *)

val top : k:int -> compare:('a -> 'a -> int) -> 'a array -> 'a list
(** One-shot convenience over an array; best first.  [compare] ascending —
    the result is the k greatest. *)
