type align = Left | Right | Centre

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  let headers = List.map fst columns in
  let aligns = Array.of_list (List.map snd columns) in
  { title; headers; aligns; rows = [] }

let ncols t = List.length t.headers

let add_row t cells =
  let n = ncols t in
  let len = List.length cells in
  if len > n then invalid_arg "Texttab.add_row: too many cells";
  let cells = if len < n then cells @ List.init (n - len) (fun _ -> "") else cells in
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

(* Display width: count UTF-8 codepoints, assuming every codepoint we emit
   renders one column wide (true for ASCII and the block/shade characters
   the thermometer uses). *)
let display_width s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else begin
      let c = Char.code s.[i] in
      let step =
        if c < 0x80 then 1
        else if c < 0xE0 then 2
        else if c < 0xF0 then 3
        else 4
      in
      go (i + step) (acc + 1)
    end
  in
  go 0 0

let pad align width s =
  let w = display_width s in
  if w >= width then s
  else begin
    let slack = width - w in
    match align with
    | Left -> s ^ String.make slack ' '
    | Right -> String.make slack ' ' ^ s
    | Centre ->
        let l = slack / 2 in
        String.make l ' ' ^ s ^ String.make (slack - l) ' '
  end

let render t =
  let n = ncols t in
  let widths = Array.make n 0 in
  let consider cells =
    List.iteri
      (fun i c -> if i < n then widths.(i) <- max widths.(i) (display_width c))
      cells
  in
  consider t.headers;
  List.iter (function Cells cs -> consider cs | Rule -> ()) t.rows;
  let buf = Buffer.create 1024 in
  let rule ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        if i < n then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf (pad t.aligns.(i) widths.(i) c);
          Buffer.add_string buf " |"
        end)
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left (fun acc w -> acc + w + 3) 1 widths in
  (match t.title with
  | None -> ()
  | Some title ->
      let w = display_width title in
      let slack = if total_width > w then (total_width - w) / 2 else 0 in
      Buffer.add_string buf (String.make slack ' ');
      Buffer.add_string buf title;
      Buffer.add_char buf '\n');
  rule '-';
  emit_cells t.headers;
  rule '=';
  List.iter
    (function Cells cs -> emit_cells cs | Rule -> rule '-')
    (List.rev t.rows);
  rule '-';
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (render t)

let render_kv ?title pairs =
  let t = create ?title [ ("key", Left); ("value", Left) ] in
  List.iter (fun (k, v) -> add_row t [ k; v ]) pairs;
  render t
