lib/util/texttab.ml: Array Buffer Char Format List String
