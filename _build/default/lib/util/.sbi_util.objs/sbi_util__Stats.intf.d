lib/util/stats.mli:
