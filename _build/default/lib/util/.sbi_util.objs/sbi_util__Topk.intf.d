lib/util/topk.mli:
