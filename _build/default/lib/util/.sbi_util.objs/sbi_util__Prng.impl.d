lib/util/prng.ml: Array Fun Int64 List
