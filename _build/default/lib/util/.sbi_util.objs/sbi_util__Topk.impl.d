lib/util/topk.ml: Array
