lib/util/prng.mli:
