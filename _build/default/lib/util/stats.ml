let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let ys = sorted_copy xs in
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then ys.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (ys.(lo) *. (1. -. frac)) +. (ys.(hi) *. frac)
    end
  end

let median xs = percentile xs 50.

(* Abramowitz & Stegun 7.1.26. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = abs_float x in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let t = 1. /. (1. +. (p *. x)) in
  let poly = ((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1) *. t in
  let y = 1. -. (poly *. exp (-.x *. x)) in
  sign *. y

let normal_cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))

(* Acklam's inverse normal CDF approximation. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Stats.normal_quantile: p must be in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1. -. p_low in
  if p < p_low then begin
    let q = sqrt (-2. *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5)
    |> fun num ->
    num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  end
  else if p <= p_high then begin
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)) *. q
    in
    let den = ((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1. in
    num /. den
  end
  else begin
    let q = sqrt (-2. *. log (1. -. p)) in
    let num = ((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5) in
    let den = (((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1. in
    -.num /. den
  end

let z_95 = 1.959963984540054

type interval = { lo : float; hi : float }

let interval_width { lo; hi } = hi -. lo
let interval_contains { lo; hi } x = lo <= x && x <= hi

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let critical_z confidence =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Stats: confidence must be in (0,1)";
  normal_quantile (1. -. ((1. -. confidence) /. 2.))

let proportion_ci ?(confidence = 0.95) ~successes ~trials () =
  if trials <= 0 then { lo = 0.; hi = 1. }
  else begin
    let z = critical_z confidence in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let centre = (p +. (z2 /. (2. *. n))) /. denom in
    let half =
      z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) /. denom
    in
    { lo = clamp 0. 1. (centre -. half); hi = clamp 0. 1. (centre +. half) }
  end

let wald_proportion_ci ?(confidence = 0.95) ~successes ~trials () =
  if trials <= 0 then { lo = 0.; hi = 1. }
  else begin
    let z = critical_z confidence in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let half = z *. sqrt (p *. (1. -. p) /. n) in
    { lo = clamp 0. 1. (p -. half); hi = clamp 0. 1. (p +. half) }
  end

let increase_stderr ~f ~s ~f_obs ~s_obs =
  let n_true = f + s in
  let n_obs = f_obs + s_obs in
  if n_true = 0 || n_obs = 0 then infinity
  else begin
    let p_fail = float_of_int f /. float_of_int n_true in
    let p_ctx = float_of_int f_obs /. float_of_int n_obs in
    let v_fail = p_fail *. (1. -. p_fail) /. float_of_int n_true in
    let v_ctx = p_ctx *. (1. -. p_ctx) /. float_of_int n_obs in
    sqrt (v_fail +. v_ctx)
  end

let increase_ci ?(confidence = 0.95) ~f ~s ~f_obs ~s_obs () =
  let n_true = f + s in
  let n_obs = f_obs + s_obs in
  if n_true = 0 || n_obs = 0 then { lo = -1.; hi = 1. }
  else begin
    let z = critical_z confidence in
    let inc =
      (float_of_int f /. float_of_int n_true)
      -. (float_of_int f_obs /. float_of_int n_obs)
    in
    let se = increase_stderr ~f ~s ~f_obs ~s_obs in
    { lo = clamp (-1.) 1. (inc -. (z *. se)); hi = clamp (-1.) 1. (inc +. (z *. se)) }
  end

let two_proportion_z ~f ~s ~f_obs ~s_obs =
  (* §3.2: heads probabilities p_f = F(P)/F(P observed), p_s = S(P)/S(P
     observed), tested with a pooled-variance Z statistic. *)
  if f_obs = 0 || s_obs = 0 then 0.
  else begin
    let pf = float_of_int f /. float_of_int f_obs in
    let ps = float_of_int s /. float_of_int s_obs in
    let pooled = float_of_int (f + s) /. float_of_int (f_obs + s_obs) in
    let var =
      pooled *. (1. -. pooled)
      *. ((1. /. float_of_int f_obs) +. (1. /. float_of_int s_obs))
    in
    if var <= 0. then 0. else (pf -. ps) /. sqrt var
  end

let harmonic_mean2 x y = if x <= 0. || y <= 0. then 0. else 2. /. ((1. /. x) +. (1. /. y))

let importance_ci ?(confidence = 0.95) ~increase ~increase_stderr ~sensitivity
    ~sensitivity_stderr () =
  let h = harmonic_mean2 increase sensitivity in
  if h <= 0. then { lo = 0.; hi = 0. }
  else begin
    (* H(x,y) = 2xy/(x+y); dH/dx = 2y^2/(x+y)^2, dH/dy = 2x^2/(x+y)^2. *)
    let x = increase and y = sensitivity in
    let denom = (x +. y) *. (x +. y) in
    let dx = 2. *. y *. y /. denom in
    let dy = 2. *. x *. x /. denom in
    let var =
      (dx *. dx *. increase_stderr *. increase_stderr)
      +. (dy *. dy *. sensitivity_stderr *. sensitivity_stderr)
    in
    let z = critical_z confidence in
    let half = z *. sqrt var in
    { lo = clamp 0. 1. (h -. half); hi = clamp 0. 1. (h +. half) }
  end

let log_ratio f num_f =
  if f <= 0 || num_f <= 1 then 0.
  else if f >= num_f then 1.
  else log (float_of_int f) /. log (float_of_int num_f)
