(* Binary min-heap of at most k elements: the root is the worst retained
   element, evicted when something better arrives. *)

type 'a t = {
  k : int;
  compare : 'a -> 'a -> int;
  mutable heap : 'a array;  (* [|0..size-1|] valid *)
  mutable size : int;
}

let create ~k ~compare =
  if k < 0 then invalid_arg "Topk.create: k must be non-negative";
  { k; compare; heap = [||]; size = 0 }

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.compare t.heap.(i) t.heap.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = ref i in
  if l < t.size && t.compare t.heap.(l) t.heap.(!smallest) < 0 then smallest := l;
  if r < t.size && t.compare t.heap.(r) t.heap.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t x =
  if t.k = 0 then ()
  else if t.size < t.k then begin
    if t.size >= Array.length t.heap then begin
      let bigger = Array.make (max 4 (min t.k (2 * (t.size + 1)))) x in
      Array.blit t.heap 0 bigger 0 t.size;
      t.heap <- bigger
    end;
    t.heap.(t.size) <- x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)
  end
  else if t.compare x t.heap.(0) > 0 then begin
    t.heap.(0) <- x;
    sift_down t 0
  end

let count t = t.size

let to_sorted_list t =
  let items = Array.sub t.heap 0 t.size in
  Array.sort (fun a b -> t.compare b a) items;
  Array.to_list items

let top ~k ~compare arr =
  let t = create ~k ~compare in
  Array.iter (add t) arr;
  to_sorted_list t
