open Sbi_lang

let as_int_opt = function Value.VInt n -> Some n | _ -> None

let hooks (t : Transform.t) ~visit ~record =
  let plan = t.Transform.plan in
  let entry sid = if sid >= 0 && sid < Array.length plan then plan.(sid) else Transform.E_none in
  let observe_sextet site x y = record ~site ~truths:(Site.eval_sextet x y) in
  let on_branch ~sid cond =
    match entry sid with
    | Transform.E_branch site -> if visit site then record ~site ~truths:(Site.eval_branch cond)
    | _ -> ()
  in
  let on_scalar_assign ~sid ~lhs ~old_value ~read =
    match entry sid with
    | Transform.E_assign { lhs = planned_lhs; pair_sites; ret_site } ->
        if Rast.var_ref_equal lhs planned_lhs then begin
          let observe_pair site partner x =
            match partner with
            | Site.P_var (ref_, _) -> (
                match as_int_opt (read ref_) with
                | Some y -> observe_sextet site x y
                | None -> ())
            | Site.P_const c -> observe_sextet site x c
            | Site.P_old -> (
                match old_value with
                | Some (Value.VInt y) -> observe_sextet site x y
                | _ -> ())
          in
          List.iter
            (fun (site, partner) ->
              if visit site then begin
                match read lhs with
                | Value.VInt x -> observe_pair site partner x
                | _ -> ()
              end)
            pair_sites;
          match ret_site with
          | Some site ->
              if visit site then begin
                match read lhs with
                | Value.VInt x -> observe_sextet site x 0
                | _ -> ()
              end
          | None -> ()
        end
    | _ -> ()
  in
  let on_call_result ~sid value =
    match entry sid with
    | Transform.E_call_ret site ->
        if visit site then begin
          match as_int_opt value with
          | Some x -> observe_sextet site x 0
          | None -> ()
        end
    | _ -> ()
  in
  let expr_plan = t.Transform.expr_plan in
  let on_cond_operand ~eid value =
    if eid >= 0 && eid < Array.length expr_plan then begin
      let site = expr_plan.(eid) in
      if site >= 0 && visit site then record ~site ~truths:(Site.eval_branch value)
    end
  in
  { Interp.on_branch; on_scalar_assign; on_call_result; on_cond_operand }
