type scheme = Branches | Returns | Scalar_pairs

let scheme_to_string = function
  | Branches -> "branches"
  | Returns -> "returns"
  | Scalar_pairs -> "scalar-pairs"

type partner =
  | P_var of Sbi_lang.Rast.var_ref * string
  | P_const of int
  | P_old

let partner_to_string = function
  | P_var (_, name) -> name
  | P_const n -> string_of_int n
  | P_old -> "old value"

type t = {
  site_id : int;
  scheme : scheme;
  fn_name : string;
  site_loc : Sbi_lang.Loc.t;
  subject : string;
  partner : partner option;
  first_pred : int;
  num_preds : int;
}

type predicate = { pred_id : int; pred_site : int; pred_text : string }

let num_preds_of_scheme = function Branches -> 2 | Returns -> 6 | Scalar_pairs -> 6

let sextet_texts x y =
  [
    Printf.sprintf "%s < %s" x y;
    Printf.sprintf "%s <= %s" x y;
    Printf.sprintf "%s > %s" x y;
    Printf.sprintf "%s >= %s" x y;
    Printf.sprintf "%s == %s" x y;
    Printf.sprintf "%s != %s" x y;
  ]

let predicate_texts site =
  match site.scheme with
  | Branches ->
      [
        Printf.sprintf "%s is TRUE" site.subject;
        Printf.sprintf "%s is FALSE" site.subject;
      ]
  | Returns -> sextet_texts (site.subject ^ "()") "0"
  | Scalar_pairs -> (
      match site.partner with
      | Some P_old ->
          List.map
            (fun op -> Printf.sprintf "new value of %s %s old value of %s" site.subject op site.subject)
            [ "<"; "<="; ">"; ">="; "=="; "!=" ]
      | Some p -> sextet_texts site.subject (partner_to_string p)
      | None -> sextet_texts site.subject "?")

let eval_branch c = [| c; not c |]

let eval_sextet x y = [| x < y; x <= y; x > y; x >= y; x = y; x <> y |]
