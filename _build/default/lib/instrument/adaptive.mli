(** Non-uniform sampling rates (§4).

    The paper sets per-predicate sampling rates inversely proportional to
    execution frequency: from a training set of runs, each site's rate is
    chosen so that roughly [target] samples of it are expected per
    subsequent run, clamped below at [min_rate] (1/100), and set to 1.0 for
    sites expected to be reached fewer than [target] times.  This prevents
    equivalent rare predicates from being observed in near-disjoint run
    sets (which would defeat redundancy elimination), while keeping hot
    sites cheap. *)

val rates_of_counts :
  ?target:int -> ?min_rate:float -> runs:int -> visits:int array -> unit -> float array
(** [rates_of_counts ~runs ~visits ()] converts total per-site visit counts
    over [runs] training executions into a rate array:
    rate = clamp(min_rate, 1, target / mean-visits-per-run); sites never
    visited in training get rate 1.0.  Defaults: [target = 100],
    [min_rate = 0.01]. *)

val count_visits :
  Transform.t -> run:(Sbi_lang.Interp.hooks -> Sbi_lang.Interp.result) -> ntrain:int -> int array
(** Executes [ntrain] training runs (the caller supplies the run driver,
    already closed over the program and each run's input) with hooks that
    count every site visit, and returns total visits per site. *)

val train :
  Transform.t ->
  run:(Sbi_lang.Interp.hooks -> Sbi_lang.Interp.result) ->
  ntrain:int ->
  Sampler.plan
(** [count_visits] followed by [rates_of_counts], yielding a
    [Sampler.Per_site] plan — the paper's 1,000-run training setup is
    [ntrain = 1000]. *)
