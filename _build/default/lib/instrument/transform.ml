open Sbi_lang
open Rast

type config = {
  enable_branches : bool;
  enable_returns : bool;
  enable_pairs : bool;
  shortcircuit_operands : bool;
  max_consts_per_func : int;
  pairs_include_old : bool;
  pairs_include_globals : bool;
}

let default_config =
  {
    enable_branches = true;
    enable_returns = true;
    enable_pairs = true;
    shortcircuit_operands = true;
    max_consts_per_func = 6;
    pairs_include_old = true;
    pairs_include_globals = true;
  }

type entry =
  | E_none
  | E_branch of int
  | E_assign of {
      lhs : Rast.var_ref;
      pair_sites : (int * Site.partner) list;
      ret_site : int option;
    }
  | E_call_ret of int

type t = {
  prog : Rast.rprog;
  sites : Site.t array;
  preds : Site.predicate array;
  plan : entry array;
  expr_plan : int array;
      (* expression id -> branches site id for short-circuit operands, -1
         when the expression is not an instrumented operand *)
}

(* --- compact rendering of resolved expressions for predicate names --- *)

let rec rexpr_to_string (e : rexpr) =
  match e.re with
  | RInt n -> string_of_int n
  | RBool b -> if b then "true" else "false"
  | RStr s -> Printf.sprintf "%S" s
  | RNull -> "null"
  | RVar (_, name) -> name
  | RUnop (op, inner) -> Ast.unop_to_string op ^ rexpr_to_string inner
  | RBinop (op, l, r) ->
      Printf.sprintf "%s %s %s" (rexpr_to_string l) (Ast.binop_to_string op)
        (rexpr_to_string r)
  | RCall (CUser (_, name), _) -> name ^ "(...)"
  | RCall (CBuiltin b, _) -> builtin_name b ^ "(...)"
  | RIndex (arr, idx) -> Printf.sprintf "%s[%s]" (rexpr_to_string arr) (rexpr_to_string idx)
  | RField (obj, _, fld) -> Printf.sprintf "%s.%s" (rexpr_to_string obj) fld
  | RNewArray (ty, len) ->
      Printf.sprintf "new %s[%s]" (Ast.ty_to_string ty) (rexpr_to_string len)
  | RNewStruct sid -> Printf.sprintf "new struct#%d" sid

(* --- integer literal pool per function --- *)

let rec collect_ints_expr acc (e : rexpr) =
  match e.re with
  | RInt n -> n :: acc
  | RBool _ | RStr _ | RNull | RVar _ -> acc
  | RUnop (Ast.Neg, { re = RInt n; _ }) -> -n :: acc
  | RUnop (_, inner) -> collect_ints_expr acc inner
  | RBinop (_, l, r) -> collect_ints_expr (collect_ints_expr acc l) r
  | RCall (_, args) -> List.fold_left collect_ints_expr acc args
  | RIndex (a, i) -> collect_ints_expr (collect_ints_expr acc a) i
  | RField (o, _, _) -> collect_ints_expr acc o
  | RNewArray (_, l) -> collect_ints_expr acc l
  | RNewStruct _ -> acc

let rec collect_ints_stmt acc (st : rstmt) =
  match st.rs with
  | RDecl (_, _, _, Some e) -> collect_ints_expr acc e
  | RDecl (_, _, _, None) -> acc
  | RAssign (_, lv, e) ->
      let acc = collect_ints_expr acc e in
      (match lv with
      | RLVar _ -> acc
      | RLIndex (a, i) -> collect_ints_expr (collect_ints_expr acc a) i
      | RLField (o, _, _) -> collect_ints_expr acc o)
  | RExpr e -> collect_ints_expr acc e
  | RIf (c, b1, b2) ->
      let acc = collect_ints_expr acc c in
      let acc = List.fold_left collect_ints_stmt acc b1 in
      List.fold_left collect_ints_stmt acc b2
  | RWhile (c, b) -> List.fold_left collect_ints_stmt (collect_ints_expr acc c) b
  | RFor (init, c, step, b) ->
      let acc = collect_ints_stmt acc init in
      let acc = collect_ints_expr acc c in
      let acc = collect_ints_stmt acc step in
      List.fold_left collect_ints_stmt acc b
  | RReturn (Some e) -> collect_ints_expr acc e
  | RReturn None | RBreak | RContinue -> acc
  | RBlockS b -> List.fold_left collect_ints_stmt acc b

let const_pool cfg (fn : rfunc) =
  let all = List.rev (List.fold_left collect_ints_stmt [] fn.rf_body) in
  let seen = Hashtbl.create 16 in
  let pool =
    List.filter
      (fun n ->
        if Hashtbl.mem seen n then false
        else begin
          Hashtbl.replace seen n ();
          true
        end)
      all
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take cfg.max_consts_per_func pool

(* --- the walk --- *)

type builder = {
  cfg : config;
  prog_globals : (string * Ast.ty) array;
  mutable sites_rev : Site.t list;
  mutable nsites : int;
  mutable npreds : int;
  plan : entry array;
  expr_plan : int array;
  (* scope stack for the current function: innermost first *)
  mutable scopes : (string * Rast.var_ref * Ast.ty) list list;
  mutable cur_fn : string;
  mutable cur_consts : int list;
}

let new_site b scheme ~loc ~subject ~partner =
  let num_preds = Site.num_preds_of_scheme scheme in
  let site =
    {
      Site.site_id = b.nsites;
      scheme;
      fn_name = b.cur_fn;
      site_loc = loc;
      subject;
      partner;
      first_pred = b.npreds;
      num_preds;
    }
  in
  b.sites_rev <- site :: b.sites_rev;
  b.nsites <- b.nsites + 1;
  b.npreds <- b.npreds + num_preds;
  site.Site.site_id

let in_scope_int_vars b ~excluding ~excluding_name =
  (* Innermost-scope-first, shadowing respected, globals last (if enabled),
     excluding the assigned variable itself — by reference AND by name, so a
     declaration does not pair its fresh variable with the same-named outer
     variable it shadows. *)
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let consider name ref_ ty =
    if
      Ast.ty_equal ty Ast.TInt
      && (not (Hashtbl.mem seen name))
      && (not (Rast.var_ref_equal ref_ excluding))
      && not (String.equal name excluding_name)
    then begin
      Hashtbl.replace seen name ();
      acc := (name, ref_) :: !acc
    end
    else if Hashtbl.mem seen name then ()
    else Hashtbl.replace seen name ()
  in
  List.iter (fun scope -> List.iter (fun (n, r, t) -> consider n r t) scope) b.scopes;
  if b.cfg.pairs_include_globals then
    Array.iteri (fun i (n, t) -> consider n (RGlobal i) t) b.prog_globals;
  List.rev !acc

let declare b name ref_ ty =
  match b.scopes with
  | scope :: rest -> b.scopes <- ((name, ref_, ty) :: scope) :: rest
  | [] -> assert false

let push_scope b = b.scopes <- [] :: b.scopes
let pop_scope b = match b.scopes with _ :: rest -> b.scopes <- rest | [] -> assert false

let callee_name = function
  | CUser (_, name) -> name
  | CBuiltin bi -> Rast.builtin_name bi

(* Short-circuit operands: each operand of a && / || is an implicit
   conditional (§2) and gets its own branches site, keyed by expression
   id.  Operands are instrumented recursively — `(a && b) || c` yields
   sites for `a`, `b`, `a && b`, and `c`. *)
let rec plan_shortcircuit b (e : rexpr) =
  match e.re with
  | RBinop ((Ast.And | Ast.Or), l, r) ->
      let operand operand_e =
        if b.expr_plan.(operand_e.reid) < 0 then begin
          let site =
            new_site b Site.Branches ~loc:operand_e.rloc
              ~subject:(rexpr_to_string operand_e) ~partner:None
          in
          b.expr_plan.(operand_e.reid) <- site
        end
      in
      operand l;
      operand r;
      plan_shortcircuit b l;
      plan_shortcircuit b r
  | RUnop (_, inner) -> plan_shortcircuit b inner
  | RBinop (_, l, r) ->
      plan_shortcircuit b l;
      plan_shortcircuit b r
  | RCall (_, args) -> List.iter (plan_shortcircuit b) args
  | RIndex (a, i) ->
      plan_shortcircuit b a;
      plan_shortcircuit b i
  | RField (o, _, _) -> plan_shortcircuit b o
  | RNewArray (_, l) -> plan_shortcircuit b l
  | RInt _ | RBool _ | RStr _ | RNull | RVar _ | RNewStruct _ -> ()

let plan_shortcircuit_stmt b (st : rstmt) =
  if b.cfg.enable_branches && b.cfg.shortcircuit_operands then begin
    let expr = plan_shortcircuit b in
    match st.rs with
    | RDecl (_, _, _, Some e) -> expr e
    | RDecl (_, _, _, None) -> ()
    | RAssign (_, lv, e) -> (
        expr e;
        match lv with
        | RLVar _ -> ()
        | RLIndex (a, i) ->
            expr a;
            expr i
        | RLField (o, _, _) -> expr o)
    | RExpr e -> expr e
    | RIf (c, _, _) | RWhile (c, _) | RFor (_, c, _, _) -> expr c
    | RReturn (Some e) -> expr e
    | RReturn None | RBreak | RContinue | RBlockS _ -> ()
  end

(* Scalar-pairs + returns sites for an assignment to an int variable. *)
let plan_scalar_assign b ~sid ~loc ~lhs_ref ~lhs_name ~(rhs : rexpr option) ~is_decl =
  let pair_sites =
    if not b.cfg.enable_pairs then []
    else begin
      let var_partners =
        List.map
          (fun (name, ref_) ->
            let partner = Site.P_var (ref_, name) in
            let sid' = new_site b Site.Scalar_pairs ~loc ~subject:lhs_name ~partner:(Some partner) in
            (sid', partner))
          (in_scope_int_vars b ~excluding:lhs_ref ~excluding_name:lhs_name)
      in
      let const_partners =
        List.map
          (fun c ->
            let partner = Site.P_const c in
            let sid' = new_site b Site.Scalar_pairs ~loc ~subject:lhs_name ~partner:(Some partner) in
            (sid', partner))
          b.cur_consts
      in
      let old_partner =
        if b.cfg.pairs_include_old && not is_decl then begin
          let partner = Site.P_old in
          let sid' = new_site b Site.Scalar_pairs ~loc ~subject:lhs_name ~partner:(Some partner) in
          [ (sid', partner) ]
        end
        else []
      in
      var_partners @ const_partners @ old_partner
    end
  in
  let ret_site =
    match rhs with
    | Some { re = RCall (target, _); rty = Ast.TInt; _ } when b.cfg.enable_returns ->
        Some (new_site b Site.Returns ~loc ~subject:(callee_name target) ~partner:None)
    | _ -> None
  in
  if pair_sites = [] && ret_site = None then ()
  else b.plan.(sid) <- E_assign { lhs = lhs_ref; pair_sites; ret_site }

let rec walk_stmt b (st : rstmt) =
  plan_shortcircuit_stmt b st;
  let loc = st.rsloc in
  match st.rs with
  | RDecl (ty, slot, name, init) ->
      if Ast.ty_equal ty Ast.TInt && init <> None then
        plan_scalar_assign b ~sid:st.rsid ~loc ~lhs_ref:(RLocal slot) ~lhs_name:name
          ~rhs:init ~is_decl:true;
      declare b name (RLocal slot) ty
  | RAssign (lty, RLVar (ref_, name), rhs) ->
      if Ast.ty_equal lty Ast.TInt then
        plan_scalar_assign b ~sid:st.rsid ~loc ~lhs_ref:ref_ ~lhs_name:name ~rhs:(Some rhs)
          ~is_decl:false
  | RAssign (_, (RLIndex _ | RLField _), _) -> ()
  | RExpr e -> (
      match (e.re, e.rty) with
      | RCall (target, _), Ast.TInt when b.cfg.enable_returns ->
          let sid' = new_site b Site.Returns ~loc ~subject:(callee_name target) ~partner:None in
          b.plan.(st.rsid) <- E_call_ret sid'
      | _ -> ())
  | RIf (cond, then_b, else_b) ->
      if b.cfg.enable_branches then begin
        let sid' =
          new_site b Site.Branches ~loc ~subject:(rexpr_to_string cond) ~partner:None
        in
        b.plan.(st.rsid) <- E_branch sid'
      end;
      walk_block b then_b;
      walk_block b else_b
  | RWhile (cond, body) ->
      if b.cfg.enable_branches then begin
        let sid' =
          new_site b Site.Branches ~loc ~subject:(rexpr_to_string cond) ~partner:None
        in
        b.plan.(st.rsid) <- E_branch sid'
      end;
      walk_block b body
  | RFor (init, cond, step, body) ->
      push_scope b;
      walk_stmt b init;
      if b.cfg.enable_branches then begin
        let sid' =
          new_site b Site.Branches ~loc ~subject:(rexpr_to_string cond) ~partner:None
        in
        b.plan.(st.rsid) <- E_branch sid'
      end;
      walk_stmt b step;
      walk_block b body;
      pop_scope b
  | RReturn _ | RBreak | RContinue -> ()
  | RBlockS body -> walk_block b body

and walk_block b block =
  push_scope b;
  List.iter (walk_stmt b) block;
  pop_scope b

let instrument ?(config = default_config) (prog : rprog) =
  let b =
    {
      cfg = config;
      prog_globals = Array.map (fun (n, ty, _) -> (n, ty)) prog.rp_globals;
      sites_rev = [];
      nsites = 0;
      npreds = 0;
      plan = Array.make (max prog.rp_max_sid 1) E_none;
      expr_plan = Array.make (max prog.rp_max_eid 1) (-1);
      scopes = [];
      cur_fn = "";
      cur_consts = [];
    }
  in
  Array.iter
    (fun fn ->
      b.cur_fn <- fn.rf_name;
      b.cur_consts <- (if config.enable_pairs then const_pool config fn else []);
      b.scopes <- [];
      push_scope b;
      List.iteri (fun i (name, ty) -> declare b name (RLocal i) ty) fn.rf_params;
      walk_block b fn.rf_body;
      pop_scope b)
    prog.rp_funcs;
  let sites = Array.of_list (List.rev b.sites_rev) in
  let preds =
    Array.make b.npreds { Site.pred_id = 0; pred_site = 0; pred_text = "" }
  in
  Array.iter
    (fun (site : Site.t) ->
      List.iteri
        (fun i text ->
          let pid = site.Site.first_pred + i in
          preds.(pid) <- { Site.pred_id = pid; pred_site = site.Site.site_id; pred_text = text })
        (Site.predicate_texts site))
    sites;
  { prog; sites; preds; plan = b.plan; expr_plan = b.expr_plan }

let num_sites t = Array.length t.sites
let num_preds t = Array.length t.preds
let site_of_pred t pid = t.sites.(t.preds.(pid).Site.pred_site)
let pred_text t pid = t.preds.(pid).Site.pred_text
let pred_loc t pid = (site_of_pred t pid).Site.site_loc
let pred_fn t pid = (site_of_pred t pid).Site.fn_name

let describe_pred t pid =
  let site = site_of_pred t pid in
  Printf.sprintf "%s  @ %s:%d (%s, %s)" (pred_text t pid) site.Site.site_loc.Loc.file
    site.Site.site_loc.Loc.line site.Site.fn_name
    (Site.scheme_to_string site.Site.scheme)
