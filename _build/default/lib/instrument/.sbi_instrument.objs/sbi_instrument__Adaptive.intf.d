lib/instrument/adaptive.mli: Sampler Sbi_lang Transform
