lib/instrument/observe.mli: Sbi_lang Transform
