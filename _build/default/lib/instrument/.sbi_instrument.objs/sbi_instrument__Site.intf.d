lib/instrument/site.mli: Sbi_lang
