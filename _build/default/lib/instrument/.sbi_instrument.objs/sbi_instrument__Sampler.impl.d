lib/instrument/sampler.ml: Array Sbi_util
