lib/instrument/observe.ml: Array Interp List Rast Sbi_lang Site Transform Value
