lib/instrument/transform.mli: Sbi_lang Site
