lib/instrument/sampler.mli:
