lib/instrument/transform.ml: Array Ast Hashtbl List Loc Printf Rast Sbi_lang Site String
