lib/instrument/site.ml: List Printf Sbi_lang
