lib/instrument/adaptive.ml: Array Observe Sampler Transform
