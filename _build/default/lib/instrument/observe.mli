(** Bridges the instrumentation plan to the interpreter's hooks.

    Each dynamic visit of a planned site first consults [visit] (the
    sampling decision, or a pure visit counter during training); only when
    it returns [true] is the predicate truth vector computed and handed to
    [record].  This mirrors the deployed system, where the sampling check
    guards the instrumentation code itself. *)

val hooks :
  Transform.t ->
  visit:(int -> bool) ->
  record:(site:int -> truths:bool array -> unit) ->
  Sbi_lang.Interp.hooks
(** [visit site] is called once per dynamic opportunity (site reached);
    [record ~site ~truths] receives the per-predicate truth vector
    (length [num_preds] of the site, indexed from the site's first
    predicate) for sampled visits. *)
