let rates_of_counts ?(target = 100) ?(min_rate = 0.01) ~runs ~visits () =
  if runs <= 0 then invalid_arg "Adaptive.rates_of_counts: runs must be positive";
  Array.map
    (fun total ->
      if total <= 0 then 1.0
      else begin
        let mean_per_run = float_of_int total /. float_of_int runs in
        let rate = float_of_int target /. mean_per_run in
        if rate >= 1.0 then 1.0 else if rate < min_rate then min_rate else rate
      end)
    visits

let count_visits (t : Transform.t) ~run ~ntrain =
  let visits = Array.make (Transform.num_sites t) 0 in
  let hooks =
    Observe.hooks t
      ~visit:(fun site ->
        visits.(site) <- visits.(site) + 1;
        false)
      ~record:(fun ~site:_ ~truths:_ -> ())
  in
  for _ = 1 to ntrain do
    ignore (run hooks)
  done;
  visits

let train t ~run ~ntrain =
  let visits = count_visits t ~run ~ntrain in
  Sampler.Per_site (rates_of_counts ~runs:ntrain ~visits ())
