(** Instrumentation sites and predicates.

    Following §2 of the paper: an {e instrumentation site} is a program
    point at which a group of predicates is checked; all predicates of a
    site are {e sampled jointly} — one coin flip per dynamic visit decides
    whether the whole group is observed.  Three schemes are provided:

    - {b branches}: 2 predicates per conditional (condition true / false);
    - {b returns}: 6 predicates per scalar-returning call site
      (returned value [< 0], [<= 0], [> 0], [>= 0], [= 0], [<> 0]);
    - {b scalar-pairs}: 6 predicates per (assigned variable, partner) pair,
      where partners are same-typed in-scope variables, constants from the
      enclosing function, and the variable's own previous value. *)

type scheme = Branches | Returns | Scalar_pairs

val scheme_to_string : scheme -> string

(** Partner of the assigned variable in a scalar-pairs site. *)
type partner =
  | P_var of Sbi_lang.Rast.var_ref * string  (** another in-scope variable *)
  | P_const of int  (** a constant from the enclosing function *)
  | P_old  (** the variable's own value before the assignment *)

val partner_to_string : partner -> string

type t = {
  site_id : int;
  scheme : scheme;
  fn_name : string;  (** enclosing function *)
  site_loc : Sbi_lang.Loc.t;
  subject : string;  (** what is observed: condition text, callee, or lhs *)
  partner : partner option;  (** scalar-pairs only *)
  first_pred : int;  (** global index of this site's first predicate *)
  num_preds : int;  (** 2 for branches, 6 otherwise *)
}

type predicate = {
  pred_id : int;
  pred_site : int;
  pred_text : string;  (** human-readable, e.g. ["f == null is TRUE"] *)
}

val num_preds_of_scheme : scheme -> int

val predicate_texts : t -> string list
(** The [num_preds] texts for a site, in predicate-index order. *)

val eval_branch : bool -> bool array
(** Truth vector for a branches site given the condition value. *)

val eval_sextet : int -> int -> bool array
(** Truth vector [x<y; x<=y; x>y; x>=y; x=y; x<>y] shared by the returns
    scheme (with [y = 0]) and the scalar-pairs scheme. *)
