(** The source-to-source instrumentation transformation (§2).

    Walks a checked program and designates instrumentation sites: one
    branches site per conditional, one returns site per scalar-returning
    call in statement position, and one scalar-pairs site per (assigned
    variable, partner) pair at each scalar assignment.  The result is the
    site/predicate tables plus an {e observation plan} keyed by statement
    id, which the collection runtime (see {!Sbi_runtime}) executes through
    the interpreter's hooks — semantically identical to textually inserting
    sampled instrumentation statements, but without perturbing ids. *)

type config = {
  enable_branches : bool;
  enable_returns : bool;
  enable_pairs : bool;
  shortcircuit_operands : bool;
      (** give each operand of a short-circuiting [&&]/[||] its own
          branches site (the paper's "implicit conditionals") *)
  max_consts_per_func : int;
      (** cap on the constant-partner pool drawn from each function's
          integer literals (first occurrence order) *)
  pairs_include_old : bool;
      (** include the "new value vs old value" partner on re-assignments *)
  pairs_include_globals : bool;  (** include int globals as partners *)
}

val default_config : config
(** Everything enabled, at most 6 constants per function. *)

(** Observation to perform when a given statement executes. *)
type entry =
  | E_none
  | E_branch of int  (** branches site id *)
  | E_assign of {
      lhs : Sbi_lang.Rast.var_ref;
      pair_sites : (int * Site.partner) list;  (** site id, partner *)
      ret_site : int option;  (** returns site when the RHS is a direct call *)
    }
  | E_call_ret of int  (** returns site for an expression-statement call *)

type t = {
  prog : Sbi_lang.Rast.rprog;
  sites : Site.t array;
  preds : Site.predicate array;
  plan : entry array;  (** indexed by statement id *)
  expr_plan : int array;
      (** expression id -> branches site for short-circuit operands
          (-1 when uninstrumented) *)
}

val instrument : ?config:config -> Sbi_lang.Rast.rprog -> t

val num_sites : t -> int
val num_preds : t -> int

val site_of_pred : t -> int -> Site.t
val pred_text : t -> int -> string
val pred_loc : t -> int -> Sbi_lang.Loc.t
val pred_fn : t -> int -> string

val describe_pred : t -> int -> string
(** ["<text>  @ file:line (fn, scheme)"] — the display form used in
    experiment tables. *)
