(* EXIF analogue (paper §4.2.3): a tag parser with three independent
   crashing bugs, mirroring the paper's EXIF 0.6.9 findings:

   #1 a backwards scan whose index underflows when no matching earlier
      entry exists ("i < 0");
   #2 an unguarded comment-field copy overrunning the 1900-byte buffer
      ("maxlen > 1900");
   #3 the canon maker-note bug the paper walks through in detail: when
      [o + s > buf_size] the loader returns early and leaves the entry's
      data unallocated; the save phase then reads it — a null dereference
      far from the cause, with a stack trace that names only the save
      path.  Very rare, like the paper's 21-failing-run bug. *)

let source =
  {|
// exifim: EXIF-style tag parser
struct Entry {
  int tag;
  int size;
  int offset;
  int dataok;
  int[] data;
}

int[] buf;
int buf_size;
int buf_used;
Entry[] entries;
int entry_count;
int maxlen;
int checksum;

int split2(string s, int which) {
  // "name:A" or "name:A:B" -> numeric field A (which=0) or B (which=1)
  int c1 = -1;
  int c2 = -1;
  for (int i = 0; i < strlen(s); i = i + 1) {
    if (ord(s, i) == 58) {
      if (c1 < 0) {
        c1 = i;
      } else {
        if (c2 < 0) {
          c2 = i;
        }
      }
    }
  }
  if (c1 < 0) {
    return 0;
  }
  if (which == 0) {
    if (c2 < 0) {
      return parse_int(substr(s, c1 + 1, strlen(s) - c1 - 1));
    }
    return parse_int(substr(s, c1 + 1, c2 - c1 - 1));
  }
  if (c2 < 0) {
    return 0;
  }
  return parse_int(substr(s, c2 + 1, strlen(s) - c2 - 1));
}

string tag_kind(string s) {
  int c1 = -1;
  for (int i = 0; i < strlen(s); i = i + 1) {
    if (ord(s, i) == 58 && c1 < 0) {
      c1 = i;
    }
  }
  if (c1 < 0) {
    return s;
  }
  return substr(s, 0, c1);
}

void load_std(int len) {
  int l = max(1, len);
  if (buf_used + l <= buf_size) {
    for (int j = 0; j < l; j = j + 1) {
      buf[buf_used + j] = (j * 7 + l) % 251;
    }
    buf_used = buf_used + l;
  }
  Entry e = new Entry;
  e.tag = 1;
  e.size = l;
  e.offset = buf_used - l;
  e.dataok = 1;
  entries[entry_count] = e;
  entry_count = entry_count + 1;
}

void load_comment(int len) {
  int l = max(1, len);
  if (l > maxlen) {
    maxlen = l;
  }
  if (buf_used + l > buf_size) {
    // BUG 2: length not validated against the remaining buffer
    __bug(2);
  }
  for (int j = 0; j < l; j = j + 1) {
    buf[buf_used + j] = 67; // crashes past the end of buf (bug 2)
  }
  buf_used = buf_used + l;
  Entry e = new Entry;
  e.tag = 2;
  e.size = l;
  e.offset = buf_used - l;
  e.dataok = 1;
  entries[entry_count] = e;
  entry_count = entry_count + 1;
}

void scan_back(int want) {
  // find the most recent entry with the wanted tag, starting at the end
  bool exists = false;
  for (int j = 0; j < entry_count; j = j + 1) {
    if (entries[j].tag == want) {
      exists = true;
    }
  }
  if (!exists) {
    // BUG 1: the backwards scan below has no lower bound
    __bug(1);
  }
  int i = entry_count - 1;
  while (entries[i].tag != want) {
    i = i - 1; // i goes negative when no entry matches (bug 1)
  }
  println("back " + to_str(entries[i].offset));
}

void canon_load(int o, int s) {
  Entry e = new Entry;
  e.tag = 3;
  e.size = max(1, s);
  e.offset = o;
  e.dataok = 0;
  entries[entry_count] = e;
  entry_count = entry_count + 1;
  if (o + s > buf_size) {
    // BUG 3: early return leaves e.data unallocated; the save phase
    // dereferences it much later (the paper's canon maker-note bug)
    __bug(3);
    return;
  }
  e.data = new int[e.size];
  for (int j = 0; j < e.size; j = j + 1) {
    e.data[j] = (o + j) % 199;
  }
  e.dataok = 1;
}

void canon_save(Entry e) {
  // memcpy analogue: reads e.data, which bug 3 left null
  for (int j = 0; j < e.size; j = j + 1) {
    checksum = (checksum + e.data[j]) % 100003;
  }
}

void save_all() {
  for (int i = 0; i < entry_count; i = i + 1) {
    Entry e = entries[i];
    if (e.tag == 3) {
      canon_save(e);
    } else {
      checksum = (checksum + e.size) % 100003;
    }
  }
  println("checksum " + to_str(checksum));
}

int main() {
  buf_size = 1900;
  buf = new int[1900];
  buf_used = 0;
  entries = new Entry[64];
  entry_count = 0;
  maxlen = 0;
  checksum = 0;
  for (int i = 0; i < argc(); i = i + 1) {
    if (entry_count >= 60) {
      break;
    }
    string t = arg(i);
    string kind = tag_kind(t);
    if (kind == "std") {
      load_std(split2(t, 0));
    }
    if (kind == "com") {
      load_comment(split2(t, 0));
    }
    if (kind == "idx") {
      scan_back(split2(t, 0));
    }
    if (kind == "canon") {
      canon_load(split2(t, 0), split2(t, 1));
    }
  }
  println("entries " + to_str(entry_count) + " used " + to_str(buf_used)
          + " maxlen " + to_str(maxlen));
  save_all();
  return 0;
}
|}

let gen_input ~seed ~run =
  let open Sbi_util in
  let rng = Prng.create ((seed * 5_000_011) + run) in
  let ntags = 1 + Prng.int rng 12 in
  let tags =
    List.init ntags (fun _ ->
        let r = Prng.unit_float rng in
        if r < 0.70 then Printf.sprintf "std:%d" (1 + Prng.int rng 150)
        else if r < 0.82 then begin
          (* comments occasionally oversized *)
          let len =
            if Prng.bernoulli rng 0.12 then 600 + Prng.int rng 1400 else 10 + Prng.int rng 200
          in
          Printf.sprintf "com:%d" len
        end
        else if r < 0.87 then
          (* idx queries: tag 1 (std) usually exists, tag 7 never does *)
          Printf.sprintf "idx:%d" (if Prng.bernoulli rng 0.85 then 1 else 7)
        else if r < 0.95 then Printf.sprintf "seek:%d" (Prng.int rng 100)
        else
          Printf.sprintf "canon:%d:%d" (Prng.int rng 1850) (1 + Prng.int rng 220))
  in
  Array.of_list tags

let study =
  {
    Study.name = "exifim";
    descr = "EXIF analogue: tag parser with three independent crashing bugs (one very rare)";
    source;
    fixed_source = None;
    gen_input = (fun ~seed ~run -> gen_input ~seed ~run);
    bugs =
      [
        { Study.bug_id = 1; bug_descr = "unbounded backwards scan (i < 0)"; crashing = true };
        { Study.bug_id = 2; bug_descr = "comment copy past the 1900-byte buffer"; crashing = true };
        {
          Study.bug_id = 3;
          bug_descr = "canon maker-note: o+s > buf_size leaves data null; save crashes";
          crashing = true;
        };
      ];
    default_runs = 6000;
  }
