(* MOSS analogue: a document-fingerprinting service (winnowing over k-gram
   hashes, as in Schleimer/Wilkerson/Aiken 2003) with the paper's nine
   seeded bugs:

   #1 passage-table overrun: silently corrupts the passage count; the crash
      (out-of-bounds read) happens much later, in the report phase, and
      only with probability 1/4 — a non-deterministic overrun.
   #2 null "file pointer": an empty input file read under -v.  Very rare.
   #3 missing end-of-list check walking a hash-table bucket chain (-b).
   #4 missing out-of-memory check: the node allocator returns null when a
      randomized budget is exhausted; the caller dereferences it.
   #5 data-structure invariant violation: with ten or more input files the
      language id is set to an out-of-table value; the crash happens in the
      report phase when the language-name table is indexed.
   #6 missing check of a lookup result: find_file() returns -1 for an
      unknown -B base file and the caller indexes with it.
   #7 a buffer overrun (scratch winnowing buffer) that never causes
      incorrect behaviour — triggered but harmless, like the paper's #7.
   #8 guarded by a flag the input generator never produces — never
      triggered, like the paper's #8 (its column would be all zeros).
   #9 comment handling: with -c, passages containing comment tokens get an
      off-by-one length — wrong output, no crash; caught by the oracle. *)

let source =
  {|
// mossim: document fingerprinting with winnowing
struct FileRec {
  string name;
  int language;
  int ntokens;
  int ncomments;
  int fpstart;
  int fpcount;
}

struct FPNode {
  int hash;
  int fileid;
  int pos;
  FPNode next;
}

struct Passage {
  int fileid;
  int other;
  int first_token;
  int last_token;
  int length;
}

FileRec[] files;
string[] contents;
FPNode[] buckets;
Passage[] passages;
string[] langnames;
int[] fp_hash;
int[] fp_pos;
int fp_cursor;
int files_count;
int passage_count;
int overrun_corrupt;
int mem_budget;
int mem_used;
int win_size;
int kgram;
int match_comments;
int verbose;
int base_mode;
string base_name;
int max_report;
int zflag;

void init() {
  files = new FileRec[16];
  for (int i = 0; i < 16; i = i + 1) {
    files[i] = new FileRec;
  }
  contents = new string[16];
  buckets = new FPNode[64];
  passages = new Passage[12];
  langnames = new string[17];
  for (int i = 0; i < 17; i = i + 1) {
    langnames[i] = "L" + to_str(i);
  }
  fp_hash = new int[4096];
  fp_pos = new int[4096];
  fp_cursor = 0;
  files_count = 0;
  passage_count = 0;
  overrun_corrupt = 0;
  win_size = 4;
  kgram = 3;
  match_comments = 0;
  verbose = 0;
  base_mode = 0;
  base_name = "";
  max_report = 100;
  zflag = 0;
  mem_used = 0;
  mem_budget = 120 + nondet(80);
}

void parse_flag(string a) {
  if (strlen(a) < 2) {
    return;
  }
  int c = ord(a, 1);
  if (c == 119) { // 'w'
    win_size = max(2, parse_int(substr(a, 2, strlen(a) - 2)));
  }
  if (c == 107) { // 'k'
    kgram = max(2, parse_int(substr(a, 2, strlen(a) - 2)));
  }
  if (c == 99) { // 'c'
    match_comments = 1;
  }
  if (c == 118) { // 'v'
    verbose = 1;
  }
  if (c == 98) { // 'b'
    base_mode = 1;
  }
  if (c == 66) { // 'B'
    base_name = substr(a, 2, strlen(a) - 2);
  }
  if (c == 109) { // 'm'
    max_report = max(1, parse_int(substr(a, 2, strlen(a) - 2)));
  }
  if (c == 122) { // 'z'
    zflag = 1;
  }
}

void add_file(string content) {
  if (files_count >= 16) {
    return;
  }
  files[files_count].name = "f" + to_str(files_count);
  contents[files_count] = content;
  files_count = files_count + 1;
}

int count_tokens(string s) {
  int n = 0;
  bool intok = false;
  for (int i = 0; i < strlen(s); i = i + 1) {
    if (ord(s, i) == 32) {
      intok = false;
    } else {
      if (!intok) {
        n = n + 1;
      }
      intok = true;
    }
  }
  return n;
}

int lang_of(int idx, int ntokens) {
  int lang = (idx * 7 + ntokens) % 17;
  if (idx >= 9) {
    // BUG 5: invariant violation — language id escapes the name table
    __bug(5);
    lang = 17;
  }
  return lang;
}

FPNode alloc_node() {
  mem_used = mem_used + 1;
  if (mem_used > mem_budget) {
    // BUG 4: allocation failure not checked by callers
    __bug(4);
    return null;
  }
  return new FPNode;
}

void insert_fp(int h, int fileid, int pos) {
  int b = h % 64;
  FPNode n = alloc_node();
  n.hash = h; // crashes here when alloc_node returned null (bug 4)
  n.fileid = fileid;
  n.pos = pos;
  n.next = buckets[b];
  buckets[b] = n;
}

int bucket_lookup(int h) {
  int b = h % 64;
  FPNode scan = buckets[b];
  bool present = false;
  while (scan != null) {
    if (scan.hash == h) {
      present = true;
    }
    scan = scan.next;
  }
  if (!present) {
    __bug(3);
  }
  FPNode n = buckets[b];
  // BUG 3: no end-of-list check; runs off the chain when h is absent
  while (n.hash != h) {
    n = n.next;
  }
  return n.fileid;
}

int find_file(string nm) {
  for (int i = 0; i < files_count; i = i + 1) {
    if (files[i].name == nm) {
      return i;
    }
  }
  return -1;
}

void fingerprint_file(int idx) {
  string content = contents[idx];
  int nt = count_tokens(content);
  files[idx].ntokens = nt;
  string[] toks = new string[nt];
  int ti = 0;
  int start = -1;
  for (int i = 0; i < strlen(content); i = i + 1) {
    if (ord(content, i) == 32) {
      if (start >= 0) {
        toks[ti] = substr(content, start, i - start);
        ti = ti + 1;
        start = -1;
      }
    } else {
      if (start < 0) {
        start = i;
      }
    }
  }
  if (start >= 0) {
    toks[ti] = substr(content, start, strlen(content) - start);
    ti = ti + 1;
  }
  if (verbose == 1) {
    if (nt == 0) {
      // BUG 2: empty file; first-token read below goes out of bounds
      __bug(2);
    }
    println("first " + toks[0]);
  }
  int ncom = 0;
  for (int i = 0; i < nt; i = i + 1) {
    if (toks[i] == "//c") {
      ncom = ncom + 1;
    }
  }
  files[idx].ncomments = ncom;
  files[idx].language = lang_of(idx, nt);
  int nk = nt - kgram + 1;
  files[idx].fpstart = fp_cursor;
  files[idx].fpcount = 0;
  if (nk < 1) {
    return;
  }
  int[] hs = new int[nk];
  for (int a = 0; a < nk; a = a + 1) {
    int h = 0;
    for (int b = 0; b < kgram; b = b + 1) {
      h = (h * 31 + (hash_str(toks[a + b]) % 9973)) % 1000003;
    }
    hs[a] = h;
  }
  int w = win_size;
  int[] winbuf = new int[w + 8];
  if (nt > 40) {
    // BUG 7: scratch-buffer overrun that never affects behaviour
    __bug(7);
    winbuf[w + 3] = 12345;
  }
  int prevmin = -1;
  for (int a = 0; a + w <= nk; a = a + 1) {
    int m = hs[a];
    int mpos = a;
    for (int b = 1; b < w; b = b + 1) {
      winbuf[b] = hs[a + b];
      if (hs[a + b] <= m) {
        m = hs[a + b];
        mpos = a + b;
      }
    }
    if (mpos != prevmin) {
      prevmin = mpos;
      fp_hash[fp_cursor] = m;
      fp_pos[fp_cursor] = mpos;
      fp_cursor = fp_cursor + 1;
      files[idx].fpcount = files[idx].fpcount + 1;
      insert_fp(m, idx, mpos);
    }
  }
}

int passage_len(int first, int last, int ncom) {
  int ln = last - first + 1;
  if (match_comments == 1) {
    if (ncom > 0) {
      // BUG 9: off-by-one passage length when comments are matched
      __bug(9);
      ln = ln + 1;
    }
  }
  return ln;
}

void record_passage(int a, int b, int first, int last) {
  if (passage_count >= 12) {
    // BUG 1: table overrun — in C this write lands past the array and
    // corrupts the neighbouring counter; the crash comes much later
    __bug(1);
    overrun_corrupt = overrun_corrupt + 1;
    return;
  }
  Passage p = new Passage;
  p.fileid = a;
  p.other = b;
  p.first_token = first;
  p.last_token = last;
  p.length = passage_len(first, last, files[a].ncomments);
  passages[passage_count] = p;
  passage_count = passage_count + 1;
}

void compare_pair(int a, int b) {
  int shared = 0;
  int first = -1;
  int last = -1;
  for (int i = 0; i < files[a].fpcount; i = i + 1) {
    int ha = fp_hash[files[a].fpstart + i];
    for (int j = 0; j < files[b].fpcount; j = j + 1) {
      if (fp_hash[files[b].fpstart + j] == ha) {
        shared = shared + 1;
        int pos = fp_pos[files[a].fpstart + i];
        if (first < 0) {
          first = pos;
        }
        last = pos;
      }
    }
  }
  if (shared >= 2) {
    record_passage(a, b, first, last);
  }
}

void compare_all() {
  for (int a = 0; a < files_count; a = a + 1) {
    for (int b = a + 1; b < files_count; b = b + 1) {
      compare_pair(a, b);
    }
  }
}

void report() {
  println("files " + to_str(files_count));
  for (int i = 0; i < files_count; i = i + 1) {
    int lc = files[i].language;
    // crashes here when bug 5 planted an out-of-table language id
    println("file " + files[i].name + " lang " + langnames[lc] + " tokens "
            + to_str(files[i].ntokens));
  }
  int limit = passage_count;
  if (overrun_corrupt > 0) {
    int roll = nondet(4);
    if (roll == 0) {
      // the corrupted counter escapes into the report loop (bug 1)
      limit = passage_count + overrun_corrupt;
    }
  }
  int shown = 0;
  for (int i = 0; i < limit; i = i + 1) {
    Passage p = passages[i];
    if (shown < max_report) {
      println("match " + to_str(p.fileid) + " " + to_str(p.other) + " len "
              + to_str(p.length));
      shown = shown + 1;
    }
  }
  println("passages " + to_str(passage_count));
}

int main() {
  init();
  int n = argc();
  int i = 0;
  while (i < n) {
    string a = arg(i);
    if (strlen(a) > 0 && ord(a, 0) == 45) {
      parse_flag(a);
    } else {
      add_file(a);
    }
    i = i + 1;
  }
  if (zflag == 1) {
    // BUG 8: requires a flag no input ever carries — never triggered
    __bug(8);
    abort("zflag path");
  }
  for (int k = 0; k < files_count; k = k + 1) {
    fingerprint_file(k);
  }
  if (strlen(base_name) > 0) {
    int bi = find_file(base_name);
    if (bi < 0) {
      // BUG 6: missing check of the lookup result
      __bug(6);
    }
    println("base " + files[bi].name); // crashes when bi == -1 (bug 6)
  }
  if (base_mode == 1) {
    int probe = hash_str("basequery") % 1000003;
    int owner = bucket_lookup(probe);
    println("probe owner " + to_str(owner));
  }
  compare_all();
  report();
  return 0;
}
|}

let fixed_source =
  {|
// mossim, bug-free reference version (identical modulo the nine fixes)
struct FileRec {
  string name;
  int language;
  int ntokens;
  int ncomments;
  int fpstart;
  int fpcount;
}

struct FPNode {
  int hash;
  int fileid;
  int pos;
  FPNode next;
}

struct Passage {
  int fileid;
  int other;
  int first_token;
  int last_token;
  int length;
}

FileRec[] files;
string[] contents;
FPNode[] buckets;
Passage[] passages;
string[] langnames;
int[] fp_hash;
int[] fp_pos;
int fp_cursor;
int files_count;
int passage_count;
int mem_budget;
int mem_used;
int win_size;
int kgram;
int match_comments;
int verbose;
int base_mode;
string base_name;
int max_report;
int zflag;

void init() {
  files = new FileRec[16];
  for (int i = 0; i < 16; i = i + 1) {
    files[i] = new FileRec;
  }
  contents = new string[16];
  buckets = new FPNode[64];
  passages = new Passage[12];
  langnames = new string[17];
  for (int i = 0; i < 17; i = i + 1) {
    langnames[i] = "L" + to_str(i);
  }
  fp_hash = new int[4096];
  fp_pos = new int[4096];
  fp_cursor = 0;
  files_count = 0;
  passage_count = 0;
  win_size = 4;
  kgram = 3;
  match_comments = 0;
  verbose = 0;
  base_mode = 0;
  base_name = "";
  max_report = 100;
  zflag = 0;
  mem_used = 0;
  mem_budget = 120 + nondet(80);
}

void parse_flag(string a) {
  if (strlen(a) < 2) {
    return;
  }
  int c = ord(a, 1);
  if (c == 119) {
    win_size = max(2, parse_int(substr(a, 2, strlen(a) - 2)));
  }
  if (c == 107) {
    kgram = max(2, parse_int(substr(a, 2, strlen(a) - 2)));
  }
  if (c == 99) {
    match_comments = 1;
  }
  if (c == 118) {
    verbose = 1;
  }
  if (c == 98) {
    base_mode = 1;
  }
  if (c == 66) {
    base_name = substr(a, 2, strlen(a) - 2);
  }
  if (c == 109) {
    max_report = max(1, parse_int(substr(a, 2, strlen(a) - 2)));
  }
  if (c == 122) {
    zflag = 1;
  }
}

void add_file(string content) {
  if (files_count >= 16) {
    return;
  }
  files[files_count].name = "f" + to_str(files_count);
  contents[files_count] = content;
  files_count = files_count + 1;
}

int count_tokens(string s) {
  int n = 0;
  bool intok = false;
  for (int i = 0; i < strlen(s); i = i + 1) {
    if (ord(s, i) == 32) {
      intok = false;
    } else {
      if (!intok) {
        n = n + 1;
      }
      intok = true;
    }
  }
  return n;
}

int lang_of(int idx, int ntokens) {
  int lang = (idx * 7 + ntokens) % 17;
  return lang;
}

FPNode alloc_node() {
  mem_used = mem_used + 1;
  if (mem_used > mem_budget) {
    mem_budget = mem_budget + 64; // fixed: grow instead of failing
  }
  return new FPNode;
}

void insert_fp(int h, int fileid, int pos) {
  int b = h % 64;
  FPNode n = alloc_node();
  n.hash = h;
  n.fileid = fileid;
  n.pos = pos;
  n.next = buckets[b];
  buckets[b] = n;
}

int bucket_lookup(int h) {
  int b = h % 64;
  FPNode n = buckets[b];
  while (n != null && n.hash != h) {
    n = n.next;
  }
  if (n == null) {
    return -1;
  }
  return n.fileid;
}

int find_file(string nm) {
  for (int i = 0; i < files_count; i = i + 1) {
    if (files[i].name == nm) {
      return i;
    }
  }
  return -1;
}

void fingerprint_file(int idx) {
  string content = contents[idx];
  int nt = count_tokens(content);
  files[idx].ntokens = nt;
  string[] toks = new string[nt];
  int ti = 0;
  int start = -1;
  for (int i = 0; i < strlen(content); i = i + 1) {
    if (ord(content, i) == 32) {
      if (start >= 0) {
        toks[ti] = substr(content, start, i - start);
        ti = ti + 1;
        start = -1;
      }
    } else {
      if (start < 0) {
        start = i;
      }
    }
  }
  if (start >= 0) {
    toks[ti] = substr(content, start, strlen(content) - start);
    ti = ti + 1;
  }
  if (verbose == 1) {
    if (nt > 0) {
      println("first " + toks[0]);
    }
  }
  int ncom = 0;
  for (int i = 0; i < nt; i = i + 1) {
    if (toks[i] == "//c") {
      ncom = ncom + 1;
    }
  }
  files[idx].ncomments = ncom;
  files[idx].language = lang_of(idx, nt);
  int nk = nt - kgram + 1;
  files[idx].fpstart = fp_cursor;
  files[idx].fpcount = 0;
  if (nk < 1) {
    return;
  }
  int[] hs = new int[nk];
  for (int a = 0; a < nk; a = a + 1) {
    int h = 0;
    for (int b = 0; b < kgram; b = b + 1) {
      h = (h * 31 + (hash_str(toks[a + b]) % 9973)) % 1000003;
    }
    hs[a] = h;
  }
  int w = win_size;
  int[] winbuf = new int[w + 8];
  int prevmin = -1;
  for (int a = 0; a + w <= nk; a = a + 1) {
    int m = hs[a];
    int mpos = a;
    for (int b = 1; b < w; b = b + 1) {
      winbuf[b] = hs[a + b];
      if (hs[a + b] <= m) {
        m = hs[a + b];
        mpos = a + b;
      }
    }
    if (mpos != prevmin) {
      prevmin = mpos;
      fp_hash[fp_cursor] = m;
      fp_pos[fp_cursor] = mpos;
      fp_cursor = fp_cursor + 1;
      files[idx].fpcount = files[idx].fpcount + 1;
      insert_fp(m, idx, mpos);
    }
  }
}

int passage_len(int first, int last, int ncom) {
  int ln = last - first + 1;
  return ln;
}

void record_passage(int a, int b, int first, int last) {
  if (passage_count >= 12) {
    return; // fixed: drop extra passages safely
  }
  Passage p = new Passage;
  p.fileid = a;
  p.other = b;
  p.first_token = first;
  p.last_token = last;
  p.length = passage_len(first, last, files[a].ncomments);
  passages[passage_count] = p;
  passage_count = passage_count + 1;
}

void compare_pair(int a, int b) {
  int shared = 0;
  int first = -1;
  int last = -1;
  for (int i = 0; i < files[a].fpcount; i = i + 1) {
    int ha = fp_hash[files[a].fpstart + i];
    for (int j = 0; j < files[b].fpcount; j = j + 1) {
      if (fp_hash[files[b].fpstart + j] == ha) {
        shared = shared + 1;
        int pos = fp_pos[files[a].fpstart + i];
        if (first < 0) {
          first = pos;
        }
        last = pos;
      }
    }
  }
  if (shared >= 2) {
    record_passage(a, b, first, last);
  }
}

void compare_all() {
  for (int a = 0; a < files_count; a = a + 1) {
    for (int b = a + 1; b < files_count; b = b + 1) {
      compare_pair(a, b);
    }
  }
}

void report() {
  println("files " + to_str(files_count));
  for (int i = 0; i < files_count; i = i + 1) {
    int lc = files[i].language;
    println("file " + files[i].name + " lang " + langnames[lc] + " tokens "
            + to_str(files[i].ntokens));
  }
  int shown = 0;
  for (int i = 0; i < passage_count; i = i + 1) {
    Passage p = passages[i];
    if (shown < max_report) {
      println("match " + to_str(p.fileid) + " " + to_str(p.other) + " len "
              + to_str(p.length));
      shown = shown + 1;
    }
  }
  println("passages " + to_str(passage_count));
}

int main() {
  init();
  int n = argc();
  int i = 0;
  while (i < n) {
    string a = arg(i);
    if (strlen(a) > 0 && ord(a, 0) == 45) {
      parse_flag(a);
    } else {
      add_file(a);
    }
    i = i + 1;
  }
  for (int k = 0; k < files_count; k = k + 1) {
    fingerprint_file(k);
  }
  if (strlen(base_name) > 0) {
    int bi = find_file(base_name);
    if (bi >= 0) {
      println("base " + files[bi].name);
    } else {
      println("base " + files[0].name);
    }
  }
  if (base_mode == 1) {
    int probe = hash_str("basequery") % 1000003;
    int owner = bucket_lookup(probe);
    println("probe owner " + to_str(owner));
  }
  compare_all();
  report();
  return 0;
}
|}

let vocab = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon" |]

let gen_input ~seed ~run =
  let open Sbi_util in
  let rng = Prng.create ((seed * 1_000_003) + run) in
  let args = ref [] in
  let add a = args := a :: !args in
  if Prng.bernoulli rng 0.5 then add (Printf.sprintf "-w%d" (3 + Prng.int rng 4));
  if Prng.bernoulli rng 0.4 then add (Printf.sprintf "-k%d" (2 + Prng.int rng 3));
  if Prng.bernoulli rng 0.25 then add "-c";
  if Prng.bernoulli rng 0.2 then add "-v";
  if Prng.bernoulli rng 0.08 then add "-b";
  let nfiles = 1 + Prng.int rng 12 in
  if Prng.bernoulli rng 0.2 then begin
    if Prng.bernoulli rng 0.7 then add (Printf.sprintf "-Bf%d" (Prng.int rng nfiles))
    else add "-Bnosuch"
  end;
  for _ = 1 to nfiles do
    if Prng.bernoulli rng 0.01 then add ""
    else begin
      let ntok = 3 + Prng.int rng 55 in
      let toks =
        List.init ntok (fun _ ->
            if Prng.bernoulli rng 0.05 then "//c" else Prng.choice rng vocab)
      in
      add (String.concat " " toks)
    end
  done;
  Array.of_list (List.rev !args)

let study =
  {
    Study.name = "mossim";
    descr =
      "MOSS analogue: winnowing-based document fingerprinting with nine seeded \
       bugs (controlled validation experiment, paper §4.1)";
    source;
    fixed_source = Some fixed_source;
    gen_input = (fun ~seed ~run -> gen_input ~seed ~run);
    bugs =
      [
        { Study.bug_id = 1; bug_descr = "passage table overrun (delayed, 25% crash)"; crashing = true };
        { Study.bug_id = 2; bug_descr = "empty file under -v (rare null-file read)"; crashing = true };
        { Study.bug_id = 3; bug_descr = "missing end-of-list check in bucket walk"; crashing = true };
        { Study.bug_id = 4; bug_descr = "missing out-of-memory check"; crashing = true };
        { Study.bug_id = 5; bug_descr = "language-id invariant violation (>= 10 files)"; crashing = true };
        { Study.bug_id = 6; bug_descr = "unchecked find_file() result for -B"; crashing = true };
        { Study.bug_id = 7; bug_descr = "harmless scratch-buffer overrun"; crashing = false };
        { Study.bug_id = 8; bug_descr = "unreachable flag path (never triggered)"; crashing = true };
        { Study.bug_id = 9; bug_descr = "comment off-by-one (wrong output, no crash)"; crashing = false };
      ];
    default_runs = 6000;
  }
