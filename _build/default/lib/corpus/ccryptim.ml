(* CCRYPT analogue (paper §4.2.1): a toy stream cipher tool with ccrypt
   1.2's known input-validation bug — when the tool prompts (for overwrite
   confirmation) and the response stream has hit end-of-file, the unchecked
   "read" result is used anyway and the program crashes.  One bug; the
   analysis should retain two predictors, the first a sub-bug predictor of
   the second (checked through the affinity list). *)

let source =
  {|
// ccryptim: stream cipher with an EOF-at-prompt crash
string[] resps;
int nresp;
int ridx;
int mode; // 1 encrypt, 0 decrypt
string key;
int overwrites;
int processed;

int get_response() {
  // BUG: no end-of-input check before consuming the next response
  string r = resps[ridx]; // crashes when the response stream is exhausted
  ridx = ridx + 1;
  if (r == "y") {
    return 1;
  }
  return 0;
}

int key_shift(int i) {
  int kl = strlen(key);
  if (kl == 0) {
    return 7;
  }
  return ord(key, i % kl) % 31;
}

string transform(string line) {
  string out = "";
  for (int i = 0; i < strlen(line); i = i + 1) {
    int c = ord(line, i);
    int k = key_shift(i);
    int t = 0;
    if (mode == 1) {
      t = (c + k) % 256;
    } else {
      t = (c + 256 - k) % 256;
    }
    if (t < 32) {
      t = t + 32;
    }
    out = out + chr(t);
  }
  return out;
}

bool output_exists(string line) {
  int h = hash_str(line) % 5;
  return h == 0;
}

void process_line(string line) {
  if (output_exists(line)) {
    int ok = get_response();
    if (ok == 1) {
      overwrites = overwrites + 1;
    } else {
      println("skip " + to_str(processed));
      processed = processed + 1;
      return;
    }
  }
  println(transform(line));
  processed = processed + 1;
}

void split_responses(string s) {
  int n = 0;
  bool intok = false;
  for (int i = 0; i < strlen(s); i = i + 1) {
    if (ord(s, i) == 32) {
      intok = false;
    } else {
      if (!intok) {
        n = n + 1;
      }
      intok = true;
    }
  }
  nresp = n;
  resps = new string[n];
  int ti = 0;
  int start = -1;
  for (int i = 0; i < strlen(s); i = i + 1) {
    if (ord(s, i) == 32) {
      if (start >= 0) {
        resps[ti] = substr(s, start, i - start);
        ti = ti + 1;
        start = -1;
      }
    } else {
      if (start < 0) {
        start = i;
      }
    }
  }
  if (start >= 0) {
    resps[ti] = substr(s, start, strlen(s) - start);
    ti = ti + 1;
  }
}

int main() {
  if (argc() < 3) {
    println("usage");
    return 1;
  }
  mode = 0;
  if (arg(0) == "-e") {
    mode = 1;
  }
  key = arg(1);
  split_responses(arg(2));
  ridx = 0;
  overwrites = 0;
  processed = 0;
  int pending = argc() - 3;
  // ground truth: will we need more confirmations than we have responses?
  int needed = 0;
  for (int i = 3; i < argc(); i = i + 1) {
    if (output_exists(arg(i))) {
      needed = needed + 1;
    }
  }
  if (needed > nresp) {
    __bug(1);
  }
  for (int i = 3; i < argc(); i = i + 1) {
    process_line(arg(i));
  }
  println("done " + to_str(processed) + " overwrote " + to_str(overwrites)
          + " pending " + to_str(pending));
  return 0;
}
|}

let vocab_lines =
  [|
    "report.txt"; "notes.txt"; "secret.bin"; "todo.md"; "draft.tex"; "a.out"; "main.c";
    "log.1"; "log.2"; "core"; "data.csv"; "plan.org"; "readme"; "inbox.eml";
  |]

let gen_input ~seed ~run =
  let open Sbi_util in
  let rng = Prng.create ((seed * 2_000_003) + run) in
  let mode = if Prng.bernoulli rng 0.6 then "-e" else "-d" in
  let key =
    if Prng.bernoulli rng 0.1 then ""
    else String.concat "" (List.init (1 + Prng.int rng 6) (fun _ -> Prng.choice rng [| "a"; "b"; "k"; "q"; "z" |]))
  in
  let nresp = Prng.int rng 4 in
  let resps =
    String.concat " "
      (List.init nresp (fun _ -> if Prng.bernoulli rng 0.6 then "y" else "n"))
  in
  let nlines = 1 + Prng.int rng 8 in
  let lines = List.init nlines (fun _ -> Prng.choice rng vocab_lines) in
  Array.of_list ([ mode; key; resps ] @ lines)

let study =
  {
    Study.name = "ccryptim";
    descr = "CCRYPT analogue: stream cipher with an EOF-at-prompt input-validation bug";
    source;
    fixed_source = None;
    gen_input = (fun ~seed ~run -> gen_input ~seed ~run);
    bugs =
      [
        {
          Study.bug_id = 1;
          bug_descr = "unchecked end-of-input at the overwrite prompt";
          crashing = true;
        };
      ];
    default_runs = 5000;
  }
