(** See {!Corpus}. *)

val source : string
val study : Study.t
