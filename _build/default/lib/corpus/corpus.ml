let mossim = Mossim.study
let ccryptim = Ccryptim.study
let bcim = Bcim.study
let exifim = Exifim.study
let rhythmim = Rhythmim.study

let all = [ mossim; ccryptim; bcim; exifim; rhythmim ]

let by_name name = List.find_opt (fun s -> s.Study.name = name) all

let make_oracle (study : Study.t) ~nondet_salt =
  match Study.checked_fixed study with
  | None -> None
  | Some fixed ->
      Some
        (fun ~run_index ~args (result : Sbi_lang.Interp.result) ->
          let config =
            {
              Sbi_lang.Interp.default_config with
              Sbi_lang.Interp.args;
              nondet_seed = (nondet_salt * 1_000_003) + run_index;
            }
          in
          let expected = Sbi_lang.Interp.run fixed config in
          match expected.Sbi_lang.Interp.outcome with
          | Sbi_lang.Interp.Crashed _ ->
              (* A crashing reference run means the input itself is beyond
                 the oracle's reach; don't charge the subject for it. *)
              false
          | Sbi_lang.Interp.Finished _ ->
              not (String.equal expected.Sbi_lang.Interp.output result.Sbi_lang.Interp.output))

let spec_for ?(plan = Sbi_instrument.Sampler.Always) ?instr_config ?(seed = 42)
    (study : Study.t) =
  let prog = Study.checked study in
  let transform = Sbi_instrument.Transform.instrument ?config:instr_config prog in
  let nondet_salt = 0x7a11 in
  Sbi_runtime.Collect.make_spec
    ?oracle:(make_oracle study ~nondet_salt)
    ~nondet_salt ~transform ~plan
    ~gen_input:(fun run -> study.Study.gen_input ~seed ~run)
    ()
