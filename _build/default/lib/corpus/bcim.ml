(* BC analogue (paper §4.2.2): a tiny calculator with GNU bc 1.06's known
   storage overrun — defining more than 32 variables overruns the variable
   table.  As in the paper, the overrun silently corrupts an adjacent
   counter ("old_count == 32" / "a_names < v_names" are the paper's
   predictors) and the crash happens long after, during the final array
   sweep, where the stack carries no useful information about the cause. *)

let source =
  {|
// bcim: calculator with a variable-table overrun
string[] vnames;
int[] vvals;
int v_count;
int[] avals;
int a_count;
int evals;

int find_var(string nm) {
  for (int i = 0; i < v_count; i = i + 1) {
    if (vnames[i] == nm) {
      return i;
    }
  }
  return -1;
}

void set_var(string nm, int value) {
  int idx = find_var(nm);
  if (idx >= 0) {
    vvals[idx] = value;
    return;
  }
  int old_count = v_count;
  if (old_count >= 12) {
    // BUG: table full; in C this write lands on the adjacent array-count
    // word and corrupts it — the crash comes at the final sweep
    __bug(1);
    a_count = a_count + 1;
    return;
  }
  vnames[old_count] = nm;
  vvals[old_count] = value;
  v_count = old_count + 1;
}

int get_var(string nm) {
  int idx = find_var(nm);
  if (idx < 0) {
    return 0;
  }
  return vvals[idx];
}

int eval_expr(string cmd) {
  // "vNAME=K" handled by caller; here: "aI+J" adds into array slot I
  evals = evals + 1;
  int plus = -1;
  for (int i = 0; i < strlen(cmd); i = i + 1) {
    if (ord(cmd, i) == 43) {
      plus = i;
    }
  }
  if (plus < 0) {
    return parse_int(cmd);
  }
  int slot = parse_int(substr(cmd, 1, plus - 1)) % 8;
  int add = parse_int(substr(cmd, plus + 1, strlen(cmd) - plus - 1));
  avals[slot] = avals[slot] + add;
  return avals[slot];
}

void sweep() {
  int total = 0;
  for (int i = 0; i < a_count; i = i + 1) {
    total = total + avals[i]; // crashes when a_count was corrupted
  }
  println("sweep " + to_str(total));
}

int main() {
  vnames = new string[12];
  vvals = new int[12];
  v_count = 0;
  avals = new int[8];
  a_count = 8;
  evals = 0;
  for (int i = 0; i < argc(); i = i + 1) {
    string cmd = arg(i);
    if (strlen(cmd) < 2) {
      continue;
    }
    int c0 = ord(cmd, 0);
    if (c0 == 118) { // 'v': vNAME=K
      int eq = -1;
      for (int j = 0; j < strlen(cmd); j = j + 1) {
        if (ord(cmd, j) == 61) {
          eq = j;
        }
      }
      if (eq > 1) {
        string nm = substr(cmd, 1, eq - 1);
        int value = parse_int(substr(cmd, eq + 1, strlen(cmd) - eq - 1));
        set_var(nm, value);
      }
    }
    if (c0 == 112) { // 'p': pNAME
      string nm = substr(cmd, 1, strlen(cmd) - 1);
      println(nm + " = " + to_str(get_var(nm)));
    }
    if (c0 == 97) { // 'a': aI+J
      println("expr " + to_str(eval_expr(cmd)));
    }
  }
  println("vars " + to_str(v_count) + " evals " + to_str(evals));
  sweep();
  return 0;
}
|}

let gen_input ~seed ~run =
  let open Sbi_util in
  let rng = Prng.create ((seed * 3_000_017) + run) in
  let ncmds = 3 + Prng.int rng 43 in
  let cmds =
    List.init ncmds (fun _ ->
        let r = Prng.unit_float rng in
        if r < 0.55 then
          (* variable definitions drive the overrun; names drawn from a pool
             large enough that >32 distinct ones occur in long inputs *)
          Printf.sprintf "vx%d=%d" (Prng.int rng 24) (Prng.int rng 1000)
        else if r < 0.75 then Printf.sprintf "px%d" (Prng.int rng 24)
        else Printf.sprintf "a%d+%d" (Prng.int rng 8) (Prng.int rng 50))
  in
  Array.of_list cmds

let study =
  {
    Study.name = "bcim";
    descr = "BC analogue: calculator with a variable-table overrun crashing long after";
    source;
    fixed_source = None;
    gen_input = (fun ~seed ~run -> gen_input ~seed ~run);
    bugs =
      [
        {
          Study.bug_id = 1;
          bug_descr = "variable table overrun corrupting the array counter";
          crashing = true;
        };
      ];
    default_runs = 5000;
  }
