type bug = { bug_id : int; bug_descr : string; crashing : bool }

type t = {
  name : string;
  descr : string;
  source : string;
  fixed_source : string option;
  gen_input : seed:int -> run:int -> string array;
  bugs : bug list;
  default_runs : int;
}

let checked t = Sbi_lang.Check.check_string ~file:(t.name ^ ".mc") t.source

let checked_fixed t =
  Option.map (Sbi_lang.Check.check_string ~file:(t.name ^ "_fixed.mc")) t.fixed_source

let loc_count t =
  let lines = String.split_on_char '\n' t.source in
  List.fold_left
    (fun acc line ->
      let trimmed = String.trim line in
      if trimmed = "" then acc
      else if String.length trimmed >= 2 && trimmed.[0] = '/' && trimmed.[1] = '/' then acc
      else acc + 1)
    0 lines

let bug_name t id =
  match List.find_opt (fun b -> b.bug_id = id) t.bugs with
  | Some b -> b.bug_descr
  | None -> Printf.sprintf "bug #%d" id
