lib/corpus/rhythmim.ml: Array Prng Sbi_util Study
