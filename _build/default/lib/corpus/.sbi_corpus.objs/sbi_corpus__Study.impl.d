lib/corpus/study.ml: List Option Printf Sbi_lang String
