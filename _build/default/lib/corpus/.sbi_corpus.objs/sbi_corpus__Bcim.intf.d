lib/corpus/bcim.mli: Study
