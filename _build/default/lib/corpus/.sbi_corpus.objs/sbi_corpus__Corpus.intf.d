lib/corpus/corpus.mli: Sbi_instrument Sbi_lang Sbi_runtime Study
