lib/corpus/corpus.ml: Bcim Ccryptim Exifim List Mossim Rhythmim Sbi_instrument Sbi_lang Sbi_runtime String Study
