lib/corpus/rhythmim.mli: Study
