lib/corpus/ccryptim.ml: Array List Prng Sbi_util String Study
