lib/corpus/exifim.ml: Array List Printf Prng Sbi_util Study
