lib/corpus/bcim.ml: Array List Printf Prng Sbi_util Study
