lib/corpus/study.mli: Sbi_lang
