lib/corpus/mossim.ml: Array List Printf Prng Sbi_util String Study
