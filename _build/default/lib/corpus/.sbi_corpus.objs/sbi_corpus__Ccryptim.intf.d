lib/corpus/ccryptim.mli: Study
