lib/corpus/exifim.mli: Study
