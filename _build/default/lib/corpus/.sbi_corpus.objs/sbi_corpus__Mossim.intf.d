lib/corpus/mossim.mli: Study
