(** A case study: a buggy MiniC subject program with its input generator,
    ground-truth bug inventory, and (optionally) a fixed version used as an
    output oracle — mirroring the paper's five study setups (§4).

    Bug ids are study-local, numbered as in the paper where applicable
    (MOSS bugs #1–#9). *)

type bug = {
  bug_id : int;
  bug_descr : string;
  crashing : bool;  (** false for output-corruption bugs (MOSS #9) *)
}

type t = {
  name : string;
  descr : string;
  source : string;  (** buggy MiniC source *)
  fixed_source : string option;
      (** bug-free version; when present, non-crashing runs are also
          checked against its output (the paper's MOSS oracle) *)
  gen_input : seed:int -> run:int -> string array;
      (** deterministic input generator *)
  bugs : bug list;
  default_runs : int;  (** run count for a standard (fast) experiment *)
}

val checked : t -> Sbi_lang.Rast.rprog
(** Parse and check the buggy source.  @raise Check.Error etc. on a broken
    corpus program (tests guard this). *)

val checked_fixed : t -> Sbi_lang.Rast.rprog option

val loc_count : t -> int
(** Non-blank, non-comment source lines (the paper's "Lines of Code"
    column). *)

val bug_name : t -> int -> string
