(** The five case-study subject programs (paper §4, Table 2).

    Each is a MiniC analogue of the paper's C subject, with the same bug
    inventory structure; see the per-study modules for the mapping. *)

val mossim : Study.t
val ccryptim : Study.t
val bcim : Study.t
val exifim : Study.t
val rhythmim : Study.t

val all : Study.t list
(** In the paper's Table 2 order: MOSS, CCRYPT, BC, EXIF, RHYTHMBOX. *)

val by_name : string -> Study.t option

val make_oracle :
  Study.t ->
  nondet_salt:int ->
  (run_index:int -> args:string array -> Sbi_lang.Interp.result -> bool) option
(** Output oracle for studies with a fixed version: runs the fixed program
    on the same input (and the same in-program nondeterminism seed, which
    requires the collection spec's [nondet_salt]) and reports failure when
    the outputs differ.  [None] for crash-label-only studies. *)

val spec_for :
  ?plan:Sbi_instrument.Sampler.plan ->
  ?instr_config:Sbi_instrument.Transform.config ->
  ?seed:int ->
  Study.t ->
  Sbi_runtime.Collect.spec
(** Builds a ready-to-collect spec: checks and instruments the buggy
    program, wires the generator (closed over [seed], default 42) and the
    oracle.  Default plan is [Always] (no sampling); experiments override
    it with uniform or trained non-uniform plans. *)
