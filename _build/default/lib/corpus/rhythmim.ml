(* RHYTHMBOX analogue (paper §4.2.4): an event-driven "music player" with
   an event queue, nondeterministic partial drains standing in for thread
   interleaving, and two heap-invariant bugs:

   #1 race condition: "stop" disposes the timer's private state while a
      timer-fired event is still queued; if the event is dispatched after
      the dispose, the handler dereferences null.  Whether it crashes
      depends on the (nondeterministic) drain schedule.
   #2 API misuse after dispose: "delpl" disposes the view's private state
      while refresh events are pending; a later refresh dereferences null.

   Both crashes happen inside the single [dispatch] function called from
   the main loop, so every failing run shows the same call stack — the
   paper's observation that stacks are useless for event-driven systems. *)

let source =
  {|
// rhythmim: event-driven player with dispose-vs-pending-event bugs
struct Priv {
  int timer_id;
  int busy;
  int change_sig;
}

int[] evkind;
int qhead;
int qtail;
Priv timer_priv;
Priv view_priv;
int pending_timers;
int pending_refresh;
int playing;
int vol;
int npl;
int ticks;
int refreshes;
int handled;

void push_event(int kind) {
  if (qtail - qhead >= 64) {
    return;
  }
  evkind[qtail % 64] = kind;
  qtail = qtail + 1;
}

void dispatch(int kind) {
  handled = handled + 1;
  if (kind == 1) { // timer fired
    pending_timers = pending_timers - 1;
    int tid = timer_priv.timer_id; // crashes when stop disposed it (bug 1)
    if (tid == 1) {
      ticks = ticks + 1;
    }
  }
  if (kind == 2) { // refresh
    pending_refresh = pending_refresh - 1;
    int cs = view_priv.change_sig; // crashes when delpl disposed it (bug 2)
    refreshes = refreshes + cs;
  }
  if (kind == 3) { // status update
    int b = vol;
    if (playing == 1) {
      b = b + 1;
    }
    vol = min(100, b);
  }
}

void drain(int limit) {
  int done = 0;
  while (qhead < qtail && done < limit) {
    int kind = evkind[qhead % 64];
    qhead = qhead + 1;
    dispatch(kind);
    done = done + 1;
  }
}

void do_action(string a) {
  if (a == "play") {
    playing = 1;
    push_event(3);
  }
  if (a == "stop") {
    playing = 0;
    if (pending_timers > 0) {
      // BUG 1: pending timer event not cancelled before dispose
      __bug(1);
    }
    timer_priv = null;
    push_event(3);
  }
  if (a == "timer") {
    if (timer_priv == null) {
      timer_priv = new Priv;
    }
    timer_priv.timer_id = 1;
    push_event(1);
    pending_timers = pending_timers + 1;
  }
  if (a == "newpl") {
    npl = npl + 1;
    if (view_priv == null) {
      view_priv = new Priv;
    }
    view_priv.change_sig = 1;
  }
  if (a == "delpl") {
    if (npl > 0) {
      npl = npl - 1;
    }
    if (pending_refresh > 0) {
      // BUG 2: view disposed while refresh events are still queued
      __bug(2);
    }
    view_priv = null;
  }
  if (a == "refresh") {
    if (view_priv != null) {
      push_event(2);
      pending_refresh = pending_refresh + 1;
    }
  }
  if (a == "vol+") {
    vol = min(100, vol + 5);
    push_event(3);
  }
  if (a == "vol-") {
    vol = max(0, vol - 5);
    push_event(3);
  }
  if (a == "seek") {
    int target = vol * 2;
    if (playing == 1) {
      ticks = ticks + target % 3;
    }
  }
}

int main() {
  evkind = new int[64];
  qhead = 0;
  qtail = 0;
  timer_priv = new Priv;
  view_priv = new Priv;
  pending_timers = 0;
  pending_refresh = 0;
  playing = 0;
  vol = 50;
  npl = 0;
  ticks = 0;
  refreshes = 0;
  handled = 0;
  for (int i = 0; i < argc(); i = i + 1) {
    do_action(arg(i));
    // nondeterministic partial drain: the "other thread" may or may not
    // get to the queued events before the next UI action
    drain(nondet(3));
  }
  drain(1000);
  println("handled " + to_str(handled) + " ticks " + to_str(ticks) + " vol "
          + to_str(vol) + " pl " + to_str(npl));
  return 0;
}
|}

let actions = [| "play"; "stop"; "timer"; "newpl"; "delpl"; "refresh"; "vol+"; "vol-"; "seek" |]
let weights = [| 0.12; 0.14; 0.16; 0.10; 0.10; 0.18; 0.08; 0.07; 0.05 |]

let pick_action rng =
  let open Sbi_util in
  let r = Prng.unit_float rng in
  let rec go i acc =
    if i >= Array.length actions - 1 then actions.(Array.length actions - 1)
    else begin
      let acc = acc +. weights.(i) in
      if r < acc then actions.(i) else go (i + 1) acc
    end
  in
  go 0 0.

let gen_input ~seed ~run =
  let open Sbi_util in
  let rng = Prng.create ((seed * 7_000_003) + run) in
  let n = 3 + Prng.int rng 30 in
  Array.init n (fun _ -> pick_action rng)

let study =
  {
    Study.name = "rhythmim";
    descr =
      "RHYTHMBOX analogue: event-driven player with a race condition and a \
       dispose-while-pending API misuse";
    source;
    fixed_source = None;
    gen_input = (fun ~seed ~run -> gen_input ~seed ~run);
    bugs =
      [
        {
          Study.bug_id = 1;
          bug_descr = "race: timer disposed while its event is pending";
          crashing = true;
        };
        {
          Study.bug_id = 2;
          bug_descr = "API misuse: view disposed while refresh events pending";
          crashing = true;
        };
      ];
    default_runs = 6000;
  }
