(* cbi — command-line driver for the statistical bug isolation
   reproduction: regenerate the paper's tables, run corpus programs,
   collect/analyze datasets, and browse predictors. *)

open Cmdliner
open Sbi_experiments

(* --- shared options --- *)

let seed_t =
  let doc = "PRNG seed for input generation and sampling." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let runs_t =
  let doc = "Number of monitored runs (default: per-study default; the paper used ~32,000)." in
  Arg.(value & opt (some int) None & info [ "runs" ] ~docv:"N" ~doc)

let quick_t =
  let doc = "Quick mode: 600 runs, adaptive training on 150 runs." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let sampling_t =
  let doc =
    "Sampling mode: 'adaptive[:NTRAIN]' (paper default, non-uniform rates), \
     'uniform:RATE', or 'none' (observe everything)."
  in
  Arg.(value & opt string "adaptive:1000" & info [ "sampling" ] ~docv:"MODE" ~doc)

let parse_sampling s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Ok Harness.No_sampling
  | [ "adaptive" ] -> Ok (Harness.Adaptive 1000)
  | [ "adaptive"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (Harness.Adaptive n)
      | _ -> Error "bad adaptive training count")
  | [ "uniform"; r ] -> (
      match float_of_string_opt r with
      | Some r when r > 0. && r <= 1. -> Ok (Harness.Uniform r)
      | _ -> Error "uniform rate must be in (0,1]")
  | _ -> Error "sampling must be none | adaptive[:N] | uniform:RATE"

let engine_t =
  let doc =
    "Execution engine for collection: 'bytecode' (default: compile once, run on \
     the VM) or 'tree-walk' (reference interpreter; both produce identical \
     datasets)."
  in
  Arg.(value & opt string "bytecode" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let parse_engine = function
  | "bytecode" -> Ok Sbi_runtime.Collect.Bytecode
  | "tree-walk" | "treewalk" -> Ok Sbi_runtime.Collect.Tree_walk
  | s -> Error (Printf.sprintf "unknown engine %s (expected bytecode | tree-walk)" s)

let config_of ~seed ~runs ~quick ~sampling ~engine =
  match (parse_sampling sampling, parse_engine engine) with
  | Error e, _ | _, Error e -> Error e
  | Ok sampling_mode, Ok engine ->
      let base = if quick then Harness.quick_config else Harness.default_config in
      Ok
        {
          base with
          Harness.seed;
          nruns = (match runs with Some n -> Some n | None -> base.Harness.nruns);
          sampling = (if quick && sampling = "adaptive:1000" then base.Harness.sampling
                      else sampling_mode);
          engine;
        }

let study_conv =
  let parse s =
    match Sbi_corpus.Corpus.by_name s with
    | Some study -> Ok study
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown study %s (expected: %s)" s
               (String.concat ", "
                  (List.map (fun st -> st.Sbi_corpus.Study.name) Sbi_corpus.Corpus.all))))
  in
  let print fmt st = Format.pp_print_string fmt st.Sbi_corpus.Study.name in
  Arg.conv (parse, print)

let or_fail = function
  | Ok x -> x
  | Error msg ->
      prerr_endline ("cbi: " ^ msg);
      exit 2

(* --- table command --- *)

let bundle_cache : (string, Harness.bundle) Hashtbl.t = Hashtbl.create 8

let get_bundle config study =
  let key = study.Sbi_corpus.Study.name in
  match Hashtbl.find_opt bundle_cache key with
  | Some b -> b
  | None ->
      Printf.eprintf "[cbi] collecting %s...\n%!" key;
      let b = Harness.collect_study ~config study in
      Hashtbl.replace bundle_cache key b;
      b

let all_rows config =
  List.map
    (fun study ->
      let b = get_bundle config study in
      (b, Harness.analyze b))
    Sbi_corpus.Corpus.all

let render_table config n =
  let moss () = get_bundle config Sbi_corpus.Corpus.mossim in
  match n with
  | 1 -> Ok (Table1.render (moss ()))
  | 2 -> Ok (Table2.render (all_rows config))
  | 3 -> Ok (Table3.render (moss ()))
  | 4 ->
      Ok
        (Predictor_table.render ~title:"Table 4: Predictors for CCRYPT (analogue)"
           (get_bundle config Sbi_corpus.Corpus.ccryptim))
  | 5 ->
      Ok
        (Predictor_table.render ~title:"Table 5: Predictors for BC (analogue)"
           (get_bundle config Sbi_corpus.Corpus.bcim))
  | 6 ->
      Ok
        (Predictor_table.render ~title:"Table 6: Predictors for EXIF (analogue)"
           (get_bundle config Sbi_corpus.Corpus.exifim))
  | 7 ->
      Ok
        (Predictor_table.render ~title:"Table 7: Predictors for RHYTHMBOX (analogue)"
           (get_bundle config Sbi_corpus.Corpus.rhythmim))
  | 8 -> Ok (Table8.render (all_rows config))
  | 9 -> Ok (Table9.render (moss ()))
  | _ -> Error "table number must be 1..9"

let table_cmd =
  let n_t =
    let doc = "Paper table number (1–9), or 0 for all tables." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"TABLE" ~doc)
  in
  let run n seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    if n = 0 then
      List.iter
        (fun i ->
          print_endline (or_fail (render_table config i));
          print_newline ())
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    else print_endline (or_fail (render_table config n))
  in
  let info = Cmd.info "table" ~doc:"Regenerate one of the paper's tables (1-9; 0 = all)." in
  Cmd.v info Term.(const run $ n_t $ seed_t $ runs_t $ quick_t $ sampling_t $ engine_t)

(* --- auxiliary experiments --- *)

let simple_experiment name doc f =
  let run seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    print_endline (f config)
  in
  let info = Cmd.info name ~doc in
  Cmd.v info Term.(const run $ seed_t $ runs_t $ quick_t $ sampling_t $ engine_t)

let stack_cmd =
  simple_experiment "stack-study"
    "Reproduce the stack-trace usefulness study (§6): per-bug crash-stack uniqueness."
    (fun config -> Stack_study.render (all_rows config))

let validation_cmd =
  simple_experiment "sampling-validation"
    "Compare sampled vs. unsampled analyses (§4): selected sites and bug coverage."
    (fun config -> Sampling_validation.run ~config ())

let ablation_cmd =
  simple_experiment "ablation"
    "Compare the three §5 run-discard proposals on the MOSS analogue."
    (fun config -> Ablation.render (get_bundle config Sbi_corpus.Corpus.mossim))

let static_followup_cmd =
  simple_experiment "static-followup"
    "Run the §1 follow-up: scan for the unsafe dispose-then-use pattern that the \
     RHYTHMBOX-analogue predictors expose."
    (fun config -> Static_followup.render (get_bundle config Sbi_corpus.Corpus.rhythmim))

let curves_cmd =
  let study_t =
    Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY" ~doc:"Study name.")
  in
  let run study seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    print_endline (Curves.render (get_bundle config study))
  in
  let info =
    Cmd.info "curves"
      ~doc:"Plot Importance_N convergence curves for each bug's chosen predictor (§4.3)."
  in
  Cmd.v info Term.(const run $ study_t $ seed_t $ runs_t $ quick_t $ sampling_t $ engine_t)

let report_cmd =
  let study_t =
    Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY" ~doc:"Study name.")
  in
  let out_t =
    Arg.(required & opt (some string) None
           & info [ "o"; "output" ] ~docv:"FILE" ~doc:"HTML output path.")
  in
  let run study out seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    let bundle = get_bundle config study in
    Html_report.write ~path:out bundle;
    Printf.printf "wrote %s\n" out
  in
  let info =
    Cmd.info "report" ~doc:"Analyze a study and write a self-contained HTML report."
  in
  Cmd.v info Term.(const run $ study_t $ out_t $ seed_t $ runs_t $ quick_t $ sampling_t $ engine_t)

(* --- studies --- *)

let studies_cmd =
  let run () =
    List.iter
      (fun st ->
        Printf.printf "%-10s %5d LoC, %d seeded bug(s), default %d runs\n    %s\n"
          st.Sbi_corpus.Study.name
          (Sbi_corpus.Study.loc_count st)
          (List.length st.Sbi_corpus.Study.bugs)
          st.Sbi_corpus.Study.default_runs st.Sbi_corpus.Study.descr;
        List.iter
          (fun (b : Sbi_corpus.Study.bug) ->
            Printf.printf "      #%d %s%s\n" b.Sbi_corpus.Study.bug_id
              b.Sbi_corpus.Study.bug_descr
              (if b.Sbi_corpus.Study.crashing then "" else " [non-crashing]"))
          st.Sbi_corpus.Study.bugs)
      Sbi_corpus.Corpus.all
  in
  let info = Cmd.info "studies" ~doc:"List the corpus case studies and their seeded bugs." in
  Cmd.v info Term.(const run $ const ())

let run_cmd =
  let study_t =
    Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY" ~doc:"Study name.")
  in
  let index_t =
    Arg.(value & opt int 0 & info [ "input" ] ~docv:"I" ~doc:"Generated-input index to run.")
  in
  let run study index seed =
    let args = study.Sbi_corpus.Study.gen_input ~seed ~run:index in
    Printf.printf "args: %s\n" (String.concat " | " (Array.to_list args));
    let prog = Sbi_corpus.Study.checked study in
    let result =
      Sbi_lang.Interp.run prog
        {
          Sbi_lang.Interp.default_config with
          Sbi_lang.Interp.args;
          nondet_seed = (0x7a11 * 1_000_003) + index;
        }
    in
    print_string result.Sbi_lang.Interp.output;
    (match result.Sbi_lang.Interp.outcome with
    | Sbi_lang.Interp.Finished v ->
        Printf.printf "[finished: %s]\n" (Sbi_lang.Value.to_string v)
    | Sbi_lang.Interp.Crashed c ->
        Printf.printf "[CRASH: %s at %s in %s; stack: %s]\n"
          (Sbi_lang.Interp.crash_kind_to_string c.Sbi_lang.Interp.kind)
          (Sbi_lang.Loc.to_string c.Sbi_lang.Interp.crash_loc)
          c.Sbi_lang.Interp.crash_fn
          (String.concat " < " c.Sbi_lang.Interp.stack));
    if result.Sbi_lang.Interp.bugs_triggered <> [] then
      Printf.printf "[ground-truth bugs: %s]\n"
        (String.concat " "
           (List.map (fun b -> "#" ^ string_of_int b) result.Sbi_lang.Interp.bugs_triggered))
  in
  let info = Cmd.info "run" ~doc:"Run one corpus program on a generated input and show the outcome." in
  Cmd.v info Term.(const run $ study_t $ index_t $ seed_t)

let collect_cmd =
  let study_t =
    Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY" ~doc:"Study name.")
  in
  let out_t =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Dataset output path.")
  in
  let run study out seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    let bundle = Harness.collect_study ~config study in
    Sbi_runtime.Dataset.save out bundle.Harness.dataset;
    Printf.printf "wrote %s: %d runs (%d failing), %d sites, %d predicates\n" out
      (Sbi_runtime.Dataset.nruns bundle.Harness.dataset)
      (Sbi_runtime.Dataset.num_failures bundle.Harness.dataset)
      bundle.Harness.dataset.Sbi_runtime.Dataset.nsites
      bundle.Harness.dataset.Sbi_runtime.Dataset.npreds
  in
  let info = Cmd.info "collect" ~doc:"Collect a feedback-report dataset and save it to disk." in
  Cmd.v info Term.(const run $ study_t $ out_t $ seed_t $ runs_t $ quick_t $ sampling_t $ engine_t)

(* --- ingestion pipeline --- *)

let print_log_stats (s : Sbi_ingest.Shard_log.stats) =
  if s.Sbi_ingest.Shard_log.corrupt_records > 0 || s.Sbi_ingest.Shard_log.truncated_bytes > 0
  then
    Printf.printf "recovery: skipped %d corrupt record(s), dropped %d truncated tail byte(s)\n"
      s.Sbi_ingest.Shard_log.corrupt_records s.Sbi_ingest.Shard_log.truncated_bytes

let ingest_cmd =
  let study_t =
    Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY" ~doc:"Study name.")
  in
  let out_t =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR"
           ~doc:"Shard-log output directory.")
  in
  let domains_t =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Collection domains (= shards written); default: all cores.")
  in
  let run study out domains seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    let _, _, spec = Harness.prepare ~config study in
    let nruns = Harness.study_runs config study in
    let domains =
      match domains with Some d when d > 0 -> d | _ -> Sbi_ingest.Par_collect.default_domains ()
    in
    let t0 = Unix.gettimeofday () in
    let stats =
      Sbi_ingest.Par_collect.collect_to_log ~seed:config.Harness.seed ~domains spec ~nruns
        ~dir:out
    in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "wrote %s: %d shard(s), %s\n" out
      (List.length (Sbi_ingest.Shard_log.shard_files ~dir:out))
      (Sbi_ingest.Shard_log.pp_stats stats);
    Printf.printf "throughput: %.0f reports/sec (%d domain(s), %.2fs wall)\n"
      (float_of_int stats.Sbi_ingest.Shard_log.records /. Float.max dt 1e-9)
      domains dt
  in
  let info =
    Cmd.info "ingest"
      ~doc:"Collect feedback reports in parallel (one OCaml domain per shard) into a \
            crash-tolerant binary shard log."
  in
  Cmd.v info
    Term.(const run $ study_t $ out_t $ domains_t $ seed_t $ runs_t $ quick_t $ sampling_t $ engine_t)

let log_stats_cmd =
  let dir_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Shard-log directory written by 'cbi ingest'.")
  in
  let run dir =
    let meta =
      try Sbi_ingest.Shard_log.read_meta ~dir
      with Sbi_ingest.Shard_log.Format_error m ->
        prerr_endline ("cbi: " ^ m);
        exit 2
    in
    Printf.printf "%s: %d sites, %d predicates\n" dir meta.Sbi_runtime.Dataset.nsites
      meta.Sbi_runtime.Dataset.npreds;
    let total =
      List.fold_left
        (fun total (shard, path) ->
          let (), s = Sbi_ingest.Shard_log.fold_shard path ~init:() ~f:(fun () _ -> ()) in
          Printf.printf "  shard %04d: %s\n" shard (Sbi_ingest.Shard_log.pp_stats s);
          Sbi_ingest.Shard_log.add_stats total s)
        Sbi_ingest.Shard_log.zero_stats
        (Sbi_ingest.Shard_log.shard_files ~dir)
    in
    Printf.printf "  total:      %s\n" (Sbi_ingest.Shard_log.pp_stats total)
  in
  let info =
    Cmd.info "log-stats"
      ~doc:"Scan a shard log and report per-shard record/byte/corruption statistics."
  in
  Cmd.v info Term.(const run $ dir_t)

let disasm_cmd =
  let study_t =
    Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY" ~doc:"Study name.")
  in
  let fn_t =
    Arg.(value & opt (some string) None & info [ "fn" ] ~docv:"NAME"
           ~doc:"Only this function (default: all).")
  in
  let run study fn =
    let prog = Sbi_corpus.Study.checked study in
    let compiled = Sbi_lang.Vm.compile prog in
    Array.iter
      (fun (f : Sbi_lang.Vm.func) ->
        match fn with
        | Some name when name <> f.Sbi_lang.Vm.name -> ()
        | _ -> print_string (Sbi_lang.Vm.disassemble f))
      compiled.Sbi_lang.Vm.funcs
  in
  let info = Cmd.info "disasm" ~doc:"Disassemble a corpus program's bytecode." in
  Cmd.v info Term.(const run $ study_t $ fn_t)

(* --- analysis rendering (shared by analyze / analyze-file) --- *)

module J = Sbi_util.Json

let json_t =
  let doc = "Emit machine-readable JSON instead of the human table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let discard_of_proposal = function
  | 1 -> Ok Sbi_core.Eliminate.Discard_all_true
  | 2 -> Ok Sbi_core.Eliminate.Discard_failing_true
  | 3 -> Ok Sbi_core.Eliminate.Relabel_failing
  | _ -> Error "--proposal must be 1, 2, or 3"

let interval_json (iv : Sbi_util.Stats.interval) =
  J.Obj [ ("lo", J.Num iv.Sbi_util.Stats.lo); ("hi", J.Num iv.Sbi_util.Stats.hi) ]

let score_json ~text (sc : Sbi_core.Scores.t) =
  J.Obj
    [
      ("pred", J.int sc.Sbi_core.Scores.pred);
      ("text", J.Str text);
      ("f", J.int sc.Sbi_core.Scores.f);
      ("s", J.int sc.Sbi_core.Scores.s);
      ("f_obs", J.int sc.Sbi_core.Scores.f_obs);
      ("s_obs", J.int sc.Sbi_core.Scores.s_obs);
      ("failure", J.Num sc.Sbi_core.Scores.failure);
      ("context", J.Num sc.Sbi_core.Scores.context);
      ("increase", J.Num sc.Sbi_core.Scores.increase);
      ("increase_ci", interval_json sc.Sbi_core.Scores.increase_ci);
      ("importance", J.Num sc.Sbi_core.Scores.importance);
      ("importance_ci", interval_json sc.Sbi_core.Scores.importance_ci);
    ]

let analysis_json ~discard ds (analysis : Sbi_core.Analysis.t) =
  let s = Sbi_core.Analysis.summary analysis in
  let text pred = Sbi_runtime.Dataset.pred_text ds pred in
  J.Obj
    [
      ("mode", J.Str "analyze");
      ("proposal", J.Str (Sbi_core.Eliminate.discard_to_string discard));
      ("runs", J.int s.Sbi_core.Analysis.runs);
      ("successful", J.int s.Sbi_core.Analysis.successful);
      ("failing", J.int s.Sbi_core.Analysis.failing);
      ("sites", J.int s.Sbi_core.Analysis.sites);
      ("predicates", J.int s.Sbi_core.Analysis.initial_preds);
      ("retained", J.int s.Sbi_core.Analysis.retained_preds);
      ("selected", J.int s.Sbi_core.Analysis.selected_preds);
      ( "selections",
        J.List
          (List.map
             (fun (sel : Sbi_core.Eliminate.selection) ->
               J.Obj
                 [
                   ("rank", J.int sel.Sbi_core.Eliminate.rank);
                   ("pred", J.int sel.Sbi_core.Eliminate.pred);
                   ("text", J.Str (text sel.Sbi_core.Eliminate.pred));
                   ("runs_before", J.int sel.Sbi_core.Eliminate.runs_before);
                   ("failures_before", J.int sel.Sbi_core.Eliminate.failures_before);
                   ("runs_discarded", J.int sel.Sbi_core.Eliminate.runs_discarded);
                   ( "initial",
                     score_json ~text:(text sel.Sbi_core.Eliminate.pred)
                       sel.Sbi_core.Eliminate.initial );
                   ( "effective",
                     score_json ~text:(text sel.Sbi_core.Eliminate.pred)
                       sel.Sbi_core.Eliminate.effective );
                 ])
             analysis.Sbi_core.Analysis.elimination.Sbi_core.Eliminate.selections) );
    ]

let print_analysis ds (analysis : Sbi_core.Analysis.t) =
  let s = Sbi_core.Analysis.summary analysis in
  Printf.printf
    "%d runs (%d failing); %d sites, %d predicates; %d after pruning; %d selected:\n"
    s.Sbi_core.Analysis.runs s.Sbi_core.Analysis.failing s.Sbi_core.Analysis.sites
    s.Sbi_core.Analysis.initial_preds s.Sbi_core.Analysis.retained_preds
    s.Sbi_core.Analysis.selected_preds;
  List.iter
    (fun (sel : Sbi_core.Eliminate.selection) ->
      Printf.printf "  %d. [imp %.3f, F=%d, S=%d]  %s\n" sel.Sbi_core.Eliminate.rank
        sel.Sbi_core.Eliminate.effective.Sbi_core.Scores.importance
        sel.Sbi_core.Eliminate.effective.Sbi_core.Scores.f
        sel.Sbi_core.Eliminate.effective.Sbi_core.Scores.s
        (Sbi_runtime.Dataset.pred_text ds sel.Sbi_core.Eliminate.pred))
    analysis.Sbi_core.Analysis.elimination.Sbi_core.Eliminate.selections

let analyze_file_cmd =
  let file_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Dataset file written by 'cbi collect', or a shard-log directory written \
                 by 'cbi ingest'.")
  in
  let discard_t =
    let doc = "Run-discard proposal: 1 (discard all covered runs), 2 (failing only), 3 (relabel)." in
    Arg.(value & opt int 1 & info [ "proposal" ] ~docv:"N" ~doc)
  in
  let stream_t =
    let doc =
      "Streaming mode (shard logs only): aggregate §3.1 counts shard by shard without \
       materializing reports, and print the top pruned predicates by importance.  Skips \
       the redundancy-elimination stage, which needs per-run data."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let top_t =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K"
           ~doc:"Predicates to print in --stream mode.")
  in
  let stream_analyze dir top json =
    let agg, meta, stats =
      try Sbi_ingest.Aggregator.of_log ~dir
      with Sbi_ingest.Shard_log.Format_error m ->
        prerr_endline ("cbi: " ^ m);
        exit 2
    in
    if not json then print_log_stats stats;
    let counts = Sbi_ingest.Aggregator.to_counts agg in
    let retained = Sbi_core.Prune.retained_scores counts in
    let sorted = Array.copy retained in
    Array.sort Sbi_core.Scores.compare_importance_desc sorted;
    let nshards = List.length (Sbi_ingest.Shard_log.shard_files ~dir) in
    if json then
      let top_scores =
        Array.to_list (Array.sub sorted 0 (min top (Array.length sorted)))
      in
      print_endline
        (J.to_string
           (J.Obj
              [
                ("mode", J.Str "stream");
                ("runs", J.int (counts.Sbi_core.Counts.num_f + counts.Sbi_core.Counts.num_s));
                ("failing", J.int counts.Sbi_core.Counts.num_f);
                ("shards", J.int nshards);
                ("predicates", J.int counts.Sbi_core.Counts.npreds);
                ("retained", J.int (Array.length retained));
                ( "top",
                  J.List
                    (List.map
                       (fun (sc : Sbi_core.Scores.t) ->
                         score_json
                           ~text:(Sbi_runtime.Dataset.pred_text meta sc.Sbi_core.Scores.pred)
                           sc)
                       top_scores) );
              ]))
    else begin
      Printf.printf
        "%d runs (%d failing) streamed from %d shard(s); %d predicates, %d after pruning:\n"
        (counts.Sbi_core.Counts.num_f + counts.Sbi_core.Counts.num_s)
        counts.Sbi_core.Counts.num_f nshards counts.Sbi_core.Counts.npreds
        (Array.length retained);
      Array.iteri
        (fun i (sc : Sbi_core.Scores.t) ->
          if i < top then
            Printf.printf "  %2d. [imp %.3f, F=%d, S=%d]  %s\n" (i + 1)
              sc.Sbi_core.Scores.importance sc.Sbi_core.Scores.f sc.Sbi_core.Scores.s
              (Sbi_runtime.Dataset.pred_text meta sc.Sbi_core.Scores.pred))
        sorted
    end
  in
  let run file proposal stream top json =
    if not (Sys.file_exists file) then begin
      prerr_endline ("cbi: no such file or directory: " ^ file);
      exit 2
    end;
    if stream then begin
      if not (Sys.file_exists file && Sys.is_directory file) then begin
        prerr_endline "cbi: --stream needs a shard-log directory";
        exit 2
      end;
      stream_analyze file top json;
      exit 0
    end;
    let ds =
      if Sys.file_exists file && Sys.is_directory file then begin
        match Sbi_ingest.Shard_log.read_all ~dir:file with
        | ds, stats ->
            if not json then print_log_stats stats;
            ds
        | exception Sbi_ingest.Shard_log.Format_error m ->
            prerr_endline ("cbi: " ^ m);
            exit 2
      end
      else
        try Sbi_runtime.Dataset.load file
        with Sbi_runtime.Dataset.Parse_error msg ->
          prerr_endline ("cbi: cannot read dataset: " ^ msg);
          exit 2
    in
    let discard = or_fail (discard_of_proposal proposal) in
    let analysis = Sbi_core.Analysis.analyze ~discard ds in
    if json then print_endline (J.to_string (analysis_json ~discard ds analysis))
    else print_analysis ds analysis
  in
  let info =
    Cmd.info "analyze-file"
      ~doc:"Run the cause-isolation analysis on a dataset saved by 'cbi collect' or on a \
            shard-log directory written by 'cbi ingest' (--stream for log-only streaming \
            aggregation; --json for machine-readable output)."
  in
  Cmd.v info Term.(const run $ file_t $ discard_t $ stream_t $ top_t $ json_t)

let analyze_cmd =
  let study_t =
    Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY" ~doc:"Study name.")
  in
  let discard_t =
    let doc = "Run-discard proposal: 1 (discard all covered runs), 2 (failing only), 3 (relabel)." in
    Arg.(value & opt int 1 & info [ "proposal" ] ~docv:"N" ~doc)
  in
  let run study proposal json seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    let discard = or_fail (discard_of_proposal proposal) in
    let bundle = get_bundle config study in
    let ds = bundle.Harness.dataset in
    let analysis = Sbi_core.Analysis.analyze ~discard ds in
    if json then print_endline (J.to_string (analysis_json ~discard ds analysis))
    else print_analysis ds analysis
  in
  let info =
    Cmd.info "analyze"
      ~doc:"Collect a study and run the cause-isolation analysis (--json for \
            machine-readable output)."
  in
  Cmd.v info
    Term.(const run $ study_t $ discard_t $ json_t $ seed_t $ runs_t $ quick_t $ sampling_t $ engine_t)

(* --- predicate index + triage service --- *)

let index_cmd =
  let log_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG"
           ~doc:"Shard-log directory written by 'cbi ingest'.")
  in
  let out_t =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR"
           ~doc:"Index directory (created, or incrementally extended with the log's \
                 unseen records).")
  in
  let run log out =
    if not (Sys.file_exists log && Sys.is_directory log) then begin
      prerr_endline ("cbi: no such shard-log directory: " ^ log);
      exit 2
    end;
    let st =
      match Sbi_index.Index.build ~log ~dir:out () with
      | st -> st
      | exception Sbi_index.Index.Format_error m ->
          prerr_endline ("cbi: " ^ m);
          exit 2
      | exception Sbi_ingest.Shard_log.Format_error m ->
          prerr_endline ("cbi: " ^ m);
          exit 2
    in
    Printf.printf "indexed %s -> %s: +%d segment(s), +%d record(s) (%d corrupt skipped), %d byte(s) consumed\n"
      log out st.Sbi_index.Index.segments_added st.Sbi_index.Index.records_indexed
      st.Sbi_index.Index.corrupt_skipped st.Sbi_index.Index.bytes_consumed;
    let idx = Sbi_index.Index.open_ ~dir:out in
    Printf.printf "index now: %d run(s) (%d failing) in %d segment(s)\n"
      (Sbi_index.Index.nruns idx)
      (Sbi_index.Index.num_failures idx)
      (Array.length idx.Sbi_index.Index.segments)
  in
  let info =
    Cmd.info "index"
      ~doc:"Compile (or incrementally extend) an inverted predicate index from a shard \
            log, for 'cbi serve' and indexed triage queries."
  in
  Cmd.v info Term.(const run $ log_t $ out_t)

let gen_cmd =
  let runs_t =
    Arg.(required & opt (some int) None & info [ "runs" ] ~docv:"N"
           ~doc:"Number of synthetic runs to generate.")
  in
  let out_t =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR"
           ~doc:"Shard-log directory to create or extend.")
  in
  let shards_t =
    Arg.(value & opt int Sbi_corpus.Synth.default_shards & info [ "shards" ] ~docv:"K"
           ~doc:"Shard files to spread runs over (round-robin).")
  in
  let sites_t =
    Arg.(value & opt int Sbi_corpus.Synth.default_nsites & info [ "sites" ] ~docv:"S"
           ~doc:"Instrumentation sites in the synthetic tables.")
  in
  let preds_t =
    Arg.(value & opt int Sbi_corpus.Synth.default_npreds & info [ "preds" ] ~docv:"P"
           ~doc:"Predicates in the synthetic tables (>= --sites).")
  in
  let seed_gen_t =
    Arg.(value & opt int Sbi_corpus.Synth.default_seed & info [ "seed" ] ~docv:"X"
           ~doc:"Generator seed; each report is a pure function of (seed, run id).")
  in
  let start_t =
    Arg.(value & opt int 0 & info [ "start" ] ~docv:"ID"
           ~doc:"First run id.  0 (the default) writes a fresh log; a positive value \
                 appends a wave to an existing log whose runs end at ID - 1.")
  in
  let run runs out shards sites preds seed start =
    if runs <= 0 then begin
      prerr_endline "cbi: --runs must be positive";
      exit 2
    end;
    match
      Sbi_corpus.Synth.generate ~shards ~nsites:sites ~npreds:preds ~seed ~start ~runs
        ~dir:out ()
    with
    | exception Invalid_argument m ->
        prerr_endline ("cbi: " ^ m);
        exit 2
    | st ->
        Printf.printf "generated %d run(s) (ids %d..%d) -> %s: %s\n" runs start
          (start + runs - 1) out
          (Sbi_ingest.Shard_log.pp_stats st)
  in
  let info =
    Cmd.info "gen"
      ~doc:"Stream a deterministic synthetic corpus into a shard log in constant \
            memory (for scale testing: generate waves with --start, indexing \
            incrementally between them)."
  in
  Cmd.v info
    Term.(const run $ runs_t $ out_t $ shards_t $ sites_t $ preds_t $ seed_gen_t $ start_t)

let compact_cmd =
  let dir_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"INDEX"
           ~doc:"Index directory built by 'cbi index'.")
  in
  let tier_max_t =
    Arg.(value & opt int Sbi_store.Tier.default_tier_max & info [ "tier-max" ] ~docv:"N"
           ~doc:"Merge a size tier when it holds at least N segments.")
  in
  let dry_run_t =
    Arg.(value & flag & info [ "dry-run" ]
           ~doc:"Print the tier layout and what would merge, without writing.")
  in
  let run dir tier_max dry_run =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      prerr_endline ("cbi: no such index directory: " ^ dir);
      exit 2
    end;
    if tier_max < 2 then begin
      prerr_endline "cbi: --tier-max must be >= 2";
      exit 2
    end;
    if dry_run then begin
      match Sbi_index.Index.compact_plan ~tier_max ~dir () with
      | plan -> print_string (Sbi_index.Index.pp_plan plan)
      | exception Sbi_index.Index.Format_error m ->
          prerr_endline ("cbi: " ^ m);
          exit 2
    end
    else
      match Sbi_index.Index.compact ~tier_max ~dir () with
      | st -> print_string (Sbi_index.Index.pp_compact st)
      | exception Sbi_index.Index.Format_error m ->
          prerr_endline ("cbi: " ^ m);
          exit 2
  in
  let info =
    Cmd.info "compact"
      ~doc:"Fold an index's small segments into large ones under the size-tiered \
            policy.  Rankings are bit-identical before and after; a crash mid-compaction \
            is recovered by 'cbi fsck --repair'."
  in
  Cmd.v info Term.(const run $ dir_t $ tier_max_t $ dry_run_t)

let fsck_cmd =
  let dir_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"INDEX"
           ~doc:"Index directory built by 'cbi index'.")
  in
  let repair_t =
    Arg.(value & flag & info [ "repair" ]
           ~doc:"Repair before validating: drop damaged segments (and their shard's \
                 later segments), roll consumed offsets back so the next 'cbi index' \
                 re-indexes the dropped range, and remove orphaned and stray temp \
                 files.")
  in
  let run dir repair =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      prerr_endline ("cbi: no such index directory: " ^ dir);
      exit 2
    end;
    if repair then begin
      match Sbi_index.Index.repair ~dir with
      | rep -> print_string (Sbi_index.Index.pp_repair rep)
      | exception Sbi_index.Index.Format_error m ->
          prerr_endline ("cbi: " ^ m);
          exit 2
    end;
    match Sbi_index.Index.fsck ~dir with
    | exception Sbi_index.Index.Format_error m ->
        prerr_endline ("cbi: " ^ m);
        exit 2
    | r ->
        print_string (Sbi_index.Index.pp_fsck r);
        if r.Sbi_index.Index.fsck_corrupt > 0 then exit 1
  in
  let info =
    Cmd.info "fsck"
      ~doc:"Validate every segment of an index (CRCs, structure, manifest agreement). \
            With --repair, first restore the index to a consistent state.  Exit 1 \
            when corrupt segments are found, 2 when the index is unusable."
  in
  Cmd.v info Term.(const run $ dir_t $ repair_t)

let fault_check_cmd =
  let scratch_t =
    Arg.(value & opt (some string) None & info [ "scratch" ] ~docv:"DIR"
           ~doc:"Scratch directory for the fault cases (default: a fresh directory \
                 under the system temp dir, removed when all cases pass).")
  in
  let verbose_t =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print one line per case.")
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  let run scratch verbose =
    let scratch, default_scratch =
      match scratch with
      | Some d -> (d, false)
      | None ->
          ( Filename.concat (Filename.get_temp_dir_name ())
              (Printf.sprintf "cbi-fault-%d" (Unix.getpid ())),
            true )
    in
    let s = Sbi_index.Crashsim.run_matrix ~verbose ~scratch () in
    print_string (Sbi_index.Crashsim.pp_summary s);
    if s.Sbi_index.Crashsim.failed > 0 then begin
      Printf.printf "fault cases preserved under %s\n" scratch;
      exit 1
    end
    else if default_scratch then try rm_rf scratch with Sys_error _ -> ()
  in
  let info =
    Cmd.info "fault-check"
      ~doc:"Run the crash-recovery fault matrix: kill-and-reopen the shard log and \
            index builder at every injected fault point and verify no acknowledged \
            report is lost and no partial record is surfaced.  Exit 1 on any \
            violated invariant."
  in
  Cmd.v info Term.(const run $ scratch_t $ verbose_t)

let serve_cmd =
  let idx_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"INDEX"
           ~doc:"Index directory built by 'cbi index'.")
  in
  let addr_t =
    Arg.(value & opt string "127.0.0.1:7077" & info [ "a"; "addr" ] ~docv:"ADDR"
           ~doc:"Listen address: host:port, or a filesystem path (Unix socket).")
  in
  let timeout_t =
    Arg.(value & opt float 30. & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Per-connection receive timeout.")
  in
  let timeout_ms_t =
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS"
           ~doc:"Per-connection receive timeout in milliseconds (overrides --timeout).")
  in
  let max_request_t =
    Arg.(value & opt int (1 lsl 20) & info [ "max-request-bytes" ] ~docv:"BYTES"
           ~doc:"Reject any request line longer than this (the connection is closed \
                 and the rejection counted in the stats fault counters).")
  in
  let no_fsync_t =
    Arg.(value & flag & info [ "no-fsync" ]
           ~doc:"Skip the per-record fsync on ingest (faster, less durable).")
  in
  let ingest_log_t =
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"DIR"
           ~doc:"Shard-log directory for durable ingest (default: the index's source \
                 log; 'none' disables the ingest command).")
  in
  let update_t =
    Arg.(value & flag & info [ "update" ]
           ~doc:"Incrementally re-index the source log before serving.")
  in
  let domains_t =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Analysis domains: N > 1 spawns a domain pool that parallelizes \
                 snapshot rebuilds and affinity rescoring on the read path.")
  in
  let par_grain_t =
    Arg.(value & opt int (1 lsl 20) & info [ "par-grain" ] ~docv:"CELLS"
           ~doc:"Sequential cutoff for the parallel read path: a query whose \
                 estimated work (runs x predicates popcount cells) is below \
                 CELLS runs inline on the request thread instead of fanning \
                 across the domain pool.  0 parallelizes every query.")
  in
  let slow_ms_t =
    Arg.(value & opt (some int) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Log every request taking at least MS milliseconds to stderr \
                 (slow-query log: command, arguments digest, duration, snapshot \
                 epoch).  0 logs every request; unset disables.")
  in
  let compact_every_t =
    Arg.(value & opt (some float) None & info [ "compact-every" ] ~docv:"SECS"
           ~doc:"Run tiered compaction on the index directory every SECS seconds in a \
                 background thread, swapping to the merged index without interrupting \
                 queries or ingest.  Unset disables background compaction.")
  in
  let serve_tier_max_t =
    Arg.(value & opt int Sbi_store.Tier.default_tier_max & info [ "tier-max" ] ~docv:"N"
           ~doc:"Background compaction merges a size tier when it holds at least N \
                 segments.")
  in
  let group_commit_ms_t =
    Arg.(value & opt float 2. & info [ "group-commit-ms" ] ~docv:"MS"
           ~doc:"Group-commit window: ingest appends park up to MS milliseconds so one \
                 log fsync covers every report that arrived in the window (acks still \
                 wait for the covering fsync — durability semantics are unchanged).  \
                 0 disables group commit: one inline fsync per ingest request.")
  in
  let max_batch_t =
    Arg.(value & opt int 512 & info [ "max-batch" ] ~docv:"N"
           ~doc:"Force a group-commit flush once N reports are pending in the window, \
                 without waiting out --group-commit-ms.")
  in
  let acceptors_t =
    Arg.(value & opt int 1 & info [ "acceptors" ] ~docv:"N"
           ~doc:"Event-loop domains for the connection front end: each runs a poll(2) \
                 readiness loop over non-blocking connections (on TCP with N >= 2, \
                 each accepts on its own SO_REUSEPORT listener).  0 falls back to the \
                 legacy thread-per-connection path.")
  in
  let max_conns_t =
    Arg.(value & opt int 4096 & info [ "max-conns" ] ~docv:"N"
           ~doc:"Connection admission cap: a client beyond it is answered with a \
                 one-line 'err busy' and closed instead of hanging.")
  in
  let run idx_dir addr timeout timeout_ms max_request no_fsync ingest_log update domains
      par_grain slow_ms compact_every tier_max group_commit_ms max_batch acceptors
      max_conns =
    let addr = or_fail (Sbi_serve.Wire.addr_of_string addr) in
    if domains < 1 then begin
      prerr_endline "cbi: --domains must be >= 1";
      exit 2
    end;
    if par_grain < 0 then begin
      prerr_endline "cbi: --par-grain must be >= 0";
      exit 2
    end;
    (match slow_ms with
    | Some ms when ms < 0 ->
        prerr_endline "cbi: --slow-ms must be >= 0";
        exit 2
    | _ -> Sbi_obs.Slowlog.set_threshold_ms slow_ms);
    if max_request < 16 then begin
      prerr_endline "cbi: --max-request-bytes must be >= 16";
      exit 2
    end;
    (match compact_every with
    | Some s when s <= 0. ->
        prerr_endline "cbi: --compact-every must be positive";
        exit 2
    | _ -> ());
    if tier_max < 2 then begin
      prerr_endline "cbi: --tier-max must be >= 2";
      exit 2
    end;
    if group_commit_ms < 0. then begin
      prerr_endline "cbi: --group-commit-ms must be >= 0";
      exit 2
    end;
    if max_batch < 1 then begin
      prerr_endline "cbi: --max-batch must be >= 1";
      exit 2
    end;
    if acceptors < 0 then begin
      prerr_endline "cbi: --acceptors must be >= 0";
      exit 2
    end;
    if max_conns < 1 then begin
      prerr_endline "cbi: --max-conns must be >= 1";
      exit 2
    end;
    let timeout =
      match timeout_ms with Some ms -> float_of_int ms /. 1000. | None -> timeout
    in
    let open_index () =
      match Sbi_index.Index.open_ ~dir:idx_dir with
      | idx -> idx
      | exception Sbi_index.Index.Format_error m ->
          prerr_endline ("cbi: " ^ m);
          exit 2
    in
    let idx = open_index () in
    let idx =
      match (update, idx.Sbi_index.Index.log_dir) with
      | true, Some log when Sys.file_exists log ->
          let st = Sbi_index.Index.build ~log ~dir:idx_dir () in
          Printf.printf "cbi serve: re-indexed %s: +%d segment(s), +%d record(s)\n" log
            st.Sbi_index.Index.segments_added st.Sbi_index.Index.records_indexed;
          open_index ()
      | _ -> idx
    in
    let ingest_log =
      match ingest_log with
      | Some "none" -> None
      | Some dir -> Some dir
      | None -> idx.Sbi_index.Index.log_dir
    in
    let config =
      {
        Sbi_serve.Server.addr;
        timeout;
        fsync = not no_fsync;
        ingest_log;
        domains;
        par_grain;
        max_request;
        io = Sbi_fault.Io.none;
        compact_every;
        tier_max;
        group_commit_ms;
        max_batch;
        acceptors;
        max_conns;
      }
    in
    let srv =
      try Sbi_serve.Server.start config idx with
      | Unix.Unix_error (e, _, _) ->
          prerr_endline
            (Printf.sprintf "cbi: cannot listen on %s: %s" (Sbi_serve.Wire.addr_to_string addr)
               (Unix.error_message e));
          exit 2
      | Invalid_argument m ->
          prerr_endline ("cbi: " ^ m);
          exit 2
    in
    Printf.printf "cbi serve: listening on %s (%d run(s), %d segment(s)%s)\n%!"
      (Sbi_serve.Wire.addr_to_string addr)
      (Sbi_index.Index.nruns idx)
      (Array.length idx.Sbi_index.Index.segments)
      (match ingest_log with
      | Some d -> ", ingest -> " ^ d
      | None -> ", ingest disabled");
    let stop_requested = ref false in
    let request_stop _ = stop_requested := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    while not !stop_requested do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Printf.printf "cbi serve: shutting down...\n%!";
    Sbi_serve.Server.stop srv;
    Printf.printf "cbi serve: done (%d report(s) ingested)\n"
      (Sbi_serve.Server.ingested srv)
  in
  let info =
    Cmd.info "serve"
      ~doc:"Serve triage queries (topk, pred, affinity, stats, ingest) over a Unix or \
            TCP socket from an index built by 'cbi index'.  SIGINT shuts down \
            gracefully."
  in
  Cmd.v info
    Term.(
      const run $ idx_t $ addr_t $ timeout_t $ timeout_ms_t $ max_request_t $ no_fsync_t
      $ ingest_log_t $ update_t $ domains_t $ par_grain_t $ slow_ms_t $ compact_every_t
      $ serve_tier_max_t $ group_commit_ms_t $ max_batch_t $ acceptors_t $ max_conns_t)

let query_cmd =
  let addr_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR"
           ~doc:"Server address (host:port or socket path).")
  in
  let cmd_t =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"CMD"
           ~doc:"Protocol command and arguments (e.g. 'topk 5', 'pred 12', 'stats').")
  in
  let timeout_ms_t =
    Arg.(value & opt int Sbi_serve.Client.default_timeout_ms
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Connect/read/write deadline in milliseconds (0 or negative \
                   disables deadlines).")
  in
  let retries_t =
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
           ~doc:"Connect attempts before giving up (jittered exponential backoff \
                 between attempts).  Requests are never retried.")
  in
  let run addr words timeout_ms retries =
    let addr = or_fail (Sbi_serve.Wire.addr_of_string addr) in
    if retries < 1 then begin
      prerr_endline "cbi: --retries must be >= 1";
      exit 2
    end;
    let retry = { Sbi_fault.Retry.default with Sbi_fault.Retry.max_attempts = retries } in
    let client =
      match Sbi_serve.Client.connect ~timeout_ms ~retry addr with
      | Ok c -> c
      | Error msg ->
          prerr_endline
            (Printf.sprintf "cbi: cannot connect to %s: %s"
               (Sbi_serve.Wire.addr_to_string addr) msg);
          exit 2
    in
    match Sbi_serve.Client.request client (String.concat " " words) with
    | Ok (header, lines) ->
        if header <> "" then print_endline header;
        List.iter print_endline lines;
        Sbi_serve.Client.close client
    | Error msg ->
        Sbi_serve.Client.close client;
        prerr_endline ("cbi: server error: " ^ msg);
        exit 1
    | exception End_of_file ->
        prerr_endline "cbi: connection closed by server mid-response";
        exit 2
    | exception Sbi_serve.Wire.Timeout ->
        prerr_endline
          (Printf.sprintf "cbi: no response from %s within %dms"
             (Sbi_serve.Wire.addr_to_string addr) timeout_ms);
        exit 2
  in
  let info = Cmd.info "query" ~doc:"Send one command to a running 'cbi serve' instance." in
  Cmd.v info Term.(const run $ addr_t $ cmd_t $ timeout_ms_t $ retries_t)

let load_cmd =
  let addr_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR"
           ~doc:"Server address (host:port or socket path).")
  in
  let log_t =
    Arg.(required & opt (some string) None & info [ "log" ] ~docv:"DIR"
           ~doc:"Shard log whose reports are replayed against the server.")
  in
  let clients_t =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent client connections (the fleet width).")
  in
  let batch_t =
    Arg.(value & opt int 64 & info [ "batch" ] ~docv:"B"
           ~doc:"Reports per ingest-batch request.")
  in
  let repeat_t =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"K"
           ~doc:"Replay the log K times; each pass remaps run ids past the previous \
                 pass so every replayed report is a distinct run.")
  in
  let single_t =
    Arg.(value & flag & info [ "single" ]
           ~doc:"Use one single-report 'ingest' RPC per report instead of \
                 'ingest-batch' (the pre-batching wire path, for comparison).")
  in
  let timeout_ms_t =
    Arg.(value & opt int Sbi_serve.Client.default_timeout_ms
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Connect/read/write deadline in milliseconds (0 or negative \
                   disables deadlines).")
  in
  let run addr log_dir clients batch repeat single timeout_ms =
    let addr = or_fail (Sbi_serve.Wire.addr_of_string addr) in
    if clients < 1 then begin
      prerr_endline "cbi: --clients must be >= 1";
      exit 2
    end;
    if batch < 1 then begin
      prerr_endline "cbi: --batch must be >= 1";
      exit 2
    end;
    if repeat < 1 then begin
      prerr_endline "cbi: --repeat must be >= 1";
      exit 2
    end;
    let ds, _stats =
      match Sbi_ingest.Shard_log.read_all ~dir:log_dir with
      | r -> r
      | exception Sbi_ingest.Shard_log.Format_error m ->
          prerr_endline ("cbi: " ^ m);
          exit 2
    in
    let base = ds.Sbi_runtime.Dataset.runs in
    if Array.length base = 0 then begin
      prerr_endline ("cbi: " ^ log_dir ^ " holds no reports");
      exit 2
    end;
    (* distinct run ids across passes: later replays must not look like
       duplicates of the first *)
    let stride =
      1 + Array.fold_left (fun m (r : Sbi_runtime.Report.t) -> max m r.Sbi_runtime.Report.run_id) 0 base
    in
    let reports =
      Array.init (repeat * Array.length base) (fun i ->
          let pass = i / Array.length base and j = i mod Array.length base in
          let r = base.(j) in
          { r with Sbi_runtime.Report.run_id = r.Sbi_runtime.Report.run_id + (pass * stride) })
    in
    let total = Array.length reports in
    let ok_n = Atomic.make 0 and err_n = Atomic.make 0 in
    let fail msg =
      prerr_endline ("cbi: " ^ msg);
      exit 1
    in
    (* Connect barrier: every client holds its connection open until the
       whole fleet is connected, so the server really faces [clients]
       concurrent connections rather than a rolling handful. *)
    let bar_m = Mutex.create () and bar_cv = Condition.create () in
    let connected = ref 0 in
    let barrier () =
      Mutex.lock bar_m;
      incr connected;
      if !connected >= clients then Condition.broadcast bar_cv
      else
        while !connected < clients do
          Condition.wait bar_cv bar_m
        done;
      Mutex.unlock bar_m
    in
    let worker w =
      match Sbi_serve.Client.connect ~timeout_ms addr with
      | Error msg -> fail ("cannot connect: " ^ msg)
      | Ok c ->
          barrier ();
          (* round-robin partition: client w replays reports w, w+N, ... *)
          let mine = ref [] in
          for i = total - 1 downto 0 do
            if i mod clients = w then mine := reports.(i) :: !mine
          done;
          let count = function
            | Ok _ -> Atomic.incr ok_n
            | Error _ -> Atomic.incr err_n
          in
          (if single then
             List.iter
               (fun (r : Sbi_runtime.Report.t) ->
                 match
                   Sbi_serve.Client.request c
                     ("ingest " ^ Sbi_serve.B64.encode (Sbi_ingest.Codec.encode r))
                 with
                 | Ok _ -> Atomic.incr ok_n
                 | Error _ -> Atomic.incr err_n
                 | exception (Sbi_serve.Wire.Timeout | End_of_file) ->
                     fail "server stopped responding mid-replay")
               !mine
           else
             let rec chunks = function
               | [] -> ()
               | rs ->
                   let rec take n acc = function
                     | r :: rest when n > 0 -> take (n - 1) (r :: acc) rest
                     | rest -> (List.rev acc, rest)
                   in
                   let chunk, rest = take batch [] rs in
                   (match Sbi_serve.Client.ingest_batch c chunk with
                   | Ok statuses -> List.iter count statuses
                   | Error msg -> fail ("batch rejected: " ^ msg)
                   | exception (Sbi_serve.Wire.Timeout | End_of_file) ->
                       fail "server stopped responding mid-replay");
                   chunks rest
             in
             chunks !mine);
          Sbi_serve.Client.close c
    in
    let t0 = Sbi_obs.Clock.now_ns () in
    let threads = List.init clients (fun w -> Thread.create worker w) in
    List.iter Thread.join threads;
    let dt_s = float_of_int (Sbi_obs.Clock.now_ns () - t0) *. 1e-9 in
    let ok = Atomic.get ok_n and err = Atomic.get err_n in
    Printf.printf
      "cbi load: %d report(s) in %.3fs over %d client(s) (%s, batch %d): %.0f reports/sec, \
       %d accepted, %d rejected\n"
      total dt_s clients
      (if single then "single RPC" else "ingest-batch")
      (if single then 1 else batch)
      (float_of_int total /. dt_s) ok err;
    if err > 0 then exit 1
  in
  let info =
    Cmd.info "load"
      ~doc:"Replay a shard log against a running 'cbi serve' instance from many \
            concurrent client connections — the fleet stress rig for the batched \
            group-commit ingest path.  Exits 1 if any report is rejected."
  in
  Cmd.v info
    Term.(const run $ addr_t $ log_t $ clients_t $ batch_t $ repeat_t $ single_t
          $ timeout_ms_t)

let trace_dump_cmd =
  let addr_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR"
           ~doc:"Server address (host:port or socket path).")
  in
  let n_t =
    Arg.(value & opt int 100 & info [ "n" ] ~docv:"N"
           ~doc:"Dump at most the newest N retained spans (0 for all).")
  in
  let timeout_ms_t =
    Arg.(value & opt int Sbi_serve.Client.default_timeout_ms
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Connect/read/write deadline in milliseconds (0 or negative \
                   disables deadlines).")
  in
  let run addr n timeout_ms =
    let addr = or_fail (Sbi_serve.Wire.addr_of_string addr) in
    if n < 0 then begin
      prerr_endline "cbi: -n must be >= 0";
      exit 2
    end;
    let client =
      match Sbi_serve.Client.connect ~timeout_ms addr with
      | Ok c -> c
      | Error msg ->
          prerr_endline
            (Printf.sprintf "cbi: cannot connect to %s: %s"
               (Sbi_serve.Wire.addr_to_string addr) msg);
          exit 2
    in
    let request = if n = 0 then "trace" else Printf.sprintf "trace %d" n in
    match Sbi_serve.Client.request client request with
    | Ok (header, lines) ->
        print_endline header;
        List.iter print_endline lines;
        Sbi_serve.Client.close client
    | Error msg ->
        Sbi_serve.Client.close client;
        prerr_endline ("cbi: server error: " ^ msg);
        exit 1
    | exception End_of_file ->
        prerr_endline "cbi: connection closed by server mid-response";
        exit 2
    | exception Sbi_serve.Wire.Timeout ->
        prerr_endline
          (Printf.sprintf "cbi: no response from %s within %dms"
             (Sbi_serve.Wire.addr_to_string addr) timeout_ms);
        exit 2
  in
  let info =
    Cmd.info "trace-dump"
      ~doc:"Dump the newest tracing spans retained by a running 'cbi serve' instance \
            (span id, parent link, name, duration, owning domain)."
  in
  Cmd.v info Term.(const run $ addr_t $ n_t $ timeout_ms_t)

let inspect_cmd =
  let study_t =
    Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY" ~doc:"Study name.")
  in
  let top_t =
    Arg.(value & opt int 5 & info [ "affinity" ] ~docv:"K"
           ~doc:"Show the top K affinity entries for each selected predicate.")
  in
  let run study top seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    let bundle = Harness.collect_study ~config study in
    let analysis = Harness.analyze bundle in
    let selections =
      analysis.Sbi_core.Analysis.elimination.Sbi_core.Eliminate.selections
    in
    List.iter
      (fun (sel : Sbi_core.Eliminate.selection) ->
        Printf.printf "#%d  imp=%.3f  %s\n" sel.Sbi_core.Eliminate.rank
          sel.Sbi_core.Eliminate.effective.Sbi_core.Scores.importance
          (Harness.describe bundle ~pred:sel.Sbi_core.Eliminate.pred);
        let entries =
          Sbi_core.Analysis.affinity_for analysis ~pred:sel.Sbi_core.Eliminate.pred
        in
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | x :: rest -> x :: take (k - 1) rest
        in
        List.iter
          (fun (e : Sbi_core.Affinity.entry) ->
            Printf.printf "     drop %.3f (%.3f -> %.3f)  %s\n" e.Sbi_core.Affinity.drop
              e.Sbi_core.Affinity.importance_before e.Sbi_core.Affinity.importance_after
              (Harness.describe bundle ~pred:e.Sbi_core.Affinity.pred))
          (take top entries))
      selections
  in
  let info =
    Cmd.info "inspect"
      ~doc:"Analyze a study and browse each selected predictor's affinity list."
  in
  Cmd.v info Term.(const run $ study_t $ top_t $ seed_t $ runs_t $ quick_t $ sampling_t $ engine_t)

(* --- SBFL formula zoo --- *)

module Sbfl = Sbi_sbfl

let formula_conv =
  let parse s =
    match Sbfl.Registry.find s with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown formula %s (known: %s)" s
               (String.concat ", " (Sbfl.Registry.names ()))))
  in
  let print fmt (f : Sbfl.Formula.t) = Format.pp_print_string fmt f.Sbfl.Formula.name in
  Arg.conv (parse, print)

let formula_t =
  let doc =
    "SBFL ranking formula (see 'cbi formulas'); default: the paper's importance."
  in
  Arg.(value & opt formula_conv Sbfl.Registry.default
       & info [ "formula" ] ~docv:"NAME" ~doc)

let formulas_cmd =
  let run json =
    let all = Sbfl.Registry.all () in
    if json then
      print_endline
        (J.to_string
           (J.Obj
              [
                ("mode", J.Str "formulas");
                ( "formulas",
                  J.List
                    (List.map
                       (fun (f : Sbfl.Formula.t) ->
                         J.Obj
                           [
                             ("name", J.Str f.Sbfl.Formula.name);
                             ("descr", J.Str f.Sbfl.Formula.descr);
                             ( "default",
                               J.Bool (f.Sbfl.Formula.name = Sbfl.Registry.default.Sbfl.Formula.name)
                             );
                           ])
                       all) );
              ]))
    else begin
      let tab =
        Sbi_util.Texttab.create [ ("Formula", Sbi_util.Texttab.Left); ("Definition", Sbi_util.Texttab.Left) ]
      in
      List.iter
        (fun (f : Sbfl.Formula.t) ->
          Sbi_util.Texttab.add_row tab
            [
              (if f.Sbfl.Formula.name = Sbfl.Registry.default.Sbfl.Formula.name then
                 f.Sbfl.Formula.name ^ " *"
               else f.Sbfl.Formula.name);
              f.Sbfl.Formula.descr;
            ])
        all;
      print_string (Sbi_util.Texttab.render tab);
      print_endline "(* = default)"
    end
  in
  let info =
    Cmd.info "formulas" ~doc:"List the registered SBFL ranking formulas (see docs/sbfl.md)."
  in
  Cmd.v info Term.(const run $ json_t)

(* Accepts any of the three on-disk artifacts: an index directory
   ('manifest'), a shard-log directory ('meta'), or a dataset file.  All
   three reduce to the same §3.1 counter table. *)
let counts_of_path path =
  if Sys.file_exists path && Sys.is_directory path then begin
    if Sys.file_exists (Filename.concat path "manifest") then begin
      match Sbi_index.Index.open_ ~dir:path with
      | idx ->
          let counts = Sbi_index.Triage.counts idx in
          Ok (counts, idx.Sbi_index.Index.meta, "index")
      | exception Sbi_index.Index.Format_error m -> Error m
    end
    else if Sys.file_exists (Filename.concat path "meta") then begin
      match Sbi_ingest.Aggregator.of_log ~dir:path with
      | agg, meta, _stats -> Ok (Sbi_ingest.Aggregator.to_counts agg, meta, "log")
      | exception Sbi_ingest.Shard_log.Format_error m -> Error m
    end
    else Error (path ^ ": neither an index (no manifest) nor a shard log (no meta)")
  end
  else if Sys.file_exists path then begin
    match Sbi_runtime.Dataset.load path with
    | ds -> Ok (Sbi_core.Counts.compute ds, ds, "dataset")
    | exception Sbi_runtime.Dataset.Parse_error m -> Error ("cannot read dataset: " ^ m)
  end
  else Error ("no such file or directory: " ^ path)

let topk_cmd =
  let path_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH"
           ~doc:"Index directory ('cbi index'), shard-log directory ('cbi ingest'), or \
                 dataset file ('cbi collect').")
  in
  let k_t =
    Arg.(value & opt int 10 & info [ "k"; "top" ] ~docv:"K" ~doc:"Predicates to rank.")
  in
  let all_t =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Rank every predicate (default: only those surviving Increase-CI \
                 pruning, as the serving pipeline does).")
  in
  let run path formula k all json =
    if k < 1 then begin
      prerr_endline "cbi: -k must be >= 1";
      exit 2
    end;
    let counts, meta, source = or_fail (counts_of_path path) in
    let candidates =
      if all then None else Some (Sbi_core.Prune.retained counts)
    in
    let entries = Sbfl.Ranking.topk ~k ?candidates formula counts in
    let name = formula.Sbfl.Formula.name in
    if json then
      print_endline
        (J.to_string
           (J.Obj
              [
                ("mode", J.Str "topk");
                ("source", J.Str source);
                ("formula", J.Str name);
                ("k", J.int k);
                ("runs", J.int (counts.Sbi_core.Counts.num_f + counts.Sbi_core.Counts.num_s));
                ("failing", J.int counts.Sbi_core.Counts.num_f);
                ("predicates", J.int counts.Sbi_core.Counts.npreds);
                ( "results",
                  J.List
                    (List.mapi
                       (fun i (e : Sbfl.Ranking.entry) ->
                         J.Obj
                           [
                             ("rank", J.int (i + 1));
                             ("pred", J.int e.Sbfl.Ranking.pred);
                             ("text", J.Str (Sbi_runtime.Dataset.pred_text meta e.Sbfl.Ranking.pred));
                             ("score", J.Num e.Sbfl.Ranking.score);
                             ("f", J.int e.Sbfl.Ranking.f);
                             ("s", J.int e.Sbfl.Ranking.s);
                             ("f_obs", J.int e.Sbfl.Ranking.f_obs);
                             ("s_obs", J.int e.Sbfl.Ranking.s_obs);
                           ])
                       entries) );
              ]))
    else begin
      Printf.printf "%d runs (%d failing), %d predicates; top %d by %s:\n"
        (counts.Sbi_core.Counts.num_f + counts.Sbi_core.Counts.num_s)
        counts.Sbi_core.Counts.num_f counts.Sbi_core.Counts.npreds (List.length entries)
        name;
      List.iteri
        (fun i (e : Sbfl.Ranking.entry) ->
          Printf.printf "  %2d. [%s %.4f, F=%d, S=%d]  %s\n" (i + 1) name
            e.Sbfl.Ranking.score e.Sbfl.Ranking.f e.Sbfl.Ranking.s
            (Sbi_runtime.Dataset.pred_text meta e.Sbfl.Ranking.pred))
        entries
    end
  in
  let info =
    Cmd.info "topk"
      ~doc:"Rank predicates under any registered SBFL formula (--formula NAME; see \
            'cbi formulas') from an index, shard log, or dataset."
  in
  Cmd.v info Term.(const run $ path_t $ formula_t $ k_t $ all_t $ json_t)

let opt_rank = function None -> "-" | Some r -> string_of_int r
let opt_exam = function None -> "-" | Some e -> Printf.sprintf "%.4f" e

let eval_json study (ev : Sbfl.Eval.t) =
  J.Obj
    [
      ("program", J.Str study.Sbi_corpus.Study.name);
      ("runs", J.int ev.Sbfl.Eval.runs);
      ("failing", J.int ev.Sbfl.Eval.failing);
      ("predicates", J.int ev.Sbfl.Eval.npreds);
      ("evaluable_bugs", J.int ev.Sbfl.Eval.evaluable);
      ( "bugs",
        J.List
          (List.map
             (fun (b : Sbfl.Eval.bug) ->
               J.Obj
                 [
                   ("bug", J.int b.Sbfl.Eval.bug);
                   ("failing_runs", J.int b.Sbfl.Eval.failing_runs);
                   ("markers", J.int (List.length b.Sbfl.Eval.markers));
                 ])
             ev.Sbfl.Eval.truth) );
      ( "formulas",
        J.List
          (List.map
             (fun (fr : Sbfl.Eval.formula_result) ->
               J.Obj
                 [
                   ("formula", J.Str fr.Sbfl.Eval.formula);
                   ( "first_true_bug_rank",
                     match fr.Sbfl.Eval.first_true_bug_rank with
                     | None -> J.Null
                     | Some r -> J.int r );
                   ("top1", J.Num fr.Sbfl.Eval.top1);
                   ("top5", J.Num fr.Sbfl.Eval.top5);
                   ("top10", J.Num fr.Sbfl.Eval.top10);
                   ( "mean_exam",
                     match fr.Sbfl.Eval.mean_exam with
                     | None -> J.Null
                     | Some e -> J.Num e );
                   ( "bugs",
                     J.List
                       (List.map
                          (fun (pb : Sbfl.Eval.per_bug) ->
                            J.Obj
                              [
                                ("bug", J.int pb.Sbfl.Eval.pb_bug);
                                ( "first_rank",
                                  match pb.Sbfl.Eval.pb_first_rank with
                                  | None -> J.Null
                                  | Some r -> J.int r );
                                ( "exam",
                                  match pb.Sbfl.Eval.pb_exam with
                                  | None -> J.Null
                                  | Some e -> J.Num e );
                              ])
                          fr.Sbfl.Eval.bugs) );
                 ])
             ev.Sbfl.Eval.results) );
    ]

let eval_cmd =
  let studies_t =
    Arg.(value & pos_all study_conv [] & info [] ~docv:"STUDY"
           ~doc:"Studies to evaluate (default: all five corpus programs).")
  in
  let formulas_arg_t =
    let doc = "Comma-separated formulas to evaluate (default: all registered)." in
    Arg.(value & opt (some string) None & info [ "formulas" ] ~docv:"LIST" ~doc)
  in
  let run studies formulas json seed runs quick sampling engine =
    let config = or_fail (config_of ~seed ~runs ~quick ~sampling ~engine) in
    let studies = match studies with [] -> Sbi_corpus.Corpus.all | l -> l in
    let formulas =
      match formulas with
      | None -> Sbfl.Registry.all ()
      | Some l ->
          List.map
            (fun name ->
              match Sbfl.Registry.find name with
              | Some f -> f
              | None ->
                  or_fail
                    (Error
                       (Printf.sprintf "unknown formula %s (known: %s)" name
                          (String.concat ", " (Sbfl.Registry.names ())))))
            (List.filter (fun s -> s <> "") (String.split_on_char ',' l))
    in
    let evals =
      List.map
        (fun study ->
          let bundle = get_bundle config study in
          (study, Sbfl.Eval.evaluate ~formulas bundle.Harness.dataset))
        studies
    in
    if json then
      print_endline
        (J.to_string
           (J.Obj
              [
                ("mode", J.Str "eval");
                ("programs", J.List (List.map (fun (st, ev) -> eval_json st ev) evals));
              ]))
    else
      List.iter
        (fun (study, (ev : Sbfl.Eval.t)) ->
          let title =
            Printf.sprintf "%s: %d runs (%d failing), %d bugs occurring (%d evaluable)"
              study.Sbi_corpus.Study.name ev.Sbfl.Eval.runs ev.Sbfl.Eval.failing
              (List.length ev.Sbfl.Eval.truth) ev.Sbfl.Eval.evaluable
          in
          let tab =
            Sbi_util.Texttab.create ~title
              [
                ("Formula", Sbi_util.Texttab.Left);
                ("1st bug rank", Sbi_util.Texttab.Right);
                ("Top-1", Sbi_util.Texttab.Right);
                ("Top-5", Sbi_util.Texttab.Right);
                ("Top-10", Sbi_util.Texttab.Right);
                ("Mean EXAM", Sbi_util.Texttab.Right);
              ]
          in
          List.iter
            (fun (fr : Sbfl.Eval.formula_result) ->
              Sbi_util.Texttab.add_row tab
                [
                  fr.Sbfl.Eval.formula;
                  opt_rank fr.Sbfl.Eval.first_true_bug_rank;
                  Printf.sprintf "%.2f" fr.Sbfl.Eval.top1;
                  Printf.sprintf "%.2f" fr.Sbfl.Eval.top5;
                  Printf.sprintf "%.2f" fr.Sbfl.Eval.top10;
                  opt_exam fr.Sbfl.Eval.mean_exam;
                ])
            ev.Sbfl.Eval.results;
          print_string (Sbi_util.Texttab.render tab);
          print_newline ())
        evals
  in
  let info =
    Cmd.info "eval"
      ~doc:"Ground-truth evaluation of every SBFL formula against the corpus programs' \
            per-run bug occurrence: rank of first true bug, top-1/5/10 hit rates, and \
            mean EXAM per formula per program (--json for machine-readable output)."
  in
  Cmd.v info
    Term.(const run $ studies_t $ formulas_arg_t $ json_t $ seed_t $ runs_t $ quick_t
          $ sampling_t $ engine_t)

let main_cmd =
  let doc = "Scalable statistical bug isolation (PLDI 2005) — reproduction driver." in
  let info = Cmd.info "cbi" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      table_cmd; stack_cmd; validation_cmd; ablation_cmd; static_followup_cmd;
      report_cmd; curves_cmd; studies_cmd; run_cmd; collect_cmd; ingest_cmd;
      log_stats_cmd; analyze_cmd; analyze_file_cmd; index_cmd; gen_cmd; compact_cmd;
      fsck_cmd;
      fault_check_cmd; serve_cmd; query_cmd; load_cmd; trace_dump_cmd; disasm_cmd;
      inspect_cmd;
      formulas_cmd; topk_cmd; eval_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
