(* Deployment simulation: the overhead/diagnosability trade-off (§2, §4).

   The paper's pitch is that sparse sampling makes monitoring cheap enough
   to deploy to end users while still isolating bugs once enough runs
   accumulate.  This example quantifies both halves on the EXIF analogue:

   - monitoring cost: wall-clock time per run under no instrumentation,
     full observation, uniform 1/100 sampling, and trained non-uniform
     sampling;
   - diagnosability: how many of the three seeded bugs each plan's
     analysis isolates from the same number of runs.

   Run with:  dune exec examples/deployment_sim.exe *)

open Sbi_experiments
open Sbi_core
open Sbi_util

let nruns = 1200

let time_per_run f n =
  let t0 = Unix.gettimeofday () in
  f ();
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) /. float_of_int n *. 1e3

let () =
  let study = Sbi_corpus.Corpus.exifim in
  Printf.printf "subject: %s; %d runs per configuration\n%!" study.Sbi_corpus.Study.name nruns;
  let configs =
    [
      ("no instrumentation", None);
      ("full observation", Some Harness.No_sampling);
      ("uniform 1/100", Some (Harness.Uniform 0.01));
      ("non-uniform (trained)", Some (Harness.Adaptive 200));
    ]
  in
  let tab =
    Texttab.create ~title:"Monitoring cost vs. diagnosability"
      [
        ("configuration", Texttab.Left);
        ("ms/run", Texttab.Right);
        ("overhead", Texttab.Right);
        ("bugs isolated", Texttab.Left);
      ]
  in
  let baseline = ref None in
  List.iter
    (fun (name, sampling) ->
      match sampling with
      | None ->
          (* uninstrumented baseline *)
          let spec =
            Sbi_runtime.Collect.make_spec
              ~transform:(Sbi_instrument.Transform.instrument (Sbi_corpus.Study.checked study))
              ~plan:Sbi_instrument.Sampler.Always
              ~gen_input:(fun run -> study.Sbi_corpus.Study.gen_input ~seed:42 ~run)
              ()
          in
          let ms =
            time_per_run
              (fun () ->
                for run = 0 to nruns - 1 do
                  ignore (Sbi_runtime.Collect.run_uninstrumented spec ~run_index:run)
                done)
              nruns
          in
          baseline := Some ms;
          Texttab.add_row tab [ name; Printf.sprintf "%.3f" ms; "1.00x"; "n/a" ]
      | Some sampling ->
          let config =
            {
              Harness.default_config with
              Harness.seed = 42;
              nruns = Some nruns;
              sampling;
              confidence = 0.95;
            }
          in
          let bundle = ref None in
          let ms =
            time_per_run (fun () -> bundle := Some (Harness.collect_study ~config study)) nruns
          in
          let bundle = Option.get !bundle in
          let analysis = Harness.analyze bundle in
          let bugs =
            List.sort_uniq compare
              (List.filter_map
                 (fun (s : Eliminate.selection) ->
                   Harness.dominant_bug bundle ~pred:s.Eliminate.pred)
                 analysis.Analysis.elimination.Eliminate.selections)
          in
          let overhead =
            match !baseline with
            | Some b when b > 0. -> Printf.sprintf "%.2fx" (ms /. b)
            | _ -> "-"
          in
          Texttab.add_row tab
            [
              name;
              Printf.sprintf "%.3f" ms;
              overhead;
              (if bugs = [] then "none"
               else String.concat ", " (List.map (fun b -> "#" ^ string_of_int b) bugs));
            ])
    configs;
  print_string (Texttab.render tab);
  print_endline
    "\nNotes: 'ms/run' for sampled configurations includes rate training and\n\
     dataset assembly.  The paper's claim to check is the shape: sampling cuts\n\
     monitoring cost versus full observation while the analysis still isolates\n\
     the common bugs; the rare canon bug (#3) may need more runs at 1/100."
