(* Multi-bug triage: the paper's headline scenario.

   The MOSS-analogue corpus program carries nine seeded bugs that occur at
   rates differing by orders of magnitude, overlap in runs, and include a
   non-crashing wrong-output bug.  This example reproduces the §4.1
   controlled experiment at reduced scale: collect a monitored population
   with non-uniform sampling, run iterative elimination, and check each
   selected predictor against the recorded ground truth.

   Run with:  dune exec examples/multibug_triage.exe
   (takes ~30s: it trains sampling rates and interprets ~1100 runs) *)

open Sbi_experiments
open Sbi_core

let config =
  {
    Harness.default_config with
    Harness.seed = 7;
    nruns = Some 1000;
    sampling = Harness.Adaptive 150;
    confidence = 0.95;
  }

let () =
  let study = Sbi_corpus.Corpus.mossim in
  Printf.printf "subject: %s (%d LoC, %d seeded bugs)\n%!" study.Sbi_corpus.Study.name
    (Sbi_corpus.Study.loc_count study)
    (List.length study.Sbi_corpus.Study.bugs);
  Printf.printf "collecting %d monitored runs (adaptive sampling)...\n%!" 1000;
  let bundle = Harness.collect_study ~config study in
  let ds = bundle.Harness.dataset in
  Printf.printf "failing runs: %d of %d\n" (Sbi_runtime.Dataset.num_failures ds)
    (Sbi_runtime.Dataset.nruns ds);
  print_endline "\nground-truth bug frequencies (known only because this is a controlled experiment):";
  List.iter
    (fun b ->
      Printf.printf "  bug #%d: %4d failing runs — %s\n" b
        (Sbi_runtime.Dataset.runs_with_bug ds b)
        (Sbi_corpus.Study.bug_name study b))
    (Sbi_runtime.Dataset.bug_ids ds);

  let analysis = Harness.analyze bundle in
  let selections = analysis.Analysis.elimination.Eliminate.selections in
  Printf.printf "\nelimination selected %d predictors:\n" (List.length selections);
  List.iter
    (fun (sel : Eliminate.selection) ->
      let verdict =
        match Harness.dominant_bug bundle ~pred:sel.Eliminate.pred with
        | Some b -> Printf.sprintf "points at bug #%d (%s)" b (Sbi_corpus.Study.bug_name study b)
        | None -> "no dominant bug"
      in
      Printf.printf "  %d. [imp %.3f, F=%-3d] %s\n       -> %s\n" sel.Eliminate.rank
        sel.Eliminate.effective.Scores.importance sel.Eliminate.effective.Scores.f
        (Harness.describe bundle ~pred:sel.Eliminate.pred)
        verdict)
    selections;

  (* Affinity browsing, as in the paper's interactive tool: for the top
     predictor, which other retained predicates deflate when its runs are
     removed?  High-affinity entries are predictors of the same bug. *)
  (match selections with
  | top :: _ ->
      Printf.printf "\naffinity list of predictor 1 (same-bug companions first):\n";
      let entries = Analysis.affinity_for analysis ~pred:top.Eliminate.pred in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: r -> x :: take (k - 1) r
      in
      List.iter
        (fun (e : Affinity.entry) ->
          Printf.printf "  drop %.3f  %s\n" e.Affinity.drop
            (Harness.describe bundle ~pred:e.Affinity.pred))
        (take 5 entries)
  | [] -> ());

  print_endline "\nfull Table-3-style report:";
  print_endline (Table3.render bundle)
