(* Aggregated test runner for the statistical bug isolation reproduction. *)

let () =
  Alcotest.run "sbi"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("texttab", Test_texttab.suite);
      ("topk", Test_topk.suite);
      ("lang", Test_lang.suite);
      ("interp", Test_interp.suite);
      ("query", Test_query.suite);
      ("generated-programs", Test_gen.suite);
      ("vm", Test_vm.suite);
      ("instrument", Test_instrument.suite);
      ("runtime", Test_runtime.suite);
      ("ingest", Test_ingest.suite);
      ("json", Test_json.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("store", Test_store.suite);
      ("index", Test_index.suite);
      ("sbfl", Test_sbfl.suite);
      ("serve", Test_serve.suite);
      ("fault", Test_fault.suite);
      ("cli", Test_cli.suite);
      ("core", Test_core.suite);
      ("logreg", Test_logreg.suite);
      ("corpus", Test_corpus.suite);
      ("experiments", Test_experiments.suite);
    ]
