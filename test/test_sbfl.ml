(* Tests for the SBFL formula zoo: hand-computed formula values on a
   canonical counter cell, division-by-zero conventions, the registry,
   deterministic tie-breaking, bit-identity of sbfl:importance /
   sbfl:increase with the legacy Scores/Rank path (random datasets,
   through Triage.Snap, and after incremental ingest), the ground-truth
   evaluation harness, and the per-study bug-label pins backing it. *)
open Sbi_runtime
open Sbi_core
open Sbi_sbfl

let feq = Alcotest.float 1e-12

(* --- canonical counter table: hand-computed formula values ---

   ef = 8 failing and ep = 2 successful runs with P true, out of F = 10
   failing and S = 30 successful runs; P's site sampled in 10 failing
   and 20 successful runs. *)

let canon =
  { Formula.f = 8; s = 2; f_obs = 10; s_obs = 20; num_f = 10; num_s = 30 }

let test_formula_values () =
  let score (fm : Formula.t) = fm.Formula.score canon in
  Alcotest.check feq "tarantula" (0.8 /. (0.8 +. (2. /. 30.))) (score Formula.tarantula);
  Alcotest.check feq "ochiai" (8. /. sqrt (10. *. 10.)) (score Formula.ochiai);
  Alcotest.check feq "dstar2" (64. /. 4.) (score Formula.dstar2);
  Alcotest.check feq "dstar3" (512. /. 4.) (score Formula.dstar3);
  Alcotest.check feq "jaccard" (8. /. 12.) (score Formula.jaccard);
  Alcotest.check feq "op2" (8. -. (2. /. 31.)) (score Formula.op2);
  (* increase = Failure - Context = 8/10 - 10/30 *)
  let increase = (8. /. 10.) -. (10. /. 30.) in
  Alcotest.check feq "increase" increase (score Formula.increase);
  (* importance = harmonic mean of increase and log 8 / log 10 *)
  let sens = log 8. /. log 10. in
  Alcotest.check feq "importance" (2. /. ((1. /. increase) +. (1. /. sens)))
    (score Formula.importance)

let test_formula_conventions () =
  let zero = { Formula.f = 0; s = 0; f_obs = 0; s_obs = 0; num_f = 10; num_s = 30 } in
  List.iter
    (fun (fm : Formula.t) ->
      Alcotest.check feq ("zero cell: " ^ fm.Formula.name) 0. (fm.Formula.score zero))
    Formula.builtins;
  (* perfect predictor: true in every failing run, never in a success *)
  let perfect = { Formula.f = 5; s = 0; f_obs = 5; s_obs = 10; num_f = 5; num_s = 10 } in
  Alcotest.(check bool) "dstar2 perfect = inf" true
    (Formula.dstar2.Formula.score perfect = infinity);
  Alcotest.(check bool) "dstar3 perfect = inf" true
    (Formula.dstar3.Formula.score perfect = infinity);
  Alcotest.check feq "tarantula perfect" 1. (Formula.tarantula.Formula.score perfect);
  (* every built-in is NaN-free on adversarial cells *)
  let cells =
    [
      zero; perfect; canon;
      { Formula.f = 0; s = 7; f_obs = 0; s_obs = 7; num_f = 0; num_s = 7 };
      { Formula.f = 3; s = 0; f_obs = 3; s_obs = 0; num_f = 3; num_s = 0 };
      { Formula.f = 1; s = 1; f_obs = 1; s_obs = 1; num_f = 1; num_s = 1 };
    ]
  in
  List.iter
    (fun (fm : Formula.t) ->
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (fm.Formula.name ^ " never NaN")
            false
            (Float.is_nan (fm.Formula.score c)))
        cells)
    Formula.builtins;
  (* non-finite scores must serialize as JSON null, not break the emitter *)
  Alcotest.(check string) "inf -> json null" "null"
    (Sbi_util.Json.to_string (Sbi_util.Json.Num infinity))

let test_registry () =
  Alcotest.(check string) "default is importance" "importance"
    Registry.default.Formula.name;
  (match Registry.find "OCHIAI" with
  | Some f -> Alcotest.(check string) "case-insensitive find" "ochiai" f.Formula.name
  | None -> Alcotest.fail "find OCHIAI");
  Alcotest.(check bool) "unknown find" true (Registry.find "nope" = None);
  (match Registry.find_exn "zzz-custom" with
  | exception Invalid_argument m ->
      Alcotest.(check bool) "error names the known formulas" true
        (String.length m > 0
        && List.for_all
             (fun n ->
               let rec contains i =
                 i + String.length n <= String.length m
                 && (String.sub m i (String.length n) = n || contains (i + 1))
               in
               contains 0)
             (Registry.names ()))
  | _ -> Alcotest.fail "find_exn should raise on unknown");
  (match Registry.register Formula.ochiai with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate register should raise");
  let custom =
    { Formula.name = "zzz-custom"; descr = "test formula"; score = (fun c -> float_of_int c.Formula.f) }
  in
  Registry.register custom;
  (match Registry.find "zzz-custom" with
  | Some f -> Alcotest.check feq "custom scores" 8. (f.Formula.score canon)
  | None -> Alcotest.fail "custom formula not found");
  Alcotest.(check bool) "custom listed" true (List.mem "zzz-custom" (Registry.names ()))

(* --- deterministic tie-breaking --- *)

let mk_counts ~num_f ~num_s rows =
  let npreds = Array.length rows in
  {
    Counts.npreds;
    f = Array.map (fun (f, _, _, _) -> f) rows;
    s = Array.map (fun (_, s, _, _) -> s) rows;
    f_obs = Array.map (fun (_, _, fo, _) -> fo) rows;
    s_obs = Array.map (fun (_, _, _, so) -> so) rows;
    num_f;
    num_s;
  }

let test_tie_breaking () =
  (* preds 0/2/4 share identical counters (exact score ties under every
     formula); 1/3 share a tarantula score with them but different F *)
  let c =
    mk_counts ~num_f:10 ~num_s:10
      [|
        (6, 0, 10, 10);
        (4, 0, 10, 10);
        (6, 0, 10, 10);
        (4, 0, 10, 10);
        (6, 0, 10, 10);
      |]
  in
  List.iter
    (fun (fm : Formula.t) ->
      let order =
        Array.to_list (Array.map (fun (e : Ranking.entry) -> e.Ranking.pred) (Ranking.rank fm c))
      in
      (* score desc, then F desc, then id asc.  Tarantula scores all five
         rows 1.0 (an exact five-way tie, resolved purely by F then id);
         the other formulas separate F=6 from F=4 but still tie within
         each group.  Every formula must produce the same order. *)
      Alcotest.(check (list int)) ("tie order: " ^ fm.Formula.name) [ 0; 2; 4; 1; 3 ] order)
    [ Formula.tarantula; Formula.ochiai; Formula.dstar2; Formula.jaccard; Formula.op2 ];
  (* reproducible: the same ranking from repeated calls and from topk *)
  let r1 = Ranking.rank Formula.tarantula c in
  let r2 = Ranking.rank Formula.tarantula c in
  Alcotest.(check bool) "rank deterministic" true (r1 = r2);
  let t3 = Ranking.topk ~k:3 Formula.tarantula c in
  Alcotest.(check (list int)) "topk = rank prefix"
    (Array.to_list (Array.map (fun (e : Ranking.entry) -> e.Ranking.pred) (Array.sub r1 0 3)))
    (List.map (fun (e : Ranking.entry) -> e.Ranking.pred) t3);
  (* the generic comparator agrees with the legacy importance ordering *)
  let scores = Scores.score_all c in
  let legacy = Rank.sort Rank.By_importance scores in
  let sbfl = Ranking.rank Formula.importance c in
  Array.iteri
    (fun i (sc : Scores.t) ->
      Alcotest.(check int) "same order as compare_importance_desc" sc.Scores.pred
        sbfl.(i).Ranking.pred)
    legacy

(* --- bit-identity with the legacy Scores/Rank path --- *)

let bits = Int64.bits_of_float

let mk_report ?(outcome = Report.Success) ?(sites = [||]) ?(preds = [||]) ?(bugs = [||]) id =
  {
    Report.run_id = id;
    outcome;
    observed_sites = sites;
    true_preds = preds;
    true_counts = Array.map (fun _ -> 1) preds;
    bugs;
    crash_sig = None;
  }

let nsites = 5
let npreds = 10
let pred_site = [| 0; 0; 1; 1; 2; 2; 3; 3; 4; 4 |]

let random_report st id =
  let obs = ref [] and preds = ref [] in
  let obs_mask = Array.make nsites false in
  for site = nsites - 1 downto 0 do
    if Random.State.float st 1.0 < 0.6 then begin
      obs_mask.(site) <- true;
      obs := site :: !obs
    end
  done;
  for p = npreds - 1 downto 0 do
    if obs_mask.(pred_site.(p)) && Random.State.float st 1.0 < 0.35 then preds := p :: !preds
  done;
  let preds = Array.of_list !preds in
  let buggy = Array.exists (fun p -> p = 3) preds in
  let failing = Random.State.float st 1.0 < if buggy then 0.85 else 0.08 in
  mk_report
    ~outcome:(if failing then Report.Failure else Report.Success)
    ~sites:(Array.of_list !obs) ~preds id

let random_reports st ~start_id n = Array.init n (fun i -> random_report st (start_id + i))
let dataset_of reports = Dataset.of_tables ~nsites ~npreds ~pred_site reports

let qcheck_importance_bit_identical =
  QCheck2.Test.make ~name:"sbfl:importance = Scores/Rank By_importance, bit-identical"
    ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let st = Random.State.make [| seed; 0x5bf1 |] in
      let counts = Counts.compute (dataset_of (random_reports st ~start_id:0 80)) in
      let legacy = Rank.sort Rank.By_importance (Scores.score_all counts) in
      let sbfl = Ranking.rank Formula.importance counts in
      Array.length legacy = Array.length sbfl
      && Array.for_all2
           (fun (sc : Scores.t) (e : Ranking.entry) ->
             sc.Scores.pred = e.Ranking.pred
             && bits sc.Scores.importance = bits e.Ranking.score)
           legacy sbfl)

let qcheck_increase_bit_identical =
  QCheck2.Test.make ~name:"sbfl:increase = Scores/Rank By_increase, bit-identical"
    ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let st = Random.State.make [| seed; 0x17c |] in
      let counts = Counts.compute (dataset_of (random_reports st ~start_id:0 80)) in
      let legacy = Rank.sort Rank.By_increase (Scores.score_all counts) in
      let sbfl = Ranking.rank Formula.increase counts in
      Array.length legacy = Array.length sbfl
      && Array.for_all2
           (fun (sc : Scores.t) (e : Ranking.entry) ->
             sc.Scores.pred = e.Ranking.pred && bits sc.Scores.increase = bits e.Ranking.score)
           legacy sbfl)

let with_temp_dir f =
  let dir = Filename.temp_file "sbi_sbfl" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let write_log ~dir ?(shard = 0) reports =
  let open Sbi_ingest in
  if not (Sys.file_exists (Filename.concat dir "meta")) then
    Shard_log.write_meta ~dir (dataset_of [||]);
  let w = Shard_log.create_writer ~dir ~shard () in
  Array.iter (Shard_log.append w) reports;
  ignore (Shard_log.close_writer w)

(* topk through Triage.Snap must match topk_f importance pred-for-pred and
   bit-for-bit — including after incremental ingest bumps the epoch — and
   stay identical when the snapshot is built by a domain pool. *)
let qcheck_snapshot_path_bit_identical =
  QCheck2.Test.make ~name:"Triage topk_f importance = topk (snapshot path, incl. ingest)"
    ~count:12
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let open Sbi_index in
      let st = Random.State.make [| seed; 0x70c |] in
      with_temp_dir (fun root ->
          let log = Filename.concat root "log" in
          let dir = Filename.concat root "idx" in
          Sys.mkdir log 0o700;
          Sys.mkdir dir 0o700;
          write_log ~dir:log (random_reports st ~start_id:0 60);
          ignore (Index.build ~log ~dir ());
          let idx = Index.open_ ~dir in
          let same snap =
            let hard = Triage.Snap.topk ~k:8 snap in
            let plug = Triage.Snap.topk_f ~k:8 ~formula:Formula.importance snap in
            List.length hard = List.length plug
            && List.for_all2
                 (fun (sc : Scores.t) (e : Ranking.entry) ->
                   sc.Scores.pred = e.Ranking.pred
                   && bits sc.Scores.importance = bits e.Ranking.score
                   && sc.Scores.f = e.Ranking.f && sc.Scores.s = e.Ranking.s)
                 hard plug
          in
          let ok0 = same (Index.snapshot idx) in
          (* incremental ingest: live-tail appends bump the epoch *)
          Array.iter (Index.append idx) (random_reports st ~start_id:60 15);
          let ok1 = same (Index.snapshot idx) in
          (* domain-parallel snapshot build must not change the ranking *)
          let pool = Sbi_par.Domain_pool.create ~clamp:false ~domains:2 () in
          let ok2 =
            Fun.protect
              ~finally:(fun () -> Sbi_par.Domain_pool.shutdown pool)
              (fun () -> same (Index.snapshot ~pool idx))
          in
          ok0 && ok1 && ok2))

(* --- evaluation harness on a synthetic ground truth --- *)

(* 8 failing runs: five exhibit bug 1 (marker pred 0), four bug 2 (marker
   pred 2), one both; pred 1 co-occurs once with each bug (tie -> bug 1).
   Bug 3 occurs only in a successful run, so it has no marker.  Pred 4 is
   true only in successes (never a marker). *)
let eval_ds =
  let all_sites = [| 0; 1; 2 |] in
  let r ?(outcome = Report.Failure) ~preds ~bugs id =
    mk_report ~outcome ~sites:all_sites ~preds ~bugs id
  in
  Dataset.of_tables ~nsites:3 ~npreds:6 ~pred_site:[| 0; 0; 1; 1; 2; 2 |]
    [|
      r ~preds:[| 0 |] ~bugs:[| 1 |] 0;
      r ~preds:[| 0 |] ~bugs:[| 1 |] 1;
      r ~preds:[| 0 |] ~bugs:[| 1 |] 2;
      r ~preds:[| 0; 1 |] ~bugs:[| 1 |] 3;
      r ~preds:[| 2 |] ~bugs:[| 2 |] 4;
      r ~preds:[| 2 |] ~bugs:[| 2 |] 5;
      r ~preds:[| 1; 2 |] ~bugs:[| 2 |] 6;
      r ~preds:[| 0; 2 |] ~bugs:[| 1; 2 |] 7;
      r ~outcome:Report.Success ~preds:[||] ~bugs:[| 3 |] 8;
      r ~outcome:Report.Success ~preds:[| 4 |] ~bugs:[||] 9;
      r ~outcome:Report.Success ~preds:[| 4 |] ~bugs:[||] 10;
      r ~outcome:Report.Success ~preds:[||] ~bugs:[||] 11;
      r ~outcome:Report.Success ~preds:[||] ~bugs:[||] 12;
      r ~outcome:Report.Success ~preds:[||] ~bugs:[||] 13;
      r ~outcome:Report.Success ~preds:[||] ~bugs:[||] 14;
      r ~outcome:Report.Success ~preds:[||] ~bugs:[||] 15;
      r ~outcome:Report.Success ~preds:[||] ~bugs:[||] 16;
      r ~outcome:Report.Success ~preds:[||] ~bugs:[||] 17;
    |]

let test_eval_truth () =
  let truth = Eval.truth eval_ds in
  Alcotest.(check int) "three bugs occur" 3 (List.length truth);
  let find b = List.find (fun (t : Eval.bug) -> t.Eval.bug = b) truth in
  Alcotest.(check (list int)) "bug 1 markers (tie pred 1 -> smaller id)" [ 0; 1 ]
    (find 1).Eval.markers;
  Alcotest.(check (list int)) "bug 2 markers" [ 2 ] (find 2).Eval.markers;
  Alcotest.(check (list int)) "bug 3 has no marker" [] (find 3).Eval.markers;
  Alcotest.(check int) "bug 1 failing runs" 5 (find 1).Eval.failing_runs;
  Alcotest.(check int) "bug 3 failing runs" 0 (find 3).Eval.failing_runs

let test_eval_metrics () =
  let ev = Eval.evaluate ~formulas:[ Formula.importance; Formula.dstar2 ] eval_ds in
  Alcotest.(check int) "runs" 18 ev.Eval.runs;
  Alcotest.(check int) "failing" 8 ev.Eval.failing;
  Alcotest.(check int) "evaluable" 2 ev.Eval.evaluable;
  Alcotest.(check int) "one result per formula" 2 (List.length ev.Eval.results);
  List.iter
    (fun (fr : Eval.formula_result) ->
      (* pred 0 (F=5) outranks pred 2 (F=4) under both formulas *)
      Alcotest.(check (option int)) (fr.Eval.formula ^ ": first bug at rank 1") (Some 1)
        fr.Eval.first_true_bug_rank;
      Alcotest.check feq (fr.Eval.formula ^ ": top1") 0.5 fr.Eval.top1;
      Alcotest.check feq (fr.Eval.formula ^ ": top5") 1.0 fr.Eval.top5;
      Alcotest.check feq (fr.Eval.formula ^ ": top10") 1.0 fr.Eval.top10;
      (match fr.Eval.mean_exam with
      | None -> Alcotest.fail "mean exam expected"
      | Some e -> Alcotest.check feq (fr.Eval.formula ^ ": mean EXAM") 0.25 e);
      let pb b = List.find (fun (pb : Eval.per_bug) -> pb.Eval.pb_bug = b) fr.Eval.bugs in
      Alcotest.(check (option int)) "bug 1 first rank" (Some 1) (pb 1).Eval.pb_first_rank;
      Alcotest.(check (option int)) "bug 2 first rank" (Some 2) (pb 2).Eval.pb_first_rank;
      Alcotest.(check (option int)) "markerless bug unranked" None (pb 3).Eval.pb_first_rank)
    ev.Eval.results

(* --- ground-truth accessor + per-study label pins --- *)

let test_bug_runs_accessor () =
  let mask = Dataset.bug_runs eval_ds 3 in
  Alcotest.(check int) "mask length" 18 (Array.length mask);
  Array.iteri
    (fun i v -> Alcotest.(check bool) "bug 3 only in run 8" (i = 8) v)
    mask;
  (* occurrence regardless of outcome: bug 3 triggered but never failed *)
  Alcotest.(check int) "bug 3 failing count" 0 (Dataset.runs_with_bug eval_ds 3);
  let mask1 = Dataset.bug_runs eval_ds 1 in
  List.iter
    (fun i -> Alcotest.(check bool) (Printf.sprintf "bug 1 in run %d" i) true mask1.(i))
    [ 0; 1; 2; 3; 7 ];
  Alcotest.(check int) "bug 1 failing count" 5 (Dataset.runs_with_bug eval_ds 1)

(* Pinned per-program ground-truth labels: (bug id, failing runs with the
   bug, total runs with the bug) for every bug observed in a deterministic
   120-run collection of each corpus program.  Collection is fully seeded,
   so these are stable across machines; a change here means the
   ground-truth channel itself changed. *)
let label_pins =
  [
    ("mossim", 56,
     [ (1, 15, 17); (2, 2, 2); (3, 7, 7); (4, 4, 4); (5, 27, 27); (6, 6, 6);
       (7, 51, 95); (9, 17, 17) ]);
    ("ccryptim", 32, [ (1, 32, 32) ]);
    ("bcim", 34, [ (1, 34, 34) ]);
    ("exifim", 16, [ (1, 12, 12); (2, 2, 2); (3, 2, 2) ]);
    ("rhythmim", 35, [ (1, 25, 26); (2, 11, 13) ]);
  ]

let test_study_label_pins () =
  let open Sbi_experiments in
  let config =
    {
      Harness.default_config with
      Harness.seed = 42;
      nruns = Some 120;
      sampling = Harness.Uniform 0.05;
    }
  in
  List.iter
    (fun (name, failing, pins) ->
      let study =
        match Sbi_corpus.Corpus.by_name name with
        | Some s -> s
        | None -> Alcotest.failf "unknown study %s" name
      in
      let ds = (Harness.collect_study ~config study).Harness.dataset in
      Alcotest.(check int) (name ^ ": failing runs") failing (Dataset.num_failures ds);
      Alcotest.(check (list int))
        (name ^ ": occurring bug ids")
        (List.map (fun (b, _, _) -> b) pins)
        (Dataset.bug_ids ds);
      let inventory =
        List.map (fun (b : Sbi_corpus.Study.bug) -> b.Sbi_corpus.Study.bug_id)
          study.Sbi_corpus.Study.bugs
      in
      List.iter
        (fun (bug, with_failing, with_total) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s bug %d is in the study inventory" name bug)
            true (List.mem bug inventory);
          Alcotest.(check int)
            (Printf.sprintf "%s bug %d failing occurrences" name bug)
            with_failing (Dataset.runs_with_bug ds bug);
          let mask = Dataset.bug_runs ds bug in
          Alcotest.(check int)
            (Printf.sprintf "%s bug %d total occurrences" name bug)
            with_total
            (Array.fold_left (fun a x -> if x then a + 1 else a) 0 mask);
          (* the mask is exactly the per-run has_bug channel *)
          Array.iteri
            (fun i v ->
              Alcotest.(check bool)
                (Printf.sprintf "%s bug %d mask run %d" name bug i)
                (Report.has_bug ds.Dataset.runs.(i) bug)
                v)
            mask)
        pins)
    label_pins

let suite =
  [
    Alcotest.test_case "formula values on the canonical cell" `Quick test_formula_values;
    Alcotest.test_case "division-by-zero conventions" `Quick test_formula_conventions;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "deterministic tie-breaking" `Quick test_tie_breaking;
    QCheck_alcotest.to_alcotest qcheck_importance_bit_identical;
    QCheck_alcotest.to_alcotest qcheck_increase_bit_identical;
    QCheck_alcotest.to_alcotest qcheck_snapshot_path_bit_identical;
    Alcotest.test_case "eval ground truth + markers" `Quick test_eval_truth;
    Alcotest.test_case "eval metrics" `Quick test_eval_metrics;
    Alcotest.test_case "Dataset.bug_runs accessor" `Quick test_bug_runs_accessor;
    Alcotest.test_case "per-study ground-truth label pins" `Slow test_study_label_pins;
  ]
