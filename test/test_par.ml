(* Tests for the domain pool and the word-level Bitset kernels it fans:
   pool lifecycle and determinism, kernels against bit-at-a-time
   references, and the load-bearing property — parallel snapshot builds
   and parallel elimination rescoring are bit-identical to sequential
   at any pool size. *)
open Sbi_index
open Sbi_par

(* --- domain pool --- *)

(* ~clamp:false throughout: these tests must exercise real cross-domain
   execution (queues, steals, barriers) even on a single-core host where
   the default clamp would collapse the pool to inline execution. *)

let test_pool_basics () =
  let pool = Domain_pool.create ~clamp:false ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "pool size" 3 (Domain_pool.size pool);
      let f = Domain_pool.async pool (fun () -> 6 * 7) in
      Alcotest.(check int) "async/await" 42 (Domain_pool.await f);
      let results = Domain_pool.map_array pool (fun x -> x * x) (Array.init 100 Fun.id) in
      Alcotest.(check (array int)) "map_array" (Array.init 100 (fun i -> i * i)) results;
      (* nested submission from inside a task must not deadlock *)
      let nested =
        Domain_pool.async pool (fun () ->
            Domain_pool.await (Domain_pool.async pool (fun () -> 7)))
      in
      Alcotest.(check int) "nested async" 7 (Domain_pool.await nested))

let test_pool_clamp () =
  (* default: requested domains are capped at the hardware count *)
  let uncapped = Domain_pool.create ~clamp:false ~domains:3 () in
  Alcotest.(check int) "clamp:false honors the request" 3 (Domain_pool.size uncapped);
  Domain_pool.shutdown uncapped;
  let over = 4 * Domain_pool.default_domains () in
  let capped = Domain_pool.create ~domains:over () in
  Alcotest.(check int) "default clamps to hardware domains"
    (Domain_pool.default_domains ()) (Domain_pool.size capped);
  Domain_pool.shutdown capped

let test_pool_parallel_for () =
  let pool = Domain_pool.create ~clamp:false ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let n = 10_001 in
      let out = Array.make n 0 in
      Domain_pool.parallel_for pool ~n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- (2 * i) + 1
          done);
      Alcotest.(check (array int)) "disjoint blocks cover the range"
        (Array.init n (fun i -> (2 * i) + 1))
        out;
      (* empty and single-element ranges *)
      Domain_pool.parallel_for pool ~n:0 (fun _ _ -> Alcotest.fail "no work expected");
      let hit = ref false in
      Domain_pool.parallel_for pool ~n:1 (fun lo hi ->
          if lo = 0 && hi = 1 then hit := true);
      Alcotest.(check bool) "single element" true !hit)

let test_pool_exceptions () =
  let pool = Domain_pool.create ~clamp:false ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      (match Domain_pool.await (Domain_pool.async pool (fun () -> failwith "boom")) with
      | exception Failure m -> Alcotest.(check string) "async exn surfaces" "boom" m
      | _ -> Alcotest.fail "expected Failure");
      (match Domain_pool.parallel_for pool ~n:100 (fun lo _ -> if lo = 0 then failwith "pf") with
      | exception Failure m -> Alcotest.(check string) "parallel_for exn surfaces" "pf" m
      | () -> Alcotest.fail "expected Failure");
      (* the pool is still usable after a failed batch *)
      Alcotest.(check int) "pool survives" 5
        (Domain_pool.await (Domain_pool.async pool (fun () -> 5))))

let test_pool_shutdown_idempotent () =
  let pool = Domain_pool.create ~clamp:false ~domains:2 () in
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* after shutdown, async degrades to inline execution *)
  Alcotest.(check int) "inline after shutdown" 9
    (Domain_pool.await (Domain_pool.async pool (fun () -> 9)))

let test_pool_task_errors () =
  let pool = Domain_pool.create ~clamp:false ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let hooked = Atomic.make 0 in
      Domain_pool.add_error_hook (fun _ -> Atomic.incr hooked);
      Alcotest.(check int) "no errors yet" 0 (Domain_pool.task_errors pool);
      Domain_pool.submit pool (fun () -> failwith "fire-and-forget boom");
      (* the failing task runs on a worker; poll for the count *)
      let deadline = Unix.gettimeofday () +. 5. in
      while Domain_pool.task_errors pool < 1 && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      Alcotest.(check int) "bare submit error counted" 1 (Domain_pool.task_errors pool);
      Alcotest.(check bool) "error hook fired" true (Atomic.get hooked >= 1);
      (* the worker survives the escaped exception *)
      Alcotest.(check int) "pool alive after task error" 11
        (Domain_pool.await (Domain_pool.async pool (fun () -> 11))))

(* The tentpole determinism property: chunked work-stealing fan-outs are
   bit-identical to sequential execution for random (n, grain, domains) —
   chunk boundaries depend only on the geometry, never on which domain
   claims which chunk. *)
let qcheck_chunked_determinism =
  QCheck2.Test.make ~name:"parallel_for/map_array/scratch = sequential over (n, grain, domains)"
    ~count:30
    QCheck2.Gen.(
      quad (int_range 0 20_000) (int_range 1 512) (int_range 1 4) (int_range 0 1000))
    (fun (n, grain, domains, seed) ->
      let pool = Domain_pool.create ~clamp:false ~domains () in
      Fun.protect
        ~finally:(fun () -> Domain_pool.shutdown pool)
        (fun () ->
          let g i = (i * 2654435761) lxor seed in
          (* parallel_for: disjoint writes *)
          let out = Array.make (max n 1) 0 in
          Domain_pool.parallel_for pool ~grain ~n (fun lo hi ->
              for i = lo to hi - 1 do
                out.(i) <- g i
              done);
          let ok_for = Array.init (max n 1) (fun i -> if i < n then g i else 0) = out in
          (* map_array *)
          let arr = Array.init n (fun i -> i + seed) in
          let ok_map = Domain_pool.map_array pool ~grain g arr = Array.map g arr in
          (* scratch fan-out: commutative sum reduction *)
          let total = ref 0 in
          Domain_pool.parallel_for_scratch pool ~grain ~n
            ~scratch:(fun () -> ref 0)
            ~merge:(fun acc -> total := !total + !acc)
            (fun acc lo hi ->
              for i = lo to hi - 1 do
                acc := !acc + g i
              done);
          let expect = ref 0 in
          for i = 0 to n - 1 do
            expect := !expect + g i
          done;
          ok_for && ok_map && !total = !expect))

(* Stress: many concurrent fan-outs from several systhreads sharing one
   pool (tasks interleave in the worker queues and steal across them),
   nested fan-out from inside a worker, and exception propagation while
   other fan-outs are in flight. *)
let test_pool_stress () =
  let pool = Domain_pool.create ~clamp:false ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let failures = Atomic.make 0 in
      let client tid =
        for iter = 1 to 15 do
          let n = 1_000 + (97 * tid) + iter in
          if iter mod 5 = 0 then begin
            (* exception propagation: some chunk raises, barrier rethrows *)
            match
              Domain_pool.parallel_for pool ~grain:7 ~n (fun lo hi ->
                  for i = lo to hi - 1 do
                    if i = n / 2 then failwith "stress-boom"
                  done)
            with
            | exception Failure _ -> ()
            | () -> Atomic.incr failures
          end
          else begin
            let out = Array.make n 0 in
            Domain_pool.parallel_for pool ~grain:7 ~n (fun lo hi ->
                for i = lo to hi - 1 do
                  out.(i) <- i + tid
                done);
            if out <> Array.init n (fun i -> i + tid) then Atomic.incr failures
          end
        done
      in
      let threads = Array.init 4 (fun tid -> Thread.create client tid) in
      (* nested fan-out from inside a worker runs inline, no deadlock *)
      let nested =
        Domain_pool.async pool (fun () ->
            let acc = ref 0 in
            Domain_pool.parallel_for pool ~grain:16 ~n:500 (fun lo hi ->
                for i = lo to hi - 1 do
                  acc := !acc + i
                done);
            !acc)
      in
      Alcotest.(check int) "nested fan-out from worker" (500 * 499 / 2)
        (Domain_pool.await nested);
      Array.iter Thread.join threads;
      Alcotest.(check int) "all concurrent fan-outs correct" 0 (Atomic.get failures);
      Alcotest.(check int) "pool survives the stress" 13
        (Domain_pool.await (Domain_pool.async pool (fun () -> 13))))

(* --- bitset kernels vs bit-at-a-time references --- *)

let random_bitset st len =
  let b = Bitset.create len in
  for i = 0 to len - 1 do
    if Random.State.bool st then Bitset.set b i
  done;
  b

let naive_inter_count a b len =
  let n = ref 0 in
  for i = 0 to len - 1 do
    if Bitset.get a i && Bitset.get b i then incr n
  done;
  !n

let naive_inter_count3 a b c len =
  let n = ref 0 in
  for i = 0 to len - 1 do
    if Bitset.get a i && Bitset.get b i && Bitset.get c i then incr n
  done;
  !n

let gen_len = QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 300))

let qcheck_kernels =
  QCheck2.Test.make ~name:"bitset kernels = bit-at-a-time reference" ~count:100 gen_len
    (fun (seed, len) ->
      let st = Random.State.make [| seed; 0xb17 |] in
      let a = random_bitset st len
      and b = random_bitset st len
      and c = random_bitset st len in
      let ok_counts =
        Bitset.count a = naive_inter_count a a len
        && Bitset.inter_count a b = naive_inter_count a b len
        && Bitset.inter_count3 a b c = naive_inter_count3 a b c len
      in
      (* diff_inplace: a := a \ b *)
      let d = Bitset.copy a in
      Bitset.diff_inplace d b;
      let ok_diff =
        Array.init len (fun i -> Bitset.get d i)
        = Array.init len (fun i -> Bitset.get a i && not (Bitset.get b i))
      in
      (* diff_inter_inplace: a := a \ (b ∧ c) *)
      let e = Bitset.copy a in
      Bitset.diff_inter_inplace e b c;
      let ok_diff3 =
        Array.init len (fun i -> Bitset.get e i)
        = Array.init len (fun i -> Bitset.get a i && not (Bitset.get b i && Bitset.get c i))
      in
      (* full: every bit below len set, none above (popcount proves the tail) *)
      let f = Bitset.full len in
      let ok_full = Bitset.count f = len && Bitset.inter_count f a = Bitset.count a in
      ok_counts && ok_diff && ok_diff3 && ok_full)

let qcheck_of_positions =
  QCheck2.Test.make ~name:"of_positions = set loop" ~count:100
    QCheck2.Gen.(pair (int_range 1 500) (list_size (int_range 0 50) (int_range 0 499)))
    (fun (len, positions) ->
      let positions = List.filter (fun p -> p < len) positions in
      let a = Bitset.of_positions len (Array.of_list positions) in
      let b = Bitset.create len in
      List.iter (Bitset.set b) positions;
      Array.init len (fun i -> Bitset.get a i) = Array.init len (fun i -> Bitset.get b i)
      && Bitset.count a = List.length (List.sort_uniq Int.compare positions))

let suite =
  [
    Alcotest.test_case "pool basics" `Quick test_pool_basics;
    Alcotest.test_case "domain clamp" `Quick test_pool_clamp;
    Alcotest.test_case "parallel_for" `Quick test_pool_parallel_for;
    Alcotest.test_case "task exceptions surface" `Quick test_pool_exceptions;
    Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
    Alcotest.test_case "bare submit errors counted" `Quick test_pool_task_errors;
    Alcotest.test_case "stress: concurrent + nested fan-outs" `Quick test_pool_stress;
    QCheck_alcotest.to_alcotest qcheck_chunked_determinism;
    QCheck_alcotest.to_alcotest qcheck_kernels;
    QCheck_alcotest.to_alcotest qcheck_of_positions;
  ]
