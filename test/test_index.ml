(* Tests for the inverted predicate index and incremental triage queries:
   segment round-trip and corruption posture, incremental builds, fsck,
   live-tail appends, and — the load-bearing property — that every
   index-backed query equals its full-dataset counterpart in
   Sbi_core.Analysis, including after incremental segment appends. *)
open Sbi_runtime
open Sbi_ingest
open Sbi_index

let mk_report ?(outcome = Report.Success) ?(sites = [||]) ?(preds = [||]) id =
  {
    Report.run_id = id;
    outcome;
    observed_sites = sites;
    true_preds = preds;
    true_counts = Array.map (fun _ -> 1) preds;
    bugs = [||];
    crash_sig = None;
  }

let with_temp_dir f =
  let dir = Filename.temp_file "sbi_idx" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let counts_equal (a : Sbi_core.Counts.t) (b : Sbi_core.Counts.t) =
  a.Sbi_core.Counts.npreds = b.Sbi_core.Counts.npreds
  && a.Sbi_core.Counts.f = b.Sbi_core.Counts.f
  && a.Sbi_core.Counts.s = b.Sbi_core.Counts.s
  && a.Sbi_core.Counts.f_obs = b.Sbi_core.Counts.f_obs
  && a.Sbi_core.Counts.s_obs = b.Sbi_core.Counts.s_obs
  && a.Sbi_core.Counts.num_f = b.Sbi_core.Counts.num_f
  && a.Sbi_core.Counts.num_s = b.Sbi_core.Counts.num_s

(* --- random corpora (shared by the equivalence properties) --- *)

let nsites = 5
let npreds = 10
let pred_site = [| 0; 0; 1; 1; 2; 2; 3; 3; 4; 4 |]

let random_report st id =
  let obs = ref [] and preds = ref [] in
  let obs_mask = Array.make nsites false in
  for site = nsites - 1 downto 0 do
    if Random.State.float st 1.0 < 0.6 then begin
      obs_mask.(site) <- true;
      obs := site :: !obs
    end
  done;
  for p = npreds - 1 downto 0 do
    if obs_mask.(pred_site.(p)) && Random.State.float st 1.0 < 0.35 then preds := p :: !preds
  done;
  let preds = Array.of_list !preds in
  let buggy = Array.exists (fun p -> p = 3) preds in
  let failing = Random.State.float st 1.0 < if buggy then 0.85 else 0.08 in
  mk_report
    ~outcome:(if failing then Report.Failure else Report.Success)
    ~sites:(Array.of_list !obs) ~preds id

let random_reports st ~start_id n = Array.init n (fun i -> random_report st (start_id + i))

let dataset_of reports = Dataset.of_tables ~nsites ~npreds ~pred_site reports

let write_log ~dir ?(shard = 0) reports =
  if not (Sys.file_exists (Filename.concat dir "meta")) then
    Shard_log.write_meta ~dir (dataset_of [||]);
  let w = Shard_log.create_writer ~dir ~shard () in
  Array.iter (Shard_log.append w) reports;
  ignore (Shard_log.close_writer w)

(* append frames to an existing shard file, as a still-open writer would *)
let grow_shard ~dir ~shard reports =
  let path = Filename.concat dir (Printf.sprintf "shard-%04d.sbil" shard) in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  let buf = Buffer.create 512 in
  Array.iter
    (fun r ->
      Buffer.clear buf;
      Codec.add_framed buf r;
      Buffer.output_buffer oc buf)
    reports;
  close_out oc

let flip s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.to_string b

let corrupt_one_byte path offset =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (flip s offset);
  close_out oc

(* --- bitset --- *)

let test_bitset () =
  let b = Bitset.create 131 in
  Alcotest.(check int) "empty count" 0 (Bitset.count b);
  List.iter (Bitset.set b) [ 0; 1; 63; 64; 100; 130 ];
  Alcotest.(check int) "count" 6 (Bitset.count b);
  Alcotest.(check bool) "get set" true (Bitset.get b 63);
  Alcotest.(check bool) "get clear" false (Bitset.get b 62);
  Bitset.clear b 63;
  Alcotest.(check int) "after clear" 5 (Bitset.count b);
  let f = Bitset.full 131 in
  Alcotest.(check int) "full" 131 (Bitset.count f);
  Alcotest.(check int) "and full" 5 (Bitset.count_and b f);
  let c = Bitset.copy b in
  Bitset.clear c 0;
  Alcotest.(check bool) "copy is independent" true (Bitset.get b 0 && not (Bitset.get c 0));
  Alcotest.(check int) "of_positions"
    3
    (Bitset.count (Bitset.of_positions 70 [| 2; 64; 69 |]));
  Alcotest.(check int) "length" 131 (Bitset.length b)

(* --- segments --- *)

let sample_reports =
  [|
    mk_report ~outcome:Report.Failure ~sites:[| 0; 1; 3 |] ~preds:[| 0; 3; 6 |] 10;
    mk_report ~sites:[| 0; 2 |] ~preds:[| 1; 4 |] 11;
    mk_report ~sites:[||] ~preds:[||] 12;
    mk_report ~outcome:Report.Failure ~sites:[| 4 |] ~preds:[| 8; 9 |] 15;
  |]

let mk_segment () =
  Segment.of_reports ~nsites ~npreds ~source_shard:2 ~start_off:6 ~end_off:999 sample_reports

let segment_equal (a : Segment.t) (b : Segment.t) =
  a.Segment.source_shard = b.Segment.source_shard
  && a.Segment.start_off = b.Segment.start_off
  && a.Segment.end_off = b.Segment.end_off
  && a.Segment.nsites = b.Segment.nsites
  && a.Segment.npreds = b.Segment.npreds
  && a.Segment.nruns = b.Segment.nruns
  && a.Segment.run_ids = b.Segment.run_ids
  && a.Segment.site_obs = b.Segment.site_obs
  && a.Segment.pred_true = b.Segment.pred_true
  && Array.init a.Segment.nruns (Bitset.get a.Segment.failing)
     = Array.init b.Segment.nruns (Bitset.get b.Segment.failing)

let test_segment_round_trip () =
  let seg = mk_segment () in
  Alcotest.(check int) "nruns" 4 seg.Segment.nruns;
  Alcotest.(check bool) "failing bit" true (Bitset.get seg.Segment.failing 0);
  Alcotest.(check bool) "success bit" false (Bitset.get seg.Segment.failing 1);
  Alcotest.(check bool) "posting for pred 3" true (seg.Segment.pred_true.(3) = [| 0 |]);
  let seg' = Segment.decode (Segment.encode seg) in
  Alcotest.(check bool) "round trip" true (segment_equal seg seg')

let test_segment_aggregator () =
  let seg = mk_segment () in
  let agg = Segment.aggregator ~pred_site seg in
  let direct = Aggregator.empty ~nsites ~npreds ~pred_site in
  Array.iter (Aggregator.observe direct) sample_reports;
  Alcotest.(check bool) "segment aggregate = fold of reports" true
    (counts_equal (Aggregator.to_counts agg) (Aggregator.to_counts direct))

let test_segment_corruption () =
  let encoded = Segment.encode (mk_segment ()) in
  Alcotest.(check bool) "decodes clean" true
    (segment_equal (mk_segment ()) (Segment.decode encoded));
  for off = 0 to String.length encoded - 1 do
    match Segment.decode (flip encoded off) with
    | _ -> Alcotest.failf "flipped byte %d must not decode" off
    | exception Segment.Corrupt _ -> ()
  done;
  (match Segment.decode (String.sub encoded 0 (String.length encoded - 1)) with
  | _ -> Alcotest.fail "truncated segment must not decode"
  | exception Segment.Corrupt _ -> ());
  match Segment.of_reports ~nsites ~npreds ~source_shard:0 ~start_off:0 ~end_off:0
          [| mk_report ~sites:[| nsites |] 0 |]
  with
  | _ -> Alcotest.fail "out-of-range site must be rejected"
  | exception Invalid_argument _ -> ()

(* A site or predicate repeated within one report must collapse to a single
   posting position; duplicates would break the strictly-increasing delta
   encoding and render the segment unreadable. *)
let test_segment_duplicate_observations () =
  let reports =
    [|
      mk_report ~outcome:Report.Failure ~sites:[| 0; 1; 1 |] ~preds:[| 3; 3 |] 0;
      mk_report ~sites:[| 1; 2 |] ~preds:[| 4 |] 1;
    |]
  in
  let seg =
    Segment.of_reports ~nsites ~npreds ~source_shard:0 ~start_off:0 ~end_off:10 reports
  in
  Alcotest.(check bool) "site posting deduped" true (seg.Segment.site_obs.(1) = [| 0; 1 |]);
  Alcotest.(check bool) "pred posting deduped" true (seg.Segment.pred_true.(3) = [| 0 |]);
  Alcotest.(check bool) "round trips" true
    (segment_equal seg (Segment.decode (Segment.encode seg)))

(* --- index build / open / incremental --- *)

let test_build_and_open () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 11 |] in
      let reports = random_reports st ~start_id:0 60 in
      write_log ~dir:log reports;
      let b = Index.build ~log ~dir:idx_dir () in
      Alcotest.(check int) "one segment" 1 b.Index.segments_added;
      Alcotest.(check int) "all records" 60 b.Index.records_indexed;
      let idx = Index.open_ ~dir:idx_dir in
      Alcotest.(check int) "runs" 60 (Index.nruns idx);
      Alcotest.(check int) "failures"
        (Dataset.num_failures (dataset_of reports))
        (Index.num_failures idx);
      Alcotest.(check bool) "counts = Counts.compute" true
        (counts_equal (Triage.counts idx) (Sbi_core.Counts.compute (dataset_of reports)));
      let b2 = Index.build ~log ~dir:idx_dir () in
      Alcotest.(check int) "rebuild is a no-op" 0 b2.Index.segments_added;
      Alcotest.(check int) "no new bytes" 0 b2.Index.bytes_consumed)

let test_incremental_build () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 12 |] in
      let first = random_reports st ~start_id:0 40 in
      write_log ~dir:log first;
      ignore (Index.build ~log ~dir:idx_dir ());
      (* source shard 0 grows, and a brand-new shard 1 appears *)
      let grown = random_reports st ~start_id:40 25 in
      grow_shard ~dir:log ~shard:0 grown;
      let fresh = random_reports st ~start_id:65 30 in
      write_log ~dir:log ~shard:1 fresh;
      let b = Index.build ~log ~dir:idx_dir () in
      Alcotest.(check int) "two new segments" 2 b.Index.segments_added;
      Alcotest.(check int) "only new records" 55 b.Index.records_indexed;
      let idx = Index.open_ ~dir:idx_dir in
      Alcotest.(check int) "total segments" 3 (Array.length idx.Index.segments);
      let all = Array.concat [ first; grown; fresh ] in
      Alcotest.(check int) "runs" 95 (Index.nruns idx);
      Alcotest.(check bool) "counts over all segments" true
        (counts_equal (Triage.counts idx) (Sbi_core.Counts.compute (dataset_of all))))

let test_corrupt_source_skipped () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 13 |] in
      write_log ~dir:log (random_reports st ~start_id:0 30);
      (* damage one record mid-shard: the build must skip it and keep going *)
      corrupt_one_byte (Filename.concat log "shard-0000.sbil") 200;
      let b = Index.build ~log ~dir:idx_dir () in
      Alcotest.(check bool) "skipped something" true (b.Index.corrupt_skipped >= 1);
      let idx = Index.open_ ~dir:idx_dir in
      Alcotest.(check int) "intact records indexed" b.Index.records_indexed (Index.nruns idx))

let test_corrupt_segment_and_fsck () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 14 |] in
      write_log ~dir:log (random_reports st ~start_id:0 20);
      write_log ~dir:log ~shard:1 (random_reports st ~start_id:20 20);
      ignore (Index.build ~log ~dir:idx_dir ());
      let clean = Index.fsck ~dir:idx_dir in
      Alcotest.(check int) "fsck: all ok" 2 clean.Index.fsck_ok;
      Alcotest.(check int) "fsck: none corrupt" 0 clean.Index.fsck_corrupt;
      Alcotest.(check int) "fsck: records" 40 clean.Index.fsck_records;
      let seg1 = Filename.concat idx_dir "seg-0001.sbix" in
      corrupt_one_byte seg1 60;
      let damaged = Index.fsck ~dir:idx_dir in
      Alcotest.(check int) "fsck: one corrupt" 1 damaged.Index.fsck_corrupt;
      (* the lazy open reads header + footer only, so body damage is
         fsck's to find — open_ still sees a well-formed footer *)
      let idx = Index.open_ ~dir:idx_dir in
      Alcotest.(check int) "lazy open does not read bodies" 0
        idx.Index.stats.Index.segments_corrupt;
      (* damage the trailer too: now the footer path open_ takes fails *)
      let sz = (Unix.stat seg1).Unix.st_size in
      corrupt_one_byte seg1 (sz - 6);
      let idx = Index.open_ ~dir:idx_dir in
      Alcotest.(check int) "open skips corrupt segment" 1
        idx.Index.stats.Index.segments_corrupt;
      Alcotest.(check int) "open keeps intact segment" 20 (Index.nruns idx);
      match Index.open_ ~dir:(Filename.concat tmp "nope") with
      | _ -> Alcotest.fail "missing index must raise"
      | exception Index.Format_error _ -> ())

let test_tail_append () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 15 |] in
      let base = random_reports st ~start_id:0 35 in
      write_log ~dir:log base;
      ignore (Index.build ~log ~dir:idx_dir ());
      let idx = Index.open_ ~dir:idx_dir in
      let live = random_reports st ~start_id:35 12 in
      Array.iter (Index.append idx) live;
      Alcotest.(check int) "tail count" 12 (Index.tail_count idx);
      Alcotest.(check int) "runs include tail" 47 (Index.nruns idx);
      let all = Array.append base live in
      Alcotest.(check bool) "counts include tail" true
        (counts_equal (Triage.counts idx) (Sbi_core.Counts.compute (dataset_of all)));
      (match Index.append idx (mk_report ~sites:[| nsites + 3 |] 99) with
      | () -> Alcotest.fail "bad site must be rejected"
      | exception Invalid_argument _ -> ());
      Alcotest.(check int) "rejected append left no trace" 12 (Index.tail_count idx))

(* --- equivalence with the full-dataset analysis --- *)

let scores_equal (a : Sbi_core.Scores.t) (b : Sbi_core.Scores.t) = compare a b = 0

let selection_equal (a : Sbi_core.Eliminate.selection) (b : Sbi_core.Eliminate.selection) =
  compare a b = 0

let elimination_equal (a : Sbi_core.Eliminate.result) (b : Sbi_core.Eliminate.result) =
  List.length a.Sbi_core.Eliminate.selections = List.length b.Sbi_core.Eliminate.selections
  && List.for_all2 selection_equal a.Sbi_core.Eliminate.selections
       b.Sbi_core.Eliminate.selections
  && a.Sbi_core.Eliminate.runs_remaining = b.Sbi_core.Eliminate.runs_remaining
  && a.Sbi_core.Eliminate.failures_remaining = b.Sbi_core.Eliminate.failures_remaining
  && a.Sbi_core.Eliminate.candidates_remaining = b.Sbi_core.Eliminate.candidates_remaining

let check_equivalent ~msg idx ds =
  let reference = Sbi_core.Analysis.analyze ds in
  let indexed = Triage.analyze idx in
  Alcotest.(check bool) (msg ^ ": counts") true
    (counts_equal indexed.Triage.counts reference.Sbi_core.Analysis.counts);
  Alcotest.(check (list int)) (msg ^ ": retained set") reference.Sbi_core.Analysis.retained
    indexed.Triage.retained;
  Alcotest.(check bool) (msg ^ ": elimination") true
    (elimination_equal indexed.Triage.elimination
       reference.Sbi_core.Analysis.elimination);
  (* top-k agrees with ranking every retained score *)
  let all = Sbi_core.Prune.retained_scores reference.Sbi_core.Analysis.counts in
  Array.sort Sbi_core.Scores.compare_importance_desc all;
  let k = 5 in
  let expected = Array.to_list (Array.sub all 0 (min k (Array.length all))) in
  let got = Triage.topk ~k idx in
  Alcotest.(check bool) (msg ^ ": topk") true
    (List.length expected = List.length got && List.for_all2 scores_equal expected got);
  (* per-predicate detail and affinity against the reference analysis *)
  List.iter
    (fun pred ->
      Alcotest.(check bool) (msg ^ ": pred detail") true
        (scores_equal
           (Sbi_core.Scores.score reference.Sbi_core.Analysis.counts ~pred)
           (Triage.pred_detail idx ~pred)))
    reference.Sbi_core.Analysis.retained;
  match reference.Sbi_core.Analysis.elimination.Sbi_core.Eliminate.selections with
  | [] -> ()
  | sel :: _ ->
      let pred = sel.Sbi_core.Eliminate.pred in
      let expected = Sbi_core.Analysis.affinity_for reference ~pred in
      let got =
        Triage.affinity idx ~selected:pred ~others:reference.Sbi_core.Analysis.retained
      in
      Alcotest.(check bool) (msg ^ ": affinity") true
        (List.length expected = List.length got
        && List.for_all2 (fun a b -> compare a b = 0) expected got)

let qcheck_index_matches_analysis =
  QCheck2.Test.make ~name:"index-backed analysis = Analysis.analyze (incl. incremental)"
    ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      with_temp_dir (fun tmp ->
          let log = Filename.concat tmp "log" in
          let idx_dir = Filename.concat tmp "idx" in
          let st = Random.State.make [| seed; 0x1db |] in
          let n1 = 20 + Random.State.int st 40 in
          let first = random_reports st ~start_id:0 n1 in
          write_log ~dir:log first;
          ignore (Index.build ~log ~dir:idx_dir ());
          check_equivalent ~msg:"initial" (Index.open_ ~dir:idx_dir) (dataset_of first);
          (* incremental: shard 0 grows and shard 1 appears, only the new
             bytes are compiled, and the merged answers still match *)
          let n2 = 10 + Random.State.int st 20 in
          let grown = random_reports st ~start_id:n1 n2 in
          grow_shard ~dir:log ~shard:0 grown;
          let n3 = 10 + Random.State.int st 20 in
          let fresh = random_reports st ~start_id:(n1 + n2) n3 in
          write_log ~dir:log ~shard:1 fresh;
          let b = Index.build ~log ~dir:idx_dir () in
          if b.Index.records_indexed <> n2 + n3 then
            Alcotest.failf "incremental build re-read old records (%d <> %d)"
              b.Index.records_indexed (n2 + n3);
          let idx = Index.open_ ~dir:idx_dir in
          let all = Array.concat [ first; grown; fresh ] in
          check_equivalent ~msg:"incremental" idx (dataset_of all);
          (* live tail on top of on-disk segments *)
          let live = random_reports st ~start_id:(n1 + n2 + n3) 8 in
          Array.iter (Index.append idx) live;
          check_equivalent ~msg:"with tail" idx (dataset_of (Array.append all live));
          true))

let qcheck_discard_proposals =
  QCheck2.Test.make ~name:"index elimination matches all three discard proposals" ~count:12
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      with_temp_dir (fun tmp ->
          let log = Filename.concat tmp "log" in
          let idx_dir = Filename.concat tmp "idx" in
          let st = Random.State.make [| seed; 0x2dc |] in
          let reports = random_reports st ~start_id:0 (30 + Random.State.int st 30) in
          write_log ~dir:log reports;
          ignore (Index.build ~log ~dir:idx_dir ());
          let idx = Index.open_ ~dir:idx_dir in
          let ds = dataset_of reports in
          List.for_all
            (fun discard ->
              elimination_equal
                (Triage.eliminate ~discard idx)
                (Sbi_core.Eliminate.run ~discard ds))
            [
              Sbi_core.Eliminate.Discard_all_true;
              Sbi_core.Eliminate.Discard_failing_true;
              Sbi_core.Eliminate.Relabel_failing;
            ]))

(* The snapshot cache must be transparent: queries interleaved with
   ingest (which bumps the epoch and invalidates the cache) always match
   a fresh analysis of the materialized corpus, and repeated queries at
   one epoch reuse the same snapshot. *)
let qcheck_snapshot_cache =
  QCheck2.Test.make ~name:"snapshot-cached triage = Analysis under interleaved ingest" ~count:12
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      with_temp_dir (fun tmp ->
          let log = Filename.concat tmp "log" in
          let idx_dir = Filename.concat tmp "idx" in
          let st = Random.State.make [| seed; 0x54a |] in
          let base = random_reports st ~start_id:0 (25 + Random.State.int st 25) in
          write_log ~dir:log base;
          ignore (Index.build ~log ~dir:idx_dir ());
          let idx = Index.open_ ~dir:idx_dir in
          let all = ref (Array.to_list base) in
          let rounds = 3 + Random.State.int st 3 in
          for round = 1 to rounds do
            (* query (twice: second hit must come from the cached snapshot) *)
            let ds = dataset_of (Array.of_list !all) in
            check_equivalent ~msg:(Printf.sprintf "round %d fresh" round) idx ds;
            let epoch_before = Index.epoch idx in
            let s1 = Index.snapshot idx and s2 = Index.snapshot idx in
            if s1 != s2 then Alcotest.fail "snapshot not cached within an epoch";
            check_equivalent ~msg:(Printf.sprintf "round %d cached" round) idx ds;
            if Index.epoch idx <> epoch_before then
              Alcotest.fail "reads must not bump the epoch";
            (* ingest a few live reports: epoch bumps, cache invalidates *)
            let live = random_reports st ~start_id:(List.length !all) (1 + Random.State.int st 6) in
            Array.iter (Index.append idx) live;
            all := !all @ Array.to_list live;
            if Index.epoch idx = epoch_before then
              Alcotest.fail "append must bump the epoch";
            if Index.snapshot idx == s1 then Alcotest.fail "stale snapshot served after append"
          done;
          true))

(* Parallel rescoring partitions the predicate space into static blocks
   with disjoint writes, so any pool size must reproduce the sequential
   integers exactly — same selections, same scores, under all three §5
   discard proposals. *)
let qcheck_parallel_elimination =
  QCheck2.Test.make ~name:"parallel elimination bit-identical to Analysis (all discards)"
    ~count:8
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 2 5))
    (fun (seed, domains) ->
      with_temp_dir (fun tmp ->
          let log = Filename.concat tmp "log" in
          let idx_dir = Filename.concat tmp "idx" in
          let st = Random.State.make [| seed; 0x9a7 |] in
          let reports = random_reports st ~start_id:0 (30 + Random.State.int st 30) in
          write_log ~dir:log reports;
          ignore (Index.build ~log ~dir:idx_dir ());
          let pool = Sbi_par.Domain_pool.create ~clamp:false ~domains () in
          Fun.protect
            ~finally:(fun () -> Sbi_par.Domain_pool.shutdown pool)
            (fun () ->
              let idx = Index.open_par ~pool ~dir:idx_dir in
              (* tail runs exercise the tail view on the parallel path too *)
              let live = random_reports st ~start_id:(Array.length reports) 6 in
              Array.iter (Index.append idx) live;
              let ds = dataset_of (Array.append reports live) in
              check_equivalent ~msg:"parallel open + snapshot" idx ds;
              List.for_all
                (fun discard ->
                  let seq = Triage.eliminate ~discard idx in
                  let par = Triage.eliminate ~pool ~discard idx in
                  let reference = Sbi_core.Eliminate.run ~discard ds in
                  elimination_equal par reference && elimination_equal seq reference
                  &&
                  let a = Triage.affinity idx ~selected:3 ~others:[ 0; 1; 2; 4 ] in
                  let b = Triage.affinity ~pool idx ~selected:3 ~others:[ 0; 1; 2; 4 ] in
                  a = b)
                [
                  Sbi_core.Eliminate.Discard_all_true;
                  Sbi_core.Eliminate.Discard_failing_true;
                  Sbi_core.Eliminate.Relabel_failing;
                ])))

let qcheck_cooccurrence =
  QCheck2.Test.make ~name:"posting-list co-occurrence = report rescan" ~count:20
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 0 (npreds - 1)) (int_range 0 (npreds - 1)))
    (fun (seed, a, b) ->
      with_temp_dir (fun tmp ->
          let log = Filename.concat tmp "log" in
          let idx_dir = Filename.concat tmp "idx" in
          let st = Random.State.make [| seed; 0x3c0 |] in
          let reports = random_reports st ~start_id:0 40 in
          write_log ~dir:log reports;
          ignore (Index.build ~log ~dir:idx_dir ());
          let idx = Index.open_ ~dir:idx_dir in
          let naive =
            Array.fold_left
              (fun acc r -> if Report.is_true r a && Report.is_true r b then acc + 1 else acc)
              0 reports
          in
          Triage.cooccurrence idx ~a ~b = naive))

(* --- tiered compaction --- *)

(* grow the log in waves, compiling each wave into its own segment *)
let build_waves ~log ~idx_dir ~st ~waves ~per_wave =
  let total = ref 0 in
  for w = 0 to waves - 1 do
    let reports = random_reports st ~start_id:!total per_wave in
    if w = 0 then write_log ~dir:log reports else grow_shard ~dir:log ~shard:0 reports;
    ignore (Index.build ~log ~dir:idx_dir ());
    total := !total + per_wave
  done;
  !total

let test_compact_reduces_and_preserves () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 21 |] in
      let total = build_waves ~log ~idx_dir ~st ~waves:6 ~per_wave:15 in
      let before = Index.fsck ~dir:idx_dir in
      Alcotest.(check int) "six segments before" 6 (List.length before.Index.fsck_segments);
      (* the whole query surface, recorded before compaction via the
         reference analysis — equality on both sides is bit-identity *)
      let ds =
        let st = Random.State.make [| 21 |] in
        dataset_of (random_reports st ~start_id:0 total)
      in
      check_equivalent ~msg:"before compact" (Index.open_ ~dir:idx_dir) ds;
      let stats = Index.compact ~tier_max:2 ~dir:idx_dir () in
      Alcotest.(check bool) "segments reduced" true
        (stats.Index.cp_segments_after < stats.Index.cp_segments_before);
      Alcotest.(check int) "before count matches fsck" 6 stats.Index.cp_segments_before;
      Alcotest.(check bool) "rounds ran" true (stats.Index.cp_rounds >= 1);
      Alcotest.(check bool) "live bytes shrink" true
        (stats.Index.cp_bytes_after <= stats.Index.cp_bytes_before);
      (* default remove_old deletes the merged-away inputs *)
      List.iter
        (fun f ->
          if Sys.file_exists (Filename.concat idx_dir f) then
            Alcotest.failf "reclaimed file %s still present" f)
        stats.Index.cp_reclaimed;
      let idx = Index.open_ ~dir:idx_dir in
      Alcotest.(check int) "no run lost" total (Index.nruns idx);
      check_equivalent ~msg:"after compact" idx ds;
      (* the compacted index still takes appends and incremental builds *)
      let st2 = Random.State.make [| 22 |] in
      let live = random_reports st2 ~start_id:total 7 in
      Array.iter (Index.append idx) live;
      Alcotest.(check int) "tail after compact" 7 (Index.tail_count idx);
      let after = Index.fsck ~dir:idx_dir in
      Alcotest.(check int) "fsck clean" 0 after.Index.fsck_corrupt;
      Alcotest.(check int) "fsck records" total after.Index.fsck_records;
      Alcotest.(check bool) "no dead files" true (after.Index.fsck_dead_files = []))

let test_compact_plan_is_dry () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 23 |] in
      ignore (build_waves ~log ~idx_dir ~st ~waves:4 ~per_wave:10);
      let listing () = List.sort compare (Array.to_list (Sys.readdir idx_dir)) in
      let files = listing () in
      let plan = Index.compact_plan ~tier_max:2 ~dir:idx_dir () in
      Alcotest.(check bool) "plan proposes a merge" true (plan.Index.pl_groups <> []);
      let tier0_files =
        match plan.Index.pl_groups with (_, fs) :: _ -> List.length fs | [] -> 0
      in
      Alcotest.(check int) "all four members listed" 4 tier0_files;
      Alcotest.(check bool) "dry run wrote nothing" true (listing () = files);
      (* an already-compacted index plans nothing *)
      ignore (Index.compact ~tier_max:2 ~dir:idx_dir ());
      let plan2 = Index.compact_plan ~tier_max:2 ~dir:idx_dir () in
      Alcotest.(check bool) "quiescent after compact" true (plan2.Index.pl_groups = []))

let test_compact_rejects_corrupt_member () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 24 |] in
      ignore (build_waves ~log ~idx_dir ~st ~waves:3 ~per_wave:10);
      corrupt_one_byte (Filename.concat idx_dir "seg-0001.sbix") 40;
      (match Index.compact ~tier_max:2 ~dir:idx_dir () with
      | _ -> Alcotest.fail "compacting a corrupt member must fail loudly"
      | exception Index.Format_error _ -> ());
      (* nothing was half-merged: the index still opens and fsck still
         sees exactly one damaged segment *)
      Alcotest.(check int) "damage still isolated" 1
        (Index.fsck ~dir:idx_dir).Index.fsck_corrupt)

let test_fsck_tier_report () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      let st = Random.State.make [| 25 |] in
      let total = build_waves ~log ~idx_dir ~st ~waves:3 ~per_wave:12 in
      let r = Index.fsck ~dir:idx_dir in
      List.iter
        (fun seg ->
          Alcotest.(check int)
            (Printf.sprintf "tier of %s" seg.Index.seg_file)
            (Sbi_store.Tier.tier_of seg.Index.seg_runs)
            seg.Index.seg_tier)
        r.Index.fsck_segments;
      (* the per-tier rollup accounts for every intact segment and run *)
      let tier_segs = List.fold_left (fun a (_, s, _, _) -> a + s) 0 r.Index.fsck_tiers in
      let tier_runs = List.fold_left (fun a (_, _, n, _) -> a + n) 0 r.Index.fsck_tiers in
      Alcotest.(check int) "tier rollup covers all segments" r.Index.fsck_ok tier_segs;
      Alcotest.(check int) "tier rollup covers all runs" total tier_runs;
      let tiers_listed = List.map (fun (t, _, _, _) -> t) r.Index.fsck_tiers in
      Alcotest.(check bool) "tiers ascend" true
        (tiers_listed = List.sort_uniq compare tiers_listed))

let qcheck_compaction_bit_identity =
  QCheck2.Test.make ~name:"compaction preserves every triage answer bit-for-bit" ~count:10
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 2 5))
    (fun (seed, waves) ->
      with_temp_dir (fun tmp ->
          let log = Filename.concat tmp "log" in
          let idx_dir = Filename.concat tmp "idx" in
          let st = Random.State.make [| seed; 0x7e4 |] in
          let per_wave = 8 + Random.State.int st 20 in
          let total = build_waves ~log ~idx_dir ~st ~waves ~per_wave in
          let ds =
            let st = Random.State.make [| seed; 0x7e4 |] in
            ignore (8 + Random.State.int st 20);
            dataset_of (random_reports st ~start_id:0 total)
          in
          let stats = Index.compact ~tier_max:2 ~dir:idx_dir () in
          if stats.Index.cp_segments_after >= waves then
            Alcotest.fail "compaction left too many segments";
          check_equivalent ~msg:"post-compact" (Index.open_ ~dir:idx_dir) ds;
          (Index.fsck ~dir:idx_dir).Index.fsck_corrupt = 0))

let suite =
  [
    Alcotest.test_case "bitset" `Quick test_bitset;
    Alcotest.test_case "segment round trip" `Quick test_segment_round_trip;
    Alcotest.test_case "segment aggregator" `Quick test_segment_aggregator;
    Alcotest.test_case "segment corruption" `Quick test_segment_corruption;
    Alcotest.test_case "segment duplicate observations" `Quick
      test_segment_duplicate_observations;
    Alcotest.test_case "build and open" `Quick test_build_and_open;
    Alcotest.test_case "incremental build" `Quick test_incremental_build;
    Alcotest.test_case "corrupt source record skipped" `Quick test_corrupt_source_skipped;
    Alcotest.test_case "corrupt segment + fsck" `Quick test_corrupt_segment_and_fsck;
    Alcotest.test_case "live tail append" `Quick test_tail_append;
    Alcotest.test_case "compact reduces segments, preserves answers" `Quick
      test_compact_reduces_and_preserves;
    Alcotest.test_case "compact --dry-run plans without writing" `Quick
      test_compact_plan_is_dry;
    Alcotest.test_case "compact rejects corrupt member" `Quick
      test_compact_rejects_corrupt_member;
    Alcotest.test_case "fsck tier report" `Quick test_fsck_tier_report;
    QCheck_alcotest.to_alcotest qcheck_compaction_bit_identity;
    QCheck_alcotest.to_alcotest qcheck_index_matches_analysis;
    QCheck_alcotest.to_alcotest qcheck_discard_proposals;
    QCheck_alcotest.to_alcotest qcheck_snapshot_cache;
    QCheck_alcotest.to_alcotest qcheck_parallel_elimination;
    QCheck_alcotest.to_alcotest qcheck_cooccurrence;
  ]
