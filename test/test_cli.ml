(* Cram-style CLI tests: drive the installed cbi binary as a subprocess
   and pin down exit codes and error messages on missing/corrupt paths,
   plus the --json contract (parses, and matches both the in-process
   analysis and the human-readable table). *)
open Sbi_runtime
open Sbi_ingest
open Sbi_util

let cbi_exe = "../bin/cbi.exe"

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run_cbi args =
  let out = Filename.temp_file "cbi_out" ".txt" in
  let err = Filename.temp_file "cbi_err" ".txt" in
  let rc = Sys.command (Filename.quote_command cbi_exe args ~stdout:out ~stderr:err) in
  let stdout = slurp out and stderr = slurp err in
  Sys.remove out;
  Sys.remove err;
  (rc, stdout, stderr)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains msg needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: expected %S in output:\n%s" msg needle hay

let with_temp_dir f =
  let dir = Filename.temp_file "sbi_cli" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* --- fixture corpus (same shape as test_index's) --- *)

let nsites = 5
let npreds = 10
let pred_site = [| 0; 0; 1; 1; 2; 2; 3; 3; 4; 4 |]

let mk_report i =
  let failing = i mod 4 = 0 in
  {
    Report.run_id = i;
    outcome = (if failing then Report.Failure else Report.Success);
    observed_sites = [| 0; 1; 2; 3; 4 |];
    true_preds = (if failing then [| 0; 5 |] else [| 1; (i mod 3) + 6 |]);
    true_counts = [| 1; 1 |];
    bugs = [||];
    crash_sig = None;
  }

let reports = Array.init 48 mk_report
let dataset = Dataset.of_tables ~nsites ~npreds ~pred_site reports

let write_log dir =
  Shard_log.write_meta ~dir (Dataset.of_tables ~nsites ~npreds ~pred_site [||]);
  let w = Shard_log.create_writer ~dir ~shard:0 () in
  Array.iter (Shard_log.append w) reports;
  ignore (Shard_log.close_writer w)

(* --- exit codes and error messages --- *)

let test_missing_paths () =
  let rc, _, err = run_cbi [ "analyze-file"; "/nonexistent/sbi-ds" ] in
  Alcotest.(check int) "analyze-file missing: exit 2" 2 rc;
  check_contains "analyze-file missing" "no such file or directory" err;
  let rc, _, err = run_cbi [ "index"; "/nonexistent/sbi-log"; "-o"; "/tmp/sbi-cli-idx" ] in
  Alcotest.(check int) "index missing log: exit 2" 2 rc;
  check_contains "index missing log" "no such shard-log directory" err;
  let rc, _, err = run_cbi [ "fsck"; "/nonexistent/sbi-idx" ] in
  Alcotest.(check int) "fsck missing: exit 2" 2 rc;
  check_contains "fsck missing" "no such index directory" err;
  let rc, _, err = run_cbi [ "query"; "/nonexistent/sbi.sock"; "ping" ] in
  Alcotest.(check int) "query unreachable: exit 2" 2 rc;
  check_contains "query unreachable" "cannot connect" err;
  let rc, _, err = run_cbi [ "query"; "not-an-address"; "ping" ] in
  Alcotest.(check int) "query bad address: exit 2" 2 rc;
  check_contains "query bad address" "bad address" err

let test_corrupt_paths () =
  with_temp_dir (fun tmp ->
      let garbage = Filename.concat tmp "garbage" in
      let oc = open_out garbage in
      output_string oc "this is not a dataset\n";
      close_out oc;
      let rc, _, err = run_cbi [ "analyze-file"; garbage ] in
      Alcotest.(check int) "garbage dataset: exit 2" 2 rc;
      check_contains "garbage dataset" "cannot read dataset" err;
      (* a directory without shard-log meta is not a log *)
      let notlog = Filename.concat tmp "notlog" in
      Sys.mkdir notlog 0o700;
      let rc, _, err = run_cbi [ "analyze-file"; notlog ] in
      Alcotest.(check int) "meta-less log: exit 2" 2 rc;
      Alcotest.(check bool) "mentions cbi:" true (contains ~needle:"cbi:" err);
      let rc, _, err = run_cbi [ "index"; notlog; "-o"; Filename.concat tmp "idx0" ] in
      Alcotest.(check int) "index meta-less log: exit 2" 2 rc;
      Alcotest.(check bool) "index error prefixed" true (contains ~needle:"cbi:" err);
      (* bad proposal value *)
      let ds_path = Filename.concat tmp "ds" in
      Dataset.save ds_path dataset;
      let rc, _, err = run_cbi [ "analyze-file"; ds_path; "--proposal"; "9" ] in
      Alcotest.(check int) "bad proposal: exit 2" 2 rc;
      check_contains "bad proposal" "--proposal must be 1, 2, or 3" err)

let test_index_fsck_cli () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx = Filename.concat tmp "idx" in
      write_log log;
      let rc, out, _ = run_cbi [ "index"; log; "-o"; idx ] in
      Alcotest.(check int) "index: exit 0" 0 rc;
      check_contains "index reports records" "+48 record(s)" out;
      let rc, out, _ = run_cbi [ "fsck"; idx ] in
      Alcotest.(check int) "fsck clean: exit 0" 0 rc;
      check_contains "fsck summary" "0 corrupt" out;
      (* flip one byte in a segment: fsck must fail with exit 1 *)
      let seg = Filename.concat idx "seg-0000.sbix" in
      let s = slurp seg in
      let b = Bytes.of_string s in
      Bytes.set b 50 (Char.chr (Char.code (Bytes.get b 50) lxor 1));
      let oc = open_out_bin seg in
      output_bytes oc b;
      close_out oc;
      let rc, out, _ = run_cbi [ "fsck"; idx ] in
      Alcotest.(check int) "fsck corrupt: exit 1" 1 rc;
      check_contains "fsck names the segment" "seg-0000.sbix" out)

(* --- the --json contract --- *)

let parse_json s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "--json output does not parse: %s\n%s" e s

let get_int doc key =
  match Option.bind (Json.member key doc) Json.to_int with
  | Some v -> v
  | None -> Alcotest.failf "--json output lacks integer %S" key

let test_analyze_file_json () =
  with_temp_dir (fun tmp ->
      let ds_path = Filename.concat tmp "ds" in
      Dataset.save ds_path dataset;
      let rc, out, _ = run_cbi [ "analyze-file"; ds_path; "--json" ] in
      Alcotest.(check int) "exit 0" 0 rc;
      let doc = parse_json out in
      (* matches the in-process analysis bit for bit *)
      let reference = Sbi_core.Analysis.analyze dataset in
      let s = Sbi_core.Analysis.summary reference in
      Alcotest.(check int) "runs" s.Sbi_core.Analysis.runs (get_int doc "runs");
      Alcotest.(check int) "failing" s.Sbi_core.Analysis.failing (get_int doc "failing");
      Alcotest.(check int) "retained" s.Sbi_core.Analysis.retained_preds
        (get_int doc "retained");
      Alcotest.(check int) "selected" s.Sbi_core.Analysis.selected_preds
        (get_int doc "selected");
      let selections =
        match Option.bind (Json.member "selections" doc) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no selections array"
      in
      Alcotest.(check int) "selection count" s.Sbi_core.Analysis.selected_preds
        (List.length selections);
      List.iteri
        (fun i sel_doc ->
          let sel =
            List.nth reference.Sbi_core.Analysis.elimination.Sbi_core.Eliminate.selections i
          in
          Alcotest.(check int) "selection pred" sel.Sbi_core.Eliminate.pred
            (get_int sel_doc "pred");
          Alcotest.(check int) "selection rank" sel.Sbi_core.Eliminate.rank
            (get_int sel_doc "rank");
          let importance =
            match
              Option.bind (Json.member "effective" sel_doc) (fun eff ->
                  Option.bind (Json.member "importance" eff) Json.to_float)
            with
            | Some v -> v
            | None -> Alcotest.fail "no effective.importance"
          in
          Alcotest.(check (float 1e-12)) "selection importance"
            sel.Sbi_core.Eliminate.effective.Sbi_core.Scores.importance importance)
        selections;
      (* and agrees with the human-readable table *)
      let rc, human, _ = run_cbi [ "analyze-file"; ds_path ] in
      Alcotest.(check int) "human table exit 0" 0 rc;
      check_contains "human summary line"
        (Printf.sprintf "%d runs (%d failing)" s.Sbi_core.Analysis.runs
           s.Sbi_core.Analysis.failing)
        human;
      List.iter
        (fun sel_doc ->
          match Option.bind (Json.member "text" sel_doc) Json.to_str with
          | Some text -> check_contains "selection text in human table" text human
          | None -> Alcotest.fail "selection lacks text")
        selections)

let test_stream_json () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      write_log log;
      let rc, out, _ = run_cbi [ "analyze-file"; log; "--stream"; "--json"; "--top"; "4" ] in
      Alcotest.(check int) "exit 0" 0 rc;
      let doc = parse_json out in
      Alcotest.(check int) "runs" (Array.length reports) (get_int doc "runs");
      Alcotest.(check int) "shards" 1 (get_int doc "shards");
      let counts = Sbi_core.Counts.compute dataset in
      let retained = Sbi_core.Prune.retained_scores counts in
      Alcotest.(check int) "retained" (Array.length retained) (get_int doc "retained");
      Array.sort Sbi_core.Scores.compare_importance_desc retained;
      let top =
        match Option.bind (Json.member "top" doc) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no top array"
      in
      Alcotest.(check int) "top length" (min 4 (Array.length retained)) (List.length top);
      List.iteri
        (fun i sc_doc ->
          Alcotest.(check int) "top pred" retained.(i).Sbi_core.Scores.pred
            (get_int sc_doc "pred"))
        top)

(* --- serve --slow-ms and trace-dump --- *)

let test_serve_slowlog_trace_cli () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx = Filename.concat tmp "idx" in
      write_log log;
      let rc, _, _ = run_cbi [ "index"; log; "-o"; idx ] in
      Alcotest.(check int) "index: exit 0" 0 rc;
      (* a negative threshold refuses to start *)
      let rc, _, err =
        run_cbi [ "serve"; idx; "-a"; Filename.concat tmp "x.sock"; "--slow-ms=-1" ]
      in
      Alcotest.(check int) "--slow-ms -1: exit 2" 2 rc;
      check_contains "names the flag" "--slow-ms" err;
      (* serve with --slow-ms 0: every request lands in the slow-query log *)
      let sock = Filename.concat tmp "cbi.sock" in
      let errf = Filename.concat tmp "serve.err" in
      let err_fd = Unix.openfile errf [ Unix.O_WRONLY; Unix.O_CREAT ] 0o600 in
      let pid =
        Unix.create_process cbi_exe
          [| cbi_exe; "serve"; idx; "-a"; sock; "--slow-ms"; "0" |]
          Unix.stdin Unix.stdout err_fd
      in
      Unix.close err_fd;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          let deadline = Unix.gettimeofday () +. 10. in
          while not (Sys.file_exists sock) && Unix.gettimeofday () < deadline do
            Unix.sleepf 0.05
          done;
          Alcotest.(check bool) "server socket appears" true (Sys.file_exists sock);
          let rc, _, _ = run_cbi [ "query"; sock; "topk"; "3" ] in
          Alcotest.(check int) "query topk: exit 0" 0 rc;
          (* trace-dump shows the span the request just opened *)
          let rc, out, _ = run_cbi [ "trace-dump"; sock ] in
          Alcotest.(check int) "trace-dump: exit 0" 0 rc;
          check_contains "topk request traced" "name=serve.topk" out;
          (* the slow-query line reaches the server's stderr *)
          let deadline = Unix.gettimeofday () +. 10. in
          while
            (not (contains ~needle:"slow-query cmd=topk" (slurp errf)))
            && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.05
          done;
          let err = slurp errf in
          check_contains "slow-query logged" "slow-query cmd=topk" err;
          check_contains "arguments digested" "args=#" err;
          check_contains "snapshot epoch recorded" "epoch=" err))

let suite =
  [
    Alcotest.test_case "missing paths" `Quick test_missing_paths;
    Alcotest.test_case "corrupt paths" `Quick test_corrupt_paths;
    Alcotest.test_case "index + fsck" `Quick test_index_fsck_cli;
    Alcotest.test_case "analyze-file --json" `Quick test_analyze_file_json;
    Alcotest.test_case "--stream --json" `Quick test_stream_json;
    Alcotest.test_case "serve --slow-ms + trace-dump" `Quick test_serve_slowlog_trace_cli;
  ]
