(* Tests for the fault-injection layer and the crash-recovery behaviour
   it exists to prove: retry backoff schedules, torn/truncated on-disk
   state across the log -> index pipeline, kill-during-atomic-write
   semantics, robust wire I/O under benign socket faults, client
   deadlines, and per-connection server fault isolation. *)
open Sbi_runtime
open Sbi_ingest
open Sbi_index
open Sbi_serve
open Sbi_fault

let with_temp_dir f =
  let dir = Filename.temp_file "sbi_fault" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* --- retry --- *)

let test_retry_delays () =
  let p = { Retry.default with Retry.max_attempts = 5; seed = 7 } in
  let d1 = Retry.delays_ms p and d2 = Retry.delays_ms p in
  Alcotest.(check (list int)) "same policy, same schedule" d1 d2;
  Alcotest.(check int) "one delay per retry" (p.Retry.max_attempts - 1) (List.length d1);
  List.iteri
    (fun i d ->
      let nominal = min (p.Retry.base_delay_ms * (1 lsl i)) p.Retry.max_delay_ms in
      let lo = float_of_int nominal *. (1. -. p.Retry.jitter) in
      let hi = float_of_int nominal *. (1. +. p.Retry.jitter) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d (%dms) within jitter of %dms" i d nominal)
        true
        (float_of_int d >= lo -. 1. && float_of_int d <= hi +. 1.))
    d1;
  let other = Retry.delays_ms { p with Retry.seed = 8 } in
  Alcotest.(check bool) "different seed, different jitter" true (d1 <> other)

let test_retry_run () =
  let no_sleep _ = () in
  let p = { Retry.default with Retry.max_attempts = 4 } in
  (* succeeds on the third attempt *)
  let calls = ref 0 in
  let r =
    Retry.run ~sleep:no_sleep p (fun () ->
        incr calls;
        if !calls < 3 then Error (`Retry "flaky") else Ok "done")
  in
  Alcotest.(check (result string string)) "eventual success" (Ok "done") r;
  Alcotest.(check int) "stopped once it succeeded" 3 !calls;
  (* exhausts every attempt *)
  let calls = ref 0 in
  (match Retry.run ~sleep:no_sleep p (fun () -> incr calls; Error (`Retry "down")) with
  | Ok _ -> Alcotest.fail "must exhaust"
  | Error m -> Alcotest.(check bool) "error keeps the cause" true (m = "down" || String.length m > 0));
  Alcotest.(check int) "used every attempt" p.Retry.max_attempts !calls;
  (* fatal errors never retry *)
  let calls = ref 0 in
  (match Retry.run ~sleep:no_sleep p (fun () -> incr calls; Error (`Fatal "no route")) with
  | Ok _ -> Alcotest.fail "fatal must fail"
  | Error _ -> ());
  Alcotest.(check int) "fatal short-circuits" 1 !calls;
  (* no_retry makes exactly one attempt *)
  let calls = ref 0 in
  ignore (Retry.run ~sleep:no_sleep Retry.no_retry (fun () -> incr calls; Error (`Retry "x")));
  Alcotest.(check int) "no_retry is one attempt" 1 !calls

(* --- fixture reports --- *)

let nsites = 4
let npreds = 8
let pred_site = [| 0; 0; 1; 1; 2; 2; 3; 3 |]
let meta = Dataset.of_tables ~nsites ~npreds ~pred_site [||]

let mk_report i =
  {
    Report.run_id = i;
    outcome = (if i mod 3 = 0 then Report.Failure else Report.Success);
    observed_sites = [| 0; (i mod 3) + 1 |];
    true_preds = [| i mod npreds |];
    true_counts = [| 1 + (i mod 5) |];
    bugs = [||];
    crash_sig = None;
  }

let write_log ~dir n =
  Shard_log.write_meta ~dir meta;
  let w = Shard_log.create_writer ~dir ~shard:0 () in
  for i = 0 to n - 1 do
    Shard_log.append w (mk_report i)
  done;
  ignore (Shard_log.close_writer w)

(* --- crash-shaped on-disk state --- *)

let test_truncated_final_record () =
  with_temp_dir (fun dir ->
      write_log ~dir 20;
      let path = Shard_log.shard_path ~dir 0 in
      (* chop a few bytes off the last record: the classic kill-mid-write *)
      let sz = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o600 in
      Unix.ftruncate fd (sz - 5);
      Unix.close fd;
      let n, st =
        Shard_log.fold ~dir ~init:0 ~f:(fun acc _ -> acc + 1) ()
      in
      Alcotest.(check int) "all but the torn record survive" 19 n;
      Alcotest.(check int) "nothing miscounted as corrupt" 0 st.Shard_log.corrupt_records;
      Alcotest.(check bool) "tail counted as truncated" true (st.Shard_log.truncated_bytes > 0))

let test_torn_segment_and_stale_manifest () =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" and idx = Filename.concat tmp "idx" in
      write_log ~dir:log 30;
      ignore (Index.build ~log ~dir:idx ());
      (* tear the segment: the manifest now points past the valid data *)
      let seg =
        match Array.to_list (Sys.readdir idx) |> List.filter (fun f -> Filename.check_suffix f ".sbix") with
        | s :: _ -> Filename.concat idx s
        | [] -> Alcotest.fail "no segment written"
      in
      let sz = (Unix.stat seg).Unix.st_size in
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0o600 in
      Unix.ftruncate fd (sz / 2);
      Unix.close fd;
      let fr = Index.fsck ~dir:idx in
      Alcotest.(check int) "fsck sees the torn segment" 1 fr.Index.fsck_corrupt;
      (* open_ degrades (skips the segment) rather than dying *)
      let t = Index.open_ ~dir:idx in
      Alcotest.(check int) "open skips it too" 1 t.Index.stats.Index.segments_corrupt;
      (* repair rolls the consumed offset back; rebuild re-indexes everything *)
      let rep = Index.repair ~dir:idx in
      Alcotest.(check bool) "repair dropped the segment" true (List.length rep.Index.rep_dropped = 1);
      Alcotest.(check bool) "repair rolled the shard back" true (rep.Index.rep_rollbacks <> []);
      ignore (Index.build ~log ~dir:idx ());
      let fr = Index.fsck ~dir:idx in
      Alcotest.(check int) "clean after repair + rebuild" 0 fr.Index.fsck_corrupt;
      Alcotest.(check int) "every record re-indexed" 30 fr.Index.fsck_records)

let test_kill_during_dataset_save () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "dataset" in
      let ds = Dataset.of_tables ~nsites ~npreds ~pred_site [||] in
      let io = Io.faulty (Fault.create (Fault.kill_at 1)) in
      (match Dataset.save ~io path ds with
      | () -> Alcotest.fail "kill_at 1 must crash the save"
      | exception Fault.Crash _ -> ());
      Alcotest.(check bool) "target never materialized" false (Sys.file_exists path);
      let strays =
        Array.to_list (Sys.readdir dir) |> List.filter (fun f -> f <> "dataset")
      in
      Alcotest.(check bool) "killed writer leaves its temp file" true (strays <> []);
      (* a restarted process just saves again; the stale temp is inert *)
      Dataset.save path ds;
      let ds' = Dataset.load path in
      Alcotest.(check int) "recovered save round-trips" npreds ds'.Dataset.npreds)

(* --- acked-prefix property --- *)

let qcheck_acked_prefix =
  QCheck2.Test.make ~name:"faulted log replays exactly the acked prefix" ~count:40
    QCheck2.Gen.(pair (int_range 1 60) (int_range 0 1000))
    (fun (kill, seed) ->
      let dir = Filename.temp_file "sbi_prefix" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      let res =
        Crashsim.run_log_case ~dir ~nreports:25
          ~spec:{ (Fault.kill_at ~seed kill) with Fault.p_fsync_fail = 0.05 }
          "qcheck"
      in
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      rm dir;
      if not res.Crashsim.case_ok then
        QCheck2.Test.fail_reportf "invariant violated: %s" res.Crashsim.case_detail;
      true)

(* The group-commit window model: raw (buffered, unfsynced) appends with
   one sync barrier per [batch] reports, killed between appends at a
   random point — possibly mid-window, with acked-but-unflushed bytes in
   the channel buffer.  Recovery must replay the acked prefix intact;
   reports past the last barrier may vanish but never corrupt. *)
let qcheck_group_commit_prefix =
  QCheck2.Test.make ~name:"group-commit window crash keeps the acked prefix" ~count:40
    QCheck2.Gen.(pair (int_range 0 45) (int_range 1 12))
    (fun (kill_after, batch) ->
      let dir = Filename.temp_file "sbi_gcprefix" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      let res =
        Crashsim.run_group_case ~dir ~nreports:40 ~batch ~kill_after ~spec:Fault.quiet
          "qcheck-group"
      in
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      rm dir;
      if not res.Crashsim.case_ok then
        QCheck2.Test.fail_reportf "invariant violated: %s" res.Crashsim.case_detail;
      true)

(* --- wire robustness under benign socket faults --- *)

let test_wire_benign_faults () =
  (* short reads, partial writes, EINTR at high probability: the framed
     protocol must round-trip byte-identically because every primitive
     loops *)
  let spec =
    Fault.with_p ~seed:11
      [ (Fault.Short_read, 0.4); (Fault.Torn_write, 0.4); (Fault.Eintr, 0.2) ]
  in
  let io = Io.faulty (Fault.create spec) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = List.init 40 (fun i -> Printf.sprintf "line %d with some padding" i) in
  let writer =
    Thread.create
      (fun () ->
        for _ = 1 to 20 do
          ignore (Wire.write_ok ~io a ~header:"bulk 40" ~lines:payload)
        done;
        Unix.close a)
      ()
  in
  let rd = Wire.reader ~io b in
  for i = 1 to 20 do
    match Wire.read_response rd with
    | Ok (header, lines) ->
        Alcotest.(check string) (Printf.sprintf "header %d" i) "bulk 40" header;
        Alcotest.(check (list string)) (Printf.sprintf "payload %d intact" i) payload lines
    | Error e -> Alcotest.failf "response %d: unexpected err %s" i e
  done;
  Thread.join writer;
  Unix.close b;
  Alcotest.(check bool) "the injector actually fired" true
    (match Io.fault io with Some f -> Fault.total_injected f > 0 | None -> false)

(* --- server fixture --- *)

let with_server ?(max_request = 1 lsl 20) f =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" and idx_dir = Filename.concat tmp "idx" in
      write_log ~dir:log 24;
      ignore (Index.build ~log ~dir:idx_dir ());
      let idx = Index.open_ ~dir:idx_dir in
      let addr = Wire.Unix_sock (Filename.concat tmp "sock") in
      let config =
        {
          (Server.default_config addr) with
          Server.timeout = 10.;
          fsync = false;
          ingest_log = Some (Filename.concat tmp "ingest");
          max_request;
        }
      in
      let srv = Server.start config idx in
      Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f ~srv ~addr))

let connect_ok addr =
  match Client.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect failed: %s" e

let test_oversized_request_isolated () =
  with_server ~max_request:64 (fun ~srv:_ ~addr ->
      let c = connect_ok addr in
      (match Client.request c (String.make 500 'x') with
      | Error msg ->
          Alcotest.(check bool) "diagnostic names the bound" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "oversized request must err"
      | exception End_of_file -> () (* server may close before the reply is read *));
      (* that connection is dead; the server is not *)
      let c2 = connect_ok addr in
      (match Client.request c2 "ping" with
      | Ok ("pong", _) -> ()
      | _ -> Alcotest.fail "server must survive an oversized request");
      let stats =
        match Client.request c2 "stats" with
        | Ok (_, lines) -> lines
        | _ -> Alcotest.fail "stats"
      in
      Alcotest.(check bool) "fault counter surfaced in stats" true
        (List.exists
           (fun l ->
             String.length l >= 14 && String.sub l 0 14 = "fault.oversize")
           stats);
      Client.close c2)

let test_client_deadline () =
  (* a server that accepts and then stays silent: the client's kernel
     receive deadline must turn the hang into Wire.Timeout *)
  with_temp_dir (fun tmp ->
      let sock = Filename.concat tmp "sock" in
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind listen_fd (Unix.ADDR_UNIX sock);
      Unix.listen listen_fd 4;
      let accepted = ref [] in
      let acceptor =
        Thread.create
          (fun () ->
            try
              let fd, _ = Unix.accept listen_fd in
              accepted := [ fd ]
            with Unix.Unix_error _ -> ())
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          Thread.join acceptor;
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !accepted)
        (fun () ->
          match Client.connect ~timeout_ms:300 ~retry:Retry.no_retry (Wire.Unix_sock sock) with
          | Error e -> Alcotest.failf "connect failed: %s" e
          | Ok c -> (
              let t0 = Unix.gettimeofday () in
              match Client.request c "ping" with
              | exception Wire.Timeout ->
                  let dt = Unix.gettimeofday () -. t0 in
                  Alcotest.(check bool) "deadline honored (not a hang)" true (dt < 5.);
                  Unix.close listen_fd
              | Ok _ | Error _ -> Alcotest.fail "silent server must time out")))

let test_connect_retry_then_error () =
  (* nothing listening: connect must return Error after the configured
     attempts, never raise *)
  with_temp_dir (fun tmp ->
      let sock = Filename.concat tmp "nothing.sock" in
      let retry = { Retry.default with Retry.max_attempts = 2; base_delay_ms = 1 } in
      match Client.connect ~timeout_ms:200 ~retry (Wire.Unix_sock sock) with
      | Ok _ -> Alcotest.fail "connect to nothing must fail"
      | Error msg -> Alcotest.(check bool) "diagnostic non-empty" true (String.length msg > 0))

let suite =
  [
    Alcotest.test_case "retry delays are deterministic and bounded" `Quick test_retry_delays;
    Alcotest.test_case "retry run semantics" `Quick test_retry_run;
    Alcotest.test_case "truncated final record" `Quick test_truncated_final_record;
    Alcotest.test_case "torn segment, stale manifest" `Quick test_torn_segment_and_stale_manifest;
    Alcotest.test_case "kill during dataset save" `Quick test_kill_during_dataset_save;
    QCheck_alcotest.to_alcotest qcheck_acked_prefix;
    QCheck_alcotest.to_alcotest qcheck_group_commit_prefix;
    Alcotest.test_case "wire survives benign socket faults" `Quick test_wire_benign_faults;
    Alcotest.test_case "oversized request is isolated" `Quick test_oversized_request_isolated;
    Alcotest.test_case "client deadline" `Quick test_client_deadline;
    Alcotest.test_case "connect retries then errors" `Quick test_connect_retry_then_error;
  ]
