(* End-to-end experiment tests on reduced run counts: the harness, the
   table renderers, and the headline result — elimination isolates the
   seeded bugs of the MOSS analogue. *)
open Sbi_experiments
open Sbi_core

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let tiny_config =
  {
    Harness.default_config with
    Harness.seed = 42;
    nruns = Some 400;
    sampling = Harness.Adaptive 100;
    confidence = 0.95;
  }

(* The harness defaults to the Bytecode engine; the whole experiment
   pipeline (instrumentation, trained sampling plan, oracle) must produce
   the identical dataset under the reference tree-walk interpreter. *)
let test_harness_engine_equivalence () =
  let config engine =
    {
      Harness.default_config with
      Harness.seed = 11;
      nruns = Some 120;
      sampling = Harness.Adaptive 40;
      engine;
    }
  in
  Alcotest.(check bool) "default engine is bytecode" true
    (Harness.default_config.Harness.engine = Sbi_runtime.Collect.Bytecode
    && Harness.quick_config.Harness.engine = Sbi_runtime.Collect.Bytecode);
  let a =
    Harness.collect_study ~config:(config Sbi_runtime.Collect.Bytecode) Sbi_corpus.Corpus.ccryptim
  in
  let b =
    Harness.collect_study ~config:(config Sbi_runtime.Collect.Tree_walk) Sbi_corpus.Corpus.ccryptim
  in
  let da = a.Harness.dataset and db = b.Harness.dataset in
  Alcotest.(check int) "same run count" (Sbi_runtime.Dataset.nruns da)
    (Sbi_runtime.Dataset.nruns db);
  Array.iteri
    (fun i (r : Sbi_runtime.Report.t) ->
      let r' = db.Sbi_runtime.Dataset.runs.(i) in
      Alcotest.(check bool) "same outcome"
        (Sbi_runtime.Report.outcome_is_failure r.Sbi_runtime.Report.outcome)
        (Sbi_runtime.Report.outcome_is_failure r'.Sbi_runtime.Report.outcome);
      Alcotest.(check (array int)) "same true preds" r.Sbi_runtime.Report.true_preds
        r'.Sbi_runtime.Report.true_preds;
      Alcotest.(check (array int)) "same true counts" r.Sbi_runtime.Report.true_counts
        r'.Sbi_runtime.Report.true_counts;
      Alcotest.(check (array int)) "same observed sites" r.Sbi_runtime.Report.observed_sites
        r'.Sbi_runtime.Report.observed_sites;
      Alcotest.(check (option string)) "same crash signature" r.Sbi_runtime.Report.crash_sig
        r'.Sbi_runtime.Report.crash_sig)
    da.Sbi_runtime.Dataset.runs

(* Collected once, shared by the tests below. *)
let moss_bundle = lazy (Harness.collect_study ~config:tiny_config Sbi_corpus.Corpus.mossim)
let moss_analysis = lazy (Harness.analyze (Lazy.force moss_bundle))

let test_bundle_shape () =
  let b = Lazy.force moss_bundle in
  Alcotest.(check int) "400 runs" 400 (Sbi_runtime.Dataset.nruns b.Harness.dataset);
  Alcotest.(check bool) "has failures" true
    (Sbi_runtime.Dataset.num_failures b.Harness.dataset > 50);
  Alcotest.(check bool) "has successes" true
    (Sbi_runtime.Dataset.num_successes b.Harness.dataset > 100);
  Alcotest.(check bool) "thousands of predicates" true
    (b.Harness.dataset.Sbi_runtime.Dataset.npreds > 2000);
  match b.Harness.plan with
  | Sbi_instrument.Sampler.Per_site rates ->
      Alcotest.(check bool) "adaptive rates include 1.0 and low rates" true
        (Array.exists (fun r -> r = 1.0) rates && Array.exists (fun r -> r < 0.2) rates)
  | _ -> Alcotest.fail "adaptive sampling must yield per-site rates"

let test_pruning_reduction () =
  let a = Lazy.force moss_analysis in
  let s = Analysis.summary a in
  (* the paper reports 2-4 orders of magnitude; at this scale expect >= 80% *)
  Alcotest.(check bool) "pruning reduces predicates by >= 80%" true
    (float_of_int s.Analysis.retained_preds < 0.2 *. float_of_int s.Analysis.initial_preds);
  Alcotest.(check bool) "elimination reduces further" true
    (s.Analysis.selected_preds < s.Analysis.retained_preds)

let test_elimination_isolates_bugs () =
  let b = Lazy.force moss_bundle in
  let a = Lazy.force moss_analysis in
  let selections = a.Analysis.elimination.Eliminate.selections in
  Alcotest.(check bool) "selected at least 3 predictors" true (List.length selections >= 3);
  let covered =
    List.sort_uniq compare
      (List.filter_map
         (fun (s : Eliminate.selection) -> Harness.dominant_bug b ~pred:s.Eliminate.pred)
         selections)
  in
  (* at 400 runs the common bugs must be isolated (rare ones need more runs) *)
  Alcotest.(check bool)
    (Printf.sprintf "covers >= 3 distinct bugs (got %s)"
       (String.concat "," (List.map string_of_int covered)))
    true
    (List.length covered >= 3);
  Alcotest.(check bool) "dominant bug 5 covered" true (List.mem 5 covered)

let test_selection_scores_sane () =
  let a = Lazy.force moss_analysis in
  List.iter
    (fun (sel : Eliminate.selection) ->
      Alcotest.(check bool) "positive importance at selection" true
        (sel.Eliminate.effective.Scores.importance > 0.);
      Alcotest.(check bool) "F > 0" true (sel.Eliminate.effective.Scores.f > 0);
      Alcotest.(check bool) "increase in (0,1]" true
        (sel.Eliminate.effective.Scores.increase > 0.
        && sel.Eliminate.effective.Scores.increase <= 1.))
    a.Analysis.elimination.Eliminate.selections

let test_assign_selections () =
  let b = Lazy.force moss_bundle in
  let a = Lazy.force moss_analysis in
  let per_bug = Harness.assign_selections_to_bugs b a.Analysis.elimination.Eliminate.selections in
  List.iter
    (fun (bug, (sel : Eliminate.selection)) ->
      match Harness.dominant_bug b ~pred:sel.Eliminate.pred with
      | Some d -> Alcotest.(check int) "assigned to its dominant bug" bug d
      | None -> Alcotest.fail "assigned selection has no failing coverage")
    per_bug;
  let bugs = List.map fst per_bug in
  Alcotest.(check bool) "bug list sorted distinct" true
    (List.sort_uniq compare bugs = bugs)

let test_table1_renders () =
  let out = Table1.render ~top:5 (Lazy.force moss_bundle) in
  Alcotest.(check bool) "has (a)" true (contains out "Table 1(a)");
  Alcotest.(check bool) "has (b)" true (contains out "Table 1(b)");
  Alcotest.(check bool) "has (c)" true (contains out "Table 1(c)");
  Alcotest.(check bool) "has thermometer legend" true (contains out "thermometer");
  Alcotest.(check bool) "has predicate column" true (contains out "Predicate")

let test_table1_shape () =
  (* (a) top row has larger F than (b) top row; (b) top row has larger
     Increase than (a) top row — the paper's super-bug vs sub-bug contrast *)
  let b = Lazy.force moss_bundle in
  let counts = Counts.compute b.Harness.dataset in
  let retained = Prune.retained_scores counts in
  let top strategy =
    match Rank.top ~n:1 strategy retained with
    | [ s ] -> s
    | _ -> Alcotest.fail "no retained predicates"
  in
  let by_f = top Rank.By_failure_count in
  let by_inc = top Rank.By_increase in
  Alcotest.(check bool) "F-ranked top has more failures" true
    (by_f.Scores.f >= by_inc.Scores.f);
  Alcotest.(check bool) "Increase-ranked top has higher increase" true
    (by_inc.Scores.increase >= by_f.Scores.increase)

let test_table3_renders () =
  let out = Table3.render (Lazy.force moss_bundle) in
  Alcotest.(check bool) "title" true (contains out "Table 3");
  Alcotest.(check bool) "ground truth columns" true (contains out "#5");
  Alcotest.(check bool) "ground truth footer" true (contains out "Ground truth")

let test_table2_renders () =
  let b = Lazy.force moss_bundle in
  let out = Table2.render [ (b, Lazy.force moss_analysis) ] in
  Alcotest.(check bool) "title" true (contains out "Table 2");
  Alcotest.(check bool) "study row" true (contains out "mossim");
  Alcotest.(check bool) "LoC column" true (contains out "LoC")

let test_table8_renders () =
  let b = Lazy.force moss_bundle in
  let out = Table8.render [ (b, Lazy.force moss_analysis) ] in
  Alcotest.(check bool) "title" true (contains out "Table 8");
  Alcotest.(check bool) "has N column" true (contains out "N")

let test_table9_renders () =
  let out = Table9.render ~top:5 (Lazy.force moss_bundle) in
  Alcotest.(check bool) "title" true (contains out "Table 9");
  Alcotest.(check bool) "coefficients" true (contains out "Coefficient");
  Alcotest.(check bool) "nonzero summary" true (contains out "nonzero weights")

let test_predictor_table_renders () =
  let out = Predictor_table.render ~title:"Table X: test" (Lazy.force moss_bundle) in
  Alcotest.(check bool) "title" true (contains out "Table X");
  Alcotest.(check bool) "effective column" true (contains out "Effective")

let test_ablation () =
  let rows = Ablation.compare_discards (Lazy.force moss_bundle) in
  Alcotest.(check int) "three proposals" 3 (List.length rows);
  List.iter
    (fun (r : Ablation.row) ->
      Alcotest.(check bool) "each proposal selects something" true (r.Ablation.selections > 0))
    rows;
  let out = Ablation.render (Lazy.force moss_bundle) in
  Alcotest.(check bool) "renders" true (contains out "Proposal")

let test_stack_study () =
  let b = Lazy.force moss_bundle in
  let verdicts = Stack_study.study_verdicts b in
  Alcotest.(check bool) "some bugs manifested" true (List.length verdicts >= 3);
  List.iter
    (fun (v : Stack_study.verdict) ->
      Alcotest.(check bool) "precision in [0,1]" true
        (v.Stack_study.best_precision >= 0. && v.Stack_study.best_precision <= 1.);
      Alcotest.(check bool) "recall in [0,1]" true
        (v.Stack_study.best_recall >= 0. && v.Stack_study.best_recall <= 1.))
    verdicts;
  let out = Stack_study.render [ (b, Lazy.force moss_analysis) ] in
  Alcotest.(check bool) "renders summary" true (contains out "stack useful")

let test_curves () =
  let out = Curves.render (Lazy.force moss_bundle) in
  Alcotest.(check bool) "has axis" true (contains out "(N runs)");
  Alcotest.(check bool) "has legend" true (contains out "bug #");
  Alcotest.(check bool) "plots at least two curves" true
    (contains out "a = " && contains out "b = ")

let test_runs_needed_on_bundle () =
  let b = Lazy.force moss_bundle in
  let a = Lazy.force moss_analysis in
  match a.Analysis.elimination.Eliminate.selections with
  | sel :: _ -> (
      match Runs_needed.min_runs b.Harness.dataset ~pred:sel.Eliminate.pred with
      | Some ans ->
          Alcotest.(check bool) "min runs <= dataset size" true
            (ans.Runs_needed.min_runs <= Sbi_runtime.Dataset.nruns b.Harness.dataset)
      | None -> Alcotest.fail "top predictor must stabilize within the dataset")
  | [] -> Alcotest.fail "no selections"

let test_cooccurrence_consistency () =
  let b = Lazy.force moss_bundle in
  let a = Lazy.force moss_analysis in
  List.iter
    (fun (sel : Eliminate.selection) ->
      let co = Harness.cooccurrence b ~pred:sel.Eliminate.pred in
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 co in
      (* co-occurrence counts failing runs; each counted once per bug it
         exhibits, so the sum is >= F(P) restricted to bug-bearing runs *)
      Alcotest.(check bool) "coverage consistent with F" true
        (total >= 0 && List.for_all (fun (_, n) -> n <= sel.Eliminate.initial.Scores.f) co))
    a.Analysis.elimination.Eliminate.selections

let rhythm_bundle =
  lazy (Harness.collect_study ~config:tiny_config Sbi_corpus.Corpus.rhythmim)

let test_static_followup () =
  let b = Lazy.force rhythm_bundle in
  let f = Static_followup.investigate b in
  Alcotest.(check bool) "disposed refs implicated" true
    (List.mem "timer_priv" f.Static_followup.implicated
    || List.mem "view_priv" f.Static_followup.implicated);
  Alcotest.(check bool) "scan finds instances" true
    (List.length f.Static_followup.uses >= 2);
  let out = Static_followup.render b in
  Alcotest.(check bool) "renders" true (contains out "dispose-then-use")

let test_html_report () =
  let b = Lazy.force moss_bundle in
  let html = Html_report.render b in
  Alcotest.(check bool) "is a document" true (contains html "<!DOCTYPE html>");
  Alcotest.(check bool) "has thermometers" true (contains html "class=\"therm\"");
  Alcotest.(check bool) "has affinity details" true (contains html "<details>");
  Alcotest.(check bool) "has ground truth" true (contains html "Ground truth");
  Alcotest.(check bool) "escapes predicates" true (not (contains html "<= match"));
  let path = Filename.temp_file "sbi_report" ".html" in
  Html_report.write ~path b;
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Alcotest.(check bool) "written to disk" true (size > 2000)

let suite =
  [
    Alcotest.test_case "bundle shape and adaptive plan" `Slow test_bundle_shape;
    Alcotest.test_case "harness engine equivalence" `Slow test_harness_engine_equivalence;
    Alcotest.test_case "static follow-up (§1)" `Slow test_static_followup;
    Alcotest.test_case "html report" `Slow test_html_report;
    Alcotest.test_case "pruning reduction" `Slow test_pruning_reduction;
    Alcotest.test_case "elimination isolates bugs" `Slow test_elimination_isolates_bugs;
    Alcotest.test_case "selection scores sane" `Slow test_selection_scores_sane;
    Alcotest.test_case "per-bug assignment" `Slow test_assign_selections;
    Alcotest.test_case "table 1 renders" `Slow test_table1_renders;
    Alcotest.test_case "table 1 super/sub-bug contrast" `Slow test_table1_shape;
    Alcotest.test_case "table 3 renders" `Slow test_table3_renders;
    Alcotest.test_case "table 2 renders" `Slow test_table2_renders;
    Alcotest.test_case "table 8 renders" `Slow test_table8_renders;
    Alcotest.test_case "table 9 renders" `Slow test_table9_renders;
    Alcotest.test_case "predictor table renders" `Slow test_predictor_table_renders;
    Alcotest.test_case "discard-proposal ablation" `Slow test_ablation;
    Alcotest.test_case "stack study" `Slow test_stack_study;
    Alcotest.test_case "convergence curves" `Slow test_curves;
    Alcotest.test_case "runs-needed on real data" `Slow test_runs_needed_on_bundle;
    Alcotest.test_case "co-occurrence consistency" `Slow test_cooccurrence_consistency;
  ]
