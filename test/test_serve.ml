(* Tests for the triage server stack: base64, wire framing, address
   parsing, metrics, the server lifecycle over a Unix socket, durable
   ingest, and sustained concurrent clients with interleaved requests. *)
open Sbi_runtime
open Sbi_ingest
open Sbi_index
open Sbi_serve

let with_temp_dir f =
  let dir = Filename.temp_file "sbi_srv" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- base64 --- *)

let test_b64_vectors () =
  List.iter
    (fun (plain, enc) ->
      Alcotest.(check string) ("encode " ^ plain) enc (B64.encode plain);
      match B64.decode enc with
      | Ok p -> Alcotest.(check string) ("decode " ^ enc) plain p
      | Error e -> Alcotest.failf "decode %s failed: %s" enc e)
    [
      ("", "");
      ("f", "Zg==");
      ("fo", "Zm8=");
      ("foo", "Zm9v");
      ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE=");
      ("foobar", "Zm9vYmFy");
      ("\x00\xff\x10", "AP8Q");
    ];
  List.iter
    (fun bad ->
      match B64.decode bad with
      | Ok _ -> Alcotest.failf "decode %S should fail" bad
      | Error _ -> ())
    [ "Zg="; "Zg"; "Z"; "Zm9v!"; "=Zg="; "Zm=v"; "Zh==" ]

let qcheck_b64_round_trip =
  QCheck2.Test.make ~name:"base64 round-trips arbitrary bytes" ~count:500
    QCheck2.Gen.string (fun s -> B64.decode (B64.encode s) = Ok s)

(* --- addresses and framing --- *)

let test_addr_parsing () =
  (match Wire.addr_of_string "/tmp/x.sock" with
  | Ok (Wire.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix path");
  (match Wire.addr_of_string "localhost:7077" with
  | Ok (Wire.Tcp ("localhost", 7077)) -> ()
  | _ -> Alcotest.fail "host:port");
  (match Wire.addr_of_string ":8080" with
  | Ok (Wire.Tcp ("127.0.0.1", 8080)) -> ()
  | _ -> Alcotest.fail "default host");
  List.iter
    (fun bad ->
      match Wire.addr_of_string bad with
      | Ok _ -> Alcotest.failf "address %S should be rejected" bad
      | Error _ -> ())
    [ ""; "nohost"; "host:"; "host:0"; "host:99999"; "host:x" ];
  Alcotest.(check string) "to_string" "localhost:7077"
    (Wire.addr_to_string (Wire.Tcp ("localhost", 7077)))

let test_wire_framing () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "frame" in
      let payload = [ "plain"; ".starts with dot"; ""; "..double"; "last" ] in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
      let n1 = Wire.write_ok fd ~header:"topk 5" ~lines:payload in
      let n2 = Wire.write_err fd "boom" in
      Unix.close fd;
      Alcotest.(check bool) "bytes counted" true (n1 > 0 && n2 > 0);
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0o600 in
      let rd = Wire.reader fd in
      (match Wire.read_response rd with
      | Ok (header, lines) ->
          Alcotest.(check string) "header" "topk 5" header;
          Alcotest.(check (list string)) "dot-stuffing round trip" payload lines
      | Error e -> Alcotest.failf "unexpected err: %s" e);
      (match Wire.read_response rd with
      | Error "boom" -> ()
      | _ -> Alcotest.fail "expected err response");
      Unix.close fd)

(* --- metrics --- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.connection_opened m;
  Metrics.record m ~cmd:"topk" ~latency_ns:3_000 ~bytes_in:7 ~bytes_out:100;
  Metrics.record m ~cmd:"topk" ~latency_ns:900_000 ~bytes_in:7 ~bytes_out:100;
  Metrics.record m ~cmd:"pred" ~latency_ns:20_000 ~bytes_in:8 ~bytes_out:50;
  Metrics.connection_closed m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "requests" 3 s.Metrics.requests;
  Alcotest.(check int) "bytes in" 22 s.Metrics.bytes_in;
  Alcotest.(check int) "bytes out" 250 s.Metrics.bytes_out;
  Alcotest.(check int) "open connections" 0 s.Metrics.connections;
  Alcotest.(check int) "total connections" 1 s.Metrics.connections_total;
  Alcotest.(check (list (pair string int))) "per command"
    [ ("pred", 1); ("topk", 2) ]
    s.Metrics.per_command;
  let bound_us = function Sbi_obs.Hist.Le us -> us | Sbi_obs.Hist.Gt us -> us + 1 in
  (match (s.Metrics.p50, s.Metrics.p99) with
  | Some p50, Some p99 ->
      Alcotest.(check bool) "p50 <= p99" true (bound_us p50 <= bound_us p99)
  | _ -> Alcotest.fail "percentiles must be present");
  Alcotest.(check bool) "histogram covers requests" true
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Metrics.latency_buckets = 3);
  Alcotest.(check bool) "stats lines mention requests" true
    (List.exists (fun l -> l = "requests 3") (Metrics.lines m))

(* Regression (ISSUE 5): a 30 s request lands in the overflow bucket and
   must be reported as gt_8388608us with saturated percentiles — never
   under a false finite latency_le_* bound. *)
let test_metrics_overflow () =
  let m = Metrics.create () in
  Metrics.record m ~cmd:"topk" ~latency_ns:30_000_000_000 ~bytes_in:7 ~bytes_out:100;
  let s = Metrics.snapshot m in
  (match s.Metrics.latency_buckets with
  | [ (Sbi_obs.Hist.Gt 8388608, 1) ] -> ()
  | _ -> Alcotest.fail "30s observation must be a distinct Gt 8388608 bucket");
  (match s.Metrics.p50 with
  | Some (Sbi_obs.Hist.Gt 8388608) -> ()
  | _ -> Alcotest.fail "p50 must saturate to Gt 8388608");
  let lines = Metrics.lines m in
  Alcotest.(check bool) "gt line emitted" true (List.mem "latency_gt_8388608us 1" lines);
  Alcotest.(check bool) "p50 saturates" true (List.mem "latency_p50_us >8388608" lines);
  Alcotest.(check bool) "no false le bound" false
    (List.exists
       (fun l -> String.length l >= 11 && String.sub l 0 11 = "latency_le_")
       lines)

(* Regression (ISSUE 5): a negative duration (broken clock source) is
   clamped to 0 and surfaced as clock_anomaly, not silently filed in the
   <=1us bucket as a plausible latency. *)
let test_metrics_clock_anomaly () =
  let m = Metrics.create () in
  Metrics.record m ~cmd:"topk" ~latency_ns:(-5_000_000) ~bytes_in:7 ~bytes_out:100;
  Metrics.record m ~cmd:"topk" ~latency_ns:3_000 ~bytes_in:7 ~bytes_out:100;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "anomaly counted" 1 s.Metrics.clock_anomalies;
  Alcotest.(check int) "both requests recorded" 2
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Metrics.latency_buckets);
  Alcotest.(check bool) "clock_anomaly line" true
    (List.mem "clock_anomaly 1" (Metrics.lines m))

(* Regression (ISSUE 5): faults mid-command are attributed to the
   command so per-command success/failure is reconstructible. *)
let test_metrics_request_error () =
  let m = Metrics.create () in
  Metrics.record m ~cmd:"topk" ~latency_ns:3_000 ~bytes_in:7 ~bytes_out:100;
  Metrics.request_error m ~cmd:"topk";
  Metrics.request_error m ~cmd:"topk";
  Metrics.request_error m ~cmd:"pred";
  let s = Metrics.snapshot m in
  Alcotest.(check (list (pair string int))) "per-command errors"
    [ ("pred", 1); ("topk", 2) ]
    s.Metrics.per_command_err;
  let lines = Metrics.lines m in
  Alcotest.(check bool) "req.topk.err line" true (List.mem "req.topk.err 2" lines);
  Alcotest.(check bool) "req.pred.err line" true (List.mem "req.pred.err 1" lines)

(* --- server fixture --- *)

let nsites = 5
let npreds = 10
let pred_site = [| 0; 0; 1; 1; 2; 2; 3; 3; 4; 4 |]

let mk_report ?(outcome = Report.Success) ?(sites = [||]) ?(preds = [||]) id =
  {
    Report.run_id = id;
    outcome;
    observed_sites = sites;
    true_preds = preds;
    true_counts = Array.map (fun _ -> 1) preds;
    bugs = [||];
    crash_sig = None;
  }

let base_reports =
  Array.init 30 (fun i ->
      let failing = i mod 3 = 0 in
      mk_report
        ~outcome:(if failing then Report.Failure else Report.Success)
        ~sites:[| 0; 1; (i mod 3) + 2 |]
        ~preds:(if failing then [| 0; 3 |] else [| 1 |])
        i)

let with_server ?(fsync = true) ?(group_commit_ms = 0.) ?(timeout = 10.) f =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      Shard_log.write_meta ~dir:log
        (Dataset.of_tables ~nsites ~npreds ~pred_site [||]);
      let w = Shard_log.create_writer ~dir:log ~shard:0 () in
      Array.iter (Shard_log.append w) base_reports;
      ignore (Shard_log.close_writer w);
      ignore (Index.build ~log ~dir:idx_dir ());
      let idx = Index.open_ ~dir:idx_dir in
      let addr = Wire.Unix_sock (Filename.concat tmp "sock") in
      let ingest_dir = Filename.concat tmp "ingest" in
      let config =
        {
          (Server.default_config addr) with
          Server.timeout;
          fsync;
          ingest_log = Some ingest_dir;
          group_commit_ms;
        }
      in
      let srv = Server.start config idx in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () -> f ~srv ~addr ~idx ~ingest_dir))

let connect_ok addr =
  match Client.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect failed: %s" e

let request_ok client line =
  match Client.request client line with
  | Ok (header, lines) -> (header, lines)
  | Error e -> Alcotest.failf "request %S failed: %s" line e

(* --- server lifecycle --- *)

let test_server_basic () =
  with_server (fun ~srv:_ ~addr ~idx ~ingest_dir:_ ->
      let c = connect_ok addr in
      let header, _ = request_ok c "ping" in
      Alcotest.(check string) "ping" "pong" header;
      let expected = Triage.topk ~k:3 idx in
      Alcotest.(check bool) "fixture retains predicates" true (expected <> []);
      let header, lines = request_ok c "topk 3" in
      Alcotest.(check string) "topk header"
        (Printf.sprintf "topk %d" (List.length expected))
        header;
      Alcotest.(check int) "topk lines" (List.length expected) (List.length lines);
      List.iteri
        (fun i line ->
          let sc = List.nth expected i in
          Alcotest.(check bool)
            (Printf.sprintf "rank %d mentions pred %d" (i + 1) sc.Sbi_core.Scores.pred)
            true
            (String.length line > 2
            && int_of_string (List.nth (String.split_on_char ' ' line) 1)
               = sc.Sbi_core.Scores.pred))
        lines;
      let header, lines = request_ok c "pred 3" in
      Alcotest.(check string) "pred header" "pred 3" header;
      Alcotest.(check bool) "pred detail has importance" true
        (List.exists
           (fun l -> String.length l >= 11 && String.sub l 0 11 = "importance ")
           lines);
      let _, stats = request_ok c "stats" in
      Alcotest.(check bool) "stats has runs" true (List.mem "runs 30" stats);
      (match Client.request c "pred 9999" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out-of-range pred must err");
      (match Client.request c "nonsense 1 2 3" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown command must err");
      Client.close c)

let test_server_obs_commands () =
  with_server (fun ~srv:_ ~addr ~idx:_ ~ingest_dir:_ ->
      let c = connect_ok addr in
      ignore (request_ok c "ping");
      ignore (request_ok c "topk 3");
      let header, lines = request_ok c "metrics" in
      Alcotest.(check string) "metrics header" "metrics" header;
      Alcotest.(check bool) "registry saw the fixture's log appends" true
        (List.exists (fun l -> contains l "log.append.count ") lines);
      let header, lines = request_ok c "trace 50" in
      Alcotest.(check bool) "trace header counts lines" true (contains header "trace ");
      Alcotest.(check bool) "earlier request's span is retained" true
        (List.exists (fun l -> contains l "name=serve.topk") lines);
      (match Client.request c "trace nope" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad trace count must err");
      Client.close c)

let test_server_ingest_durable () =
  with_server (fun ~srv ~addr ~idx ~ingest_dir ->
      let c = connect_ok addr in
      let fresh =
        mk_report ~outcome:Report.Failure ~sites:[| 0; 2 |] ~preds:[| 0; 4 |] 1000
      in
      let header, _ =
        request_ok c ("ingest " ^ B64.encode (Codec.encode fresh))
      in
      Alcotest.(check string) "acknowledged" "ingested 1000" header;
      (* durable before the server shuts down: fsync already pushed the
         record into the shard file *)
      let ds, _ = Shard_log.read_all ~dir:ingest_dir in
      Alcotest.(check int) "record on disk while server is live" 1 (Dataset.nruns ds);
      Alcotest.(check int) "live tail" 1 (Index.tail_count idx);
      Alcotest.(check int) "server counter" 1 (Server.ingested srv);
      (* the very next query sees the new run *)
      let _, stats = request_ok c "stats" in
      Alcotest.(check bool) "stats sees 31 runs" true (List.mem "runs 31" stats);
      (* bad payloads must not touch state *)
      (match Client.request c "ingest !!!notbase64" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad base64 must err");
      (match Client.request c "ingest " with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "empty ingest must err");
      let bad_pred = mk_report ~sites:[| 0 |] ~preds:[| npreds + 5 |] 1001 in
      (match Client.request c ("ingest " ^ B64.encode (Codec.encode bad_pred)) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out-of-table report must err");
      Alcotest.(check int) "rejects left no trace" 1 (Index.tail_count idx);
      Client.close c)

let test_server_concurrent_clients () =
  with_server (fun ~srv ~addr ~idx:_ ~ingest_dir:_ ->
      let nclients = 5 and per_client = 12 in
      let errors = Queue.create () in
      let errors_lock = Mutex.create () in
      let fail_locked msg =
        Mutex.lock errors_lock;
        Queue.add msg errors;
        Mutex.unlock errors_lock
      in
      let worker cid =
        try
          let c = connect_ok addr in
          for i = 0 to per_client - 1 do
            match i mod 3 with
            | 0 ->
                let r =
                  mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |]
                    (10_000 + (cid * 1000) + i)
                in
                let header, _ = request_ok c ("ingest " ^ B64.encode (Codec.encode r)) in
                if header <> Printf.sprintf "ingested %d" (10_000 + (cid * 1000) + i) then
                  fail_locked ("bad ingest ack: " ^ header)
            | 1 ->
                let header, lines = request_ok c "topk 5" in
                let n = Scanf.sscanf header "topk %d" (fun n -> n) in
                if n <> List.length lines then fail_locked ("short topk: " ^ header)
            | _ ->
                let header, lines = request_ok c "pred 0" in
                if header <> "pred 0" then fail_locked ("bad pred header: " ^ header);
                if not (List.exists (fun l -> l = "pred 0" || String.length l > 0) lines)
                then fail_locked "empty pred detail"
          done;
          Client.close c
        with e -> fail_locked (Printexc.to_string e)
      in
      let threads = List.init nclients (fun cid -> Thread.create worker cid) in
      List.iter Thread.join threads;
      Alcotest.(check (list string)) "no client errors" [] (List.of_seq (Queue.to_seq errors));
      let ingests = nclients * ((per_client + 2) / 3) in
      Alcotest.(check int) "every ingest accepted" ingests (Server.ingested srv);
      (* all requests were served and accounted.  The handler records a
         request's metrics just after writing its response, so a client can
         see its last reply before the server has recorded it: poll briefly
         instead of asserting on the first stats snapshot. *)
      let c = connect_ok addr in
      let worker_requests stats =
        List.fold_left
          (fun acc l ->
            match String.split_on_char ' ' l with
            | [ ("req.ingest" | "req.topk" | "req.pred"); n ] -> acc + int_of_string n
            | _ -> acc)
          0 stats
      in
      let rec poll tries =
        let _, stats = request_ok c "stats" in
        let n = worker_requests stats in
        if n >= nclients * per_client || tries = 0 then n
        else (
          Thread.delay 0.02;
          poll (tries - 1))
      in
      Alcotest.(check int) "metrics saw the load" (nclients * per_client) (poll 100);
      Client.close c)

let test_server_ingest_batch () =
  with_server (fun ~srv ~addr ~idx ~ingest_dir ->
      let c = connect_ok addr in
      let fresh i = mk_report ~outcome:Report.Failure ~sites:[| 0; 2 |] ~preds:[| 0; 4 |] i in
      let reports = List.init 5 (fun i -> fresh (2000 + i)) in
      (match Client.ingest_batch c reports with
      | Ok statuses ->
          Alcotest.(check (list (result int string)))
            "every report acked in submission order"
            (List.init 5 (fun i -> Ok (2000 + i)))
            statuses
      | Error e -> Alcotest.failf "ingest-batch failed: %s" e);
      let ds, _ = Shard_log.read_all ~dir:ingest_dir in
      Alcotest.(check int) "whole batch durable" 5 (Dataset.nruns ds);
      Alcotest.(check int) "whole batch visible" 5 (Index.tail_count idx);
      Alcotest.(check int) "server counter" 5 (Server.ingested srv);
      (* rejections are per-report: valid neighbours still land *)
      let bad = mk_report ~sites:[| 0 |] ~preds:[| npreds + 3 |] 2100 in
      (match Client.ingest_batch c [ fresh 2101; bad; fresh 2102 ] with
      | Ok [ Ok 2101; Error _; Ok 2102 ] -> ()
      | Ok sts -> Alcotest.failf "unexpected mixed-batch statuses (%d)" (List.length sts)
      | Error e -> Alcotest.failf "mixed batch failed: %s" e);
      let ds, _ = Shard_log.read_all ~dir:ingest_dir in
      Alcotest.(check int) "only valid reports durable" 7 (Dataset.nruns ds);
      Alcotest.(check int) "tail tracks accepted reports" 7 (Index.tail_count idx);
      (* an empty batch is a no-op, not a protocol error *)
      (match Client.ingest_batch c [] with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "empty batch must ack nothing"
      | Error e -> Alcotest.failf "empty batch failed: %s" e);
      (* the connection survives a batch with rejects *)
      let header, _ = request_ok c "ping" in
      Alcotest.(check string) "still serving" "pong" header;
      Client.close c)

let test_server_group_commit () =
  (* group-commit mode: appends park on the coordinator's windowed fsync;
     every ack must still imply durability, and the shared barrier must
     be visible in stats *)
  with_server ~group_commit_ms:4. (fun ~srv ~addr ~idx ~ingest_dir ->
      let nclients = 4 and batches = 3 and batch = 8 and singles = 4 in
      let per_client = (batches * batch) + singles in
      let errors = Queue.create () in
      let errors_lock = Mutex.create () in
      let fail_locked msg =
        Mutex.lock errors_lock;
        Queue.add msg errors;
        Mutex.unlock errors_lock
      in
      let worker cid =
        try
          let c = connect_ok addr in
          let base = 5000 + (cid * 1000) in
          for b = 0 to batches - 1 do
            let chunk =
              List.init batch (fun i ->
                  mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |]
                    (base + (b * batch) + i))
            in
            match Client.ingest_batch c chunk with
            | Ok statuses ->
                if not (List.for_all Result.is_ok statuses) then
                  fail_locked "group-commit batch rejected a valid report"
            | Error e -> fail_locked ("group-commit batch failed: " ^ e)
          done;
          for i = 0 to singles - 1 do
            let r =
              mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |]
                (base + (batches * batch) + i)
            in
            match Client.request c ("ingest " ^ B64.encode (Codec.encode r)) with
            | Ok _ -> ()
            | Error e -> fail_locked ("group-commit single ingest failed: " ^ e)
          done;
          Client.close c
        with e -> fail_locked (Printexc.to_string e)
      in
      let threads = List.init nclients (fun cid -> Thread.create worker cid) in
      List.iter Thread.join threads;
      Alcotest.(check (list string)) "no client errors" []
        (List.of_seq (Queue.to_seq errors));
      let total = nclients * per_client in
      Alcotest.(check int) "every report accepted" total (Server.ingested srv);
      (* ack happened after the covering fsync: all records are on disk *)
      let ds, _ = Shard_log.read_all ~dir:ingest_dir in
      Alcotest.(check int) "every acked report durable" total (Dataset.nruns ds);
      Alcotest.(check int) "every acked report visible" total (Index.tail_count idx);
      let c = connect_ok addr in
      let _, stats = request_ok c "stats" in
      let stat_value name =
        List.find_map
          (fun l ->
            match String.split_on_char ' ' l with
            | [ n; v ] when n = name -> int_of_string_opt v
            | _ -> None)
          stats
      in
      (match stat_value "gc.flushes" with
      | Some n -> Alcotest.(check bool) "at least one group flush" true (n >= 1)
      | None -> Alcotest.fail "stats missing gc.flushes");
      (match stat_value "gc.reports" with
      | Some n -> Alcotest.(check int) "every report went through the coordinator" total n
      | None -> Alcotest.fail "stats missing gc.reports");
      Client.close c)

let test_worker_table_drains () =
  (* the regression: workers were registered after Thread.create, so a
     fast connection could deregister before registration and leave a
     stale entry forever.  Churn many short-lived connections and
     require the table to drain to exactly zero. *)
  with_server (fun ~srv ~addr ~idx:_ ~ingest_dir:_ ->
      let failures = Atomic.make 0 in
      for _ = 1 to 3 do
        let threads =
          List.init 8 (fun _ ->
              Thread.create
                (fun () ->
                  try
                    let c = connect_ok addr in
                    ignore (request_ok c "ping");
                    Client.close c
                  with _ -> Atomic.incr failures)
                ())
        in
        List.iter Thread.join threads
      done;
      Alcotest.(check int) "no client failures" 0 (Atomic.get failures);
      (* deregistration is the worker's last act; poll briefly *)
      let rec poll tries =
        let n = Server.worker_count srv in
        if n = 0 || tries = 0 then n
        else begin
          Thread.delay 0.02;
          poll (tries - 1)
        end
      in
      Alcotest.(check int) "worker table drains to zero" 0 (poll 250))

let test_send_deadline () =
  (* a peer that pipelines requests and never reads a byte back: once the
     socket buffers fill, the response write must hit the kernel send
     deadline and be counted as fault.send_timeout — not wedge the worker
     forever *)
  with_server ~timeout:0.4 (fun ~srv:_ ~addr ~idx:_ ~ingest_dir:_ ->
      let sock =
        match addr with Wire.Unix_sock p -> p | _ -> Alcotest.fail "unix fixture"
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      (* enough pipelined requests that the responses overflow the
         server-side send buffer while we refuse to read *)
      let nreq = 5_000 in
      let buf = Buffer.create (nreq * 8) in
      for _ = 1 to nreq do
        Buffer.add_string buf "topk 10\n"
      done;
      let payload = Bytes.of_string (Buffer.contents buf) in
      let rec wr off =
        if off < Bytes.length payload then
          match Unix.write fd payload off (Bytes.length payload - off) with
          | n -> wr (off + n)
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
      in
      wr 0;
      let c = connect_ok addr in
      let rec poll tries =
        let _, stats = request_ok c "stats" in
        let hit = List.exists (fun l -> contains l "fault.send_timeout") stats in
        if hit || tries = 0 then hit
        else begin
          Thread.delay 0.05;
          poll (tries - 1)
        end
      in
      Alcotest.(check bool) "send deadline counted as fault.send_timeout" true (poll 100);
      Client.close c;
      try Unix.close fd with Unix.Unix_error _ -> ())

let test_start_failure_releases_resources () =
  (* the regression: start bound the socket, spawned the pool, then died
     opening the ingest writer — leaking the listen fd and the bound
     socket path.  A failed start must release everything it acquired. *)
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      Shard_log.write_meta ~dir:log (Dataset.of_tables ~nsites ~npreds ~pred_site [||]);
      let w = Shard_log.create_writer ~dir:log ~shard:0 () in
      Array.iter (Shard_log.append w) base_reports;
      ignore (Shard_log.close_writer w);
      ignore (Index.build ~log ~dir:idx_dir ());
      let idx = Index.open_ ~dir:idx_dir in
      let sock = Filename.concat tmp "sock" in
      (* the ingest log's parent is a regular file: the writer cannot open *)
      let blocker = Filename.concat tmp "blocker" in
      close_out (open_out blocker);
      let config =
        {
          (Server.default_config (Wire.Unix_sock sock)) with
          Server.timeout = 10.;
          ingest_log = Some (Filename.concat blocker "log");
        }
      in
      let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
      let fds_before = count_fds () in
      (match Server.start config idx with
      | srv ->
          Server.stop srv;
          Alcotest.fail "start over an unwritable ingest log must raise"
      | exception _ -> ());
      Alcotest.(check int) "no fd leaked by the failed start" fds_before (count_fds ());
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock);
      (* the address is immediately reusable with a sane config *)
      let config_ok = { config with Server.ingest_log = Some (Filename.concat tmp "ingest") } in
      let srv = Server.start config_ok idx in
      let c = connect_ok (Wire.Unix_sock sock) in
      let header, _ = request_ok c "ping" in
      Alcotest.(check string) "rebound and serving" "pong" header;
      Client.close c;
      Server.stop srv)

let test_server_shutdown () =
  (* stop must be clean and idempotent, release the socket, and close the
     durable writer so the ingest log is a valid shard log *)
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      Shard_log.write_meta ~dir:log (Dataset.of_tables ~nsites ~npreds ~pred_site [||]);
      let w = Shard_log.create_writer ~dir:log ~shard:0 () in
      Array.iter (Shard_log.append w) base_reports;
      ignore (Shard_log.close_writer w);
      ignore (Index.build ~log ~dir:idx_dir ());
      let sock = Filename.concat tmp "sock" in
      let config =
        {
          (Server.default_config (Wire.Unix_sock sock)) with
          Server.timeout = 10.;
          fsync = false;
          ingest_log = Some (Filename.concat tmp "ingest");
        }
      in
      let srv = Server.start config (Index.open_ ~dir:idx_dir) in
      let c = connect_ok (Wire.Unix_sock sock) in
      ignore (request_ok c "ping");
      Server.stop srv;
      Server.stop srv;
      Server.wait srv;
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock);
      (match Client.connect ~retry:Sbi_fault.Retry.no_retry (Wire.Unix_sock sock) with
      | Ok _ -> Alcotest.fail "connect after stop must fail"
      | Error _ -> ());
      (* same address is immediately reusable *)
      let srv2 = Server.start config (Index.open_ ~dir:idx_dir) in
      let c2 = connect_ok (Wire.Unix_sock sock) in
      ignore (request_ok c2 "ping");
      Client.close c2;
      Server.stop srv2)

let suite =
  [
    Alcotest.test_case "base64 vectors" `Quick test_b64_vectors;
    QCheck_alcotest.to_alcotest qcheck_b64_round_trip;
    Alcotest.test_case "address parsing" `Quick test_addr_parsing;
    Alcotest.test_case "wire framing" `Quick test_wire_framing;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "metrics overflow bucket" `Quick test_metrics_overflow;
    Alcotest.test_case "metrics clock anomaly" `Quick test_metrics_clock_anomaly;
    Alcotest.test_case "metrics per-command errors" `Quick test_metrics_request_error;
    Alcotest.test_case "server basic queries" `Quick test_server_basic;
    Alcotest.test_case "server metrics/trace commands" `Quick test_server_obs_commands;
    Alcotest.test_case "durable ingest" `Quick test_server_ingest_durable;
    Alcotest.test_case "batched ingest" `Quick test_server_ingest_batch;
    Alcotest.test_case "group-commit ingest" `Quick test_server_group_commit;
    Alcotest.test_case "concurrent clients" `Quick test_server_concurrent_clients;
    Alcotest.test_case "worker table drains after churn" `Quick test_worker_table_drains;
    Alcotest.test_case "send deadline on stalled peer" `Quick test_send_deadline;
    Alcotest.test_case "failed start releases resources" `Quick
      test_start_failure_releases_resources;
    Alcotest.test_case "graceful shutdown" `Quick test_server_shutdown;
  ]
