(* Tests for the triage server stack: base64, wire framing, address
   parsing, metrics, the server lifecycle over a Unix socket, durable
   ingest, and sustained concurrent clients with interleaved requests. *)
open Sbi_runtime
open Sbi_ingest
open Sbi_index
open Sbi_serve

let with_temp_dir f =
  let dir = Filename.temp_file "sbi_srv" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- base64 --- *)

let test_b64_vectors () =
  List.iter
    (fun (plain, enc) ->
      Alcotest.(check string) ("encode " ^ plain) enc (B64.encode plain);
      match B64.decode enc with
      | Ok p -> Alcotest.(check string) ("decode " ^ enc) plain p
      | Error e -> Alcotest.failf "decode %s failed: %s" enc e)
    [
      ("", "");
      ("f", "Zg==");
      ("fo", "Zm8=");
      ("foo", "Zm9v");
      ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE=");
      ("foobar", "Zm9vYmFy");
      ("\x00\xff\x10", "AP8Q");
    ];
  List.iter
    (fun bad ->
      match B64.decode bad with
      | Ok _ -> Alcotest.failf "decode %S should fail" bad
      | Error _ -> ())
    [ "Zg="; "Zg"; "Z"; "Zm9v!"; "=Zg="; "Zm=v"; "Zh==" ]

let qcheck_b64_round_trip =
  QCheck2.Test.make ~name:"base64 round-trips arbitrary bytes" ~count:500
    QCheck2.Gen.string (fun s -> B64.decode (B64.encode s) = Ok s)

(* --- addresses and framing --- *)

let test_addr_parsing () =
  (match Wire.addr_of_string "/tmp/x.sock" with
  | Ok (Wire.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix path");
  (match Wire.addr_of_string "localhost:7077" with
  | Ok (Wire.Tcp ("localhost", 7077)) -> ()
  | _ -> Alcotest.fail "host:port");
  (match Wire.addr_of_string ":8080" with
  | Ok (Wire.Tcp ("127.0.0.1", 8080)) -> ()
  | _ -> Alcotest.fail "default host");
  List.iter
    (fun bad ->
      match Wire.addr_of_string bad with
      | Ok _ -> Alcotest.failf "address %S should be rejected" bad
      | Error _ -> ())
    [ ""; "nohost"; "host:"; "host:0"; "host:99999"; "host:x" ];
  Alcotest.(check string) "to_string" "localhost:7077"
    (Wire.addr_to_string (Wire.Tcp ("localhost", 7077)))

let test_wire_framing () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "frame" in
      let payload = [ "plain"; ".starts with dot"; ""; "..double"; "last" ] in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
      let n1 = Wire.write_ok fd ~header:"topk 5" ~lines:payload in
      let n2 = Wire.write_err fd "boom" in
      Unix.close fd;
      Alcotest.(check bool) "bytes counted" true (n1 > 0 && n2 > 0);
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0o600 in
      let rd = Wire.reader fd in
      (match Wire.read_response rd with
      | Ok (header, lines) ->
          Alcotest.(check string) "header" "topk 5" header;
          Alcotest.(check (list string)) "dot-stuffing round trip" payload lines
      | Error e -> Alcotest.failf "unexpected err: %s" e);
      (match Wire.read_response rd with
      | Error "boom" -> ()
      | _ -> Alcotest.fail "expected err response");
      Unix.close fd)

(* --- metrics --- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.connection_opened m;
  Metrics.record m ~cmd:"topk" ~latency_ns:3_000 ~bytes_in:7 ~bytes_out:100;
  Metrics.record m ~cmd:"topk" ~latency_ns:900_000 ~bytes_in:7 ~bytes_out:100;
  Metrics.record m ~cmd:"pred" ~latency_ns:20_000 ~bytes_in:8 ~bytes_out:50;
  Metrics.connection_closed m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "requests" 3 s.Metrics.requests;
  Alcotest.(check int) "bytes in" 22 s.Metrics.bytes_in;
  Alcotest.(check int) "bytes out" 250 s.Metrics.bytes_out;
  Alcotest.(check int) "open connections" 0 s.Metrics.connections;
  Alcotest.(check int) "total connections" 1 s.Metrics.connections_total;
  Alcotest.(check (list (pair string int))) "per command"
    [ ("pred", 1); ("topk", 2) ]
    s.Metrics.per_command;
  let bound_us = function Sbi_obs.Hist.Le us -> us | Sbi_obs.Hist.Gt us -> us + 1 in
  (match (s.Metrics.p50, s.Metrics.p99) with
  | Some p50, Some p99 ->
      Alcotest.(check bool) "p50 <= p99" true (bound_us p50 <= bound_us p99)
  | _ -> Alcotest.fail "percentiles must be present");
  Alcotest.(check bool) "histogram covers requests" true
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Metrics.latency_buckets = 3);
  Alcotest.(check bool) "stats lines mention requests" true
    (List.exists (fun l -> l = "requests 3") (Metrics.lines m))

(* Regression (ISSUE 5): a 30 s request lands in the overflow bucket and
   must be reported as gt_8388608us with saturated percentiles — never
   under a false finite latency_le_* bound. *)
let test_metrics_overflow () =
  let m = Metrics.create () in
  Metrics.record m ~cmd:"topk" ~latency_ns:30_000_000_000 ~bytes_in:7 ~bytes_out:100;
  let s = Metrics.snapshot m in
  (match s.Metrics.latency_buckets with
  | [ (Sbi_obs.Hist.Gt 8388608, 1) ] -> ()
  | _ -> Alcotest.fail "30s observation must be a distinct Gt 8388608 bucket");
  (match s.Metrics.p50 with
  | Some (Sbi_obs.Hist.Gt 8388608) -> ()
  | _ -> Alcotest.fail "p50 must saturate to Gt 8388608");
  let lines = Metrics.lines m in
  Alcotest.(check bool) "gt line emitted" true (List.mem "latency_gt_8388608us 1" lines);
  Alcotest.(check bool) "p50 saturates" true (List.mem "latency_p50_us >8388608" lines);
  Alcotest.(check bool) "no false le bound" false
    (List.exists
       (fun l -> String.length l >= 11 && String.sub l 0 11 = "latency_le_")
       lines)

(* Regression (ISSUE 5): a negative duration (broken clock source) is
   clamped to 0 and surfaced as clock_anomaly, not silently filed in the
   <=1us bucket as a plausible latency. *)
let test_metrics_clock_anomaly () =
  let m = Metrics.create () in
  Metrics.record m ~cmd:"topk" ~latency_ns:(-5_000_000) ~bytes_in:7 ~bytes_out:100;
  Metrics.record m ~cmd:"topk" ~latency_ns:3_000 ~bytes_in:7 ~bytes_out:100;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "anomaly counted" 1 s.Metrics.clock_anomalies;
  Alcotest.(check int) "both requests recorded" 2
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Metrics.latency_buckets);
  Alcotest.(check bool) "clock_anomaly line" true
    (List.mem "clock_anomaly 1" (Metrics.lines m))

(* Regression (ISSUE 5): faults mid-command are attributed to the
   command so per-command success/failure is reconstructible. *)
let test_metrics_request_error () =
  let m = Metrics.create () in
  Metrics.record m ~cmd:"topk" ~latency_ns:3_000 ~bytes_in:7 ~bytes_out:100;
  Metrics.request_error m ~cmd:"topk";
  Metrics.request_error m ~cmd:"topk";
  Metrics.request_error m ~cmd:"pred";
  let s = Metrics.snapshot m in
  Alcotest.(check (list (pair string int))) "per-command errors"
    [ ("pred", 1); ("topk", 2) ]
    s.Metrics.per_command_err;
  let lines = Metrics.lines m in
  Alcotest.(check bool) "req.topk.err line" true (List.mem "req.topk.err 2" lines);
  Alcotest.(check bool) "req.pred.err line" true (List.mem "req.pred.err 1" lines)

(* --- server fixture --- *)

let nsites = 5
let npreds = 10
let pred_site = [| 0; 0; 1; 1; 2; 2; 3; 3; 4; 4 |]

let mk_report ?(outcome = Report.Success) ?(sites = [||]) ?(preds = [||]) id =
  {
    Report.run_id = id;
    outcome;
    observed_sites = sites;
    true_preds = preds;
    true_counts = Array.map (fun _ -> 1) preds;
    bugs = [||];
    crash_sig = None;
  }

let base_reports =
  Array.init 30 (fun i ->
      let failing = i mod 3 = 0 in
      mk_report
        ~outcome:(if failing then Report.Failure else Report.Success)
        ~sites:[| 0; 1; (i mod 3) + 2 |]
        ~preds:(if failing then [| 0; 3 |] else [| 1 |])
        i)

(* Probe a free TCP port by binding port 0 and reading back the kernel's
   choice.  Slightly racy (another process could grab it before the
   server rebinds) but fine inside the test container. *)
let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false)

(* [acceptors = 0] is the legacy thread-per-connection path; [> 0] the
   event-loop front end.  The lifecycle tests run under both so the two
   paths stay behaviorally interchangeable.  [tcp] swaps the Unix socket
   for a loopback TCP listener (needed to exercise the per-loop
   SO_REUSEPORT listener mode, which does not apply to Unix sockets). *)
let with_server ?(acceptors = 0) ?(max_conns = 4096) ?(tcp = false) ?(fsync = true)
    ?(group_commit_ms = 0.) ?(timeout = 10.) f =
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      Shard_log.write_meta ~dir:log
        (Dataset.of_tables ~nsites ~npreds ~pred_site [||]);
      let w = Shard_log.create_writer ~dir:log ~shard:0 () in
      Array.iter (Shard_log.append w) base_reports;
      ignore (Shard_log.close_writer w);
      ignore (Index.build ~log ~dir:idx_dir ());
      let idx = Index.open_ ~dir:idx_dir in
      let addr =
        if tcp then Wire.Tcp ("127.0.0.1", free_port ())
        else Wire.Unix_sock (Filename.concat tmp "sock")
      in
      let ingest_dir = Filename.concat tmp "ingest" in
      let config =
        {
          (Server.default_config addr) with
          Server.timeout;
          fsync;
          ingest_log = Some ingest_dir;
          group_commit_ms;
          acceptors;
          max_conns;
        }
      in
      let srv = Server.start config idx in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () -> f ~srv ~addr ~idx ~ingest_dir))

let connect_ok addr =
  match Client.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect failed: %s" e

let request_ok client line =
  match Client.request client line with
  | Ok (header, lines) -> (header, lines)
  | Error e -> Alcotest.failf "request %S failed: %s" line e

(* Raw-socket helpers: protocol-level tests that need to see exactly
   what the server writes (busy replies, pipelined responses, EOF). *)
let raw_connect addr =
  let sa =
    match addr with
    | Wire.Unix_sock p -> Unix.ADDR_UNIX p
    | Wire.Tcp (h, p) -> Unix.ADDR_INET (Unix.inet_addr_of_string h, p)
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Unix.connect fd sa;
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let max_fd_num () =
  Array.fold_left
    (fun m s -> match int_of_string_opt s with Some n -> max m n | None -> m)
    0 (Sys.readdir "/proc/self/fd")

(* --- server lifecycle --- *)

let test_server_basic ~acceptors () =
  with_server ~acceptors (fun ~srv:_ ~addr ~idx ~ingest_dir:_ ->
      let c = connect_ok addr in
      let header, _ = request_ok c "ping" in
      Alcotest.(check string) "ping" "pong" header;
      let expected = Triage.topk ~k:3 idx in
      Alcotest.(check bool) "fixture retains predicates" true (expected <> []);
      let header, lines = request_ok c "topk 3" in
      Alcotest.(check string) "topk header"
        (Printf.sprintf "topk %d" (List.length expected))
        header;
      Alcotest.(check int) "topk lines" (List.length expected) (List.length lines);
      List.iteri
        (fun i line ->
          let sc = List.nth expected i in
          Alcotest.(check bool)
            (Printf.sprintf "rank %d mentions pred %d" (i + 1) sc.Sbi_core.Scores.pred)
            true
            (String.length line > 2
            && int_of_string (List.nth (String.split_on_char ' ' line) 1)
               = sc.Sbi_core.Scores.pred))
        lines;
      let header, lines = request_ok c "pred 3" in
      Alcotest.(check string) "pred header" "pred 3" header;
      Alcotest.(check bool) "pred detail has importance" true
        (List.exists
           (fun l -> String.length l >= 11 && String.sub l 0 11 = "importance ")
           lines);
      let _, stats = request_ok c "stats" in
      Alcotest.(check bool) "stats has runs" true (List.mem "runs 30" stats);
      (match Client.request c "pred 9999" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out-of-range pred must err");
      (match Client.request c "nonsense 1 2 3" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown command must err");
      Client.close c)

let test_server_obs_commands ~acceptors () =
  with_server ~acceptors (fun ~srv:_ ~addr ~idx:_ ~ingest_dir:_ ->
      let c = connect_ok addr in
      ignore (request_ok c "ping");
      ignore (request_ok c "topk 3");
      let header, lines = request_ok c "metrics" in
      Alcotest.(check string) "metrics header" "metrics" header;
      Alcotest.(check bool) "registry saw the fixture's log appends" true
        (List.exists (fun l -> contains l "log.append.count ") lines);
      let header, lines = request_ok c "trace 50" in
      Alcotest.(check bool) "trace header counts lines" true (contains header "trace ");
      Alcotest.(check bool) "earlier request's span is retained" true
        (List.exists (fun l -> contains l "name=serve.topk") lines);
      (match Client.request c "trace nope" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad trace count must err");
      Client.close c)

let test_server_ingest_durable ~acceptors () =
  with_server ~acceptors (fun ~srv ~addr ~idx ~ingest_dir ->
      let c = connect_ok addr in
      let fresh =
        mk_report ~outcome:Report.Failure ~sites:[| 0; 2 |] ~preds:[| 0; 4 |] 1000
      in
      let header, _ =
        request_ok c ("ingest " ^ B64.encode (Codec.encode fresh))
      in
      Alcotest.(check string) "acknowledged" "ingested 1000" header;
      (* durable before the server shuts down: fsync already pushed the
         record into the shard file *)
      let ds, _ = Shard_log.read_all ~dir:ingest_dir in
      Alcotest.(check int) "record on disk while server is live" 1 (Dataset.nruns ds);
      Alcotest.(check int) "live tail" 1 (Index.tail_count idx);
      Alcotest.(check int) "server counter" 1 (Server.ingested srv);
      (* the very next query sees the new run *)
      let _, stats = request_ok c "stats" in
      Alcotest.(check bool) "stats sees 31 runs" true (List.mem "runs 31" stats);
      (* bad payloads must not touch state *)
      (match Client.request c "ingest !!!notbase64" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad base64 must err");
      (match Client.request c "ingest " with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "empty ingest must err");
      let bad_pred = mk_report ~sites:[| 0 |] ~preds:[| npreds + 5 |] 1001 in
      (match Client.request c ("ingest " ^ B64.encode (Codec.encode bad_pred)) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out-of-table report must err");
      Alcotest.(check int) "rejects left no trace" 1 (Index.tail_count idx);
      Client.close c)

let test_server_concurrent_clients ~acceptors () =
  with_server ~acceptors (fun ~srv ~addr ~idx:_ ~ingest_dir:_ ->
      let nclients = 5 and per_client = 12 in
      let errors = Queue.create () in
      let errors_lock = Mutex.create () in
      let fail_locked msg =
        Mutex.lock errors_lock;
        Queue.add msg errors;
        Mutex.unlock errors_lock
      in
      let worker cid =
        try
          let c = connect_ok addr in
          for i = 0 to per_client - 1 do
            match i mod 3 with
            | 0 ->
                let r =
                  mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |]
                    (10_000 + (cid * 1000) + i)
                in
                let header, _ = request_ok c ("ingest " ^ B64.encode (Codec.encode r)) in
                if header <> Printf.sprintf "ingested %d" (10_000 + (cid * 1000) + i) then
                  fail_locked ("bad ingest ack: " ^ header)
            | 1 ->
                let header, lines = request_ok c "topk 5" in
                let n = Scanf.sscanf header "topk %d" (fun n -> n) in
                if n <> List.length lines then fail_locked ("short topk: " ^ header)
            | _ ->
                let header, lines = request_ok c "pred 0" in
                if header <> "pred 0" then fail_locked ("bad pred header: " ^ header);
                if not (List.exists (fun l -> l = "pred 0" || String.length l > 0) lines)
                then fail_locked "empty pred detail"
          done;
          Client.close c
        with e -> fail_locked (Printexc.to_string e)
      in
      let threads = List.init nclients (fun cid -> Thread.create worker cid) in
      List.iter Thread.join threads;
      Alcotest.(check (list string)) "no client errors" [] (List.of_seq (Queue.to_seq errors));
      let ingests = nclients * ((per_client + 2) / 3) in
      Alcotest.(check int) "every ingest accepted" ingests (Server.ingested srv);
      (* all requests were served and accounted.  The handler records a
         request's metrics just after writing its response, so a client can
         see its last reply before the server has recorded it: poll briefly
         instead of asserting on the first stats snapshot. *)
      let c = connect_ok addr in
      let worker_requests stats =
        List.fold_left
          (fun acc l ->
            match String.split_on_char ' ' l with
            | [ ("req.ingest" | "req.topk" | "req.pred"); n ] -> acc + int_of_string n
            | _ -> acc)
          0 stats
      in
      let rec poll tries =
        let _, stats = request_ok c "stats" in
        let n = worker_requests stats in
        if n >= nclients * per_client || tries = 0 then n
        else (
          Thread.delay 0.02;
          poll (tries - 1))
      in
      Alcotest.(check int) "metrics saw the load" (nclients * per_client) (poll 100);
      Client.close c)

let test_server_ingest_batch ~acceptors () =
  with_server ~acceptors (fun ~srv ~addr ~idx ~ingest_dir ->
      let c = connect_ok addr in
      let fresh i = mk_report ~outcome:Report.Failure ~sites:[| 0; 2 |] ~preds:[| 0; 4 |] i in
      let reports = List.init 5 (fun i -> fresh (2000 + i)) in
      (match Client.ingest_batch c reports with
      | Ok statuses ->
          Alcotest.(check (list (result int string)))
            "every report acked in submission order"
            (List.init 5 (fun i -> Ok (2000 + i)))
            statuses
      | Error e -> Alcotest.failf "ingest-batch failed: %s" e);
      let ds, _ = Shard_log.read_all ~dir:ingest_dir in
      Alcotest.(check int) "whole batch durable" 5 (Dataset.nruns ds);
      Alcotest.(check int) "whole batch visible" 5 (Index.tail_count idx);
      Alcotest.(check int) "server counter" 5 (Server.ingested srv);
      (* rejections are per-report: valid neighbours still land *)
      let bad = mk_report ~sites:[| 0 |] ~preds:[| npreds + 3 |] 2100 in
      (match Client.ingest_batch c [ fresh 2101; bad; fresh 2102 ] with
      | Ok [ Ok 2101; Error _; Ok 2102 ] -> ()
      | Ok sts -> Alcotest.failf "unexpected mixed-batch statuses (%d)" (List.length sts)
      | Error e -> Alcotest.failf "mixed batch failed: %s" e);
      let ds, _ = Shard_log.read_all ~dir:ingest_dir in
      Alcotest.(check int) "only valid reports durable" 7 (Dataset.nruns ds);
      Alcotest.(check int) "tail tracks accepted reports" 7 (Index.tail_count idx);
      (* an empty batch is a no-op, not a protocol error *)
      (match Client.ingest_batch c [] with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "empty batch must ack nothing"
      | Error e -> Alcotest.failf "empty batch failed: %s" e);
      (* the connection survives a batch with rejects *)
      let header, _ = request_ok c "ping" in
      Alcotest.(check string) "still serving" "pong" header;
      Client.close c)

let test_server_group_commit ~acceptors () =
  (* group-commit mode: appends park on the coordinator's windowed fsync;
     every ack must still imply durability, and the shared barrier must
     be visible in stats *)
  with_server ~acceptors ~group_commit_ms:4. (fun ~srv ~addr ~idx ~ingest_dir ->
      let nclients = 4 and batches = 3 and batch = 8 and singles = 4 in
      let per_client = (batches * batch) + singles in
      let errors = Queue.create () in
      let errors_lock = Mutex.create () in
      let fail_locked msg =
        Mutex.lock errors_lock;
        Queue.add msg errors;
        Mutex.unlock errors_lock
      in
      let worker cid =
        try
          let c = connect_ok addr in
          let base = 5000 + (cid * 1000) in
          for b = 0 to batches - 1 do
            let chunk =
              List.init batch (fun i ->
                  mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |]
                    (base + (b * batch) + i))
            in
            match Client.ingest_batch c chunk with
            | Ok statuses ->
                if not (List.for_all Result.is_ok statuses) then
                  fail_locked "group-commit batch rejected a valid report"
            | Error e -> fail_locked ("group-commit batch failed: " ^ e)
          done;
          for i = 0 to singles - 1 do
            let r =
              mk_report ~outcome:Report.Failure ~sites:[| 0; 1 |] ~preds:[| 0 |]
                (base + (batches * batch) + i)
            in
            match Client.request c ("ingest " ^ B64.encode (Codec.encode r)) with
            | Ok _ -> ()
            | Error e -> fail_locked ("group-commit single ingest failed: " ^ e)
          done;
          Client.close c
        with e -> fail_locked (Printexc.to_string e)
      in
      let threads = List.init nclients (fun cid -> Thread.create worker cid) in
      List.iter Thread.join threads;
      Alcotest.(check (list string)) "no client errors" []
        (List.of_seq (Queue.to_seq errors));
      let total = nclients * per_client in
      Alcotest.(check int) "every report accepted" total (Server.ingested srv);
      (* ack happened after the covering fsync: all records are on disk *)
      let ds, _ = Shard_log.read_all ~dir:ingest_dir in
      Alcotest.(check int) "every acked report durable" total (Dataset.nruns ds);
      Alcotest.(check int) "every acked report visible" total (Index.tail_count idx);
      let c = connect_ok addr in
      let _, stats = request_ok c "stats" in
      let stat_value name =
        List.find_map
          (fun l ->
            match String.split_on_char ' ' l with
            | [ n; v ] when n = name -> int_of_string_opt v
            | _ -> None)
          stats
      in
      (match stat_value "gc.flushes" with
      | Some n -> Alcotest.(check bool) "at least one group flush" true (n >= 1)
      | None -> Alcotest.fail "stats missing gc.flushes");
      (match stat_value "gc.reports" with
      | Some n -> Alcotest.(check int) "every report went through the coordinator" total n
      | None -> Alcotest.fail "stats missing gc.reports");
      Client.close c)

let test_worker_table_drains ~acceptors () =
  (* the regression: workers were registered after Thread.create, so a
     fast connection could deregister before registration and leave a
     stale entry forever.  Churn many short-lived connections and
     require the table to drain to exactly zero. *)
  with_server ~acceptors (fun ~srv ~addr ~idx:_ ~ingest_dir:_ ->
      let failures = Atomic.make 0 in
      for _ = 1 to 3 do
        let threads =
          List.init 8 (fun _ ->
              Thread.create
                (fun () ->
                  try
                    let c = connect_ok addr in
                    ignore (request_ok c "ping");
                    Client.close c
                  with _ -> Atomic.incr failures)
                ())
        in
        List.iter Thread.join threads
      done;
      Alcotest.(check int) "no client failures" 0 (Atomic.get failures);
      (* deregistration is the worker's last act; poll briefly *)
      let rec poll tries =
        let n = Server.worker_count srv in
        if n = 0 || tries = 0 then n
        else begin
          Thread.delay 0.02;
          poll (tries - 1)
        end
      in
      Alcotest.(check int) "worker table drains to zero" 0 (poll 250))

let test_send_deadline ~acceptors () =
  (* a peer that pipelines requests and never reads a byte back: once the
     socket buffers fill, the response write must hit the kernel send
     deadline and be counted as fault.send_timeout — not wedge the worker
     forever *)
  with_server ~acceptors ~timeout:0.4 (fun ~srv:_ ~addr ~idx:_ ~ingest_dir:_ ->
      let sock =
        match addr with Wire.Unix_sock p -> p | _ -> Alcotest.fail "unix fixture"
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      (* enough pipelined requests that the responses overflow the
         server-side send buffer while we refuse to read *)
      let nreq = 5_000 in
      let buf = Buffer.create (nreq * 8) in
      for _ = 1 to nreq do
        Buffer.add_string buf "topk 10\n"
      done;
      let payload = Bytes.of_string (Buffer.contents buf) in
      let rec wr off =
        if off < Bytes.length payload then
          match Unix.write fd payload off (Bytes.length payload - off) with
          | n -> wr (off + n)
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
      in
      wr 0;
      let c = connect_ok addr in
      let rec poll tries =
        let _, stats = request_ok c "stats" in
        let hit = List.exists (fun l -> contains l "fault.send_timeout") stats in
        if hit || tries = 0 then hit
        else begin
          Thread.delay 0.05;
          poll (tries - 1)
        end
      in
      Alcotest.(check bool) "send deadline counted as fault.send_timeout" true (poll 100);
      Client.close c;
      try Unix.close fd with Unix.Unix_error _ -> ())

let test_start_failure_releases_resources () =
  (* the regression: start bound the socket, spawned the pool, then died
     opening the ingest writer — leaking the listen fd and the bound
     socket path.  A failed start must release everything it acquired. *)
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      Shard_log.write_meta ~dir:log (Dataset.of_tables ~nsites ~npreds ~pred_site [||]);
      let w = Shard_log.create_writer ~dir:log ~shard:0 () in
      Array.iter (Shard_log.append w) base_reports;
      ignore (Shard_log.close_writer w);
      ignore (Index.build ~log ~dir:idx_dir ());
      let idx = Index.open_ ~dir:idx_dir in
      let sock = Filename.concat tmp "sock" in
      (* the ingest log's parent is a regular file: the writer cannot open *)
      let blocker = Filename.concat tmp "blocker" in
      close_out (open_out blocker);
      let config =
        {
          (Server.default_config (Wire.Unix_sock sock)) with
          Server.timeout = 10.;
          ingest_log = Some (Filename.concat blocker "log");
        }
      in
      let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
      let fds_before = count_fds () in
      (match Server.start config idx with
      | srv ->
          Server.stop srv;
          Alcotest.fail "start over an unwritable ingest log must raise"
      | exception _ -> ());
      Alcotest.(check int) "no fd leaked by the failed start" fds_before (count_fds ());
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock);
      (* the address is immediately reusable with a sane config *)
      let config_ok = { config with Server.ingest_log = Some (Filename.concat tmp "ingest") } in
      let srv = Server.start config_ok idx in
      let c = connect_ok (Wire.Unix_sock sock) in
      let header, _ = request_ok c "ping" in
      Alcotest.(check string) "rebound and serving" "pong" header;
      Client.close c;
      Server.stop srv)

let test_server_shutdown ~acceptors () =
  (* stop must be clean and idempotent, release the socket, and close the
     durable writer so the ingest log is a valid shard log *)
  with_temp_dir (fun tmp ->
      let log = Filename.concat tmp "log" in
      let idx_dir = Filename.concat tmp "idx" in
      Shard_log.write_meta ~dir:log (Dataset.of_tables ~nsites ~npreds ~pred_site [||]);
      let w = Shard_log.create_writer ~dir:log ~shard:0 () in
      Array.iter (Shard_log.append w) base_reports;
      ignore (Shard_log.close_writer w);
      ignore (Index.build ~log ~dir:idx_dir ());
      let sock = Filename.concat tmp "sock" in
      let config =
        {
          (Server.default_config (Wire.Unix_sock sock)) with
          Server.timeout = 10.;
          fsync = false;
          ingest_log = Some (Filename.concat tmp "ingest");
          acceptors;
        }
      in
      let srv = Server.start config (Index.open_ ~dir:idx_dir) in
      let c = connect_ok (Wire.Unix_sock sock) in
      ignore (request_ok c "ping");
      Server.stop srv;
      Server.stop srv;
      Server.wait srv;
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock);
      (match Client.connect ~retry:Sbi_fault.Retry.no_retry (Wire.Unix_sock sock) with
      | Ok _ -> Alcotest.fail "connect after stop must fail"
      | Error _ -> ());
      (* same address is immediately reusable *)
      let srv2 = Server.start config (Index.open_ ~dir:idx_dir) in
      let c2 = connect_ok (Wire.Unix_sock sock) in
      ignore (request_ok c2 "ping");
      Client.close c2;
      Server.stop srv2)

(* --- connection-scale regressions (ISSUE 10) --- *)

(* Pipelined requests: several complete lines land in one read.  Both
   front ends must answer each in order; the event loop keeps leftover
   buffered lines flowing without waiting for new socket data. *)
let test_pipelined ~acceptors () =
  with_server ~acceptors (fun ~srv:_ ~addr ~idx:_ ~ingest_dir:_ ->
      let fd = raw_connect addr in
      let rd = Wire.reader fd in
      write_all fd "ping\nping\ntopk 3\n";
      (match Wire.read_response rd with
      | Ok ("pong", []) -> ()
      | _ -> Alcotest.fail "first pipelined ping");
      (match Wire.read_response rd with
      | Ok ("pong", []) -> ()
      | _ -> Alcotest.fail "second pipelined ping");
      (match Wire.read_response rd with
      | Ok (h, lines) ->
          Alcotest.(check bool) "pipelined topk answered" true
            (contains h "topk " && lines <> [])
      | Error e -> Alcotest.failf "pipelined topk: %s" e);
      (* a request buffered behind quit dies with the connection *)
      write_all fd "ping\nquit\nping\n";
      (match Wire.read_response rd with
      | Ok ("pong", []) -> ()
      | _ -> Alcotest.fail "ping before quit");
      (match Wire.read_response rd with
      | Ok ("bye", []) -> ()
      | _ -> Alcotest.fail "quit acked with bye");
      (match Wire.read_response rd with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "connection must close after quit");
      Unix.close fd)

(* The admission cap is exact: connection max_conns+1 gets a one-line
   [err busy] and a close — a clean protocol error, not a hang — and
   closing any admitted connection frees its slot. *)
let test_max_conns_cap ~acceptors () =
  with_server ~acceptors ~max_conns:4 (fun ~srv:_ ~addr ~idx:_ ~ingest_dir:_ ->
      let admitted = List.init 4 (fun _ -> connect_ok addr) in
      (* a served request proves each connection is admitted, not queued *)
      List.iter (fun c -> ignore (request_ok c "ping")) admitted;
      let fd = raw_connect addr in
      let rd = Wire.reader fd in
      (match Wire.read_response rd with
      | Error "busy" -> ()
      | Ok (h, _) -> Alcotest.failf "over-cap connection got %S, want err busy" h
      | Error e -> Alcotest.failf "over-cap connection got err %S, want busy" e
      | exception End_of_file ->
          Alcotest.fail "over-cap connection closed without err busy");
      (match Wire.read_response rd with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "over-cap connection must be closed");
      Unix.close fd;
      (* freeing one slot readmits the next client (slot release is
         asynchronous: poll until a fresh connection is served) *)
      (match admitted with c :: _ -> Client.close c | [] -> assert false);
      let rec admitted_client tries =
        if tries = 0 then Alcotest.fail "slot never freed after a client left"
        else begin
          let c = connect_ok addr in
          let ok =
            match Client.request c "ping" with
            | Ok ("pong", _) -> true
            | Ok _ | Error _ -> false
            | exception _ -> false
          in
          if ok then c
          else begin
            Client.close c;
            Thread.delay 0.02;
            admitted_client (tries - 1)
          end
        end
      in
      let c = admitted_client 250 in
      Client.close c;
      let c = admitted_client 250 in
      let _, stats = request_ok c "stats" in
      Alcotest.(check bool) "rejection counted as fault.overload" true
        (List.exists (fun l -> contains l "fault.overload ") stats);
      Client.close c;
      List.iteri (fun i c -> if i > 0 then Client.close c) admitted)

(* Accept-loop error discrimination: drive accept(2) into EMFILE by
   exhausting the process fd table.  The old loop treated every accept
   error as fatal and silently stopped serving; now the failure is
   transient — counted as fault.accept, backed off — and the client
   parked in the backlog is served once descriptors return. *)
let test_accept_error_recovery ~acceptors () =
  with_server ~acceptors (fun ~srv:_ ~addr ~idx:_ ~ingest_dir:_ ->
      let sock =
        match addr with Wire.Unix_sock p -> p | _ -> Alcotest.fail "unix fixture"
      in
      (* the client's fd exists before the squeeze; connect(2) allocates
         nothing new, so it queues in the listen backlog while the
         server's accept(2) is failing *)
      let cfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let soft0, _ = Evloop.nofile_limit () in
      let hoard = ref [] in
      let release () =
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !hoard;
        hoard := [];
        if soft0 >= 0 then ignore (Evloop.set_nofile_limit soft0)
      in
      Fun.protect
        ~finally:(fun () ->
          release ();
          try Unix.close cfd with Unix.Unix_error _ -> ())
        (fun () ->
          (* clamp the soft limit to just above the highest open fd and
             fill the remaining slots: the next accept(2) gets EMFILE *)
          ignore (Evloop.set_nofile_limit (max_fd_num () + 2));
          (try
             while true do
               hoard := Unix.dup cfd :: !hoard
             done
           with Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) -> ());
          Unix.connect cfd (Unix.ADDR_UNIX sock);
          (* let the accept loop hit the failure and back off a few times *)
          Thread.delay 0.3;
          release ();
          (* nothing was dropped: the parked connection is served *)
          write_all cfd "ping\n";
          (match Evloop.wait_readable ~timeout_ms:10_000 cfd with
          | `Ready -> ()
          | `Timeout -> Alcotest.fail "backlogged connection never served");
          let rd = Wire.reader cfd in
          (match Wire.read_response rd with
          | Ok ("pong", []) -> ()
          | _ -> Alcotest.fail "backlogged connection must be served after recovery");
          let c = connect_ok addr in
          let rec poll tries =
            let _, stats = request_ok c "stats" in
            let hit = List.exists (fun l -> contains l "fault.accept ") stats in
            if hit || tries = 0 then hit
            else begin
              Thread.delay 0.02;
              poll (tries - 1)
            end
          in
          Alcotest.(check bool) "failures counted as fault.accept" true (poll 100);
          Client.close c))

(* Every select(2) on a real socket is gone: the poll primitives, the
   client's connect deadline, the group-commit flusher's self-pipe wait,
   and both server front ends must all work on descriptors past 1024 —
   where Unix.select would reject or corrupt its fd sets. *)
let test_poll_beyond_1024 () =
  let soft0, hard = Evloop.nofile_limit () in
  let want = 1500 in
  if hard <> -1 && hard < want then () (* hard limit too low: skip *)
  else begin
    if soft0 <> -1 && soft0 < want then ignore (Evloop.set_nofile_limit want);
    let anchor = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let hoard = ref [] in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !hoard;
        (try Unix.close anchor with Unix.Unix_error _ -> ());
        if soft0 >= 0 then ignore (Evloop.set_nofile_limit soft0))
      (fun () ->
        for _ = 1 to 1100 do
          hoard := Unix.dup anchor :: !hoard
        done;
        Alcotest.(check bool) "descriptor numbers crossed 1024" true
          (max_fd_num () > 1024);
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        hoard := a :: b :: !hoard;
        (match Evloop.wait_readable ~timeout_ms:50 a with
        | `Timeout -> ()
        | `Ready -> Alcotest.fail "nothing written yet");
        ignore (Unix.write_substring b "x" 0 1);
        (match Evloop.wait_readable ~timeout_ms:5_000 a with
        | `Ready -> ()
        | `Timeout -> Alcotest.fail "poll must see the pending byte");
        (match Evloop.wait_writable ~timeout_ms:5_000 b with
        | `Ready -> ()
        | `Timeout -> Alcotest.fail "poll must see writability");
        (* full stack on high fds, including a group-commit flush *)
        List.iter
          (fun acceptors ->
            with_server ~acceptors ~group_commit_ms:2.
              (fun ~srv ~addr ~idx:_ ~ingest_dir:_ ->
                let c = connect_ok addr in
                let r =
                  mk_report ~outcome:Report.Failure ~sites:[| 0; 2 |] ~preds:[| 0 |]
                    7000
                in
                let header, _ =
                  request_ok c ("ingest " ^ B64.encode (Codec.encode r))
                in
                Alcotest.(check string) "high-fd ingest acked" "ingested 7000" header;
                ignore (request_ok c "topk 3");
                Alcotest.(check int) "ingested" 1 (Server.ingested srv);
                Client.close c))
          [ 0; 1 ])
  end

(* The ISSUE 10 acceptance gate: >= 2000 connections held open
   concurrently against the event-loop front end — interleaved queries,
   ingest batches, abrupt resets, and silent stalls — with zero dropped
   accepts, the connection gauge draining to exactly zero, every
   descriptor returned, and bit-identical rankings afterwards. *)
let test_connection_churn () =
  let soft0, hard = Evloop.nofile_limit () in
  let want_fds = (2 * 2048) + 512 in
  if soft0 <> -1 && soft0 < want_fds && (hard = -1 || hard >= want_fds) then
    ignore (Evloop.set_nofile_limit want_fds);
  let soft, _ = Evloop.nofile_limit () in
  (* clamp-aware scaling: a squeezed container still runs the shape of
     the test, just narrower (2 fds per connection plus slack) *)
  let target = if soft = -1 || soft >= want_fds then 2048 else max 64 ((soft - 512) / 2) in
  Fun.protect
    ~finally:(fun () -> if soft0 >= 0 then ignore (Evloop.set_nofile_limit soft0))
    (fun () ->
      with_server ~acceptors:2 ~tcp:true ~fsync:false ~timeout:60.
        ~max_conns:(target + 64)
        (fun ~srv ~addr ~idx:_ ~ingest_dir:_ ->
          let baseline =
            let c = connect_ok addr in
            let r = request_ok c "topk 5" in
            Client.close c;
            r
          in
          let rec settle tries =
            if Server.worker_count srv > 0 && tries > 0 then begin
              Thread.delay 0.02;
              settle (tries - 1)
            end
          in
          settle 250;
          Alcotest.(check int) "gauge empty before the storm" 0
            (Server.worker_count srv);
          let fds_before = count_fds () in
          let nthreads = 16 in
          let per = max 1 (target / nthreads) in
          let total = per * nthreads in
          let errors = Queue.create () in
          let errors_lock = Mutex.create () in
          let fail_locked msg =
            Mutex.lock errors_lock;
            if Queue.length errors < 10 then Queue.add msg errors;
            Mutex.unlock errors_lock
          in
          (* reusable generation barrier: all drivers hold their
             connections open across the peak measurement *)
          let bar_m = Mutex.create () and bar_cv = Condition.create () in
          let bar_count = ref 0 and bar_gen = ref 0 in
          let barrier () =
            Mutex.lock bar_m;
            let gen = !bar_gen in
            incr bar_count;
            if !bar_count = nthreads then begin
              bar_count := 0;
              incr bar_gen;
              Condition.broadcast bar_cv
            end
            else
              while !bar_gen = gen do
                Condition.wait bar_cv bar_m
              done;
            Mutex.unlock bar_m
          in
          let peak = ref 0 in
          let worker tid =
            let conns =
              Array.init per (fun i ->
                  let g = (tid * per) + i in
                  match g mod 4 with
                  | 0 | 1 -> `Client (connect_ok addr)
                  | _ -> `Raw (raw_connect addr))
            in
            barrier ();
            (if tid = 0 then
               let rec wait tries =
                 let n = Server.worker_count srv in
                 peak := max !peak n;
                 if n < total && tries > 0 then begin
                   Thread.delay 0.02;
                   wait (tries - 1)
                 end
               in
               wait 1500);
            barrier ();
            Array.iteri
              (fun i conn ->
                let g = (tid * per) + i in
                match conn with
                | `Client c when g mod 4 = 0 -> (
                    match Client.request c "topk 3" with
                    | Ok (h, _) when contains h "topk" -> ()
                    | Ok (h, _) -> fail_locked ("churn topk header: " ^ h)
                    | Error e -> fail_locked ("churn topk: " ^ e)
                    | exception e -> fail_locked (Printexc.to_string e))
                | `Client c -> (
                    (* successful runs observing nothing: accepted, yet
                       unable to move any predicate's counters — the
                       ranking must come out bit-identical *)
                    let rs =
                      [
                        mk_report (100_000 + (2 * g));
                        mk_report (100_001 + (2 * g));
                      ]
                    in
                    match Client.ingest_batch c rs with
                    | Ok sts when List.for_all Result.is_ok sts -> ()
                    | Ok _ -> fail_locked "churn ingest rejected a valid report"
                    | Error e -> fail_locked ("churn ingest: " ^ e)
                    | exception e -> fail_locked (Printexc.to_string e))
                | `Raw fd when g mod 4 = 2 -> (
                    (* one request, then vanish without quit *)
                    try
                      write_all fd "ping\n";
                      let rd = Wire.reader fd in
                      match Wire.read_response rd with
                      | Ok ("pong", []) -> ()
                      | _ -> fail_locked "churn raw ping"
                    with e -> fail_locked (Printexc.to_string e))
                | `Raw _ -> (* silent peer: never sends a byte *) ())
              conns;
            Array.iter
              (function
                | `Client c -> Client.close c
                | `Raw fd -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
              conns
          in
          let threads = List.init nthreads (fun tid -> Thread.create worker tid) in
          List.iter Thread.join threads;
          Alcotest.(check (list string)) "no churn errors" []
            (List.of_seq (Queue.to_seq errors));
          Alcotest.(check int) "every connection concurrently admitted" total !peak;
          let rec drain tries =
            let n = Server.worker_count srv in
            if n = 0 || tries = 0 then n
            else begin
              Thread.delay 0.02;
              drain (tries - 1)
            end
          in
          Alcotest.(check int) "connection gauge drains to zero" 0 (drain 1500);
          let rec fds tries =
            let n = count_fds () in
            if n = fds_before || tries = 0 then n
            else begin
              Thread.delay 0.02;
              fds (tries - 1)
            end
          in
          Alcotest.(check int) "no descriptor leak" fds_before (fds 1500);
          let c = connect_ok addr in
          let after = request_ok c "topk 5" in
          Alcotest.(check bool) "rankings bit-identical after the storm" true
            (baseline = after);
          let _, stats = request_ok c "stats" in
          List.iter
            (fun l ->
              if contains l "fault.accept " || contains l "fault.overload " then
                Alcotest.failf "no accept may be dropped under churn: %s" l)
            stats;
          Client.close c))

let dual name f =
  [
    Alcotest.test_case (name ^ " (threads)") `Quick (f ~acceptors:0);
    Alcotest.test_case (name ^ " (evloop)") `Quick (f ~acceptors:2);
  ]

let suite =
  [
    Alcotest.test_case "base64 vectors" `Quick test_b64_vectors;
    QCheck_alcotest.to_alcotest qcheck_b64_round_trip;
    Alcotest.test_case "address parsing" `Quick test_addr_parsing;
    Alcotest.test_case "wire framing" `Quick test_wire_framing;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "metrics overflow bucket" `Quick test_metrics_overflow;
    Alcotest.test_case "metrics clock anomaly" `Quick test_metrics_clock_anomaly;
    Alcotest.test_case "metrics per-command errors" `Quick test_metrics_request_error;
  ]
  @ dual "server basic queries" test_server_basic
  @ dual "server metrics/trace commands" test_server_obs_commands
  @ dual "durable ingest" test_server_ingest_durable
  @ dual "batched ingest" test_server_ingest_batch
  @ dual "group-commit ingest" test_server_group_commit
  @ dual "concurrent clients" test_server_concurrent_clients
  @ dual "connection gauge drains after churn" test_worker_table_drains
  @ dual "send deadline on stalled peer" test_send_deadline
  @ dual "pipelined requests" test_pipelined
  @ dual "max-conns admission cap" test_max_conns_cap
  @ dual "accept-error recovery under fd exhaustion" test_accept_error_recovery
  @ dual "graceful shutdown" test_server_shutdown
  @ [
      Alcotest.test_case "failed start releases resources" `Quick
        test_start_failure_releases_resources;
      Alcotest.test_case "poll primitives beyond fd 1024" `Slow test_poll_beyond_1024;
      Alcotest.test_case "2k-connection churn storm" `Slow test_connection_churn;
    ]
