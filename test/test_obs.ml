(* Observability layer: clock, histogram, registry, trace spans (inline
   and across Domain_pool submission), slow-query log, enable switch. *)

open Sbi_obs

(* --- clock --- *)

let test_clock_monotonic () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "now_ns never goes backwards" true (b >= a);
  Alcotest.(check bool) "now_ns is positive" true (a > 0)

let test_clock_mock () =
  Clock.with_mock
    (Clock.counter ~start:100 ~step:5 ())
    (fun () ->
      Alcotest.(check int) "first mocked read" 100 (Clock.now_ns ());
      Alcotest.(check int) "second mocked read" 105 (Clock.now_ns ());
      Alcotest.(check int) "third mocked read" 110 (Clock.now_ns ()));
  (* restored: a real monotonic read is far beyond the tiny mock values *)
  Alcotest.(check bool) "real clock restored" true (Clock.now_ns () > 1_000_000);
  (match Clock.with_mock (Clock.counter ()) (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "mock body exception must propagate");
  Alcotest.(check bool) "restored after raise" true (Clock.now_ns () > 1_000_000)

let test_pp_ns () =
  Alcotest.(check string) "ns" "250ns" (Clock.pp_ns 250);
  Alcotest.(check string) "us" "1.5us" (Clock.pp_ns 1_500);
  Alcotest.(check string) "ms" "12.3ms" (Clock.pp_ns 12_300_000);
  Alcotest.(check string) "s" "2.50s" (Clock.pp_ns 2_500_000_000)

(* --- histogram --- *)

let test_hist_edges () =
  let h = Hist.create () in
  Hist.observe_ns h (-50);
  (* negative clamps to 0 *)
  Hist.observe_ns h 0;
  Hist.observe_ns h 999;
  (* still < 1 us *)
  Hist.observe_ns h 1_000;
  (* exactly 1 us: first bucket that fits is Le 2 *)
  Hist.observe_ns h 30_000_000_000;
  (* 30 s: overflow *)
  Alcotest.(check int) "total" 5 (Hist.total h);
  Alcotest.(check bool)
    "buckets: 3x Le 1, 1x Le 2, 1x overflow" true
    (Hist.buckets h = [ (Hist.Le 1, 3); (Hist.Le 2, 1); (Hist.Gt Hist.max_finite_bound_us, 1) ]);
  (* the overflow bucket is Gt, never a fabricated finite bound *)
  List.iter
    (fun (b, _) ->
      match b with
      | Hist.Le us -> Alcotest.(check bool) "finite bounds stay finite" true (us <= Hist.max_finite_bound_us)
      | Hist.Gt us -> Alcotest.(check int) "overflow bound" Hist.max_finite_bound_us us)
    (Hist.buckets h);
  Alcotest.(check string) "pp Le" "2" (Hist.pp_bound (Hist.Le 2));
  Alcotest.(check string) "pp Gt" ">8388608" (Hist.pp_bound (Hist.Gt Hist.max_finite_bound_us))

let test_hist_percentile_saturation () =
  let h = Hist.create () in
  Alcotest.(check bool) "empty percentile is None" true (Hist.percentile h 50. = None);
  for _ = 1 to 10 do
    Hist.observe_ns h 30_000_000_000
  done;
  Alcotest.(check bool)
    "all-overflow p50 saturates to Gt" true
    (Hist.percentile h 50. = Some (Hist.Gt Hist.max_finite_bound_us));
  Alcotest.(check bool)
    "p99 saturates too" true
    (Hist.percentile h 99. = Some (Hist.Gt Hist.max_finite_bound_us))

(* Rank a bound for ordering checks: overflow sorts above every finite
   bound. *)
let bound_rank = function Hist.Le us -> us | Hist.Gt _ -> max_int

let gen_durations =
  (* spans negatives, sub-us, mid-range and well past overflow *)
  QCheck2.Gen.(list_size (int_range 1 200) (oneof [ int_range (-1_000) 1_000_000; int_range 0 20_000_000_000 ]))

let qcheck_merge_is_concat =
  QCheck2.Test.make ~name:"hist merge = bucket the concatenation" ~count:200
    QCheck2.Gen.(pair gen_durations gen_durations)
    (fun (xs, ys) ->
      let a = Hist.create () and b = Hist.create () and whole = Hist.create () in
      List.iter (Hist.observe_ns a) xs;
      List.iter (Hist.observe_ns b) ys;
      List.iter (Hist.observe_ns whole) (xs @ ys);
      Hist.merge_into ~into:a b;
      Hist.counts a = Hist.counts whole)

let qcheck_bucket_monotone =
  QCheck2.Test.make ~name:"bucket index is monotone in duration" ~count:500
    QCheck2.Gen.(pair (int_range (-1_000) 20_000_000_000) (int_range 0 20_000_000_000))
    (fun (ns, delta) -> Hist.bucket_of_ns ns <= Hist.bucket_of_ns (ns + delta))

let qcheck_percentiles_ordered =
  QCheck2.Test.make ~name:"p50 <= p90 <= p99" ~count:200 gen_durations (fun xs ->
      let h = Hist.create () in
      List.iter (Hist.observe_ns h) xs;
      match (Hist.percentile h 50., Hist.percentile h 90., Hist.percentile h 99.) with
      | Some p50, Some p90, Some p99 ->
          bound_rank p50 <= bound_rank p90 && bound_rank p90 <= bound_rank p99
      | _ -> false)

(* --- registry --- *)

let test_registry_intern () =
  let c1 = Registry.counter "test.obs.ctr" in
  let c2 = Registry.counter "test.obs.ctr" in
  Registry.incr c1;
  Registry.add c1 4;
  Alcotest.(check int) "get-or-create returns the same counter" 5 (Registry.value c2);
  let g = Registry.gauge "test.obs.gauge" in
  Registry.set g 17;
  Registry.set g 3;
  Alcotest.(check int) "gauge keeps last value" 3 (Registry.value g);
  (match Registry.histogram "test.obs.ctr" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-registering a counter as a histogram must raise");
  (match Registry.gauge "test.obs.ctr" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-registering a counter as a gauge must raise");
  Alcotest.(check bool)
    "lines contains the counter" true
    (List.mem "test.obs.ctr 5" (Registry.lines ()))

let test_timer_sampling () =
  Clock.with_mock (Clock.counter ()) (fun () ->
      let t = Registry.Timer.create ~every:4 "test.obs.timer" in
      for _ = 1 to 8 do
        Registry.Timer.time t (fun () -> ())
      done;
      let h = Registry.histogram "test.obs.timer" in
      Alcotest.(check int)
        "every call counted" 8
        (Registry.value (Registry.counter "test.obs.timer.count"));
      Alcotest.(check int) "one in four clocked" 2 (Hist.total h);
      (* exceptions propagate; the count still ticks, no sample lands *)
      (match Registry.Timer.time t (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "timer must propagate exceptions");
      Alcotest.(check int)
        "raising call still counted" 9
        (Registry.value (Registry.counter "test.obs.timer.count")))

(* --- trace --- *)

let find_span name =
  match List.find_opt (fun (s : Trace.span) -> s.name = name) (Trace.recent ()) with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "span %s not recorded" name)

let test_trace_nesting () =
  Trace.clear ();
  Trace.with_span ~name:"t.outer" (fun () ->
      Trace.with_span ~name:"t.inner" ~args:"k=3" (fun () -> ()));
  let outer = find_span "t.outer" and inner = find_span "t.inner" in
  Alcotest.(check bool) "outer is a root" true (outer.parent = None);
  Alcotest.(check bool) "inner links to outer" true (inner.parent = Some outer.id);
  Alcotest.(check string) "args retained" "k=3" inner.args;
  Alcotest.(check bool) "no span left open" true (Trace.current () = None);
  (* spans survive the body raising — failing spans matter most *)
  (match Trace.with_span ~name:"t.raise" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "with_span must propagate");
  ignore (find_span "t.raise");
  Alcotest.(check bool) "context popped after raise" true (Trace.current () = None)

let test_trace_across_pool () =
  Trace.clear ();
  let pool = Sbi_par.Domain_pool.create ~clamp:false ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Sbi_par.Domain_pool.shutdown pool)
    (fun () ->
      let fut = ref None in
      Trace.with_span ~name:"t.submit" (fun () ->
          fut :=
            Some
              (Sbi_par.Domain_pool.async pool (fun () ->
                   Trace.with_span ~name:"t.task" (fun () -> 21 * 2))));
      match !fut with
      | None -> Alcotest.fail "no future"
      | Some f ->
          Alcotest.(check int) "task result" 42 (Sbi_par.Domain_pool.await f);
          let submit = find_span "t.submit" and task = find_span "t.task" in
          Alcotest.(check bool)
            "task span parented to submitter's span across the pool hop" true
            (task.parent = Some submit.id);
          Alcotest.(check bool)
            "pool.queue_wait observed" true
            (Hist.total (Registry.histogram "pool.queue_wait") > 0))

let test_trace_ring () =
  Trace.clear ();
  Trace.set_capacity 4;
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity 4096)
    (fun () ->
      for i = 1 to 6 do
        Trace.with_span ~name:(Printf.sprintf "t.ring.%d" i) (fun () -> ())
      done;
      let names = List.map (fun (s : Trace.span) -> s.name) (Trace.recent ()) in
      Alcotest.(check (list string))
        "ring keeps the newest, oldest first"
        [ "t.ring.3"; "t.ring.4"; "t.ring.5"; "t.ring.6" ]
        names;
      let newest = List.map (fun (s : Trace.span) -> s.name) (Trace.recent ~n:2 ()) in
      Alcotest.(check (list string)) "recent ~n trims from the old end" [ "t.ring.5"; "t.ring.6" ] newest)

let test_trace_lines () =
  Trace.clear ();
  Clock.with_mock (Clock.counter ()) (fun () ->
      Trace.with_span ~name:"t.fmt" ~args:"k=9" (fun () -> ()));
  match Trace.lines () with
  | [ line ] ->
      Alcotest.(check bool)
        "line mentions name and args" true
        (let has needle =
           let nl = String.length needle and ll = String.length line in
           let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
           go 0
         in
         has "name=t.fmt" && has "args=k=9" && has "parent=-")
  | ls -> Alcotest.fail (Printf.sprintf "expected one line, got %d" (List.length ls))

(* --- slow-query log --- *)

let test_slowlog () =
  Slowlog.clear ();
  let captured = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Slowlog.set_threshold_ms None;
      Slowlog.set_sink (fun line -> Printf.eprintf "%s\n%!" line))
    (fun () ->
      Slowlog.set_sink (fun line -> captured := line :: !captured);
      (* disabled by default: nothing records *)
      Slowlog.observe ~cmd:"topk" ~args:"3" ~dur_ns:5_000_000_000 ~epoch:1;
      Alcotest.(check int) "no threshold, no entries" 0 (List.length (Slowlog.recent ()));
      Slowlog.set_threshold_ms (Some 10);
      Alcotest.(check bool) "threshold readable" true (Slowlog.threshold_ms () = Some 10);
      Slowlog.observe ~cmd:"ping" ~args:"" ~dur_ns:5_000_000 ~epoch:1;
      (* 5 ms < 10 ms *)
      Slowlog.observe ~cmd:"topk" ~args:"3" ~dur_ns:12_345_000 ~epoch:7;
      match Slowlog.recent () with
      | [ e ] ->
          Alcotest.(check string) "cmd" "topk" e.Slowlog.cmd;
          Alcotest.(check int) "epoch" 7 e.Slowlog.epoch;
          Alcotest.(check string)
            "args digested, never raw"
            (Printf.sprintf "%08x" (Sbi_util.Crc32.string "3"))
            e.Slowlog.args_digest;
          let expect =
            Printf.sprintf "slow-query cmd=topk args=#%s dur_ms=12.345 epoch=7" e.Slowlog.args_digest
          in
          Alcotest.(check string) "line format" expect (Slowlog.line_of e);
          Alcotest.(check (list string)) "sink saw the same line" [ expect ] !captured
      | es -> Alcotest.fail (Printf.sprintf "expected one slow entry, got %d" (List.length es)))

(* --- global enable switch --- *)

let test_disabled_is_noop () =
  Trace.clear ();
  Slowlog.clear ();
  let c = Registry.counter "test.obs.gated" in
  Fun.protect
    ~finally:(fun () -> set_enabled true)
    (fun () ->
      set_enabled false;
      Alcotest.(check bool) "enabled reads false" false (enabled ());
      Registry.incr c;
      Trace.with_span ~name:"t.gated" (fun () -> ());
      Slowlog.set_threshold_ms (Some 0);
      Slowlog.observe ~cmd:"topk" ~args:"" ~dur_ns:1 ~epoch:0;
      Slowlog.set_threshold_ms None;
      Alcotest.(check int) "counter untouched" 0 (Registry.value c);
      Alcotest.(check int) "no span recorded" 0 (List.length (Trace.recent ()));
      Alcotest.(check int) "no slow entry" 0 (List.length (Slowlog.recent ())));
  Registry.incr c;
  Alcotest.(check int) "counter works again once re-enabled" 1 (Registry.value c)

let suite =
  [
    Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
    Alcotest.test_case "clock mock" `Quick test_clock_mock;
    Alcotest.test_case "pp_ns" `Quick test_pp_ns;
    Alcotest.test_case "hist edges" `Quick test_hist_edges;
    Alcotest.test_case "hist percentile saturation" `Quick test_hist_percentile_saturation;
    QCheck_alcotest.to_alcotest qcheck_merge_is_concat;
    QCheck_alcotest.to_alcotest qcheck_bucket_monotone;
    QCheck_alcotest.to_alcotest qcheck_percentiles_ordered;
    Alcotest.test_case "registry intern" `Quick test_registry_intern;
    Alcotest.test_case "timer sampling" `Quick test_timer_sampling;
    Alcotest.test_case "trace nesting" `Quick test_trace_nesting;
    Alcotest.test_case "trace across domain pool" `Quick test_trace_across_pool;
    Alcotest.test_case "trace ring retention" `Quick test_trace_ring;
    Alcotest.test_case "trace line format" `Quick test_trace_lines;
    Alcotest.test_case "slowlog" `Quick test_slowlog;
    Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
  ]
