(* Tests for the tiered-store primitives beneath the index: compressed
   run bitmaps (Rbitmap) against the dense Bitset reference across every
   counting kernel, the cost-budgeted LRU posting cache, the size-tiered
   compaction planner, and the segment v2 footer's lazy-read path. *)
open Sbi_store

let with_temp_dir f =
  let dir = Filename.temp_file "sbi_store" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* --- compressed bitmaps vs the dense reference --- *)

(* A bitset whose density changes in stretches, so one value exercises
   every container shape: empty chunks, sparse position arrays, dense
   word blocks, and long homogeneous runs (including all-set chunks). *)
let random_bitset st n =
  let b = Bitset.create n in
  let densities = [| 0.0; 0.001; 0.05; 0.5; 0.95; 1.0 |] in
  let pos = ref 0 in
  while !pos < n do
    let d = densities.(Random.State.int st (Array.length densities)) in
    let len = 1 + Random.State.int st (1 + (n / 3)) in
    let stop = min n (!pos + len) in
    while !pos < stop do
      if d >= 1.0 || (d > 0.0 && Random.State.float st 1.0 < d) then Bitset.set b !pos;
      incr pos
    done
  done;
  b

let positions_of_bitset b =
  let out = ref [] in
  for i = Bitset.length b - 1 downto 0 do
    if Bitset.get b i then out := i :: !out
  done;
  Array.of_list !out

(* lengths around the chunk boundary plus a ~2.2-chunk multi-chunk case *)
let interesting_lengths =
  let c = Rbitmap.chunk_bits in
  [| 1; 63; 64; 65; c - 1; c; c + 1; (2 * c) + (c / 5) |]

let qcheck_rbitmap_kernels =
  QCheck2.Test.make ~name:"rbitmap kernels = dense bitset kernels" ~count:60
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 (Array.length interesting_lengths - 1)))
    (fun (seed, li) ->
      let n = interesting_lengths.(li) in
      let st = Random.State.make [| seed; n; 0x5b1 |] in
      let dense = random_bitset st n in
      let r = Rbitmap.of_bitset dense in
      if Rbitmap.length r <> n then Alcotest.failf "length %d <> %d" (Rbitmap.length r) n;
      if Rbitmap.count r <> Bitset.count dense then Alcotest.fail "count mismatch";
      for i = 0 to n - 1 do
        if Rbitmap.get r i <> Bitset.get dense i then Alcotest.failf "get %d mismatch" i
      done;
      let expected_pos = positions_of_bitset dense in
      if Rbitmap.to_positions r <> expected_pos then Alcotest.fail "to_positions mismatch";
      let iterated = ref [] in
      Rbitmap.iter (fun i -> iterated := i :: !iterated) r;
      if Array.of_list (List.rev !iterated) <> expected_pos then
        Alcotest.fail "iter order/content mismatch";
      if Rbitmap.to_positions (Rbitmap.of_positions n expected_pos) <> expected_pos then
        Alcotest.fail "of_positions round trip";
      let back = Rbitmap.to_bitset r in
      if positions_of_bitset back <> expected_pos then Alcotest.fail "to_bitset mismatch";
      (* binary/ternary kernels against independent dense operands *)
      let b = random_bitset st n and c = random_bitset st n in
      if Rbitmap.inter_count r b <> Bitset.inter_count dense b then
        Alcotest.fail "inter_count mismatch";
      if Rbitmap.inter_count3 r b c <> Bitset.inter_count3 dense b c then
        Alcotest.fail "inter_count3 mismatch";
      let a1 = random_bitset st n in
      let a2 = Bitset.copy a1 in
      Rbitmap.diff_inplace a1 r;
      Bitset.diff_inplace a2 dense;
      if positions_of_bitset a1 <> positions_of_bitset a2 then
        Alcotest.fail "diff_inplace mismatch";
      let a1 = random_bitset st n in
      let a2 = Bitset.copy a1 in
      Rbitmap.diff_inter_inplace a1 r c;
      Bitset.diff_inter_inplace a2 dense c;
      if positions_of_bitset a1 <> positions_of_bitset a2 then
        Alcotest.fail "diff_inter_inplace mismatch";
      true)

let test_rbitmap_shapes () =
  let c = Rbitmap.chunk_bits in
  let n = 3 * c in
  (* chunk 0 empty, chunk 1 sparse, chunk 2 all-set *)
  let b = Bitset.create n in
  List.iter (fun i -> Bitset.set b (c + i)) [ 1; 77; 300 ];
  for i = 2 * c to n - 1 do
    Bitset.set b i
  done;
  let r = Rbitmap.of_bitset b in
  let empty, pos, words, runs = Rbitmap.shape r in
  Alcotest.(check int) "one empty chunk" 1 empty;
  Alcotest.(check int) "one sparse chunk" 1 pos;
  Alcotest.(check int) "no dense chunk" 0 words;
  Alcotest.(check int) "one run chunk" 1 runs;
  Alcotest.(check int) "count" (3 + c) (Rbitmap.count r);
  (* the all-set run chunk must be far cheaper than its dense form *)
  Alcotest.(check bool) "compression beats dense" true (Rbitmap.memory_words r < n / 32);
  (* unsorted duplicated input is normalized *)
  let r2 = Rbitmap.of_positions 10 [| 7; 2; 7; 0 |] in
  Alcotest.(check bool) "dedup + sort" true (Rbitmap.to_positions r2 = [| 0; 2; 7 |]);
  match Rbitmap.of_positions 10 [| 10 |] with
  | _ -> Alcotest.fail "out-of-range position must be rejected"
  | exception Invalid_argument _ -> ()

(* --- LRU posting cache --- *)

let test_lru () =
  let loads = ref 0 in
  let load k () =
    incr loads;
    k
  in
  (* cost of an int value is the int itself: budget 100 *)
  let cache = Lru.create ~budget:100 ~cost:(fun v -> v) () in
  Alcotest.(check int) "first load" 40 (Lru.find_or_add cache "a" (load 40));
  Alcotest.(check int) "cached" 40 (Lru.find_or_add cache "a" (load 40));
  Alcotest.(check int) "loads once" 1 !loads;
  ignore (Lru.find_or_add cache "b" (load 30));
  let s = Lru.stats cache in
  Alcotest.(check int) "hits" 1 s.Lru.hits;
  Alcotest.(check int) "misses" 2 s.Lru.misses;
  Alcotest.(check int) "used" 70 s.Lru.used;
  Alcotest.(check int) "entries" 2 s.Lru.entries;
  (* touch "a" so "b" is the LRU victim, then overflow the budget *)
  ignore (Lru.find_or_add cache "a" (load 40));
  ignore (Lru.find_or_add cache "c" (load 50));
  ignore (Lru.find_or_add cache "a" (load 40));
  Alcotest.(check int) "a survived eviction" 3 !loads;
  ignore (Lru.find_or_add cache "b" (load 30));
  Alcotest.(check int) "b was evicted" 4 !loads;
  let s = Lru.stats cache in
  Alcotest.(check bool) "evictions counted" true (s.Lru.evictions >= 1);
  Alcotest.(check bool) "budget respected" true (s.Lru.used <= 100);
  Lru.clear cache;
  Alcotest.(check int) "clear empties" 0 (Lru.stats cache).Lru.entries;
  match Lru.create ~budget:0 ~cost:(fun _ -> 1) () with
  | _ -> Alcotest.fail "zero budget must be rejected"
  | exception Invalid_argument _ -> ()

(* --- size-tiered planner --- *)

let test_tier_policy () =
  let base = Tier.default_base and fanout = Tier.default_fanout in
  Alcotest.(check int) "below base" 0 (Tier.tier_of (base - 1));
  Alcotest.(check int) "at base" 1 (Tier.tier_of base);
  Alcotest.(check int) "below base*fanout" 1 (Tier.tier_of ((base * fanout) - 1));
  Alcotest.(check int) "at base*fanout" 2 (Tier.tier_of (base * fanout));
  Alcotest.(check int) "custom base" 1 (Tier.tier_of ~base:10 ~fanout:2 10);
  let seg i runs = { Tier.ts_index = i; ts_runs = runs; ts_bytes = runs * 3 } in
  (* three tier-0 segments under the default tier_max of 4: nothing to do *)
  let small = [ seg 0 10; seg 1 20; seg 2 30 ] in
  Alcotest.(check bool) "underfull tier: no plan" true (Tier.plan small = []);
  (* a fourth makes tier 0 overfull; every member merges, in input order *)
  let plan = Tier.plan (small @ [ seg 3 5 ]) in
  Alcotest.(check bool) "overfull tier merges all members" true
    (plan = [ (0, [ 0; 1; 2; 3 ]) ]);
  (* members of other tiers are untouched *)
  let mixed = [ seg 0 10; seg 1 (base * 2); seg 2 20; seg 3 30; seg 4 40 ] in
  Alcotest.(check bool) "only the overfull tier is planned" true
    (Tier.plan mixed = [ (0, [ 0; 2; 3; 4 ]) ]);
  let tiers = Tier.tiers mixed in
  Alcotest.(check bool) "bucketing keeps input order" true
    (List.assoc 0 tiers = [ seg 0 10; seg 2 20; seg 3 30; seg 4 40 ]
    && List.assoc 1 tiers = [ seg 1 (base * 2) ]);
  Alcotest.(check bool) "describe sums runs and bytes" true
    (Tier.describe mixed
    = [ (0, 4, 100, 300); (1, 1, base * 2, base * 2 * 3) ]);
  match Tier.plan ~tier_max:1 small with
  | _ -> Alcotest.fail "tier_max < 2 must be rejected"
  | exception Invalid_argument _ -> ()

(* --- segment v2 footer: lazy reads --- *)

let nsites = 3
let npreds = 6
let pred_site = [| 0; 0; 1; 1; 2; 2 |]

let mk_report ?(outcome = Sbi_runtime.Report.Success) ?(sites = [||]) ?(preds = [||]) id =
  {
    Sbi_runtime.Report.run_id = id;
    outcome;
    observed_sites = sites;
    true_preds = preds;
    true_counts = Array.map (fun _ -> 1) preds;
    bugs = [||];
    crash_sig = None;
  }

let sample_segment () =
  Segment.of_reports ~nsites ~npreds ~source_shard:1 ~start_off:12 ~end_off:480
    [|
      mk_report ~outcome:Sbi_runtime.Report.Failure ~sites:[| 0; 2 |] ~preds:[| 0; 4 |] 3;
      mk_report ~sites:[| 1 |] ~preds:[| 2; 3 |] 4;
      mk_report ~sites:[| 0; 1; 2 |] ~preds:[| 1 |] 7;
      mk_report ~outcome:Sbi_runtime.Report.Failure ~sites:[| 1; 2 |] ~preds:[| 2; 5 |] 9;
    |]

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_footer_lazy_reads () =
  with_temp_dir (fun tmp ->
      let seg = sample_segment () in
      let path = Filename.concat tmp "seg.sbix" in
      write_file path (Segment.encode seg);
      let ft =
        match Segment.read_footer path with
        | Some ft -> ft
        | None -> Alcotest.fail "v2 segment must expose a footer"
      in
      Alcotest.(check int) "version" Segment.format_version ft.Segment.ft_version;
      Alcotest.(check int) "nruns" seg.Segment.nruns ft.Segment.ft_nruns;
      Alcotest.(check int) "nsites" nsites ft.Segment.ft_nsites;
      Alcotest.(check int) "npreds" npreds ft.Segment.ft_npreds;
      Alcotest.(check int) "num_f" (Bitset.count seg.Segment.failing) ft.Segment.ft_num_f;
      Alcotest.(check int) "provenance shard" 1 ft.Segment.ft_source_shard;
      (* every posting is fetchable alone and equals the decoded array *)
      for s = 0 to nsites - 1 do
        Alcotest.(check bool) (Printf.sprintf "site posting %d" s) true
          (Segment.read_posting path ft `Site s = seg.Segment.site_obs.(s))
      done;
      for p = 0 to npreds - 1 do
        Alcotest.(check bool) (Printf.sprintf "pred posting %d" p) true
          (Segment.read_posting path ft `Pred p = seg.Segment.pred_true.(p))
      done;
      Alcotest.(check bool) "run ids" true
        (Segment.read_run_ids path ft = seg.Segment.run_ids);
      let failing = Segment.read_failing path ft in
      Alcotest.(check bool) "failing bitmap" true
        (Array.init seg.Segment.nruns (Bitset.get failing)
        = Array.init seg.Segment.nruns (Bitset.get seg.Segment.failing));
      (* footer statistics reconstruct the §3.1 aggregate exactly *)
      let of_footer = Segment.footer_aggregator ~pred_site ft in
      let of_body = Segment.aggregator ~pred_site seg in
      Alcotest.(check bool) "footer aggregate = body aggregate" true
        (compare
           (Sbi_ingest.Aggregator.to_counts of_footer)
           (Sbi_ingest.Aggregator.to_counts of_body)
        = 0))

let test_footer_v1_and_corruption () =
  with_temp_dir (fun tmp ->
      let seg = sample_segment () in
      (* v1 files have no footer: the lazy open must say so, not guess *)
      let v1 = Filename.concat tmp "v1.sbix" in
      write_file v1 (Segment.encode_v1 seg);
      (match Segment.read_footer v1 with
      | None -> ()
      | Some _ -> Alcotest.fail "v1 segment must not expose a footer");
      Alcotest.(check int) "v1 still decodes in full" seg.Segment.nruns
        (Segment.decode (Segment.encode_v1 seg)).Segment.nruns;
      (* flip each trailer/footer byte: the lazy open must detect it *)
      let encoded = Segment.encode seg in
      let sz = String.length encoded in
      let flip s i =
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x08));
        Bytes.to_string b
      in
      let bad = Filename.concat tmp "bad.sbix" in
      let detected = ref 0 in
      (* last 4 footer bytes + footer offset + footer CRC; the final
         4 bytes (the whole-file CRC) are deliberately excluded — the
         lazy open leaves file-level integrity to decode/fsck *)
      for off = sz - Segment.trailer_len - 4 to sz - 5 do
        write_file bad (flip encoded off);
        match Segment.read_footer bad with
        | exception Segment.Corrupt _ -> incr detected
        | None -> incr detected
        | Some _ -> ()
      done;
      Alcotest.(check int) "every damaged footer/trailer byte detected"
        (Segment.trailer_len + 4 - 4) !detected;
      (* a flipped file CRC is fsck's to find, via the full decode *)
      (match Segment.decode (flip encoded (sz - 1)) with
      | _ -> Alcotest.fail "full decode must verify the file CRC"
      | exception Segment.Corrupt _ -> ());
      (* truncation is damage, not a short read *)
      write_file bad (String.sub encoded 0 (sz - 3));
      match Segment.read_footer bad with
      | exception Segment.Corrupt _ -> ()
      | None -> ()
      | Some _ -> Alcotest.fail "truncated segment must not expose a footer")

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_rbitmap_kernels;
    Alcotest.test_case "rbitmap container shapes" `Quick test_rbitmap_shapes;
    Alcotest.test_case "lru cache" `Quick test_lru;
    Alcotest.test_case "tier policy" `Quick test_tier_policy;
    Alcotest.test_case "segment v2 footer lazy reads" `Quick test_footer_lazy_reads;
    Alcotest.test_case "segment v1 fallback + footer corruption" `Quick
      test_footer_v1_and_corruption;
  ]
