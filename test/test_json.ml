(* Tests for the minimal JSON emitter/parser behind --json and
   BENCH_core.json. *)
open Sbi_util

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_emit () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.int 42));
  Alcotest.(check string) "negative int" "-7" (Json.to_string (Json.int (-7)));
  Alcotest.(check string) "string escapes" "\"a\\\"b\\\\c\\n\""
    (Json.to_string (Json.Str "a\"b\\c\n"));
  Alcotest.(check string) "list" "[1,2]" (Json.to_string (Json.List [ Json.int 1; Json.int 2 ]));
  Alcotest.(check string) "obj" "{\"a\":1,\"b\":[]}"
    (Json.to_string (Json.Obj [ ("a", Json.int 1); ("b", Json.List []) ]));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Num Float.nan))

let test_parse () =
  (match parse_ok " { \"a\" : [ 1 , 2.5 , \"x\" , null , true ] } " with
  | Json.Obj [ ("a", Json.List [ a; b; c; d; e ]) ] ->
      Alcotest.(check (option int)) "int" (Some 1) (Json.to_int a);
      Alcotest.(check (option (float 1e-9))) "float" (Some 2.5) (Json.to_float b);
      Alcotest.(check (option string)) "str" (Some "x") (Json.to_str c);
      Alcotest.(check bool) "null" true (d = Json.Null);
      Alcotest.(check bool) "bool" true (e = Json.Bool true)
  | _ -> Alcotest.fail "unexpected shape");
  (match parse_ok "\"u\\u00e9\\t\"" with
  | Json.Str s -> Alcotest.(check string) "unicode escape" "u\xc3\xa9\t" s
  | _ -> Alcotest.fail "expected string");
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "parse %S should fail" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_round_trip () =
  let doc =
    Json.Obj
      [
        ("name", Json.Str "bench:x \xe2\x9c\x93");
        ("ns", Json.Num 123.456789012345678);
        ("big", Json.int max_int);
        ("nested", Json.List [ Json.Obj [ ("k", Json.Null) ]; Json.List []; Json.Bool false ]);
      ]
  in
  let doc' = parse_ok (Json.to_string doc) in
  Alcotest.(check bool) "round trip" true (doc = doc')

let test_member () =
  let doc = parse_ok "{\"runs\":600,\"top\":[{\"pred\":3}]}" in
  Alcotest.(check (option int)) "member" (Some 600)
    (Option.bind (Json.member "runs" doc) Json.to_int);
  Alcotest.(check bool) "missing member" true (Json.member "nope" doc = None);
  let pred =
    match Option.bind (Json.member "top" doc) Json.to_list with
    | Some (first :: _) -> Option.bind (Json.member "pred" first) Json.to_int
    | _ -> None
  in
  Alcotest.(check (option int)) "nested" (Some 3) pred

let suite =
  [
    Alcotest.test_case "emitter" `Quick test_emit;
    Alcotest.test_case "parser" `Quick test_parse;
    Alcotest.test_case "round trip" `Quick test_round_trip;
    Alcotest.test_case "accessors" `Quick test_member;
  ]
