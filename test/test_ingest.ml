(* Tests for the feedback ingestion pipeline: binary report codec
   (round-trip + corruption behaviour), sharded crash-tolerant report log,
   mergeable streaming aggregation, and parallel collection. *)
open Sbi_lang
open Sbi_instrument
open Sbi_runtime
open Sbi_ingest

let mk_report ?(outcome = Report.Success) ?(sites = [||]) ?(preds = [||])
    ?(counts = None) ?(bugs = [||]) ?crash_sig id =
  {
    Report.run_id = id;
    outcome;
    observed_sites = sites;
    true_preds = preds;
    true_counts = (match counts with Some c -> c | None -> Array.map (fun _ -> 1) preds);
    bugs;
    crash_sig;
  }

let report_equal (a : Report.t) (b : Report.t) =
  a.Report.run_id = b.Report.run_id
  && a.Report.outcome = b.Report.outcome
  && a.Report.observed_sites = b.Report.observed_sites
  && a.Report.true_preds = b.Report.true_preds
  && a.Report.true_counts = b.Report.true_counts
  && a.Report.bugs = b.Report.bugs
  && a.Report.crash_sig = b.Report.crash_sig

let check_report msg a b = Alcotest.(check bool) msg true (report_equal a b)

(* --- crc32 --- *)

let test_crc32 () =
  Alcotest.(check int) "check vector" 0xCBF43926 (Sbi_util.Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Sbi_util.Crc32.string "");
  Alcotest.(check int) "sub matches string" (Sbi_util.Crc32.string "456")
    (Sbi_util.Crc32.sub "123456789" ~pos:3 ~len:3);
  Alcotest.(check bool) "one flipped bit changes crc" true
    (Sbi_util.Crc32.string "123456788" <> Sbi_util.Crc32.string "123456789")

(* --- varints --- *)

let test_varint () =
  let buf = Buffer.create 64 in
  let values = [ 0; 1; 127; 128; 300; 16_383; 16_384; 1_000_000_007; max_int / 2 ] in
  List.iter (Codec.add_varint buf) values;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  List.iter
    (fun v -> Alcotest.(check int) "varint round trip" v (Codec.read_varint s pos (String.length s)))
    values;
  Alcotest.(check int) "all bytes consumed" (String.length s) !pos;
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Codec.add_varint: negative") (fun () ->
      Codec.add_varint buf (-1));
  (match Codec.read_varint "\x80\x80" (ref 0) 2 with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "unterminated varint must raise")

(* --- codec round trips --- *)

let sample_reports =
  [
    mk_report 0;
    mk_report ~outcome:Report.Failure ~sites:[| 0; 1; 2; 900 |] ~preds:[| 0; 7; 8; 4096 |]
      ~counts:(Some [| 1; 130; 2; 99 |])
      ~bugs:[| 5; 1 |] ~crash_sig:"memcpy<save<main" 12345;
    mk_report ~crash_sig:"" 7;
    mk_report ~crash_sig:"weird % , \n sig \255" 1;
    mk_report ~sites:[| 3 |] ~preds:[||] 999_999_999;
  ]

let test_codec_round_trip () =
  List.iter
    (fun r -> check_report "codec round trip" r (Codec.decode (Codec.encode r)))
    sample_reports

let test_codec_rejects_garbage () =
  let r = List.nth sample_reports 1 in
  let enc = Codec.encode r in
  (match Codec.decode (enc ^ "x") with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "trailing bytes must raise");
  (match Codec.decode (String.sub enc 0 (String.length enc - 1)) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated payload must raise");
  match Codec.decode "\x42" with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad version must raise"

let qcheck_codec_round_trip =
  let gen_report =
    QCheck2.Gen.(
      let sorted upper = map (fun l -> Array.of_list (List.sort_uniq compare l)) (list (int_range 0 upper)) in
      map
        (fun ((id, fail, sites, preds), (counts, bugs, sg)) ->
          let preds_n = Array.length preds in
          mk_report
            ~outcome:(if fail then Report.Failure else Report.Success)
            ~sites ~preds
            ~counts:(Some (Array.init preds_n (fun i -> 1 + List.nth counts (i mod max 1 (List.length counts)))))
            ~bugs:(Array.of_list bugs) ?crash_sig:sg (abs id))
        (pair
           (quad int bool (sorted 600) (sorted 5000))
           (triple (list_size (int_range 1 8) (int_range 0 200)) (list (int_range 0 20))
              (option string))))
  in
  QCheck2.Test.make ~name:"codec round-trips arbitrary reports" ~count:300 gen_report
    (fun r -> report_equal r (Codec.decode (Codec.encode r)))

(* --- framing --- *)

let frame_all reports =
  let buf = Buffer.create 1024 in
  List.iter (Codec.add_framed buf) reports;
  Buffer.contents buf

let read_frames s =
  let n = String.length s in
  let rec go pos ok corrupt =
    if pos >= n then (List.rev ok, corrupt, 0)
    else
      match Codec.read_framed s ~pos with
      | Codec.Frame (r, next) -> go next (r :: ok) corrupt
      | Codec.Frame_corrupt next -> go next ok (corrupt + 1)
      | Codec.Frame_truncated -> (List.rev ok, corrupt, n - pos)
  in
  go 0 [] 0

let test_framed_round_trip () =
  let s = frame_all sample_reports in
  let ok, corrupt, truncated = read_frames s in
  Alcotest.(check int) "no corruption" 0 corrupt;
  Alcotest.(check int) "no truncation" 0 truncated;
  Alcotest.(check int) "all frames" (List.length sample_reports) (List.length ok);
  List.iter2 (fun a b -> check_report "framed round trip" a b) sample_reports ok

let flip s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  Bytes.to_string b

let test_framed_corruption () =
  let r0 = List.hd sample_reports and r1 = List.nth sample_reports 1 in
  let frame0 = frame_all [ r0 ] in
  let s = frame_all [ r0; r1; r0 ] in
  (* flip a payload byte inside the middle record: only that record is lost *)
  let s' = flip s (String.length frame0 + 4) in
  let ok, corrupt, truncated = read_frames s' in
  Alcotest.(check int) "one corrupt record" 1 corrupt;
  Alcotest.(check int) "no truncation" 0 truncated;
  Alcotest.(check int) "two intact records" 2 (List.length ok);
  check_report "first survives" r0 (List.hd ok);
  check_report "third survives" r0 (List.nth ok 1);
  (* chop mid-record: intact prefix plus a truncated tail *)
  let s'' = String.sub s 0 (String.length s - 3) in
  let ok, corrupt, truncated = read_frames s'' in
  Alcotest.(check int) "no corrupt record" 0 corrupt;
  Alcotest.(check int) "two intact records" 2 (List.length ok);
  Alcotest.(check bool) "truncated tail bytes counted" true (truncated > 0)

(* --- shard log --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "sbi_log" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let mk_dataset runs =
  Dataset.of_tables ~nsites:4 ~npreds:8
    ~pred_site:[| 0; 0; 1; 1; 2; 2; 3; 3 |]
    (Array.of_list runs)

let log_reports =
  List.init 23 (fun i ->
      mk_report
        ~outcome:(if i mod 3 = 0 then Report.Failure else Report.Success)
        ~sites:[| i mod 4 |]
        ~preds:[| 2 * (i mod 4); (2 * (i mod 4)) + 1 |]
        ~bugs:(if i mod 3 = 0 then [| i mod 5 |] else [||])
        ?crash_sig:(if i mod 6 = 0 then Some (Printf.sprintf "f%d<main" i) else None)
        i)

let test_shard_log_round_trip () =
  with_temp_dir (fun dir ->
      let ds = mk_dataset log_reports in
      let wstats = Shard_log.write_dataset ~dir ~shards:4 ds in
      Alcotest.(check int) "records written" 23 wstats.Shard_log.records;
      Alcotest.(check int) "four shards" 4 (List.length (Shard_log.shard_files ~dir));
      let ds', rstats = Shard_log.read_all ~dir in
      Alcotest.(check int) "records read" 23 rstats.Shard_log.records;
      Alcotest.(check int) "no corruption" 0 rstats.Shard_log.corrupt_records;
      Alcotest.(check int) "nsites" ds.Dataset.nsites ds'.Dataset.nsites;
      Alcotest.(check int) "npreds" ds.Dataset.npreds ds'.Dataset.npreds;
      Alcotest.(check (array int)) "pred_site" ds.Dataset.pred_site ds'.Dataset.pred_site;
      Array.iteri
        (fun i r -> check_report "report round trip" r ds'.Dataset.runs.(i))
        ds.Dataset.runs)

let test_shard_log_empty_and_missing () =
  with_temp_dir (fun dir ->
      let ds = mk_dataset [] in
      ignore (Shard_log.write_dataset ~dir ~shards:2 ds);
      let ds', stats = Shard_log.read_all ~dir in
      Alcotest.(check int) "no records" 0 (Array.length ds'.Dataset.runs);
      Alcotest.(check int) "no corruption" 0 stats.Shard_log.corrupt_records;
      Alcotest.(check int) "meta preserved" 8 ds'.Dataset.npreds);
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      match Shard_log.read_meta ~dir with
      | exception Shard_log.Format_error _ -> ()
      | _ -> Alcotest.fail "missing meta must raise Format_error")

let test_shard_log_bad_header () =
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let path = Shard_log.shard_path ~dir 0 in
      let oc = open_out_bin path in
      output_string oc "JUNKJUNK";
      close_out oc;
      match Shard_log.fold_shard path ~init:() ~f:(fun () _ -> ()) with
      | exception Shard_log.Format_error _ -> ()
      | _ -> Alcotest.fail "bad magic must raise Format_error")

let corrupt_one_byte path offset =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (flip s offset);
  close_out oc

let test_shard_log_corruption_recovery () =
  with_temp_dir (fun dir ->
      let ds = mk_dataset log_reports in
      ignore (Shard_log.write_dataset ~dir ~shards:1 ds);
      let path = Shard_log.shard_path ~dir 0 in
      (* flip a byte well inside some record's payload *)
      corrupt_one_byte path 40;
      let ds', stats = Shard_log.read_all ~dir in
      Alcotest.(check int) "one record skipped" 1 stats.Shard_log.corrupt_records;
      Alcotest.(check int) "rest recovered" 22 stats.Shard_log.records;
      Alcotest.(check int) "dataset holds intact records" 22 (Array.length ds'.Dataset.runs);
      Array.iter
        (fun (r : Report.t) ->
          check_report "intact record unchanged" (List.nth log_reports r.Report.run_id) r)
        ds'.Dataset.runs)

let test_shard_log_truncated_tail () =
  with_temp_dir (fun dir ->
      let ds = mk_dataset log_reports in
      ignore (Shard_log.write_dataset ~dir ~shards:1 ds);
      let path = Shard_log.shard_path ~dir 0 in
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub s 0 (String.length s - 5));
      close_out oc;
      let ds', stats = Shard_log.read_all ~dir in
      Alcotest.(check int) "last record dropped" 22 stats.Shard_log.records;
      Alcotest.(check int) "no corrupt records" 0 stats.Shard_log.corrupt_records;
      Alcotest.(check bool) "truncated bytes counted" true (stats.Shard_log.truncated_bytes > 0);
      Alcotest.(check int) "dataset holds the prefix" 22 (Array.length ds'.Dataset.runs))

(* --- aggregator --- *)

let crashy_src =
  {|
  int main() {
    int x = arg_int(0);
    int s = 0;
    for (int i = 0; i < x; i = i + 1) { s = s + i; }
    if (x > 5) {
      __bug(1);
      int[] a = null;
      return a[0];
    }
    println("ok " + to_str(s));
    return 0;
  }
  |}

let crashy_spec ?(plan = Sampler.Uniform 0.4) () =
  let t = Transform.instrument (Check.check_string crashy_src) in
  Collect.make_spec ~transform:t ~plan
    ~gen_input:(fun run -> [| string_of_int (run mod 10) |])
    ()

let counts_equal (a : Sbi_core.Counts.t) (b : Sbi_core.Counts.t) =
  a.Sbi_core.Counts.npreds = b.Sbi_core.Counts.npreds
  && a.Sbi_core.Counts.f = b.Sbi_core.Counts.f
  && a.Sbi_core.Counts.s = b.Sbi_core.Counts.s
  && a.Sbi_core.Counts.f_obs = b.Sbi_core.Counts.f_obs
  && a.Sbi_core.Counts.s_obs = b.Sbi_core.Counts.s_obs
  && a.Sbi_core.Counts.num_f = b.Sbi_core.Counts.num_f
  && a.Sbi_core.Counts.num_s = b.Sbi_core.Counts.num_s

let test_aggregator_equals_counts () =
  let ds = Collect.collect ~seed:3 (crashy_spec ()) ~nruns:60 in
  let agg = Aggregator.of_meta ds in
  Array.iter (Aggregator.observe agg) ds.Dataset.runs;
  Alcotest.(check bool) "aggregator = Counts.compute" true
    (counts_equal (Aggregator.to_counts agg) (Sbi_core.Counts.compute ds))

let test_aggregator_merge_monoid () =
  let ds = Collect.collect ~seed:4 (crashy_spec ()) ~nruns:45 in
  let part lo hi =
    let a = Aggregator.of_meta ds in
    for i = lo to hi - 1 do
      Aggregator.observe a ds.Dataset.runs.(i)
    done;
    a
  in
  let merged = Aggregator.merge (Aggregator.merge (part 0 11) (part 11 29)) (part 29 45) in
  Alcotest.(check bool) "merge of partitions = whole" true
    (counts_equal (Aggregator.to_counts merged) (Sbi_core.Counts.compute ds));
  let with_empty = Aggregator.merge merged (Aggregator.of_meta ds) in
  Alcotest.(check bool) "empty is neutral" true
    (counts_equal (Aggregator.to_counts with_empty) (Aggregator.to_counts merged))

let test_aggregator_streams_log () =
  with_temp_dir (fun dir ->
      let ds = Collect.collect ~seed:5 (crashy_spec ()) ~nruns:50 in
      ignore (Shard_log.write_dataset ~dir ~shards:3 ds);
      let agg, meta, stats = Aggregator.of_log ~dir in
      Alcotest.(check int) "streamed every record" 50 stats.Shard_log.records;
      Alcotest.(check int) "meta tables" ds.Dataset.npreds meta.Dataset.npreds;
      Alcotest.(check bool) "streamed counts = in-memory counts" true
        (counts_equal (Aggregator.to_counts agg) (Sbi_core.Counts.compute ds)))

(* --- parallel collection --- *)

let datasets_equal (a : Dataset.t) (b : Dataset.t) =
  a.Dataset.nsites = b.Dataset.nsites
  && a.Dataset.npreds = b.Dataset.npreds
  && a.Dataset.pred_site = b.Dataset.pred_site
  && Array.length a.Dataset.runs = Array.length b.Dataset.runs
  && Array.for_all2 report_equal a.Dataset.runs b.Dataset.runs

let test_par_collect_equals_sequential () =
  let spec = crashy_spec () in
  let seq = Collect.collect ~seed:11 spec ~nruns:40 in
  List.iter
    (fun domains ->
      let par = Par_collect.collect ~seed:11 ~domains spec ~nruns:40 in
      Alcotest.(check bool)
        (Printf.sprintf "parallel (%d domains) = sequential" domains)
        true (datasets_equal seq par))
    [ 1; 2; 3; 64 ]

let test_par_collect_to_log_equals_sequential () =
  with_temp_dir (fun dir ->
      let spec = crashy_spec () in
      let seq = Collect.collect ~seed:12 spec ~nruns:35 in
      let stats = Par_collect.collect_to_log ~seed:12 ~domains:4 spec ~nruns:35 ~dir in
      Alcotest.(check int) "all reports logged" 35 stats.Shard_log.records;
      Alcotest.(check int) "one shard per domain" 4
        (List.length (Shard_log.shard_files ~dir));
      let merged, rstats = Shard_log.read_all ~dir in
      Alcotest.(check int) "all reports recovered" 35 rstats.Shard_log.records;
      Alcotest.(check bool) "merged log = sequential dataset" true
        (datasets_equal seq merged))

let test_par_collect_first_run () =
  let spec = crashy_spec () in
  let seq = Collect.collect ~seed:13 ~first_run:100 spec ~nruns:20 in
  let par = Par_collect.collect ~seed:13 ~first_run:100 ~domains:3 spec ~nruns:20 in
  Alcotest.(check bool) "offset runs identical" true (datasets_equal seq par);
  Alcotest.(check int) "run ids offset" 100 seq.Dataset.runs.(0).Report.run_id

(* --- atomic dataset save --- *)

let test_atomic_save_no_droppings () =
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let path = Filename.concat dir "ds.dataset" in
      let ds = mk_dataset log_reports in
      Dataset.save path ds;
      Dataset.save path ds;
      (* overwrite works *)
      Alcotest.(check (list string)) "only the dataset file remains" [ "ds.dataset" ]
        (Array.to_list (Sys.readdir dir));
      let ds' = Dataset.load path in
      Alcotest.(check int) "content intact" 23 (Array.length ds'.Dataset.runs))

let suite =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32;
    Alcotest.test_case "varint round trip" `Quick test_varint;
    Alcotest.test_case "codec round trip" `Quick test_codec_round_trip;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    QCheck_alcotest.to_alcotest qcheck_codec_round_trip;
    Alcotest.test_case "framed round trip" `Quick test_framed_round_trip;
    Alcotest.test_case "framed corruption isolation" `Quick test_framed_corruption;
    Alcotest.test_case "shard log round trip" `Quick test_shard_log_round_trip;
    Alcotest.test_case "shard log empty / missing meta" `Quick test_shard_log_empty_and_missing;
    Alcotest.test_case "shard log bad header" `Quick test_shard_log_bad_header;
    Alcotest.test_case "corruption recovery" `Quick test_shard_log_corruption_recovery;
    Alcotest.test_case "truncated tail recovery" `Quick test_shard_log_truncated_tail;
    Alcotest.test_case "aggregator equals Counts.compute" `Quick test_aggregator_equals_counts;
    Alcotest.test_case "aggregator merge monoid" `Quick test_aggregator_merge_monoid;
    Alcotest.test_case "aggregator streams a log" `Quick test_aggregator_streams_log;
    Alcotest.test_case "parallel = sequential collection" `Quick test_par_collect_equals_sequential;
    Alcotest.test_case "parallel log = sequential dataset" `Quick test_par_collect_to_log_equals_sequential;
    Alcotest.test_case "parallel collection with first_run" `Quick test_par_collect_first_run;
    Alcotest.test_case "atomic dataset save" `Quick test_atomic_save_no_droppings;
  ]
