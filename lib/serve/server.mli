(** Concurrent triage query server.

    Serves the {!Wire} protocol over a Unix or TCP socket, with two
    connection front ends sharing one dispatch core:

    - [acceptors > 0] (the CLI default): the event-driven {!Evloop}
      front end — that many poll(2) loop domains with per-connection
      state machines and a bounded dispatch worker pool.  On TCP with
      [acceptors >= 2] each loop accepts on its own SO_REUSEPORT
      listener; otherwise loop 0 distributes from a shared listener.
      Scales to thousands of concurrent connections (no per-connection
      thread, no FD_SETSIZE ceiling).
    - [acceptors = 0]: the legacy path — one accept thread plus one
      worker thread per connection (blocking reads with a receive
      timeout).

    Both paths enforce the [max_conns] admission cap (excess clients
    get a one-line [err busy] and a [fault.overload] count, never a
    hang), count transient accept(2) failures as [fault.accept] with a
    brief backoff instead of silently dropping connections, use a
    global lock around index state, and feed the same {!Metrics}.

    Read-only queries ([topk], [pred], [affinity]) follow an
    epoch-snapshot read path: the lock is held only to fetch (or, after
    an ingest bumped the epoch, rebuild) the index's cached bitmap
    {!Sbi_index.Snapshot}; the query then computes on the immutable
    snapshot with the lock released.  Readers never block ingest, and
    with [domains > 1] snapshot rebuilds and per-predicate rescoring
    fan across a {!Sbi_par.Domain_pool}.

    Queries ([topk], [pred], [affinity], [stats], [ping]) read the open
    {!Index}; [topk] and [pred] accept an optional [formula=NAME]
    argument selecting any registered SBFL formula (see
    {!Sbi_sbfl.Registry}; the [formulas] command lists them), answered
    from the same cached snapshot aggregate as the default importance
    path; [ingest] decodes a base64 {!Sbi_ingest.Codec} payload,
    validates it against the site/predicate tables, appends it to a
    fresh shard of the index's source log (with [fsync] when configured,
    so an acknowledged report survives power loss), and folds it into
    the index's live tail — visible to the very next query.
    [ingest-batch] carries many payloads in one request (dot-framed like
    a response) and answers with one status line per report; with
    [group_commit_ms > 0] all ingest requests share windowed group-commit
    fsyncs, amortizing one durability barrier over every report that
    arrived in the window while keeping ack ⊆ fsynced.

    {!stop} is the graceful-shutdown path (the CLI wires it to SIGINT):
    stop accepting, shut down open connections, join every worker, close
    the durable writer. *)

type t

type config = {
  addr : Wire.addr;
  timeout : float;  (** per-connection receive timeout, seconds *)
  fsync : bool;  (** fsync the ingest log on every accepted record *)
  ingest_log : string option;
      (** shard-log directory for durable ingest; [None] disables the
          [ingest] command *)
  domains : int;
      (** analysis domains; [> 1] spawns a {!Sbi_par.Domain_pool} that
          parallelizes snapshot rebuilds and affinity rescoring (clamped
          to the hardware domain count — extra domains only add GC
          synchronization cost) *)
  par_grain : int;
      (** sequential-cutoff work threshold for the query read path: a
          query whose estimated work — snapshot runs × (npreds + nsites)
          popcount cells — is below this runs inline on the request
          thread instead of round-tripping through the pool.  Default
          [2^20] cells; [0] fans every query out. *)
  max_request : int;
      (** byte bound on any single request line; an oversized request is
          rejected ([err] + close) and counted as a [fault.oversize] *)
  io : Sbi_fault.Io.t;
      (** fault-injection hook for wire and ingest-log I/O; passthrough
          ({!Sbi_fault.Io.none}) in production *)
  compact_every : float option;
      (** background compaction period in seconds; [None] (the default)
          disables the maintenance thread.  Each cycle runs
          {!Sbi_index.Index.compact} on the index directory; when segments
          were merged, the index is reopened, the live ingest tail is
          replayed into it, and the server atomically swaps to the fresh
          index under its lock — queries in flight keep reading the old
          segment files, which are deleted only after they drain. *)
  tier_max : int;
      (** tier fan-in passed to {!Sbi_index.Index.compact}
          ({!Sbi_store.Tier.default_tier_max} by default) *)
  group_commit_ms : float;
      (** [> 0] (with [fsync] on and an ingest log): ingest switches to
          group commit — appends go to the shard-log buffer without an
          inline fsync, and a coordinator thread runs one [log.fsync]
          covering every report that arrived in the window (flushing on
          [max_batch] pending reports, this delay, or shutdown).  Acks
          and tail visibility are still released only after the covering
          fsync returns, so durable-before-visible and ack ⊆ fsynced are
          preserved exactly; only latency (up to the window) and fsync
          count change.  [0.] (the default) keeps one inline fsync per
          ingest request — note that even then an [ingest-batch] request
          runs a single fsync barrier for the whole batch. *)
  max_batch : int;
      (** force a group-commit flush once this many reports are pending
          in the window (default 512) *)
  acceptors : int;
      (** [> 0] selects the event-driven front end with this many
          {!Evloop} loop domains; [0] (the library default) keeps the
          thread-per-connection path.  The CLI defaults to 1. *)
  max_conns : int;
      (** exact connection admission cap (default 4096), enforced in
          both modes: a client beyond it is accepted, answered
          [err busy], closed, and counted as [fault.overload] *)
}

val default_config : Wire.addr -> config
(** 30s timeout, fsync on, no ingest log, 1 domain, [2^20]-cell parallel
    cutoff, 1 MiB request bound, passthrough I/O, no background
    compaction, no group commit (inline fsync per request),
    thread-per-connection front end ([acceptors = 0]), 4096-connection
    cap. *)

val max_batch_lines : int
(** Hard cap on reports per [ingest-batch] request (65536); larger
    batches are rejected whole, without dropping the connection. *)

val start : config -> Sbi_index.Index.t -> t
(** Bind, listen, and spawn the accept loop.  When [ingest_log] is set,
    opens a writer on a fresh shard (max existing shard + 1).
    @raise Unix.Unix_error when the address cannot be bound.
    @raise Invalid_argument when the address does not resolve. *)

val addr : t -> Wire.addr

val stop : t -> unit
(** Graceful shutdown; idempotent.  Returns once every worker has
    exited and the ingest writer (if any) is closed. *)

val wait : t -> unit
(** Block until the server stops (joins the accept thread). *)

val ingested : t -> int
(** Reports accepted over the wire since {!start}. *)

val worker_count : t -> int
(** Live connections.  Legacy mode counts registered connection workers
    (registration happens before the worker thread can run and
    deregistration is the worker's last act); event-loop mode counts
    admitted connections.  Either way, after every client has
    disconnected this drains to exactly zero — no stale entries. *)
