(** Group-commit fsync coordinator.

    Amortizes one durability barrier across every report that arrives
    inside a commit window.  A submitter appends its records to the log
    (buffered, no fsync), calls {!submit}, and parks in {!wait}; a
    dedicated flusher thread runs the [sync] barrier when the window
    fills ([max_batch] reports), ages out ([max_delay_ms]), or the
    coordinator stops — then releases every waiter the barrier covered.

    The contract the serve ingest path builds on: a record's append
    happens-before its {!submit}, and the flusher captures the pending
    window under the same lock, so a [wait] returning [Ok ()] means the
    caller's records are on stable storage — acks and tail visibility
    may then be released (durable-before-visible, ack ⊆ fsynced).  A
    failed barrier fails {e every} waiter of that window; none of their
    records may be acknowledged. *)

type t

type ticket
(** One commit window's handle, shared by every submitter it covers. *)

val create :
  ?max_batch:int -> ?max_delay_ms:float -> sync:(unit -> unit) -> unit -> t
(** Spawn the flusher thread.  [sync] is the durability barrier (e.g.
    {!Sbi_ingest.Shard_log.sync} on the ingest writer); it runs on the
    flusher thread, outside the coordinator's lock, and must be safe to
    call concurrently with further buffered appends.  Defaults:
    [max_batch] 512, [max_delay_ms] 2.  [max_delay_ms 0.] degenerates to
    flush-per-submit (still off the submitter's thread). *)

val submit : t -> int -> ticket
(** [submit t n] registers [n] just-appended records with the current
    window and returns its ticket.  Must be called {e after} the
    corresponding appends have returned. *)

val wait : t -> ticket -> (unit, exn) result
(** Block until the ticket's window completes.  [Ok ()]: the covering
    barrier succeeded, every record of the window is durable.
    [Error e]: the barrier raised [e]; nothing in the window may be
    acknowledged as durable. *)

val stats : t -> int * int
(** [(flushes, reports)]: completed barriers (failures included) and the
    total reports they covered. *)

val stop : t -> unit
(** Flush any pending window, join the flusher, close the wake pipe.
    All waiters are released before this returns.  Subsequent {!submit}
    calls fail — stop the request workers first. *)
