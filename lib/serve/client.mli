(** Client for the {!Wire} protocol, hardened for flaky networks.

    Connects with a bounded deadline (non-blocking connect + select) and
    jittered-exponential-backoff retries ({!Sbi_fault.Retry}) on
    transient connect failures — refused, unreachable, reset, timed out.
    Established connections carry kernel send/receive deadlines
    ([SO_SNDTIMEO]/[SO_RCVTIMEO]), so a stalled server surfaces as
    {!Wire.Timeout} instead of a hang.  Requests are never retried:
    [ingest] is not idempotent, and only the caller knows whether a
    command is safe to replay. *)

type t

val default_timeout_ms : int
(** 30_000 — every deadline is finite unless explicitly disabled. *)

val connect :
  ?timeout_ms:int ->
  ?retry:Sbi_fault.Retry.policy ->
  ?io:Sbi_fault.Io.t ->
  Wire.addr ->
  (t, string) result
(** [timeout_ms] (default {!default_timeout_ms}) bounds the connect
    attempt and every subsequent read/write; [<= 0] disables deadlines.
    [retry] (default {!Sbi_fault.Retry.default}) governs reconnect
    backoff; pass {!Sbi_fault.Retry.no_retry} for a single attempt.
    [Error] on resolution failure or when every attempt is exhausted —
    never an exception. *)

val request : t -> string -> (string * string list, string) result
(** Send one command line and read one framed response.
    [Ok (header_rest, payload)] on [ok]; [Error msg] on [err].
    @raise Wire.Timeout when a deadline expires mid-request.
    @raise End_of_file when the server closed the connection. *)

val ingest_batch :
  t -> Sbi_runtime.Report.t list -> ((int, string) result list, string) result
(** Submit many reports in one [ingest-batch] round trip: the whole
    batch travels in a single request, the server appends it under one
    durability barrier (one fsync for the batch — or for the whole
    group-commit window it joins), and the reply carries one status per
    report, in submission order: [Ok run_id] for an accepted (durable,
    queryable) report, [Error msg] for a rejected one.  The outer
    [Error] is transport/protocol-level: nothing in the batch should be
    presumed accepted.  Not idempotent — never retried internally.
    @raise Wire.Timeout / End_of_file as {!request}. *)

val close : t -> unit
(** Sends [quit] (best-effort) and closes the socket.  Idempotent. *)
