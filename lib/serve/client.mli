(** Blocking client for the {!Wire} protocol. *)

type t

val connect : Wire.addr -> t
(** @raise Unix.Unix_error when the server is unreachable. *)

val request : t -> string -> (string * string list, string) result
(** Send one command line and read one framed response.
    [Ok (header_rest, payload)] on [ok]; [Error msg] on [err].
    @raise End_of_file when the server closed the connection. *)

val close : t -> unit
(** Sends [quit] (best-effort) and closes the socket.  Idempotent. *)
