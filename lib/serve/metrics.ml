(* Per-server request metrics on top of the shared Sbi_obs.Hist
   histogram: log2 buckets in microseconds, 1us up to a largest finite
   bound of 2^23 us (~8.4 s), plus a distinct overflow bucket.  The
   overflow bucket is reported as [latency_gt_8388608us] — never folded
   into a fabricated finite [latency_le_*] bound — and percentiles whose
   rank lands there saturate to [Gt] instead of claiming an upper bound
   no observation respected.

   Latencies are measured by the caller on the monotonic clock
   (Sbi_obs.Clock); a negative duration can therefore only mean a
   mocked/broken clock source, and is clamped to 0 and counted in
   [clock_anomaly] rather than silently filed in the <=1us bucket. *)

module Hist = Sbi_obs.Hist

type t = {
  mutex : Mutex.t;
  mutable requests : int;
  per_command : (string, int) Hashtbl.t;
  per_command_err : (string, int) Hashtbl.t;  (* faults attributed to a command *)
  faults : (string, int) Hashtbl.t;  (* per-connection failures by kind *)
  mutable clock_anomalies : int;  (* negative raw latencies, clamped to 0 *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable connections : int;
  mutable connections_total : int;
  latency : Hist.t;
}

let create () =
  {
    mutex = Mutex.create ();
    requests = 0;
    per_command = Hashtbl.create 8;
    per_command_err = Hashtbl.create 8;
    faults = Hashtbl.create 8;
    clock_anomalies = 0;
    bytes_in = 0;
    bytes_out = 0;
    connections = 0;
    connections_total = 0;
    latency = Hist.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let record t ~cmd ~latency_ns ~bytes_in ~bytes_out =
  locked t (fun () ->
      t.requests <- t.requests + 1;
      bump t.per_command cmd;
      t.bytes_in <- t.bytes_in + bytes_in;
      t.bytes_out <- t.bytes_out + bytes_out;
      if latency_ns < 0 then t.clock_anomalies <- t.clock_anomalies + 1;
      Hist.observe_ns t.latency (max 0 latency_ns))

let request_error t ~cmd = locked t (fun () -> bump t.per_command_err cmd)

let connection_opened t =
  locked t (fun () ->
      t.connections <- t.connections + 1;
      t.connections_total <- t.connections_total + 1)

let connection_closed t = locked t (fun () -> t.connections <- t.connections - 1)

let fault t ~kind = locked t (fun () -> bump t.faults kind)

type snapshot = {
  requests : int;
  per_command : (string * int) list;
  per_command_err : (string * int) list;
  faults : (string * int) list;
  clock_anomalies : int;
  bytes_in : int;
  bytes_out : int;
  connections : int;
  connections_total : int;
  latency_buckets : (Hist.bound * int) list;
  p50 : Hist.bound option;
  p90 : Hist.bound option;
  p99 : Hist.bound option;
}

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let snapshot t =
  locked t (fun () ->
      {
        requests = t.requests;
        per_command = sorted_bindings t.per_command;
        per_command_err = sorted_bindings t.per_command_err;
        faults = sorted_bindings t.faults;
        clock_anomalies = t.clock_anomalies;
        bytes_in = t.bytes_in;
        bytes_out = t.bytes_out;
        connections = t.connections;
        connections_total = t.connections_total;
        latency_buckets = Hist.buckets t.latency;
        p50 = Hist.percentile t.latency 50.;
        p90 = Hist.percentile t.latency 90.;
        p99 = Hist.percentile t.latency 99.;
      })

let pct = function None -> "0" | Some b -> Hist.pp_bound b

let lines t =
  let s = snapshot t in
  List.concat
    [
      [
        Printf.sprintf "requests %d" s.requests;
        Printf.sprintf "bytes_in %d" s.bytes_in;
        Printf.sprintf "bytes_out %d" s.bytes_out;
        Printf.sprintf "connections %d" s.connections;
        Printf.sprintf "connections_total %d" s.connections_total;
        Printf.sprintf "clock_anomaly %d" s.clock_anomalies;
        Printf.sprintf "latency_p50_us %s" (pct s.p50);
        Printf.sprintf "latency_p90_us %s" (pct s.p90);
        Printf.sprintf "latency_p99_us %s" (pct s.p99);
      ];
      List.map (fun (cmd, n) -> Printf.sprintf "req.%s %d" cmd n) s.per_command;
      List.map (fun (cmd, n) -> Printf.sprintf "req.%s.err %d" cmd n) s.per_command_err;
      List.map (fun (kind, n) -> Printf.sprintf "fault.%s %d" kind n) s.faults;
      List.map
        (fun (bound, n) ->
          match bound with
          | Hist.Le us -> Printf.sprintf "latency_le_%dus %d" us n
          | Hist.Gt us -> Printf.sprintf "latency_gt_%dus %d" us n)
        s.latency_buckets;
    ]
