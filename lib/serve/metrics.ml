(* Latency buckets: powers of two in microseconds, 1us .. ~8.4s, plus an
   overflow bucket.  Percentiles report the upper bound of the bucket the
   rank falls in — coarse, but allocation-free and mergeable. *)
let nbuckets = 24

let bucket_bound i = 1 lsl i (* us *)

type t = {
  mutex : Mutex.t;
  mutable requests : int;
  per_command : (string, int) Hashtbl.t;
  faults : (string, int) Hashtbl.t;  (* per-connection failures by kind *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable connections : int;
  mutable connections_total : int;
  latency : int array;  (* bucket -> count *)
}

let create () =
  {
    mutex = Mutex.create ();
    requests = 0;
    per_command = Hashtbl.create 8;
    faults = Hashtbl.create 8;
    bytes_in = 0;
    bytes_out = 0;
    connections = 0;
    connections_total = 0;
    latency = Array.make (nbuckets + 1) 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bucket_of_ns ns =
  let us = ns / 1000 in
  let rec go i = if i >= nbuckets then nbuckets else if us < bucket_bound i then i else go (i + 1) in
  go 0

let record t ~cmd ~latency_ns ~bytes_in ~bytes_out =
  locked t (fun () ->
      t.requests <- t.requests + 1;
      Hashtbl.replace t.per_command cmd
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_command cmd));
      t.bytes_in <- t.bytes_in + bytes_in;
      t.bytes_out <- t.bytes_out + bytes_out;
      let b = bucket_of_ns latency_ns in
      t.latency.(b) <- t.latency.(b) + 1)

let connection_opened t =
  locked t (fun () ->
      t.connections <- t.connections + 1;
      t.connections_total <- t.connections_total + 1)

let connection_closed t = locked t (fun () -> t.connections <- t.connections - 1)

let fault t ~kind =
  locked t (fun () ->
      Hashtbl.replace t.faults kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.faults kind)))

type snapshot = {
  requests : int;
  per_command : (string * int) list;
  faults : (string * int) list;
  bytes_in : int;
  bytes_out : int;
  connections : int;
  connections_total : int;
  latency_buckets : (int * int) list;
  p50_us : int;
  p90_us : int;
  p99_us : int;
}

let percentile_bound latency total p =
  if total = 0 then 0
  else begin
    let rank = int_of_float (Float.of_int total *. p /. 100.) + 1 in
    let rank = min rank total in
    let seen = ref 0 and bound = ref 0 and found = ref false in
    Array.iteri
      (fun i c ->
        if not !found then begin
          seen := !seen + c;
          if !seen >= rank then begin
            bound := (if i >= nbuckets then bucket_bound nbuckets else bucket_bound i);
            found := true
          end
        end)
      latency;
    !bound
  end

let snapshot t =
  locked t (fun () ->
      let total = Array.fold_left ( + ) 0 t.latency in
      let buckets = ref [] in
      for i = nbuckets downto 0 do
        if t.latency.(i) > 0 then buckets := (bucket_bound (min i nbuckets), t.latency.(i)) :: !buckets
      done;
      {
        requests = t.requests;
        per_command =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_command []);
        faults =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.faults []);
        bytes_in = t.bytes_in;
        bytes_out = t.bytes_out;
        connections = t.connections;
        connections_total = t.connections_total;
        latency_buckets = !buckets;
        p50_us = percentile_bound t.latency total 50.;
        p90_us = percentile_bound t.latency total 90.;
        p99_us = percentile_bound t.latency total 99.;
      })

let lines t =
  let s = snapshot t in
  List.concat
    [
      [
        Printf.sprintf "requests %d" s.requests;
        Printf.sprintf "bytes_in %d" s.bytes_in;
        Printf.sprintf "bytes_out %d" s.bytes_out;
        Printf.sprintf "connections %d" s.connections;
        Printf.sprintf "connections_total %d" s.connections_total;
        Printf.sprintf "latency_p50_us %d" s.p50_us;
        Printf.sprintf "latency_p90_us %d" s.p90_us;
        Printf.sprintf "latency_p99_us %d" s.p99_us;
      ];
      List.map (fun (cmd, n) -> Printf.sprintf "req.%s %d" cmd n) s.per_command;
      List.map (fun (kind, n) -> Printf.sprintf "fault.%s %d" kind n) s.faults;
      List.map (fun (bound, n) -> Printf.sprintf "latency_le_%dus %d" bound n) s.latency_buckets;
    ]
