(** The triage wire protocol: addresses, robust socket I/O, and response
    framing.

    Requests are single lines, [\n]-terminated:
    {v
    ping | stats | topk [K] | pred <id> | affinity <id> [K]
    ingest <base64 payload> | quit
    v}

    Every response is a header line — [ok ...] or [err <message>] —
    followed by zero or more payload lines, terminated by a line holding
    a single ["."].  A payload line that happens to start with a dot is
    dot-stuffed ([".."] on the wire), so binary-free framing never
    ambiguates.

    All I/O is file-descriptor based and partial-operation safe: writes
    loop until every byte is accepted, reads are buffered, and [EINTR]
    is always retried.  [EAGAIN]/[EWOULDBLOCK] — the kernel's way of
    reporting an expired [SO_RCVTIMEO]/[SO_SNDTIMEO] deadline — raises
    {!Timeout}.  Both sides optionally route through
    {!Sbi_fault.Io} for fault injection. *)

type addr =
  | Unix_sock of string  (** filesystem socket path *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** A string containing [/] is a Unix socket path; otherwise
    [host:port]. *)

val addr_to_string : addr -> string

val sockaddr : addr -> (Unix.sockaddr, string) result
(** Resolve to a connectable address.  [Error] (never an exception) when
    a TCP host does not resolve. *)

exception Timeout
(** A socket deadline ([SO_RCVTIMEO]/[SO_SNDTIMEO]) expired. *)

(** {1 Partial-operation-safe primitives} *)

val write_fully :
  ?io:Sbi_fault.Io.t -> Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Write exactly [len] bytes, looping over partial writes and retrying
    [EINTR].  @raise Timeout on an expired send deadline. *)

val write_string : ?io:Sbi_fault.Io.t -> Unix.file_descr -> string -> unit

(** Buffered line reader over a descriptor. *)
type reader

val reader : ?io:Sbi_fault.Io.t -> ?max_line:int -> Unix.file_descr -> reader
(** [max_line] (default 1 MiB) bounds any single line: a peer that
    streams an unterminated request cannot grow memory without bound. *)

val read_line : reader -> [ `Line of string | `Eof | `Too_long ]
(** Next [\n]-terminated line (terminator stripped, CR tolerated).
    [`Too_long] when the line exceeds the reader's bound — the stream is
    no longer in sync and should be closed.  Retries [EINTR]; short
    reads are absorbed by the buffer.  @raise Timeout on an expired
    receive deadline. *)

(** {1 Framing} *)

val stuff : string -> string
(** Dot-stuff one payload line (a leading ["."] becomes [".."]) — used
    by response framing and by the [ingest-batch] request body, whose
    payload lines are framed exactly like a response (terminated by a
    lone ["."]). *)

val unstuff : string -> string
(** Inverse of {!stuff}. *)

val render_framed : string -> string list -> string
(** Render one framed response (header, stuffed payload lines, lone-dot
    terminator) to a string without writing it — the event-loop front
    end queues the result on a per-connection write buffer and drains it
    across partial non-blocking writes. *)

val render_ok : header:string -> lines:string list -> string
(** [render_framed ("ok " ^ header) lines]. *)

val render_err : string -> string
(** [render_framed ("err " ^ msg) []]. *)

val write_ok :
  ?io:Sbi_fault.Io.t -> Unix.file_descr -> header:string -> lines:string list -> int
(** Send one framed success response; returns bytes written. *)

val write_err : ?io:Sbi_fault.Io.t -> Unix.file_descr -> string -> int

val read_response : reader -> (string * string list, string) result
(** Read one framed response: [Ok (header_rest, payload)] for an [ok]
    header (the header's text after ["ok "]), [Error msg] for [err].
    @raise End_of_file when the peer closed mid-response.
    @raise Timeout on an expired receive deadline. *)
