(** The triage wire protocol: addresses and response framing.

    Requests are single lines, [\n]-terminated:
    {v
    ping | stats | topk [K] | pred <id> | affinity <id> [K]
    ingest <base64 payload> | quit
    v}

    Every response is a header line — [ok ...] or [err <message>] —
    followed by zero or more payload lines, terminated by a line holding
    a single ["."].  A payload line that happens to start with a dot is
    dot-stuffed ([".."] on the wire), so binary-free framing never
    ambiguates. *)

type addr =
  | Unix_sock of string  (** filesystem socket path *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** A string containing [/] is a Unix socket path; otherwise
    [host:port]. *)

val addr_to_string : addr -> string
val sockaddr : addr -> Unix.sockaddr
(** @raise Failure when a TCP host does not resolve. *)

val write_ok : out_channel -> header:string -> lines:string list -> int
(** Send one framed success response; returns bytes written. *)

val write_err : out_channel -> string -> int

val read_response : in_channel -> (string * string list, string) result
(** Read one framed response: [Ok (header_rest, payload)] for an [ok]
    header (the header's text after ["ok "]), [Error msg] for [err].
    @raise End_of_file when the peer closed mid-response. *)
