(* Group-commit coordinator: amortize one fsync across every report that
   arrived inside the window.

   Submitters append their (already validated) records to the shard log
   buffer, then [submit] them here and [wait]; a dedicated flusher thread
   runs the [sync] barrier once per window and releases every waiter it
   covers.  Correctness hinges on ordering: a report's append completes
   strictly before its [submit], and the flusher captures the pending
   batch under the same mutex [submit] uses, so the barrier it runs next
   covers every report in the captured batch.

   The flusher sleeps on a self-pipe with a poll(2) wait
   ({!Evloop.wait_readable} — stdlib [Condition] has no timed wait):
   submitters kick the pipe on the first
   report of a window and again when the batch crosses [max_batch], so a
   full window flushes immediately instead of waiting out the delay. *)

type state = Pending | Flushed | Failed of exn

type ticket = {
  mutable n : int;  (* reports in this window *)
  mutable first_ns : int;  (* monotonic stamp of the window's first report *)
  mutable state : state;
}

type t = {
  m : Mutex.t;
  cv : Condition.t;  (* broadcast when a window completes *)
  sync : unit -> unit;
  max_batch : int;
  max_delay_ns : int;
  mutable cur : ticket;
  mutable stopping : bool;
  mutable flushes : int;  (* completed sync barriers (failures included) *)
  mutable reports : int;  (* reports covered by completed barriers *)
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable flusher : Thread.t option;
}

let fresh_ticket () = { n = 0; first_ns = 0; state = Pending }

let kick t =
  try ignore (Unix.single_write_substring t.pipe_w "!" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let drain t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.pipe_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* One pass of the flusher: decide under the lock whether to flush now,
   sleep, or exit; run the barrier outside it.  Returns [false] to stop. *)
let flusher_step t =
  let action =
    locked t.m (fun () ->
        if t.cur.n = 0 then if t.stopping then `Exit else `Sleep (-1.0)
        else begin
          let now = Sbi_obs.Clock.now_ns () in
          let deadline = t.cur.first_ns + t.max_delay_ns in
          if t.stopping || t.cur.n >= t.max_batch || now >= deadline then begin
            let b = t.cur in
            t.cur <- fresh_ticket ();
            `Flush b
          end
          else `Sleep (float_of_int (deadline - now) *. 1e-9)
        end)
  in
  match action with
  | `Exit -> false
  | `Sleep timeout ->
      (* poll, not select: the self-pipe's fd number is arbitrary, and a
         server already holding > 1024 descriptors must still flush *)
      let timeout_ms =
        if timeout < 0. then -1 else int_of_float (Float.ceil (timeout *. 1e3))
      in
      (match Evloop.wait_readable ~timeout_ms t.pipe_r with
      | `Timeout -> ()
      | `Ready -> drain t);
      true
  | `Flush b ->
      let result = match t.sync () with () -> Flushed | exception e -> Failed e in
      locked t.m (fun () ->
          b.state <- result;
          t.flushes <- t.flushes + 1;
          t.reports <- t.reports + b.n;
          Condition.broadcast t.cv);
      true

let flusher_loop t =
  while flusher_step t do
    ()
  done

let create ?(max_batch = 512) ?(max_delay_ms = 2.0) ~sync () =
  if max_batch < 1 then invalid_arg "Group_commit.create: max_batch must be >= 1";
  if max_delay_ms < 0.0 then invalid_arg "Group_commit.create: max_delay_ms must be >= 0";
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let t =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      sync;
      max_batch;
      max_delay_ns = int_of_float (max_delay_ms *. 1e6);
      cur = fresh_ticket ();
      stopping = false;
      flushes = 0;
      reports = 0;
      pipe_r;
      pipe_w;
      flusher = None;
    }
  in
  t.flusher <- Some (Thread.create flusher_loop t);
  t

let submit t n =
  if n < 1 then invalid_arg "Group_commit.submit: n must be >= 1";
  let b, wake =
    locked t.m (fun () ->
        if t.stopping then failwith "Group_commit.submit: coordinator stopped";
        let b = t.cur in
        let was_empty = b.n = 0 in
        if was_empty then b.first_ns <- Sbi_obs.Clock.now_ns ();
        b.n <- b.n + n;
        (b, was_empty || b.n >= t.max_batch))
  in
  if wake then kick t;
  b

let wait t b =
  locked t.m (fun () ->
      while b.state = Pending do
        Condition.wait t.cv t.m
      done);
  match b.state with
  | Flushed -> Ok ()
  | Failed e -> Error e
  | Pending -> assert false

let stats t = locked t.m (fun () -> (t.flushes, t.reports))

let stop t =
  let th = locked t.m (fun () ->
      t.stopping <- true;
      let th = t.flusher in
      t.flusher <- None;
      th)
  in
  (match th with
  | Some th ->
      kick t;
      Thread.join th
  | None -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
