module Retry = Sbi_fault.Retry

type t = {
  fd : Unix.file_descr;
  rd : Wire.reader;
  io : Sbi_fault.Io.t option;
  mutable open_ : bool;
}

let default_timeout_ms = 30_000

(* Non-blocking connect bounded by a poll(2) wait: a black-holed host
   fails in [timeout_ms] instead of the kernel's minutes-long default.
   Poll, not select: a client holding > 1024 open descriptors (a fleet
   driver, `cbi load` at connection scale) must still be able to apply
   connect deadlines. *)
let connect_deadline fd sa timeout_ms =
  if timeout_ms <= 0 then Unix.connect fd sa
  else begin
    Unix.set_nonblock fd;
    (match Unix.connect fd sa with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> (
        match Evloop.wait_writable ~timeout_ms fd with
        | `Timeout -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
        | `Ready -> (
            match Unix.getsockopt_error fd with
            | Some err -> raise (Unix.Unix_error (err, "connect", ""))
            | None -> ())));
    Unix.clear_nonblock fd
  end

let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT | Unix.EHOSTUNREACH
  | Unix.ENETUNREACH | Unix.ENETDOWN | Unix.EAGAIN | Unix.EINTR | Unix.ENOENT ->
      (* ENOENT: a Unix-socket server that has not bound yet *)
      true
  | _ -> false

let connect ?(timeout_ms = default_timeout_ms) ?(retry = Retry.default) ?io addr =
  match Wire.sockaddr addr with
  | Error e -> Error e
  | Ok sa ->
      let attempt () =
        let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
        match connect_deadline fd sa timeout_ms with
        | () -> Ok fd
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            let msg = Unix.error_message e in
            if transient e then Error (`Retry msg) else Error (`Fatal msg)
      in
      (match Retry.run retry attempt with
      | Error msg ->
          Error (Printf.sprintf "cannot connect to %s: %s" (Wire.addr_to_string addr) msg)
      | Ok fd ->
          if timeout_ms > 0 then begin
            let deadline = float_of_int timeout_ms /. 1000. in
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO deadline
             with Unix.Unix_error _ -> ());
            try Unix.setsockopt_float fd Unix.SO_SNDTIMEO deadline
            with Unix.Unix_error _ -> ()
          end;
          Ok { fd; rd = Wire.reader ?io fd; io; open_ = true })

let request t line =
  Wire.write_string ?io:t.io t.fd (line ^ "\n");
  Wire.read_response t.rd

(* One ingest-batch round trip: many reports up, one status line per
   report back.  The request body reuses the response framing (stuffed
   payload lines, lone-dot terminator) and is sent as a single write —
   the server reads it in one pass, appends the whole batch, and runs a
   single durability barrier for it. *)
let ingest_batch t reports =
  let buf = Buffer.create (256 * (1 + List.length reports)) in
  Buffer.add_string buf "ingest-batch\n";
  List.iter
    (fun r ->
      Buffer.add_string buf (Wire.stuff (B64.encode (Sbi_ingest.Codec.encode r)));
      Buffer.add_char buf '\n')
    reports;
  Buffer.add_string buf ".\n";
  Wire.write_string ?io:t.io t.fd (Buffer.contents buf);
  match Wire.read_response t.rd with
  | Error e -> Error e
  | Ok (_header, lines) ->
      let parse l =
        if String.length l >= 3 && String.sub l 0 3 = "ok " then
          match int_of_string_opt (String.sub l 3 (String.length l - 3)) with
          | Some id -> Ok id
          | None -> Error ("malformed status line: " ^ l)
        else if String.length l >= 4 && String.sub l 0 4 = "err " then
          Error (String.sub l 4 (String.length l - 4))
        else Error ("malformed status line: " ^ l)
      in
      Ok (List.map parse lines)

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (try Wire.write_string t.fd "quit\n"
     with Wire.Timeout | Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
