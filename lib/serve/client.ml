type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable open_ : bool;
}

let connect addr =
  let sa = Wire.sockaddr addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     Unix.close fd;
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; open_ = true }

let request t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  Wire.read_response t.ic

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (try
       output_string t.oc "quit\n";
       flush t.oc
     with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
