(** RFC 4648 base64 (standard alphabet, [=] padding).

    The wire protocol is newline-delimited text, so a binary {!Sbi_ingest.Codec}
    report payload must cross as text; base64 is the encoding the
    [ingest] command uses.  Implemented here because the build image
    carries no base64 library. *)

val encode : string -> string

val decode : string -> (string, string) result
(** Strict: rejects characters outside the alphabet, bad lengths, and
    malformed padding. *)
