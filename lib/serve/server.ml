open Sbi_runtime
open Sbi_ingest
open Sbi_core
open Sbi_index

type config = {
  addr : Wire.addr;
  timeout : float;
  fsync : bool;
  ingest_log : string option;
  domains : int;
  par_grain : int;
      (* sequential cutoff for the query read path: a query whose work
         estimate (runs × (npreds + nsites) popcount cells) is below this
         runs inline on the request thread instead of round-tripping
         through the domain pool *)
  max_request : int;
  io : Sbi_fault.Io.t;
  compact_every : float option;
  tier_max : int;
  group_commit_ms : float;
      (* > 0 (with fsync on): ingest appends park on a group-commit
         coordinator that amortizes one log fsync across every report in
         the window; 0 keeps the inline fsync-per-request path *)
  max_batch : int;  (* force a group-commit flush at this many pending reports *)
  acceptors : int;
      (* > 0: event-driven front end — this many Evloop domains replace
         thread-per-connection (SO_REUSEPORT per-loop listeners on TCP
         when available, shared-listener distributor otherwise); 0 keeps
         the legacy one-thread-per-connection path *)
  max_conns : int;
      (* exact connection admission cap in both modes: beyond it a client
         is accepted, answered [err busy], and closed (fault.overload) *)
}

let default_config addr =
  {
    addr;
    timeout = 30.;
    fsync = true;
    ingest_log = None;
    domains = 1;
    par_grain = 1 lsl 20;
    max_request = 1 lsl 20;
    io = Sbi_fault.Io.none;
    compact_every = None;
    tier_max = Sbi_store.Tier.default_tier_max;
    group_commit_ms = 0.;
    max_batch = 512;
    acceptors = 0;
    max_conns = 4096;
  }

(* Hard cap on reports per [ingest-batch] request, over and above the
   per-line [max_request] bound: a malicious batch cannot queue unbounded
   per-report state server-side. *)
let max_batch_lines = 65_536

type t = {
  config : config;
  mutable index : Index.t;  (* swapped by the compaction thread, under [lock] *)
  pool : Sbi_par.Domain_pool.t option;  (* fans snapshot builds and query rescoring *)
  lock : Mutex.t;  (* guards index state and the ingest writer *)
  metrics : Metrics.t;
  listen_fds : Unix.file_descr list;
      (* one per acceptor domain with SO_REUSEPORT, else a single shared
         listener (always single on the legacy thread path) *)
  mutable ev : Evloop.t option;  (* present iff config.acceptors > 0 *)
  stop_flag : bool Atomic.t;
  workers : (int, Thread.t * Unix.file_descr) Hashtbl.t;
      (* keyed by connection id, not thread id: the id is minted (and the
         entry inserted) under [workers_lock] *before* the worker thread
         can run, so the handler's remove-on-exit always finds it *)
  workers_lock : Mutex.t;
  mutable next_conn : int;  (* under [workers_lock] *)
  writer : Shard_log.writer option;
  gc : Group_commit.t option;  (* present iff fsync ∧ group_commit_ms > 0 ∧ writer *)
  started_at : float;
  inflight : int Atomic.t;  (* requests inside dispatch (may read old segments) *)
  mutable ingested_n : int;
  mutable compactions : int;
  mutable accept_thread : Thread.t option;
  mutable compact_thread : Thread.t option;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- request handlers ---

   Read-only queries (topk/pred/affinity) run on an epoch snapshot: the
   lock is held just long enough to fetch (or refresh) the index's
   cached {!Snapshot}, then the query computes on the immutable snapshot
   with the lock released — readers never block ingest, and heavy
   rescoring (affinity) fans across the domain pool.  [stats] and
   [ingest] still run under t.lock. *)

let grab_snapshot t = locked t.lock (fun () -> Index.snapshot ?pool:t.pool t.index)

(* Sequential-cutoff fast path: fan a query across the pool only when its
   work estimate clears [config.par_grain].  A warm top-k or affinity
   over a small corpus costs microseconds of popcounting — the pool
   round-trip (enqueue, wake a domain, barrier) costs more than the query
   itself, which is exactly what made serve latency *rise* with
   [--domains] before. *)
let query_pool t snap =
  let meta = snap.Snapshot.meta in
  let work = Snapshot.nruns snap * (meta.Dataset.npreds + meta.Dataset.nsites) in
  if work >= t.config.par_grain then t.pool else None

let pred_text t pred = Dataset.pred_text t.index.Index.meta pred

let fmt_score (sc : Scores.t) text =
  Printf.sprintf "%d %.6f %.6f %d %d %s" sc.Scores.pred sc.Scores.importance
    sc.Scores.increase sc.Scores.f sc.Scores.s text

(* Splits an optional [formula=NAME] token out of a request's arguments
   and resolves it against the registry; [Ok None] means the caller wants
   the default hard-coded importance path. *)
let split_formula_arg words =
  let is_formula w = String.length w >= 8 && String.sub w 0 8 = "formula=" in
  let fargs, rest = List.partition is_formula words in
  match fargs with
  | [] -> Ok (None, rest)
  | [ w ] -> (
      let name = String.sub w 8 (String.length w - 8) in
      match Sbi_sbfl.Registry.find name with
      | Some f -> Ok (Some f, rest)
      | None ->
          Error
            (Printf.sprintf "unknown formula %s (known: %s)" name
               (String.concat " " (Sbi_sbfl.Registry.names ()))))
  | _ -> Error "at most one formula= argument"

let handle_topk ?formula t snap k =
  let k = match k with Some k when k > 0 -> k | _ -> 10 in
  match formula with
  | None ->
      let scores = Triage.Snap.topk ~k snap in
      let lines =
        List.mapi
          (fun i sc -> Printf.sprintf "%d %s" (i + 1) (fmt_score sc (pred_text t sc.Scores.pred)))
          scores
      in
      Ok (Printf.sprintf "topk %d" (List.length lines), lines)
  | Some fm ->
      let entries = Triage.Snap.topk_f ~k ~formula:fm snap in
      let lines =
        List.mapi
          (fun i (e : Sbi_sbfl.Ranking.entry) ->
            Printf.sprintf "%d %d %.6f %d %d %s" (i + 1) e.Sbi_sbfl.Ranking.pred
              e.Sbi_sbfl.Ranking.score e.Sbi_sbfl.Ranking.f e.Sbi_sbfl.Ranking.s
              (pred_text t e.Sbi_sbfl.Ranking.pred))
          entries
      in
      Ok
        ( Printf.sprintf "topk %d formula=%s" (List.length lines) fm.Sbi_sbfl.Formula.name,
          lines )

let handle_formulas () =
  let lines =
    List.map
      (fun (f : Sbi_sbfl.Formula.t) ->
        Printf.sprintf "%s %s" f.Sbi_sbfl.Formula.name f.Sbi_sbfl.Formula.descr)
      (Sbi_sbfl.Registry.all ())
  in
  Ok (Printf.sprintf "formulas %d" (List.length lines), lines)

let parse_pred t s =
  match int_of_string_opt s with
  | Some p when p >= 0 && p < t.index.Index.meta.Dataset.npreds -> Ok p
  | Some p -> Error (Printf.sprintf "predicate %d out of range (have %d)" p t.index.Index.meta.Dataset.npreds)
  | None -> Error ("bad predicate id: " ^ s)

let handle_pred ?formula t snap arg =
  match parse_pred t arg with
  | Error e -> Error e
  | Ok pred ->
      let sc = Triage.Snap.pred_detail snap ~pred in
      let formula_lines =
        match formula with
        | None -> []
        | Some fm ->
            let score, _ = Triage.Snap.pred_score snap ~pred ~formula:fm in
            [
              Printf.sprintf "formula %s" fm.Sbi_sbfl.Formula.name;
              Printf.sprintf "score %.6f" score;
            ]
      in
      let lines =
        [
          Printf.sprintf "text %s" (pred_text t pred);
          Printf.sprintf "site %d" t.index.Index.meta.Dataset.pred_site.(pred);
          Printf.sprintf "f %d" sc.Scores.f;
          Printf.sprintf "s %d" sc.Scores.s;
          Printf.sprintf "f_obs %d" sc.Scores.f_obs;
          Printf.sprintf "s_obs %d" sc.Scores.s_obs;
          Printf.sprintf "failure %.6f" sc.Scores.failure;
          Printf.sprintf "context %.6f" sc.Scores.context;
          Printf.sprintf "increase %.6f" sc.Scores.increase;
          Printf.sprintf "increase_ci %.6f %.6f" sc.Scores.increase_ci.Sbi_util.Stats.lo
            sc.Scores.increase_ci.Sbi_util.Stats.hi;
          Printf.sprintf "importance %.6f" sc.Scores.importance;
          Printf.sprintf "importance_ci %.6f %.6f" sc.Scores.importance_ci.Sbi_util.Stats.lo
            sc.Scores.importance_ci.Sbi_util.Stats.hi;
        ]
        @ formula_lines
      in
      Ok (Printf.sprintf "pred %d" pred, lines)

let handle_affinity t snap arg k =
  match parse_pred t arg with
  | Error e -> Error e
  | Ok pred ->
      let k = match k with Some k when k > 0 -> k | _ -> 10 in
      let retained = Prune.retained (Triage.Snap.counts snap) in
      let entries = Triage.Snap.affinity ?pool:(query_pool t snap) snap ~selected:pred ~others:retained in
      let rec take n = function [] -> [] | _ when n = 0 -> [] | x :: r -> x :: take (n - 1) r in
      let lines =
        List.map
          (fun (e : Affinity.entry) ->
            Printf.sprintf "%d %.6f %.6f %.6f %s" e.Affinity.pred e.Affinity.drop
              e.Affinity.importance_before e.Affinity.importance_after (pred_text t e.Affinity.pred))
          (take k entries)
      in
      Ok (Printf.sprintf "affinity %d %d" pred (List.length lines), lines)

let handle_stats t =
  let idx_lines =
    [
      Printf.sprintf "runs %d" (Index.nruns t.index);
      Printf.sprintf "failures %d" (Index.num_failures t.index);
      Printf.sprintf "segments %d" (Array.length t.index.Index.segments);
      Printf.sprintf "tail_runs %d" (Index.tail_count t.index);
      Printf.sprintf "ingested %d" t.ingested_n;
      Printf.sprintf "compactions %d" t.compactions;
      Printf.sprintf "uptime_s %.1f" (Unix.gettimeofday () -. t.started_at);
    ]
  in
  let gc_lines =
    match t.gc with
    | None -> []
    | Some gc ->
        let flushes, reports = Group_commit.stats gc in
        [ Printf.sprintf "gc.flushes %d" flushes; Printf.sprintf "gc.reports %d" reports ]
  in
  Ok ("stats", idx_lines @ gc_lines @ Metrics.lines t.metrics)

(* --- ingest ---

   Both the single-report [ingest] command and [ingest-batch] run the
   same three-phase pipeline, preserving durable-before-visible and
   ack ⊆ fsynced:

   1. decode + validate every payload (pure for decode; validation reads
      the index tables under [t.lock]), appending the accepted records
      to the shard log buffer — {e without} fsync;
   2. establish durability: park on the group-commit coordinator (one
      fsync covers every report that arrived in the window, across all
      connections) or, without one, run a single inline {!Shard_log.sync}
      barrier for the whole request;
   3. only after the covering fsync returned, fold the accepted records
      into the live tail under [t.lock] and release the acks.  A failed
      barrier acknowledges nothing and folds nothing — the records may
      or may not be in the log, and the client must retry. *)

let decode_payload b64 =
  match B64.decode b64 with
  | Error e -> Error ("bad base64: " ^ e)
  | Ok payload -> (
      match Codec.decode payload with
      | exception Codec.Corrupt m -> Error ("bad report payload: " ^ m)
      | r -> Ok r)

(* Phase 1 under [t.lock]: validate and raw-append each decoded report.
   Returns the per-payload outcomes plus the accepted reports in order. *)
let append_batch t w items =
  let accepted = ref [] in
  let outcomes =
    List.map
      (fun item ->
        match item with
        | Error _ as e -> e
        | Ok r -> (
            match Index.validate t.index r with
            | exception Invalid_argument m -> Error m
            | () -> (
                match Shard_log.append_raw w r with
                | exception Unix.Unix_error (e, op, _) ->
                    Metrics.fault t.metrics ~kind:"ingest_io";
                    Error
                      (Printf.sprintf "ingest not durable (%s during %s); retry"
                         (Unix.error_message e) op)
                | () ->
                    accepted := r :: !accepted;
                    Ok r)))
      items
  in
  (outcomes, List.rev !accepted)

(* Phase 2: one durability barrier for the whole request. *)
let commit_batch t w n =
  if n = 0 then Ok ()
  else
    match t.gc with
    | Some gc ->
        (* the appends above completed before this submit, so the
           window's covering fsync includes them *)
        let ticket = Group_commit.submit gc n in
        Group_commit.wait gc ticket
    | None -> (
        if not t.config.fsync then Ok ()
        else
          match locked t.lock (fun () -> Shard_log.sync w) with
          | () -> Ok ()
          | exception e -> Error e)

let not_durable_msg = function
  | Unix.Unix_error (e, op, _) ->
      Printf.sprintf "ingest not durable (%s during %s); retry" (Unix.error_message e) op
  | e -> Printf.sprintf "ingest not durable (%s); retry" (Printexc.to_string e)

(* Phase 3: durable — now make visible. *)
let publish_batch t accepted =
  locked t.lock (fun () ->
      List.iter
        (fun r ->
          Index.append t.index r;
          t.ingested_n <- t.ingested_n + 1)
        accepted)

let run_ingest t items =
  match t.writer with
  | None -> Error "ingest disabled (no --log configured)"
  | Some w -> (
      let outcomes, accepted = locked t.lock (fun () -> append_batch t w items) in
      match commit_batch t w (List.length accepted) with
      | Ok () ->
          publish_batch t accepted;
          Ok outcomes
      | Error e ->
          Metrics.fault t.metrics ~kind:"ingest_io";
          (* nothing was acknowledged durable: every accepted report of
             this request degrades to a retryable per-report error *)
          let msg = not_durable_msg e in
          Ok (List.map (function Ok _ -> Error msg | Error _ as x -> x) outcomes))

let handle_ingest t b64 =
  match run_ingest t [ decode_payload b64 ] with
  | Error e -> Error e
  | Ok [ Ok r ] -> Ok (Printf.sprintf "ingested %d" r.Report.run_id, [])
  | Ok [ Error e ] -> Error e
  | Ok _ -> assert false

let handle_ingest_batch t payloads =
  if List.length payloads > max_batch_lines then
    Error (Printf.sprintf "ingest-batch exceeds %d reports" max_batch_lines)
  else
    match run_ingest t (List.map decode_payload payloads) with
    | Error e -> Error e
    | Ok outcomes ->
        let ok_n = List.length (List.filter Result.is_ok outcomes) in
        let lines =
          List.map
            (function
              | Ok (r : Report.t) -> Printf.sprintf "ok %d" r.Report.run_id
              | Error m -> "err " ^ m)
            outcomes
        in
        Ok
          ( Printf.sprintf "ingest-batch %d %d" ok_n (List.length outcomes - ok_n),
            lines )

(* --- connection loop --- *)

let cmd_name line =
  match String.index_opt line ' ' with
  | Some i -> String.sub line 0 i
  | None -> line

let dispatch t line =
  let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' line) in
  match words with
  | [ "ping" ] -> Ok ("pong", [])
  | "topk" :: rest -> (
      match split_formula_arg rest with
      | Error e -> Error e
      | Ok (formula, rest) -> (
          match rest with
          | [] -> handle_topk ?formula t (grab_snapshot t) None
          | [ k ] -> handle_topk ?formula t (grab_snapshot t) (int_of_string_opt k)
          | _ -> Error "usage: topk [K] [formula=NAME]"))
  | "pred" :: rest -> (
      match split_formula_arg rest with
      | Error e -> Error e
      | Ok (formula, rest) -> (
          match rest with
          | [ id ] -> handle_pred ?formula t (grab_snapshot t) id
          | _ -> Error "usage: pred ID [formula=NAME]"))
  | [ "formulas" ] -> handle_formulas ()
  | [ "affinity"; id ] -> handle_affinity t (grab_snapshot t) id None
  | [ "affinity"; id; k ] -> handle_affinity t (grab_snapshot t) id (int_of_string_opt k)
  | [ "stats" ] -> locked t.lock (fun () -> handle_stats t)
  | [ "metrics" ] -> Ok ("metrics", Sbi_obs.Registry.lines ())
  | [ "trace" ] ->
      let lines = Sbi_obs.Trace.lines () in
      Ok (Printf.sprintf "trace %d" (List.length lines), lines)
  | [ "trace"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
          let lines = Sbi_obs.Trace.lines ~n () in
          Ok (Printf.sprintf "trace %d" (List.length lines), lines)
      | _ -> Error ("bad trace count: " ^ n))
  | [ "ingest"; payload ] -> handle_ingest t payload
  | [ "ingest-batch" ] ->
      (* the payload lines arrive after the command line; the connection
         loop reads them and routes through [dispatch_batch] instead *)
      Error "ingest-batch payloads missing (framing error)"
  | [] -> Error "empty command"
  | cmd :: _ ->
      Error
        (Printf.sprintf
           "unknown command %s (try: ping topk pred formulas affinity stats metrics trace \
            ingest ingest-batch quit)"
           cmd)

(* One parsed request through dispatch, shared by both front ends: the
   inflight bracket (compaction's segment reclamation waits on a drain),
   the trace span, and per-request fault isolation. *)
let eval_request t ~cmd ~line ~request =
  Atomic.incr t.inflight;
  try
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () ->
        Sbi_obs.Trace.with_span ~name:("serve." ^ cmd) (fun () ->
            match request with
            | `Single -> dispatch t line
            | `Batch payloads -> handle_ingest_batch t payloads))
  with
  | Sbi_fault.Fault.Crash _ as e -> raise e
  | e ->
      Metrics.fault t.metrics ~kind:"error";
      Metrics.request_error t.metrics ~cmd;
      Error ("internal error: " ^ Printexc.to_string e)

(* The event-loop handler: runs on an {!Evloop} worker thread with the
   request already parsed off the wire by the loop's state machine.
   Renders the full response body for the loop's write buffer.  Latency
   covers dispatch + render; unlike the thread path it excludes the
   write drain, which happens asynchronously on the loop. *)
let ev_handle t (req : Evloop.request) : Evloop.response =
  match req with
  | Evloop.Line "quit" ->
      { Evloop.body = Wire.render_ok ~header:"bye" ~lines:[]; close = true }
  | _ ->
      let line, request =
        match req with
        | Evloop.Line l -> (l, `Single)
        | Evloop.Batch payloads -> ("ingest-batch", `Batch payloads)
      in
      let cmd = cmd_name line in
      let bytes_in =
        match request with
        | `Single -> String.length line + 1
        | `Batch payloads ->
            List.fold_left
              (fun acc p -> acc + String.length p + 1)
              (String.length line + 3) payloads
      in
      let t0 = Sbi_obs.Clock.now_ns () in
      let result = eval_request t ~cmd ~line ~request in
      let body =
        match result with
        | Ok (header, lines) -> Wire.render_ok ~header ~lines
        | Error msg -> Wire.render_err msg
      in
      let latency_ns = Sbi_obs.Clock.now_ns () - t0 in
      Metrics.record t.metrics ~cmd ~latency_ns ~bytes_in
        ~bytes_out:(String.length body);
      let args =
        match String.index_opt line ' ' with
        | Some i -> String.sub line (i + 1) (String.length line - i - 1)
        | None -> ""
      in
      Sbi_obs.Slowlog.observe ~cmd ~args ~dur_ns:latency_ns
        ~epoch:(Index.epoch t.index);
      { Evloop.body; close = false }

(* A response write that hit the send deadline ([SO_SNDTIMEO]): the peer
   stopped reading.  Distinguished from a receive timeout so the fault
   shows up as its own metric. *)
exception Send_stalled

(* Reads the payload lines of an [ingest-batch] request (everything up
   to the lone ["."], mirroring the response framing).  [`Too_many]
   still consumes through the terminator, so the stream stays in sync
   and the connection survives the rejection. *)
let read_batch rd =
  let acc = ref [] and count = ref 0 in
  let rec go () =
    match Wire.read_line rd with
    | `Line "." -> if !count > max_batch_lines then `Too_many else `Batch (List.rev !acc)
    | `Line l ->
        incr count;
        if !count <= max_batch_lines then acc := Wire.unstuff l :: !acc;
        go ()
    | `Eof -> `Eof
    | `Too_long -> `Too_long
  in
  go ()

(* Per-connection fault isolation: any failure on one connection —
   receive deadline, peer reset, oversized request, handler exception —
   is counted in metrics and closes only that connection.  The accept
   loop and every other worker are untouched. *)
let handle_connection t ~conn_id fd =
  Metrics.connection_opened t.metrics;
  let io = t.config.io in
  let rd = Wire.reader ~io ~max_line:t.config.max_request fd in
  let closed = ref false in
  (try
     while not !closed && not (Atomic.get t.stop_flag) do
       match Wire.read_line rd with
       | exception Wire.Timeout ->
           Metrics.fault t.metrics ~kind:"timeout";
           closed := true
       | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
           Metrics.fault t.metrics ~kind:"reset";
           closed := true
       | exception End_of_file -> closed := true
       | `Eof -> closed := true
       | `Too_long ->
           (* the stream is out of sync past the bound; reject and drop *)
           Metrics.fault t.metrics ~kind:"oversize";
           (try
              ignore
                (Wire.write_err ~io fd
                   (Printf.sprintf "request exceeds %d bytes" t.config.max_request))
            with _ -> ());
           closed := true
       | `Line line ->
           if line = "quit" then begin
             ignore (Wire.write_ok ~io fd ~header:"bye" ~lines:[]);
             closed := true
           end
           else begin
             let cmd = cmd_name line in
             (* an ingest-batch request continues until a lone "." —
                read the payload lines before the request clock starts *)
             let request =
               if line = "ingest-batch" then read_batch rd else `Single
             in
             match request with
             | `Eof -> closed := true
             | `Too_long ->
                 Metrics.fault t.metrics ~kind:"oversize";
                 (try
                    ignore
                      (Wire.write_err ~io fd
                         (Printf.sprintf "request exceeds %d bytes" t.config.max_request))
                  with _ -> ());
                 closed := true
             | `Too_many ->
                 (* fully consumed through the terminator: reject without
                    dropping the connection *)
                 Metrics.fault t.metrics ~kind:"oversize";
                 (try
                    ignore
                      (Wire.write_err ~io fd
                         (Printf.sprintf "ingest-batch exceeds %d reports" max_batch_lines))
                  with _ -> ())
             | (`Single | `Batch _) as request ->
             let bytes_in =
               match request with
               | `Single -> String.length line + 1
               | `Batch payloads ->
                   List.fold_left
                     (fun acc p -> acc + String.length p + 1)
                     (String.length line + 3) payloads
             in
             (* monotonic: an NTP step mid-request must not yield a
                negative or inflated latency (the wall clock survives
                only in started_at/uptime) *)
             let t0 = Sbi_obs.Clock.now_ns () in
             let result = eval_request t ~cmd ~line ~request in
             let bytes_out =
               try
                 match result with
                 | Ok (header, lines) -> Wire.write_ok ~io fd ~header ~lines
                 | Error msg -> Wire.write_err ~io fd msg
               with
               | Wire.Timeout ->
                   (* the peer stopped reading and the send deadline
                      expired: attribute, then reclassify so the fault is
                      counted as a send stall, not a receive timeout *)
                   Metrics.request_error t.metrics ~cmd;
                   raise Send_stalled
               | e ->
                   (* the peer died mid-response: attribute the failure to
                      the command (req.<cmd>.err) before the connection
                      handler classifies the fault kind *)
                   Metrics.request_error t.metrics ~cmd;
                   raise e
             in
             let latency_ns = Sbi_obs.Clock.now_ns () - t0 in
             Metrics.record t.metrics ~cmd ~latency_ns ~bytes_in ~bytes_out;
             let args =
               match String.index_opt line ' ' with
               | Some i -> String.sub line (i + 1) (String.length line - i - 1)
               | None -> ""
             in
             Sbi_obs.Slowlog.observe ~cmd ~args ~dur_ns:latency_ns ~epoch:(Index.epoch t.index)
           end
     done
   with
  | Send_stalled -> Metrics.fault t.metrics ~kind:"send_timeout"
  | Wire.Timeout -> Metrics.fault t.metrics ~kind:"timeout"
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      Metrics.fault t.metrics ~kind:"reset"
  | _ -> Metrics.fault t.metrics ~kind:"error");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Metrics.connection_closed t.metrics;
  locked t.workers_lock (fun () -> Hashtbl.remove t.workers conn_id)

let accept_loop t =
  let listen_fd = List.hd t.listen_fds in
  let stop = ref false in
  while (not !stop) && not (Atomic.get t.stop_flag) do
    (* poll, not select: accept readiness must keep working after fd
       numbers cross FD_SETSIZE *)
    match Evloop.wait_readable ~timeout_ms:250 listen_fd with
    | `Timeout -> ()
    | `Ready -> (
        match Unix.accept ~cloexec:true listen_fd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
            (* the listener itself is gone (closed by stop): fatal for
               this loop, and the only error class that may end it *)
            stop := true
        | exception Unix.Unix_error (_, _, _) ->
            (* EMFILE/ENFILE/ECONNABORTED/ENOBUFS/...: transient.  The
               old loop collapsed every accept error into "listener
               closed" and silently dropped connections in a 4 Hz spin;
               now the failure is counted and the loop backs off briefly
               before accepting again. *)
            Metrics.fault t.metrics ~kind:"accept";
            Thread.delay 0.05
        | fd, _ ->
            (* both deadlines: a peer that stops *reading* must not wedge
               a worker in a response write any more than a silent peer
               may wedge it in a request read *)
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.timeout;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.timeout
             with Unix.Unix_error _ -> ());
            (* registration happens-before the worker runs: the id is
               minted and the entry inserted while holding [workers_lock],
               which the handler's remove-on-exit must also take — a
               fast connection can no longer race its own registration
               and leave a stale entry behind.  The same critical section
               enforces the admission cap exactly: the table length can't
               move between the check and the insert. *)
            let admitted =
              locked t.workers_lock (fun () ->
                  if Hashtbl.length t.workers >= t.config.max_conns then false
                  else begin
                    let conn_id = t.next_conn in
                    t.next_conn <- conn_id + 1;
                    let worker =
                      Thread.create (fun () -> handle_connection t ~conn_id fd) ()
                    in
                    Hashtbl.replace t.workers conn_id (worker, fd);
                    true
                  end)
            in
            if not admitted then begin
              Metrics.fault t.metrics ~kind:"overload";
              (try ignore (Wire.write_err fd "busy") with _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end)
  done

(* --- background compaction ---

   Durable-before-visible is preserved across an index swap: compaction
   only rewrites already-indexed segments (never the source log), and the
   live tail is replayed into the fresh index under t.lock before the
   swap, so no acknowledged report ever leaves the queryable population.
   Old segment files are deleted only after in-flight requests drain —
   a reader's snapshot may still page postings out of them. *)

let compact_once t =
  let dir = t.index.Index.dir in
  match
    Index.compact ~io:t.config.io ~tier_max:t.config.tier_max ~remove_old:false ~dir ()
  with
  | exception e ->
      Metrics.fault t.metrics ~kind:"compact";
      Sbi_obs.Trace.with_span ~name:"serve.compact.error" ~args:(Printexc.to_string e)
        (fun () -> ())
  | st ->
      if st.Index.cp_written > 0 then begin
        let fresh = Index.open_ ~dir in
        locked t.lock (fun () ->
            Array.iter (Index.append fresh) (Index.tail_reports t.index);
            t.index <- fresh;
            t.compactions <- t.compactions + 1);
        (* drain readers pinned to the old epoch before reclaiming files;
           the deadline bounds the wait against a wedged connection.
           Monotonic: a wall-clock step must not collapse (or stretch)
           the 2 s drain bound *)
        let deadline = Sbi_obs.Clock.now_ns () + 2_000_000_000 in
        while Atomic.get t.inflight > 0 && Sbi_obs.Clock.now_ns () < deadline do
          Thread.delay 0.01
        done;
        List.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          st.Index.cp_reclaimed
      end

let compact_loop t period =
  (* monotonic scheduling: an NTP step must not fire (or starve) the
     --compact-every period *)
  let period_ns = int_of_float (period *. 1e9) in
  let next = ref (Sbi_obs.Clock.now_ns () + period_ns) in
  while not (Atomic.get t.stop_flag) do
    Thread.delay 0.1;
    if (not (Atomic.get t.stop_flag)) && Sbi_obs.Clock.now_ns () >= !next then begin
      compact_once t;
      next := Sbi_obs.Clock.now_ns () + period_ns
    end
  done

(* --- lifecycle --- *)

let fresh_shard_id ~dir =
  match Shard_log.shard_files ~dir with
  | [] -> 0
  | files -> 1 + List.fold_left (fun acc (i, _) -> max acc i) 0 files

let open_ingest_writer config (index : Index.t) =
  match config.ingest_log with
  | None -> None
  | Some dir ->
      if not (Sys.file_exists (Filename.concat dir "meta")) then
        Shard_log.write_meta ~io:config.io ~dir index.Index.meta;
      Some
        (Shard_log.create_writer ~io:config.io ~fsync:config.fsync ~dir
           ~shard:(fresh_shard_id ~dir) ())

(* Builds the listener set.  With [acceptors >= 2] on TCP, tries one
   SO_REUSEPORT listener per acceptor domain (the kernel load-balances
   accepts across them); where the option is unavailable — or on Unix
   sockets, where it does not apply — falls back to a single shared
   listener that loop 0 polls and distributes.  The deep backlog absorbs
   connection storms between accept bursts. *)
let make_listeners config sa domain =
  let backlog = 1024 in
  let mk () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (match domain with
    | Unix.PF_INET | Unix.PF_INET6 -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | _ -> ());
    fd
  in
  let bind_listen fd =
    Unix.bind fd sa;
    Unix.listen fd backlog
  in
  let is_tcp = match domain with Unix.PF_INET | Unix.PF_INET6 -> true | _ -> false in
  let fds = ref [] in
  try
    if config.acceptors >= 2 && is_tcp then begin
      let first = mk () in
      fds := [ first ];
      if Evloop.set_reuseport first then begin
        bind_listen first;
        for _ = 2 to config.acceptors do
          let fd = mk () in
          fds := fd :: !fds;
          ignore (Evloop.set_reuseport fd);
          bind_listen fd
        done;
        (List.rev !fds, `Per_loop)
      end
      else begin
        bind_listen first;
        ([ first ], `Shared)
      end
    end
    else begin
      let fd = mk () in
      fds := [ fd ];
      bind_listen fd;
      ([ fd ], `Shared)
    end
  with e ->
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !fds;
    raise e

let start config index =
  if config.acceptors < 0 then invalid_arg "Server.start: acceptors must be >= 0";
  if config.max_conns < 1 then invalid_arg "Server.start: max_conns must be >= 1";
  (* a peer that disconnects mid-response must not kill the process;
     the write surfaces as Sys_error/EPIPE and closes that connection *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sa =
    match Wire.sockaddr config.addr with
    | Ok sa -> sa
    | Error m -> invalid_arg ("cannot bind: " ^ m)
  in
  (match config.addr with
  | Wire.Unix_sock path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  let domain = Unix.domain_of_sockaddr sa in
  let listen_fds, listener_mode = make_listeners config sa domain in
  (* everything acquired below must be released if a later step raises
     (e.g. an unwritable --log dir): the listener fd, the bound socket
     file, the domain pool, the ingest writer, the commit coordinator —
     a failed start leaks nothing and the address is immediately
     rebindable *)
  let pool = ref None and writer = ref None and gc = ref None and ev = ref None in
  match
    (if config.domains > 1 then
       pool := Some (Sbi_par.Domain_pool.create ~domains:config.domains ()));
    writer := open_ingest_writer config index;
    (match !writer with
    | Some w when config.fsync && config.group_commit_ms > 0. ->
        gc :=
          Some
            (Group_commit.create ~max_batch:config.max_batch
               ~max_delay_ms:config.group_commit_ms
               ~sync:(fun () -> Shard_log.sync w)
               ())
    | _ -> ());
    let t =
      {
        config;
        index;
        pool = !pool;
        lock = Mutex.create ();
        metrics = Metrics.create ();
        listen_fds;
        ev = None;
        stop_flag = Atomic.make false;
        workers = Hashtbl.create 16;
        workers_lock = Mutex.create ();
        next_conn = 0;
        writer = !writer;
        gc = !gc;
        started_at = Unix.gettimeofday ();
        inflight = Atomic.make 0;
        ingested_n = 0;
        compactions = 0;
        accept_thread = None;
        compact_thread = None;
      }
    in
    (if config.acceptors > 0 then begin
       let listeners =
         match listener_mode with
         | `Per_loop -> Evloop.Per_loop (Array.of_list listen_fds)
         | `Shared -> Evloop.Shared (List.hd listen_fds)
       in
       let ev_cfg =
         {
           Evloop.loops = config.acceptors;
           workers = max 4 (2 * config.acceptors);
           max_conns = config.max_conns;
           max_line = config.max_request;
           max_batch_lines;
           idle_timeout_ns =
             (if config.timeout > 0. then int_of_float (config.timeout *. 1e9) else 0);
           io = config.io;
           handler = (fun req -> ev_handle t req);
           on_fault = (fun kind -> Metrics.fault t.metrics ~kind);
           on_open = (fun () -> Metrics.connection_opened t.metrics);
           on_close = (fun () -> Metrics.connection_closed t.metrics);
         }
       in
       ev := Some (Evloop.start ev_cfg listeners);
       t.ev <- !ev
     end
     else t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ()));
    (match config.compact_every with
    | Some period when period > 0. ->
        t.compact_thread <- Some (Thread.create (fun () -> compact_loop t period) ())
    | _ -> ());
    t
  with
  | t -> t
  | exception e ->
      (match !ev with Some g -> ( try Evloop.stop g with _ -> ()) | None -> ());
      (match !gc with Some g -> ( try Group_commit.stop g with _ -> ()) | None -> ());
      (match !writer with
      | Some w -> ( try ignore (Shard_log.close_writer w) with _ -> ())
      | None -> ());
      (match !pool with
      | Some p -> ( try Sbi_par.Domain_pool.shutdown p with _ -> ())
      | None -> ());
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listen_fds;
      (match config.addr with
      | Wire.Unix_sock path when Sys.file_exists path -> (
          try Sys.remove path with Sys_error _ -> ())
      | _ -> ());
      raise e

let addr t = t.config.addr

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (match t.ev with
    | Some g ->
        (* event-loop mode: join the loop domains (closing every
           connection) and drain the dispatch workers, then retire the
           listeners.  In-flight ingests complete against the still-live
           group-commit coordinator before it is stopped below. *)
        Evloop.stop g;
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listen_fds
    | None ->
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listen_fds;
        (match t.accept_thread with Some th -> Thread.join th | None -> ()));
    (match t.compact_thread with Some th -> Thread.join th | None -> ());
    (* wake workers blocked in reads, then wait for them (legacy mode;
       the table is never populated under an event loop) *)
    let snapshot =
      locked t.workers_lock (fun () ->
          Hashtbl.fold (fun _ wt acc -> wt :: acc) t.workers [])
    in
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      snapshot;
    List.iter (fun (th, _) -> Thread.join th) snapshot;
    (* workers are gone, so no submitter can race the final flush: stop
       the coordinator (flushing any pending window) before the writer
       closes underneath it *)
    (match t.gc with Some gc -> Group_commit.stop gc | None -> ());
    locked t.lock (fun () ->
        match t.writer with Some w -> ignore (Shard_log.close_writer w) | None -> ());
    (match t.pool with Some pool -> Sbi_par.Domain_pool.shutdown pool | None -> ());
    match t.config.addr with
    | Wire.Unix_sock path when Sys.file_exists path -> ( try Sys.remove path with Sys_error _ -> ())
    | _ -> ()
  end

let wait t = match t.accept_thread with Some th -> Thread.join th | None -> ()
let ingested t = locked t.lock (fun () -> t.ingested_n)

let worker_count t =
  match t.ev with
  | Some g -> Evloop.conn_count g
  | None -> locked t.workers_lock (fun () -> Hashtbl.length t.workers)
