open Sbi_runtime
open Sbi_ingest
open Sbi_core
open Sbi_index

type config = {
  addr : Wire.addr;
  timeout : float;
  fsync : bool;
  ingest_log : string option;
  domains : int;
  par_grain : int;
      (* sequential cutoff for the query read path: a query whose work
         estimate (runs × (npreds + nsites) popcount cells) is below this
         runs inline on the request thread instead of round-tripping
         through the domain pool *)
  max_request : int;
  io : Sbi_fault.Io.t;
  compact_every : float option;
  tier_max : int;
}

let default_config addr =
  {
    addr;
    timeout = 30.;
    fsync = true;
    ingest_log = None;
    domains = 1;
    par_grain = 1 lsl 20;
    max_request = 1 lsl 20;
    io = Sbi_fault.Io.none;
    compact_every = None;
    tier_max = Sbi_store.Tier.default_tier_max;
  }

type t = {
  config : config;
  mutable index : Index.t;  (* swapped by the compaction thread, under [lock] *)
  pool : Sbi_par.Domain_pool.t option;  (* fans snapshot builds and query rescoring *)
  lock : Mutex.t;  (* guards index state and the ingest writer *)
  metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  stop_flag : bool Atomic.t;
  workers : (int, Thread.t * Unix.file_descr) Hashtbl.t;
  workers_lock : Mutex.t;
  writer : Shard_log.writer option;
  started_at : float;
  inflight : int Atomic.t;  (* requests inside dispatch (may read old segments) *)
  mutable ingested_n : int;
  mutable compactions : int;
  mutable accept_thread : Thread.t option;
  mutable compact_thread : Thread.t option;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- request handlers ---

   Read-only queries (topk/pred/affinity) run on an epoch snapshot: the
   lock is held just long enough to fetch (or refresh) the index's
   cached {!Snapshot}, then the query computes on the immutable snapshot
   with the lock released — readers never block ingest, and heavy
   rescoring (affinity) fans across the domain pool.  [stats] and
   [ingest] still run under t.lock. *)

let grab_snapshot t = locked t.lock (fun () -> Index.snapshot ?pool:t.pool t.index)

(* Sequential-cutoff fast path: fan a query across the pool only when its
   work estimate clears [config.par_grain].  A warm top-k or affinity
   over a small corpus costs microseconds of popcounting — the pool
   round-trip (enqueue, wake a domain, barrier) costs more than the query
   itself, which is exactly what made serve latency *rise* with
   [--domains] before. *)
let query_pool t snap =
  let meta = snap.Snapshot.meta in
  let work = Snapshot.nruns snap * (meta.Dataset.npreds + meta.Dataset.nsites) in
  if work >= t.config.par_grain then t.pool else None

let pred_text t pred = Dataset.pred_text t.index.Index.meta pred

let fmt_score (sc : Scores.t) text =
  Printf.sprintf "%d %.6f %.6f %d %d %s" sc.Scores.pred sc.Scores.importance
    sc.Scores.increase sc.Scores.f sc.Scores.s text

(* Splits an optional [formula=NAME] token out of a request's arguments
   and resolves it against the registry; [Ok None] means the caller wants
   the default hard-coded importance path. *)
let split_formula_arg words =
  let is_formula w = String.length w >= 8 && String.sub w 0 8 = "formula=" in
  let fargs, rest = List.partition is_formula words in
  match fargs with
  | [] -> Ok (None, rest)
  | [ w ] -> (
      let name = String.sub w 8 (String.length w - 8) in
      match Sbi_sbfl.Registry.find name with
      | Some f -> Ok (Some f, rest)
      | None ->
          Error
            (Printf.sprintf "unknown formula %s (known: %s)" name
               (String.concat " " (Sbi_sbfl.Registry.names ()))))
  | _ -> Error "at most one formula= argument"

let handle_topk ?formula t snap k =
  let k = match k with Some k when k > 0 -> k | _ -> 10 in
  match formula with
  | None ->
      let scores = Triage.Snap.topk ~k snap in
      let lines =
        List.mapi
          (fun i sc -> Printf.sprintf "%d %s" (i + 1) (fmt_score sc (pred_text t sc.Scores.pred)))
          scores
      in
      Ok (Printf.sprintf "topk %d" (List.length lines), lines)
  | Some fm ->
      let entries = Triage.Snap.topk_f ~k ~formula:fm snap in
      let lines =
        List.mapi
          (fun i (e : Sbi_sbfl.Ranking.entry) ->
            Printf.sprintf "%d %d %.6f %d %d %s" (i + 1) e.Sbi_sbfl.Ranking.pred
              e.Sbi_sbfl.Ranking.score e.Sbi_sbfl.Ranking.f e.Sbi_sbfl.Ranking.s
              (pred_text t e.Sbi_sbfl.Ranking.pred))
          entries
      in
      Ok
        ( Printf.sprintf "topk %d formula=%s" (List.length lines) fm.Sbi_sbfl.Formula.name,
          lines )

let handle_formulas () =
  let lines =
    List.map
      (fun (f : Sbi_sbfl.Formula.t) ->
        Printf.sprintf "%s %s" f.Sbi_sbfl.Formula.name f.Sbi_sbfl.Formula.descr)
      (Sbi_sbfl.Registry.all ())
  in
  Ok (Printf.sprintf "formulas %d" (List.length lines), lines)

let parse_pred t s =
  match int_of_string_opt s with
  | Some p when p >= 0 && p < t.index.Index.meta.Dataset.npreds -> Ok p
  | Some p -> Error (Printf.sprintf "predicate %d out of range (have %d)" p t.index.Index.meta.Dataset.npreds)
  | None -> Error ("bad predicate id: " ^ s)

let handle_pred ?formula t snap arg =
  match parse_pred t arg with
  | Error e -> Error e
  | Ok pred ->
      let sc = Triage.Snap.pred_detail snap ~pred in
      let formula_lines =
        match formula with
        | None -> []
        | Some fm ->
            let score, _ = Triage.Snap.pred_score snap ~pred ~formula:fm in
            [
              Printf.sprintf "formula %s" fm.Sbi_sbfl.Formula.name;
              Printf.sprintf "score %.6f" score;
            ]
      in
      let lines =
        [
          Printf.sprintf "text %s" (pred_text t pred);
          Printf.sprintf "site %d" t.index.Index.meta.Dataset.pred_site.(pred);
          Printf.sprintf "f %d" sc.Scores.f;
          Printf.sprintf "s %d" sc.Scores.s;
          Printf.sprintf "f_obs %d" sc.Scores.f_obs;
          Printf.sprintf "s_obs %d" sc.Scores.s_obs;
          Printf.sprintf "failure %.6f" sc.Scores.failure;
          Printf.sprintf "context %.6f" sc.Scores.context;
          Printf.sprintf "increase %.6f" sc.Scores.increase;
          Printf.sprintf "increase_ci %.6f %.6f" sc.Scores.increase_ci.Sbi_util.Stats.lo
            sc.Scores.increase_ci.Sbi_util.Stats.hi;
          Printf.sprintf "importance %.6f" sc.Scores.importance;
          Printf.sprintf "importance_ci %.6f %.6f" sc.Scores.importance_ci.Sbi_util.Stats.lo
            sc.Scores.importance_ci.Sbi_util.Stats.hi;
        ]
        @ formula_lines
      in
      Ok (Printf.sprintf "pred %d" pred, lines)

let handle_affinity t snap arg k =
  match parse_pred t arg with
  | Error e -> Error e
  | Ok pred ->
      let k = match k with Some k when k > 0 -> k | _ -> 10 in
      let retained = Prune.retained (Triage.Snap.counts snap) in
      let entries = Triage.Snap.affinity ?pool:(query_pool t snap) snap ~selected:pred ~others:retained in
      let rec take n = function [] -> [] | _ when n = 0 -> [] | x :: r -> x :: take (n - 1) r in
      let lines =
        List.map
          (fun (e : Affinity.entry) ->
            Printf.sprintf "%d %.6f %.6f %.6f %s" e.Affinity.pred e.Affinity.drop
              e.Affinity.importance_before e.Affinity.importance_after (pred_text t e.Affinity.pred))
          (take k entries)
      in
      Ok (Printf.sprintf "affinity %d %d" pred (List.length lines), lines)

let handle_stats t =
  let idx_lines =
    [
      Printf.sprintf "runs %d" (Index.nruns t.index);
      Printf.sprintf "failures %d" (Index.num_failures t.index);
      Printf.sprintf "segments %d" (Array.length t.index.Index.segments);
      Printf.sprintf "tail_runs %d" (Index.tail_count t.index);
      Printf.sprintf "ingested %d" t.ingested_n;
      Printf.sprintf "compactions %d" t.compactions;
      Printf.sprintf "uptime_s %.1f" (Unix.gettimeofday () -. t.started_at);
    ]
  in
  Ok ("stats", idx_lines @ Metrics.lines t.metrics)

let handle_ingest t b64 =
  match t.writer with
  | None -> Error "ingest disabled (no --log configured)"
  | Some w -> (
      match B64.decode b64 with
      | Error e -> Error ("bad base64: " ^ e)
      | Ok payload -> (
          match Codec.decode payload with
          | exception Codec.Corrupt m -> Error ("bad report payload: " ^ m)
          | r -> (
              (* validate before any state mutates: a rejected report must
                 leave neither the log nor the tail touched *)
              match Index.validate t.index r with
              | exception Invalid_argument m -> Error m
              | () -> (
                  (* durable first, visible second: a report enters the
                     live tail (and the ack) only after the log fsync
                     succeeded, so nothing queryable can be lost by a
                     crash and nothing unlogged is ever acknowledged *)
                  match Shard_log.append w r with
                  | exception Unix.Unix_error (e, op, _) ->
                      Metrics.fault t.metrics ~kind:"ingest_io";
                      Error
                        (Printf.sprintf "ingest not durable (%s during %s); retry"
                           (Unix.error_message e) op)
                  | () ->
                      Index.append t.index r;
                      t.ingested_n <- t.ingested_n + 1;
                      Ok (Printf.sprintf "ingested %d" r.Report.run_id, [])))))

(* --- connection loop --- *)

let cmd_name line =
  match String.index_opt line ' ' with
  | Some i -> String.sub line 0 i
  | None -> line

let dispatch t line =
  let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' line) in
  match words with
  | [ "ping" ] -> Ok ("pong", [])
  | "topk" :: rest -> (
      match split_formula_arg rest with
      | Error e -> Error e
      | Ok (formula, rest) -> (
          match rest with
          | [] -> handle_topk ?formula t (grab_snapshot t) None
          | [ k ] -> handle_topk ?formula t (grab_snapshot t) (int_of_string_opt k)
          | _ -> Error "usage: topk [K] [formula=NAME]"))
  | "pred" :: rest -> (
      match split_formula_arg rest with
      | Error e -> Error e
      | Ok (formula, rest) -> (
          match rest with
          | [ id ] -> handle_pred ?formula t (grab_snapshot t) id
          | _ -> Error "usage: pred ID [formula=NAME]"))
  | [ "formulas" ] -> handle_formulas ()
  | [ "affinity"; id ] -> handle_affinity t (grab_snapshot t) id None
  | [ "affinity"; id; k ] -> handle_affinity t (grab_snapshot t) id (int_of_string_opt k)
  | [ "stats" ] -> locked t.lock (fun () -> handle_stats t)
  | [ "metrics" ] -> Ok ("metrics", Sbi_obs.Registry.lines ())
  | [ "trace" ] ->
      let lines = Sbi_obs.Trace.lines () in
      Ok (Printf.sprintf "trace %d" (List.length lines), lines)
  | [ "trace"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
          let lines = Sbi_obs.Trace.lines ~n () in
          Ok (Printf.sprintf "trace %d" (List.length lines), lines)
      | _ -> Error ("bad trace count: " ^ n))
  | [ "ingest"; payload ] -> locked t.lock (fun () -> handle_ingest t payload)
  | [] -> Error "empty command"
  | cmd :: _ ->
      Error
        (Printf.sprintf
           "unknown command %s (try: ping topk pred formulas affinity stats metrics trace ingest quit)"
           cmd)

(* Per-connection fault isolation: any failure on one connection —
   receive deadline, peer reset, oversized request, handler exception —
   is counted in metrics and closes only that connection.  The accept
   loop and every other worker are untouched. *)
let handle_connection t fd =
  Metrics.connection_opened t.metrics;
  let io = t.config.io in
  let rd = Wire.reader ~io ~max_line:t.config.max_request fd in
  let closed = ref false in
  (try
     while not !closed && not (Atomic.get t.stop_flag) do
       match Wire.read_line rd with
       | exception Wire.Timeout ->
           Metrics.fault t.metrics ~kind:"timeout";
           closed := true
       | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
           Metrics.fault t.metrics ~kind:"reset";
           closed := true
       | exception End_of_file -> closed := true
       | `Eof -> closed := true
       | `Too_long ->
           (* the stream is out of sync past the bound; reject and drop *)
           Metrics.fault t.metrics ~kind:"oversize";
           (try
              ignore
                (Wire.write_err ~io fd
                   (Printf.sprintf "request exceeds %d bytes" t.config.max_request))
            with _ -> ());
           closed := true
       | `Line line ->
           if line = "quit" then begin
             ignore (Wire.write_ok ~io fd ~header:"bye" ~lines:[]);
             closed := true
           end
           else begin
             let cmd = cmd_name line in
             (* monotonic: an NTP step mid-request must not yield a
                negative or inflated latency (the wall clock survives
                only in started_at/uptime) *)
             let t0 = Sbi_obs.Clock.now_ns () in
             (* inflight brackets the whole dispatch: a query's snapshot may
                lazily read segment files that a concurrent compaction has
                already superseded, so reclamation waits for a drain *)
             Atomic.incr t.inflight;
             let result =
               try
                 Fun.protect
                   ~finally:(fun () -> Atomic.decr t.inflight)
                   (fun () ->
                     Sbi_obs.Trace.with_span ~name:("serve." ^ cmd) (fun () -> dispatch t line))
               with
               | Sbi_fault.Fault.Crash _ as e -> raise e
               | e ->
                   Metrics.fault t.metrics ~kind:"error";
                   Metrics.request_error t.metrics ~cmd;
                   Error ("internal error: " ^ Printexc.to_string e)
             in
             let bytes_out =
               try
                 match result with
                 | Ok (header, lines) -> Wire.write_ok ~io fd ~header ~lines
                 | Error msg -> Wire.write_err ~io fd msg
               with e ->
                 (* the peer died mid-response: attribute the failure to
                    the command (req.<cmd>.err) before the connection
                    handler classifies the fault kind *)
                 Metrics.request_error t.metrics ~cmd;
                 raise e
             in
             let latency_ns = Sbi_obs.Clock.now_ns () - t0 in
             Metrics.record t.metrics ~cmd ~latency_ns ~bytes_in:(String.length line + 1)
               ~bytes_out;
             let args =
               match String.index_opt line ' ' with
               | Some i -> String.sub line (i + 1) (String.length line - i - 1)
               | None -> ""
             in
             Sbi_obs.Slowlog.observe ~cmd ~args ~dur_ns:latency_ns ~epoch:(Index.epoch t.index)
           end
     done
   with
  | Wire.Timeout -> Metrics.fault t.metrics ~kind:"timeout"
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      Metrics.fault t.metrics ~kind:"reset"
  | _ -> Metrics.fault t.metrics ~kind:"error");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Metrics.connection_closed t.metrics;
  locked t.workers_lock (fun () -> Hashtbl.remove t.workers (Thread.id (Thread.self ())))

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error _ -> () (* listener closed by stop *)
        | fd, _ ->
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.timeout
             with Unix.Unix_error _ -> ());
            let worker = Thread.create (fun () -> handle_connection t fd) () in
            locked t.workers_lock (fun () -> Hashtbl.replace t.workers (Thread.id worker) (worker, fd)))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> Atomic.set t.stop_flag true
  done

(* --- background compaction ---

   Durable-before-visible is preserved across an index swap: compaction
   only rewrites already-indexed segments (never the source log), and the
   live tail is replayed into the fresh index under t.lock before the
   swap, so no acknowledged report ever leaves the queryable population.
   Old segment files are deleted only after in-flight requests drain —
   a reader's snapshot may still page postings out of them. *)

let compact_once t =
  let dir = t.index.Index.dir in
  match
    Index.compact ~io:t.config.io ~tier_max:t.config.tier_max ~remove_old:false ~dir ()
  with
  | exception e ->
      Metrics.fault t.metrics ~kind:"compact";
      Sbi_obs.Trace.with_span ~name:"serve.compact.error" ~args:(Printexc.to_string e)
        (fun () -> ())
  | st ->
      if st.Index.cp_written > 0 then begin
        let fresh = Index.open_ ~dir in
        locked t.lock (fun () ->
            Array.iter (Index.append fresh) (Index.tail_reports t.index);
            t.index <- fresh;
            t.compactions <- t.compactions + 1);
        (* drain readers pinned to the old epoch before reclaiming files;
           the deadline bounds the wait against a wedged connection *)
        let deadline = Unix.gettimeofday () +. 2.0 in
        while Atomic.get t.inflight > 0 && Unix.gettimeofday () < deadline do
          Thread.delay 0.01
        done;
        List.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          st.Index.cp_reclaimed
      end

let compact_loop t period =
  let next = ref (Unix.gettimeofday () +. period) in
  while not (Atomic.get t.stop_flag) do
    Thread.delay 0.1;
    if (not (Atomic.get t.stop_flag)) && Unix.gettimeofday () >= !next then begin
      compact_once t;
      next := Unix.gettimeofday () +. period
    end
  done

(* --- lifecycle --- *)

let fresh_shard_id ~dir =
  match Shard_log.shard_files ~dir with
  | [] -> 0
  | files -> 1 + List.fold_left (fun acc (i, _) -> max acc i) 0 files

let open_ingest_writer config (index : Index.t) =
  match config.ingest_log with
  | None -> None
  | Some dir ->
      if not (Sys.file_exists (Filename.concat dir "meta")) then
        Shard_log.write_meta ~io:config.io ~dir index.Index.meta;
      Some
        (Shard_log.create_writer ~io:config.io ~fsync:config.fsync ~dir
           ~shard:(fresh_shard_id ~dir) ())

let start config index =
  (* a peer that disconnects mid-response must not kill the process;
     the write surfaces as Sys_error/EPIPE and closes that connection *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sa =
    match Wire.sockaddr config.addr with
    | Ok sa -> sa
    | Error m -> invalid_arg ("cannot bind: " ^ m)
  in
  (match config.addr with
  | Wire.Unix_sock path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  let domain = Unix.domain_of_sockaddr sa in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match domain with
  | Unix.PF_INET | Unix.PF_INET6 -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | _ -> ());
  (try
     Unix.bind listen_fd sa;
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let pool =
    if config.domains > 1 then Some (Sbi_par.Domain_pool.create ~domains:config.domains ())
    else None
  in
  let t =
    {
      config;
      index;
      pool;
      lock = Mutex.create ();
      metrics = Metrics.create ();
      listen_fd;
      stop_flag = Atomic.make false;
      workers = Hashtbl.create 16;
      workers_lock = Mutex.create ();
      writer = open_ingest_writer config index;
      started_at = Unix.gettimeofday ();
      inflight = Atomic.make 0;
      ingested_n = 0;
      compactions = 0;
      accept_thread = None;
      compact_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  (match config.compact_every with
  | Some period when period > 0. ->
      t.compact_thread <- Some (Thread.create (fun () -> compact_loop t period) ())
  | _ -> ());
  t

let addr t = t.config.addr

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.compact_thread with Some th -> Thread.join th | None -> ());
    (* wake workers blocked in reads, then wait for them *)
    let snapshot =
      locked t.workers_lock (fun () ->
          Hashtbl.fold (fun _ wt acc -> wt :: acc) t.workers [])
    in
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      snapshot;
    List.iter (fun (th, _) -> Thread.join th) snapshot;
    locked t.lock (fun () ->
        match t.writer with Some w -> ignore (Shard_log.close_writer w) | None -> ());
    (match t.pool with Some pool -> Sbi_par.Domain_pool.shutdown pool | None -> ());
    match t.config.addr with
    | Wire.Unix_sock path when Sys.file_exists path -> ( try Sys.remove path with Sys_error _ -> ())
    | _ -> ()
  end

let wait t = match t.accept_thread with Some th -> Thread.join th | None -> ()
let ingested t = locked t.lock (fun () -> t.ingested_n)
