(** Per-request server metrics: request counts (total, per command, and
    per-command errors), bytes in/out, and a log2-bucketed latency
    histogram ({!Sbi_obs.Hist}) with estimated percentiles.
    Thread-safe; rendered as [key value] lines by the [stats] protocol
    command.

    Latencies must be measured on the monotonic clock
    ({!Sbi_obs.Clock.now_ns}); a negative value is clamped to 0 and
    counted as a [clock_anomaly].  The histogram's overflow bucket is
    reported distinctly ([latency_gt_8388608us]) and percentiles
    saturate to [">8388608"] — an overflow observation is never printed
    under a false finite [latency_le_*] bound. *)

type t

val create : unit -> t
val record : t -> cmd:string -> latency_ns:int -> bytes_in:int -> bytes_out:int -> unit

val request_error : t -> cmd:string -> unit
(** Attribute a failure to a command (handler raised, or the peer died
    mid-response); surfaced as [req.<cmd>.err] lines so per-command
    success/failure is reconstructible alongside [fault.<kind>]. *)

val connection_opened : t -> unit
val connection_closed : t -> unit

val fault : t -> kind:string -> unit
(** Count a per-connection failure ("timeout", "reset", "oversize",
    "error"); surfaced as [fault.<kind>] lines in [stats]. *)

type snapshot = {
  requests : int;
  per_command : (string * int) list;  (** sorted by command name *)
  per_command_err : (string * int) list;  (** sorted by command name *)
  faults : (string * int) list;  (** sorted by kind *)
  clock_anomalies : int;  (** negative raw latencies, clamped to 0 *)
  bytes_in : int;
  bytes_out : int;
  connections : int;  (** currently open *)
  connections_total : int;
  latency_buckets : (Sbi_obs.Hist.bound * int) list;
      (** non-empty buckets, increasing bounds; overflow appears as [Gt] *)
  p50 : Sbi_obs.Hist.bound option;
  p90 : Sbi_obs.Hist.bound option;
  p99 : Sbi_obs.Hist.bound option;
      (** bucket bound containing the percentile ([None] when empty);
          [Gt _] when the rank falls in the overflow bucket *)
}

val snapshot : t -> snapshot

val lines : t -> string list
(** [key value] lines for the wire protocol. *)
