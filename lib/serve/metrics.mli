(** Per-request server metrics: request counts (total and per command),
    bytes in/out, and a log2-bucketed latency histogram with estimated
    percentiles.  Thread-safe; rendered as [key value] lines by the
    [stats] protocol command. *)

type t

val create : unit -> t

val record : t -> cmd:string -> latency_ns:int -> bytes_in:int -> bytes_out:int -> unit

val connection_opened : t -> unit
val connection_closed : t -> unit

val fault : t -> kind:string -> unit
(** Count a per-connection failure ("timeout", "reset", "oversize",
    "error"); surfaced as [fault.<kind>] lines in [stats]. *)

type snapshot = {
  requests : int;
  per_command : (string * int) list;  (** sorted by command name *)
  faults : (string * int) list;  (** sorted by kind *)
  bytes_in : int;
  bytes_out : int;
  connections : int;  (** currently open *)
  connections_total : int;
  latency_buckets : (int * int) list;  (** (upper bound in us, count), cumulative-ready order *)
  p50_us : int;
  p90_us : int;
  p99_us : int;  (** bucket upper bounds containing the percentile (0 when empty) *)
}

val snapshot : t -> snapshot

val lines : t -> string list
(** [key value] lines for the wire protocol. *)
