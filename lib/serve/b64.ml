let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let emit6 v = Buffer.add_char buf alphabet.[v land 0x3F] in
  let i = ref 0 in
  while !i + 3 <= n do
    let w = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) lor byte (!i + 2) in
    emit6 (w lsr 18);
    emit6 (w lsr 12);
    emit6 (w lsr 6);
    emit6 w;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let w = byte !i lsl 16 in
      emit6 (w lsr 18);
      emit6 (w lsr 12);
      Buffer.add_string buf "=="
  | 2 ->
      let w = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) in
      emit6 (w lsr 18);
      emit6 (w lsr 12);
      emit6 (w lsr 6);
      Buffer.add_char buf '='
  | _ -> ());
  Buffer.contents buf

let value c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error "base64 length must be a multiple of 4"
  else begin
    let buf = Buffer.create (n / 4 * 3) in
    let err = ref None in
    let i = ref 0 in
    while !err = None && !i < n do
      let quad = String.sub s !i 4 in
      let pad =
        if quad.[3] = '=' then if quad.[2] = '=' then 2 else 1 else 0
      in
      (* '=' is only legal as trailing padding of the final quad *)
      if pad > 0 && !i + 4 <> n then err := Some "padding before end of input"
      else begin
        let vals = Array.make 4 0 in
        for j = 0 to 3 do
          if !err = None && j < 4 - pad then
            match value quad.[j] with
            | Some v -> vals.(j) <- v
            | None -> err := Some (Printf.sprintf "invalid base64 character %C" quad.[j])
        done;
        if !err = None then begin
          let w =
            (vals.(0) lsl 18) lor (vals.(1) lsl 12) lor (vals.(2) lsl 6) lor vals.(3)
          in
          Buffer.add_char buf (Char.chr ((w lsr 16) land 0xFF));
          if pad < 2 then Buffer.add_char buf (Char.chr ((w lsr 8) land 0xFF));
          if pad < 1 then Buffer.add_char buf (Char.chr (w land 0xFF));
          (* non-zero bits under the padding mean a malformed encoder *)
          if (pad = 2 && vals.(1) land 0x0F <> 0) || (pad = 1 && vals.(2) land 0x03 <> 0)
          then err := Some "non-canonical base64 padding"
        end
      end;
      i := !i + 4
    done;
    match !err with Some e -> Error e | None -> Ok (Buffer.contents buf)
  end
