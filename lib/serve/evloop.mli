(** Event-driven, multi-domain connection front end over poll(2).

    Replaces thread-per-connection at connection scale: [loops] domains
    each run a poll(2) readiness loop (C stub — no FD_SETSIZE ceiling,
    unlike [Unix.select]) over non-blocking fds with a per-connection
    state machine for the newline/dot-framed protocol.  Request handling
    runs on a small bounded worker-thread pool so the loops never block;
    responses travel back through a per-loop inbox + self-pipe wakeup.

    Backpressure: while a connection has a request in flight or response
    bytes still draining, its fd is dropped from the read interest set —
    a flooding peer is throttled by the kernel socket buffer, and at
    most one request per connection is ever being processed.

    Overload: admission is capped exactly at [max_conns] (atomic
    fetch-and-add with rollback); beyond it the client is accepted,
    told [err busy], and closed ([on_fault "overload"]).  Transient
    accept(2) failures — EMFILE, ENFILE, ECONNABORTED, ... — count
    [on_fault "accept"] and park only the listener briefly; live
    connections keep being served.

    Stalled peers are governed by monotonic-clock idle deadlines:
    expiry counts [on_fault "timeout"] (waiting for a request) or
    [on_fault "send_timeout"] (peer stopped reading a response). *)

(** {1 poll(2) primitives} *)

val wait_readable :
  ?timeout_ms:int -> Unix.file_descr -> [ `Ready | `Timeout ]
(** Single-fd readiness wait via poll(2); works on fds >= 1024 where
    [Unix.select] raises.  [timeout_ms < 0] (the default) waits forever;
    EINTR is retried against the remaining budget.  [`Ready] is also
    returned on error/hangup — the following syscall reports the
    condition. *)

val wait_writable :
  ?timeout_ms:int -> Unix.file_descr -> [ `Ready | `Timeout ]

val set_reuseport : Unix.file_descr -> bool
(** Set SO_REUSEPORT (before bind); [false] where unsupported. *)

val nofile_limit : unit -> int * int
(** Current RLIMIT_NOFILE as [(soft, hard)]; -1 means unlimited. *)

val set_nofile_limit : int -> int * int
(** Set the soft RLIMIT_NOFILE to [min n hard]; returns the resulting
    [(soft, hard)].  Used by the connection-scale tests and bench to
    open thousands of sockets (or to force accept(2) into EMFILE). *)

(** {1 The connection front end} *)

type request =
  | Line of string  (** one complete request line, CR/LF stripped *)
  | Batch of string list  (** ingest-batch payloads, unstuffed, in order *)

type response = { body : string; close : bool }
(** [body] is written verbatim (render it with {!Wire.render_ok} /
    {!Wire.render_err}); [close] drains the write buffer and closes. *)

type config = {
  loops : int;  (** event-loop domains (>= 1) *)
  workers : int;  (** handler threads (>= 1) *)
  max_conns : int;  (** exact admission cap *)
  max_line : int;  (** per-line byte bound, as in {!Wire.reader} *)
  max_batch_lines : int;  (** ingest-batch report cap *)
  idle_timeout_ns : int;  (** idle deadline; [<= 0] disables *)
  io : Sbi_fault.Io.t;  (** fault injection for conn reads/writes *)
  handler : request -> response;
      (** runs on the worker pool; may block (queries, group commit) *)
  on_fault : string -> unit;  (** fault kind counter hook *)
  on_open : unit -> unit;
  on_close : unit -> unit;
}

type listeners =
  | Per_loop of Unix.file_descr array
      (** one listener per loop (bind them with {!set_reuseport}); each
          loop accepts on its own fd and the kernel load-balances *)
  | Shared of Unix.file_descr
      (** loop 0 accepts and round-robins connections to its peers *)

type t

val start : config -> listeners -> t
(** Spawn the loop domains and worker threads.  Listener fds remain
    owned by the caller (close them after {!stop}). *)

val stop : t -> unit
(** Idempotent: wake and join every loop (closing all connections),
    then drain the worker queue and join the workers.  In-flight
    requests complete — their side effects (durable ingest) happen —
    but responses to closed connections are dropped. *)

val conn_count : t -> int
(** Connections currently admitted (accepted and not yet closed). *)
