/* poll(2) readiness for Sbi_serve.Evloop, plus the two small socket/rlimit
   helpers the connection front end needs.

   Why not Unix.select: fd_set is a fixed bitmap of FD_SETSIZE (1024)
   descriptors, and OCaml's Unix.select raises once any watched fd crosses
   that bound — a server holding thousands of connections cannot use it for
   accept readiness, connect deadlines, or the group-commit self-pipe.
   poll(2) takes an explicit array and has no such ceiling.

   The runtime lock is released around the poll syscall so a loop domain
   parked in poll never blocks another domain's GC. */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/types.h>

/* Event bits shared with Evloop: 1 = readable, 2 = writable,
   4 = error/hangup/invalid.  Revents are written back into the events
   array in place; the return value is poll's ready count, or -1 for
   EINTR (the caller decides how much timeout budget remains). */
CAMLprim value sbi_serve_poll(value vfds, value vevents, value vtimeout)
{
  CAMLparam3(vfds, vevents, vtimeout);
  mlsize_t n = Wosize_val(vfds);
  int timeout = Int_val(vtimeout);
  struct pollfd *pfds = NULL;
  mlsize_t i;
  int r;

  if (Wosize_val(vevents) != n)
    caml_invalid_argument("Evloop.poll: fds/events length mismatch");
  if (n > 0) {
    pfds = malloc(n * sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
    for (i = 0; i < n; i++) {
      int ev = Int_val(Field(vevents, i));
      pfds[i].fd = Int_val(Field(vfds, i));
      pfds[i].events =
          (short)(((ev & 1) ? POLLIN : 0) | ((ev & 2) ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
  }
  caml_release_runtime_system();
  r = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();
  if (r < 0) {
    int e = errno;
    free(pfds);
    if (e == EINTR) CAMLreturn(Val_int(-1));
    caml_failwith("Evloop.poll: poll(2) failed");
  }
  for (i = 0; i < n; i++) {
    short re = pfds[i].revents;
    int out = ((re & POLLIN) ? 1 : 0) | ((re & POLLOUT) ? 2 : 0) |
              ((re & (POLLERR | POLLHUP | POLLNVAL)) ? 4 : 0);
    Field(vevents, i) = Val_int(out);
  }
  free(pfds);
  CAMLreturn(Val_int(r));
}

/* Sets SO_REUSEPORT (not exposed by OCaml's Unix) so each acceptor domain
   can bind its own listener on the same address and let the kernel
   load-balance accepts.  Returns false where the option is unsupported;
   the caller falls back to a single shared listener. */
CAMLprim value sbi_serve_set_reuseport(value vfd)
{
#ifdef SO_REUSEPORT
  int one = 1;
  return Val_bool(setsockopt(Int_val(vfd), SOL_SOCKET, SO_REUSEPORT, &one,
                             sizeof one) == 0);
#else
  (void)vfd;
  return Val_false;
#endif
}

/* RLIMIT_NOFILE: req < 0 queries; req >= 0 sets the soft limit to
   min(req, hard).  Returns (soft, hard), -1 meaning unlimited.  The
   connection-scale tests and bench raise the ceiling before opening
   thousands of sockets, and the fd-exhaustion regression test lowers it
   to force accept(2) into EMFILE. */
CAMLprim value sbi_serve_nofile(value vreq)
{
  CAMLparam1(vreq);
  CAMLlocal1(res);
  struct rlimit rl;
  long req = Long_val(vreq);
  long soft, hard;

  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) caml_failwith("getrlimit(NOFILE)");
  if (req >= 0) {
    rlim_t want = (rlim_t)req;
    if (rl.rlim_max != RLIM_INFINITY && want > rl.rlim_max) want = rl.rlim_max;
    rl.rlim_cur = want;
    (void)setrlimit(RLIMIT_NOFILE, &rl);
    if (getrlimit(RLIMIT_NOFILE, &rl) != 0) caml_failwith("getrlimit(NOFILE)");
  }
  soft = (rl.rlim_cur == RLIM_INFINITY) ? -1 : (long)rl.rlim_cur;
  hard = (rl.rlim_max == RLIM_INFINITY) ? -1 : (long)rl.rlim_max;
  res = caml_alloc_tuple(2);
  Store_field(res, 0, Val_long(soft));
  Store_field(res, 1, Val_long(hard));
  CAMLreturn(res);
}
