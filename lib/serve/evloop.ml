(* Event-driven, multi-domain connection front end.

   The thread-per-connection server dies twice at connection scale: every
   concurrent client costs a systhread (unbounded [Thread.create] under a
   fleet-sized load), and every readiness wait ran through [Unix.select],
   which raises once any fd crosses FD_SETSIZE (1024).  This module
   replaces both: [loops] domains each run a poll(2) readiness loop
   (C stub in [poll_stubs.c]) over non-blocking connection fds, driving a
   per-connection state machine for the newline/dot-framed protocol —
   read buffer → incremental parse → dispatch → write buffer.

   Division of labour:

   - {b Loop domains} own their connections exclusively (no per-conn
     locks): they accept, read, parse, flush write buffers, and enforce
     monotonic-clock idle deadlines.  They never block on request work.
   - {b Worker threads} (a small bounded pool) run the [handler] —
     triage queries, ingest parked on the group-commit window — and post
     the rendered response back to the owning loop through a
     mutex-protected inbox plus a self-pipe wakeup.

   Backpressure is structural: while a request is being handled (or its
   response is still draining), the connection's fd is dropped from the
   loop's read interest set, so a flooding peer is throttled by the
   kernel socket buffer instead of growing server-side queues.  At most
   one request per connection is in flight, exactly like the
   thread-per-connection path.

   Listener strategies: with [Per_loop] each domain polls its own
   listener fd (bound with SO_REUSEPORT — the kernel load-balances
   accepts); with [Shared] loop 0 polls the single listener and
   round-robins accepted fds to its peers ([Adopt] message). *)

module Clock = Sbi_obs.Clock
module Io = Sbi_fault.Io

(* --- poll(2) primitives --- *)

external poll_fds : Unix.file_descr array -> int array -> int -> int
  = "sbi_serve_poll"
(* [poll_fds fds events timeout_ms] polls [fds] with interest bits from
   [events] (1 = read, 2 = write), writes readiness bits back into
   [events] in place (adding 4 = error/hangup), and returns poll(2)'s
   ready count — or -1 when the wait was interrupted (EINTR), leaving
   the caller to recompute its timeout budget. *)

external set_reuseport : Unix.file_descr -> bool = "sbi_serve_set_reuseport"

external nofile : int -> int * int = "sbi_serve_nofile"

let nofile_limit () = nofile (-1)

let set_nofile_limit n =
  if n < 0 then invalid_arg "Evloop.set_nofile_limit: negative limit";
  nofile n

let ev_read = 1
let ev_write = 2
let ev_error = 4

(* Single-fd readiness wait with EINTR-safe deadline accounting: the
   poll-based replacement for the [Unix.select] calls that used to guard
   client connect deadlines and the group-commit self-pipe (both broke
   outright on fds >= FD_SETSIZE).  [timeout_ms < 0] waits forever. *)
let wait_fd interest fd ~timeout_ms =
  let fds = [| fd |] in
  let deadline =
    if timeout_ms < 0 then None else Some (Clock.now_ns () + (timeout_ms * 1_000_000))
  in
  let rec go timeout_ms =
    let events = [| interest |] in
    match poll_fds fds events timeout_ms with
    | -1 -> (
        (* interrupted: spend only the remaining budget *)
        match deadline with
        | None -> go (-1)
        | Some d ->
            let left_ns = d - Clock.now_ns () in
            if left_ns <= 0 then `Timeout else go ((left_ns + 999_999) / 1_000_000))
    | 0 -> `Timeout
    | _ -> `Ready (* readiness, or error/hangup: the next syscall reports it *)
  in
  go timeout_ms

let wait_readable ?(timeout_ms = -1) fd = wait_fd ev_read fd ~timeout_ms
let wait_writable ?(timeout_ms = -1) fd = wait_fd ev_write fd ~timeout_ms

(* --- the connection front end --- *)

type request = Line of string | Batch of string list
type response = { body : string; close : bool }

type config = {
  loops : int;
  workers : int;
  max_conns : int;  (* admission cap, enforced exactly at accept time *)
  max_line : int;
  max_batch_lines : int;
  idle_timeout_ns : int;  (* <= 0 disables idle deadlines *)
  io : Io.t;
  handler : request -> response;  (* runs on the worker pool, never on a loop *)
  on_fault : string -> unit;
  on_open : unit -> unit;
  on_close : unit -> unit;
}

type listeners =
  | Per_loop of Unix.file_descr array  (* one SO_REUSEPORT listener per loop *)
  | Shared of Unix.file_descr  (* loop 0 accepts and distributes *)

type batch_acc = { mutable b_payloads : string list; mutable b_count : int }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  mutable c_rbuf : Bytes.t;  (* unparsed input, always at offset 0 *)
  mutable c_rlen : int;
  mutable c_wbuf : string;  (* pending response bytes *)
  mutable c_wpos : int;  (* already written prefix of c_wbuf *)
  mutable c_busy : bool;  (* a request is on the worker pool *)
  mutable c_no_read : bool;  (* terminal: drain the write buffer, then close *)
  mutable c_close_after_write : bool;
  mutable c_batch : batch_acc option;  (* inside an ingest-batch body *)
  mutable c_deadline : int;  (* monotonic ns; refreshed on any progress *)
}

type msg =
  | Dispatched of conn * response  (* worker -> owning loop *)
  | Adopt of Unix.file_descr  (* distributor -> peer loop *)

type loop = {
  l_id : int;
  l_wake_r : Unix.file_descr;
  l_wake_w : Unix.file_descr;
  l_mx : Mutex.t;  (* guards l_inbox and l_dead *)
  mutable l_inbox : msg list;  (* newest first *)
  mutable l_dead : bool;  (* set at loop exit: no further posts land *)
  l_conns : (int, conn) Hashtbl.t;  (* touched only by the owning domain *)
  l_listener : Unix.file_descr option;
  mutable l_pause_until : int;
      (* accept backoff: after a transient accept(2) failure (EMFILE,
         ECONNABORTED, ...) the listener is dropped from the interest set
         until this stamp — live connections keep being served at full
         speed while the listener cools off *)
}

type t = {
  cfg : config;
  per_loop : bool;
  loops : loop array;
  stop : bool Atomic.t;
  nconns : int Atomic.t;  (* admitted, not yet closed — the exact cap counter *)
  next_id : int Atomic.t;
  mutable rr : int;  (* shared-listener round-robin cursor; loop 0 only *)
  wq : (loop * conn * request) Queue.t;
  wq_mx : Mutex.t;
  wq_cv : Condition.t;
  mutable domains : unit Domain.t list;
  mutable workers : Thread.t list;
}

let accept_backoff_ns = 50_000_000
let busy_reply = Wire.render_err "busy"

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let kick l =
  try ignore (Unix.single_write_substring l.l_wake_w "!" 0 1)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
  ->
    ()

(* Delivers a message to a loop's inbox; false if the loop already died
   (caller owns any fd riding in the message). *)
let post l msg =
  Mutex.lock l.l_mx;
  let ok = not l.l_dead in
  if ok then l.l_inbox <- msg :: l.l_inbox;
  Mutex.unlock l.l_mx;
  if ok then kick l;
  ok

let drain_wake l =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read l.l_wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  go ()

let deadline_of g now = if g.cfg.idle_timeout_ns <= 0 then max_int else now + g.cfg.idle_timeout_ns
let touch g c = c.c_deadline <- deadline_of g (Clock.now_ns ())
let wpending c = String.length c.c_wbuf - c.c_wpos

let close_conn g l c =
  if Hashtbl.mem l.l_conns c.c_id then begin
    Hashtbl.remove l.l_conns c.c_id;
    (* halt any in-progress parse recursion over this connection *)
    c.c_no_read <- true;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    Atomic.decr g.nconns;
    g.cfg.on_close ()
  end

let enqueue_write c body =
  if c.c_wpos > 0 then begin
    c.c_wbuf <- String.sub c.c_wbuf c.c_wpos (String.length c.c_wbuf - c.c_wpos);
    c.c_wpos <- 0
  end;
  c.c_wbuf <- (if c.c_wbuf = "" then body else c.c_wbuf ^ body)

(* Hands a parsed request to the worker pool; the connection is parked
   ([c_busy]) until the response comes back through the inbox. *)
let submit g l c req =
  c.c_busy <- true;
  Mutex.lock g.wq_mx;
  Queue.add (l, c, req) g.wq;
  Condition.signal g.wq_cv;
  Mutex.unlock g.wq_mx

(* The per-connection state machine.  [conn_flush] drains the write
   buffer as far as the socket accepts and, once fully drained, resumes
   parsing any pipelined input left in the read buffer; [parse_lines]
   walks complete lines (tracking a consumed offset — compaction happens
   once, in [conn_parse]) and stops as soon as a request is submitted,
   so exactly one request per connection is ever in flight. *)
let rec conn_oversize g l c msg =
  g.cfg.on_fault "oversize";
  c.c_batch <- None;
  c.c_no_read <- true;
  c.c_close_after_write <- true;
  enqueue_write c (Wire.render_err msg);
  conn_flush g l c

and conn_flush g l c =
  let len = wpending c in
  if len = 0 then begin
    if c.c_wbuf <> "" then begin
      c.c_wbuf <- "";
      c.c_wpos <- 0
    end;
    if c.c_close_after_write then close_conn g l c
    else if (not c.c_busy) && not c.c_no_read then conn_parse g l c
  end
  else
    match Io.fd_write ~io:g.cfg.io c.c_fd (Bytes.unsafe_of_string c.c_wbuf) c.c_wpos len with
    | 0 -> ()
    | n ->
        c.c_wpos <- c.c_wpos + n;
        touch g c;
        conn_flush g l c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> conn_flush g l c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        () (* kernel buffer full: wait for POLLOUT *)
    | exception Unix.Unix_error _ ->
        g.cfg.on_fault "reset";
        close_conn g l c

and conn_parse g l c =
  let consumed = parse_lines g l c 0 in
  if consumed > 0 then begin
    let remain = c.c_rlen - consumed in
    if remain > 0 then Bytes.blit c.c_rbuf consumed c.c_rbuf 0 remain;
    c.c_rlen <- remain
  end

and parse_lines g l c off =
  if c.c_busy || c.c_no_read then off
  else
    let newline =
      match Bytes.index_from_opt c.c_rbuf off '\n' with
      | Some i when i < c.c_rlen -> Some i
      | _ -> None (* a '\n' at or past c_rlen is stale buffer content *)
    in
    match newline with
    | None ->
        if c.c_rlen - off > g.cfg.max_line then
          conn_oversize g l c
            (Printf.sprintf "request exceeds %d bytes" g.cfg.max_line);
        off
    | Some i ->
        let line = strip_cr (Bytes.sub_string c.c_rbuf off (i - off)) in
        let off = i + 1 in
        if String.length line > g.cfg.max_line then begin
          conn_oversize g l c
            (Printf.sprintf "request exceeds %d bytes" g.cfg.max_line);
          off
        end
        else begin
          (match c.c_batch with
          | Some b ->
              if line = "." then begin
                c.c_batch <- None;
                if b.b_count > g.cfg.max_batch_lines then begin
                  (* consumed through the terminator: reject the batch
                     without dropping the connection, exactly like the
                     thread path's [`Too_many].  The write is picked up
                     by the next poll round (POLLOUT interest). *)
                  g.cfg.on_fault "oversize";
                  enqueue_write c
                    (Wire.render_err
                       (Printf.sprintf "ingest-batch exceeds %d reports"
                          g.cfg.max_batch_lines))
                end
                else submit g l c (Batch (List.rev b.b_payloads))
              end
              else begin
                b.b_count <- b.b_count + 1;
                if b.b_count <= g.cfg.max_batch_lines then
                  b.b_payloads <- Wire.unstuff line :: b.b_payloads
              end
          | None ->
              if line = "ingest-batch" then
                c.c_batch <- Some { b_payloads = []; b_count = 0 }
              else submit g l c (Line line));
          parse_lines g l c off
        end

let read_step g l c =
  (* ensure read headroom; the buffer is bounded by the line limit (the
     parser rejects an unterminated line beyond [max_line] well before
     the bound is reached) *)
  let cap = Bytes.length c.c_rbuf in
  let limit = g.cfg.max_line + 8192 in
  if c.c_rlen = cap && cap < limit then begin
    let grown = Bytes.create (min (cap * 2) limit) in
    Bytes.blit c.c_rbuf 0 grown 0 c.c_rlen;
    c.c_rbuf <- grown
  end;
  let room = Bytes.length c.c_rbuf - c.c_rlen in
  if room <= 0 then
    conn_oversize g l c (Printf.sprintf "request exceeds %d bytes" g.cfg.max_line)
  else
    match Io.fd_read ~io:g.cfg.io c.c_fd c.c_rbuf c.c_rlen room with
    | 0 -> close_conn g l c (* peer closed *)
    | n ->
        c.c_rlen <- c.c_rlen + n;
        touch g c;
        conn_parse g l c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        g.cfg.on_fault "reset";
        close_conn g l c
    | exception Unix.Unix_error _ ->
        g.cfg.on_fault "error";
        close_conn g l c

let register g l fd =
  let id = Atomic.fetch_and_add g.next_id 1 in
  let c =
    {
      c_id = id;
      c_fd = fd;
      c_rbuf = Bytes.create 4096;
      c_rlen = 0;
      c_wbuf = "";
      c_wpos = 0;
      c_busy = false;
      c_no_read = false;
      c_close_after_write = false;
      c_batch = None;
      c_deadline = deadline_of g (Clock.now_ns ());
    }
  in
  Hashtbl.replace l.l_conns id c;
  g.cfg.on_open ();
  (* bytes may already be queued on a freshly adopted socket *)
  read_step g l c

let drain_inbox g l =
  Mutex.lock l.l_mx;
  let msgs = List.rev l.l_inbox in
  l.l_inbox <- [];
  Mutex.unlock l.l_mx;
  List.iter
    (fun msg ->
      match msg with
      | Adopt fd ->
          if Atomic.get g.stop then begin
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Atomic.decr g.nconns
          end
          else register g l fd
      | Dispatched (c, resp) ->
          if Hashtbl.mem l.l_conns c.c_id then begin
            c.c_busy <- false;
            if resp.close then begin
              c.c_no_read <- true;
              c.c_close_after_write <- true
            end;
            enqueue_write c resp.body;
            touch g c;
            conn_flush g l c
          end)
    msgs

let pick_loop g l =
  if g.per_loop then l
  else begin
    let n = Array.length g.loops in
    let i = g.rr in
    g.rr <- (i + 1) mod n;
    g.loops.(i)
  end

let accept_step g l lfd =
  let rec burst budget =
    if budget > 0 && not (Atomic.get g.stop) then
      match Unix.accept ~cloexec:true lfd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> burst budget
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          () (* listener closed by stop *)
      | exception Unix.Unix_error (_, _, _) ->
          (* EMFILE/ENFILE/ECONNABORTED/ENOBUFS/...: transient.  Count
             it, park the listener briefly, keep serving — the old
             accept loop swallowed these as "listener closed" and spun,
             silently dropping every connection attempt. *)
          g.cfg.on_fault "accept";
          l.l_pause_until <- Clock.now_ns () + accept_backoff_ns
      | fd, _ ->
          (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
          (* exact admission: fetch_and_add decides, losers roll back —
             two loops racing at max_conns - 1 can never both admit *)
          if Atomic.fetch_and_add g.nconns 1 >= g.cfg.max_conns then begin
            Atomic.decr g.nconns;
            g.cfg.on_fault "overload";
            (try
               ignore (Unix.write_substring fd busy_reply 0 (String.length busy_reply))
             with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ());
            burst (budget - 1)
          end
          else begin
            let target = pick_loop g l in
            if target == l then register g l fd
            else if not (post target (Adopt fd)) then begin
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Atomic.decr g.nconns
            end;
            burst (budget - 1)
          end
  in
  burst 64

(* Idle-deadline sweep.  Busy connections are exempt — the request clock
   belongs to the handler; the deadline governs peers, not workers.  A
   connection that expired with response bytes still pending stalled on
   *our* write (peer stopped reading): that is a send stall, not a
   receive timeout, and is classified separately. *)
let sweep g l now =
  if g.cfg.idle_timeout_ns > 0 then begin
    let expired =
      Hashtbl.fold
        (fun _ c acc -> if (not c.c_busy) && now >= c.c_deadline then c :: acc else acc)
        l.l_conns []
    in
    List.iter
      (fun c ->
        g.cfg.on_fault (if wpending c > 0 then "send_timeout" else "timeout");
        close_conn g l c)
      expired
  end

let loop_iter g l =
  drain_inbox g l;
  let now = Clock.now_ns () in
  sweep g l now;
  (* build the interest set *)
  let tags = ref [] and fds = ref [] and evs = ref [] in
  let add tag fd interest =
    tags := tag :: !tags;
    fds := fd :: !fds;
    evs := interest :: !evs
  in
  add `Wake l.l_wake_r ev_read;
  (match l.l_listener with
  | Some lfd when now >= l.l_pause_until -> add (`Listener lfd) lfd ev_read
  | _ -> ());
  let next_deadline = ref max_int in
  Hashtbl.iter
    (fun _ c ->
      let want_w = wpending c > 0 in
      let want_r = (not c.c_busy) && (not c.c_no_read) && not want_w in
      if not c.c_busy then next_deadline := min !next_deadline c.c_deadline;
      if want_r || want_w then
        add (`Conn c) c.c_fd
          ((if want_r then ev_read else 0) lor if want_w then ev_write else 0))
    l.l_conns;
  (match l.l_listener with
  | Some _ when l.l_pause_until > now ->
      next_deadline := min !next_deadline l.l_pause_until
  | _ -> ());
  let timeout_ms =
    if !next_deadline = max_int then 250
    else min 250 (max 0 ((!next_deadline - now + 999_999) / 1_000_000))
  in
  let tags = Array.of_list !tags in
  let fds = Array.of_list !fds in
  let evs = Array.of_list !evs in
  match poll_fds fds evs timeout_ms with
  | -1 | 0 -> ()
  | _ ->
      Array.iteri
        (fun i tag ->
          let re = evs.(i) in
          if re <> 0 then
            match tag with
            | `Wake -> drain_wake l
            | `Listener lfd -> accept_step g l lfd
            | `Conn c ->
                if Hashtbl.mem l.l_conns c.c_id then begin
                  if re land ev_write <> 0 then conn_flush g l c;
                  if
                    Hashtbl.mem l.l_conns c.c_id
                    && re land (ev_read lor ev_error) <> 0
                  then
                    if wpending c > 0 then conn_flush g l c
                      (* error/hangup while write-parked: the write
                         reports it (EPIPE) *)
                    else if (not c.c_busy) && not c.c_no_read then read_step g l c
                    else if re land ev_error <> 0 then begin
                      g.cfg.on_fault "reset";
                      close_conn g l c
                    end
                end)
        tags

let loop_main g l =
  let rec run () =
    if not (Atomic.get g.stop) then begin
      (try loop_iter g l
       with e ->
         (* a loop domain must never die while the server runs: count
            the fault, cool off, keep serving *)
         g.cfg.on_fault "loop";
         prerr_endline ("cbi serve: event loop error: " ^ Printexc.to_string e);
         Unix.sleepf 0.05);
      run ()
    end
  in
  run ();
  (* teardown: refuse further posts, then release everything this loop
     owns — adopted-but-unregistered fds included, so no admission slot
     or descriptor leaks through shutdown *)
  Mutex.lock l.l_mx;
  l.l_dead <- true;
  let pending = l.l_inbox in
  l.l_inbox <- [];
  Mutex.unlock l.l_mx;
  List.iter
    (fun msg ->
      match msg with
      | Adopt fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Atomic.decr g.nconns
      | Dispatched _ -> ())
    pending;
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) l.l_conns [] in
  List.iter (fun c -> close_conn g l c) conns

(* Workers drain the queue even after stop is raised: a request already
   parsed off a connection completes (its side effects — a durable
   ingest — happen exactly as on the thread path at shutdown); the
   response is dropped if the owning loop is gone. *)
let worker_loop g =
  let next () =
    Mutex.lock g.wq_mx;
    let rec go () =
      if not (Queue.is_empty g.wq) then Some (Queue.pop g.wq)
      else if Atomic.get g.stop then None
      else begin
        Condition.wait g.wq_cv g.wq_mx;
        go ()
      end
    in
    let job = go () in
    Mutex.unlock g.wq_mx;
    job
  in
  let rec run () =
    match next () with
    | None -> ()
    | Some (l, c, req) ->
        let resp =
          try g.cfg.handler req
          with e ->
            {
              body = Wire.render_err ("internal error: " ^ Printexc.to_string e);
              close = true;
            }
        in
        ignore (post l (Dispatched (c, resp)));
        run ()
  in
  run ()

let mk_loop id listener =
  let r, w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock r;
  Unix.set_nonblock w;
  {
    l_id = id;
    l_wake_r = r;
    l_wake_w = w;
    l_mx = Mutex.create ();
    l_inbox = [];
    l_dead = false;
    l_conns = Hashtbl.create 64;
    l_listener = listener;
    l_pause_until = 0;
  }

let start (cfg : config) (listeners : listeners) =
  let nloops = max 1 cfg.loops in
  (* the accept burst relies on EAGAIN to stop: a blocking listener
     would wedge the whole loop domain inside accept(2) *)
  (match listeners with
  | Per_loop lfds -> Array.iter Unix.set_nonblock lfds
  | Shared lfd -> Unix.set_nonblock lfd);
  let per_loop, listener_of =
    match listeners with
    | Per_loop lfds ->
        if Array.length lfds <> nloops then
          invalid_arg "Evloop.start: one listener per loop required";
        (true, fun i -> Some lfds.(i))
    | Shared lfd -> (false, fun i -> if i = 0 then Some lfd else None)
  in
  let g =
    {
      cfg = { cfg with loops = nloops };
      per_loop;
      loops = Array.init nloops (fun i -> mk_loop i (listener_of i));
      stop = Atomic.make false;
      nconns = Atomic.make 0;
      next_id = Atomic.make 0;
      rr = 0;
      wq = Queue.create ();
      wq_mx = Mutex.create ();
      wq_cv = Condition.create ();
      domains = [];
      workers = [];
    }
  in
  g.domains <-
    List.init nloops (fun i -> Domain.spawn (fun () -> loop_main g g.loops.(i)));
  g.workers <-
    List.init (max 1 cfg.workers) (fun _ -> Thread.create worker_loop g);
  g

let stop g =
  if not (Atomic.exchange g.stop true) then begin
    Array.iter kick g.loops;
    List.iter Domain.join g.domains;
    g.domains <- [];
    Mutex.lock g.wq_mx;
    Condition.broadcast g.wq_cv;
    Mutex.unlock g.wq_mx;
    List.iter Thread.join g.workers;
    g.workers <- [];
    Array.iter
      (fun l ->
        (try Unix.close l.l_wake_r with Unix.Unix_error _ -> ());
        try Unix.close l.l_wake_w with Unix.Unix_error _ -> ())
      g.loops
  end

let conn_count g = Atomic.get g.nconns
