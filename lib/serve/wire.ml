type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  if s = "" then Error "empty address"
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "bad address %S (expected a /path or host:port)" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port in address %S" s))

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> (
      match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
      | { Unix.ai_addr; _ } :: _ -> ai_addr
      | [] -> failwith (Printf.sprintf "cannot resolve host %S" host))

let stuff line = if String.length line > 0 && line.[0] = '.' then "." ^ line else line

let unstuff line =
  if String.length line > 1 && line.[0] = '.' then String.sub line 1 (String.length line - 1)
  else line

let write_framed oc header lines =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun line ->
      Buffer.add_string buf (stuff line);
      Buffer.add_char buf '\n')
    lines;
  Buffer.add_string buf ".\n";
  output_string oc (Buffer.contents buf);
  flush oc;
  Buffer.length buf

let write_ok oc ~header ~lines = write_framed oc ("ok " ^ header) lines
let write_err oc msg = write_framed oc ("err " ^ msg) []

let read_response ic =
  let header = input_line ic in
  let rec payload acc =
    let line = input_line ic in
    if line = "." then List.rev acc else payload (unstuff line :: acc)
  in
  let lines = payload [] in
  if header = "ok" then Ok ("", lines)
  else if String.length header >= 3 && String.sub header 0 3 = "ok " then
    Ok (String.sub header 3 (String.length header - 3), lines)
  else if String.length header >= 4 && String.sub header 0 4 = "err " then
    Error (String.sub header 4 (String.length header - 4))
  else Error ("malformed response header: " ^ header)
