module Io = Sbi_fault.Io

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  if s = "" then Error "empty address"
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "bad address %S (expected a /path or host:port)" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port in address %S" s))

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr = function
  | Unix_sock path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      match
        Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr; _ } :: _ -> Ok ai_addr
      | [] | (exception Not_found) ->
          Error (Printf.sprintf "cannot resolve host %S" host))

exception Timeout

(* --- partial-operation-safe primitives --- *)

let rec write_fully ?io fd buf pos len =
  if len > 0 then
    match Io.fd_write ?io fd buf pos len with
    | n -> write_fully ?io fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_fully ?io fd buf pos len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> raise Timeout

let write_string ?io fd s = write_fully ?io fd (Bytes.unsafe_of_string s) 0 (String.length s)

type reader = {
  r_fd : Unix.file_descr;
  r_io : Io.t option;
  r_max : int;
  r_chunk : Bytes.t;
  mutable r_pos : int;
  mutable r_len : int;  (* valid bytes in r_chunk; -1 after EOF *)
}

let reader ?io ?(max_line = 1 lsl 20) fd =
  { r_fd = fd; r_io = io; r_max = max_line; r_chunk = Bytes.create 8192; r_pos = 0; r_len = 0 }

(* Pulls more bytes into the chunk; false at EOF. *)
let rec refill r =
  match
    match r.r_io with
    | None -> Unix.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk)
    | Some io -> Io.fd_read ~io r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk)
  with
  | 0 -> false
  | n ->
      r.r_pos <- 0;
      r.r_len <- n;
      true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> raise Timeout

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_line r =
  let buf = Buffer.create 80 in
  let rec go () =
    if r.r_pos >= r.r_len then
      if refill r then go ()
      else if Buffer.length buf = 0 then `Eof
      else `Line (strip_cr (Buffer.contents buf)) (* unterminated final line *)
    else
      match Bytes.index_from_opt r.r_chunk r.r_pos '\n' with
      | Some i when i < r.r_len ->
          Buffer.add_subbytes buf r.r_chunk r.r_pos (i - r.r_pos);
          r.r_pos <- i + 1;
          if Buffer.length buf > r.r_max then `Too_long
          else `Line (strip_cr (Buffer.contents buf))
      | _ ->
          Buffer.add_subbytes buf r.r_chunk r.r_pos (r.r_len - r.r_pos);
          r.r_pos <- r.r_len;
          (* bail before the next refill: an unterminated flood must not
             grow the buffer without bound *)
          if Buffer.length buf > r.r_max then `Too_long else go ()
  in
  go ()

(* --- framing --- *)

let stuff line = if String.length line > 0 && line.[0] = '.' then "." ^ line else line

let unstuff line =
  if String.length line > 1 && line.[0] = '.' then String.sub line 1 (String.length line - 1)
  else line

(* Rendering is split from writing so the event-loop front end can build
   a response string once and let its write-buffer state machine drain it
   across partial non-blocking writes. *)
let render_framed header lines =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun line ->
      Buffer.add_string buf (stuff line);
      Buffer.add_char buf '\n')
    lines;
  Buffer.add_string buf ".\n";
  Buffer.contents buf

let render_ok ~header ~lines = render_framed ("ok " ^ header) lines
let render_err msg = render_framed ("err " ^ msg) []

let write_framed ?io fd header lines =
  let s = render_framed header lines in
  write_string ?io fd s;
  String.length s

let write_ok ?io fd ~header ~lines = write_framed ?io fd ("ok " ^ header) lines
let write_err ?io fd msg = write_framed ?io fd ("err " ^ msg) []

let read_response rd =
  let line () =
    match read_line rd with
    | `Line l -> l
    | `Eof -> raise End_of_file
    | `Too_long -> failwith "too_long"
  in
  match
    let header = line () in
    let rec payload acc =
      let l = line () in
      if l = "." then List.rev acc else payload (unstuff l :: acc)
    in
    (header, payload [])
  with
  | exception Failure _ -> Error "response line exceeds the reader's bound"
  | header, lines ->
      if header = "ok" then Ok ("", lines)
      else if String.length header >= 3 && String.sub header 0 3 = "ok " then
        Ok (String.sub header 3 (String.length header - 3), lines)
      else if String.length header >= 4 && String.sub header 0 4 = "err " then
        Error (String.sub header 4 (String.length header - 4))
      else Error ("malformed response header: " ^ header)
