open Sbi_runtime
open Sbi_core

type bug = { bug : int; failing_runs : int; markers : int list }

type per_bug = {
  pb_bug : int;
  pb_first_rank : int option;
  pb_exam : float option;
}

type formula_result = {
  formula : string;
  first_true_bug_rank : int option;
  top1 : float;
  top5 : float;
  top10 : float;
  mean_exam : float option;
  bugs : per_bug list;
}

type t = {
  runs : int;
  failing : int;
  npreds : int;
  truth : bug list;
  evaluable : int;
  results : formula_result list;
}

(* Markers: P belongs to the bug it co-occurs with most among failing
   runs (ties toward the smaller bug id), provided P is a genuine failure
   predictor (F > 0, Increase > 0). *)
let truth (ds : Dataset.t) =
  let bug_ids = Dataset.bug_ids ds in
  match bug_ids with
  | [] -> []
  | _ ->
      let counts = Counts.compute ds in
      let nbugs = List.length bug_ids in
      let bug_index = Hashtbl.create nbugs in
      List.iteri (fun i b -> Hashtbl.replace bug_index b i) bug_ids;
      (* cooccur.(i) for bug slot i: per-predicate count of failing runs
         where the bug occurred and P was observed true *)
      let cooccur = Array.init nbugs (fun _ -> Array.make ds.Dataset.npreds 0) in
      Array.iter
        (fun (r : Report.t) ->
          if Report.outcome_is_failure r.Report.outcome then
            Array.iter
              (fun b ->
                let row = cooccur.(Hashtbl.find bug_index b) in
                Array.iter (fun p -> row.(p) <- row.(p) + 1) r.Report.true_preds)
              r.Report.bugs)
        ds.Dataset.runs;
      let markers = Array.make nbugs [] in
      for pred = ds.Dataset.npreds - 1 downto 0 do
        if counts.Counts.f.(pred) > 0 then begin
          let sc = Scores.score counts ~pred in
          if sc.Scores.increase > 0. then begin
            (* dominant bug: max co-occurrence, first (smallest) id wins ties *)
            let best = ref (-1) and best_n = ref 0 in
            for i = nbugs - 1 downto 0 do
              let n = cooccur.(i).(pred) in
              if n > 0 && n >= !best_n then begin
                best := i;
                best_n := n
              end
            done;
            if !best >= 0 then markers.(!best) <- pred :: markers.(!best)
          end
        end
      done;
      List.mapi
        (fun i b ->
          { bug = b; failing_runs = Dataset.runs_with_bug ds b; markers = markers.(i) })
        bug_ids

let eval_formula ~npreds ~(truth : bug list) (fm : Formula.t) counts =
  let ranking = Ranking.rank fm counts in
  (* pred -> 1-based rank *)
  let rank_of = Array.make npreds 0 in
  Array.iteri (fun i (e : Ranking.entry) -> rank_of.(e.Ranking.pred) <- i + 1) ranking;
  let bugs =
    List.map
      (fun b ->
        match b.markers with
        | [] -> { pb_bug = b.bug; pb_first_rank = None; pb_exam = None }
        | ms ->
            let first = List.fold_left (fun acc p -> min acc rank_of.(p)) max_int ms in
            {
              pb_bug = b.bug;
              pb_first_rank = Some first;
              pb_exam = Some (float_of_int first /. float_of_int npreds);
            })
      truth
  in
  let firsts = List.filter_map (fun pb -> pb.pb_first_rank) bugs in
  let evaluable = List.length firsts in
  let hit k =
    if evaluable = 0 then 0.
    else
      float_of_int (List.length (List.filter (fun r -> r <= k) firsts))
      /. float_of_int evaluable
  in
  let exams = List.filter_map (fun pb -> pb.pb_exam) bugs in
  {
    formula = fm.Formula.name;
    first_true_bug_rank = (match firsts with [] -> None | _ -> Some (List.fold_left min max_int firsts));
    top1 = hit 1;
    top5 = hit 5;
    top10 = hit 10;
    mean_exam =
      (match exams with
      | [] -> None
      | _ -> Some (List.fold_left ( +. ) 0. exams /. float_of_int (List.length exams)));
    bugs;
  }

let evaluate ?formulas (ds : Dataset.t) =
  let formulas = match formulas with Some fs -> fs | None -> Registry.all () in
  let counts = Counts.compute ds in
  let truth = truth ds in
  let evaluable = List.length (List.filter (fun b -> b.markers <> []) truth) in
  {
    runs = Dataset.nruns ds;
    failing = Dataset.num_failures ds;
    npreds = ds.Dataset.npreds;
    truth;
    evaluable;
    results =
      List.map (fun fm -> eval_formula ~npreds:ds.Dataset.npreds ~truth fm counts) formulas;
  }
