(** Deterministic rankings of §3.1 counters under any {!Formula}.

    All entry points take an already-aggregated {!Sbi_core.Counts.t} — the
    quantity the epoch-versioned snapshot caches — so switching formulas
    never rescans a corpus: it is a pure re-fold of the same counter
    table.

    Ordering is total and typed: score descending ({!Float.compare}, so
    [infinity] sorts first and ties are exact), then F(P) descending, then
    predicate id ascending.  The F-then-id tie-break matches
    {!Sbi_core.Scores.compare_importance_desc} and [Rank.By_increase]
    exactly, which is what makes [importance]/[increase] rankings
    bit-identical to the legacy path; it also pins the many exact ties
    coverage formulas (Tarantula et al.) produce, so rankings reproduce
    across runs, domain counts, and machines. *)

type entry = {
  pred : int;
  score : float;
  f : int;
  s : int;
  f_obs : int;
  s_obs : int;
}

val cell : Sbi_core.Counts.t -> pred:int -> Formula.cell
(** The formula-facing view of one predicate's counters.
    @raise Invalid_argument when [pred] is outside the tables. *)

val score : Formula.t -> Sbi_core.Counts.t -> pred:int -> float
(** [Formula.score] over {!cell}. *)

val entry : Formula.t -> Sbi_core.Counts.t -> pred:int -> entry

val compare_desc : entry -> entry -> int
(** Score desc, then F(P) desc, then pred asc — the total order above. *)

val rank : ?candidates:int list -> Formula.t -> Sbi_core.Counts.t -> entry array
(** All candidates (default: every predicate), best first under
    {!compare_desc}. *)

val topk : ?k:int -> ?candidates:int list -> Formula.t -> Sbi_core.Counts.t -> entry list
(** The [k] (default 10) best candidates, best first; bounded selection
    via {!Sbi_util.Topk}, never a full sort. *)
