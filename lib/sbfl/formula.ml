open Sbi_util

type cell = {
  f : int;
  s : int;
  f_obs : int;
  s_obs : int;
  num_f : int;
  num_s : int;
}

type t = { name : string; descr : string; score : cell -> float }

let name t = t.name
let descr t = t.descr
let score t cell = t.score cell

(* Same helper as Scores.ratio: empty denominators score 0, never NaN. *)
let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

(* Increase(P) must stay bit-identical to Scores.score: same ratio
   convention, same guard, same operation order. *)
let increase_score c =
  let failure = ratio c.f (c.f + c.s) in
  let context = ratio c.f_obs (c.f_obs + c.s_obs) in
  if c.f + c.s = 0 || c.f_obs + c.s_obs = 0 then 0. else failure -. context

let importance_score c =
  let increase = increase_score c in
  let sensitivity = Stats.log_ratio c.f c.num_f in
  Stats.harmonic_mean2 increase sensitivity

let tarantula_score c =
  let fr = ratio c.f c.num_f in
  let sr = ratio c.s c.num_s in
  if fr +. sr = 0. then 0. else fr /. (fr +. sr)

let ochiai_score c =
  let den = sqrt (float_of_int c.num_f *. float_of_int (c.f + c.s)) in
  if den = 0. then 0. else float_of_int c.f /. den

(* DStar: a zero denominator with ef > 0 is a perfect predictor (true in
   some failures, never in a success, true in every failure); the
   literature's convention is +inf so it ranks above everything finite. *)
let dstar_score ~star c =
  if c.f = 0 then 0.
  else begin
    let den = c.s + (c.num_f - c.f) in
    let num = float_of_int c.f ** float_of_int star in
    if den = 0 then infinity else num /. float_of_int den
  end

let jaccard_score c = ratio c.f (c.num_f + c.s)
let op2_score c = float_of_int c.f -. (float_of_int c.s /. float_of_int (c.num_s + 1))

let importance =
  {
    name = "importance";
    descr = "harmonic mean of Increase(P) and log F(P)/log NumF (paper, 3.3)";
    score = importance_score;
  }

let increase =
  {
    name = "increase";
    descr = "Failure(P) - Context(P) over sampled observations (paper, 3.1)";
    score = increase_score;
  }

let tarantula =
  {
    name = "tarantula";
    descr = "(ef/F) / (ef/F + ep/S) (Jones & Harrold 2005)";
    score = tarantula_score;
  }

let ochiai =
  { name = "ochiai"; descr = "ef / sqrt(F * (ef + ep))"; score = ochiai_score }

let dstar2 =
  {
    name = "dstar2";
    descr = "ef^2 / (ep + (F - ef)); inf on a perfect predictor (Wong et al.)";
    score = dstar_score ~star:2;
  }

let dstar3 =
  {
    name = "dstar3";
    descr = "ef^3 / (ep + (F - ef)); inf on a perfect predictor (Wong et al.)";
    score = dstar_score ~star:3;
  }

let jaccard = { name = "jaccard"; descr = "ef / (F + ep)"; score = jaccard_score }

let op2 =
  { name = "op2"; descr = "ef - ep / (S + 1) (Naish et al. O^p)"; score = op2_score }

let builtins = [ importance; increase; tarantula; ochiai; dstar2; dstar3; jaccard; op2 ]
