let lock = Mutex.create ()
let table : (string, Formula.t) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let canon name = String.lowercase_ascii (String.trim name)

let register_unlocked (f : Formula.t) =
  let key = canon f.Formula.name in
  if key = "" then invalid_arg "Registry.register: empty formula name";
  if Hashtbl.mem table key then
    invalid_arg (Printf.sprintf "Registry.register: duplicate formula %S" key);
  Hashtbl.replace table key f

let () = List.iter register_unlocked Formula.builtins
let default = Formula.importance
let register f = locked (fun () -> register_unlocked f)
let find name = locked (fun () -> Hashtbl.find_opt table (canon name))

let names () =
  locked (fun () ->
      List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table []))

let find_exn name =
  match find name with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "unknown formula %S (known: %s)" name
           (String.concat ", " (names ())))

let all () =
  locked (fun () ->
      List.sort
        (fun (a : Formula.t) b -> String.compare a.Formula.name b.Formula.name)
        (Hashtbl.fold (fun _ f acc -> f :: acc) table []))
