(** The formula registry: name -> {!Formula.t}.

    Pre-populated with {!Formula.builtins}; thread-safe so a server
    answering [formulas] concurrently with a plugin registering at startup
    never observes a torn table.  Names are case-insensitive on lookup and
    stored lowercase. *)

val default : Formula.t
(** The paper's [importance] — what every caller uses when no formula is
    named. *)

val find : string -> Formula.t option
(** Case-insensitive lookup. *)

val find_exn : string -> Formula.t
(** @raise Invalid_argument naming the known formulas when absent. *)

val register : Formula.t -> unit
(** Add a new formula.
    @raise Invalid_argument on a duplicate (case-insensitive) name or an
    empty name. *)

val names : unit -> string list
(** Registered names, sorted; builtins first is NOT guaranteed — this is
    plain lexicographic order for stable output. *)

val all : unit -> Formula.t list
(** All registered formulas, sorted by name. *)
