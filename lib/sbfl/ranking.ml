open Sbi_core

type entry = {
  pred : int;
  score : float;
  f : int;
  s : int;
  f_obs : int;
  s_obs : int;
}

let cell (c : Counts.t) ~pred =
  if pred < 0 || pred >= c.Counts.npreds then
    invalid_arg (Printf.sprintf "Ranking.cell: predicate %d out of range" pred);
  {
    Formula.f = c.Counts.f.(pred);
    s = c.Counts.s.(pred);
    f_obs = c.Counts.f_obs.(pred);
    s_obs = c.Counts.s_obs.(pred);
    num_f = c.Counts.num_f;
    num_s = c.Counts.num_s;
  }

let score (fm : Formula.t) c ~pred = fm.Formula.score (cell c ~pred)

let entry fm c ~pred =
  let cl = cell c ~pred in
  {
    pred;
    score = fm.Formula.score cl;
    f = cl.Formula.f;
    s = cl.Formula.s;
    f_obs = cl.Formula.f_obs;
    s_obs = cl.Formula.s_obs;
  }

let compare_desc a b =
  match Float.compare b.score a.score with
  | 0 -> ( match Int.compare b.f a.f with 0 -> Int.compare a.pred b.pred | n -> n)
  | n -> n

let entries_of ?candidates fm (c : Counts.t) =
  match candidates with
  | Some preds -> Array.of_list (List.map (fun pred -> entry fm c ~pred) preds)
  | None -> Array.init c.Counts.npreds (fun pred -> entry fm c ~pred)

let rank ?candidates fm c =
  let out = entries_of ?candidates fm c in
  Array.sort compare_desc out;
  out

let topk ?(k = 10) ?candidates fm c =
  let entries = entries_of ?candidates fm c in
  Sbi_util.Topk.top ~k ~compare:(fun a b -> compare_desc b a) entries
