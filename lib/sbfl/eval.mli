(** Ground-truth evaluation of SBFL formulas.

    Takes a collected {!Sbi_runtime.Dataset.t} whose reports carry the
    reproduction's ground-truth channel ([Report.bugs], the [__bug(n)]
    occurrences) and measures, for each formula, how early its ranking
    surfaces each bug that actually occurred.

    {2 Marker predicates}

    A ranking is a list of predicates, not bugs, so each bug is judged by
    its {e marker} predicates: predicate P is a marker of bug B iff

    - [F(P) > 0] and [Increase(P) > 0] (P is a genuine failure predictor,
      the paper's §3.1 precondition), and
    - B is P's {e dominant} bug: the bug co-occurring with P-true in the
      most failing runs, ties broken toward the smaller bug id.

    Dominance makes marker sets disjoint across bugs, so a formula cannot
    score a freebie by ranking one super-bug predictor first for every
    bug.

    {2 Metrics}

    For formula ranking R over {e all} predicates (no CI pruning — a
    formula must also rank the noise) and bug B with markers M:

    - [first_rank B] — 1-based rank in R of the best-ranked marker of B.
    - rank of first true bug — min over occurring bugs of [first_rank].
    - top-k hit rate — fraction of evaluable bugs with [first_rank <= k].
    - EXAM(B) — [first_rank B / npreds]: fraction of the ranking a
      developer reads before reaching B (smaller is better).

    Bugs that occurred but have no marker (never observed true in a
    failing run, or drowned by a dominant sibling) are reported but
    excluded from the rate/mean denominators. *)

type bug = {
  bug : int;  (** ground-truth bug id *)
  failing_runs : int;  (** failing runs exhibiting the bug *)
  markers : int list;  (** marker predicates, ascending id *)
}

type per_bug = {
  pb_bug : int;
  pb_first_rank : int option;  (** 1-based; [None] when the bug has no marker *)
  pb_exam : float option;  (** first_rank / npreds *)
}

type formula_result = {
  formula : string;
  first_true_bug_rank : int option;
      (** best [pb_first_rank] across evaluable bugs *)
  top1 : float;
  top5 : float;
  top10 : float;  (** hit rates over evaluable bugs; 0 when none *)
  mean_exam : float option;
  bugs : per_bug list;  (** one per occurring bug, ascending bug id *)
}

type t = {
  runs : int;
  failing : int;
  npreds : int;
  truth : bug list;  (** occurring bugs, ascending id *)
  evaluable : int;  (** bugs with at least one marker *)
  results : formula_result list;  (** one per formula, input order *)
}

val truth : Sbi_runtime.Dataset.t -> bug list
(** Ground-truth bug inventory + marker assignment for one dataset. *)

val evaluate : ?formulas:Formula.t list -> Sbi_runtime.Dataset.t -> t
(** Score every formula (default: {!Registry.all} at call time) against
    the dataset's ground truth.  Deterministic for a fixed dataset. *)
