(** The SBFL formula plugin interface.

    A formula is a named, self-describing scorer over the §3.1 counters of
    one predicate.  Conventionally the fault-localization literature writes
    them over the tuple (ef, ep, nf, np); here the cell carries the paper's
    native quantities and exposes the classical aliases:

    - [ef = f]            — failing runs where P was observed true
    - [ep = s]            — successful runs where P was observed true
    - [nf = num_f - f]    — failing runs where P was not observed true
    - [np = num_s - s]    — successful runs where P was not observed true

    plus the sampling-aware observation counters [f_obs]/[s_obs] (runs
    where P's {e site} was reached and sampled), which the paper's own
    [increase]/[importance] need and which pure coverage formulas ignore.

    Scores are compared with {!Float.compare}: larger is more suspicious.
    A formula may return [infinity] (DStar's convention for a perfect
    predictor); the JSON emitter renders non-finite scores as [null].
    Formulas must never return NaN. *)

type cell = {
  f : int;  (** F(P): failing runs where P observed true *)
  s : int;  (** S(P): successful runs where P observed true *)
  f_obs : int;  (** failing runs where P's site was sampled *)
  s_obs : int;  (** successful runs where P's site was sampled *)
  num_f : int;  (** total failing runs *)
  num_s : int;  (** total successful runs *)
}

type t = {
  name : string;  (** registry key, lowercase, e.g. ["ochiai"] *)
  descr : string;  (** one-line self-description with the counter algebra *)
  score : cell -> float;
}

val name : t -> string
val descr : t -> string
val score : t -> cell -> float

(** {1 Built-ins}

    [importance] and [increase] replicate {!Sbi_core.Scores} arithmetic
    exactly — same ratio conventions, same operation order — so their
    scores are bit-identical to [Scores.score] (property-tested). *)

val importance : t
(** The paper's §3.3 metric: harmonic mean of Increase(P) and the
    log-failure sensitivity.  Bit-identical to
    [Scores.score c ~pred |> (fun sc -> sc.importance)]. *)

val increase : t
(** §3.1: [Failure(P) - Context(P)]; 0 when either denominator is empty.
    Bit-identical to the [increase] field of {!Sbi_core.Scores.score}. *)

val tarantula : t
(** Jones & Harrold 2005: [(ef/F) / (ef/F + ep/S)]; 0 when nothing ran or
    P was never true. *)

val ochiai : t
(** [ef / sqrt (F * (ef + ep))]; 0 on an empty denominator. *)

val dstar2 : t
(** Wong et al.: [ef^2 / (ep + (F - ef))]; [infinity] when the denominator
    is 0 and [ef > 0] (a perfect predictor), 0 when [ef = 0]. *)

val dstar3 : t
(** [ef^3 / (ep + (F - ef))], same conventions as {!dstar2}. *)

val jaccard : t
(** [ef / (F + ep)]; 0 on an empty denominator. *)

val op2 : t
(** Naish et al.: [ef - ep / (S + 1)]. *)

val builtins : t list
(** All of the above, [importance] first (the registry default). *)
