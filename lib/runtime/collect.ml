open Sbi_instrument
open Sbi_lang

type engine = Tree_walk | Bytecode

type spec = {
  transform : Transform.t;
  plan : Sampler.plan;
  gen_input : int -> string array;
  oracle : (run_index:int -> args:string array -> Interp.result -> bool) option;
  fuel : int;
  nondet_salt : int;
  engine : engine;
  compiled : Sbi_lang.Vm.program Lazy.t;
}

let make_spec ?oracle ?(fuel = 10_000_000) ?(nondet_salt = 0x7a11) ?(engine = Tree_walk)
    ~transform ~plan ~gen_input () =
  {
    transform;
    plan;
    gen_input;
    oracle;
    fuel;
    nondet_salt;
    engine;
    compiled = lazy (Sbi_lang.Vm.compile transform.Transform.prog);
  }

let execute spec config =
  match spec.engine with
  | Tree_walk -> Interp.run spec.transform.Transform.prog config
  | Bytecode -> Sbi_lang.Vm.run_compiled (Lazy.force spec.compiled) config

(* Per-run observation accumulator.  Stamp arrays avoid clearing
   site/predicate-sized buffers between runs. *)
type accum = {
  mutable stamp : int;
  site_stamp : int array;
  pred_stamp : int array;
  pred_count : int array;  (* observed-true count, valid when stamped *)
  mutable sites_rev : int list;
  mutable preds_rev : int list;
}

let make_accum ~nsites ~npreds =
  {
    stamp = 0;
    site_stamp = Array.make (max nsites 1) (-1);
    pred_stamp = Array.make (max npreds 1) (-1);
    pred_count = Array.make (max npreds 1) 0;
    sites_rev = [];
    preds_rev = [];
  }

let accum_begin acc stamp =
  acc.stamp <- stamp;
  acc.sites_rev <- [];
  acc.preds_rev <- []

let accum_site acc site =
  if acc.site_stamp.(site) <> acc.stamp then begin
    acc.site_stamp.(site) <- acc.stamp;
    acc.sites_rev <- site :: acc.sites_rev
  end

let accum_pred acc pred =
  if acc.pred_stamp.(pred) <> acc.stamp then begin
    acc.pred_stamp.(pred) <- acc.stamp;
    acc.pred_count.(pred) <- 1;
    acc.preds_rev <- pred :: acc.preds_rev
  end
  else acc.pred_count.(pred) <- acc.pred_count.(pred) + 1

let sorted_array_of_list l =
  let arr = Array.of_list l in
  Array.sort Int.compare arr;
  arr

let nondet_seed_of spec run_index = (spec.nondet_salt * 1_000_003) + run_index

(* splitmix64-style finalizer over (seed, run_index): neighbouring runs get
   statistically unrelated sampling streams, and the stream of run i depends
   only on (seed, i) — never on which runs were executed before it. *)
let run_seed ~seed ~run_index =
  let open Int64 in
  let z = add (of_int seed) (mul 0x9E3779B97F4A7C15L (of_int (run_index + 1))) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 1)

let run_one spec ~sampler ~run_index =
  let t = spec.transform in
  let sites = t.Transform.sites in
  let acc = make_accum ~nsites:(Transform.num_sites t) ~npreds:(Transform.num_preds t) in
  accum_begin acc run_index;
  Sampler.begin_run sampler;
  let record ~site ~truths =
    accum_site acc site;
    let first = sites.(site).Site.first_pred in
    Array.iteri (fun i b -> if b then accum_pred acc (first + i)) truths
  in
  let hooks = Observe.hooks t ~visit:(Sampler.should_sample sampler) ~record in
  let args = spec.gen_input run_index in
  let config =
    {
      Interp.args;
      fuel = spec.fuel;
      max_depth = 2000;
      nondet_seed = nondet_seed_of spec run_index;
      hooks;
    }
  in
  let result = execute spec config in
  let failed_oracle =
    match (result.Interp.outcome, spec.oracle) with
    | Interp.Finished _, Some oracle -> oracle ~run_index ~args result
    | _ -> false
  in
  let outcome, crash_sig =
    match result.Interp.outcome with
    | Interp.Crashed c -> (Report.Failure, Some (Report.stack_signature c.Interp.stack))
    | Interp.Finished _ when failed_oracle -> (Report.Failure, None)
    | Interp.Finished _ -> (Report.Success, None)
  in
  let true_preds = sorted_array_of_list acc.preds_rev in
  let report =
    {
      Report.run_id = run_index;
      outcome;
      observed_sites = sorted_array_of_list acc.sites_rev;
      true_preds;
      true_counts = Array.map (fun p -> acc.pred_count.(p)) true_preds;
      bugs = Array.of_list result.Interp.bugs_triggered;
      crash_sig;
    }
  in
  (report, result)

let collect_reports ?(seed = 0xc0ffee) ?(first_run = 0) spec ~nruns =
  let t = spec.transform in
  let sampler = Sampler.create ~seed ~nsites:(Transform.num_sites t) spec.plan in
  Array.init nruns (fun i ->
      let run_index = first_run + i in
      Sampler.reseed sampler (run_seed ~seed ~run_index);
      let report, _ = run_one spec ~sampler ~run_index in
      report)

let collect ?seed ?first_run spec ~nruns =
  Dataset.create ~transform:spec.transform (collect_reports ?seed ?first_run spec ~nruns)

let run_uninstrumented spec ~run_index =
  let args = spec.gen_input run_index in
  let config =
    {
      Interp.args;
      fuel = spec.fuel;
      max_depth = 2000;
      nondet_seed = nondet_seed_of spec run_index;
      hooks = Interp.no_hooks;
    }
  in
  Interp.run spec.transform.Transform.prog config
