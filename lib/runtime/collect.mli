(** Collection driver: executes an instrumented program on many generated
    inputs and assembles the feedback-report dataset.

    This is the reproduction's stand-in for the paper's deployment: each
    "user run" is an interpreter execution on a generated input, sampled
    according to the given plan, labelled success/failure by crash
    detection or by a caller-supplied oracle (the paper's MOSS output
    oracle for the non-crashing bug #9). *)

type engine = Tree_walk | Bytecode

type spec = {
  transform : Sbi_instrument.Transform.t;
  plan : Sbi_instrument.Sampler.plan;
  gen_input : int -> string array;
      (** deterministic input generator, keyed by run index *)
  oracle : (run_index:int -> args:string array -> Sbi_lang.Interp.result -> bool) option;
      (** extra failure test for non-crashing runs: returns [true] when the
          run should be labelled a failure (e.g. wrong output).  Crashes are
          always failures regardless. *)
  fuel : int;
  nondet_salt : int;
      (** mixed with the run index to seed each run's [nondet] stream *)
  engine : engine;
      (** execution engine; {!Bytecode} compiles once and runs on the VM
          (identical observable semantics, differentially tested) *)
  compiled : Sbi_lang.Vm.program Lazy.t;  (** the bytecode, compiled on demand *)
}

val make_spec :
  ?oracle:(run_index:int -> args:string array -> Sbi_lang.Interp.result -> bool) ->
  ?fuel:int ->
  ?nondet_salt:int ->
  ?engine:engine ->
  transform:Sbi_instrument.Transform.t ->
  plan:Sbi_instrument.Sampler.plan ->
  gen_input:(int -> string array) ->
  unit ->
  spec

val run_one :
  spec ->
  sampler:Sbi_instrument.Sampler.t ->
  run_index:int ->
  Report.t * Sbi_lang.Interp.result
(** Executes a single monitored run (also used by training and tests). *)

val run_seed : seed:int -> run_index:int -> int
(** The per-run sampling key: a splitmix64-style mix of the collection seed
    and the run index.  Every collection path (sequential or parallel)
    reseeds its sampler with this key before each run, so a run's report
    depends only on [(spec, seed, run_index)] — never on which runs were
    executed before it or on which domain executed it. *)

val collect : ?seed:int -> ?first_run:int -> spec -> nruns:int -> Dataset.t
(** [collect spec ~nruns] executes runs [first_run .. first_run+nruns-1].
    [seed] seeds the sampling coin flips only (re-keyed per run via
    {!run_seed}); program inputs come from [gen_input] and in-program
    nondeterminism from [nondet_salt], so the same spec yields the same
    dataset — in any execution order. *)

val collect_reports :
  ?seed:int -> ?first_run:int -> spec -> nruns:int -> Report.t array
(** Like {!collect} but returns the raw reports without building the
    dataset tables (the parallel-collection building block: each worker
    collects a contiguous block of run indices). *)

val run_uninstrumented :
  spec -> run_index:int -> Sbi_lang.Interp.result
(** Executes a run with no observation at all (oracle runs, baselines,
    overhead benchmarks). *)
