type t = {
  nsites : int;
  npreds : int;
  pred_site : int array;
  pred_texts : string array option;
  runs : Report.t array;
}

let of_tables ?pred_texts ~nsites ~npreds ~pred_site runs =
  { nsites; npreds; pred_site; pred_texts; runs }

let create ~transform runs =
  let open Sbi_instrument in
  let npreds = Transform.num_preds transform in
  let pred_site =
    Array.init npreds (fun p -> transform.Transform.preds.(p).Site.pred_site)
  in
  let pred_texts = Array.init npreds (fun p -> Transform.describe_pred transform p) in
  {
    nsites = Transform.num_sites transform;
    npreds;
    pred_site;
    pred_texts = Some pred_texts;
    runs;
  }

let pred_text t p =
  match t.pred_texts with
  | Some texts when p >= 0 && p < Array.length texts -> texts.(p)
  | _ -> Printf.sprintf "pred#%d" p

let site_coverage t =
  let totals = Array.make (max t.nsites 1) 0 in
  Array.iter
    (fun (r : Report.t) ->
      Array.iteri
        (fun i pred ->
          let site = t.pred_site.(pred) in
          totals.(site) <- totals.(site) + r.Report.true_counts.(i))
        r.Report.true_preds)
    t.runs;
  let max_total = Array.fold_left max 0 totals in
  if max_total = 0 then Array.make t.nsites 0.
  else Array.init t.nsites (fun s -> float_of_int totals.(s) /. float_of_int max_total)

let nruns t = Array.length t.runs

let num_failures t =
  Array.fold_left
    (fun acc r -> if Report.outcome_is_failure r.Report.outcome then acc + 1 else acc)
    0 t.runs

let num_successes t = nruns t - num_failures t

let failures t =
  Array.of_list
    (List.filter
       (fun r -> Report.outcome_is_failure r.Report.outcome)
       (Array.to_list t.runs))

let successes t =
  Array.of_list
    (List.filter
       (fun r -> not (Report.outcome_is_failure r.Report.outcome))
       (Array.to_list t.runs))

let filter_runs t keep =
  { t with runs = Array.of_list (List.filter keep (Array.to_list t.runs)) }

let sub t n =
  if n > nruns t then invalid_arg "Dataset.sub: not enough runs";
  { t with runs = Array.sub t.runs 0 n }

let bug_ids t =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun r -> Array.iter (fun b -> Hashtbl.replace seen b ()) r.Report.bugs)
    t.runs;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let runs_with_bug t bug =
  Array.fold_left
    (fun acc r ->
      if Report.outcome_is_failure r.Report.outcome && Report.has_bug r bug then acc + 1
      else acc)
    0 t.runs

let bug_runs t bug = Array.map (fun r -> Report.has_bug r bug) t.runs

(* --- serialization --- *)

exception Parse_error of string

let ints_to_string arr = String.concat "," (Array.to_list (Array.map string_of_int arr))

let ints_of_string s =
  if s = "" then [||]
  else
    Array.of_list
      (List.map
         (fun part ->
           match int_of_string_opt part with
           | Some n -> n
           | None -> raise (Parse_error ("bad integer: " ^ part)))
         (String.split_on_char ',' s))

(* Crash signatures may contain arbitrary function names but never
   whitespace (MiniC identifiers); "-" encodes absence. *)
let sig_to_string = function None -> "-" | Some s -> if s = "" then "<empty>" else s
let sig_of_string = function "-" -> None | "<empty>" -> Some "" | s -> Some s

(* Predicate texts are embedded percent-escaped so lines stay one-per-entry
   and whitespace-free. *)
let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' -> Buffer.add_string buf "%20"
      | '%' -> Buffer.add_string buf "%25"
      | ',' -> Buffer.add_string buf "%2C"
      | '\n' -> Buffer.add_string buf "%0A"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_text s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      (match String.sub s (!i + 1) 2 with
      | "20" -> Buffer.add_char buf ' '
      | "25" -> Buffer.add_char buf '%'
      | "2C" -> Buffer.add_char buf ','
      | "0A" -> Buffer.add_char buf '\n'
      | other -> raise (Parse_error ("bad escape %" ^ other)));
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let to_buffer buf t =
  Printf.bprintf buf "sbi-dataset 2 %d %d %d\n" t.nsites t.npreds (nruns t);
  Printf.bprintf buf "pred_site %s\n" (ints_to_string t.pred_site);
  (match t.pred_texts with
  | None -> Printf.bprintf buf "pred_texts -\n"
  | Some texts ->
      Printf.bprintf buf "pred_texts %s\n"
        (String.concat "," (Array.to_list (Array.map escape_text texts))));
  Array.iter
    (fun (r : Report.t) ->
      Printf.bprintf buf "run %d %s %s %s %s %s %s\n" r.run_id
        (match r.outcome with Report.Success -> "S" | Report.Failure -> "F")
        (ints_to_string r.observed_sites)
        (ints_to_string r.true_preds)
        (ints_to_string r.true_counts)
        (ints_to_string r.bugs)
        (sig_to_string r.crash_sig))
    t.runs

let to_string t =
  let buf = Buffer.create (4096 + (64 * nruns t)) in
  to_buffer buf t;
  Buffer.contents buf

let to_channel oc t =
  let buf = Buffer.create (4096 + (64 * nruns t)) in
  to_buffer buf t;
  Buffer.output_buffer oc buf

let of_channel ic =
  let line () = try Some (input_line ic) with End_of_file -> None in
  let header =
    match line () with
    | Some l -> l
    | None -> raise (Parse_error "empty dataset file")
  in
  let nsites, npreds, count =
    match String.split_on_char ' ' header with
    | [ "sbi-dataset"; "2"; a; b; c ] -> (
        match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
        | Some x, Some y, Some z -> (x, y, z)
        | _ -> raise (Parse_error "bad header numbers"))
    | "sbi-dataset" :: v :: _ -> raise (Parse_error ("unsupported dataset version " ^ v))
    | _ -> raise (Parse_error "bad header")
  in
  let pred_site =
    match line () with
    | Some l -> (
        match String.split_on_char ' ' l with
        | [ "pred_site"; data ] -> ints_of_string data
        | [ "pred_site" ] -> [||]
        | _ -> raise (Parse_error "bad pred_site line"))
    | None -> raise (Parse_error "missing pred_site line")
  in
  if Array.length pred_site <> npreds then raise (Parse_error "pred_site length mismatch");
  let pred_texts =
    match line () with
    | Some l -> (
        match String.split_on_char ' ' l with
        | [ "pred_texts"; "-" ] -> None
        | [ "pred_texts"; data ] ->
            let texts =
              Array.of_list (List.map unescape_text (String.split_on_char ',' data))
            in
            if Array.length texts <> npreds then
              raise (Parse_error "pred_texts length mismatch");
            Some texts
        | [ "pred_texts" ] -> if npreds = 0 then Some [||] else raise (Parse_error "bad pred_texts")
        | _ -> raise (Parse_error "bad pred_texts line"))
    | None -> raise (Parse_error "missing pred_texts line")
  in
  let runs =
    Array.init count (fun _ ->
        match line () with
        | None -> raise (Parse_error "truncated dataset")
        | Some l -> (
            match String.split_on_char ' ' l with
            | [ "run"; id; oc_; sites; preds; counts; bugs; sg ] ->
                let true_preds = ints_of_string preds in
                let true_counts = ints_of_string counts in
                if Array.length true_counts <> Array.length true_preds then
                  raise (Parse_error "true_counts length mismatch");
                {
                  Report.run_id =
                    (match int_of_string_opt id with
                    | Some n -> n
                    | None -> raise (Parse_error "bad run id"));
                  outcome =
                    (match oc_ with
                    | "S" -> Report.Success
                    | "F" -> Report.Failure
                    | _ -> raise (Parse_error "bad outcome"));
                  observed_sites = ints_of_string sites;
                  true_preds;
                  true_counts;
                  bugs = ints_of_string bugs;
                  crash_sig = sig_of_string sg;
                }
            | _ -> raise (Parse_error ("bad run line: " ^ l))))
  in
  { nsites; npreds; pred_site; pred_texts; runs }

(* Atomic: write to a temp file in the target directory, then rename, so an
   interrupted save can never leave a half-written dataset at [path].  A
   simulated kill ({!Sbi_fault.Fault.Crash}) leaves the temp file behind,
   exactly as a real one would. *)
let save ?io path t = Sbi_fault.Io.write_file_atomic ?io path (to_string t)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
