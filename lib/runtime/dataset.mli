(** A dataset of feedback reports for one instrumented program.

    Ties the reports to the site/predicate tables they refer to, and
    provides the aggregate views the analysis needs plus a line-oriented
    text (de)serialization for caching collected data on disk. *)

type t = {
  nsites : int;
  npreds : int;
  pred_site : int array;  (** predicate id -> site id *)
  pred_texts : string array option;
      (** optional predicate descriptions (embedded on save so datasets can
          be analyzed offline with readable names) *)
  runs : Report.t array;
}

val create : transform:Sbi_instrument.Transform.t -> Report.t array -> t
(** Fills [pred_texts] from the transform's predicate table. *)

val of_tables :
  ?pred_texts:string array ->
  nsites:int ->
  npreds:int ->
  pred_site:int array ->
  Report.t array ->
  t

val pred_text : t -> int -> string
(** The stored description, or ["pred#<id>"] when none was embedded. *)

val site_coverage : t -> float array
(** §6: "the sum of all predicate counters at a site reveals the relative
    coverage of that site" — per-site totals of observed-true counts,
    normalized by the largest site's total (0 when nothing was observed). *)

val nruns : t -> int
val num_failures : t -> int
val num_successes : t -> int

val failures : t -> Report.t array
val successes : t -> Report.t array

val filter_runs : t -> (Report.t -> bool) -> t
(** Same tables, restricted run set (used by redundancy elimination). *)

val sub : t -> int -> t
(** [sub t n]: the first [n] runs (used by the runs-needed analysis).
    @raise Invalid_argument if [n] exceeds the run count. *)

val bug_ids : t -> int list
(** Sorted distinct ground-truth bug ids appearing in any run. *)

val runs_with_bug : t -> int -> int
(** Number of failing runs exhibiting the given ground-truth bug. *)

val bug_runs : t -> int -> bool array
(** Per-run ground-truth mask for one bug: element [i] is [true] iff run
    [runs.(i)] exhibited the bug ([Report.has_bug], the [__bug(n)]
    channel), {e regardless of outcome} — a triggered bug need not have
    failed the run.  Contrast {!runs_with_bug}, which counts failing runs
    only.  This is the stable accessor the SBFL evaluation harness and
    external tooling should use instead of re-deriving occurrence from raw
    reports. *)

(** {1 Serialization} *)

val to_channel : out_channel -> t -> unit
val to_string : t -> string
val of_channel : in_channel -> t

val save : ?io:Sbi_fault.Io.t -> string -> t -> unit
(** Atomic: writes to a temp file in the same directory and renames it into
    place, so a crash mid-save never leaves a truncated dataset behind.
    Under fault injection ([?io]) a simulated kill leaves the temp file in
    the directory — recovery tooling must tolerate and clean strays. *)

val load : string -> t

exception Parse_error of string
