(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    xoshiro256** seeded through splitmix64, which is fast, has a 2^256 - 1
    period, and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator deterministically derived from
    [seed] via splitmix64 expansion. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val reseed : t -> int -> unit
(** [reseed t seed] resets [t] in place to the state [create seed] would
    produce.  Used for per-run sampling streams: reseeding by a
    deterministic per-run key makes each run's randomness independent of
    execution order (the parallel-collection invariant). *)

val split : t -> t
(** [split t] derives a child generator from [t], advancing [t].  Streams of
    the child and the parent are (statistically) independent. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of Bernoulli([p]) trials up to and
    including the first success: support {1, 2, ...}.  Used for sampling
    countdowns.  [p] must be in (0, 1]; [p = 1.] always yields 1. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller, polar form). *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [0..n-1], in random order.  @raise Invalid_argument if [k > n]. *)
