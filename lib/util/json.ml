type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

(* --- emitter --- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_nan x || Float.abs x = Float.infinity then
    (* JSON has no NaN/infinity; null is the conventional fallback *)
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- parser --- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "short \\u escape";
                   let hex = String.sub s !pos 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       pos := !pos + 4;
                       (* escape non-ASCII back to UTF-8 *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else if code < 0x800 then begin
                         Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                       else begin
                         Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                         Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end)
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after document";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at %d: %s" at msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
