(* xoshiro256** with splitmix64 seeding.  Reference: Blackman & Vigna,
   "Scrambled linear pseudorandom number generators", 2018. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let reseed t seed =
  let state = ref (Int64.of_int seed) in
  t.s0 <- splitmix64_next state;
  t.s1 <- splitmix64_next state;
  t.s2 <- splitmix64_next state;
  t.s3 <- splitmix64_next state

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (int64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling to avoid modulo bias. *)
    let mask = ref 1 in
    while !mask < bound do
      mask := !mask lsl 1
    done;
    let mask = !mask - 1 in
    let rec draw () =
      let v = bits30 t land mask in
      if v < bound then v else draw ()
    in
    draw ()
  end
  else
    (* Large bounds: use 62 random bits. *)
    let rec draw () =
      let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
      let v = v mod bound in
      if v >= 0 then v else draw ()
    in
    draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 uniform bits into [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v *. 0x1.0p-53

let float t bound = unit_float t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else unit_float t < p

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p >= 1. then 1
  else
    (* Inverse transform: ceil(ln U / ln (1-p)) over U in (0,1). *)
    let u = 1. -. unit_float t in
    let n = int_of_float (ceil (log u /. log (1. -. p))) in
    if n < 1 then 1 else n

let gaussian t =
  let rec draw () =
    let u = (2. *. unit_float t) -. 1. in
    let v = (2. *. unit_float t) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then draw ()
    else u *. sqrt (-2. *. log s /. s)
  in
  draw ()

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int t (Array.length arr))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Prng.choice_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n Fun.id in
  shuffle t arr;
  arr

let sample_without_replacement t k n =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  let arr = permutation t n in
  Array.sub arr 0 k
