(** Minimal JSON tree, emitter, and parser.

    Just enough JSON for the machine-readable CLI/bench outputs and the
    tests that validate them — no external dependency.  The emitter
    produces compact, valid JSON (strings escaped per RFC 8259, floats
    via [%.17g] so values round-trip); the recursive-descent parser
    accepts any document the emitter produces plus ordinary interchange
    JSON (whitespace, nested containers, escape sequences, exponents). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [Num] of an integer (emitted without a decimal point). *)

val to_string : t -> string
(** Compact serialization (no insignificant whitespace). *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing non-whitespace is an error.  The
    error string includes a character offset. *)

(** {1 Accessors (total, for tests and consumers)} *)

val member : string -> t -> t option
(** Field of an [Obj] (first match), [None] otherwise. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
