(** CRC-32 checksums (the IEEE 802.3 polynomial used by zip/gzip/png).

    Used by the feedback-report wire format to detect corrupted records in
    on-disk shard logs.  Checksums are returned as non-negative [int]s in
    [0, 2^32). *)

val string : string -> int
(** [string s] is the CRC-32 of all of [s].
    [string "123456789" = 0xCBF43926]. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of the [len] bytes of [s] starting at [pos].
    @raise Invalid_argument when the range is out of bounds. *)
