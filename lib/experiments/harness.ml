open Sbi_instrument
open Sbi_runtime

type sampling =
  | No_sampling
  | Uniform of float
  | Adaptive of int

type config = {
  seed : int;
  nruns : int option;
  sampling : sampling;
  confidence : float;
  engine : Collect.engine;
}

(* Bytecode is the default: it compiles the study once and runs every
   input on the VM, and is differentially tested against Tree_walk
   (identical datasets) so experiments lose no fidelity. *)
let default_config =
  {
    seed = 42;
    nruns = None;
    sampling = Adaptive 1000;
    confidence = 0.95;
    engine = Collect.Bytecode;
  }

let quick_config =
  {
    seed = 42;
    nruns = Some 600;
    sampling = Adaptive 150;
    confidence = 0.95;
    engine = Collect.Bytecode;
  }

type bundle = {
  study : Sbi_corpus.Study.t;
  transform : Transform.t;
  plan : Sampler.plan;
  dataset : Dataset.t;
  config : config;
}

(* Training inputs come from run indices far above any collection index so
   the training and evaluation populations are disjoint, as in the paper. *)
let training_offset = 10_000_000

let train_plan (study : Sbi_corpus.Study.t) (t : Transform.t) ~seed ~ntrain =
  let counter = ref 0 in
  Adaptive.train t ~ntrain ~run:(fun hooks ->
      let run = training_offset + !counter in
      incr counter;
      let args = study.Sbi_corpus.Study.gen_input ~seed ~run in
      Sbi_lang.Interp.run t.Transform.prog
        {
          Sbi_lang.Interp.default_config with
          Sbi_lang.Interp.args;
          nondet_seed = (0x7a11 * 1_000_003) + run;
          hooks;
        })

let prepare ?(config = default_config) (study : Sbi_corpus.Study.t) =
  let prog = Sbi_corpus.Study.checked study in
  let transform = Transform.instrument prog in
  let plan =
    match config.sampling with
    | No_sampling -> Sampler.Always
    | Uniform r -> Sampler.Uniform r
    | Adaptive ntrain -> train_plan study transform ~seed:config.seed ~ntrain
  in
  let nondet_salt = 0x7a11 in
  let spec =
    Collect.make_spec
      ?oracle:(Sbi_corpus.Corpus.make_oracle study ~nondet_salt)
      ~nondet_salt ~engine:config.engine ~transform ~plan
      ~gen_input:(fun run -> study.Sbi_corpus.Study.gen_input ~seed:config.seed ~run)
      ()
  in
  (transform, plan, spec)

let study_runs config (study : Sbi_corpus.Study.t) =
  Option.value config.nruns ~default:study.Sbi_corpus.Study.default_runs

let collect_study ?(config = default_config) (study : Sbi_corpus.Study.t) =
  let transform, plan, spec = prepare ~config study in
  let dataset = Collect.collect ~seed:config.seed spec ~nruns:(study_runs config study) in
  { study; transform; plan; dataset; config }

let analyze bundle =
  Sbi_core.Analysis.analyze ~confidence:bundle.config.confidence bundle.dataset

let cooccurrence bundle ~pred =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun (r : Report.t) ->
      if Report.outcome_is_failure r.Report.outcome && Report.is_true r pred then
        Array.iter
          (fun b ->
            Hashtbl.replace counts b (1 + Option.value ~default:0 (Hashtbl.find_opt counts b)))
          r.Report.bugs)
    bundle.dataset.Dataset.runs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let dominant_bug bundle ~pred =
  match cooccurrence bundle ~pred with (b, _) :: _ -> Some b | [] -> None

let assign_selections_to_bugs bundle selections =
  let assigned = Hashtbl.create 8 in
  List.iter
    (fun (sel : Sbi_core.Eliminate.selection) ->
      match dominant_bug bundle ~pred:sel.Sbi_core.Eliminate.pred with
      | Some b when not (Hashtbl.mem assigned b) -> Hashtbl.replace assigned b sel
      | _ -> ())
    selections;
  Hashtbl.fold (fun b sel acc -> (b, sel) :: acc) assigned []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let describe bundle ~pred = Transform.describe_pred bundle.transform pred
