(** Shared experiment plumbing: instrument a study, train the non-uniform
    sampling plan on a held-out training set (paper §4), collect the run
    population, and answer ground-truth questions about predicates.

    Every experiment is deterministic in [seed]. *)

type sampling =
  | No_sampling  (** rate 1.0 everywhere (the paper's validation runs) *)
  | Uniform of float
  | Adaptive of int  (** non-uniform rates trained on this many runs *)

type config = {
  seed : int;
  nruns : int option;  (** [None] = the study's default *)
  sampling : sampling;
  confidence : float;
  engine : Sbi_runtime.Collect.engine;
      (** execution engine for collection; {!Sbi_runtime.Collect.Bytecode}
          (the default) compiles once and runs the VM — differentially
          tested to produce datasets identical to [Tree_walk] *)
}

val default_config : config
(** seed 42, study-default run count, adaptive sampling with 1000 training
    runs, 95% confidence, bytecode engine. *)

val quick_config : config
(** A small configuration for tests and smoke runs: 600 runs, adaptive
    sampling trained on 150 runs, bytecode engine. *)

type bundle = {
  study : Sbi_corpus.Study.t;
  transform : Sbi_instrument.Transform.t;
  plan : Sbi_instrument.Sampler.plan;
  dataset : Sbi_runtime.Dataset.t;
  config : config;
}

val prepare :
  ?config:config ->
  Sbi_corpus.Study.t ->
  Sbi_instrument.Transform.t * Sbi_instrument.Sampler.plan * Sbi_runtime.Collect.spec
(** Instrument a study and build its collection spec (training the adaptive
    sampling plan when configured) without collecting.  Used by callers that
    drive collection themselves — e.g. the parallel ingestion pipeline. *)

val study_runs : config -> Sbi_corpus.Study.t -> int
(** The configured run count, falling back to the study's default. *)

val collect_study : ?config:config -> Sbi_corpus.Study.t -> bundle
(** Instruments, trains (training inputs are drawn from a disjoint run-index
    range), and collects.  This is the expensive step; reuse the bundle
    across tables. *)

val analyze : bundle -> Sbi_core.Analysis.t

(** {1 Ground truth} *)

val cooccurrence : bundle -> pred:int -> (int * int) list
(** For each ground-truth bug id, the number of failing runs in which both
    the bug occurred and [pred] was observed true; descending by count. *)

val dominant_bug : bundle -> pred:int -> int option
(** The bug with the largest co-occurrence count, if any. *)

val assign_selections_to_bugs :
  bundle -> Sbi_core.Eliminate.selection list -> (int * Sbi_core.Eliminate.selection) list
(** For each occurring ground-truth bug, the highest-ranked selection whose
    dominant bug it is — the "chosen predictor per bug" used by the
    runs-needed analysis (§4.3 picks these by hand; we use dominance). *)

val describe : bundle -> pred:int -> string
