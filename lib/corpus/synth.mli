(** Streaming synthetic corpus generator (`cbi gen`, scale benches).

    Produces an arbitrarily large shard-log corpus in constant memory:
    reports are derived one at a time from [(seed, run_id)] and appended
    round-robin to the shard writers, never materialized as an array.
    Because each report depends only on its run id, generation composes
    across {e waves}: [generate ~start:0 ~runs:n] followed by
    [generate ~start:n ~runs:m] (which appends to the existing shard
    files) produces byte-identical shards to a single
    [generate ~start:0 ~runs:(n + m)] call — the mechanism the scale
    bench uses to interleave generation with incremental index builds. *)

val default_nsites : int
val default_npreds : int
val default_shards : int
val default_seed : int

val meta : nsites:int -> npreds:int -> Sbi_runtime.Dataset.t
(** The zero-run dataset (site/predicate tables) every wave shares.
    Predicates are spread evenly across sites in id order. *)

val bug_pred : npreds:int -> int
(** The planted buggy predicate: runs observing it true fail with high
    probability, everything else fails at a low background rate — so the
    corpus has a known top-ranked predicate for sanity checks. *)

val report :
  nsites:int -> npreds:int -> seed:int -> run_id:int -> Sbi_runtime.Report.t
(** The deterministic report for one run id (pure in [(seed, run_id)]). *)

val generate :
  ?io:Sbi_fault.Io.t ->
  ?shards:int ->
  ?nsites:int ->
  ?npreds:int ->
  ?seed:int ->
  ?start:int ->
  runs:int ->
  dir:string ->
  unit ->
  Sbi_ingest.Shard_log.stats
(** Write [runs] reports with ids [start .. start + runs - 1] into the
    shard log at [dir] (created if needed), streaming.  [start = 0] (the
    default) writes meta and fresh shard files; [start > 0] appends to
    the existing shards — the caller guarantees the ids really do resume
    where the previous wave stopped.  @raise Invalid_argument on
    non-positive [runs]/[shards] or [npreds < nsites]. *)
