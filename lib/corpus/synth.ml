open Sbi_runtime

let default_nsites = 120
let default_npreds = 360
let default_shards = 4
let default_seed = 42

(* Even spread of predicate ids over site ids, monotone so consecutive
   predicates share a site (the shape real instrumentation produces). *)
let pred_site_of ~nsites ~npreds p = p * nsites / npreds

let meta ~nsites ~npreds =
  if npreds < nsites then invalid_arg "Synth.meta: npreds < nsites";
  let pred_site = Array.init npreds (pred_site_of ~nsites ~npreds) in
  Dataset.of_tables ~nsites ~npreds ~pred_site [||]

let bug_pred ~npreds = 17 mod npreds

(* Mixing constant (splitmix64's golden-ratio increment, truncated to an
   OCaml int) keeps per-run streams decorrelated; Prng.create finishes
   the diffusion. *)
let run_key ~seed ~run_id = seed + ((run_id + 1) * 0x1e3779b97f4a7c15)

let report ~nsites ~npreds ~seed ~run_id =
  let st = Sbi_util.Prng.create (run_key ~seed ~run_id) in
  let obs_mask = Array.make nsites false in
  let obs = ref [] and preds = ref [] in
  for site = nsites - 1 downto 0 do
    if Sbi_util.Prng.bernoulli st 0.3 then begin
      obs_mask.(site) <- true;
      obs := site :: !obs
    end
  done;
  for p = npreds - 1 downto 0 do
    if obs_mask.(pred_site_of ~nsites ~npreds p) && Sbi_util.Prng.bernoulli st 0.15 then
      preds := p :: !preds
  done;
  let true_preds = Array.of_list !preds in
  let buggy = Array.exists (fun p -> p = bug_pred ~npreds) true_preds in
  let failing = Sbi_util.Prng.bernoulli st (if buggy then 0.9 else 0.03) in
  {
    Report.run_id;
    outcome = (if failing then Report.Failure else Report.Success);
    observed_sites = Array.of_list !obs;
    true_preds;
    true_counts = Array.map (fun _ -> 1 + Sbi_util.Prng.int st 4) true_preds;
    bugs = (if buggy && failing then [| 0 |] else [||]);
    crash_sig = (if failing then Some "synth<crash" else None);
  }

let generate ?io ?(shards = default_shards) ?(nsites = default_nsites)
    ?(npreds = default_npreds) ?(seed = default_seed) ?(start = 0) ~runs ~dir () =
  if runs <= 0 then invalid_arg "Synth.generate: runs must be positive";
  if shards <= 0 then invalid_arg "Synth.generate: shards must be positive";
  if start < 0 then invalid_arg "Synth.generate: negative start";
  if start = 0 then Sbi_ingest.Shard_log.write_meta ?io ~dir (meta ~nsites ~npreds);
  let writers =
    Array.init shards (fun shard ->
        Sbi_ingest.Shard_log.create_writer ?io ~append:(start > 0) ~dir ~shard ())
  in
  for run_id = start to start + runs - 1 do
    Sbi_ingest.Shard_log.append writers.(run_id mod shards)
      (report ~nsites ~npreds ~seed ~run_id)
  done;
  Array.fold_left
    (fun acc w -> Sbi_ingest.Shard_log.add_stats acc (Sbi_ingest.Shard_log.close_writer w))
    Sbi_ingest.Shard_log.zero_stats writers
