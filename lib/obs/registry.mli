(** Process-wide registry of typed, named metrics.

    Three metric types — monotone counters, settable gauges, and
    {!Hist} duration histograms — addressed by dotted-path name
    ("log.append", "pool.queue_wait").  Constructors are get-or-create:
    the first call registers, later calls return the same instance, and
    re-registering a name with a different type raises
    [Invalid_argument].  Updates go through Atomics (no lock on the hot
    path) and respect the global [Sbi_obs.set_enabled] switch; reads
    ({!value}, {!lines}, {!to_json}) always work. *)

type counter = int Atomic.t
type gauge = int Atomic.t

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> Hist.t

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val value : counter -> int
val observe_ns : Hist.t -> int -> unit

(** A sampled timer: [time t f] runs [f], counts every call in
    [<name>.count], and clocks one call in [every] into the [<name>]
    histogram — sampling keeps sub-microsecond hot paths inside the
    bench [--obs-check] overhead budget.  Durations of calls that raise
    are not recorded (the count still is). *)
module Timer : sig
  type t

  val create : ?every:int -> string -> t
  (** [every] defaults to 1 (clock every call); must be >= 1. *)

  val time : t -> (unit -> 'a) -> 'a
end

val lines : unit -> string list
(** Sorted [name value] lines.  Histograms expand to [<name>.samples],
    [<name>.p50_us]/[.p90_us]/[.p99_us] (saturating as [">8388608"] when
    the rank lands in the overflow bucket) and, when non-empty, a
    distinct [<name>.gt_8388608us] overflow count. *)

val to_json : unit -> Sbi_util.Json.t
(** Same content as {!lines} as one JSON object; histogram buckets
    appear as a [buckets] object keyed [le_<bound>us] / [gt_<bound>us]. *)
