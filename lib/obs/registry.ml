(* Process-wide registry of named metrics.  Values are updated through
   Atomics (no lock on the hot path); the registry table itself is
   guarded by a mutex only at get-or-create and export time.  Names are
   dotted paths ("log.append", "pool.queue_wait"); registering the same
   name twice with a different type is a programming error and raises. *)

type counter = int Atomic.t
type gauge = int Atomic.t
type metric = Counter of counter | Gauge of gauge | Histogram of Hist.t

let mutex = Mutex.create ()
let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let intern name make project =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some m -> (
          match project m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Sbi_obs.Registry: %s already registered with a different type"
                   name))
      | None -> (
          let m = make () in
          Hashtbl.replace table name m;
          match project m with Some v -> v | None -> assert false))

let counter name =
  intern name (fun () -> Counter (Atomic.make 0)) (function Counter c -> Some c | _ -> None)

let gauge name =
  intern name (fun () -> Gauge (Atomic.make 0)) (function Gauge g -> Some g | _ -> None)

let histogram name =
  intern name (fun () -> Histogram (Hist.create ())) (function Histogram h -> Some h | _ -> None)

let incr c = if Control.is_enabled () then Atomic.incr c
let add c n = if Control.is_enabled () then ignore (Atomic.fetch_and_add c n)
let set g v = if Control.is_enabled () then Atomic.set g v
let value a = Atomic.get a
let observe_ns h ns = if Control.is_enabled () then Hist.observe_ns h ns

(* A sampled timer over [name]: every call increments [<name>.count];
   one call in [every] is actually clocked into the [<name>] histogram.
   Sampling keeps sub-microsecond paths (codec encode, log append)
   inside the <=2% --obs-check overhead budget — fitting, given the
   paper's own thesis that sparse sampling of cheap predicates yields
   enough signal.  Durations of calls that raise are not recorded. *)
module Timer = struct
  type nonrec t = { hist : Hist.t; ops : int Atomic.t; every : int; tick : int Atomic.t }

  let create ?(every = 1) name =
    if every < 1 then invalid_arg "Sbi_obs.Registry.Timer.create: every < 1";
    { hist = histogram name; ops = counter (name ^ ".count"); every; tick = Atomic.make 0 }

  let time t f =
    if not (Control.is_enabled ()) then f ()
    else begin
      Atomic.incr t.ops;
      if t.every > 1 && Atomic.fetch_and_add t.tick 1 mod t.every <> 0 then f ()
      else begin
        let t0 = Clock.now_ns () in
        let v = f () in
        Hist.observe_ns t.hist (Clock.now_ns () - t0);
        v
      end
    end
end

(* --- export --- *)

let sorted_metrics () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []))

let pct_string h p = match Hist.percentile h p with None -> "0" | Some b -> Hist.pp_bound b

let lines () =
  List.concat_map
    (fun (name, m) ->
      match m with
      | Counter c | Gauge c -> [ Printf.sprintf "%s %d" name (Atomic.get c) ]
      | Histogram h ->
          let overflow = (Hist.counts h).(Hist.nbuckets) in
          Printf.sprintf "%s.samples %d" name (Hist.total h)
          :: Printf.sprintf "%s.p50_us %s" name (pct_string h 50.)
          :: Printf.sprintf "%s.p90_us %s" name (pct_string h 90.)
          :: Printf.sprintf "%s.p99_us %s" name (pct_string h 99.)
          ::
          (if overflow > 0 then
             [ Printf.sprintf "%s.gt_%dus %d" name Hist.max_finite_bound_us overflow ]
           else []))
    (sorted_metrics ())

let to_json () =
  let module J = Sbi_util.Json in
  J.Obj
    (List.map
       (fun (name, m) ->
         match m with
         | Counter c | Gauge c -> (name, J.int (Atomic.get c))
         | Histogram h ->
             let bucket_label = function
               | Hist.Le us -> Printf.sprintf "le_%dus" us
               | Hist.Gt us -> Printf.sprintf "gt_%dus" us
             in
             ( name,
               J.Obj
                 [
                   ("samples", J.int (Hist.total h));
                   ("p50_us", J.Str (pct_string h 50.));
                   ("p90_us", J.Str (pct_string h 90.));
                   ("p99_us", J.Str (pct_string h 99.));
                   ( "buckets",
                     J.Obj (List.map (fun (b, n) -> (bucket_label b, J.int n)) (Hist.buckets h))
                   );
                 ] ))
       (sorted_metrics ()))
